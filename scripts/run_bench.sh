#!/bin/sh
# Measure the kernel + campaign perf trajectory into BENCH_*.json at
# the repo root, under a pinned environment (fixed thread count, cache
# policy chosen by each bench, no ISA override -- the benches force
# ISAs internally via kernels::setActive). Run from anywhere.
#
#   scripts/run_bench.sh [--compare [BASELINE_DIR]]
#
# With --compare, additionally gate the fresh numbers against the
# committed baselines (bench/baselines/ by default) using
# bench_compare in relative-to-scalar mode, so the comparison
# survives a machine change; exit non-zero on a confirmed >15%
# regression of any SIMD speedup.
set -eu

cd "$(dirname "$0")/.."

COMPARE=0
BASELINE_DIR=bench/baselines
if [ "${1:-}" = "--compare" ]; then
    COMPARE=1
    [ -n "${2:-}" ] && BASELINE_DIR=$2
fi

cmake -B build -S . >/dev/null
cmake --build build --target bench_kernels bench_campaign \
    bench_event bench_analysis bench_serving bench_chaos \
    bench_compare -j >/dev/null

# Pinned measurement environment: one worker thread (the kernels are
# the subject, not the pool) and no ambient ISA override -- a set
# INCA_KERNEL_ISA would make setActive-forced runs misleading.
unset INCA_KERNEL_ISA INCA_TRACE INCA_METRICS || true
export INCA_NUM_THREADS=1

measure() {
    ./build/bench/bench_kernels --json BENCH_kernels.json
    ./build/bench/bench_campaign --json BENCH_campaign.json
    ./build/bench/bench_event --json BENCH_event.json
    ./build/bench/bench_analysis --json BENCH_analysis.json
    ./build/bench/bench_serving --json BENCH_serving.json
    ./build/bench/bench_chaos --json BENCH_chaos.json
    echo "wrote BENCH_kernels.json BENCH_campaign.json" \
        "BENCH_event.json BENCH_analysis.json BENCH_serving.json" \
        "BENCH_chaos.json"
}

# Gate on the per-benchmark SIMD speedup (vector time / scalar time
# measured in the same run): machine-wide throughput drift between
# the baseline machine and this one cancels per benchmark, so the
# 15% threshold gates the speedup shape the kernel overhaul claims,
# not the host's mood.
compare_once() {
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_kernels.json" \
        BENCH_kernels.json --threshold 0.15 --relative-to-scalar &&
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_campaign.json" \
        BENCH_campaign.json --threshold 0.15 --relative-to-scalar &&
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_event.json" \
        BENCH_event.json --threshold 0.15 --relative-to-scalar &&
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_analysis.json" \
        BENCH_analysis.json --threshold 0.15 --relative-to-scalar &&
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_serving.json" \
        BENCH_serving.json --threshold 0.15 --relative-to-scalar &&
    ./build/bench/bench_compare "$BASELINE_DIR/BENCH_chaos.json" \
        BENCH_chaos.json --threshold 0.15 --relative-to-scalar
}

measure

if [ "$COMPARE" = 1 ]; then
    # A single noisy run on a busy machine can cross the 15% line
    # without any code change; a real regression crosses it every
    # time. Confirm before failing: re-measure once and only report
    # a regression when both measurements agree.
    if ! compare_once; then
        echo "possible regression; re-measuring to confirm..."
        measure
        compare_once
    fi
fi
