#!/bin/sh
# Regenerate tests/goldens_fig11_fig14.inc (paper ratio goldens) and
# tests/goldens_ir.inc (IR lowering disassembly goldens) from the
# current analytic models. Run from the repo root after a REVIEWED
# model change; the paper-goldens and ir-lowering tests pin the
# output bit-for-bit.
set -eu

cd "$(dirname "$0")/.."
cmake -B build -S . >/dev/null
cmake --build build --target golden_gen -j >/dev/null
# The goldens must not depend on cache or thread settings; generate
# with the cache off and one thread to make that stance explicit.
INCA_CACHE=0 INCA_NUM_THREADS=1 \
    ./build/tests/golden_gen > tests/goldens_fig11_fig14.inc
echo "wrote tests/goldens_fig11_fig14.inc"
INCA_CACHE=0 INCA_NUM_THREADS=1 \
    ./build/tests/golden_gen --ir > tests/goldens_ir.inc
echo "wrote tests/goldens_ir.inc"
