#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, and
# regenerate every table/figure of the paper (plus the ablations).
# Outputs land in test_output.txt and bench_output.txt next to this
# repository's root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/bench_*; do
        echo "################ $b"
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
