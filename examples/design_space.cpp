/**
 * @file
 * Design-space exploration: an ablation over INCA's two headline
 * design choices -- the subarray (plane) size and the ADC resolution.
 * Reproduces the reasoning behind Table II's 16x16 / 4-bit design
 * point: larger planes lose utilization on small late-layer feature
 * maps (Fig. 16a) and force higher-resolution conversions, while the
 * 4-bit ADC is the smallest that digitizes a 3x3 window losslessly.
 *
 * The design points are independent, so each sweep fans them across
 * the shared thread pool (INCA_NUM_THREADS); every point builds its
 * own engine and writes a pre-sized row slot, so the printed table is
 * identical at any thread count.
 *
 *   $ ./build/examples/design_space [network]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/area.hh"
#include "arch/config.hh"
#include "arch/utilization.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace inca;

    const std::string name = argc > 1 ? argv[1] : "resnet18";
    const nn::NetworkDesc net = nn::byName(name);
    std::printf("design-space sweep on %s, batch 64 (%d threads)\n\n",
                net.name.c_str(), ThreadPool::globalThreadCount());

    // ------------------------------------------------------------
    // 1. Plane-size sweep at iso-capacity: scale the stack count so
    //    the chip always holds the same number of cells.
    std::printf("plane-size sweep (iso-capacity, 4-bit ADC):\n");
    TextTable t({"plane", "utilization", "chip area", "E/batch",
                 "t/batch"});
    const std::vector<int> planeSizes = {8, 16, 32, 64};
    std::vector<std::vector<std::string>> planeRows(planeSizes.size());
    {
        sim::ScopedPhaseTimer timer("plane-size sweep");
        parallel_for(
            std::int64_t(planeSizes.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const int s = planeSizes[size_t(i)];
                    arch::IncaConfig cfg = arch::paperInca();
                    const std::int64_t cellsBefore = cfg.totalCells();
                    cfg.subarraySize = s;
                    // Restore capacity by scaling the tile count.
                    const double scale =
                        double(cellsBefore) / double(cfg.totalCells());
                    cfg.org.numTiles =
                        std::max(1, int(cfg.org.numTiles * scale + 0.5));
                    core::IncaEngine engine(cfg);
                    const auto run = engine.inference(net, 64);
                    planeRows[size_t(i)] = {
                        std::to_string(s) + "x" + std::to_string(s),
                        TextTable::num(
                            100.0 *
                                arch::incaNetworkUtilization(net, s),
                            1) + " %",
                        formatAreaMm2(arch::incaArea(cfg).total()),
                        formatSi(run.energy(), "J"),
                        formatSi(run.latency, "s")};
                }
            });
    }
    for (const auto &row : planeRows)
        t.addRow(row);
    t.print();
    std::printf("(16x16 keeps utilization high with the smallest "
                "windows a 4-bit ADC digitizes losslessly)\n\n");

    // ------------------------------------------------------------
    // 2. ADC-resolution sweep at the 16x16 design point.
    std::printf("ADC-resolution sweep (16x16 planes):\n");
    TextTable ta({"ADC", "E/conversion", "ADC area (chip)",
                  "E/batch", "t/batch"});
    const std::vector<int> adcBits = {3, 4, 6, 8};
    std::vector<std::vector<std::string>> adcRows(adcBits.size());
    {
        sim::ScopedPhaseTimer timer("ADC-resolution sweep");
        parallel_for(
            std::int64_t(adcBits.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const int bits = adcBits[size_t(i)];
                    arch::IncaConfig cfg = arch::paperInca();
                    cfg.adcBits = bits;
                    core::IncaEngine engine(cfg);
                    const auto run = engine.inference(net, 64);
                    adcRows[size_t(i)] = {
                        std::to_string(bits) + "-bit",
                        formatSi(cfg.adc().energyPerConversion, "J"),
                        formatAreaMm2(
                            cfg.adc().area *
                            double(cfg.org.totalSubarrays())),
                        formatSi(run.energy(), "J"),
                        formatSi(run.latency, "s")};
                }
            });
    }
    for (const auto &row : adcRows)
        ta.addRow(row);
    ta.print();
    std::printf("(3 bits would clip a full 3x3 window -- 9 > 7; 4 "
                "bits is the paper's sweet spot; every extra bit "
                "costs ~2x conversion energy)\n");

    sim::printPhaseTimes();
    return 0;
}
