/**
 * @file
 * Design-space exploration: an ablation over INCA's two headline
 * design choices -- the subarray (plane) size and the ADC resolution.
 * Reproduces the reasoning behind Table II's 16x16 / 4-bit design
 * point: larger planes lose utilization on small late-layer feature
 * maps (Fig. 16a) and force higher-resolution conversions, while the
 * 4-bit ADC is the smallest that digitizes a 3x3 window losslessly.
 *
 * Both sweeps ride on the dse subsystem: each is a one-axis grid
 * exploration whose wave evaluation fans across the shared thread
 * pool (INCA_NUM_THREADS) into pre-sized slots, so the printed table
 * is identical at any thread count. The lossless-ADC bound runs as a
 * soft constraint: a design point that clips (the 3-bit row -- 9 > 7)
 * still prints, but the rejection reason goes to stderr instead of
 * being silently ignored.
 *
 *   $ ./build/examples/design_space [network] [--json <path>]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "bench/bench_json.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "dse/explorer.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    const std::string jsonPath = bench::extractJsonPath(argc, argv);
    const std::string name = argc > 1 ? argv[1] : "resnet18";
    const nn::NetworkDesc net = nn::byName(name);

    // Shared run options: grid order over one axis, constraints soft
    // so every table row still prints (rejections warn on stderr).
    dse::ExploreOptions opt;
    opt.engine = dse::EngineKind::Inca;
    opt.network = name;
    opt.strategy = dse::StrategyKind::Grid;
    opt.constraints.set("lossless_adc=1");
    opt.softConstraints = true;

    std::printf("design-space sweep on %s, batch 64 (%d threads)\n\n",
                net.name.c_str(), ThreadPool::globalThreadCount());

    // ------------------------------------------------------------
    // 1. Plane-size sweep at iso-capacity: scale the stack count so
    //    the chip always holds the same number of cells.
    std::printf("plane-size sweep (iso-capacity, 4-bit ADC):\n");
    TextTable t({"plane", "utilization", "chip area", "E/batch",
                 "t/batch"});
    dse::SearchSpace planeSpace;
    planeSpace.axis("plane", {8, 16, 32, 64});
    dse::ExploreOptions planeOpt = opt;
    planeOpt.isoCapacity = true;
    dse::Explorer planeExplorer(planeSpace, planeOpt);
    dse::ExploreResult planeResult;
    {
        sim::ScopedPhaseTimer timer("plane-size sweep");
        planeResult = planeExplorer.run();
    }
    for (const auto &e : planeResult.evaluations) {
        const int s = int(e.candidate.values[0]);
        t.addRow({std::to_string(s) + "x" + std::to_string(s),
                  TextTable::num(100.0 * e.utilization, 1) + " %",
                  formatAreaMm2(e.areaM2),
                  formatSi(e.energyJ, "J"),
                  formatSi(e.latencyS, "s")});
        const std::string label =
            std::to_string(s) + "x" + std::to_string(s);
        auto &report = bench::JsonReport::instance();
        report.addPoint("plane_sweep.utilization", label,
                        e.utilization);
        report.addPoint("plane_sweep.area_m2", label, e.areaM2);
        report.addPoint("plane_sweep.energy_j", label, e.energyJ);
        report.addPoint("plane_sweep.latency_s", label, e.latencyS);
    }
    t.print();
    std::printf("(16x16 keeps utilization high with the smallest "
                "windows a 4-bit ADC digitizes losslessly)\n\n");

    // ------------------------------------------------------------
    // 2. ADC-resolution sweep at the 16x16 design point.
    std::printf("ADC-resolution sweep (16x16 planes):\n");
    TextTable ta({"ADC", "E/conversion", "ADC area (chip)",
                  "E/batch", "t/batch"});
    dse::SearchSpace adcSpace;
    adcSpace.axis("adc_bits", {3, 4, 6, 8});
    dse::Explorer adcExplorer(adcSpace, opt);
    dse::ExploreResult adcResult;
    {
        sim::ScopedPhaseTimer timer("ADC-resolution sweep");
        adcResult = adcExplorer.run();
    }
    for (const auto &e : adcResult.evaluations) {
        const int bits = int(e.candidate.values[0]);
        const arch::IncaConfig cfg = dse::materializeInca(
            adcExplorer.space(), e.candidate,
            adcExplorer.options().baseInca, false);
        ta.addRow({std::to_string(bits) + "-bit",
                   formatSi(cfg.adc().energyPerConversion, "J"),
                   formatAreaMm2(cfg.adc().area *
                                 double(cfg.org.totalSubarrays())),
                   formatSi(e.energyJ, "J"),
                   formatSi(e.latencyS, "s")});
        const std::string label = std::to_string(bits) + "-bit";
        auto &report = bench::JsonReport::instance();
        report.addPoint("adc_sweep.conversion_j", label,
                        cfg.adc().energyPerConversion);
        report.addPoint("adc_sweep.energy_j", label, e.energyJ);
        report.addPoint("adc_sweep.latency_s", label, e.latencyS);
    }
    ta.print();
    std::printf("(3 bits would clip a full 3x3 window -- 9 > 7; 4 "
                "bits is the paper's sweet spot; every extra bit "
                "costs ~2x conversion energy)\n");

    sim::printPhaseTimes();
    if (!jsonPath.empty())
        bench::JsonReport::instance().write(jsonPath);
    return 0;
}
