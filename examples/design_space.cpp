/**
 * @file
 * Design-space exploration: an ablation over INCA's two headline
 * design choices -- the subarray (plane) size and the ADC resolution.
 * Reproduces the reasoning behind Table II's 16x16 / 4-bit design
 * point: larger planes lose utilization on small late-layer feature
 * maps (Fig. 16a) and force higher-resolution conversions, while the
 * 4-bit ADC is the smallest that digitizes a 3x3 window losslessly.
 *
 *   $ ./build/examples/design_space [network]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/area.hh"
#include "arch/config.hh"
#include "arch/utilization.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace inca;

    const std::string name = argc > 1 ? argv[1] : "resnet18";
    const nn::NetworkDesc net = nn::byName(name);
    std::printf("design-space sweep on %s, batch 64\n\n",
                net.name.c_str());

    // ------------------------------------------------------------
    // 1. Plane-size sweep at iso-capacity: scale the stack count so
    //    the chip always holds the same number of cells.
    std::printf("plane-size sweep (iso-capacity, 4-bit ADC):\n");
    TextTable t({"plane", "utilization", "chip area", "E/batch",
                 "t/batch"});
    for (int s : {8, 16, 32, 64}) {
        arch::IncaConfig cfg = arch::paperInca();
        const std::int64_t cellsBefore = cfg.totalCells();
        cfg.subarraySize = s;
        // Restore capacity by scaling the tile count.
        const double scale =
            double(cellsBefore) / double(cfg.totalCells());
        cfg.org.numTiles =
            std::max(1, int(cfg.org.numTiles * scale + 0.5));
        core::IncaEngine engine(cfg);
        const auto run = engine.inference(net, 64);
        t.addRow({std::to_string(s) + "x" + std::to_string(s),
                  TextTable::num(
                      100.0 * arch::incaNetworkUtilization(net, s),
                      1) + " %",
                  formatAreaMm2(arch::incaArea(cfg).total()),
                  formatSi(run.energy(), "J"),
                  formatSi(run.latency, "s")});
    }
    t.print();
    std::printf("(16x16 keeps utilization high with the smallest "
                "windows a 4-bit ADC digitizes losslessly)\n\n");

    // ------------------------------------------------------------
    // 2. ADC-resolution sweep at the 16x16 design point.
    std::printf("ADC-resolution sweep (16x16 planes):\n");
    TextTable ta({"ADC", "E/conversion", "ADC area (chip)",
                  "E/batch", "t/batch"});
    for (int bits : {3, 4, 6, 8}) {
        arch::IncaConfig cfg = arch::paperInca();
        cfg.adcBits = bits;
        core::IncaEngine engine(cfg);
        const auto run = engine.inference(net, 64);
        ta.addRow({std::to_string(bits) + "-bit",
                   formatSi(cfg.adc().energyPerConversion, "J"),
                   formatAreaMm2(cfg.adc().area *
                                 double(cfg.org.totalSubarrays())),
                   formatSi(run.energy(), "J"),
                   formatSi(run.latency, "s")});
    }
    ta.print();
    std::printf("(3 bits would clip a full 3x3 window -- 9 > 7; 4 "
                "bits is the paper's sweet spot; every extra bit "
                "costs ~2x conversion energy)\n");
    return 0;
}
