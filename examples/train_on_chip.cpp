/**
 * @file
 * On-chip execution demo: runs real numbers through the bit-accurate
 * 3D 2T1R array model (the same dataflow the hardware executes --
 * partitioned inputs, sliding 2T1R windows, bit-serial weights,
 * per-plane 4-bit ADCs, adder trees), verifies it against the
 * mathematical reference, exercises the in-array training primitives
 * (transposed-kernel error backprop, in-array weight gradient), and
 * finishes with a miniature Table VI: training a CNN under WS-style
 * weight noise versus INCA-style activation noise.
 *
 *   $ ./build/examples/train_on_chip
 */

#include <cstdio>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "inca/functional.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"
#include "tensor/ops.hh"

int
main()
{
    using namespace inca;
    using tensor::Tensor;

    checkEnvironment();

    // ----------------------------------------------------------------
    // 1. Direct convolution on the array, checked against the math.
    Rng rng(2024);
    Tensor x({4, 3, 16, 16});
    for (std::int64_t i = 0; i < x.size(); ++i)
        x[i] = float(rng.below(256)); // 8-bit activations
    Tensor w({8, 3, 3, 3});
    for (std::int64_t i = 0; i < w.size(); ++i)
        w[i] = float(std::int64_t(rng.below(256)) - 128); // signed 8b

    core::FunctionalOptions opts;
    opts.planeSize = 16;
    opts.planes = 4; // four batch images on four planes
    core::IncaFunctional array(opts);

    const Tensor onChip = array.conv2d(x, w, {1, 1});
    const Tensor reference = tensor::conv2d(x, w, {1, 1});
    std::printf("forward conv on the 3D 2T1R array: %s (4 images in "
                "parallel on 4 planes, 3x3 windows, 4-bit ADC)\n",
                onChip.equals(reference) ? "EXACT match with math"
                                         : "MISMATCH");
    inca_assert(onChip.equals(reference), "array conv diverged");

    // ----------------------------------------------------------------
    // 2. Backward pass on the array: errors overwrite activations and
    //    convolve with the transposed kernels fetched from the same
    //    weight bytes.
    Tensor dy({4, 8, 16, 16});
    for (std::int64_t i = 0; i < dy.size(); ++i)
        dy[i] = float(std::int64_t(rng.below(64)) - 32);
    const Tensor bwdChip = array.errorBackprop(dy, w, 1);
    const Tensor bwdRef =
        tensor::conv2dInputGrad(dy, w, x.shape(), {1, 1});
    std::printf("error backprop (delta * W^T) on the array:   %s\n",
                bwdChip.equals(bwdRef) ? "EXACT match with math"
                                       : "MISMATCH");
    inca_assert(bwdChip.equals(bwdRef), "array backprop diverged");

    // ----------------------------------------------------------------
    // 3. Weight gradient on the array: stored activations convolved
    //    with the error map acting as the kernel (Eq. 4).
    core::FunctionalOptions gradOpts;
    gradOpts.planeSize = 16;
    gradOpts.planes = 2;
    gradOpts.activationBits = 4;
    gradOpts.adcBits = 10; // the 10x10 error window needs headroom
    core::IncaFunctional gradArray(gradOpts);
    Tensor xs({2, 2, 12, 12});
    for (std::int64_t i = 0; i < xs.size(); ++i)
        xs[i] = float(rng.below(16));
    Tensor ds({2, 4, 10, 10});
    for (std::int64_t i = 0; i < ds.size(); ++i)
        ds[i] = float(std::int64_t(rng.below(8)) - 4);
    const Tensor dwChip = gradArray.weightGradient(xs, ds, 0);
    const Tensor dwRef =
        tensor::conv2dWeightGrad(ds, xs, {4, 2, 3, 3}, {1, 0});
    std::printf("weight gradient (delta * x) on the array:    %s\n",
                dwChip.equals(dwRef) ? "EXACT match with math"
                                     : "MISMATCH");
    inca_assert(dwChip.equals(dwRef), "array weight grad diverged");

    // ----------------------------------------------------------------
    // 4. Miniature Table VI: train under each hardware's noise.
    setQuiet(true);
    nn::SyntheticSpec spec;
    spec.numClasses = 6;
    spec.channels = 1;
    spec.size = 12;
    spec.trainPerClass = 25;
    spec.testPerClass = 15;
    spec.seed = 9;
    spec.pixelNoise = 0.25;
    const auto data = nn::makeSynthetic(spec);

    auto trainWith = [&](nn::NoiseTarget target, double sigma) {
        Rng netRng(33);
        auto net = nn::makeSmallResNet(1, 12, 6, 8, netRng);
        nn::TrainConfig cfg;
        cfg.epochs = 12;
        cfg.batchSize = 10;
        cfg.lr = 0.02f;
        cfg.noise = nn::NoiseSpec{target, sigma};
        return nn::train(*net, data, cfg).finalTestAccuracy;
    };

    std::printf("\nin-situ training under RRAM noise (sigma = 0.05, "
                "the paper's harshest point):\n");
    TextTable t({"hardware", "noisy operand", "test accuracy"});
    t.addRow({"ideal", "-",
              TextTable::num(
                  100.0 * trainWith(nn::NoiseTarget::None, 0.0), 1) +
                  " %"});
    t.addRow({"WS baseline", "weights (rewritten every update)",
              TextTable::num(
                  100.0 * trainWith(nn::NoiseTarget::Weights, 0.05),
                  1) +
                  " %"});
    t.addRow({"INCA", "activations (transient)",
              TextTable::num(100.0 * trainWith(
                                         nn::NoiseTarget::Activations,
                                         0.05),
                             1) +
                  " %"});
    t.print();
    std::printf("paper (ImageNet ResNet18): WS 15.17 %%, INCA "
                "85.59 %% at sigma = 0.05.\n");
    return 0;
}
