/**
 * @file
 * Generate a complete markdown reproduction report from live
 * simulation: every headline table of the paper, measured now,
 * side by side with the published values.
 *
 *   $ ./build/examples/paper_report [output.md]
 *
 * Defaults to /tmp/inca_reproduction_report.md.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "arch/area.hh"
#include "arch/endurance.hh"
#include "common/env.hh"
#include "common/units.hh"
#include "dataflow/access_model.hh"
#include "dataflow/footprint.hh"
#include "dataflow/unroll.hh"
#include "arch/utilization.hh"
#include "gpu/gpu_model.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
headlineSection(std::ostringstream &md,
                const core::IncaEngine &inca,
                const baseline::BaselineEngine &base)
{
    const double paperEffInf[] = {20.6, 15.9, 8.7, 8.0, 80, 83};
    const double paperEffTrn[] = {260, 202, 103, 152, 3873, 2790};
    const double paperSpdInf[] = {4.6, 3.7, 1.9, 4.8, 201, 85};
    const double paperSpdTrn[] = {18.6, 14.2, 7.2, 6.8, 1187, 363};

    md << "## Headline comparison (Figs. 11 & 14, batch 64)\n\n";
    md << "| network | eff. inf (paper) | eff. trn (paper) | "
          "speedup inf (paper) | speedup trn (paper) |\n";
    md << "|---|---|---|---|---|\n";
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto inf = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Inference);
        const auto trn = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Training);
        char row[256];
        std::snprintf(row, sizeof(row),
                      "| %s | %.1fx (%.1fx) | %.0fx (%.0fx) | "
                      "%.1fx (%.1fx) | %.0fx (%.0fx) |\n",
                      suite[i].name.c_str(),
                      inf.energyEfficiencyGain(), paperEffInf[i],
                      trn.energyEfficiencyGain(), paperEffTrn[i],
                      inf.speedup(), paperSpdInf[i], trn.speedup(),
                      paperSpdTrn[i]);
        md << row;
    }
    md << "\n";
}

void
accessSection(std::ostringstream &md)
{
    md << "## Buffer accesses (Table III, 8-bit / 256-bit)\n\n";
    md << "| network | INCA measured | INCA paper |\n|---|---|---|\n";
    const double paper[] = {460000, 625888, 349024,
                            508950, 66832,  92333};
    const dataflow::AccessConfig cfg{8, 256};
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto s = dataflow::networkAccesses(suite[i], cfg);
        char row[160];
        std::snprintf(row, sizeof(row), "| %s | %llu | %.0f |\n",
                      suite[i].name.c_str(),
                      (unsigned long long)s.inca, paper[i]);
        md << row;
    }
    md << "\n";
}

void
footprintSection(std::ostringstream &md)
{
    md << "## Memory footprint (Table IV, MiB)\n\n";
    md << "| network | base RRAM | base buf | INCA RRAM | INCA buf "
          "|\n|---|---|---|---|---|\n";
    for (const auto &net : nn::evaluationSuite()) {
        const auto row = dataflow::footprint(net);
        char line[200];
        std::snprintf(line, sizeof(line),
                      "| %s | %.2f | %.2f | %.2f | %.2f |\n",
                      net.name.c_str(),
                      dataflow::toMiB(row.baseline.rram),
                      dataflow::toMiB(row.baseline.buffers),
                      dataflow::toMiB(row.inca.rram),
                      dataflow::toMiB(row.inca.buffers));
        md << line;
    }
    md << "\n";
}

void
areaSection(std::ostringstream &md)
{
    const auto base = arch::baselineArea(arch::paperBaseline());
    const auto inca = arch::incaArea(arch::paperInca());
    md << "## Area (Table V, mm^2)\n\n";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "baseline total %.3f (paper 84.088); INCA total "
                  "%.3f (paper 47.914)\n\n",
                  base.total() * 1e6, inca.total() * 1e6);
    md << line;
}

void
utilizationSection(std::ostringstream &md)
{
    md << "## Utilization (Fig. 16b, %)\n\n";
    md << "| network | INCA 16x16 | WS 128x128 |\n|---|---|---|\n";
    for (const auto &net : nn::evaluationSuite()) {
        char line[160];
        std::snprintf(line, sizeof(line), "| %s | %.1f | %.1f |\n",
                      net.name.c_str(),
                      100.0 * arch::incaNetworkUtilization(net, 16),
                      100.0 * arch::wsNetworkUtilization(net, 128));
        md << line;
    }
    md << "\n";
}

void
gpuSection(std::ostringstream &md, const core::IncaEngine &inca)
{
    md << "## GPU comparison (Fig. 15, training)\n\n";
    md << "| network | energy-eff gain | iso-area gain "
          "|\n|---|---|---|\n";
    gpu::GpuModel titan;
    const double incaAreaMm2 =
        arch::incaArea(arch::paperInca()).total() * 1e6;
    const double gpuAreaMm2 = titan.spec().dieArea * 1e6;
    for (const auto &net : nn::evaluationSuite()) {
        const auto i = inca.training(net, 64);
        const auto g = titan.training(net, 64);
        char line[160];
        std::snprintf(line, sizeof(line), "| %s | %.0fx | %.0fx |\n",
                      net.name.c_str(),
                      (g.energy / 64.0) / i.energyPerImage(),
                      (i.throughput() / incaAreaMm2) /
                          (g.throughput(64) / gpuAreaMm2));
        md << line;
    }
    md << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    inca::checkEnvironment();

    const std::string path =
        argc > 1 ? argv[1] : "/tmp/inca_reproduction_report.md";

    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());

    std::ostringstream md;
    md << "# INCA reproduction report (generated)\n\n";
    md << "Configuration: Table II defaults; batch 64; ImageNet "
          "shapes. Paper values in parentheses. See EXPERIMENTS.md "
          "for the full per-figure discussion (incl. the accuracy "
          "studies, which train live and are reported by "
          "bench_table1/bench_table6).\n\n";
    headlineSection(md, inca, base);
    accessSection(md);
    footprintSection(md);
    areaSection(md);
    utilizationSection(md);
    gpuSection(md, inca);

    sim::writeFile(path, md.str());
    std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                md.str().size());
    std::fputs(md.str().c_str(), stdout);
    return 0;
}
