/**
 * @file
 * Wear-aware fault-campaign driver on top of src/reliability.
 *
 * Sweeps raw stuck-cell rates (accuracy-vs-BER) and training
 * lifetimes (accuracy-vs-wear) for INCA and the WS baseline, with
 * write-verify retry and spare-line remapping, and prints accuracy,
 * residual error, spare usage, and the mitigation's energy/latency
 * surcharge per point. The output is bit-identical at any thread
 * count and across cached/uncached runs.
 *
 *   $ ./build/examples/fault_campaign --network resnet18 \
 *       --trials 16 --retries 2 --spare-rows 4 --spare-cols 2 \
 *       --bers 1e-4,1e-3,1e-2 --lifetimes 1e3,1e5,1e7 \
 *       --csv campaign.csv --json campaign.json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "examples/cli.hh"
#include "reliability/campaign.hh"
#include "sim/export.hh"
#include "sim/report.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --network <name>     model-zoo network (default "
        "resnet18)\n"
        "  --phase inference|training\n"
        "  --engine inca|ws|both  engines to sweep (default both)\n"
        "  --trials <n>         Monte-Carlo trials per point\n"
        "  --seed <n>           fault-map RNG seed\n"
        "  --retries <n>        write-verify retry budget\n"
        "  --spare-rows <n>     spare rows per array\n"
        "  --spare-cols <n>     spare columns per array\n"
        "  --bers v1,v2,...     raw BER sweep points ('none' skips "
        "this sweep)\n"
        "  --lifetimes v1,...   training-iteration sweep points "
        "('none' skips)\n"
        "  --sigma <x>          baseline device-noise sigma\n"
        "  --csv <path>         write the campaign CSV\n"
        "  --json <path>        write the campaign JSON report\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    reliability::CampaignOptions opt;
    std::string csvPath, jsonPath;

    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--network") == 0) {
            opt.network = value(i);
        } else if (std::strcmp(a, "--phase") == 0) {
            const std::string p = value(i);
            if (p == "inference")
                opt.phase = arch::Phase::Inference;
            else if (p == "training")
                opt.phase = arch::Phase::Training;
            else
                fatal("unknown phase '%s'", p.c_str());
        } else if (std::strcmp(a, "--engine") == 0) {
            const std::string e = value(i);
            if (e == "inca") {
                opt.runInca = true;
                opt.runWs = false;
            } else if (e == "ws") {
                opt.runInca = false;
                opt.runWs = true;
            } else if (e == "both") {
                opt.runInca = opt.runWs = true;
            } else {
                fatal("--engine must be inca, ws, or both, got '%s'",
                      e.c_str());
            }
        } else if (std::strcmp(a, "--trials") == 0) {
            opt.trials = int(cli::parsePositive(a, value(i)));
        } else if (std::strcmp(a, "--seed") == 0) {
            opt.fault.seed = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--retries") == 0) {
            opt.mitigation.writeVerifyRetries =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--spare-rows") == 0) {
            opt.mitigation.spareRows =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--spare-cols") == 0) {
            opt.mitigation.spareCols =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--bers") == 0) {
            const char *v = value(i);
            opt.bers = std::strcmp(v, "none") == 0
                           ? std::vector<double>{}
                           : cli::parseDoubleList(a, v);
        } else if (std::strcmp(a, "--lifetimes") == 0) {
            const char *v = value(i);
            opt.lifetimes = std::strcmp(v, "none") == 0
                                ? std::vector<double>{}
                                : cli::parseDoubleList(a, v);
        } else if (std::strcmp(a, "--sigma") == 0) {
            opt.noiseSigma = cli::parseDouble(a, value(i));
        } else if (std::strcmp(a, "--csv") == 0) {
            csvPath = value(i);
        } else if (std::strcmp(a, "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown flag '%s'", a);
        }
    }

    std::printf("fault campaign: %s/%s, %d trials/point, "
                "retries %d, spares %d+%d\n\n",
                opt.network.c_str(),
                opt.phase == arch::Phase::Training ? "training"
                                                   : "inference",
                opt.trials, opt.mitigation.writeVerifyRetries,
                opt.mitigation.spareRows, opt.mitigation.spareCols);

    reliability::CampaignResult result;
    {
        sim::ScopedPhaseTimer timer("campaign");
        result = reliability::runCampaign(opt);
    }

    for (const auto &curve : result.curves) {
        std::printf("%s:\n", curve.engine.c_str());
        TextTable t({"sweep", "x", "accuracy", "ideal", "resid BER",
                     "spares", "exhausted", "E overhead",
                     "t overhead"});
        for (const auto &p : curve.points) {
            const double eOver =
                p.idealEnergyJ > 0.0
                    ? 100.0 * (p.energyJ / p.idealEnergyJ - 1.0)
                    : 0.0;
            const double tOver =
                p.idealLatencyS > 0.0
                    ? 100.0 * (p.latencyS / p.idealLatencyS - 1.0)
                    : 0.0;
            char x[32];
            std::snprintf(x, sizeof(x), "%g", p.x);
            char resid[32];
            std::snprintf(resid, sizeof(resid), "%.3g",
                          p.residualBer);
            t.addRow({p.sweep, x,
                      TextTable::num(100.0 * p.accuracy, 1) + " %",
                      TextTable::num(100.0 * p.idealAccuracy, 1) +
                          " %",
                      resid,
                      TextTable::num(p.meanSpareRowsUsed, 1) + "+" +
                          TextTable::num(p.meanSpareColsUsed, 1),
                      TextTable::num(100.0 * p.exhaustedFraction, 0) +
                          " %",
                      TextTable::num(eOver, 2) + " %",
                      TextTable::num(tOver, 2) + " %"});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("ran %llu Monte-Carlo trials; accuracy is the "
                "Table VI-calibrated proxy at the residual "
                "(post-mitigation) fault rate.\n",
                static_cast<unsigned long long>(result.trialsRun));

    if (!csvPath.empty())
        sim::writeFile(csvPath, reliability::campaignCsv(result));
    if (!jsonPath.empty())
        sim::writeFile(jsonPath, reliability::campaignJson(result));

    // Timing goes to stderr so stdout stays byte-equal between
    // cached, uncached, and any-thread-count runs.
    sim::printPhaseTimes(stderr);
    return 0;
}
