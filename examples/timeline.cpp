/**
 * @file
 * Event-driven timeline driver: lower a network to the shared IR and
 * execute it on either backend.
 *
 *   $ ./build/examples/timeline [options]
 *     --network <name>        model zoo name (default lenet5)
 *     --engine inca|ws        dataflow (default inca)
 *     --phase inference|training  (default inference)
 *     --batch <n>             batch size (default 64)
 *     --backend analytic|event    (default event)
 *     --overlap on|off        double-buffered load/compute (off)
 *     --disasm                print the lowered program and exit
 *     --json <path>           write the run + provenance as JSON
 *
 * Stdout is byte-stable across backends with --overlap off (the
 * bit-exactness contract; CI diffs analytic vs event output) and
 * across thread counts and cache settings. Schedule diagnostics go to
 * stderr. With INCA_TRACE=<path> the event backend emits one Chrome
 * trace span per instruction at simulated time.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "event/event.hh"
#include "examples/cli.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--network <name>] [--engine inca|ws] "
                 "[--phase inference|training] [--batch <n>] "
                 "[--backend analytic|event] [--overlap on|off] "
                 "[--disasm] [--json <path>]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    std::string network = "lenet5";
    std::string engine = "inca";
    std::string phaseName = "inference";
    std::string backend = "event";
    std::string jsonPath;
    int batch = 64;
    bool overlap = false;
    bool disasm = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--network") {
            network = value();
        } else if (arg == "--engine") {
            engine = value();
        } else if (arg == "--phase") {
            phaseName = value();
        } else if (arg == "--batch") {
            batch = int(cli::parsePositive("--batch", value()));
        } else if (arg == "--backend") {
            backend = value();
        } else if (arg == "--overlap") {
            const std::string v = value();
            overlap = v == "on";
            if (!overlap && v != "off")
                usage(argv[0]);
        } else if (arg == "--disasm") {
            disasm = true;
        } else if (arg == "--json") {
            jsonPath = value();
        } else {
            usage(argv[0]);
        }
    }
    if ((engine != "inca" && engine != "ws") ||
        (backend != "analytic" && backend != "event") ||
        (phaseName != "inference" && phaseName != "training"))
        usage(argv[0]);

    const arch::Phase phase = phaseName == "training"
                                  ? arch::Phase::Training
                                  : arch::Phase::Inference;
    const nn::NetworkDesc net = nn::byName(network);
    const ir::LowerOptions opts{overlap};
    const ir::Program program =
        engine == "inca"
            ? ir::lowerInca(arch::paperInca(), net, phase, batch, opts)
            : ir::lowerWs(arch::paperBaseline(), net, phase, batch,
                          opts);

    if (disasm) {
        std::fputs(ir::disassemble(program).c_str(), stdout);
        return 0;
    }

    arch::RunCost run;
    if (backend == "event") {
        const event::TimedRun timed = event::execute(program);
        event::emitTrace(program, timed);
        run = timed.run;
        // Schedule diagnostics -- stderr, so stdout stays diffable
        // against the analytic backend.
        std::fprintf(stderr, "event: %zu instrs, makespan %.17g s\n",
                     program.instrs.size(), timed.makespan);
        for (const auto &[unit, intervals] : timed.busy) {
            Seconds busySum = 0.0;
            for (const auto &iv : intervals)
                busySum += iv.finish - iv.start;
            std::fprintf(stderr,
                         "event: unit %-8s %4zu intervals, busy "
                         "%.17g s\n",
                         unit.c_str(), intervals.size(), busySum);
        }
    } else {
        run = ir::analyticWalk(program);
    }

    // Byte-stable summary: full precision, no backend provenance.
    std::printf("timeline %s.%s.%s batch=%d overlap=%d\n",
                program.engine.c_str(), program.network.c_str(),
                phaseName.c_str(), batch, overlap ? 1 : 0);
    std::printf("layer,kind,latency_s,energy_j\n");
    for (const auto &layer : run.layers)
        std::printf("%s,%s,%.17g,%.17g\n", layer.name.c_str(),
                    nn::layerKindName(layer.kind), layer.latency,
                    layer.energy());
    std::printf("total,latency_s,%.17g\n", run.latency);
    std::printf("total,dynamic_energy_j,%.17g\n", run.sum("energy"));
    std::printf("total,static_energy_j,%.17g\n", run.staticEnergy);
    std::printf("total,energy_j,%.17g\n", run.energy());

    if (!jsonPath.empty()) {
        const std::string extras =
            std::string("\"backend\": \"") + backend +
            "\", \"overlap\": " + (overlap ? "true" : "false") +
            ", \"engine\": \"" + program.engine + "\"";
        sim::writeFile(jsonPath, sim::toJson(run, extras));
    }
    return 0;
}
