/**
 * @file
 * Event-driven timeline driver: lower a network to the shared IR and
 * execute it on either backend.
 *
 *   $ ./build/examples/timeline [options]
 *     --network <name>        model zoo name (default lenet5)
 *     --engine inca|ws        dataflow (default inca)
 *     --phase inference|training  (default inference)
 *     --batch <n>             batch size (default 64)
 *     --backend analytic|event    (default event)
 *     --overlap on|off        double-buffered load/compute (off)
 *     --disasm                print the lowered program and exit
 *     --json <path>           write the run + provenance as JSON
 *     --csv <path>            write the per-layer table as CSV
 *     --report                print the bottleneck report (event only)
 *     --what-if <u=f,...>     what-if factors, e.g. dram=0.5,adc=0.9
 *                             (implies --report; default sweep halves
 *                             each non-ctrl unit)
 *     --report-json <path>    write the bottleneck report as JSON
 *     --report-csv <path>     write the per-unit report table as CSV
 *
 * Stdout is byte-stable across backends with --overlap off (the
 * bit-exactness contract; CI diffs analytic vs event output) and
 * across thread counts and cache settings; the bottleneck report is a
 * pure function of the schedule, so it keeps that property. Schedule
 * diagnostics go to stderr. With INCA_TRACE=<path> the event backend
 * emits spans, sync instants, critical-path flow arrows, and a
 * ready-queue counter at simulated time; with INCA_METRICS=<path> the
 * per-unit occupancy gauges land in the metrics dump.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "event/analysis.hh"
#include "event/event.hh"
#include "examples/cli.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--network <name>] [--engine inca|ws] "
                 "[--phase inference|training] [--batch <n>] "
                 "[--backend analytic|event] [--overlap on|off] "
                 "[--disasm] [--json <path>] [--csv <path>] "
                 "[--report] [--what-if <unit=factor,...>] "
                 "[--report-json <path>] [--report-csv <path>]\n",
                 argv0);
    std::exit(2);
}

/** Parse "dram=0.5,adc=0.9" into (unit, factor) pairs. */
std::vector<std::pair<inca::ir::Unit, double>>
parseWhatIf(const char *text)
{
    using namespace inca;
    std::vector<std::pair<ir::Unit, double>> out;
    std::string list = text;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string token = list.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = token.find('=');
        if (token.empty() || eq == std::string::npos)
            fatal("--what-if: expected unit=factor, got '%s'",
                  token.c_str());
        ir::Unit unit;
        if (!ir::unitByName(token.substr(0, eq), unit))
            fatal("--what-if: unknown unit '%s'",
                  token.substr(0, eq).c_str());
        const double factor = cli::parseDouble(
            "--what-if", token.substr(eq + 1).c_str());
        if (!std::isfinite(factor) || factor <= 0.0)
            fatal("--what-if: factor %g for '%s' must be > 0",
                  factor, token.substr(0, eq).c_str());
        out.push_back({unit, factor});
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    std::string network = "lenet5";
    std::string engine = "inca";
    std::string phaseName = "inference";
    std::string backend = "event";
    std::string jsonPath;
    std::string csvPath;
    std::string reportJsonPath;
    std::string reportCsvPath;
    int batch = 64;
    bool overlap = false;
    bool disasm = false;
    bool report = false;
    std::vector<std::pair<ir::Unit, double>> whatIf;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--network") {
            network = value();
        } else if (arg == "--engine") {
            engine = value();
        } else if (arg == "--phase") {
            phaseName = value();
        } else if (arg == "--batch") {
            batch = int(cli::parsePositive("--batch", value()));
        } else if (arg == "--backend") {
            backend = value();
        } else if (arg == "--overlap") {
            const std::string v = value();
            overlap = v == "on";
            if (!overlap && v != "off")
                usage(argv[0]);
        } else if (arg == "--disasm") {
            disasm = true;
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--csv") {
            csvPath = value();
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--what-if") {
            whatIf = parseWhatIf(value());
            report = true;
        } else if (arg == "--report-json") {
            reportJsonPath = value();
            report = true;
        } else if (arg == "--report-csv") {
            reportCsvPath = value();
            report = true;
        } else {
            usage(argv[0]);
        }
    }
    if ((engine != "inca" && engine != "ws") ||
        (backend != "analytic" && backend != "event") ||
        (phaseName != "inference" && phaseName != "training"))
        usage(argv[0]);
    if (report && backend != "event")
        fatal("--report/--what-if need the schedule: use "
              "--backend event");

    const arch::Phase phase = phaseName == "training"
                                  ? arch::Phase::Training
                                  : arch::Phase::Inference;
    const nn::NetworkDesc net = nn::byName(network);
    const ir::LowerOptions opts{overlap};
    const ir::Program program =
        engine == "inca"
            ? ir::lowerInca(arch::paperInca(), net, phase, batch, opts)
            : ir::lowerWs(arch::paperBaseline(), net, phase, batch,
                          opts);

    if (disasm) {
        std::fputs(ir::disassemble(program).c_str(), stdout);
        return 0;
    }

    arch::RunCost run;
    event::Report analysis;
    if (backend == "event") {
        const event::TimedRun timed = event::execute(program);
        event::emitTrace(program, timed);
        event::AnalyzeOptions aopts;
        aopts.runWhatIf = report;
        aopts.whatIf = whatIf;
        analysis = event::analyze(program, timed, aopts);
        event::publishMetrics(analysis);
        run = timed.run;
        // Schedule diagnostics -- stderr, so stdout stays diffable
        // against the analytic backend.
        std::fprintf(stderr, "event: %zu instrs, makespan %.17g s\n",
                     program.instrs.size(), timed.makespan);
        for (const auto &[unit, intervals] : timed.busy) {
            Seconds busySum = 0.0;
            for (const auto &iv : intervals)
                busySum += iv.finish - iv.start;
            std::fprintf(stderr,
                         "event: unit %-8s %4zu intervals, busy "
                         "%.17g s\n",
                         unit.c_str(), intervals.size(), busySum);
        }
    } else {
        run = ir::analyticWalk(program);
    }

    // Byte-stable summary: full precision, no backend provenance.
    std::printf("timeline %s.%s.%s batch=%d overlap=%d\n",
                program.engine.c_str(), program.network.c_str(),
                phaseName.c_str(), batch, overlap ? 1 : 0);
    std::printf("layer,kind,latency_s,energy_j\n");
    for (const auto &layer : run.layers)
        std::printf("%s,%s,%.17g,%.17g\n", layer.name.c_str(),
                    nn::layerKindName(layer.kind), layer.latency,
                    layer.energy());
    std::printf("total,latency_s,%.17g\n", run.latency);
    std::printf("total,dynamic_energy_j,%.17g\n", run.sum("energy"));
    std::printf("total,static_energy_j,%.17g\n", run.staticEnergy);
    std::printf("total,energy_j,%.17g\n", run.energy());

    if (report)
        std::fputs(event::reportText(program, analysis).c_str(),
                   stdout);
    if (!reportJsonPath.empty())
        sim::writeFile(reportJsonPath,
                       event::reportJson(program, analysis));
    if (!reportCsvPath.empty())
        sim::writeFile(reportCsvPath,
                       event::reportCsv(program, analysis));
    if (!csvPath.empty())
        sim::writeFile(csvPath, sim::toCsv(run));
    if (!jsonPath.empty()) {
        const std::string extras =
            std::string("\"backend\": \"") + backend +
            "\", \"overlap\": " + (overlap ? "true" : "false") +
            ", \"engine\": \"" + program.engine + "\"";
        sim::writeFile(jsonPath, sim::toJson(run, extras));
    }
    return 0;
}
