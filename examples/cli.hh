/**
 * @file
 * Strict command-line value parsers shared by the example drivers.
 *
 * Every parser consumes the whole token or dies with fatal(), naming
 * the flag and the offending text -- "--batch 64x" must not silently
 * run with batch 64 (strtol semantics), and "--batch banana" must not
 * run with batch 0. Bad CLI input is a user error, so the exit path
 * is fatal(), never panic().
 */

#ifndef INCA_EXAMPLES_CLI_HH
#define INCA_EXAMPLES_CLI_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace inca {
namespace cli {

/** Parse a whole-token signed integer or die. */
inline long long
parseInt(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, text);
    return v;
}

/** Parse a strictly positive integer or die. */
inline long long
parsePositive(const char *flag, const char *text)
{
    const long long v = parseInt(flag, text);
    if (v <= 0)
        fatal("%s must be positive, got %lld", flag, v);
    return v;
}

/** Parse a whole-token unsigned 64-bit integer or die. */
inline std::uint64_t
parseU64(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    if (*text == '-')
        fatal("%s must be non-negative, got '%s'", flag, text);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a non-negative integer", flag, text);
    return v;
}

/** Parse a whole-token floating-point value or die. */
inline double
parseDouble(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a number", flag, text);
    return v;
}

/** Parse a comma-separated list of doubles ("1e-4,1e-3") or die. */
inline std::vector<double>
parseDoubleList(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a comma-separated list, got an empty value",
              flag);
    std::vector<double> out;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string token = s.substr(pos, comma - pos);
        out.push_back(parseDouble(flag, token.c_str()));
        pos = comma + 1;
    }
    return out;
}

/**
 * Parse a duration with a required unit suffix ("500ms", "2s",
 * "750us", "1e3ns") into seconds, or die. The bare token "0" is
 * accepted without a unit (zero is zero in any unit); every other
 * unitless or negative value is a user error.
 */
inline double
parseDuration(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a duration like '500ms' or '2s', got an "
              "empty value",
              flag);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || errno == ERANGE)
        fatal("%s: '%s' is not a duration", flag, text);
    if (v < 0.0)
        fatal("%s must be non-negative, got '%s'", flag, text);
    const std::string unit = end;
    if (unit.empty()) {
        if (v == 0.0)
            return 0.0;
        fatal("%s: '%s' needs a unit suffix (ns, us, ms, s)", flag,
              text);
    }
    if (unit == "ns")
        return v * 1e-9;
    if (unit == "us")
        return v * 1e-6;
    if (unit == "ms")
        return v * 1e-3;
    if (unit == "s")
        return v;
    fatal("%s: unknown duration unit '%s' in '%s' (expected ns, us, "
          "ms, or s)",
          flag, unit.c_str(), text);
}

/**
 * Parse a strictly positive event rate ("80/s", "1.5k/s", "2M/s")
 * into events per second, or die. The "/s" suffix is optional on a
 * bare number ("80" means 80/s) but required after an SI multiplier,
 * so "1.5k" alone does not parse.
 */
inline double
parseRate(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a rate like '80/s' or '1.5k/s', got an "
              "empty value",
              flag);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || errno == ERANGE)
        fatal("%s: '%s' is not a rate", flag, text);
    std::string rest = end;
    bool scaled = false;
    if (!rest.empty()) {
        if (rest[0] == 'k' || rest[0] == 'K') {
            v *= 1e3;
            scaled = true;
        } else if (rest[0] == 'M') {
            v *= 1e6;
            scaled = true;
        } else if (rest[0] == 'G') {
            v *= 1e9;
            scaled = true;
        }
        if (scaled)
            rest = rest.substr(1);
    }
    if (!rest.empty() && rest != "/s")
        fatal("%s: trailing '%s' in '%s' (expected '/s')", flag,
              rest.c_str(), text);
    if (scaled && rest.empty())
        fatal("%s: '%s' needs '/s' after the multiplier", flag, text);
    if (v <= 0.0)
        fatal("%s must be positive, got '%s'", flag, text);
    return v;
}

/** Parse a comma-separated list of signed integers or die. */
inline std::vector<std::int64_t>
parseIntList(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a comma-separated list, got an empty value",
              flag);
    std::vector<std::int64_t> out;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string token = s.substr(pos, comma - pos);
        out.push_back(parseInt(flag, token.c_str()));
        pos = comma + 1;
    }
    return out;
}

} // namespace cli
} // namespace inca

#endif // INCA_EXAMPLES_CLI_HH
