/**
 * @file
 * Strict command-line value parsers shared by the example drivers.
 *
 * Every parser consumes the whole token or dies with fatal(), naming
 * the flag and the offending text -- "--batch 64x" must not silently
 * run with batch 64 (strtol semantics), and "--batch banana" must not
 * run with batch 0. Bad CLI input is a user error, so the exit path
 * is fatal(), never panic().
 */

#ifndef INCA_EXAMPLES_CLI_HH
#define INCA_EXAMPLES_CLI_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace inca {
namespace cli {

/** Parse a whole-token signed integer or die. */
inline long long
parseInt(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, text);
    return v;
}

/** Parse a strictly positive integer or die. */
inline long long
parsePositive(const char *flag, const char *text)
{
    const long long v = parseInt(flag, text);
    if (v <= 0)
        fatal("%s must be positive, got %lld", flag, v);
    return v;
}

/** Parse a whole-token unsigned 64-bit integer or die. */
inline std::uint64_t
parseU64(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    if (*text == '-')
        fatal("%s must be non-negative, got '%s'", flag, text);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a non-negative integer", flag, text);
    return v;
}

/** Parse a whole-token floating-point value or die. */
inline double
parseDouble(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a number, got an empty value", flag);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a number", flag, text);
    return v;
}

/** Parse a comma-separated list of doubles ("1e-4,1e-3") or die. */
inline std::vector<double>
parseDoubleList(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a comma-separated list, got an empty value",
              flag);
    std::vector<double> out;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string token = s.substr(pos, comma - pos);
        out.push_back(parseDouble(flag, token.c_str()));
        pos = comma + 1;
    }
    return out;
}

/** Parse a comma-separated list of signed integers or die. */
inline std::vector<std::int64_t>
parseIntList(const char *flag, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s needs a comma-separated list, got an empty value",
              flag);
    std::vector<std::int64_t> out;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string token = s.substr(pos, comma - pos);
        out.push_back(parseInt(flag, token.c_str()));
        pos = comma + 1;
    }
    return out;
}

} // namespace cli
} // namespace inca

#endif // INCA_EXAMPLES_CLI_HH
