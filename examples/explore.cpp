/**
 * @file
 * Design-space exploration driver on top of src/dse.
 *
 * Enumerates (grid), samples (random), or anneals over a space of
 * accelerator configurations, filters them through constraint bounds,
 * scores survivors with the analytic engines in parallel, and reduces
 * the results to a Pareto frontier over the chosen objectives. The
 * frontier -- and every exported artifact -- is bit-identical at any
 * thread count, and a run killed midway resumes from its journal to
 * the same result as an uninterrupted one.
 *
 *   $ ./build/examples/explore --engine inca --network resnet18 \
 *       --strategy random --seed 7 --budget 64 \
 *       --objectives energy,latency,area \
 *       --constraint max_area_mm2=200 \
 *       --journal run.jsonl --csv frontier.csv
 *   # ... killed ...
 *   $ ./build/examples/explore ... --journal run.jsonl --resume
 *
 * Axes default to dse::defaultSpace(engine); override with repeated
 * --axis name=v1,v2,... flags (see dse/space.hh for the axis names).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "dse/explorer.hh"
#include "examples/cli.hh"
#include "sim/export.hh"
#include "sim/report.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --engine inca|ws        engine to score (default inca)\n"
        "  --phase inference|training\n"
        "  --network <name>        model-zoo network (default "
        "resnet18)\n"
        "  --strategy grid|random|anneal\n"
        "  --seed <n>              strategy RNG seed (default 1)\n"
        "  --budget <n>            max candidates (0 = whole space)\n"
        "  --objectives a,b,...    energy,latency,area,edp,"
        "idle_power,utilization,accuracy,resilience,"
        "latency_timed,\n"
        "                          p99_latency,goodput,"
        "energy_per_request,\n"
        "                          availability,shed_fraction\n"
        "  --constraint k=v        repeatable; max_area_mm2, "
        "max_idle_w,\n"
        "                          min_utilization, min_accuracy,\n"
        "                          min_accuracy_at_ber, "
        "lossless_adc,\n"
        "                          max_p99_ms, min_availability\n"
        "  --soft                  constraints warn but still score\n"
        "  --axis name=v1,v2,...   repeatable; replaces the default "
        "space\n"
        "  --iso-capacity          rescale tiles to keep base cell "
        "count\n"
        "  --sigma <x>             device-noise level for the "
        "accuracy proxy\n"
        "  --ber <x>               reference fault rate for the "
        "resilience proxy\n"
        "  --retries <n>           write-verify retry budget "
        "(resilience)\n"
        "  --spare-rows <n>        spare rows per array "
        "(resilience)\n"
        "  --spare-cols <n>        spare columns per array "
        "(resilience)\n"
        "  --eval-batch <n>        candidates per parallel wave\n"
        "  serving scenario (p99_latency/goodput/energy_per_request\n"
        "  objectives and max_p99_ms; axes replicas, serve_batch,\n"
        "  shard, shard_chips override per candidate):\n"
        "  --arrivals poisson|bursty|diurnal\n"
        "  --rate <r>              offered load (e.g. 200/s)\n"
        "  --serve-duration <d>    arrival horizon (e.g. 200ms)\n"
        "  --serve-seed <n>        arrival RNG seed\n"
        "  --serve-replicas <n>    fixed server count\n"
        "  --serve-shard k[:n]     replica, pipeline:<n>, tensor:<n>\n"
        "  --batch-policy n:<d>    batch cap and timeout (e.g. "
        "8:2ms)\n"
        "  --slo-ms <x>            goodput latency SLO\n"
        "  chaos layer (availability/shed_fraction objectives,\n"
        "  min_availability; axis failure_mtbf in ms overrides):\n"
        "  --failures <spec>       none | mtbf:mttr[:frac[:slow]]\n"
        "  --serve-retry <spec>    none | budget:backoff[:jitter]\n"
        "  --deadline-ms <x>       per-request deadline (0 = off)\n"
        "  --queue-cap <n>         per-stream queue bound (0 = off)\n"
        "  --journal <path>        JSONL checkpoint journal\n"
        "  --resume                reuse the journal's evaluations\n"
        "  --csv <path>            write the frontier as CSV\n"
        "  --json <path>           write the frontier JSON report\n"
        "  --export-runs <prefix>  per-frontier-point run "
        "CSV/JSON\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    dse::ExploreOptions opt;
    std::vector<std::pair<std::string, std::vector<std::int64_t>>>
        axes;
    std::string csvPath, jsonPath, exportPrefix;

    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--engine") == 0) {
            opt.engine = dse::engineKindByName(value(i));
        } else if (std::strcmp(a, "--phase") == 0) {
            const std::string p = value(i);
            if (p == "inference")
                opt.phase = arch::Phase::Inference;
            else if (p == "training")
                opt.phase = arch::Phase::Training;
            else
                fatal("unknown phase '%s'", p.c_str());
        } else if (std::strcmp(a, "--network") == 0) {
            opt.network = value(i);
        } else if (std::strcmp(a, "--strategy") == 0) {
            opt.strategy = dse::strategyKindByName(value(i));
        } else if (std::strcmp(a, "--seed") == 0) {
            opt.seed = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--budget") == 0) {
            opt.budget = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--objectives") == 0) {
            opt.objectives = dse::objectivesByNames(value(i));
        } else if (std::strcmp(a, "--constraint") == 0) {
            opt.constraints.set(value(i));
        } else if (std::strcmp(a, "--soft") == 0) {
            opt.softConstraints = true;
        } else if (std::strcmp(a, "--axis") == 0) {
            const std::string spec = value(i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos)
                fatal("--axis '%s' is not name=v1,v2,...",
                      spec.c_str());
            axes.emplace_back(
                spec.substr(0, eq),
                cli::parseIntList(a, spec.c_str() + eq + 1));
        } else if (std::strcmp(a, "--iso-capacity") == 0) {
            opt.isoCapacity = true;
        } else if (std::strcmp(a, "--sigma") == 0) {
            opt.noiseSigma = cli::parseDouble(a, value(i));
        } else if (std::strcmp(a, "--ber") == 0) {
            opt.faultBer = cli::parseDouble(a, value(i));
        } else if (std::strcmp(a, "--retries") == 0) {
            opt.mitigation.writeVerifyRetries =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--spare-rows") == 0) {
            opt.mitigation.spareRows =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--spare-cols") == 0) {
            opt.mitigation.spareCols =
                int(cli::parseInt(a, value(i)));
        } else if (std::strcmp(a, "--eval-batch") == 0) {
            opt.evalBatch =
                std::size_t(cli::parsePositive(a, value(i)));
        } else if (std::strcmp(a, "--arrivals") == 0) {
            opt.serving.arrivals.kind =
                serving::arrivalKindByName(value(i));
        } else if (std::strcmp(a, "--rate") == 0) {
            opt.serving.arrivals.ratePerS =
                cli::parseRate(a, value(i));
        } else if (std::strcmp(a, "--serve-duration") == 0) {
            opt.serving.durationS = cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--serve-seed") == 0) {
            opt.serving.arrivals.seed = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--serve-replicas") == 0) {
            opt.serving.replicas =
                int(cli::parsePositive(a, value(i)));
        } else if (std::strcmp(a, "--serve-shard") == 0) {
            const std::string s = value(i);
            const std::size_t colon = s.find(':');
            opt.serving.shard.kind =
                serving::shardKindByName(s.substr(0, colon));
            if (colon != std::string::npos)
                opt.serving.shard.chips = int(cli::parsePositive(
                    a, s.c_str() + colon + 1));
            else if (opt.serving.shard.kind !=
                     serving::ShardKind::Replica)
                fatal("%s: '%s' needs a chip count (e.g. tensor:4)",
                      a, s.c_str());
        } else if (std::strcmp(a, "--batch-policy") == 0) {
            const std::string s = value(i);
            const std::size_t colon = s.find(':');
            if (colon == std::string::npos)
                fatal("%s: '%s' is not size:timeout (e.g. 8:2ms)", a,
                      s.c_str());
            opt.serving.batch.maxBatch = int(cli::parsePositive(
                a, s.substr(0, colon).c_str()));
            opt.serving.batch.timeoutS =
                cli::parseDuration(a, s.c_str() + colon + 1);
        } else if (std::strcmp(a, "--slo-ms") == 0) {
            opt.serving.sloS =
                cli::parseDouble(a, value(i)) * 1e-3;
        } else if (std::strcmp(a, "--failures") == 0) {
            opt.serving.failures =
                serving::parseFailureSpec(a, value(i));
        } else if (std::strcmp(a, "--serve-retry") == 0) {
            opt.serving.retry = serving::parseRetrySpec(a, value(i));
        } else if (std::strcmp(a, "--deadline-ms") == 0) {
            opt.serving.deadlineS =
                cli::parseDouble(a, value(i)) * 1e-3;
            if (opt.serving.deadlineS < 0.0)
                fatal("%s: deadline must be non-negative", a);
        } else if (std::strcmp(a, "--queue-cap") == 0) {
            opt.serving.queueCap = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--journal") == 0) {
            opt.journalPath = value(i);
        } else if (std::strcmp(a, "--resume") == 0) {
            opt.resume = true;
        } else if (std::strcmp(a, "--csv") == 0) {
            csvPath = value(i);
        } else if (std::strcmp(a, "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(a, "--export-runs") == 0) {
            exportPrefix = value(i);
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown flag '%s'", a);
        }
    }

    dse::SearchSpace space;
    if (axes.empty()) {
        space = dse::defaultSpace(opt.engine);
    } else {
        for (auto &[name, values] : axes)
            space.axis(name, std::move(values));
    }

    dse::Explorer explorer(std::move(space), std::move(opt));
    const dse::ExploreOptions &options = explorer.options();

    std::printf("exploring %s/%s on %s, strategy %s, seed %llu\n",
                dse::engineKindName(options.engine),
                options.phase == arch::Phase::Training ? "training"
                                                       : "inference",
                options.network.c_str(),
                dse::strategyKindName(options.strategy),
                static_cast<unsigned long long>(options.seed));
    std::printf("space:");
    for (const auto &axis : explorer.space().axes()) {
        std::printf(" %s{", axis.name.c_str());
        for (std::size_t i = 0; i < axis.values.size(); ++i)
            std::printf("%s%lld", i ? "," : "",
                        static_cast<long long>(axis.values[i]));
        std::printf("}");
    }
    std::printf(" -> %llu candidates\n\n",
                static_cast<unsigned long long>(
                    explorer.space().size()));

    dse::ExploreResult result;
    {
        sim::ScopedPhaseTimer timer("explore");
        result = explorer.run();
    }

    std::printf("evaluated %zu (scored %llu, filtered %llu, reused "
                "%llu); frontier %zu of %llu\n\n",
                result.evaluations.size(),
                static_cast<unsigned long long>(result.scored),
                static_cast<unsigned long long>(result.filtered),
                static_cast<unsigned long long>(result.reused),
                result.frontier.size(),
                static_cast<unsigned long long>(result.spaceSize));

    TextTable table({"point", "E/batch", "t/batch", "area", "util",
                     "accuracy", "resilience"});
    for (const auto &e : result.frontier) {
        table.addRow(
            {explorer.space().describe(e.candidate),
             formatSi(e.energyJ, "J"), formatSi(e.latencyS, "s"),
             formatAreaMm2(e.areaM2),
             TextTable::num(100.0 * e.utilization, 1) + " %",
             TextTable::num(100.0 * e.accuracy, 1) + " %",
             TextTable::num(100.0 * e.resilience, 1) + " %"});
    }
    table.print();

    if (!csvPath.empty())
        sim::writeFile(csvPath,
                       dse::frontierCsv(explorer.space(),
                                        result.frontier,
                                        options.objectives));
    if (!jsonPath.empty())
        sim::writeFile(jsonPath, dse::frontierJson(explorer, result));
    if (!exportPrefix.empty())
        dse::exportFrontierRuns(explorer, result, exportPrefix);

    sim::printPhaseTimes();
    return 0;
}
