/**
 * @file
 * Configure a custom INCA / baseline design point from an INI file
 * (or the built-in demo config), simulate it, and export per-layer
 * results for plotting.
 *
 *   $ ./build/examples/custom_chip [config.ini] [network] [batch]
 *
 * Config keys (all optional; defaults are Table II):
 *
 *     [inca]
 *     subarray_size = 32      ; plane side
 *     stacked_planes = 32     ; batch slots per 3D stack
 *     adc_bits = 5
 *     num_tiles = 84
 *     buffer_kib = 128
 *     [baseline]
 *     subarray_size = 256
 *     adc_bits = 8
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/engine.hh"
#include "common/config.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "examples/cli.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"
#include "sim/report.hh"

namespace {

const char *kDemoConfig = R"(# demo: a half-size INCA next to a
# double-resolution baseline
[inca]
subarray_size = 32
stacked_planes = 32
adc_bits = 5
[baseline]
adc_bits = 8
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    const Config chipCfg = argc > 1
                               ? Config::fromFile(argv[1])
                               : Config::fromString(kDemoConfig);
    const std::string netName = argc > 2 ? argv[2] : "resnet18";
    const int batch =
        argc > 3 ? int(cli::parsePositive("[batch]", argv[3])) : 64;

    std::printf("configuration (%s):\n",
                argc > 1 ? argv[1] : "built-in demo");
    for (const auto &key : chipCfg.keys())
        std::printf("  %s = %s\n", key.c_str(),
                    chipCfg.getString(key).c_str());

    const arch::IncaConfig incaCfg = arch::incaFromConfig(chipCfg);
    const arch::BaselineConfig baseCfg =
        arch::baselineFromConfig(chipCfg);
    core::IncaEngine inca(incaCfg);
    baseline::BaselineEngine base(baseCfg);
    const auto net = nn::byName(netName);

    TextTable t({"phase", "INCA energy", "INCA latency",
                 "energy gain", "speedup"});
    for (const auto phase :
         {arch::Phase::Inference, arch::Phase::Training}) {
        const auto c = sim::compare(inca, base, net, batch, phase);
        t.addRow({phase == arch::Phase::Training ? "training"
                                                 : "inference",
                  formatSi(c.inca.energy(), "J"),
                  formatSi(c.inca.latency, "s"),
                  TextTable::ratio(c.energyEfficiencyGain()),
                  TextTable::ratio(c.speedup())});
    }
    std::printf("\n%s on the configured chips, batch %d:\n",
                net.name.c_str(), batch);
    t.print();

    // Export the INCA run for external plotting.
    const auto run = inca.inference(net, batch);
    const std::string csvPath = "/tmp/inca_" + netName + ".csv";
    const std::string jsonPath = "/tmp/inca_" + netName + ".json";
    sim::writeFile(csvPath, sim::toCsv(run));
    sim::writeFile(jsonPath, sim::toJson(run));
    std::printf("\nper-layer results exported to %s and %s\n",
                csvPath.c_str(), jsonPath.c_str());
    return 0;
}
