/**
 * @file
 * The paper's headline experiment as an application: run every
 * evaluation network through the INCA engine, the WS baseline, and
 * the GPU roofline, for inference and training, and print the
 * Fig. 11 / Fig. 14 / Fig. 15 comparison in one table.
 *
 *   $ ./build/examples/compare_dataflows [batch] [--json <path>]
 */

#include <cstdio>
#include <cstdlib>

#include "bench/bench_json.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "examples/cli.hh"
#include "gpu/gpu_model.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    const std::string jsonPath = bench::extractJsonPath(argc, argv);
    const int batch =
        argc > 1 ? int(cli::parsePositive("[batch]", argv[1])) : 64;
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    gpu::GpuModel titan;

    std::printf("INCA vs. WS baseline vs. GPU, batch %d\n\n", batch);

    const auto nets = nn::evaluationSuite();
    for (const auto phase :
         {arch::Phase::Inference, arch::Phase::Training}) {
        const bool training = phase == arch::Phase::Training;
        std::printf("%s:\n", training ? "training" : "inference");
        TextTable t({"network", "INCA E/img", "WS gain", "GPU gain",
                     "INCA t/img", "WS speedup", "GPU speedup"});
        std::vector<sim::Comparison> cmps;
        {
            sim::ScopedPhaseTimer timer(training ? "training suite"
                                                 : "inference suite");
            cmps = sim::compareSuite(inca, base, nets, batch, phase);
        }
        for (std::size_t i = 0; i < nets.size(); ++i) {
            const auto &net = nets[i];
            const auto &cmp = cmps[i];
            const auto g = training ? titan.training(net, batch)
                                    : titan.inference(net, batch);
            t.addRow({net.name,
                      formatSi(cmp.inca.energyPerImage(), "J"),
                      TextTable::ratio(cmp.energyEfficiencyGain()),
                      TextTable::ratio((g.energy / batch) /
                                       cmp.inca.energyPerImage()),
                      formatSi(cmp.inca.latencyPerImage(), "s"),
                      TextTable::ratio(cmp.speedup()),
                      TextTable::ratio(g.latency / cmp.inca.latency)});
            const std::string prefix =
                training ? "training." : "inference.";
            auto &report = bench::JsonReport::instance();
            report.addPoint(prefix + "inca_energy_per_image_j",
                            net.name, cmp.inca.energyPerImage());
            report.addPoint(prefix + "ws_efficiency_gain", net.name,
                            cmp.energyEfficiencyGain());
            report.addPoint(prefix + "inca_latency_per_image_s",
                            net.name, cmp.inca.latencyPerImage());
            report.addPoint(prefix + "ws_speedup", net.name,
                            cmp.speedup());
            report.addPoint(prefix + "gpu_speedup", net.name,
                            g.latency / cmp.inca.latency);
        }
        t.print();
        std::printf("\n");
    }

    std::printf("gains are baseline/INCA (>1 means INCA wins). The "
                "paper's Fig. 11/14/15 shapes: INCA ahead everywhere, "
                "training >> inference, light models >> heavy.\n");
    // Timing and cache stats go to stderr so stdout stays byte-equal
    // between cached, uncached, and any-thread-count runs.
    sim::printPhaseTimes(stderr);
    if (!jsonPath.empty())
        bench::JsonReport::instance().write(jsonPath);
    return 0;
}
