/**
 * @file
 * Quickstart: simulate one inference batch of ResNet18 on the INCA
 * accelerator and print where the time and energy go.
 *
 *   $ ./build/examples/quickstart [network] [batch]
 *
 * Networks: vgg16 vgg19 resnet18 resnet50 mobilenetv2 mnasnet lenet5.
 */

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <string>

#include "arch/area.hh"
#include "arch/config.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "examples/cli.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"
#include "sim/schedule.hh"

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    const std::string name = argc > 1 ? argv[1] : "resnet18";
    const int batch =
        argc > 2 ? int(cli::parsePositive("[batch]", argv[2])) : 64;

    // 1. Describe the workload: layer shapes only; the analytic
    //    simulator needs no weights.
    const nn::NetworkDesc net = nn::byName(name);
    std::printf("workload: %s -- %lld conv-like layers, %.1f M "
                "weights, %.2f G MACs/image\n",
                net.name.c_str(),
                (long long)net.convLayers().size(),
                double(net.totalWeights()) / 1e6,
                double(net.totalMacs()) / 1e9);

    // 2. Configure the chip (Table II defaults) and build the engine.
    const arch::IncaConfig cfg = arch::paperInca();
    core::IncaEngine engine(cfg);
    std::printf("chip: %d tiles x %d macros x %d stacks of %dx%dx%d "
                "2T1R cells, %d-bit ADCs; %s, idle %s\n",
                cfg.org.numTiles, cfg.org.tileSize, cfg.org.macroSize,
                cfg.subarraySize, cfg.subarraySize, cfg.stackedPlanes,
                cfg.adcBits,
                formatAreaMm2(arch::incaArea(cfg).total()).c_str(),
                formatSi(engine.idlePower(), "W").c_str());

    // 3. Simulate a batch.
    const arch::RunCost run = engine.inference(net, batch);
    std::printf("\nbatch of %d images: %s, %s  (%s/image, %.1f "
                "images/s)\n",
                batch, formatSi(run.energy(), "J").c_str(),
                formatSi(run.latency, "s").c_str(),
                formatSi(run.energyPerImage(), "J").c_str(),
                run.throughput());

    // 4. Break the energy down by component.
    TextTable t({"component", "energy", "share"});
    const auto abs = sim::energyBreakdown(run);
    const auto pct = sim::energyBreakdownPct(run);
    for (const auto &[key, value] : abs) {
        t.addRow({key, formatSi(value, "J"),
                  TextTable::num(pct.at(key), 1) + " %"});
    }
    t.print();

    // 5. Execution timeline of the five longest layers.
    const auto timeline = sim::timelineOf(run);
    std::printf("\nlongest layers on the timeline:\n");
    sim::Timeline top;
    top.entries = timeline.longest(5);
    std::fputs(top.gantt(48).c_str(), stdout);

    // 6. The five most expensive layers.
    auto layers = run.layers;
    std::sort(layers.begin(), layers.end(),
              [](const auto &a, const auto &b) {
                  return a.energy() > b.energy();
              });
    std::printf("\nmost expensive layers:\n");
    for (size_t i = 0; i < layers.size() && i < 5; ++i) {
        std::printf("  %-12s %s\n", layers[i].name.c_str(),
                    formatSi(layers[i].energy(), "J").c_str());
    }
    return 0;
}
