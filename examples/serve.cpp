/**
 * @file
 * Datacenter serving driver on top of src/serving: an open-loop
 * arrival process over the model zoo, an async batching scheduler,
 * and replicated (optionally sharded) INCA or WS chip servers, all in
 * virtual time.
 *
 *   $ ./build/examples/serve --network vgg16 --arrivals poisson \
 *       --rate 200/s --duration 2s --replicas 4 \
 *       --shard tensor:4 --batch-policy 8:2ms --slo-ms 25 \
 *       --json report.json --csv requests.csv
 *
 * The report -- and every exported artifact -- is bit-identical at
 * any thread count and with the eval cache on or off: the simulated
 * clock advances only on event timestamps, never on wall time.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "examples/cli.hh"
#include "serving/export.hh"
#include "serving/simulator.hh"
#include "sim/export.hh"
#include "sim/report.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --engine inca|ws        chip model (default inca)\n"
        "  --network <name>        model-zoo network (default vgg16)\n"
        "  --stream n[:w[:p]]      repeatable workload mix entry:\n"
        "                          network, weight, priority; "
        "replaces --network\n"
        "  --arrivals poisson|bursty|diurnal\n"
        "  --rate <r>              offered load, e.g. 200/s, 1.5k/s\n"
        "  --duration <d>          arrival horizon, e.g. 500ms, 2s\n"
        "  --seed <n>              arrival/stream RNG seed\n"
        "  --burst <x>             bursty on-state rate factor\n"
        "  --mean-on <d>           bursty mean on-state sojourn\n"
        "  --mean-off <d>          bursty mean off-state sojourn\n"
        "  --period <d>            diurnal cycle length\n"
        "  --depth <x>             diurnal modulation depth [0,1)\n"
        "  --replicas <n>          server count (default 1)\n"
        "  --shard kind[:chips]    replica, pipeline:<n>, tensor:<n>\n"
        "  --batch-policy n:<d>    batch cap and timeout (e.g. "
        "8:2ms)\n"
        "  --slo-ms <x>            latency SLO for goodput\n"
        "  --failures <spec>       none | mtbf:mttr[:frac[:slow]]\n"
        "                          e.g. 200ms:50ms or 2s:100ms:0.3:8\n"
        "  --fail-seed <n>         failure-process RNG seed\n"
        "  --fail-recovery <d>     post-repair reload window\n"
        "  --fail-aging <x>        per-repair MTBF scale in (0,1]\n"
        "  --fail-drop             drop in-flight work on a failure\n"
        "                          instead of re-enqueuing it\n"
        "  --retry <spec>          none | budget:backoff[:jitter]\n"
        "                          e.g. 3:1ms or 5:500us:0.25\n"
        "  --deadline-ms <x>       per-request deadline (0 = off)\n"
        "  --hedge <d>             hedge batches waiting this long\n"
        "  --queue-cap <n>         per-stream queue bound (0 = off)\n"
        "  --json <path>           write the JSON report\n"
        "  --csv <path>            write the per-request CSV\n"
        "  --timeline-csv <path>   write the queue-depth timeline\n",
        argv0);
}

inca::serving::ShardSpec
parseShard(const char *flag, const char *text)
{
    using namespace inca;
    serving::ShardSpec shard;
    const std::string s = text;
    const std::size_t colon = s.find(':');
    shard.kind =
        serving::shardKindByName(s.substr(0, colon));
    if (colon != std::string::npos)
        shard.chips = int(cli::parsePositive(
            flag, s.c_str() + colon + 1));
    else if (shard.kind != serving::ShardKind::Replica)
        fatal("%s: '%s' needs a chip count (e.g. tensor:4)", flag,
              text);
    return shard;
}

inca::serving::BatchPolicy
parseBatchPolicy(const char *flag, const char *text)
{
    using namespace inca;
    serving::BatchPolicy policy;
    const std::string s = text;
    const std::size_t colon = s.find(':');
    if (colon == std::string::npos)
        fatal("%s: '%s' is not size:timeout (e.g. 8:2ms)", flag,
              text);
    policy.maxBatch = int(
        cli::parsePositive(flag, s.substr(0, colon).c_str()));
    policy.timeoutS =
        cli::parseDuration(flag, s.c_str() + colon + 1);
    return policy;
}

inca::serving::StreamSpec
parseStream(const char *flag, const char *text)
{
    using namespace inca;
    serving::StreamSpec stream;
    const std::string s = text;
    const std::size_t c1 = s.find(':');
    stream.network = s.substr(0, c1);
    if (stream.network.empty())
        fatal("%s: '%s' names no network", flag, text);
    if (c1 != std::string::npos) {
        const std::size_t c2 = s.find(':', c1 + 1);
        const std::string w =
            s.substr(c1 + 1, c2 == std::string::npos
                                 ? std::string::npos
                                 : c2 - c1 - 1);
        stream.weight = cli::parseDouble(flag, w.c_str());
        if (stream.weight <= 0.0)
            fatal("%s: stream weight must be positive in '%s'", flag,
                  text);
        if (c2 != std::string::npos)
            stream.priority =
                int(cli::parseInt(flag, s.c_str() + c2 + 1));
    }
    return stream;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace inca;

    checkEnvironment();

    serving::ServingSpec spec;
    std::vector<serving::StreamSpec> streams;
    std::string network = "vgg16";
    std::string jsonPath, csvPath, timelinePath;

    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--engine") == 0) {
            const std::string e = value(i);
            if (e == "inca")
                spec.incaEngine = true;
            else if (e == "ws" || e == "baseline")
                spec.incaEngine = false;
            else
                fatal("unknown engine '%s' (expected inca or ws)",
                      e.c_str());
        } else if (std::strcmp(a, "--network") == 0) {
            network = value(i);
        } else if (std::strcmp(a, "--stream") == 0) {
            streams.push_back(parseStream(a, value(i)));
        } else if (std::strcmp(a, "--arrivals") == 0) {
            spec.arrivals.kind =
                serving::arrivalKindByName(value(i));
        } else if (std::strcmp(a, "--rate") == 0) {
            spec.arrivals.ratePerS = cli::parseRate(a, value(i));
        } else if (std::strcmp(a, "--duration") == 0) {
            spec.durationS = cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--seed") == 0) {
            spec.arrivals.seed = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--burst") == 0) {
            spec.arrivals.burstFactor = cli::parseDouble(a, value(i));
        } else if (std::strcmp(a, "--mean-on") == 0) {
            spec.arrivals.meanOnS = cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--mean-off") == 0) {
            spec.arrivals.meanOffS = cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--period") == 0) {
            spec.arrivals.diurnalPeriodS =
                cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--depth") == 0) {
            spec.arrivals.diurnalDepth =
                cli::parseDouble(a, value(i));
        } else if (std::strcmp(a, "--replicas") == 0) {
            spec.replicas = int(cli::parsePositive(a, value(i)));
        } else if (std::strcmp(a, "--shard") == 0) {
            spec.shard = parseShard(a, value(i));
        } else if (std::strcmp(a, "--batch-policy") == 0) {
            spec.batch = parseBatchPolicy(a, value(i));
        } else if (std::strcmp(a, "--slo-ms") == 0) {
            spec.sloS = cli::parseDouble(a, value(i)) * 1e-3;
        } else if (std::strcmp(a, "--failures") == 0) {
            // The --fail-* knobs compose with --failures in any
            // flag order: parse replaces only what it names.
            const serving::FailureSpec keep = spec.failures;
            spec.failures = serving::parseFailureSpec(a, value(i));
            spec.failures.seed = keep.seed;
            spec.failures.recoveryS = keep.recoveryS;
            spec.failures.aging = keep.aging;
            spec.failures.dropInFlight = keep.dropInFlight;
        } else if (std::strcmp(a, "--fail-seed") == 0) {
            spec.failures.seed = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--fail-recovery") == 0) {
            spec.failures.recoveryS =
                cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--fail-aging") == 0) {
            spec.failures.aging = cli::parseDouble(a, value(i));
            if (spec.failures.aging <= 0.0 ||
                spec.failures.aging > 1.0)
                fatal("%s: aging factor must be in (0, 1]", a);
        } else if (std::strcmp(a, "--fail-drop") == 0) {
            spec.failures.dropInFlight = true;
        } else if (std::strcmp(a, "--retry") == 0) {
            spec.retry = serving::parseRetrySpec(a, value(i));
        } else if (std::strcmp(a, "--deadline-ms") == 0) {
            spec.deadlineS = cli::parseDouble(a, value(i)) * 1e-3;
            if (spec.deadlineS < 0.0)
                fatal("%s: deadline must be non-negative", a);
        } else if (std::strcmp(a, "--hedge") == 0) {
            spec.hedgeDelayS = cli::parseDuration(a, value(i));
        } else if (std::strcmp(a, "--queue-cap") == 0) {
            spec.queueCap = cli::parseU64(a, value(i));
        } else if (std::strcmp(a, "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(a, "--csv") == 0) {
            csvPath = value(i);
        } else if (std::strcmp(a, "--timeline-csv") == 0) {
            timelinePath = value(i);
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown flag '%s'", a);
        }
    }

    if (streams.empty())
        streams.push_back(serving::StreamSpec{network, 1.0, 0});
    spec.streams = std::move(streams);

    serving::ServingReport report;
    {
        sim::ScopedPhaseTimer timer("serve");
        report = serving::simulate(spec);
    }

    std::fputs(serving::reportText(report).c_str(), stdout);
    serving::publishMetrics(report);
    serving::emitTrace(report);

    if (!jsonPath.empty())
        sim::writeFile(jsonPath, serving::reportJson(report));
    if (!csvPath.empty())
        sim::writeFile(csvPath, serving::requestsCsv(report));
    if (!timelinePath.empty())
        sim::writeFile(timelinePath, serving::timelineCsv(report));

    sim::printPhaseTimes();
    return 0;
}
