/**
 * @file
 * Serving-simulator tests: arrival-process statistics, virtual-time
 * scheduling invariants (Little's law, FIFO within priority),
 * bit-identity of the full report across thread counts and cache
 * settings, p99 scaling with replicas, exact percentiles (simulator
 * and metrics histogram), strict CLI parsers, and the DSE bridge
 * (journal round-trip, max_p99_ms end-to-end).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cache.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "examples/cli.hh"
#include "json_lint.hh"
#include "serving/export.hh"
#include "serving/simulator.hh"

namespace inca {
namespace serving {
namespace {

// ---------------------------------------------------------------
// Arrival processes

TEST(Arrivals, PoissonInterarrivalMoments)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.ratePerS = 1000.0;
    spec.seed = 7;
    const std::vector<Seconds> t = generateArrivals(spec, 20.0);
    ASSERT_GT(t.size(), 1000u);
    // Realized rate within 5% of the offered one.
    EXPECT_NEAR(double(t.size()) / 20.0, 1000.0, 50.0);
    // Exponential interarrivals: mean 1/lambda, variance 1/lambda^2.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < t.size(); ++i)
        gaps.push_back(t[i] - t[i - 1]);
    double mean = 0.0;
    for (const double g : gaps)
        mean += g;
    mean /= double(gaps.size());
    double var = 0.0;
    for (const double g : gaps)
        var += (g - mean) * (g - mean);
    var /= double(gaps.size());
    EXPECT_NEAR(mean, 1e-3, 1e-4);
    EXPECT_NEAR(var, 1e-6, 2e-7);
}

TEST(Arrivals, TracesAreSortedAndSeeded)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.ratePerS = 500.0;
        spec.seed = 3;
        const auto a = generateArrivals(spec, 4.0);
        const auto b = generateArrivals(spec, 4.0);
        EXPECT_EQ(a, b) << arrivalKindName(kind);
        EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
        ASSERT_FALSE(a.empty());
        EXPECT_GE(a.front(), 0.0);
        EXPECT_LT(a.back(), 4.0);
        spec.seed = 4;
        EXPECT_NE(generateArrivals(spec, 4.0), a)
            << arrivalKindName(kind);
    }
}

TEST(Arrivals, BurstyAndDiurnalKeepTheTimeAverageRate)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Bursty, ArrivalKind::Diurnal}) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.ratePerS = 800.0;
        spec.seed = 11;
        const auto t = generateArrivals(spec, 30.0);
        EXPECT_NEAR(double(t.size()) / 30.0, 800.0, 80.0)
            << arrivalKindName(kind);
    }
}

TEST(Arrivals, BurstyIsBurstierThanPoisson)
{
    // Dispersion of per-100ms counts: ~1 for Poisson, > 1 when the
    // on/off modulation concentrates arrivals.
    const auto dispersion = [](ArrivalKind kind) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.ratePerS = 400.0;
        spec.seed = 5;
        const auto t = generateArrivals(spec, 50.0);
        std::vector<double> counts(500, 0.0);
        for (const Seconds s : t)
            counts[std::min<std::size_t>(std::size_t(s / 0.1),
                                         499)] += 1.0;
        double mean = 0.0;
        for (const double c : counts)
            mean += c;
        mean /= double(counts.size());
        double var = 0.0;
        for (const double c : counts)
            var += (c - mean) * (c - mean);
        var /= double(counts.size());
        return var / mean;
    };
    EXPECT_GT(dispersion(ArrivalKind::Bursty),
              2.0 * dispersion(ArrivalKind::Poisson));
}

// ---------------------------------------------------------------
// Percentiles

TEST(Percentile, ExactNearestRank)
{
    std::vector<double> s;
    for (int i = 1; i <= 100; ++i)
        s.push_back(double(i));
    EXPECT_DOUBLE_EQ(exactPercentile(s, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(exactPercentile(s, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(exactPercentile(s, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(exactPercentile(s, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(exactPercentile(s, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(exactPercentile({42.0}, 99.0), 42.0);
    EXPECT_DOUBLE_EQ(exactPercentile({}, 99.0), 0.0);
}

TEST(Percentile, HistogramMatchesReference)
{
    auto &h = metrics::histogram("test.serving.percentile");
    h.reset();
    std::vector<double> s;
    for (int i = 0; i < 1000; ++i) {
        const double v = double((i * 37) % 1000);
        s.push_back(v);
        h.observe(v);
    }
    for (const double q : {50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), exactPercentile(s, q));
    EXPECT_FALSE(h.retainedSaturated());
}

TEST(Percentile, HistogramSaturationIsFlagged)
{
    auto &h = metrics::histogram("test.serving.saturation");
    h.reset();
    const std::size_t n = metrics::Histogram::kRetainCap + 10;
    for (std::size_t i = 0; i < n; ++i)
        h.observe(double(i));
    EXPECT_TRUE(h.retainedSaturated());
    EXPECT_EQ(h.retained().size(), metrics::Histogram::kRetainCap);
    h.reset();
    EXPECT_FALSE(h.retainedSaturated());
    EXPECT_TRUE(h.retained().empty());
}

// ---------------------------------------------------------------
// Simulator invariants

ServingSpec
tinySpec()
{
    ServingSpec spec;
    spec.streams = {StreamSpec{"lenet5", 1.0, 0}};
    spec.arrivals.kind = ArrivalKind::Poisson;
    spec.arrivals.ratePerS = 3000.0;
    spec.arrivals.seed = 17;
    spec.durationS = 0.2;
    spec.replicas = 2;
    spec.batch.maxBatch = 4;
    spec.batch.timeoutS = 1e-3;
    spec.sloS = 5e-3;
    return spec;
}

TEST(Simulator, ServesEveryRequestExactlyOnce)
{
    const ServingReport rep = simulate(tinySpec());
    EXPECT_EQ(rep.completed, rep.offered);
    EXPECT_EQ(rep.requests.size(), rep.offered);
    std::uint64_t served = 0;
    for (const auto &s : rep.servers)
        served += s.requests;
    EXPECT_EQ(served, rep.offered);
    for (const RequestRecord &r : rep.requests) {
        EXPECT_GE(r.dispatchS, r.arrivalS);
        EXPECT_GT(r.completionS, r.dispatchS);
        EXPECT_GE(r.server, 0);
        EXPECT_GE(r.batchSize, 1);
        EXPECT_LE(r.batchSize, 4);
    }
}

TEST(Simulator, LittlesLawTiesTimelineToPerRequestWaits)
{
    // The time-weighted queue-depth integral and the per-request wait
    // accounting are independent code paths over the same events;
    // Little's law (L = lambda * W) says they must agree exactly.
    const ServingReport rep = simulate(tinySpec());
    const double lambda = double(rep.completed) / rep.makespanS;
    const double expectL = lambda * rep.meanWaitS;
    ASSERT_GT(rep.meanQueueDepth, 0.0);
    EXPECT_NEAR(rep.meanQueueDepth, expectL,
                1e-9 * std::max(1.0, expectL));
}

TEST(Simulator, FifoWithinEachStream)
{
    ServingSpec spec = tinySpec();
    spec.streams = {StreamSpec{"lenet5", 1.0, 0},
                    StreamSpec{"lenet5", 1.0, 1}};
    const ServingReport rep = simulate(spec);
    // Requests of one stream dispatch in arrival (id) order.
    std::vector<const RequestRecord *> byDispatch;
    for (const auto &r : rep.requests)
        byDispatch.push_back(&r);
    std::sort(byDispatch.begin(), byDispatch.end(),
              [](const RequestRecord *a, const RequestRecord *b) {
                  if (a->dispatchS != b->dispatchS)
                      return a->dispatchS < b->dispatchS;
                  return a->id < b->id;
              });
    std::uint64_t lastId[2] = {0, 0};
    bool seen[2] = {false, false};
    for (const RequestRecord *r : byDispatch) {
        const int s = r->stream;
        if (seen[s]) {
            EXPECT_GT(r->id, lastId[s]);
        }
        lastId[s] = r->id;
        seen[s] = true;
    }
    // Completions on one server never move backwards (FIFO pipeline).
    std::vector<Seconds> lastCompletion(rep.servers.size(), 0.0);
    std::vector<Seconds> lastDispatch(rep.servers.size(), -1.0);
    for (const RequestRecord *r : byDispatch) {
        const std::size_t srv = std::size_t(r->server);
        if (r->dispatchS >= lastDispatch[srv]) {
            EXPECT_GE(r->completionS, lastCompletion[srv]);
            lastCompletion[srv] = r->completionS;
            lastDispatch[srv] = r->dispatchS;
        }
    }
}

TEST(Simulator, PriorityStreamWaitsLess)
{
    ServingSpec spec = tinySpec();
    spec.arrivals.ratePerS = 6000.0; // force contention
    spec.streams = {StreamSpec{"lenet5", 1.0, 0},
                    StreamSpec{"lenet5", 1.0, 1}};
    const ServingReport rep = simulate(spec);
    double wait[2] = {0.0, 0.0};
    std::uint64_t n[2] = {0, 0};
    for (const auto &r : rep.requests) {
        wait[r.stream] += r.waitS();
        ++n[r.stream];
    }
    ASSERT_GT(n[0], 0u);
    ASSERT_GT(n[1], 0u);
    EXPECT_LT(wait[0] / double(n[0]), wait[1] / double(n[1]));
}

TEST(Simulator, ReportBytesIdenticalAcrossThreadsAndCache)
{
    const ServingReport ref = simulate(tinySpec());
    const std::string refText = reportText(ref);
    const std::string refCsv = requestsCsv(ref);
    for (const int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        const ServingReport rep = simulate(tinySpec());
        EXPECT_EQ(reportText(rep), refText)
            << "at " << threads << " threads";
        EXPECT_EQ(requestsCsv(rep), refCsv)
            << "at " << threads << " threads";
    }
    ThreadPool::setGlobalThreads(4);
    setCacheEnabled(false);
    const ServingReport rep = simulate(tinySpec());
    setCacheEnabled(true);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(reportText(rep), refText) << "with the cache off";
    EXPECT_EQ(requestsCsv(rep), refCsv) << "with the cache off";
}

TEST(Simulator, P99DropsAsReplicasGrow)
{
    ServingSpec spec = tinySpec();
    spec.arrivals.ratePerS = 600000.0; // overload even 8 servers
    double last = 0.0;
    for (const int replicas : {1, 4, 8}) {
        spec.replicas = replicas;
        const ServingReport rep = simulate(spec);
        if (replicas > 1) {
            EXPECT_LT(rep.p99S, last)
                << "p99 must shrink from " << last << " at "
                << replicas << " replicas";
        }
        last = rep.p99S;
    }
}

TEST(Simulator, ShardingChangesTheCostModelNotTheContract)
{
    ServingSpec spec = tinySpec();
    for (const ShardKind kind :
         {ShardKind::Replica, ShardKind::Pipeline,
          ShardKind::Tensor}) {
        spec.shard.kind = kind;
        spec.shard.chips = kind == ShardKind::Replica ? 1 : 4;
        const ServingReport rep = simulate(spec);
        EXPECT_EQ(rep.completed, rep.offered)
            << shardKindName(kind);
        EXPECT_GT(rep.p99S, 0.0) << shardKindName(kind);
        EXPECT_GT(rep.energyJ, 0.0) << shardKindName(kind);
    }
}

TEST(Simulator, StaticEnergyScalesWithChips)
{
    ServingSpec spec = tinySpec();
    spec.shard.kind = ShardKind::Tensor;
    spec.shard.chips = 1;
    const ServingReport one = simulate(spec);
    spec.shard.chips = 4;
    const ServingReport four = simulate(spec);
    // Four chips leak roughly four servers' worth per second; the
    // makespans differ, so compare idle power, not raw energy.
    EXPECT_NEAR(four.staticEnergyJ / four.makespanS,
                4.0 * one.staticEnergyJ / one.makespanS,
                1e-6 * four.staticEnergyJ / four.makespanS);
}

TEST(Simulator, ExportsAreWellFormed)
{
    const ServingReport rep = simulate(tinySpec());
    const std::string json = reportJson(rep);
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid()) << "bad JSON near byte "
                              << lint.errorPos();
    const std::string csv = requestsCsv(rep);
    const std::size_t rows =
        std::size_t(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(rows, rep.requests.size() + 1);
    const std::string timeline = timelineCsv(rep);
    EXPECT_EQ(std::size_t(std::count(timeline.begin(),
                                     timeline.end(), '\n')),
              rep.queueTimeline.size() + 1);
}

// ---------------------------------------------------------------
// CLI parsers

TEST(Cli, ParseDurationAcceptsUnits)
{
    EXPECT_DOUBLE_EQ(cli::parseDuration("--t", "500ms"), 0.5);
    EXPECT_DOUBLE_EQ(cli::parseDuration("--t", "2s"), 2.0);
    EXPECT_DOUBLE_EQ(cli::parseDuration("--t", "750us"), 750e-6);
    EXPECT_DOUBLE_EQ(cli::parseDuration("--t", "1e3ns"), 1e-6);
    EXPECT_DOUBLE_EQ(cli::parseDuration("--t", "0"), 0.0);
}

TEST(CliDeathTest, ParseDurationRejectsMalformedInput)
{
    EXPECT_DEATH(cli::parseDuration("--t", "5"), "unit suffix");
    EXPECT_DEATH(cli::parseDuration("--t", "5 s"), "unknown");
    EXPECT_DEATH(cli::parseDuration("--t", "-1ms"), "non-negative");
    EXPECT_DEATH(cli::parseDuration("--t", "5m"), "unknown");
    EXPECT_DEATH(cli::parseDuration("--t", "banana"),
                 "not a duration");
    EXPECT_DEATH(cli::parseDuration("--t", ""), "empty");
}

TEST(Cli, ParseRateAcceptsMultipliers)
{
    EXPECT_DOUBLE_EQ(cli::parseRate("--r", "80/s"), 80.0);
    EXPECT_DOUBLE_EQ(cli::parseRate("--r", "80"), 80.0);
    EXPECT_DOUBLE_EQ(cli::parseRate("--r", "1.5k/s"), 1500.0);
    EXPECT_DOUBLE_EQ(cli::parseRate("--r", "2M/s"), 2e6);
    EXPECT_DOUBLE_EQ(cli::parseRate("--r", "1G/s"), 1e9);
}

TEST(CliDeathTest, ParseRateRejectsMalformedInput)
{
    EXPECT_DEATH(cli::parseRate("--r", "1.5k"), "needs '/s'");
    EXPECT_DEATH(cli::parseRate("--r", "80/min"), "trailing");
    EXPECT_DEATH(cli::parseRate("--r", "-5/s"), "positive");
    EXPECT_DEATH(cli::parseRate("--r", "0/s"), "positive");
    EXPECT_DEATH(cli::parseRate("--r", "fast"), "not a rate");
}

// ---------------------------------------------------------------
// DSE bridge

TEST(DseBridge, JournalRoundTripsServingScalars)
{
    dse::Evaluation e;
    e.candidate.index = 9;
    e.scored = true;
    e.p99LatencyS = 0.0123456789012345678;
    e.goodputRps = 1234.5678901234567;
    e.energyPerRequestJ = 4.2e-3;
    e.objectives = {1.0, -2.0};
    const std::string path = "test_serving_journal.jsonl";
    {
        dse::JournalWriter writer;
        dse::JournalHeader header;
        header.signature = "test";
        header.spaceSize = 10;
        writer.open(path, header, false);
        writer.append(e);
    }
    dse::JournalContents contents;
    ASSERT_TRUE(dse::readJournal(path, contents));
    std::remove(path.c_str());
    ASSERT_EQ(contents.evals.count(9), 1u);
    const dse::Evaluation &back = contents.evals[9];
    EXPECT_EQ(back.p99LatencyS, e.p99LatencyS);
    EXPECT_EQ(back.goodputRps, e.goodputRps);
    EXPECT_EQ(back.energyPerRequestJ, e.energyPerRequestJ);
}

TEST(DseBridge, JournalDefaultsServingScalarsWhenAbsent)
{
    // A pre-serving journal line must parse with zeroed serving
    // scalars, not fail.
    const std::string path = "test_serving_journal_old.jsonl";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs(
            "{\"type\":\"header\",\"version\":1,\"space_size\":2,"
            "\"signature\":\"old\"}\n"
            "{\"type\":\"eval\",\"index\":1,\"feasible\":true,"
            "\"scored\":true,\"rejected_by\":\"\","
            "\"config_key_hash\":7,\"area_m2\":1,\"idle_w\":2,"
            "\"utilization\":0.5,\"accuracy\":0.9,\"energy_j\":3,"
            "\"latency_s\":4,\"objectives\":[3,4]}\n",
            f);
        std::fclose(f);
    }
    dse::JournalContents contents;
    ASSERT_TRUE(dse::readJournal(path, contents));
    std::remove(path.c_str());
    ASSERT_EQ(contents.evals.count(1), 1u);
    EXPECT_EQ(contents.evals[1].p99LatencyS, 0.0);
    EXPECT_EQ(contents.evals[1].goodputRps, 0.0);
    EXPECT_EQ(contents.evals[1].energyPerRequestJ, 0.0);
}

dse::ExploreOptions
servingExploreOptions()
{
    dse::ExploreOptions opt;
    opt.network = "lenet5";
    opt.strategy = dse::StrategyKind::Grid;
    opt.objectives = {dse::Objective::Energy,
                      dse::Objective::P99Latency,
                      dse::Objective::Goodput};
    // Deep overload: p99 is queue-drain-bound, so it depends on the
    // replica count (the monotonicity assertion below).
    opt.serving.arrivals.ratePerS = 200000.0;
    opt.serving.arrivals.seed = 17;
    opt.serving.durationS = 0.1;
    opt.serving.batch.maxBatch = 4;
    opt.serving.batch.timeoutS = 1e-3;
    opt.serving.sloS = 5e-3;
    return opt;
}

dse::SearchSpace
servingExploreSpace()
{
    dse::SearchSpace space;
    space.axis("plane", {16, 32})
        .axis("replicas", {1, 2})
        .axis("serve_batch", {4});
    return space;
}

TEST(DseBridge, ServingAxesAreSkippedByTheChipMaterializers)
{
    EXPECT_TRUE(dse::isServingAxis("replicas"));
    EXPECT_TRUE(dse::isServingAxis("shard_chips"));
    EXPECT_FALSE(dse::isServingAxis("plane"));
    const dse::SearchSpace space = servingExploreSpace();
    const dse::Candidate cand = space.candidate(3);
    const arch::IncaConfig cfg = dse::materializeInca(
        space, cand, arch::paperInca(), false);
    EXPECT_EQ(cfg.subarraySize, 32); // chip axis applied
}

TEST(DseBridge, ExplorerScoresServingObjectives)
{
    dse::Explorer explorer(servingExploreSpace(),
                           servingExploreOptions());
    const dse::ExploreResult result = explorer.run();
    ASSERT_EQ(result.evaluations.size(), 4u);
    for (const auto &e : result.evaluations) {
        EXPECT_TRUE(e.scored);
        EXPECT_GT(e.p99LatencyS, 0.0);
        EXPECT_GT(e.goodputRps, 0.0);
        EXPECT_GT(e.energyPerRequestJ, 0.0);
        ASSERT_EQ(e.objectives.size(), 3u);
        // Goodput is maximized: oriented value is negated.
        EXPECT_DOUBLE_EQ(e.objectives[2], -e.goodputRps);
    }
    // More replicas at a fixed overload means lower p99.
    const auto &space = explorer.space();
    for (const auto &a : result.evaluations)
        for (const auto &b : result.evaluations)
            if (space.value(a.candidate, "plane", 0) ==
                    space.value(b.candidate, "plane", 0) &&
                space.value(a.candidate, "replicas", 0) <
                    space.value(b.candidate, "replicas", 0)) {
                EXPECT_GT(a.p99LatencyS, b.p99LatencyS);
            }
}

TEST(DseBridge, MaxP99ConstraintRejectsAfterScoring)
{
    dse::ExploreOptions opt = servingExploreOptions();
    opt.constraints.set("max_p99_ms=0.0001"); // impossible SLO
    dse::Explorer explorer(servingExploreSpace(), opt);
    const dse::ExploreResult result = explorer.run();
    EXPECT_TRUE(result.frontier.empty());
    for (const auto &e : result.evaluations) {
        EXPECT_TRUE(e.scored); // post-scoring bound, not a filter
        EXPECT_FALSE(e.feasible);
        EXPECT_NE(e.rejectedBy.find("max_p99_ms"),
                  std::string::npos);
    }
}

TEST(DseBridge, ServingSignatureOnlyWhenServingIsScored)
{
    dse::ExploreOptions plain = servingExploreOptions();
    plain.objectives = {dse::Objective::Energy};
    dse::Explorer off(servingExploreSpace(), plain);
    EXPECT_EQ(off.signature().find("serving="), std::string::npos);
    dse::Explorer on(servingExploreSpace(),
                     servingExploreOptions());
    EXPECT_NE(on.signature().find("serving="), std::string::npos);
}

TEST(DseBridge, FrontierExportsCarryServingColumns)
{
    dse::Explorer explorer(servingExploreSpace(),
                           servingExploreOptions());
    const dse::ExploreResult result = explorer.run();
    const std::string csv =
        dse::frontierCsv(explorer.space(), result.frontier,
                         explorer.options().objectives);
    EXPECT_NE(csv.find("p99_latency_s,goodput_rps,"
                       "energy_per_request_j"),
              std::string::npos);
    const std::string json = dse::frontierJson(explorer, result);
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid()) << "bad JSON near byte "
                              << lint.errorPos();
    EXPECT_NE(json.find("\"goodput_rps\""), std::string::npos);
}

} // namespace
} // namespace serving
} // namespace inca
