/**
 * @file
 * Differential rig for the dispatched SIMD microkernels.
 *
 * The kernel layer's whole contract is one sentence: every ISA
 * variant of every kernel is bit-identical to the scalar reference
 * (see tensor/kernels/kernels.hh). These tests enforce it the blunt
 * way -- run every available KernelSet against the scalar one over an
 * adversarial shape sweep (K=1 depths, vector-tail column counts,
 * stride > 1 gathers, padded/dilated grads, non-contiguous source
 * views) at 1, 2 and 8 pool threads, and demand 0-ULP agreement.
 *
 * Also covered here: the dispatch machinery itself (parseIsa, the
 * INCA_KERNEL_ISA override with its fatal() on bogus values, the
 * kernel.dispatch.<isa> counters) and the arena scratch pool the
 * vectorized im2col path leases its workspaces from.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/metrics.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/ops.hh"

namespace inca {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

const std::vector<int> kThreadCounts = {1, 2, 8};

/** Every test leaves dispatch and the pool in their defaults. */
class KernelDispatch : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        kernels::resetActive();
        ThreadPool::setGlobalThreads(1);
    }

    /** Non-scalar ISAs this process can run (may be empty). */
    static std::vector<kernels::Isa>
    vectorIsas()
    {
        std::vector<kernels::Isa> out;
        for (kernels::Isa isa : kernels::availableIsas())
            if (isa != kernels::Isa::Scalar)
                out.push_back(isa);
        return out;
    }
};

/* ------------------------------------------------------------------ */
/* Dispatch machinery                                                 */
/* ------------------------------------------------------------------ */

TEST_F(KernelDispatch, ParseIsaAcceptsExactlyTheDocumentedNames)
{
    kernels::Isa isa = kernels::Isa::Avx512;
    EXPECT_TRUE(kernels::parseIsa("scalar", isa));
    EXPECT_EQ(isa, kernels::Isa::Scalar);
    EXPECT_TRUE(kernels::parseIsa("avx2", isa));
    EXPECT_EQ(isa, kernels::Isa::Avx2);
    EXPECT_TRUE(kernels::parseIsa("avx512", isa));
    EXPECT_EQ(isa, kernels::Isa::Avx512);

    // Case-sensitive, no aliases, no whitespace tolerance: the env
    // override must never guess.
    for (const char *bad :
         {"", "AVX2", "Scalar", "avx-512", "avx512f", "sse", "auto",
          " avx2", "avx2 ", "native"})
        EXPECT_FALSE(kernels::parseIsa(bad, isa)) << "'" << bad << "'";
    EXPECT_FALSE(kernels::parseIsa(nullptr, isa));
}

TEST_F(KernelDispatch, IsaNamesRoundTripThroughParse)
{
    for (kernels::Isa isa :
         {kernels::Isa::Scalar, kernels::Isa::Avx2,
          kernels::Isa::Avx512}) {
        kernels::Isa back = kernels::Isa::Scalar;
        ASSERT_TRUE(kernels::parseIsa(kernels::isaName(isa), back));
        EXPECT_EQ(back, isa);
    }
}

TEST_F(KernelDispatch, ScalarAlwaysAvailableAndListedFirst)
{
    EXPECT_TRUE(kernels::isaAvailable(kernels::Isa::Scalar));
    EXPECT_NE(kernels::kernelSet(kernels::Isa::Scalar), nullptr);
    const auto isas = kernels::availableIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), kernels::Isa::Scalar);
    // Widest last, strictly ordered.
    for (std::size_t i = 1; i < isas.size(); ++i)
        EXPECT_LT(int(isas[i - 1]), int(isas[i]));
    for (kernels::Isa isa : isas) {
        const kernels::KernelSet *k = kernels::kernelSet(isa);
        ASSERT_NE(k, nullptr);
        EXPECT_EQ(k->isa, isa);
        EXPECT_STREQ(k->name, kernels::isaName(isa));
    }
}

TEST_F(KernelDispatch, SetActiveForcesEveryAvailableIsa)
{
    for (kernels::Isa isa : kernels::availableIsas()) {
        kernels::setActive(isa);
        EXPECT_EQ(kernels::activeIsa(), isa);
        EXPECT_EQ(kernels::active().isa, isa);
    }
    kernels::resetActive();
    // Post-reset resolution lands on something available.
    EXPECT_TRUE(kernels::isaAvailable(kernels::activeIsa()));
}

TEST_F(KernelDispatch, ActiveBumpsTheDispatchCounterForItsIsa)
{
    kernels::setActive(kernels::Isa::Scalar);
    auto &scalarCounter =
        metrics::counter("kernel.dispatch.scalar");
    const std::uint64_t before = scalarCounter.value();
    (void)kernels::active();
    (void)kernels::active();
    EXPECT_EQ(scalarCounter.value(), before + 2);

    // activeIsa() is the counter-free read.
    (void)kernels::activeIsa();
    EXPECT_EQ(scalarCounter.value(), before + 2);

    for (kernels::Isa isa : vectorIsas()) {
        auto &c = metrics::counter(
            std::string("kernel.dispatch.") + kernels::isaName(isa));
        const std::uint64_t b = c.value();
        kernels::setActive(isa);
        (void)kernels::active();
        EXPECT_EQ(c.value(), b + 1) << kernels::isaName(isa);
    }
}

TEST_F(KernelDispatch, EnvOverrideForcesTheNamedIsa)
{
    // setenv + resetActive: the next resolution must obey the env
    // var, exactly as a driver process would at startup.
    for (kernels::Isa isa : kernels::availableIsas()) {
        ASSERT_EQ(setenv("INCA_KERNEL_ISA", kernels::isaName(isa), 1),
                  0);
        kernels::resetActive();
        EXPECT_EQ(kernels::activeIsa(), isa) << kernels::isaName(isa);
    }
    ASSERT_EQ(unsetenv("INCA_KERNEL_ISA"), 0);
    kernels::resetActive();
}

TEST_F(KernelDispatch, BogusEnvOverrideIsFatal)
{
    // The setenv runs in the death-test child only, so the parent's
    // environment is untouched.
    EXPECT_DEATH(
        {
            setenv("INCA_KERNEL_ISA", "avx9000", 1);
            kernels::resetActive();
            (void)kernels::active();
        },
        "not a kernel ISA");
}

TEST_F(KernelDispatch, UnavailableEnvOverrideIsFatalNotAFallback)
{
    // Only meaningful when some ISA is missing from this process;
    // on a full AVX-512 build+CPU there is nothing unavailable to
    // request.
    const char *missing = nullptr;
    for (kernels::Isa isa :
         {kernels::Isa::Avx2, kernels::Isa::Avx512})
        if (!kernels::isaAvailable(isa))
            missing = kernels::isaName(isa);
    if (missing == nullptr)
        GTEST_SKIP() << "every ISA is available in this process";
    EXPECT_DEATH(
        {
            setenv("INCA_KERNEL_ISA", missing, 1);
            kernels::resetActive();
            (void)kernels::active();
        },
        "does not support it");
}

/* ------------------------------------------------------------------ */
/* Raw kernel differentials                                           */
/* ------------------------------------------------------------------ */

/**
 * Lengths around every vector-width boundary: empty, scalar tail
 * only, exactly one AVX2 lane, one AVX-512 lane, one-past, and runs
 * long enough to hit the unrolled body plus a ragged tail.
 */
const std::vector<std::int64_t> kLengths = {0,  1,  3,  7,  8,  9,
                                            15, 16, 17, 31, 33, 64,
                                            100, 255, 1024, 1000};

TEST_F(KernelDispatch, CopyRowMatchesScalarAtEveryLength)
{
    const auto vecs = vectorIsas();
    if (vecs.empty())
        GTEST_SKIP() << "no vector ISA available";
    Rng rng(11);
    for (std::int64_t len : kLengths) {
        SCOPED_TRACE("len=" + std::to_string(len));
        std::vector<float> src(std::size_t(len) + 8, 0.0f);
        for (auto &v : src)
            v = float(rng.uniform(-2.0, 2.0));
        std::vector<float> ref(std::size_t(len) + 4, -7.0f);
        kernels::kernelSet(kernels::Isa::Scalar)
            ->copyRow(ref.data(), src.data(), len);
        for (kernels::Isa isa : vecs) {
            std::vector<float> got(std::size_t(len) + 4, -7.0f);
            kernels::kernelSet(isa)->copyRow(got.data(), src.data(),
                                             len);
            EXPECT_EQ(got, ref) << kernels::isaName(isa);
        }
    }
}

TEST_F(KernelDispatch, GatherRowMatchesScalarAtEveryLengthAndStride)
{
    const auto vecs = vectorIsas();
    if (vecs.empty())
        GTEST_SKIP() << "no vector ISA available";
    Rng rng(12);
    for (std::int64_t len : kLengths) {
        for (std::int64_t stride : {2, 3, 5, 7}) {
            SCOPED_TRACE("len=" + std::to_string(len) + " stride=" +
                         std::to_string(stride));
            std::vector<float> src(std::size_t(len * stride) + 8,
                                   0.0f);
            for (auto &v : src)
                v = float(rng.uniform(-2.0, 2.0));
            std::vector<float> ref(std::size_t(len) + 4, -7.0f);
            kernels::kernelSet(kernels::Isa::Scalar)
                ->gatherRow(ref.data(), src.data(), len, stride);
            for (kernels::Isa isa : vecs) {
                std::vector<float> got(std::size_t(len) + 4, -7.0f);
                kernels::kernelSet(isa)->gatherRow(
                    got.data(), src.data(), len, stride);
                EXPECT_EQ(got, ref) << kernels::isaName(isa);
            }
        }
    }
}

TEST_F(KernelDispatch, ScanBelowMatchesScalarIncludingHitPositions)
{
    const auto vecs = vectorIsas();
    if (vecs.empty())
        GTEST_SKIP() << "no vector ISA available";
    Rng rng(13);
    for (std::int64_t len : kLengths) {
        std::vector<double> v(std::size_t(len), 0.0);
        for (auto &x : v)
            x = rng.uniform();
        // Sweep thresholds from hit-nothing to hit-everything, plus
        // a planted hit at every lane position of the first vector.
        std::vector<std::pair<std::string, std::vector<double>>>
            variants;
        variants.emplace_back("random", v);
        for (std::int64_t pos = 0; pos < std::min<std::int64_t>(
                                             len, 17);
             ++pos) {
            auto planted = v;
            for (auto &x : planted)
                x = 0.5 + 0.5 * x; // lift everything above 0.5
            planted[std::size_t(pos)] = 0.25;
            variants.emplace_back("planted@" + std::to_string(pos),
                                  planted);
        }
        for (const auto &[tag, data] : variants) {
            for (double thr : {0.0, 1e-9, 0.3, 0.5, 1.0}) {
                SCOPED_TRACE("len=" + std::to_string(len) + " " +
                             tag + " thr=" + std::to_string(thr));
                const std::int64_t ref =
                    kernels::kernelSet(kernels::Isa::Scalar)
                        ->scanBelow(data.data(), len, thr);
                for (kernels::Isa isa : vecs)
                    EXPECT_EQ(kernels::kernelSet(isa)->scanBelow(
                                  data.data(), len, thr),
                              ref)
                        << kernels::isaName(isa);
            }
        }
    }
}

TEST_F(KernelDispatch, GemmRowRangeMatchesScalarOnTailHeavyShapes)
{
    const auto vecs = vectorIsas();
    if (vecs.empty())
        GTEST_SKIP() << "no vector ISA available";
    // (m, k, n) with every kind of ragged edge: k=1 (single product,
    // no accumulation), n=1 (pure scalar tail), n just below/at/above
    // the 8- and 16-wide boundaries, and a skinny-deep case.
    const std::vector<std::array<std::int64_t, 3>> shapes = {
        {1, 1, 1},   {1, 1, 17},  {3, 1, 16},  {2, 7, 1},
        {5, 3, 7},   {4, 9, 8},   {4, 9, 9},   {7, 5, 15},
        {7, 5, 16},  {7, 5, 17},  {3, 64, 31}, {3, 64, 33},
        {16, 2, 24}, {2, 128, 5}, {9, 11, 40},
    };
    Rng rng(14);
    for (const auto &[m, k, n] : shapes) {
        SCOPED_TRACE("m" + std::to_string(m) + "k" +
                     std::to_string(k) + "n" + std::to_string(n));
        std::vector<float> a(std::size_t(m * k)),
            b(std::size_t(k * n));
        for (auto &x : a)
            x = float(rng.uniform(-1.0, 1.0));
        for (auto &x : b)
            x = float(rng.uniform(-1.0, 1.0));
        // Non-zero initial C: the kernel accumulates, so the starting
        // contents participate in the rounding sequence.
        std::vector<float> cInit(std::size_t(m * n));
        for (auto &x : cInit)
            x = float(rng.uniform(-1.0, 1.0));

        std::vector<float> ref = cInit;
        kernels::kernelSet(kernels::Isa::Scalar)
            ->gemmRowRange(a.data(), k, b.data(), n, ref.data(), n,
                           0, m, k, n);
        for (kernels::Isa isa : vecs) {
            std::vector<float> got = cInit;
            kernels::kernelSet(isa)->gemmRowRange(
                a.data(), k, b.data(), n, got.data(), n, 0, m, k, n);
            EXPECT_EQ(got, ref) << kernels::isaName(isa);
            // Partial row ranges splice identically (the ThreadPool
            // fan-out calls the kernel exactly this way).
            if (m > 2) {
                std::vector<float> split = cInit;
                kernels::kernelSet(isa)->gemmRowRange(
                    a.data(), k, b.data(), n, split.data(), n, 0,
                    m / 2, k, n);
                kernels::kernelSet(isa)->gemmRowRange(
                    a.data(), k, b.data(), n, split.data(), n,
                    m / 2, m, k, n);
                EXPECT_EQ(split, ref)
                    << kernels::isaName(isa) << " split";
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* End-to-end op differentials                                        */
/* ------------------------------------------------------------------ */

struct ConvCase
{
    std::int64_t n, c, f, h, w;
    int kh, kw, stride, pad;

    std::string
    label() const
    {
        return "n" + std::to_string(n) + "c" + std::to_string(c) +
               "f" + std::to_string(f) + "_" + std::to_string(h) +
               "x" + std::to_string(w) + "_k" + std::to_string(kh) +
               "x" + std::to_string(kw) + "s" +
               std::to_string(stride) + "p" + std::to_string(pad);
    }
};

/**
 * The adversarial sweep: output widths of 1 (the GEMM n=1 scalar
 * tail), widths straddling the 8/16-lane boundaries, stride 2/3
 * (gatherRow path), pad >= k (the input-grad fallback), 1x1 kernels
 * (im2col rows degenerate to strided views), and kernels as large as
 * the input.
 */
const std::vector<ConvCase> kConvCases = {
    {1, 1, 1, 3, 3, 3, 3, 1, 0},    // ow = 1: pure tail GEMM
    {1, 1, 1, 1, 1, 1, 1, 1, 0},    // everything is 1
    {1, 2, 3, 5, 9, 1, 1, 1, 0},    // 1x1 kernel, ow = 9
    {2, 3, 4, 6, 17, 3, 3, 1, 1},   // ow = 17: one lane + 1 (avx512)
    {1, 2, 2, 4, 10, 3, 3, 1, 1},   // ow = 10: 8 + 2 (avx2 tail)
    {1, 3, 5, 8, 18, 3, 3, 1, 0},   // ow = 16: exactly one 512 lane
    {2, 2, 3, 9, 9, 3, 3, 2, 1},    // stride 2: gather packing
    {1, 4, 2, 12, 13, 3, 3, 3, 1},  // stride 3, odd width
    {1, 3, 3, 6, 6, 2, 2, 1, 2},    // pad > k-1: input-grad fallback
    {3, 2, 4, 5, 5, 3, 3, 1, 2},    // pad = k-1
    {1, 1, 2, 7, 7, 7, 7, 1, 3},    // kernel spans padded input
    {1, 2, 2, 8, 6, 1, 3, 1, 0},    // 1x3 asymmetric
    {2, 3, 4, 7, 9, 3, 1, 1, 0},    // 3x1 asymmetric
    {7, 1, 6, 10, 10, 4, 4, 2, 0},  // even kernel, odd batch
    {1, 6, 8, 14, 14, 3, 3, 2, 1},  // wider channels (deep GEMM k)
    {2, 2, 2, 13, 33, 5, 3, 2, 2},  // wide input, 512 tail outputs
};

TEST_F(KernelDispatch, ConvForwardBitIdenticalAcrossIsasAndThreads)
{
    const auto isas = kernels::availableIsas();
    for (const auto &cs : kConvCases) {
        SCOPED_TRACE(cs.label());
        Rng rng(3000 + cs.n + 31 * cs.h + 7 * cs.kh);
        const Tensor x = Tensor::randn({cs.n, cs.c, cs.h, cs.w}, rng);
        const Tensor w =
            Tensor::randn({cs.f, cs.c, cs.kh, cs.kw}, rng);
        const ConvSpec spec{cs.stride, cs.pad};

        kernels::setActive(kernels::Isa::Scalar);
        ThreadPool::setGlobalThreads(1);
        const Tensor ref = tensor::conv2d(x, w, spec);
        EXPECT_TRUE(ref.equals(tensor::conv2dNaive(x, w, spec)));

        for (kernels::Isa isa : isas) {
            kernels::setActive(isa);
            for (int threads : kThreadCounts) {
                SCOPED_TRACE(std::string(kernels::isaName(isa)) +
                             "/t" + std::to_string(threads));
                ThreadPool::setGlobalThreads(threads);
                EXPECT_TRUE(tensor::conv2d(x, w, spec).equals(ref));
            }
        }
    }
}

TEST_F(KernelDispatch, ConvGradsBitIdenticalAcrossIsasAndThreads)
{
    const auto isas = kernels::availableIsas();
    for (const auto &cs : kConvCases) {
        SCOPED_TRACE(cs.label());
        Rng rng(4000 + cs.c + 13 * cs.w + 5 * cs.kw);
        const Tensor x = Tensor::randn({cs.n, cs.c, cs.h, cs.w}, rng);
        const Tensor w =
            Tensor::randn({cs.f, cs.c, cs.kh, cs.kw}, rng);
        const ConvSpec spec{cs.stride, cs.pad};
        const std::int64_t oh = tensor::convOutDim(cs.h, cs.kh, spec);
        const std::int64_t ow = tensor::convOutDim(cs.w, cs.kw, spec);
        const Tensor dy = Tensor::randn({cs.n, cs.f, oh, ow}, rng);

        kernels::setActive(kernels::Isa::Scalar);
        ThreadPool::setGlobalThreads(1);
        const Tensor refDx =
            tensor::conv2dInputGrad(dy, w, x.shape(), spec);
        const Tensor refDw =
            tensor::conv2dWeightGrad(dy, x, w.shape(), spec);
        EXPECT_TRUE(refDx.equals(
            tensor::conv2dInputGradNaive(dy, w, x.shape(), spec)));
        EXPECT_TRUE(refDw.equals(
            tensor::conv2dWeightGradNaive(dy, x, w.shape(), spec)));

        for (kernels::Isa isa : isas) {
            kernels::setActive(isa);
            for (int threads : kThreadCounts) {
                SCOPED_TRACE(std::string(kernels::isaName(isa)) +
                             "/t" + std::to_string(threads));
                ThreadPool::setGlobalThreads(threads);
                EXPECT_TRUE(
                    tensor::conv2dInputGrad(dy, w, x.shape(), spec)
                        .equals(refDx));
                EXPECT_TRUE(
                    tensor::conv2dWeightGrad(dy, x, w.shape(), spec)
                        .equals(refDw));
            }
        }
    }
}

TEST_F(KernelDispatch, MatmulBitIdenticalAcrossIsasAndThreads)
{
    const std::vector<std::array<std::int64_t, 3>> shapes = {
        {1, 1, 1},  {2, 1, 17}, {5, 3, 1},  {4, 9, 8},
        {7, 5, 16}, {7, 5, 17}, {3, 64, 33}, {13, 11, 40},
    };
    const auto isas = kernels::availableIsas();
    for (const auto &[m, k, n] : shapes) {
        SCOPED_TRACE("m" + std::to_string(m) + "k" +
                     std::to_string(k) + "n" + std::to_string(n));
        Rng rng(5000 + m + 3 * k + 7 * n);
        const Tensor a = Tensor::randn({m, k}, rng);
        const Tensor b = Tensor::randn({k, n}, rng);

        kernels::setActive(kernels::Isa::Scalar);
        ThreadPool::setGlobalThreads(1);
        const Tensor ref = tensor::matmul(a, b);

        for (kernels::Isa isa : isas) {
            kernels::setActive(isa);
            for (int threads : kThreadCounts) {
                SCOPED_TRACE(std::string(kernels::isaName(isa)) +
                             "/t" + std::to_string(threads));
                ThreadPool::setGlobalThreads(threads);
                EXPECT_TRUE(tensor::matmul(a, b).equals(ref));
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Arena scratch pool                                                 */
/* ------------------------------------------------------------------ */

TEST_F(KernelDispatch, ArenaReusesBuffersAndCountsHonestly)
{
    arena::trim();
    const auto s0 = arena::stats();
    {
        auto lease = arena::scratchFloats(1024, false);
        EXPECT_GE(lease.size(), 1024u);
        ASSERT_NE(lease.data(), nullptr);
        lease.data()[0] = 1.0f;
        lease.data()[1023] = 2.0f;
    }
    auto s1 = arena::stats();
    EXPECT_EQ(s1.leases, s0.leases + 1);
    EXPECT_EQ(s1.misses, s0.misses + 1);
    EXPECT_EQ(s1.cachedBuffers, 1u);
    EXPECT_GE(s1.cachedBytes, 1024 * sizeof(float));

    // A smaller request is served from the cached buffer.
    {
        auto lease = arena::scratchFloats(512, false);
        EXPECT_EQ(lease.size(), 512u);
    }
    auto s2 = arena::stats();
    EXPECT_EQ(s2.leases, s1.leases + 1);
    EXPECT_EQ(s2.hits, s1.hits + 1);
    EXPECT_EQ(s2.cachedBuffers, 1u);

    arena::trim();
    auto s3 = arena::stats();
    EXPECT_EQ(s3.cachedBuffers, 0u);
    EXPECT_EQ(s3.cachedBytes, 0u);
    // trim() leaves the counters running.
    EXPECT_EQ(s3.leases, s2.leases);
}

TEST_F(KernelDispatch, ArenaZeroFillClearsRecycledMemory)
{
    arena::trim();
    {
        auto dirty = arena::scratchFloats(256, false);
        for (std::size_t i = 0; i < dirty.size(); ++i)
            dirty.data()[i] = 42.0f;
    }
    // Same buffer comes back; zero=true must wipe the old contents
    // (the im2col packing relies on exact zero padding).
    auto clean = arena::scratchFloats(256, true);
    const auto s = arena::stats();
    EXPECT_GE(s.hits, 1u);
    for (std::size_t i = 0; i < clean.size(); ++i)
        ASSERT_EQ(clean.data()[i], 0.0f) << "index " << i;
}

TEST_F(KernelDispatch, ArenaLeaseIsMovable)
{
    arena::trim();
    auto a = arena::scratchFloats(64, true);
    float *p = a.data();
    arena::ScratchLease b = std::move(a);
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b.size(), 64u);
    EXPECT_EQ(a.size(), 0u);

    arena::ScratchLease c;
    c = std::move(b);
    EXPECT_EQ(c.data(), p);
    EXPECT_EQ(c.size(), 64u);
}

TEST_F(KernelDispatch, ArenaConcurrentLeasesAreDistinctBuffers)
{
    arena::trim();
    auto a = arena::scratchFloats(128, true);
    auto b = arena::scratchFloats(128, true);
    EXPECT_NE(a.data(), b.data());
    a.data()[0] = 1.0f;
    EXPECT_EQ(b.data()[0], 0.0f);
}

} // namespace
} // namespace inca
