/**
 * @file
 * Process metrics registry tests: counters, gauges, histograms,
 * registration semantics, JSON rendering, and concurrent updates.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "json_lint.hh"

namespace inca {
namespace metrics {
namespace {

TEST(Metrics, CounterAccumulatesAndResets)
{
    Counter &c = counter("test.counter.basic");
    c.reset();
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, SameNameReturnsSameMetric)
{
    Counter &a = counter("test.counter.shared");
    Counter &b = counter("test.counter.shared");
    EXPECT_EQ(&a, &b);
    a.reset();
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, GaugeSetAndAdd)
{
    Gauge &g = gauge("test.gauge.basic");
    g.reset();
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, HistogramBucketsObservations)
{
    Histogram &h =
        histogram("test.hist.explicit", {1.0, 10.0, 100.0});
    h.reset();
    h.observe(0.5);   // <= 1
    h.observe(5.0);   // <= 10
    h.observe(50.0);  // <= 100
    h.observe(500.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 555.5);
    EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
    const auto buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, BoundaryObservationLandsInLowerBucket)
{
    Histogram &h = histogram("test.hist.boundary", {1.0, 2.0});
    h.reset();
    h.observe(1.0); // inclusive upper bound
    EXPECT_EQ(h.bucketCounts()[0], 1u);
}

TEST(Metrics, DefaultMicrosecondBuckets)
{
    Histogram &h = histogram("test.hist.default_us");
    EXPECT_GE(h.bounds().size(), 16u);
    EXPECT_DOUBLE_EQ(h.bounds().front(), 1.0);
}

TEST(MetricsDeath, KindMismatchPanics)
{
    counter("test.kind.clash");
    EXPECT_DEATH(gauge("test.kind.clash"), "");
}

TEST(Metrics, ScopedTimerObservesLifetime)
{
    Histogram &h = histogram("test.hist.timer");
    h.reset();
    {
        ScopedTimer t(h);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.sum(), 0.0);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing)
{
    Counter &c = counter("test.counter.mt");
    Histogram &h = histogram("test.hist.mt", {10.0, 1000.0});
    c.reset();
    h.reset();
    constexpr int kThreads = 8, kEach = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kEach; ++i) {
                c.inc();
                h.observe(double(i));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kEach);
    EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kEach);
}

TEST(Metrics, ToJsonIsValidAndComplete)
{
    counter("test.json.counter").inc(7);
    gauge("test.json.gauge").set(1.25);
    histogram("test.json.hist", {1.0}).observe(0.5);
    const std::string json = toJson();
    EXPECT_TRUE(testutil::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
    EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(Metrics, ResetAllZeroesEverything)
{
    Counter &c = counter("test.reset.counter");
    Histogram &h = histogram("test.reset.hist", {1.0});
    c.inc(5);
    h.observe(2.0);
    resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

} // namespace
} // namespace metrics
} // namespace inca
