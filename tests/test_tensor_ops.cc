/**
 * @file
 * Neural-network math tests: convolution correctness, GEMM-path
 * equivalence (the WS unrolled dataflow must compute the same function
 * as direct convolution), analytic gradients versus numerical
 * differentiation, pooling, activations and losses.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.hh"
#include "tensor/ops.hh"

namespace inca {
namespace tensor {
namespace {

/** Central-difference numerical gradient of a scalar function. */
Tensor
numericalGrad(Tensor &x, const std::function<double()> &f,
              float eps = 1e-3f)
{
    Tensor g(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double plus = f();
        x[i] = orig - eps;
        const double minus = f();
        x[i] = orig;
        g[i] = float((plus - minus) / (2.0 * eps));
    }
    return g;
}

double
weightedSum(const Tensor &y, const Tensor &coeff)
{
    double s = 0.0;
    for (std::int64_t i = 0; i < y.size(); ++i)
        s += double(y[i]) * double(coeff[i]);
    return s;
}

TEST(ConvOutDim, Formula)
{
    EXPECT_EQ(convOutDim(224, 3, {1, 1}), 224);
    EXPECT_EQ(convOutDim(224, 7, {2, 3}), 112);
    EXPECT_EQ(convOutDim(32, 5, {1, 0}), 28);
    EXPECT_EQ(convOutDim(4, 2, {2, 0}), 2);
}

TEST(Conv2d, HandComputedSingleChannel)
{
    // 3x3 input, 2x2 kernel, no padding.
    Tensor x({1, 1, 3, 3},
             {1, 2, 3,
              4, 5, 6,
              7, 8, 9});
    Tensor w({1, 1, 2, 2}, {1, 0, 0, 1});
    Tensor y = conv2d(x, w);
    ASSERT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1, 2, 2}));
    EXPECT_EQ(y.at(0, 0, 0, 0), 1 + 5);
    EXPECT_EQ(y.at(0, 0, 0, 1), 2 + 6);
    EXPECT_EQ(y.at(0, 0, 1, 0), 4 + 8);
    EXPECT_EQ(y.at(0, 0, 1, 1), 5 + 9);
}

TEST(Conv2d, IdentityKernelWithSamePadding)
{
    Rng rng(1);
    Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
    // 3x3 kernel that picks the center of channel 1 only.
    Tensor w({1, 3, 3, 3});
    w.at(0, 1, 1, 1) = 1.0f;
    Tensor y = conv2d(x, w, {1, 1});
    for (std::int64_t n = 0; n < 2; ++n)
        for (std::int64_t r = 0; r < 5; ++r)
            for (std::int64_t c = 0; c < 5; ++c)
                EXPECT_FLOAT_EQ(y.at(n, 0, r, c), x.at(n, 1, r, c));
}

TEST(Conv2d, ChannelAccumulation)
{
    // All-ones input and kernel: every output equals C * KH * KW.
    Tensor x = Tensor::full({1, 4, 4, 4}, 1.0f);
    Tensor w = Tensor::full({2, 4, 3, 3}, 1.0f);
    Tensor y = conv2d(x, w, {1, 1});
    EXPECT_EQ(y.at(0, 0, 1, 1), 4 * 9);       // interior
    EXPECT_EQ(y.at(0, 1, 0, 0), 4 * 4);       // corner (padding)
}

/** Conv parameter sweep: (C, F, H, K, stride, pad, batch). */
struct ConvCase
{
    int c, f, h, k, stride, pad, batch;
};

class ConvGemmEquivalence : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGemmEquivalence, GemmMatchesDirect)
{
    const auto p = GetParam();
    Rng rng(31);
    Tensor x = Tensor::randn({p.batch, p.c, p.h, p.h}, rng);
    Tensor w = Tensor::randn({p.f, p.c, p.k, p.k}, rng);
    const ConvSpec spec{p.stride, p.pad};
    Tensor direct = conv2d(x, w, spec);
    Tensor gemm = conv2dGemm(x, w, spec);
    EXPECT_TRUE(direct.allClose(gemm, 1e-4f))
        << "GEMM path diverged from direct convolution";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGemmEquivalence,
    ::testing::Values(ConvCase{1, 1, 4, 3, 1, 1, 1},
                      ConvCase{3, 8, 8, 3, 1, 1, 2},
                      ConvCase{2, 4, 9, 3, 2, 1, 1},
                      ConvCase{4, 2, 7, 5, 1, 2, 2},
                      ConvCase{1, 6, 6, 1, 1, 0, 3},
                      ConvCase{5, 5, 5, 5, 1, 0, 1},
                      ConvCase{2, 3, 10, 3, 3, 0, 1},
                      ConvCase{8, 8, 4, 3, 1, 1, 1}));

class ConvGradients : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGradients, InputGradMatchesNumerical)
{
    const auto p = GetParam();
    Rng rng(17);
    Tensor x = Tensor::randn({p.batch, p.c, p.h, p.h}, rng);
    Tensor w = Tensor::randn({p.f, p.c, p.k, p.k}, rng);
    const ConvSpec spec{p.stride, p.pad};
    Tensor y0 = conv2d(x, w, spec);
    Tensor coeff = Tensor::randn(y0.shape(), rng);

    Tensor analytic = conv2dInputGrad(coeff, w, x.shape(), spec);
    Tensor numeric = numericalGrad(
        x, [&] { return weightedSum(conv2d(x, w, spec), coeff); });
    EXPECT_TRUE(analytic.allClose(numeric, 5e-2f));
}

TEST_P(ConvGradients, WeightGradMatchesNumerical)
{
    const auto p = GetParam();
    Rng rng(23);
    Tensor x = Tensor::randn({p.batch, p.c, p.h, p.h}, rng);
    Tensor w = Tensor::randn({p.f, p.c, p.k, p.k}, rng);
    const ConvSpec spec{p.stride, p.pad};
    Tensor y0 = conv2d(x, w, spec);
    Tensor coeff = Tensor::randn(y0.shape(), rng);

    Tensor analytic = conv2dWeightGrad(coeff, x, w.shape(), spec);
    Tensor numeric = numericalGrad(
        w, [&] { return weightedSum(conv2d(x, w, spec), coeff); });
    EXPECT_TRUE(analytic.allClose(numeric, 5e-2f));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGradients,
    ::testing::Values(ConvCase{2, 3, 5, 3, 1, 1, 2},
                      ConvCase{1, 2, 6, 3, 2, 1, 1},
                      ConvCase{3, 1, 4, 2, 1, 0, 2},
                      ConvCase{2, 2, 5, 1, 1, 0, 1}));

TEST(DepthwiseConv, MatchesPerChannelConv)
{
    Rng rng(41);
    const int c = 4;
    Tensor x = Tensor::randn({2, c, 6, 6}, rng);
    Tensor w = Tensor::randn({c, 3, 3}, rng);
    Tensor y = depthwiseConv2d(x, w, {1, 1});

    // Reference: per-channel regular conv with a single channel.
    for (int ic = 0; ic < c; ++ic) {
        Tensor xc({2, 1, 6, 6});
        for (std::int64_t n = 0; n < 2; ++n)
            for (std::int64_t r = 0; r < 6; ++r)
                for (std::int64_t cl = 0; cl < 6; ++cl)
                    xc.at(n, 0, r, cl) = x.at(n, ic, r, cl);
        Tensor wc({1, 1, 3, 3});
        for (int kr = 0; kr < 3; ++kr)
            for (int kc = 0; kc < 3; ++kc)
                wc.at(0, 0, kr, kc) = w.at(ic, kr, kc);
        Tensor yc = conv2d(xc, wc, {1, 1});
        for (std::int64_t n = 0; n < 2; ++n)
            for (std::int64_t r = 0; r < 6; ++r)
                for (std::int64_t cl = 0; cl < 6; ++cl)
                    EXPECT_FLOAT_EQ(y.at(n, ic, r, cl),
                                    yc.at(n, 0, r, cl));
    }
}

TEST(DepthwiseConv, GradientsMatchNumerical)
{
    Rng rng(43);
    Tensor x = Tensor::randn({1, 3, 5, 5}, rng);
    Tensor w = Tensor::randn({3, 3, 3}, rng);
    const ConvSpec spec{1, 1};
    Tensor coeff = Tensor::randn({1, 3, 5, 5}, rng);

    Tensor dxa = depthwiseConv2dInputGrad(coeff, w, x.shape(), spec);
    Tensor dxn = numericalGrad(x, [&] {
        return weightedSum(depthwiseConv2d(x, w, spec), coeff);
    });
    EXPECT_TRUE(dxa.allClose(dxn, 5e-2f));

    Tensor dwa = depthwiseConv2dWeightGrad(coeff, x, w.shape(), spec);
    Tensor dwn = numericalGrad(w, [&] {
        return weightedSum(depthwiseConv2d(x, w, spec), coeff);
    });
    EXPECT_TRUE(dwa.allClose(dwn, 5e-2f));
}

TEST(Matmul, HandComputed)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor y = matmul(a, b);
    EXPECT_EQ(y.at(0, 0), 58);
    EXPECT_EQ(y.at(0, 1), 64);
    EXPECT_EQ(y.at(1, 0), 139);
    EXPECT_EQ(y.at(1, 1), 154);
}

TEST(Matmul, TransposeInvolution)
{
    Rng rng(3);
    Tensor a = Tensor::randn({3, 5}, rng);
    EXPECT_TRUE(transpose(transpose(a)).equals(a));
}

TEST(Fc, MatchesMatmulPlusBias)
{
    Rng rng(5);
    Tensor x = Tensor::randn({2, 4}, rng);
    Tensor w = Tensor::randn({4, 3}, rng);
    Tensor b = Tensor::randn({3}, rng);
    Tensor y = fc(x, w, b);
    Tensor ref = matmul(x, w);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(y.at(i, j), ref.at(i, j) + b[j]);
}

TEST(Fc, GradientsMatchNumerical)
{
    Rng rng(7);
    Tensor x = Tensor::randn({3, 4}, rng);
    Tensor w = Tensor::randn({4, 5}, rng);
    Tensor b = Tensor::randn({5}, rng);
    Tensor coeff = Tensor::randn({3, 5}, rng);

    auto f = [&] { return weightedSum(fc(x, w, b), coeff); };
    EXPECT_TRUE(fcInputGrad(coeff, w).allClose(numericalGrad(x, f),
                                               5e-2f));
    EXPECT_TRUE(fcWeightGrad(coeff, x).allClose(numericalGrad(w, f),
                                                5e-2f));
    EXPECT_TRUE(fcBiasGrad(coeff).allClose(numericalGrad(b, f), 5e-2f));
}

TEST(Relu, ClampsNegatives)
{
    Tensor x({4}, {-2.0f, -0.5f, 0.0f, 3.0f});
    Tensor y = relu(x);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 0.0f);
    EXPECT_EQ(y[3], 3.0f);
}

TEST(Relu, GradMasksByInputSign)
{
    Tensor x({3}, {-1.0f, 2.0f, 0.0f});
    Tensor dy({3}, {5.0f, 5.0f, 5.0f});
    Tensor dx = reluGrad(dy, x);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[1], 5.0f);
    EXPECT_EQ(dx[2], 0.0f);
}

TEST(MaxPool, ForwardPicksMaxAndArgmax)
{
    Tensor x({1, 1, 4, 4},
             {1, 2, 5, 3,
              4, 0, 1, 2,
              9, 1, 0, 1,
              2, 3, 1, 8});
    auto res = maxPool2d(x, 2, {2, 0});
    EXPECT_EQ(res.output.at(0, 0, 0, 0), 4);
    EXPECT_EQ(res.output.at(0, 0, 0, 1), 5);
    EXPECT_EQ(res.output.at(0, 0, 1, 0), 9);
    EXPECT_EQ(res.output.at(0, 0, 1, 1), 8);
    // Argmax flat indices (row * W + col).
    EXPECT_EQ(res.argmax.at(0, 0, 1, 0), 2 * 4 + 0);
    EXPECT_EQ(res.argmax.at(0, 0, 1, 1), 3 * 4 + 3);
}

TEST(MaxPool, BackwardRoutesToArgmax)
{
    Tensor x({1, 1, 4, 4},
             {1, 2, 5, 3,
              4, 0, 1, 2,
              9, 1, 0, 1,
              2, 3, 1, 8});
    auto res = maxPool2d(x, 2, {2, 0});
    Tensor dy = Tensor::full({1, 1, 2, 2}, 1.0f);
    Tensor dx = maxPool2dGrad(dy, res.argmax, x.shape(), 2, {2, 0});
    EXPECT_DOUBLE_EQ(dx.sum(), 4.0);
    EXPECT_EQ(dx.at(0, 0, 1, 0), 1.0f); // the 4
    EXPECT_EQ(dx.at(0, 0, 0, 2), 1.0f); // the 5
    EXPECT_EQ(dx.at(0, 0, 2, 0), 1.0f); // the 9
    EXPECT_EQ(dx.at(0, 0, 3, 3), 1.0f); // the 8
}

TEST(GlobalAvgPool, ForwardAndBackward)
{
    Tensor x = Tensor::full({2, 3, 4, 4}, 2.0f);
    Tensor y = globalAvgPool(x);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 3}));
    EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);

    Tensor dy = Tensor::full({2, 3}, 16.0f);
    Tensor dx = globalAvgPoolGrad(dy, x.shape());
    EXPECT_FLOAT_EQ(dx.at(1, 2, 3, 3), 1.0f);
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(9);
    Tensor logits = Tensor::randn({4, 7}, rng, 3.0f);
    Tensor p = softmax(logits);
    for (std::int64_t i = 0; i < 4; ++i) {
        double row = 0.0;
        for (std::int64_t j = 0; j < 7; ++j) {
            EXPECT_GE(p.at(i, j), 0.0f);
            row += p.at(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Softmax, NumericallyStableForLargeLogits)
{
    Tensor logits({1, 2}, {1000.0f, 1001.0f});
    Tensor p = softmax(logits);
    EXPECT_NEAR(p.at(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionHasLowLoss)
{
    Tensor logits({2, 3});
    logits.at(0, 0) = 20.0f;
    logits.at(1, 2) = 20.0f;
    auto res = crossEntropy(logits, {0, 2});
    EXPECT_LT(res.loss, 1e-3);
}

TEST(CrossEntropy, GradMatchesNumerical)
{
    Rng rng(13);
    Tensor logits = Tensor::randn({3, 4}, rng);
    const std::vector<int> labels{1, 3, 0};
    auto res = crossEntropy(logits, labels);
    Tensor numeric = numericalGrad(
        logits, [&] { return crossEntropy(logits, labels).loss; },
        1e-2f);
    EXPECT_TRUE(res.grad.allClose(numeric, 1e-2f));
}

TEST(CountCorrect, CountsArgmaxHits)
{
    Tensor logits({3, 2}, {0.1f, 0.9f, 0.8f, 0.2f, 0.4f, 0.6f});
    EXPECT_EQ(countCorrect(logits, {1, 0, 1}), 3);
    EXPECT_EQ(countCorrect(logits, {0, 0, 1}), 2);
    EXPECT_EQ(countCorrect(logits, {0, 1, 0}), 0);
}

TEST(Im2col, RowsAreWindows)
{
    Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor cols = im2col(x, 2, 2, {1, 0});
    ASSERT_EQ(cols.shape(), (std::vector<std::int64_t>{4, 4}));
    // First window: 1 2 / 4 5.
    EXPECT_EQ(cols.at(0, 0), 1);
    EXPECT_EQ(cols.at(0, 1), 2);
    EXPECT_EQ(cols.at(0, 2), 4);
    EXPECT_EQ(cols.at(0, 3), 5);
    // Last window: 5 6 / 8 9.
    EXPECT_EQ(cols.at(3, 3), 9);
}

TEST(Im2col, ZeroPaddingInsertsZeros)
{
    Tensor x = Tensor::full({1, 1, 2, 2}, 3.0f);
    Tensor cols = im2col(x, 3, 3, {1, 1});
    // Top-left window has its first row/col padded.
    EXPECT_EQ(cols.at(0, 0), 0.0f);
    EXPECT_EQ(cols.at(0, 4), 3.0f); // center = x(0,0)
}

} // namespace
} // namespace tensor
} // namespace inca
