/**
 * @file
 * INCA intra-layer mapping tests (paper Section IV-C).
 */

#include <gtest/gtest.h>

#include "inca/mapping.hh"

namespace inca {
namespace core {
namespace {

nn::LayerDesc
convLayer(std::int64_t c, std::int64_t hw, std::int64_t n, int k,
          std::int64_t out)
{
    nn::LayerDesc l;
    l.kind = k == 1 ? nn::LayerKind::Pointwise : nn::LayerKind::Conv;
    l.inC = c;
    l.inH = l.inW = hw;
    l.outC = n;
    l.outH = l.outW = out;
    l.kh = l.kw = k;
    return l;
}

TEST(Mapping, PartitionCounts)
{
    const auto cfg = arch::paperInca();
    // 224x224 on 16x16 planes: 14x14 partitions per channel.
    auto m = mapLayer(convLayer(3, 224, 64, 3, 224), cfg);
    EXPECT_EQ(m.partitionsPerChannel, 196);
    EXPECT_EQ(m.macrosNeeded, 3 * 196);
    // 14x14 maps: one partition.
    m = mapLayer(convLayer(512, 14, 512, 3, 14), cfg);
    EXPECT_EQ(m.partitionsPerChannel, 1);
    EXPECT_EQ(m.macrosNeeded, 512);
}

TEST(Mapping, RaggedMapsRoundUp)
{
    const auto cfg = arch::paperInca();
    auto m = mapLayer(convLayer(64, 28, 64, 3, 28), cfg);
    EXPECT_EQ(m.partitionsPerChannel, 4); // ceil(28/16)^2
}

TEST(Mapping, PositionsSplitAcrossPartitions)
{
    const auto cfg = arch::paperInca();
    auto m = mapLayer(convLayer(3, 224, 64, 3, 224), cfg);
    // 50176 output positions over 196 partitions.
    EXPECT_EQ(m.positionsPerPartition, 256);
}

TEST(Mapping, OutputChannelsAreSerial)
{
    const auto cfg = arch::paperInca();
    auto m = mapLayer(convLayer(64, 56, 128, 3, 56), cfg);
    EXPECT_EQ(m.serialChannels, 128);
    EXPECT_EQ(m.sequentialReads(8),
              m.positionsPerPartition * 8 * 128);
}

TEST(Mapping, DepthwiseChannelsAreParallel)
{
    const auto cfg = arch::paperInca();
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Depthwise;
    l.inC = l.outC = 96;
    l.inH = l.inW = l.outH = l.outW = 28;
    l.kh = l.kw = 3;
    auto m = mapLayer(l, cfg);
    EXPECT_EQ(m.serialChannels, 1);
    EXPECT_EQ(m.adcGroupsPerOutput, 1);
    EXPECT_EQ(m.macrosNeeded, 96 * 4);
}

TEST(Mapping, AdcGroupsFollowChannelCount)
{
    const auto cfg = arch::paperInca(); // 16 subarrays per ADC
    EXPECT_EQ(mapLayer(convLayer(512, 14, 512, 3, 14), cfg)
                  .adcGroupsPerOutput,
              32);
    EXPECT_EQ(mapLayer(convLayer(16, 14, 16, 3, 14), cfg)
                  .adcGroupsPerOutput,
              1);
    EXPECT_EQ(mapLayer(convLayer(17, 14, 16, 3, 14), cfg)
                  .adcGroupsPerOutput,
              2);
}

TEST(Mapping, PointwiseFoldsChannelsOntoPlane)
{
    const auto cfg = arch::paperInca();
    // 1024 channels fold onto ceil(1024/256) = 4 planes per pixel;
    // each plane holds one pixel's slice -> one serial position.
    auto m = mapLayer(convLayer(1024, 14, 256, 1, 14), cfg);
    EXPECT_EQ(m.partitionsPerChannel, 4); // fold groups
    EXPECT_EQ(m.positionsPerPartition, 1);
    EXPECT_EQ(m.serialChannels, 256);
    EXPECT_EQ(m.windowCells, 256);
    EXPECT_EQ(m.adcGroupsPerOutput, 1);
}

TEST(Mapping, PointwiseSmallChannelsShareAPlane)
{
    const auto cfg = arch::paperInca();
    // 16 channels per pixel: 256/16 = 16 pixels per plane serialize.
    auto m = mapLayer(convLayer(16, 32, 96, 1, 32), cfg);
    EXPECT_EQ(m.positionsPerPartition, 16);
    EXPECT_EQ(m.windowCells, 16);
}

TEST(Mapping, FullyConnectedFolds)
{
    const auto cfg = arch::paperInca();
    nn::LayerDesc fc;
    fc.kind = nn::LayerKind::FullyConnected;
    fc.inC = 25088;
    fc.inH = fc.inW = 1;
    fc.outC = 4096;
    fc.outH = fc.outW = 1;
    fc.kh = fc.kw = 1;
    auto m = mapLayer(fc, cfg);
    EXPECT_EQ(m.partitionsPerChannel, 98); // ceil(25088/256)
    EXPECT_EQ(m.serialChannels, 4096);
    EXPECT_EQ(m.positionsPerPartition, 1);
    EXPECT_EQ(m.adcGroupsPerOutput, 7); // ceil(98/16)
}

TEST(Mapping, WindowCellsMatchKernel)
{
    const auto cfg = arch::paperInca();
    EXPECT_EQ(mapLayer(convLayer(8, 14, 8, 3, 14), cfg).windowCells,
              9);
    nn::LayerDesc l = convLayer(8, 14, 8, 3, 14);
    l.kh = l.kw = 5;
    EXPECT_EQ(mapLayer(l, cfg).windowCells, 25);
}

TEST(MappingDeath, NonConvLayerPanics)
{
    const auto cfg = arch::paperInca();
    nn::LayerDesc pool;
    pool.kind = nn::LayerKind::MaxPool;
    pool.name = "pool";
    EXPECT_DEATH(mapLayer(pool, cfg), "non-conv");
}

} // namespace
} // namespace core
} // namespace inca
