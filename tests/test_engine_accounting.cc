/**
 * @file
 * Closed-form accounting checks: the engines' event counts must equal
 * the formulas DESIGN.md documents (D1-D9), computed by hand for
 * single-layer networks. These tests lock the accounting against
 * accidental drift.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/engine.hh"
#include "dataflow/access_model.hh"
#include "inca/engine.hh"
#include "nn/network.hh"

namespace inca {
namespace {

/** A single-conv-layer network: C x H x H -> N x H x H, 3x3 same. */
nn::NetworkDesc
oneConv(std::int64_t c, std::int64_t h, std::int64_t n)
{
    nn::NetBuilder b("one-conv", c, h, h);
    b.conv(n, 3, 1, 1);
    return b.build(int(n));
}

/** A single depthwise layer. */
nn::NetworkDesc
oneDepthwise(std::int64_t c, std::int64_t h)
{
    nn::NetBuilder b("one-dw", c, h, h);
    b.dwconv(3, 1, 1);
    return b.build(int(c));
}

const nn::LayerDesc &
convLayer(const nn::NetworkDesc &net)
{
    return net.layers.front();
}

TEST(IncaAccounting, ArrayReadEventsAreMacsTimesBitPairs)
{
    // D-model: cell reads = MACs x weightBits x actBits x images.
    const auto net = oneConv(16, 32, 8);
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    const double macs = double(convLayer(net).macs());
    EXPECT_DOUBLE_EQ(run.sum("count.array.read"),
                     macs * 8.0 * 8.0 * 64.0);
}

TEST(IncaAccounting, AdcConversionsUseChannelGroups)
{
    // D1: conversions = outputs x wBits x aBits x ceil(C/16) x images.
    const auto net = oneConv(48, 32, 8); // ceil(48/16) = 3 groups
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    const double outputs = double(convLayer(net).outputCount());
    EXPECT_DOUBLE_EQ(run.sum("count.adc"),
                     outputs * 8.0 * 8.0 * 3.0 * 64.0);
}

TEST(IncaAccounting, BufferReadsAreEqFiveTimesKernels)
{
    // IS weight traffic: Eq. 5 x N words per batch wave.
    const auto net = oneConv(16, 32, 8);
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    const dataflow::AccessConfig acc{8, 256};
    EXPECT_DOUBLE_EQ(
        run.sum("count.buffer.read"),
        double(dataflow::isLayerAccesses(convLayer(net), acc)));
}

TEST(IncaAccounting, OutputAndInputWritesCharged)
{
    // First conv: input load + output propagation, aBits cells per
    // value per image, plus D6's replication copies: 4 channels x 1
    // partition = 4 macros of 2016 -> replication capped at the 4
    // serial channels -> 3 extra input copies.
    const auto net = oneConv(4, 16, 4);
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    const auto &l = convLayer(net);
    const double replicationCopies = 3.0;
    EXPECT_DOUBLE_EQ(
        run.sum("count.array.write"),
        double(l.outputCount()) * 8.0 * 64.0 +
            double(l.inputCount()) * (1.0 + replicationCopies) * 8.0 *
                64.0);
}

TEST(IncaAccounting, NoDramWhenWeightsFitBuffers)
{
    // 4x4x3x3 kernels: a few KB << 10.5 MB of buffers -> no stream.
    const auto net = oneConv(4, 16, 4);
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    EXPECT_DOUBLE_EQ(run.sum("count.dram.bytes"), 0.0);
    EXPECT_DOUBLE_EQ(run.sum("energy.dram"), 0.0);
}

TEST(IncaAccounting, LatencyFormulaSmallLayer)
{
    // 16-channel, 32x32 map: 4 partitions/channel, 256 positions per
    // partition, 8 output channels serial; 16 x 4 = 64 macros needed
    // of 2016 -> replication 31 -> ceil(8/31) = 1 serial channel.
    const auto net = oneConv(16, 32, 8);
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net, 64);
    const double reads = 256.0 * 8.0 * 1.0;
    EXPECT_NEAR(run.latency, reads * engine.readCycleTime(64),
                1e-12);
}

TEST(BaselineAccounting, AdcConversionsCoverAllColumns)
{
    // D1 baseline: conversions = windows x aBits x arrays x 128 x
    // images. 16 channels x 9 = 144 rows -> 2 row tiles; 8 kernels x
    // 8 bits = 64 columns -> 1 col tile; arrays = 2.
    const auto net = oneConv(16, 32, 8);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net, 64);
    const double windows = 32.0 * 32.0;
    EXPECT_DOUBLE_EQ(run.sum("count.adc"),
                     windows * 8.0 * 2.0 * 128.0 * 64.0);
}

TEST(BaselineAccounting, DepthwiseBurnsPerChannelArrays)
{
    // Depthwise: one array per channel, all 128 columns converting.
    const auto net = oneDepthwise(32, 16);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net, 64);
    const double windows = 16.0 * 16.0;
    EXPECT_DOUBLE_EQ(run.sum("count.adc"),
                     windows * 8.0 * 32.0 * 128.0 * 64.0);
}

TEST(BaselineAccounting, BufferTrafficMatchesEquations)
{
    const auto net = oneConv(16, 32, 8);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net, 64);
    const dataflow::AccessConfig acc{8, 256};
    const auto &l = convLayer(net);
    const double fetch =
        double(dataflow::fetchWordsPerOutput(l, acc)) * 32.0 * 32.0 *
        64.0;
    const double save = double(dataflow::saveWords(l, acc)) * 64.0;
    EXPECT_DOUBLE_EQ(run.sum("count.buffer.read"), fetch);
    EXPECT_DOUBLE_EQ(run.sum("count.buffer.write"), save);
}

TEST(BaselineAccounting, CellReadsCoverWholeColumns)
{
    // Active cells per (window, abit): usedRows x colTiles x 128
    // (1T1R cannot gate columns).
    const auto net = oneConv(16, 32, 8);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net, 64);
    const double windows = 32.0 * 32.0;
    const double activeCells = 144.0 * 1.0 * 128.0;
    EXPECT_DOUBLE_EQ(run.sum("count.array.read"),
                     windows * 8.0 * activeCells * 64.0);
}

TEST(BaselineAccounting, InferenceLatencyIsPipelined)
{
    // One layer: fill = windows x aBits x 100 ns; batch drains at the
    // same stage time (single-stage pipeline).
    const auto net = oneConv(16, 32, 8);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net, 64);
    const double stage = 32.0 * 32.0 * 8.0 * 100e-9;
    EXPECT_NEAR(run.latency, stage + 63.0 * stage, stage * 0.51);
}

TEST(TrainingAccounting, IncaTrainingIsThreePassesOfReads)
{
    const auto net = oneConv(16, 32, 8);
    core::IncaEngine engine(arch::paperInca());
    const double inf =
        engine.inference(net, 64).sum("count.array.read");
    const double trn =
        engine.training(net, 64).sum("count.array.read");
    EXPECT_DOUBLE_EQ(trn, 3.0 * inf);
}

TEST(TrainingAccounting, BaselineWeightRewritesPerBatch)
{
    // PipeLayer reprograms original + transposed weight cells once
    // per iteration: 2 x weights x 8 bits, on top of the activation
    // and error stores.
    const auto net = oneConv(16, 32, 8);
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.training(net, 64);
    const double weights = double(convLayer(net).weightCount());
    const double actStores =
        double(convLayer(net).inputCount()) * 8.0 * 64.0;
    EXPECT_DOUBLE_EQ(run.sum("count.array.write"),
                     2.0 * weights * 8.0 + actStores);
}

} // namespace
} // namespace inca
