/**
 * @file
 * Functional WS training tests: the transposed-weight crossbars
 * (Limitation 2) compute the correct error backpropagation, and the
 * extra-array cost is real.
 */

#include <gtest/gtest.h>

#include "baseline/training.hh"
#include "common/random.hh"
#include "tensor/ops.hh"

namespace inca {
namespace baseline {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

Tensor
randomUnsigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(rng.below(1u << bits));
    return t;
}

Tensor
randomSigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    const int span = 1 << bits;
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(std::int64_t(rng.below(std::uint64_t(span))) -
                     (span / 2));
    return t;
}

TEST(SplitSigned, Reconstruction)
{
    Rng rng(1);
    Tensor t = randomSigned({4, 4}, 6, rng);
    auto [pos, neg] = splitSigned(t);
    for (std::int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(pos[i], 0.0f);
        EXPECT_GE(neg[i], 0.0f);
        EXPECT_FLOAT_EQ(pos[i] - neg[i], t[i]);
        EXPECT_TRUE(pos[i] == 0.0f || neg[i] == 0.0f);
    }
}

TEST(WsTraining, ForwardMatchesReference)
{
    Rng rng(2);
    Tensor w = randomSigned({4, 2, 3, 3}, 8, rng);
    Tensor x = randomUnsigned({2, 2, 7, 7}, 8, rng);
    WsTrainingContext ctx(w, 1, {32, 8, 8, 8});
    EXPECT_TRUE(ctx.forward(x).equals(
        tensor::conv2d(x, w, ConvSpec{1, 1})));
}

TEST(WsTraining, TransposedCrossbarsComputeInputGrad)
{
    // Signed errors stream as two unsigned passes through the W^T
    // crossbars (PipeLayer's scheme); the difference of the passes
    // must equal conv2dInputGrad exactly.
    Rng rng(3);
    const int pad = 1;
    Tensor w = randomSigned({3, 2, 3, 3}, 8, rng);
    Tensor dy = randomSigned({2, 3, 6, 6}, 6, rng);
    WsTrainingContext ctx(w, pad, {32, 8, 8, 8});

    auto [pos, neg] = splitSigned(dy);
    Tensor dxPos = ctx.errorBackprop(pos);
    Tensor dxNeg = ctx.errorBackprop(neg);
    dxPos -= dxNeg;

    Tensor ref = tensor::conv2dInputGrad(dy, w, {2, 2, 6, 6},
                                         ConvSpec{1, pad});
    EXPECT_TRUE(dxPos.equals(ref));
}

TEST(WsTraining, NoPaddingVariant)
{
    Rng rng(4);
    Tensor w = randomSigned({2, 1, 3, 3}, 8, rng);
    Tensor dy = randomSigned({1, 2, 4, 4}, 5, rng);
    WsTrainingContext ctx(w, 0, {16, 8, 8, 8});
    auto [pos, neg] = splitSigned(dy);
    Tensor dx = ctx.errorBackprop(pos);
    dx -= ctx.errorBackprop(neg);
    Tensor ref = tensor::conv2dInputGrad(dy, w, {1, 1, 6, 6},
                                         ConvSpec{1, 0});
    EXPECT_TRUE(dx.equals(ref));
}

TEST(WsTraining, TransposedCopyCostsExtraArrays)
{
    // Limitation 2's hardware bill: the W^T disposition needs its own
    // crossbars -- for a square channel count, exactly as many again.
    Rng rng(5);
    Tensor w = randomSigned({8, 8, 3, 3}, 8, rng);
    WsTrainingContext ctx(w, 1, {32, 8, 8, 8});
    EXPECT_GT(ctx.forwardArrays(), 0);
    EXPECT_EQ(ctx.transposedArrays(), ctx.forwardArrays());
    EXPECT_EQ(ctx.totalArrays(), 2 * ctx.forwardArrays());
}

TEST(WsTraining, AsymmetricChannelsStillDouble)
{
    // F != C: array counts differ between copies, but the copy is
    // still a full second allocation.
    Rng rng(6);
    Tensor w = randomSigned({16, 4, 3, 3}, 8, rng);
    WsTrainingContext ctx(w, 1, {32, 8, 8, 8});
    EXPECT_GT(ctx.transposedArrays(), 0);
    EXPECT_EQ(ctx.totalArrays(),
              ctx.forwardArrays() + ctx.transposedArrays());
}

} // namespace
} // namespace baseline
} // namespace inca
