/**
 * @file
 * Deterministic RNG tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"

namespace inca {
namespace {

TEST(Random, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Random, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformBoundsRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Random, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, BelowInRange)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, BelowCoversAllValues)
{
    Rng rng(15);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++hits[size_t(rng.below(8))];
    for (int h : hits)
        EXPECT_GT(h, 0);
}

TEST(Random, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumSq += g * g;
    }
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, GaussianShifted)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.03);
}

TEST(RandomDeath, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "below");
}

} // namespace
} // namespace inca
