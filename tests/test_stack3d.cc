/**
 * @file
 * 3D stack and PIM macro tests: shared-pillar batch semantics, value
 * storage across bit planes, and bit-serial windowed convolution with
 * ADC effects.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "inca/stack3d.hh"

namespace inca {
namespace core {
namespace {

TEST(Stack3D, SharedPillarsDriveAllPlanesAtOnce)
{
    // The 3D batch-parallelism mechanism: one weight pattern on the
    // shared pillars, every plane (image) answers independently.
    Stack3D stack(4, 3);
    stack.plane(0).writeCell(0, 0, true);
    stack.plane(1).writeCell(0, 1, true);
    stack.plane(2).writeCell(1, 1, true);
    const auto currents = stack.readWindow(0, 0, 2, 2, {1, 1, 0, 1});
    ASSERT_EQ(currents.size(), 3u);
    EXPECT_EQ(currents[0], 1); // (0,0) active, weight bit 1
    EXPECT_EQ(currents[1], 1); // (0,1) active, weight bit 1
    EXPECT_EQ(currents[2], 1); // (1,1) active, weight bit 1
    const auto masked = stack.readWindow(0, 0, 2, 2, {0, 0, 1, 0});
    EXPECT_EQ(masked[0], 0);
    EXPECT_EQ(masked[1], 0);
    EXPECT_EQ(masked[2], 0);
}

TEST(Stack3D, PlanesAreIndependent)
{
    Stack3D stack(4, 2);
    stack.plane(0).writeCell(2, 2, true);
    EXPECT_TRUE(stack.plane(0).cell(2, 2));
    EXPECT_FALSE(stack.plane(1).cell(2, 2));
}

TEST(IncaMacro, ValueRoundTrip)
{
    IncaMacro macro(8, 4, 8);
    macro.writeValue(0, 1, 2, 0xAB);
    macro.writeValue(3, 7, 7, 0x01);
    EXPECT_EQ(macro.readValue(0, 1, 2), 0xABu);
    EXPECT_EQ(macro.readValue(3, 7, 7), 0x01u);
    EXPECT_EQ(macro.readValue(1, 1, 2), 0u);
}

TEST(IncaMacro, OverwriteValue)
{
    IncaMacro macro(4, 1, 8);
    macro.writeValue(0, 0, 0, 200);
    macro.writeValue(0, 0, 0, 3);
    EXPECT_EQ(macro.readValue(0, 0, 0), 3u);
}

TEST(IncaMacro, ConvolveWindowExactForSmallWindows)
{
    // Bit-serial direct convolution with a 4-bit ADC must be EXACT for
    // 3x3 windows (<= 9 products per read).
    Rng rng(1);
    IncaMacro macro(8, 2, 8);
    int x0[3][3], x1[3][3];
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            x0[r][c] = int(rng.below(256));
            x1[r][c] = int(rng.below(256));
            macro.writeValue(0, r + 2, c + 2, std::uint32_t(x0[r][c]));
            macro.writeValue(1, r + 2, c + 2, std::uint32_t(x1[r][c]));
        }
    }
    std::vector<int> kernel(9);
    for (auto &k : kernel)
        k = int(rng.below(255)) - 127;

    const auto out = macro.convolveWindow(2, 2, 3, 3, kernel, 8, 4);
    std::int64_t ref0 = 0, ref1 = 0;
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            ref0 += std::int64_t(kernel[size_t(r * 3 + c)]) * x0[r][c];
            ref1 += std::int64_t(kernel[size_t(r * 3 + c)]) * x1[r][c];
        }
    }
    EXPECT_EQ(out[0], ref0);
    EXPECT_EQ(out[1], ref1);
}

TEST(IncaMacro, NegativeWeightsViaTwosComplement)
{
    IncaMacro macro(4, 1, 8);
    macro.writeValue(0, 0, 0, 10);
    macro.writeValue(0, 0, 1, 20);
    const auto out =
        macro.convolveWindow(0, 0, 1, 2, {-3, 2}, 8, 4);
    EXPECT_EQ(out[0], -3 * 10 + 2 * 20);
}

TEST(IncaMacro, SignedActivationsViaMsbWeighting)
{
    // Two's-complement stored values (errors in backprop).
    IncaMacro macro(4, 1, 8);
    const std::int32_t vals[2] = {-5, 7};
    macro.writeValue(0, 0, 0, std::uint32_t(vals[0]) & 0xFF);
    macro.writeValue(0, 0, 1, std::uint32_t(vals[1]) & 0xFF);
    const auto out = macro.convolveWindow(0, 0, 1, 2, {3, -2}, 8, 4,
                                          /*signedActivations=*/true);
    EXPECT_EQ(out[0], 3 * -5 + -2 * 7);
}

TEST(IncaMacro, FourBitAdcClipsLargeWindows)
{
    // A 5x5 all-ones window accumulates 25 > 15: the 4-bit ADC clips,
    // an 8-bit ADC does not -- the quantitative form of the paper's
    // "a 4-bit ADC is sufficient (for 3x3)".
    IncaMacro macro(8, 1, 2);
    for (int r = 0; r < 5; ++r)
        for (int c = 0; c < 5; ++c)
            macro.writeValue(0, r, c, 1);
    std::vector<int> ones(25, 1);
    const auto clipped = macro.convolveWindow(0, 0, 5, 5, ones, 2, 4);
    const auto exact = macro.convolveWindow(0, 0, 5, 5, ones, 2, 8);
    EXPECT_EQ(exact[0], 25);
    EXPECT_EQ(clipped[0], 15);
}

TEST(IncaMacro, ZeroKernelSkipsReads)
{
    IncaMacro macro(4, 1, 8);
    macro.writeValue(0, 0, 0, 255);
    const auto out = macro.convolveWindow(0, 0, 2, 2, {0, 0, 0, 0}, 8,
                                          4);
    EXPECT_EQ(out[0], 0);
}

TEST(IncaMacroDeath, ValueRangeChecked)
{
    IncaMacro macro(4, 1, 4);
    EXPECT_DEATH(macro.writeValue(0, 0, 0, 16), "exceeds");
}

TEST(IncaMacroDeath, KernelSizeChecked)
{
    IncaMacro macro(4, 1, 8);
    EXPECT_DEATH(macro.convolveWindow(0, 0, 2, 2, {1, 2, 3}, 8, 4),
                 "kernel");
}

} // namespace
} // namespace core
} // namespace inca
