/**
 * @file
 * Unit and SI-helper tests.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace inca {
namespace {

using namespace inca::literals;

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(1.0_s, 1.0);
    EXPECT_DOUBLE_EQ(1.0_ms, 1e-3);
    EXPECT_DOUBLE_EQ(1.0_us, 1e-6);
    EXPECT_DOUBLE_EQ(10.0_ns, 1e-8);
    EXPECT_DOUBLE_EQ(50_ns, 5e-8);
    EXPECT_DOUBLE_EQ(1.0_ps, 1e-12);
}

TEST(Units, EnergyLiterals)
{
    EXPECT_DOUBLE_EQ(32_pJ, 32e-12);
    EXPECT_DOUBLE_EQ(1.5_nJ, 1.5e-9);
    EXPECT_DOUBLE_EQ(2.0_uJ, 2e-6);
    EXPECT_DOUBLE_EQ(3.0_mJ, 3e-3);
}

TEST(Units, ElectricalLiterals)
{
    EXPECT_DOUBLE_EQ(240.0_kOhm, 240e3);
    EXPECT_DOUBLE_EQ(24.0_MOhm, 24e6);
    EXPECT_DOUBLE_EQ(0.5_V, 0.5);
    EXPECT_DOUBLE_EQ(1.03_uW, 1.03e-6);
    EXPECT_DOUBLE_EQ(10.42_nW, 10.42e-9);
}

TEST(Units, GeometryLiterals)
{
    EXPECT_DOUBLE_EQ(600.0_nm, 600e-9);
    EXPECT_DOUBLE_EQ(0.03_um2, 0.03e-12);
    EXPECT_DOUBLE_EQ(84.088_mm2, 84.088e-6);
}

TEST(Units, CapacityLiterals)
{
    EXPECT_DOUBLE_EQ(64_KiB, 65536.0);
    EXPECT_DOUBLE_EQ(1_MiB, 1048576.0);
    EXPECT_DOUBLE_EQ(8_GiB, 8.0 * 1073741824.0);
}

TEST(Units, FormatSiPicksPrefix)
{
    EXPECT_EQ(formatSi(3.2e-12, "J"), "3.20 pJ");
    EXPECT_EQ(formatSi(1.5e-9, "s"), "1.50 ns");
    EXPECT_EQ(formatSi(2.5e6, "Hz"), "2.50 MHz");
    EXPECT_EQ(formatSi(42.0, "J"), "42.00 J");
}

TEST(Units, FormatSiZeroAndNegative)
{
    EXPECT_EQ(formatSi(0.0, "J"), "0.00 J");
    EXPECT_EQ(formatSi(-2.0e-3, "J"), "-2.00 mJ");
}

TEST(Units, FormatSiPrecision)
{
    EXPECT_EQ(formatSi(3.14159e-6, "s", 4), "3.1416 us");
    EXPECT_EQ(formatSi(3.14159e-6, "s", 0), "3 us");
}

TEST(Units, FormatArea)
{
    EXPECT_EQ(formatAreaMm2(84.088e-6), "84.088 mm^2");
    EXPECT_EQ(formatAreaMm2(47.914e-6), "47.914 mm^2");
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 5), 0u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
    EXPECT_EQ(ceilDiv(5, 5), 1u);
    EXPECT_EQ(ceilDiv(6, 5), 2u);
    EXPECT_EQ(ceilDiv(432, 256), 2u);   // Eq. 5 for VGG16 conv1, 16-bit
    EXPECT_EQ(ceilDiv(216, 256), 1u);   // same at 8-bit
}

/** ceilDiv must satisfy its defining inequality over a sweep. */
class CeilDivProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(CeilDivProperty, Definition)
{
    const auto [n, d] = GetParam();
    const auto q = ceilDiv(n, d);
    EXPECT_GE(q * d, n);
    if (q > 0) {
        EXPECT_LT((q - 1) * d, n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CeilDivProperty,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{1, 1},
                      std::pair<std::uint64_t, std::uint64_t>{7, 3},
                      std::pair<std::uint64_t, std::uint64_t>{9, 3},
                      std::pair<std::uint64_t, std::uint64_t>{10, 3},
                      std::pair<std::uint64_t, std::uint64_t>{255, 256},
                      std::pair<std::uint64_t, std::uint64_t>{256, 256},
                      std::pair<std::uint64_t, std::uint64_t>{257, 256},
                      std::pair<std::uint64_t, std::uint64_t>{1u << 20,
                                                              3}));

} // namespace
} // namespace inca
