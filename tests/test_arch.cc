/**
 * @file
 * Architecture configuration, area roll-up (Table V) and idle-power
 * tests.
 */

#include <gtest/gtest.h>

#include "arch/area.hh"
#include "arch/config.hh"
#include "arch/power.hh"

namespace inca {
namespace arch {
namespace {

TEST(Config, TableIIOrganization)
{
    const IncaConfig inca = paperInca();
    EXPECT_EQ(inca.org.numTiles, 168);
    EXPECT_EQ(inca.org.tileSize, 12);
    EXPECT_EQ(inca.org.macroSize, 8);
    EXPECT_EQ(inca.org.totalMacros(), 2016);
    EXPECT_EQ(inca.org.totalSubarrays(), 16128);
    EXPECT_EQ(inca.subarraySize, 16);
    EXPECT_EQ(inca.stackedPlanes, 64);
    EXPECT_EQ(inca.adcBits, 4);
    EXPECT_EQ(inca.subarraysPerAdc, 16);
    EXPECT_EQ(inca.batchSize, 64);
}

TEST(Config, BaselineTableII)
{
    const BaselineConfig base = paperBaseline();
    EXPECT_EQ(base.subarraySize, 128);
    EXPECT_EQ(base.adcBits, 8);
    EXPECT_EQ(base.org.totalSubarrays(), 16128);
}

TEST(Config, IsoCapacityComparison)
{
    // Section V-B-6: "the number of RRAMs in one 3D architecture
    // (16 x 16 x 64) equals that of one crossbar in the baseline
    // (128 x 128)" -- and hence the chips are capacity-equal.
    const IncaConfig inca = paperInca();
    const BaselineConfig base = paperBaseline();
    EXPECT_EQ(inca.cellsPerStack(), base.cellsPerSubarray());
    EXPECT_EQ(inca.cellsPerStack(), 16384);
    EXPECT_EQ(inca.totalCells(), base.totalCells());
}

TEST(Config, CycleTimes)
{
    const IncaConfig inca = paperInca();
    const BaselineConfig base = paperBaseline();
    EXPECT_DOUBLE_EQ(inca.readCycle(), 10e-9);
    // Paper Section V-B-2: baseline read ~2x INCA's write latency.
    EXPECT_DOUBLE_EQ(base.readCycle(), 100e-9);
    EXPECT_DOUBLE_EQ(base.readCycle(),
                     2.0 * inca.device.tWrite);
}

TEST(Area, IncaStackMatchesPaper)
{
    // "one 3D architecture of INCA demands 49.152 um^2" (the paper
    // rounds the scaled 2T1R footprint to 0.048 um^2; our exact
    // 600 x 700 nm x 0.34^2 gives 0.0486, hence the tolerance).
    EXPECT_NEAR(incaStackArea(paperInca()), 49.152e-12, 1.0e-12);
}

TEST(Area, BaselineCrossbarMatchesPaper)
{
    // "one crossbar of the baseline needs 491.52 um^2".
    EXPECT_NEAR(baselineSubarrayArea(paperBaseline()), 491.52e-12,
                5e-12);
}

TEST(Area, TableVBaselineBreakdown)
{
    const AreaBreakdown a = baselineArea(paperBaseline());
    EXPECT_NEAR(a.buffer, 13.944e-6, 0.05e-6);
    EXPECT_NEAR(a.array, 7.927e-6, 0.15e-6);
    EXPECT_NEAR(a.adc, 30.298e-6, 0.3e-6);
    EXPECT_NEAR(a.dac, 0.343e-6, 0.01e-6);
    EXPECT_NEAR(a.postProcessing, 3.656e-6, 0.01e-6);
    EXPECT_NEAR(a.others, 27.920e-6, 0.01e-6);
    EXPECT_NEAR(a.total(), 84.088e-6, 0.5e-6);
}

TEST(Area, TableVIncaBreakdown)
{
    const AreaBreakdown a = incaArea(paperInca());
    EXPECT_NEAR(a.buffer, 13.944e-6, 0.05e-6);
    EXPECT_NEAR(a.array, 0.793e-6, 0.02e-6);
    EXPECT_NEAR(a.adc, 4.5864e-6, 0.05e-6);
    EXPECT_NEAR(a.dac, 0.686e-6, 0.02e-6);
    EXPECT_NEAR(a.total(), 47.914e-6, 0.5e-6);
}

TEST(Area, IncaSavesAreaOverall)
{
    // Table V bottom line: 47.914 vs 84.088 mm^2.
    EXPECT_LT(incaArea(paperInca()).total(),
              0.6 * baselineArea(paperBaseline()).total());
}

TEST(Area, ArrayAdvantageIsTenX)
{
    // 0.793 vs 7.927 mm^2 thanks to 3D stacking.
    const double ratio = baselineArea(paperBaseline()).array /
                         incaArea(paperInca()).array;
    EXPECT_NEAR(ratio, 10.0, 0.5);
}

TEST(Power, LeakageDensityScalesWithBits)
{
    const LeakageDensity d;
    EXPECT_NEAR(d.adcDensity(8), d.adc8bit, 1e-12);
    EXPECT_NEAR(d.adcDensity(4), d.adc8bit / 16.0, 1e-9);
    EXPECT_NEAR(d.adcDensity(9), d.adc8bit * 2.0, 1e-9);
}

TEST(Power, BaselineLeaksMoreThanInca)
{
    const Watts inca = incaIdlePower(paperInca());
    const Watts base = baselineIdlePower(paperBaseline());
    EXPECT_GT(base, 5.0 * inca);
    EXPECT_GT(inca, 0.0);
    EXPECT_LT(base, 50.0); // sanity: a chip, not a toaster
}

TEST(Power, GatingReducesIdle)
{
    const LeakageDensity d;
    const AreaBreakdown a = incaArea(paperInca());
    const Watts armed = idlePowerFromArea(a, d, 4, 1.0);
    const Watts gated = idlePowerFromArea(a, d, 4, 0.25);
    EXPECT_LT(gated, armed);
    EXPECT_GT(gated, 0.0);
}

TEST(PowerDeath, BadActiveFractionPanics)
{
    const LeakageDensity d;
    const AreaBreakdown a = incaArea(paperInca());
    EXPECT_DEATH(idlePowerFromArea(a, d, 4, 1.5), "active fraction");
}

} // namespace
} // namespace arch
} // namespace inca
