/**
 * @file
 * The reliability engine: wear -> BER curves, deterministic fault
 * sampling, write-verify retry and spare-line remapping (including
 * ~200 seeded property cases), mitigation cost accounting, campaign
 * determinism across thread counts and cache states, and the DSE
 * resilience objective / min_accuracy_at_ber constraint wiring.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/crossbar.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "dse/constraints.hh"
#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/objectives.hh"
#include "inca/engine.hh"
#include "json_lint.hh"
#include "nn/model_zoo.hh"
#include "reliability/campaign.hh"

namespace inca {
namespace reliability {
namespace {

// ---------------------------------------------------------------------
// Wear -> BER model
// ---------------------------------------------------------------------

TEST(WearModel, RatesGrowMonotonicallyWithWrites)
{
    FaultSpec spec;
    double lastHard = -1.0, lastSoft = -1.0, lastDrift = -1.0;
    for (const double writes :
         {0.0, 1e6, 1e8, 5e8, 1e9, 2e9, 1e10}) {
        const FaultModel model(spec, writes);
        EXPECT_GE(model.stuckRate(), lastHard);
        EXPECT_GE(model.softRate(), lastSoft);
        EXPECT_GE(model.driftSigma(), lastDrift);
        lastHard = model.stuckRate();
        lastSoft = model.softRate();
        lastDrift = model.driftSigma();
    }
}

TEST(WearModel, FreshDeviceSitsAtBaseRateAndRatesClampAtHalf)
{
    FaultSpec spec;
    const FaultModel fresh(spec, 0.0);
    EXPECT_DOUBLE_EQ(fresh.stuckRate(), spec.hardBer0);
    EXPECT_DOUBLE_EQ(fresh.softRate(), spec.softBer0);
    EXPECT_DOUBLE_EQ(fresh.driftSigma(), 0.0);

    // Far beyond the rating the curve explodes but the probability
    // stays a probability.
    const FaultModel dead(spec, 1e15);
    EXPECT_DOUBLE_EQ(dead.stuckRate(), 0.5);
    EXPECT_DOUBLE_EQ(dead.softRate(), 0.5);
    EXPECT_DOUBLE_EQ(dead.driftSigma(), spec.driftSigmaWear);
}

TEST(WearModel, RetryMathIsMonotone)
{
    // Residual soft error shrinks geometrically with the budget;
    // expected pulses grow with it. 0 retries = the raw rate.
    const double p = 0.05;
    EXPECT_DOUBLE_EQ(residualSoftBer(p, 0), p);
    double lastResidual = 2.0, lastPulses = 0.0;
    for (const int retries : {0, 1, 2, 4, 8}) {
        const double residual = residualSoftBer(p, retries);
        const double pulses = expectedWritePulses(p, retries);
        EXPECT_LT(residual, lastResidual);
        EXPECT_GT(pulses, lastPulses);
        lastResidual = residual;
        lastPulses = pulses;
    }
}

TEST(WearModel, FaultNoiseSigmaBridgesBerToNoise)
{
    EXPECT_DOUBLE_EQ(faultNoiseSigma(0.0, 8), 0.0);
    EXPECT_DOUBLE_EQ(faultNoiseSigma(1e-3, 0), 0.0);
    // More residual errors, more equivalent noise.
    EXPECT_GT(faultNoiseSigma(1e-2, 8), faultNoiseSigma(1e-4, 8));
    // A full-rate residual on 8-bit values is a huge disturbance.
    EXPECT_GT(faultNoiseSigma(0.5, 8), 0.1);
}

// ---------------------------------------------------------------------
// Deterministic fault sampling
// ---------------------------------------------------------------------

TEST(FaultSampling, SameStreamSameMapDifferentStreamDifferentMap)
{
    FaultSpec spec;
    spec.hardBer0 = 0.05; // high enough that maps are non-trivial
    const FaultModel model(spec, 0.0);
    const FaultMap a = model.sample(32, 32, 7);
    const FaultMap b = model.sample(32, 32, 7);
    EXPECT_EQ(a.stuck, b.stuck);
    EXPECT_GT(a.stuckCount, 0);
    const FaultMap c = model.sample(32, 32, 8);
    EXPECT_NE(a.stuck, c.stuck);
}

TEST(FaultSampling, AppliesToBothArrayFlavors)
{
    FaultSpec spec;
    spec.hardBer0 = 0.2;
    const FaultModel model(spec, 0.0);
    const FaultMap map = model.sample(16, 16, 1);
    ASSERT_GT(map.stuckCount, 0);

    core::BitPlane plane(16);
    applyFaults(map, plane);
    EXPECT_EQ(plane.faultCount(), map.stuckCount);

    baseline::WsCrossbar xbar(16, 16);
    applyFaults(map, xbar);
    EXPECT_EQ(xbar.faultCount(), map.stuckCount);
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            if (map.at(r, c) >= 0) {
                EXPECT_EQ(plane.cell(r, c), map.at(r, c) != 0);
                EXPECT_EQ(xbar.cell(r, c), map.at(r, c) != 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// WS crossbar fault semantics (mirrors the BitPlane suite)
// ---------------------------------------------------------------------

TEST(WsCrossbarFaults, StuckCellsIgnoreProgramming)
{
    baseline::WsCrossbar x(8, 8);
    x.injectStuckAt(2, 3, true);
    EXPECT_TRUE(x.cell(2, 3));
    x.program(2, 3, false);
    EXPECT_TRUE(x.cell(2, 3)); // still stuck high
    x.injectStuckAt(4, 4, false);
    x.program(4, 4, true);
    EXPECT_FALSE(x.cell(4, 4)); // stuck low
    EXPECT_EQ(x.faultCount(), 2);
    x.clearFaults();
    EXPECT_EQ(x.faultCount(), 0);
    EXPECT_TRUE(x.cell(4, 4)); // the program survived underneath
}

TEST(WsCrossbarFaults, MatvecSeesFaults)
{
    baseline::WsCrossbar x(4, 4);
    // A stuck-1 cell contributes current whenever its row is driven.
    x.injectStuckAt(0, 1, true);
    std::vector<std::uint8_t> rows = {1, 0, 0, 0};
    const auto out = x.matvecBits(rows, 8);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
    // A stuck-0 cell stops contributing even when programmed high.
    x.program(0, 2, true);
    x.injectStuckAt(0, 2, false);
    EXPECT_EQ(x.matvecBits(rows, 8)[2], 0);
}

TEST(WsCrossbarFaultsDeath, OutOfRangeFaultIsFatal)
{
    baseline::WsCrossbar x(4, 4);
    EXPECT_EXIT(x.injectStuckAt(4, 0, true),
                ::testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(x.injectStuckAt(0, 9, false),
                ::testing::ExitedWithCode(1), "valid rows");
}

// ---------------------------------------------------------------------
// Property tests: remapping and retry (seeded, ~200 cases)
// ---------------------------------------------------------------------

TEST(RemapProperty, ReadsSurviveAnyFaultPatternWithinSpareCapacity)
{
    // 120 seeded cases: any set of stuck cells whose lines fit the
    // spare budget must leave every written bit readable.
    for (std::uint64_t seed = 0; seed < 120; ++seed) {
        SCOPED_TRACE(seed);
        Rng rng(kDefaultSeed ^ (seed * 0x9e3779b97f4a7c15ULL));
        const int size = 4 + int(rng.below(13)); // 4..16
        MitigationSpec spec;
        spec.writeVerifyRetries = 1 + int(rng.below(3));
        spec.spareRows = int(rng.below(4));
        spec.spareCols = int(rng.below(4));

        RemappedPlane array(size, spec);
        // Inject faults on distinct rows and distinct columns, at
        // most one per spare line, so the greedy row-first policy is
        // guaranteed to cover them all.
        const int faults =
            int(rng.below(std::uint64_t(
                std::min(spec.spareRows + spec.spareCols, size) + 1)));
        for (int f = 0; f < faults; ++f)
            array.plane().injectStuckAt(f, f, rng.below(2) != 0);

        std::vector<std::uint8_t> want(std::size_t(size) *
                                       std::size_t(size));
        for (int r = 0; r < size; ++r) {
            for (int c = 0; c < size; ++c) {
                const bool bit = rng.below(2) != 0;
                want[std::size_t(r) * std::size_t(size) +
                     std::size_t(c)] = bit ? 1 : 0;
                array.write(r, c, bit);
            }
        }
        EXPECT_EQ(array.residualErrors(), 0);
        EXPECT_LE(array.table().usedSpareRows(), spec.spareRows);
        EXPECT_LE(array.table().usedSpareCols(), spec.spareCols);
        EXPECT_EQ(array.table().residualFaults(), 0);
        for (int r = 0; r < size; ++r)
            for (int c = 0; c < size; ++c)
                ASSERT_EQ(array.read(r, c),
                          want[std::size_t(r) * std::size_t(size) +
                               std::size_t(c)] != 0);
    }
}

TEST(RemapProperty, ExhaustedSparesDegradeGracefully)
{
    // More faulty lines than spares: writes must still complete, the
    // overflow surfaces as residual faults, never an abort.
    MitigationSpec spec;
    spec.writeVerifyRetries = 1;
    spec.spareRows = 1;
    spec.spareCols = 1;
    RemappedPlane array(8, spec);
    for (int d = 0; d < 6; ++d)
        array.plane().injectStuckAt(d, d, true);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            array.write(r, c, false);
    EXPECT_EQ(array.table().usedSpareRows(), 1);
    EXPECT_EQ(array.table().usedSpareCols(), 1);
    EXPECT_GT(array.table().residualFaults(), 0);
    EXPECT_GT(array.residualErrors(), 0);
    EXPECT_LE(array.residualErrors(), 4); // the uncovered stuck cells
}

TEST(RetryProperty, PulsesMonotoneInBudgetAndSoftErrorsRetryAway)
{
    // 80 seeded cases: a bigger retry budget never issues fewer
    // pulses for the same write stream, and with verify enabled the
    // soft-error stream leaves no residual on healthy cells.
    for (std::uint64_t seed = 0; seed < 80; ++seed) {
        SCOPED_TRACE(seed);
        const int size = 8;
        const double softBer = 0.2;
        std::uint64_t lastPulses = 0;
        for (const int retries : {1, 3, 12}) {
            MitigationSpec spec;
            spec.writeVerifyRetries = retries;
            RemappedPlane array(size, spec);
            Rng rng(seed + 1);
            for (int r = 0; r < size; ++r)
                for (int c = 0; c < size; ++c)
                    array.write(r, c, rng.below(2) != 0, &rng,
                                softBer);
            EXPECT_GE(array.pulses(),
                      std::uint64_t(size) * std::uint64_t(size));
            // A deeper budget retries at least as often in
            // expectation; with a shared seed the draw sequences
            // differ, so compare against the floor rather than the
            // exact shallow-budget count.
            EXPECT_GE(array.pulses() + std::uint64_t(retries) *
                          std::uint64_t(size) * std::uint64_t(size),
                      lastPulses);
            lastPulses = array.pulses();
            // A shallow budget can exhaust on an unlucky cell (the
            // residual soft BER is p^(R+1), not zero), but at 12
            // retries 0.2^13 ~ 8e-10 -- residual-free in practice.
            if (retries >= 12)
                EXPECT_EQ(array.residualErrors(), 0);
        }
    }
}

// ---------------------------------------------------------------------
// Mitigation cost accounting
// ---------------------------------------------------------------------

TEST(WriteVerifyCost, ChargesEnergyAndLatencyIntoTheRun)
{
    const arch::IncaConfig cfg = arch::paperInca();
    const core::IncaEngine engine(cfg);
    const nn::NetworkDesc net = nn::lenet5();
    const arch::RunCost ideal = engine.inference(net, 4);

    MitigationSpec spec;
    spec.writeVerifyRetries = 2;
    arch::RunCost run = ideal;
    const WriteVerifyCost cost = applyWriteVerify(
        run, spec, 1e-3, 1e-3, cfg.device,
        double(cfg.org.totalSubarrays()));
    EXPECT_GT(cost.extraEnergy, 0.0);
    EXPECT_GT(cost.extraLatency, 0.0);
    EXPECT_GT(run.energy(), ideal.energy());
    EXPECT_GT(run.latency, ideal.latency);
    // The surcharge is itemized in the stats, not smeared.
    double verifyEnergy = 0.0;
    for (const auto &layer : run.layers)
        verifyEnergy +=
            layer.stats.sumPrefix("energy.reliability");
    EXPECT_DOUBLE_EQ(verifyEnergy, cost.extraEnergy);
}

TEST(WriteVerifyCost, DisabledMitigationIsFree)
{
    const arch::IncaConfig cfg = arch::paperInca();
    const core::IncaEngine engine(cfg);
    const arch::RunCost ideal = engine.inference(nn::lenet5(), 4);
    arch::RunCost run = ideal;
    const WriteVerifyCost cost = applyWriteVerify(
        run, MitigationSpec{}, 1e-3, 1e-3, cfg.device,
        double(cfg.org.totalSubarrays()));
    EXPECT_DOUBLE_EQ(cost.extraEnergy, 0.0);
    EXPECT_DOUBLE_EQ(cost.extraLatency, 0.0);
    EXPECT_DOUBLE_EQ(run.energy(), ideal.energy());
    EXPECT_DOUBLE_EQ(run.latency, ideal.latency);
}

TEST(WriteVerifyCost, CostGrowsWithTheRetryBudget)
{
    const arch::IncaConfig cfg = arch::paperInca();
    const core::IncaEngine engine(cfg);
    const arch::RunCost ideal = engine.inference(nn::lenet5(), 4);
    double lastEnergy = ideal.energy();
    for (const int retries : {1, 2, 4, 8}) {
        MitigationSpec spec;
        spec.writeVerifyRetries = retries;
        arch::RunCost run = ideal;
        applyWriteVerify(run, spec, 5e-2, 1e-2, cfg.device,
                         double(cfg.org.totalSubarrays()));
        EXPECT_GT(run.energy(), lastEnergy);
        lastEnergy = run.energy();
    }
}

// ---------------------------------------------------------------------
// Cache canonicalization
// ---------------------------------------------------------------------

TEST(ReliabilityCacheKeys, EveryFaultSpecFieldChangesTheKey)
{
    const auto keyOf = [](const FaultSpec &spec) {
        CacheKey key;
        appendKey(key, spec);
        return key.bytes();
    };
    const FaultSpec base;
    const std::string ref = keyOf(base);

    FaultSpec s = base;
    s.hardBer0 *= 2;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.hardBerWear *= 2;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.softBer0 *= 2;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.softBerWear *= 2;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.wearShape = 3.0;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.driftSigmaWear = 0.5;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.endurance = 1e6;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.seed ^= 1;
    EXPECT_NE(keyOf(s), ref);
    EXPECT_EQ(keyOf(base), ref); // and it is stable
}

TEST(ReliabilityCacheKeys, MitigationSpecFieldsChangeTheKey)
{
    const auto keyOf = [](const MitigationSpec &spec) {
        CacheKey key;
        appendKey(key, spec);
        return key.bytes();
    };
    const MitigationSpec base;
    const std::string ref = keyOf(base);
    MitigationSpec s = base;
    s.writeVerifyRetries = 1;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.spareRows = 1;
    EXPECT_NE(keyOf(s), ref);
    s = base;
    s.spareCols = 1;
    EXPECT_NE(keyOf(s), ref);
}

// ---------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------

CampaignOptions
smallCampaign()
{
    CampaignOptions opt;
    opt.network = "lenet5";
    opt.trials = 4;
    opt.bers = {1e-4, 1e-2};
    opt.lifetimes = {1e3, 1e8};
    opt.mitigation.writeVerifyRetries = 2;
    opt.mitigation.spareRows = 2;
    opt.mitigation.spareCols = 1;
    return opt;
}

/** Restore cache/thread globals however a test exits. */
class CampaignTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAllCaches();
        setCacheEnabled(true);
    }

    void
    TearDown() override
    {
        ThreadPool::setGlobalThreads(1);
        setCacheEnabled(
            cacheEnabledFromEnv(std::getenv("INCA_CACHE")));
        clearAllCaches();
    }
};

TEST_F(CampaignTest, CsvIsByteIdenticalAtEveryThreadCount)
{
    std::string reference;
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ThreadPool::setGlobalThreads(threads);
        clearAllCaches();
        const CampaignResult result = runCampaign(smallCampaign());
        const std::string csv = campaignCsv(result);
        if (reference.empty())
            reference = csv;
        EXPECT_EQ(csv, reference);
    }
}

TEST_F(CampaignTest, CachedAndUncachedRunsAreByteIdentical)
{
    setCacheEnabled(false);
    const std::string reference = campaignCsv(runCampaign(
        smallCampaign()));
    setCacheEnabled(true);
    clearAllCaches();
    // Twice: the second run is served from the point cache and must
    // still transcribe identically.
    EXPECT_EQ(campaignCsv(runCampaign(smallCampaign())), reference);
    EXPECT_EQ(campaignCsv(runCampaign(smallCampaign())), reference);
}

TEST_F(CampaignTest, DifferentFaultSpecsNeverAliasInTheCache)
{
    CampaignOptions opt = smallCampaign();
    const std::string a = campaignCsv(runCampaign(opt));
    opt.fault.hardBerWear *= 10.0; // only the wear curve changes
    opt.bers.clear();              // lifetime points see the change
    CampaignOptions ref = smallCampaign();
    ref.bers.clear();
    const std::string b = campaignCsv(runCampaign(opt));
    const std::string c = campaignCsv(runCampaign(ref));
    EXPECT_NE(b, c);
}

TEST_F(CampaignTest, SpareExhaustionDegradesInsteadOfAborting)
{
    CampaignOptions opt = smallCampaign();
    opt.bers = {0.05}; // far beyond what 2+1 spares can cover
    opt.lifetimes.clear();
    opt.runWs = false;
    const CampaignResult result = runCampaign(opt);
    ASSERT_EQ(result.curves.size(), 1u);
    const CampaignPoint &p = result.curves[0].points[0];
    EXPECT_GT(p.exhaustedFraction, 0.0);
    EXPECT_GT(p.residualBer, 0.0);
    EXPECT_LT(p.accuracy, p.idealAccuracy);
    EXPECT_GT(p.accuracy, 0.0); // degraded, not destroyed
}

TEST_F(CampaignTest, MitigationCostShowsUpInEngineNumbers)
{
    const CampaignResult result = runCampaign(smallCampaign());
    bool sawCharge = false;
    for (const auto &curve : result.curves) {
        for (const auto &p : curve.points) {
            EXPECT_GE(p.energyJ, p.idealEnergyJ);
            EXPECT_GE(p.latencyS, p.idealLatencyS);
            if (p.energyJ > p.idealEnergyJ &&
                p.latencyS > p.idealLatencyS)
                sawCharge = true;
        }
    }
    EXPECT_TRUE(sawCharge);
}

TEST_F(CampaignTest, WearMakesLifetimeCurvesDecline)
{
    CampaignOptions opt = smallCampaign();
    opt.bers.clear();
    opt.lifetimes = {1e2, 1e9};
    opt.runWs = false;
    const CampaignResult result = runCampaign(opt);
    const auto &points = result.curves[0].points;
    ASSERT_EQ(points.size(), 2u);
    EXPECT_LT(points[0].wear, points[1].wear);
    EXPECT_LE(points[1].accuracy, points[0].accuracy);
    EXPECT_GE(points[1].hardBer, points[0].hardBer);
}

TEST_F(CampaignTest, JsonIsStrictlyLintable)
{
    const CampaignResult result = runCampaign(smallCampaign());
    const std::string json = campaignJson(result);
    EXPECT_TRUE(testutil::JsonLint(json).valid())
        << "error at " << testutil::JsonLint(json).errorPos();
    // The parameterization is in the report (reproducibility).
    EXPECT_NE(json.find("\"write_verify_retries\": 2"),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"reliability.campaign\""),
              std::string::npos);
}

TEST_F(CampaignTest, RejectsEmptyCampaignsWithActionableErrors)
{
    CampaignOptions none = smallCampaign();
    none.runInca = none.runWs = false;
    EXPECT_EXIT(runCampaign(none), ::testing::ExitedWithCode(1),
                "at least one engine");
    CampaignOptions zeroTrials = smallCampaign();
    zeroTrials.trials = 0;
    EXPECT_EXIT(runCampaign(zeroTrials),
                ::testing::ExitedWithCode(1), "at least one trial");
    CampaignOptions noPoints = smallCampaign();
    noPoints.bers.clear();
    noPoints.lifetimes.clear();
    EXPECT_EXIT(runCampaign(noPoints), ::testing::ExitedWithCode(1),
                "sweep point");
}

// ---------------------------------------------------------------------
// DSE integration: resilience objective + min_accuracy_at_ber
// ---------------------------------------------------------------------

TEST(ResilienceObjective, NameAndOrientationAreWired)
{
    EXPECT_EQ(dse::objectiveByName("resilience"),
              dse::Objective::Resilience);
    EXPECT_STREQ(dse::objectiveName(dse::Objective::Resilience),
                 "resilience");
    EXPECT_TRUE(dse::objectiveMaximized(dse::Objective::Resilience));
    dse::Evaluation e;
    e.resilience = 0.42;
    EXPECT_DOUBLE_EQ(e.value(dse::Objective::Resilience), 0.42);
}

TEST(ResilienceObjective, ProxyRespondsToBerAndMitigation)
{
    const MitigationSpec none;
    MitigationSpec hardened;
    hardened.writeVerifyRetries = 3;
    hardened.spareRows = 8;
    hardened.spareCols = 4;

    const auto proxy = [&](double ber, const MitigationSpec &m) {
        return dse::resilienceProxy(dse::EngineKind::Inca, 4, 9,
                                    0.05, ber, 8, 128, m);
    };
    // More faults, less accuracy.
    EXPECT_GE(proxy(1e-4, none), proxy(1e-2, none));
    EXPECT_GT(proxy(1e-3, hardened), proxy(1e-3, none));
    // Zero faults reduces to the plain accuracy proxy.
    EXPECT_DOUBLE_EQ(proxy(0.0, none),
                     dse::accuracyProxy(dse::EngineKind::Inca, 4, 9,
                                        0.05));
    // The WS engine's accumulating-noise slope makes it far more
    // fault-sensitive than IS at the same residual rate.
    const double ws = dse::resilienceProxy(
        dse::EngineKind::Ws, 8, 9, 0.05, 1e-2, 8, 128, none);
    const double is = dse::resilienceProxy(
        dse::EngineKind::Inca, 8, 9, 0.05, 1e-2, 8, 128, none);
    EXPECT_LT(ws, is);
}

TEST(ResilienceConstraint, MinAccuracyAtBerParsesAndRejects)
{
    dse::Constraints c;
    EXPECT_TRUE(c.empty());
    c.set("min_accuracy_at_ber=0.5");
    EXPECT_FALSE(c.empty());
    EXPECT_DOUBLE_EQ(c.minAccuracyAtBer, 0.5);
    EXPECT_NE(c.str().find("min_accuracy_at_ber=0.5"),
              std::string::npos);

    dse::Evaluation weak;
    weak.resilience = 0.3;
    const auto check =
        dse::checkConstraints(c, weak, dse::EngineKind::Inca, 4, 9);
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.reason.find("min_accuracy_at_ber"),
              std::string::npos);

    dse::Evaluation strong;
    strong.resilience = 0.8;
    EXPECT_TRUE(dse::checkConstraints(c, strong,
                                      dse::EngineKind::Inca, 4, 9)
                    .ok);
}

TEST(ResilienceExplorer, EndToEndObjectiveAndConstraint)
{
    dse::SearchSpace space;
    space.axis("adc_bits", {3, 4, 6});
    dse::ExploreOptions opt;
    opt.network = "lenet5";
    opt.objectives = {dse::Objective::Energy,
                      dse::Objective::Resilience};
    opt.faultBer = 1e-3;
    opt.mitigation.writeVerifyRetries = 2;
    opt.mitigation.spareRows = 4;
    dse::Explorer explorer(space, opt);
    const dse::ExploreResult result = explorer.run();
    ASSERT_FALSE(result.frontier.empty());
    for (const auto &e : result.frontier) {
        EXPECT_GT(e.resilience, 0.0);
        EXPECT_LE(e.resilience, 1.0);
    }
    // The signature pins the fault parameterization, so a resumed
    // journal can never mix resilience settings.
    EXPECT_NE(explorer.signature().find("ber="), std::string::npos);
    EXPECT_NE(explorer.signature().find("mitigation=retries:2"),
              std::string::npos);

    // A strict floor rejects candidates before scoring.
    dse::ExploreOptions strict = opt;
    strict.constraints.set("min_accuracy_at_ber=0.99");
    dse::Explorer strictExplorer(space, strict);
    const dse::ExploreResult rejected = strictExplorer.run();
    EXPECT_EQ(rejected.frontier.size(), 0u);
    EXPECT_EQ(rejected.filtered, rejected.evaluations.size());
}

TEST(ResilienceJournal, ResilienceSurvivesTheRoundTrip)
{
    dse::Evaluation e;
    e.candidate.index = 3;
    e.feasible = true;
    e.scored = true;
    e.resilience = 0.123456789012345678; // exercises %.17g
    e.accuracy = 0.5;
    e.objectives = {1.0, -0.5};
    const std::string line = dse::evalToJsonLine(e);
    EXPECT_NE(line.find("\"resilience\":"), std::string::npos);
    EXPECT_TRUE(testutil::JsonLint(line).valid());

    const std::string path =
        ::testing::TempDir() + "/reliability_journal.jsonl";
    dse::JournalHeader header;
    header.signature = "test";
    dse::JournalWriter writer;
    writer.open(path, header, false);
    writer.append(e);
    writer.close();
    dse::JournalContents contents;
    ASSERT_TRUE(dse::readJournal(path, contents));
    ASSERT_EQ(contents.evals.count(3), 1u);
    EXPECT_DOUBLE_EQ(contents.evals[3].resilience, e.resilience);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Environment hygiene
// ---------------------------------------------------------------------

TEST(EnvHygiene, ClassifiesKnownAndUnknownIncaVariables)
{
    const char *clean[] = {"PATH=/bin", "INCA_TRACE=t.json",
                           "INCA_NUM_THREADS=4", nullptr};
    EXPECT_TRUE(unrecognizedEnvVars(clean).empty());

    const char *typos[] = {"INCA_TRACES=t.json", "INCA_THREADS=4",
                           "HOME=/root", "INCA_CACHE=0",
                           "INCA_TRACES=again", nullptr};
    const auto unknown = unrecognizedEnvVars(typos);
    ASSERT_EQ(unknown.size(), 2u); // sorted, deduplicated
    EXPECT_EQ(unknown[0], "INCA_THREADS");
    EXPECT_EQ(unknown[1], "INCA_TRACES");

    EXPECT_TRUE(unrecognizedEnvVars(nullptr).empty());
}

TEST(EnvHygiene, KnownListCoversEveryDocumentedSwitch)
{
    const auto &known = knownEnvVars();
    for (const char *name : {"INCA_CACHE", "INCA_METRICS",
                             "INCA_NUM_THREADS", "INCA_TRACE"}) {
        EXPECT_NE(std::find(known.begin(), known.end(), name),
                  known.end())
            << name;
    }
}

} // namespace
} // namespace reliability
} // namespace inca
