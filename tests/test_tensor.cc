/**
 * @file
 * Dense tensor container tests.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace tensor {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.size(), 0);
    EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ZeroFilledConstruction)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.size(), 24);
    EXPECT_EQ(t.rank(), 3);
    for (std::int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAndDims)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(t.dim(2), 4);
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-3), 2);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor t({2, 3});
    t.at(0, 0) = 1.0f;
    t.at(0, 2) = 2.0f;
    t.at(1, 0) = 3.0f;
    EXPECT_EQ(t[0], 1.0f);
    EXPECT_EQ(t[2], 2.0f);
    EXPECT_EQ(t[3], 3.0f);
}

TEST(Tensor, FourDimIndexing)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 42.0f;
    EXPECT_EQ(t[t.size() - 1], 42.0f);
    EXPECT_EQ(t.at(1, 2, 3, 4), 42.0f);
}

TEST(Tensor, FullFactory)
{
    Tensor t = Tensor::full({3, 3}, 2.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 9 * 2.5);
}

TEST(Tensor, RandnUsesRngDeterministically)
{
    Rng a(5), b(5);
    Tensor x = Tensor::randn({4, 4}, a);
    Tensor y = Tensor::randn({4, 4}, b);
    EXPECT_TRUE(x.equals(y));
    EXPECT_GT(x.absMax(), 0.0f);
}

TEST(Tensor, UniformRange)
{
    Rng rng(6);
    Tensor t = Tensor::uniform({100}, rng, -1.0f, 1.0f);
    for (std::int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -1.0f);
        EXPECT_LT(t[i], 1.0f);
    }
}

TEST(Tensor, Reshape)
{
    Tensor t({2, 6});
    t.at(1, 5) = 7.0f;
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_EQ(r.at(2, 3), 7.0f);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a = Tensor::full({2, 2}, 1.0f);
    Tensor b = Tensor::full({2, 2}, 2.0f);
    a += b;
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a.sum(), 4.0);
    a *= 3.0f;
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Tensor, AbsMax)
{
    Tensor t({3});
    t[0] = -5.0f;
    t[1] = 2.0f;
    EXPECT_EQ(t.absMax(), 5.0f);
}

TEST(Tensor, AllClose)
{
    Tensor a = Tensor::full({2}, 1.0f);
    Tensor b = Tensor::full({2}, 1.0f + 5e-6f);
    EXPECT_TRUE(a.allClose(b, 1e-5f));
    EXPECT_FALSE(a.allClose(b, 1e-7f));
    Tensor c({3});
    EXPECT_FALSE(a.allClose(c));
}

TEST(Tensor, ShapeStr)
{
    Tensor t({2, 3, 8, 8});
    EXPECT_EQ(t.shapeStr(), "[2, 3, 8, 8]");
}

TEST(TensorDeath, OutOfRangeIndexPanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.at(2, 0), "out of range");
    EXPECT_DEATH(t.at(0, 0, 0), "arity");
}

TEST(TensorDeath, BadReshapePanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.reshaped({3}), "reshape");
}

TEST(TensorDeath, MismatchedAddPanics)
{
    Tensor a({2}), b({3});
    EXPECT_DEATH(a += b, "shape mismatch");
}

} // namespace
} // namespace tensor
} // namespace inca
