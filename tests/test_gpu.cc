/**
 * @file
 * GPU roofline model tests (paper Fig. 15 comparator).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace gpu {
namespace {

TEST(Gpu, TableIISpecs)
{
    const GpuSpec spec;
    EXPECT_DOUBLE_EQ(spec.peakFlops, 16.3e12);
    EXPECT_DOUBLE_EQ(spec.memBandwidth, 672e9);
    EXPECT_DOUBLE_EQ(spec.boardPower, 280.0);
    EXPECT_NEAR(spec.dieArea, 754e-6, 1e-9);
    EXPECT_EQ(spec.cudaCores, 4608);
}

TEST(Gpu, EnergyIsPowerTimesTime)
{
    GpuModel gpu;
    const auto run = gpu.inference(nn::resnet18(), 64);
    EXPECT_NEAR(run.energy, 280.0 * run.latency, 1e-9);
    EXPECT_GT(run.latency, 0.0);
}

TEST(Gpu, FlopAccounting)
{
    GpuModel gpu;
    const auto net = nn::resnet18();
    const auto run = gpu.inference(net, 64);
    EXPECT_DOUBLE_EQ(run.flops, 2.0 * double(net.totalMacs()) * 64.0);
}

TEST(Gpu, TrainingIsThreePasses)
{
    GpuModel gpu;
    const auto net = nn::vgg16();
    const auto inf = gpu.inference(net, 64);
    const auto trn = gpu.training(net, 64);
    EXPECT_DOUBLE_EQ(trn.flops, 3.0 * inf.flops);
    EXPECT_GT(trn.latency, 2.0 * inf.latency);
}

TEST(Gpu, VggIsComputeBound)
{
    // VGG16 at batch 64: ~2 TFLOP vs ~2.6 GB -> compute dominates.
    GpuModel gpu;
    const auto net = nn::vgg16();
    const auto run = gpu.inference(net, 64);
    const GpuSpec &s = gpu.spec();
    const double computeTime =
        run.flops / (s.peakFlops * s.computeEfficiency);
    const double memTime =
        run.bytes / (s.memBandwidth * s.bandwidthEfficiency);
    EXPECT_GT(computeTime, memTime);
}

TEST(Gpu, LightModelsAreNotComputeBound)
{
    // MobileNetV2's arithmetic intensity is far lower; the roofline
    // must show compute NOT dominating by the VGG margin.
    GpuModel gpu;
    auto intensity = [&](const nn::NetworkDesc &net) {
        const auto run = gpu.inference(net, 64);
        return run.flops / run.bytes;
    };
    EXPECT_GT(intensity(nn::vgg16()),
              5.0 * intensity(nn::mobilenetV2()));
}

TEST(Gpu, ThroughputScalesWithBatchUntilSaturation)
{
    GpuModel gpu;
    const auto net = nn::resnet50();
    const auto b8 = gpu.inference(net, 8);
    const auto b64 = gpu.inference(net, 64);
    EXPECT_GT(b64.throughput(64), b8.throughput(8) * 0.9);
}

TEST(Gpu, LatencyIncludesPerLayerOverhead)
{
    GpuSpec spec;
    spec.perLayerOverhead = 1.0; // absurdly large to dominate
    GpuModel gpu(spec);
    const auto run = gpu.inference(nn::lenet5(), 1);
    EXPECT_GT(run.latency, 4.0); // 5 conv-like layers x 1 s
}

TEST(GpuDeath, BadBatchPanics)
{
    GpuModel gpu;
    EXPECT_DEATH(gpu.inference(nn::lenet5(), 0), "batch");
}

} // namespace
} // namespace gpu
} // namespace inca
