/**
 * @file
 * 2T1R vertical-plane tests: cell write/read, window gating (the
 * paper's kernel-sliding mechanism), and ADC quantization.
 */

#include <gtest/gtest.h>

#include "inca/plane.hh"

namespace inca {
namespace core {
namespace {

TEST(BitPlane, StartsCleared)
{
    BitPlane p(16);
    EXPECT_EQ(p.popcount(), 0);
    EXPECT_FALSE(p.cell(0, 0));
    EXPECT_FALSE(p.cell(15, 15));
}

TEST(BitPlane, WriteReadRoundTrip)
{
    BitPlane p(8);
    p.writeCell(3, 4, true);
    EXPECT_TRUE(p.cell(3, 4));
    EXPECT_FALSE(p.cell(4, 3));
    p.writeCell(3, 4, false);
    EXPECT_FALSE(p.cell(3, 4));
}

TEST(BitPlane, PopcountTracksWrites)
{
    BitPlane p(4);
    for (int r = 0; r < 4; ++r)
        p.writeCell(r, r, true);
    EXPECT_EQ(p.popcount(), 4);
}

TEST(BitPlane, WindowReadCountsAndedBits)
{
    BitPlane p(6);
    // Stored pattern in the 2x2 window at (1,1): cells (1,1), (2,2).
    p.writeCell(1, 1, true);
    p.writeCell(2, 2, true);
    p.writeCell(0, 0, true); // outside the window: gated off
    // Full weight pattern: all lines of the window driven.
    EXPECT_EQ(p.readWindow(1, 1, 2, 2, {1, 1, 1, 1}), 2);
    // Weight masks individual positions.
    EXPECT_EQ(p.readWindow(1, 1, 2, 2, {1, 0, 0, 0}), 1);
    EXPECT_EQ(p.readWindow(1, 1, 2, 2, {0, 1, 1, 0}), 0);
}

TEST(BitPlane, TransistorsGateCellsOutsideWindow)
{
    // This is the 2T1R mechanism (Fig. 8d): everything outside the
    // active window contributes no current, no matter its state.
    BitPlane p(8);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            p.writeCell(r, c, true);
    EXPECT_EQ(p.readWindow(2, 2, 3, 3,
                           std::vector<std::uint8_t>(9, 1)),
              9);
    EXPECT_EQ(p.readWindow(0, 0, 2, 2, {1, 1, 1, 1}), 4);
}

TEST(BitPlane, SlidingWindowMoves)
{
    BitPlane p(5);
    p.writeCell(0, 0, true);
    const std::vector<std::uint8_t> w{1, 1, 1, 1};
    EXPECT_EQ(p.readWindow(0, 0, 2, 2, w), 1);
    EXPECT_EQ(p.readWindow(0, 1, 2, 2, w), 0);
    EXPECT_EQ(p.readWindow(1, 0, 2, 2, w), 0);
}

TEST(BitPlane, HaloPositionsPartiallyOutsideContributePartialSum)
{
    BitPlane p(4);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            p.writeCell(r, c, true);
    const std::vector<std::uint8_t> w(9, 1);
    // Window starting at (-1,-1): only the 2x2 in-plane corner counts.
    EXPECT_EQ(p.readWindow(-1, -1, 3, 3, w), 4);
    // Window starting at (3,3): only cell (3,3).
    EXPECT_EQ(p.readWindow(3, 3, 3, 3, w), 1);
    // Fully outside: zero.
    EXPECT_EQ(p.readWindow(4, 4, 3, 3, w), 0);
}

TEST(AdcQuantize, FourBitsCoverThreeByThreeWindows)
{
    // The paper's claim: up to 9 binary products per 3x3 read, so
    // 4 bits suffice.
    for (int count = 0; count <= 9; ++count)
        EXPECT_EQ(adcQuantize(count, 4), count);
}

TEST(AdcQuantize, SaturatesAtFullScale)
{
    EXPECT_EQ(adcQuantize(15, 4), 15);
    EXPECT_EQ(adcQuantize(16, 4), 15);
    EXPECT_EQ(adcQuantize(25, 4), 15); // a 5x5 window would clip
    EXPECT_EQ(adcQuantize(25, 8), 25);
    EXPECT_EQ(adcQuantize(300, 8), 255);
}

TEST(AdcQuantize, OneBit)
{
    EXPECT_EQ(adcQuantize(0, 1), 0);
    EXPECT_EQ(adcQuantize(1, 1), 1);
    EXPECT_EQ(adcQuantize(7, 1), 1);
}

TEST(BitPlaneDeath, OutOfRangeWritePanics)
{
    BitPlane p(4);
    EXPECT_DEATH(p.writeCell(4, 0, true), "outside");
    EXPECT_DEATH(p.writeCell(0, -1, true), "outside");
    EXPECT_DEATH(p.cell(5, 5), "outside");
}

TEST(BitPlaneDeath, WrongPatternSizePanics)
{
    BitPlane p(4);
    EXPECT_DEATH(p.readWindow(0, 0, 2, 2, {1, 1, 1}), "pattern");
}

} // namespace
} // namespace core
} // namespace inca
