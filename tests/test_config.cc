/**
 * @file
 * INI-style Config parser tests and chip-config override tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "arch/config.hh"
#include "common/config.hh"

namespace inca {
namespace {

TEST(Config, ParsesFlatKeys)
{
    const auto cfg = Config::fromString("batch = 32\nname = vgg16\n");
    EXPECT_EQ(cfg.getInt("batch", 0), 32);
    EXPECT_EQ(cfg.getString("name"), "vgg16");
    EXPECT_EQ(cfg.size(), 2u);
}

TEST(Config, SectionsFlattenToDottedKeys)
{
    const auto cfg = Config::fromString(
        "[inca]\nsubarray_size = 32\n[baseline]\nsubarray_size = 64\n");
    EXPECT_EQ(cfg.getInt("inca.subarray_size", 0), 32);
    EXPECT_EQ(cfg.getInt("baseline.subarray_size", 0), 64);
    EXPECT_FALSE(cfg.has("subarray_size"));
}

TEST(Config, CommentsAndBlankLines)
{
    const auto cfg = Config::fromString(
        "# full-line comment\n\nkey = 7 ; trailing comment\n"
        "other = text # more\n");
    EXPECT_EQ(cfg.getInt("key", 0), 7);
    EXPECT_EQ(cfg.getString("other"), "text");
}

TEST(Config, WhitespaceTrimmed)
{
    const auto cfg = Config::fromString("   spaced   =   value   \n");
    EXPECT_EQ(cfg.getString("spaced"), "value");
}

TEST(Config, Fallbacks)
{
    const Config cfg;
    EXPECT_EQ(cfg.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(cfg.getString("missing", "abc"), "abc");
    EXPECT_TRUE(cfg.getBool("missing", true));
}

TEST(Config, TypedParsing)
{
    const auto cfg = Config::fromString(
        "f = 3.25\nneg = -17\nhex = 0x10\nyes = yes\nno = OFF\n");
    EXPECT_DOUBLE_EQ(cfg.getDouble("f", 0.0), 3.25);
    EXPECT_EQ(cfg.getInt("neg", 0), -17);
    EXPECT_EQ(cfg.getInt("hex", 0), 16);
    EXPECT_TRUE(cfg.getBool("yes", false));
    EXPECT_FALSE(cfg.getBool("no", true));
}

TEST(Config, SetOverwrites)
{
    Config cfg;
    cfg.set("a", "1");
    cfg.set("a", "2");
    EXPECT_EQ(cfg.getInt("a", 0), 2);
}

TEST(Config, KeysSorted)
{
    const auto cfg = Config::fromString("z = 1\na = 2\n");
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "z");
}

TEST(Config, FromFileRoundTrip)
{
    const std::string path = "/tmp/inca_config_test.ini";
    {
        std::ofstream out(path);
        out << "[inca]\nadc_bits = 5\n";
    }
    const auto cfg = Config::fromFile(path);
    EXPECT_EQ(cfg.getInt("inca.adc_bits", 0), 5);
    std::remove(path.c_str());
}

TEST(ConfigDeath, MalformedLineFatal)
{
    EXPECT_DEATH(Config::fromString("no equals sign\n"),
                 "expected 'key = value'");
    EXPECT_DEATH(Config::fromString("[unterminated\n"),
                 "unterminated");
    EXPECT_DEATH(Config::fromString("= novalue\n"), "empty key");
}

TEST(ConfigDeath, BadNumberFatal)
{
    const auto cfg = Config::fromString("x = not-a-number\n");
    EXPECT_DEATH(cfg.getInt("x", 0), "not an integer");
    EXPECT_DEATH(cfg.getDouble("x", 0.0), "not a number");
    EXPECT_DEATH(cfg.getBool("x", false), "not a boolean");
}

TEST(ArchConfig, IncaOverrides)
{
    const auto cfg = Config::fromString(
        "[inca]\nsubarray_size = 32\nadc_bits = 5\nbatch_size = 16\n"
        "num_tiles = 84\nbuffer_kib = 128\n");
    const auto inca = arch::incaFromConfig(cfg);
    EXPECT_EQ(inca.subarraySize, 32);
    EXPECT_EQ(inca.adcBits, 5);
    EXPECT_EQ(inca.batchSize, 16);
    EXPECT_EQ(inca.org.numTiles, 84);
    EXPECT_DOUBLE_EQ(inca.buffer.capacity, 128.0 * 1024.0);
    // Untouched fields keep Table II defaults.
    EXPECT_EQ(inca.stackedPlanes, 64);
    EXPECT_EQ(inca.weightBits, 8);
}

TEST(ArchConfig, BaselineOverrides)
{
    const auto cfg = Config::fromString(
        "[baseline]\nsubarray_size = 256\nadc_bits = 6\n");
    const auto base = arch::baselineFromConfig(cfg);
    EXPECT_EQ(base.subarraySize, 256);
    EXPECT_EQ(base.adcBits, 6);
    EXPECT_EQ(base.org.numTiles, 168);
}

TEST(ArchConfig, EmptyConfigIsTableII)
{
    const Config cfg;
    const auto inca = arch::incaFromConfig(cfg);
    EXPECT_EQ(inca.subarraySize, arch::paperInca().subarraySize);
    EXPECT_EQ(inca.org.totalSubarrays(), 16128);
}

} // namespace
} // namespace inca
