/**
 * @file
 * End-to-end functional verification of the INCA array model: the
 * bit-level 3D 2T1R simulation (partitioning, halos, bit-serial
 * weights, per-plane ADC, adder tree) must reproduce the mathematical
 * direct convolution exactly for the paper's 3x3 regime, including
 * the training-path primitives.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "inca/functional.hh"
#include "tensor/ops.hh"

namespace inca {
namespace core {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

Tensor
randomUnsigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(rng.below(1u << bits));
    return t;
}

Tensor
randomSigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    const int span = 1 << bits;
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(std::int64_t(rng.below(std::uint64_t(span))) -
                     (span / 2));
    return t;
}

struct FunctionalCase
{
    int b, c, h, f, k, stride, pad;
};

class IncaConvEquivalence
    : public ::testing::TestWithParam<FunctionalCase>
{
};

TEST_P(IncaConvEquivalence, MatchesTensorReference)
{
    const auto p = GetParam();
    Rng rng(77);
    Tensor x = randomUnsigned({p.b, p.c, p.h, p.h}, 8, rng);
    Tensor w = randomSigned({p.f, p.c, p.k, p.k}, 8, rng);

    FunctionalOptions opts;
    opts.planeSize = 8; // force multi-partition mappings in tests
    opts.planes = 8;
    IncaFunctional array(opts);

    const ConvSpec spec{p.stride, p.pad};
    Tensor hw = array.conv2d(x, w, spec);
    Tensor ref = tensor::conv2d(x, w, spec);
    EXPECT_TRUE(hw.equals(ref))
        << "array direct convolution diverged from math";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncaConvEquivalence,
    ::testing::Values(
        FunctionalCase{1, 1, 6, 1, 3, 1, 1},   // single partition
        FunctionalCase{2, 3, 10, 4, 3, 1, 1},  // halo across tiles
        FunctionalCase{1, 2, 16, 2, 3, 1, 1},  // 2x2 partitions
        FunctionalCase{3, 2, 9, 2, 3, 2, 1},   // strided
        FunctionalCase{1, 4, 8, 3, 1, 1, 0},   // pointwise
        FunctionalCase{2, 1, 12, 2, 3, 1, 0},  // no padding
        FunctionalCase{1, 3, 7, 2, 2, 1, 0},   // even kernel
        FunctionalCase{4, 2, 8, 2, 3, 1, 1})); // batch on planes

TEST(IncaFunctional, DepthwiseMatchesReference)
{
    Rng rng(78);
    Tensor x = randomUnsigned({2, 4, 10, 10}, 8, rng);
    Tensor w = randomSigned({4, 3, 3}, 8, rng);
    FunctionalOptions opts;
    opts.planeSize = 8;
    IncaFunctional array(opts);
    Tensor hw = array.depthwiseConv2d(x, w, {1, 1});
    Tensor ref = tensor::depthwiseConv2d(x, w, {1, 1});
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, HaloWindowsSpanPartitions)
{
    // Input 12x12 on 8x8 planes: windows crossing the tile boundary
    // at row/col 8 must assemble from up to four partial sums.
    Rng rng(79);
    Tensor x = randomUnsigned({1, 1, 12, 12}, 8, rng);
    Tensor w = randomSigned({1, 1, 3, 3}, 8, rng);
    FunctionalOptions opts;
    opts.planeSize = 8;
    IncaFunctional array(opts);
    Tensor hw = array.conv2d(x, w, {1, 1});
    Tensor ref = tensor::conv2d(x, w, {1, 1});
    // Check the boundary band explicitly.
    for (std::int64_t r = 6; r < 10; ++r)
        for (std::int64_t c = 6; c < 10; ++c)
            EXPECT_EQ(hw.at(0, 0, r, c), ref.at(0, 0, r, c))
                << "halo mismatch at " << r << "," << c;
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, MatchesGemmPathToo)
{
    // Direct convolution on the array == im2col GEMM in software:
    // the software analogue of the paper's claim that IS direct
    // convolution computes the same function WS computes by
    // unrolling.
    Rng rng(80);
    Tensor x = randomUnsigned({1, 2, 8, 8}, 8, rng);
    Tensor w = randomSigned({3, 2, 3, 3}, 8, rng);
    IncaFunctional array({8, 8, 8, 8, 4});
    Tensor hw = array.conv2d(x, w, {1, 1});
    Tensor gemm = tensor::conv2dGemm(x, w, {1, 1});
    EXPECT_TRUE(hw.equals(gemm));
}

TEST(IncaFunctional, ErrorBackpropMatchesInputGrad)
{
    // The backward pass: errors convolved with transposed kernels on
    // the array == conv2dInputGrad. Errors are signed (stored in
    // two's complement over the overwritten activation cells).
    Rng rng(81);
    const int pad = 1;
    Tensor dy = randomSigned({2, 3, 8, 8}, 6, rng);
    Tensor w = randomSigned({3, 2, 3, 3}, 8, rng);
    IncaFunctional array({8, 8, 8, 8, 4});
    Tensor hw = array.errorBackprop(dy, w, pad);
    Tensor ref = tensor::conv2dInputGrad(dy, w, {2, 2, 8, 8},
                                         {1, pad});
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, ErrorBackpropNoPadding)
{
    Rng rng(82);
    Tensor dy = randomSigned({1, 2, 6, 6}, 6, rng);
    Tensor w = randomSigned({2, 1, 3, 3}, 8, rng);
    IncaFunctional array({8, 8, 8, 8, 4});
    Tensor hw = array.errorBackprop(dy, w, 0);
    Tensor ref = tensor::conv2dInputGrad(dy, w, {1, 1, 8, 8}, {1, 0});
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, WeightGradientMatchesReference)
{
    // Eq. 4's delta * x computed with the errors sliding as the
    // kernel over the stored activations. Larger error windows exceed
    // the 4-bit code range, so the gradient path uses the macro with
    // a wider conversion (the test uses 8 bits, enough for the 4x4
    // error map of this case).
    Rng rng(83);
    Tensor x = randomUnsigned({2, 2, 6, 6}, 4, rng);
    Tensor dy = randomSigned({2, 3, 4, 4}, 4, rng);
    FunctionalOptions opts;
    opts.planeSize = 8;
    opts.planes = 4;
    opts.activationBits = 4;
    opts.weightBits = 8;
    opts.adcBits = 8;
    IncaFunctional array(opts);
    Tensor hw = array.weightGradient(x, dy, 0);
    Tensor ref =
        tensor::conv2dWeightGrad(dy, x, {3, 2, 3, 3}, {1, 0});
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, WeightGradientWithPadding)
{
    Rng rng(84);
    Tensor x = randomUnsigned({1, 1, 5, 5}, 4, rng);
    Tensor dy = randomSigned({1, 1, 5, 5}, 3, rng);
    FunctionalOptions opts;
    opts.planeSize = 8;
    opts.planes = 2;
    opts.activationBits = 4;
    opts.adcBits = 10;
    IncaFunctional array(opts);
    Tensor hw = array.weightGradient(x, dy, 1);
    Tensor ref =
        tensor::conv2dWeightGrad(dy, x, {1, 1, 3, 3}, {1, 1});
    EXPECT_TRUE(hw.equals(ref));
}

TEST(IncaFunctional, FourBitAdcClipsFiveByFiveKernels)
{
    // With 5x5 kernels (MNasNet) a 4-bit ADC can saturate; an 8-bit
    // conversion restores exactness. This documents the design
    // boundary of the paper's "4-bit is sufficient for 3x3".
    Rng rng(85);
    Tensor x = Tensor::full({1, 1, 8, 8}, 255.0f);
    Tensor w = Tensor::full({1, 1, 5, 5}, 63.0f);
    IncaFunctional clip({8, 2, 8, 8, 4});
    IncaFunctional wide({8, 2, 8, 8, 8});
    Tensor ref = tensor::conv2d(x, w, {1, 0});
    Tensor clipped = clip.conv2d(x, w, {1, 0});
    Tensor exact = wide.conv2d(x, w, {1, 0});
    EXPECT_TRUE(exact.equals(ref));
    EXPECT_LT(clipped.at(0, 0, 2, 2), ref.at(0, 0, 2, 2));
}

TEST(IncaFunctional, QuantizeHelpers)
{
    Tensor t({4}, {-1.0f, -0.5f, 0.5f, 1.0f});
    Tensor u = quantizeUnsigned(t, 8, 255.0f);
    EXPECT_FLOAT_EQ(u[0], 0.0f);
    EXPECT_FLOAT_EQ(u[3], 255.0f);
    Tensor s = quantizeSigned(t, 8, 127.0f);
    EXPECT_FLOAT_EQ(s[0], -127.0f);
    EXPECT_FLOAT_EQ(s[3], 127.0f);
    // Signed clamps at -2^(b-1).
    Tensor big({1}, {-2.0f});
    EXPECT_FLOAT_EQ(quantizeSigned(big, 8, 127.0f)[0], -128.0f);
}

TEST(IncaFunctionalDeath, BatchBeyondPlanesPanics)
{
    Rng rng(86);
    Tensor x = randomUnsigned({9, 1, 4, 4}, 8, rng);
    Tensor w = randomSigned({1, 1, 3, 3}, 8, rng);
    IncaFunctional array({8, 8, 8, 8, 4});
    EXPECT_DEATH(array.conv2d(x, w, {1, 1}), "planes");
}

TEST(IncaFunctionalDeath, NonIntegerInputPanics)
{
    Tensor x = Tensor::full({1, 1, 4, 4}, 0.5f);
    Tensor w = Tensor::full({1, 1, 3, 3}, 1.0f);
    IncaFunctional array({8, 8, 8, 8, 4});
    EXPECT_DEATH(array.conv2d(x, w, {1, 1}), "integer");
}

} // namespace
} // namespace core
} // namespace inca
