/**
 * @file
 * WS baseline functional tests: crossbar programming, bit-serial
 * streaming, and the unrolled convolution's exact agreement with the
 * GEMM reference.
 */

#include <gtest/gtest.h>

#include "baseline/crossbar.hh"
#include "common/random.hh"
#include "tensor/ops.hh"

namespace inca {
namespace baseline {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

Tensor
randomUnsigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(rng.below(1u << bits));
    return t;
}

Tensor
randomSigned(std::vector<std::int64_t> shape, int bits, Rng &rng)
{
    Tensor t(std::move(shape));
    const int span = 1 << bits;
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(std::int64_t(rng.below(std::uint64_t(span))) -
                     (span / 2));
    return t;
}

TEST(WsCrossbar, ProgramAndReadBack)
{
    WsCrossbar xbar(8, 8);
    xbar.program(3, 5, true);
    EXPECT_TRUE(xbar.cell(3, 5));
    EXPECT_FALSE(xbar.cell(5, 3));
    xbar.program(3, 5, false);
    EXPECT_FALSE(xbar.cell(3, 5));
}

TEST(WsCrossbar, MatvecPopcount)
{
    WsCrossbar xbar(4, 3);
    // Column 0: rows 0 and 2; column 2: row 1.
    xbar.program(0, 0, true);
    xbar.program(2, 0, true);
    xbar.program(1, 2, true);
    const auto out = xbar.matvecBits({1, 1, 1, 1}, 8);
    EXPECT_EQ(out[0], 2);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[2], 1);
    // Masking rows masks contributions.
    const auto masked = xbar.matvecBits({0, 1, 0, 1}, 8);
    EXPECT_EQ(masked[0], 0);
    EXPECT_EQ(masked[2], 1);
}

TEST(WsCrossbar, AdcSaturation)
{
    WsCrossbar xbar(8, 1);
    for (int r = 0; r < 8; ++r)
        xbar.program(r, 0, true);
    EXPECT_EQ(xbar.matvecBits(std::vector<std::uint8_t>(8, 1), 8)[0],
              8);
    EXPECT_EQ(xbar.matvecBits(std::vector<std::uint8_t>(8, 1), 2)[0],
              3);
}

TEST(WsCrossbar, EightBitAdcCoversFullColumns)
{
    // A 128-row column accumulates at most 128 < 255: the baseline's
    // 8-bit ADC never clips -- the reason the paper's baseline needs
    // high-resolution converters at all.
    WsCrossbar xbar(128, 1);
    for (int r = 0; r < 128; ++r)
        xbar.program(r, 0, true);
    EXPECT_EQ(
        xbar.matvecBits(std::vector<std::uint8_t>(128, 1), 8)[0], 128);
    EXPECT_LT(
        xbar.matvecBits(std::vector<std::uint8_t>(128, 1), 4)[0], 128);
}

struct WsCase
{
    int b, c, h, f, k, stride, pad, arraySize;
};

class WsConvEquivalence : public ::testing::TestWithParam<WsCase>
{
};

TEST_P(WsConvEquivalence, MatchesGemmReference)
{
    const auto p = GetParam();
    Rng rng(91);
    Tensor x = randomUnsigned({p.b, p.c, p.h, p.h}, 8, rng);
    Tensor w = randomSigned({p.f, p.c, p.k, p.k}, 8, rng);

    WsFunctionalOptions opts;
    opts.arraySize = p.arraySize;
    WsFunctional ws(opts);
    const ConvSpec spec{p.stride, p.pad};
    Tensor hw = ws.conv2d(x, w, spec);
    Tensor ref = tensor::conv2dGemm(x, w, spec);
    EXPECT_TRUE(hw.equals(ref));
    // ... and transitively equals direct convolution.
    EXPECT_TRUE(hw.equals(tensor::conv2d(x, w, spec)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WsConvEquivalence,
    ::testing::Values(WsCase{1, 1, 5, 1, 3, 1, 1, 128},
                      WsCase{2, 3, 6, 4, 3, 1, 1, 32},  // row tiling
                      WsCase{1, 2, 7, 5, 3, 2, 1, 16},  // col tiling
                      WsCase{1, 4, 6, 2, 1, 1, 0, 16},  // pointwise
                      WsCase{2, 2, 8, 3, 5, 1, 2, 64},
                      WsCase{1, 1, 6, 8, 3, 1, 0, 8})); // heavy tiling

TEST(WsFunctional, FcMatchesMatmul)
{
    Rng rng(92);
    Tensor x = randomUnsigned({3, 20}, 8, rng);
    Tensor w = randomSigned({20, 7}, 8, rng);
    WsFunctionalOptions opts;
    opts.arraySize = 16; // forces 2 row tiles
    WsFunctional ws(opts);
    Tensor hw = ws.fc(x, w);
    Tensor ref = tensor::matmul(x, w);
    EXPECT_TRUE(hw.equals(ref));
}

TEST(WsFunctional, RowTilingAddsPartialSums)
{
    // 300 rows over 128-row arrays: three tiles joined digitally.
    Rng rng(93);
    Tensor x = randomUnsigned({1, 300}, 8, rng);
    Tensor w = randomSigned({300, 2}, 8, rng);
    WsFunctional ws({128, 8, 8, 8});
    EXPECT_TRUE(ws.fc(x, w).equals(tensor::matmul(x, w)));
}

TEST(WsFunctionalDeath, NonIntegerWeightPanics)
{
    Tensor x = Tensor::full({1, 1, 4, 4}, 1.0f);
    Tensor w = Tensor::full({1, 1, 3, 3}, 0.25f);
    WsFunctional ws;
    EXPECT_DEATH(ws.conv2d(x, w, {1, 1}), "integer");
}

TEST(WsFunctionalDeath, CrossbarBoundsChecked)
{
    WsCrossbar xbar(4, 4);
    EXPECT_DEATH(xbar.program(4, 0, true), "outside");
    EXPECT_DEATH(xbar.matvecBits({1, 1}, 8), "arity");
}

} // namespace
} // namespace baseline
} // namespace inca
