/**
 * @file
 * Chaos-layer tests: strict parsers for --failures/--retry, the
 * outcome partition (every request terminal exactly once), retry
 * budget exhaustion, availability bounds and replica monotonicity,
 * Little's law under failures, hedging/failover accounting,
 * byte-identity of failure-enabled runs across threads and cache
 * settings, chaos-off equivalence with the pre-chaos simulator, and
 * the availability/shed DSE bridge with min_availability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/cache.hh"
#include "common/thread_pool.hh"
#include "dse/explorer.hh"
#include "json_lint.hh"
#include "serving/export.hh"
#include "serving/failures.hh"
#include "serving/simulator.hh"

namespace inca {
namespace serving {
namespace {

// ---------------------------------------------------------------
// CLI parsers

TEST(ChaosCli, ParseFailureSpecAcceptsTheGrammar)
{
    const FailureSpec off = parseFailureSpec("--failures", "none");
    EXPECT_FALSE(off.enabled);

    const FailureSpec basic =
        parseFailureSpec("--failures", "200ms:50ms");
    EXPECT_TRUE(basic.enabled);
    EXPECT_DOUBLE_EQ(basic.mtbfS, 0.2);
    EXPECT_DOUBLE_EQ(basic.mttrS, 0.05);
    EXPECT_DOUBLE_EQ(basic.degradedFraction, 0.0);

    const FailureSpec full =
        parseFailureSpec("--failures", "2s:100ms:0.3:8");
    EXPECT_DOUBLE_EQ(full.mtbfS, 2.0);
    EXPECT_DOUBLE_EQ(full.mttrS, 0.1);
    EXPECT_DOUBLE_EQ(full.degradedFraction, 0.3);
    EXPECT_DOUBLE_EQ(full.slowdownFactor, 8.0);
}

TEST(ChaosCli, ParseRetrySpecAcceptsTheGrammar)
{
    const RetryPolicy off = parseRetrySpec("--retry", "none");
    EXPECT_EQ(off.budget, 0);

    const RetryPolicy basic = parseRetrySpec("--retry", "3:1ms");
    EXPECT_EQ(basic.budget, 3);
    EXPECT_DOUBLE_EQ(basic.backoffBaseS, 1e-3);
    EXPECT_DOUBLE_EQ(basic.jitter, 0.5);

    const RetryPolicy full =
        parseRetrySpec("--retry", "5:500us:0.25");
    EXPECT_EQ(full.budget, 5);
    EXPECT_DOUBLE_EQ(full.backoffBaseS, 500e-6);
    EXPECT_DOUBLE_EQ(full.jitter, 0.25);
}

TEST(ChaosCliDeathTest, ParseFailureSpecRejectsMalformedInput)
{
    EXPECT_DEATH(parseFailureSpec("--failures", ""), "empty value");
    EXPECT_DEATH(parseFailureSpec("--failures", "banana"),
                 "is not mtbf:mttr");
    EXPECT_DEATH(parseFailureSpec("--failures", "200ms"),
                 "is not mtbf:mttr");
    EXPECT_DEATH(parseFailureSpec("--failures", "1s:2s:0.1:4:x"),
                 "is not mtbf:mttr");
    EXPECT_DEATH(parseFailureSpec("--failures", "0s:50ms"),
                 "MTBF must be positive");
    EXPECT_DEATH(parseFailureSpec("--failures", "xs:50ms"),
                 "not a duration");
    EXPECT_DEATH(parseFailureSpec("--failures", "-1ms:50ms"),
                 "non-negative");
    EXPECT_DEATH(parseFailureSpec("--failures", "200ms:50"),
                 "needs a unit suffix");
    EXPECT_DEATH(parseFailureSpec("--failures", "200ms:50ms:1.5"),
                 "degraded fraction");
    EXPECT_DEATH(parseFailureSpec("--failures", "200ms:50ms:0.3:0.5"),
                 "slowdown factor");
}

TEST(ChaosCliDeathTest, ParseRetrySpecRejectsMalformedInput)
{
    EXPECT_DEATH(parseRetrySpec("--retry", ""), "empty value");
    EXPECT_DEATH(parseRetrySpec("--retry", "3"),
                 "is not budget:backoff");
    EXPECT_DEATH(parseRetrySpec("--retry", "1:2ms:0.5:zzz"),
                 "is not budget:backoff");
    EXPECT_DEATH(parseRetrySpec("--retry", "-1:1ms"),
                 "non-negative");
    EXPECT_DEATH(parseRetrySpec("--retry", "x:1ms"),
                 "not an integer");
    EXPECT_DEATH(parseRetrySpec("--retry", "3:0"),
                 "backoff base must be positive");
    EXPECT_DEATH(parseRetrySpec("--retry", "3:1ms:2"), "jitter");
}

TEST(ChaosCli, FailureSpecFromEnduranceDerivesTheMtbf)
{
    arch::EnduranceReport er;
    er.iterationsToWearOut = 1e6;
    const FailureSpec spec =
        failureSpecFromEndurance(er, 1e3, 0.05, 9);
    EXPECT_TRUE(spec.enabled);
    EXPECT_DOUBLE_EQ(spec.mtbfS, 1e3); // 1e6 iters / 1e3 per s
    EXPECT_DOUBLE_EQ(spec.mttrS, 0.05);
    EXPECT_DOUBLE_EQ(spec.aging, 0.9);
    EXPECT_EQ(spec.seed, 9u);
}

// ---------------------------------------------------------------
// Spec validation

ServingSpec
chaosSpec()
{
    ServingSpec spec;
    spec.streams = {StreamSpec{"lenet5", 1.0, 0}};
    spec.arrivals.kind = ArrivalKind::Poisson;
    spec.arrivals.ratePerS = 3000.0;
    spec.arrivals.seed = 17;
    spec.durationS = 0.2;
    spec.replicas = 2;
    spec.batch.maxBatch = 4;
    spec.batch.timeoutS = 1e-3;
    spec.sloS = 5e-3;
    spec.failures.enabled = true;
    spec.failures.mtbfS = 0.05;
    spec.failures.mttrS = 0.01;
    spec.failures.seed = 5;
    return spec;
}

TEST(ChaosSpecDeathTest, SimulateRejectsMalformedChaosFields)
{
    ServingSpec bad = chaosSpec();
    bad.failures.aging = 0.0;
    EXPECT_DEATH(simulate(bad), "aging factor");
    bad = chaosSpec();
    bad.retry.jitter = 2.0;
    EXPECT_DEATH(simulate(bad), "retry jitter");
    bad = chaosSpec();
    bad.deadlineS = -1.0;
    EXPECT_DEATH(simulate(bad), "deadline must be non-negative");
    bad = chaosSpec();
    bad.failures.slowdownFactor = 0.5;
    EXPECT_DEATH(simulate(bad), "slowdown factor");
}

// ---------------------------------------------------------------
// Chaos-off equivalence

TEST(ChaosOff, ExplicitNoneSpecMatchesTheDefaultByteForByte)
{
    ServingSpec plain = chaosSpec();
    plain.failures = FailureSpec{};
    const ServingReport ref = simulate(plain);

    ServingSpec off = plain;
    off.failures = parseFailureSpec("--failures", "none");
    off.retry = parseRetrySpec("--retry", "none");
    off.queueCap = 0;
    off.deadlineS = 0.0;
    EXPECT_FALSE(chaosEnabled(off));
    const ServingReport rep = simulate(off);

    EXPECT_EQ(reportText(rep), reportText(ref));
    EXPECT_EQ(reportJson(rep), reportJson(ref));
    EXPECT_EQ(requestsCsv(rep), requestsCsv(ref));
    EXPECT_EQ(rep.shed, 0u);
    EXPECT_EQ(rep.completed, rep.offered);
    EXPECT_DOUBLE_EQ(rep.availability, 1.0);
    for (const RequestRecord &r : rep.requests)
        EXPECT_EQ(r.outcome, RequestOutcome::Ok);
}

// ---------------------------------------------------------------
// Outcome accounting

TEST(ChaosOutcomes, EveryRequestIsTerminalExactlyOnce)
{
    ServingSpec spec = chaosSpec();
    spec.retry.budget = 2;
    spec.deadlineS = 10e-3;
    spec.queueCap = 8;
    const ServingReport rep = simulate(spec);
    ASSERT_EQ(rep.requests.size(), rep.offered);

    // The roll-up counters partition the offered requests...
    EXPECT_EQ(rep.completed + rep.shed + rep.timedOut + rep.failed,
              rep.offered);
    // ... and agree with a per-request tally.
    std::uint64_t byOutcome[4] = {0, 0, 0, 0};
    std::uint64_t retries = 0;
    for (const RequestRecord &r : rep.requests) {
        ++byOutcome[int(r.outcome)];
        retries += std::uint64_t(r.retries);
    }
    EXPECT_EQ(byOutcome[int(RequestOutcome::Ok)], rep.completed);
    EXPECT_EQ(byOutcome[int(RequestOutcome::Shed)], rep.shed);
    EXPECT_EQ(byOutcome[int(RequestOutcome::Timeout)], rep.timedOut);
    EXPECT_EQ(byOutcome[int(RequestOutcome::Failed)], rep.failed);
    EXPECT_EQ(retries, rep.retries);

    // Per-stream counters sum to the global ones.
    StreamStats total;
    for (const StreamStats &s : rep.streamStats) {
        total.offered += s.offered;
        total.completed += s.completed;
        total.shed += s.shed;
        total.timedOut += s.timedOut;
        total.failed += s.failed;
        total.retries += s.retries;
        total.failovers += s.failovers;
    }
    EXPECT_EQ(total.offered, rep.offered);
    EXPECT_EQ(total.completed, rep.completed);
    EXPECT_EQ(total.shed, rep.shed);
    EXPECT_EQ(total.timedOut, rep.timedOut);
    EXPECT_EQ(total.failed, rep.failed);
    EXPECT_EQ(total.retries, rep.retries);
    EXPECT_EQ(total.failovers, rep.failovers);
}

TEST(ChaosOutcomes, RetriesExhaustedRequestsAreCountedOnce)
{
    // Dropped in-flight work goes to the client's retry path; a
    // request that still dies must have burned its whole budget, and
    // the failure counter must see it exactly once.
    ServingSpec spec = chaosSpec();
    spec.failures.mtbfS = 0.002; // fail hard
    spec.failures.mttrS = 0.002;
    spec.failures.dropInFlight = true;
    spec.retry.budget = 1;
    spec.retry.backoffBaseS = 0.5e-3;
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.failed, 0u);
    std::uint64_t failed = 0;
    for (const RequestRecord &r : rep.requests) {
        EXPECT_LE(r.retries, spec.retry.budget);
        if (r.outcome == RequestOutcome::Failed) {
            ++failed;
            EXPECT_EQ(r.retries, spec.retry.budget)
                << "request " << r.id
                << " gave up with budget left";
        }
    }
    EXPECT_EQ(failed, rep.failed);
    EXPECT_EQ(rep.completed + rep.shed + rep.timedOut + rep.failed,
              rep.offered);
}

TEST(ChaosOutcomes, QueueCapShedsArrivalsBeyondTheBound)
{
    ServingSpec spec = chaosSpec();
    spec.failures = FailureSpec{};
    spec.arrivals.ratePerS = 60000.0; // overload
    spec.queueCap = 2;
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.shed, 0u);
    EXPECT_EQ(rep.completed + rep.shed, rep.offered);
    for (const RequestRecord &r : rep.requests) {
        if (r.outcome != RequestOutcome::Shed)
            continue;
        // Shed requests never reached a server.
        EXPECT_EQ(r.server, -1);
        EXPECT_DOUBLE_EQ(r.completionS, 0.0);
    }
    // The cap bounds every stream queue, so the waiting population
    // never exceeds cap x streams (the global overload gate).
    EXPECT_LE(rep.maxQueueDepth,
              spec.queueCap * rep.streamStats.size());
}

TEST(ChaosOutcomes, DeadlineMissesAreTimeouts)
{
    ServingSpec spec = chaosSpec();
    spec.arrivals.ratePerS = 20000.0; // queueing delay
    spec.deadlineS = 0.5e-3;          // under the 1ms batch timeout
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.timedOut, 0u);
    for (const RequestRecord &r : rep.requests) {
        if (r.outcome == RequestOutcome::Ok) {
            EXPECT_LE(r.latencyS(),
                      spec.deadlineS + 1e-12)
                << "request " << r.id << " is late but Ok";
        } else if (r.outcome == RequestOutcome::Timeout &&
                   r.completionS > 0.0) {
            // Served late (reaped-in-queue ones never complete).
            EXPECT_GT(r.latencyS(), spec.deadlineS);
        }
    }
}

// ---------------------------------------------------------------
// Queueing identities

TEST(ChaosQueueing, LittlesLawHoldsUnderFailures)
{
    // The time-weighted depth integral and the per-request queue
    // residencies are independent accountings of the same queues;
    // with no deadline reaping they must agree exactly even while
    // servers die, work fails over, and arrivals are shed (a shed
    // request spends zero time queued on both sides).
    ServingSpec spec = chaosSpec();
    spec.retry.budget = 3;
    spec.queueCap = 16;
    const ServingReport rep = simulate(spec);
    double queuedSum = 0.0;
    for (const RequestRecord &r : rep.requests)
        queuedSum += r.queuedS;
    const double integral = rep.meanQueueDepth * rep.makespanS;
    EXPECT_NEAR(integral, queuedSum,
                1e-9 * std::max(1.0, queuedSum));
}

// ---------------------------------------------------------------
// Failure machinery

TEST(ChaosFailures, AvailabilityIsBoundedAndMonotoneInReplicas)
{
    ServingSpec spec = chaosSpec();
    spec.failures.mtbfS = 0.03;
    spec.failures.mttrS = 0.02;
    double last = -1.0;
    for (const int replicas : {1, 2, 4, 8}) {
        spec.replicas = replicas;
        const ServingReport rep = simulate(spec);
        EXPECT_GE(rep.availability, 0.0);
        EXPECT_LE(rep.availability, 1.0);
        // Per-server failure streams are independent, so adding a
        // replica only grows the union of accepting time.
        EXPECT_GE(rep.availability, last)
            << "availability shrank at " << replicas << " replicas";
        last = rep.availability;
        EXPECT_NEAR(rep.unavailableS,
                    (1.0 - rep.availability) * spec.durationS,
                    1e-9);
    }
    // One replica with MTBF well under the window must lose time.
    spec.replicas = 1;
    EXPECT_LT(simulate(spec).availability, 1.0);
}

TEST(ChaosFailures, PerServerAccountingSumsToTheRollup)
{
    ServingSpec spec = chaosSpec();
    spec.failures.mtbfS = 0.02;
    spec.retry.budget = 1;
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.failureEvents, 0u);
    std::uint64_t failures = 0, killed = 0;
    for (const ServerStats &s : rep.servers) {
        failures += s.failures;
        killed += s.killedBatches;
        EXPECT_GE(s.downS, 0.0);
        EXPECT_LE(s.downS, spec.durationS + 1e-12);
        EXPECT_LE(s.utilization, 1.0 + 1e-9);
    }
    EXPECT_EQ(failures, rep.failureEvents);
    EXPECT_EQ(killed, rep.killedBatches);
}

TEST(ChaosFailures, FailoverRevivesInFlightWork)
{
    // Re-enqueue (the default) instead of dropping: every request
    // still completes -- failovers cost latency, not outcomes.
    ServingSpec spec = chaosSpec();
    spec.failures.mtbfS = 0.01;
    spec.failures.dropInFlight = false;
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.failovers, 0u);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_EQ(rep.completed, rep.offered);
}

TEST(ChaosFailures, HedgingDuplicatesSlowBatches)
{
    ServingSpec spec = chaosSpec();
    spec.failures = FailureSpec{};
    spec.replicas = 8;
    spec.hedgeDelayS = 0.5e-3; // under the 1ms batch timeout
    const ServingReport rep = simulate(spec);
    EXPECT_GT(rep.hedges, 0u);
    std::uint64_t flagged = 0;
    for (const RequestRecord &r : rep.requests)
        flagged += r.hedged ? 1 : 0;
    EXPECT_GT(flagged, 0u);
    EXPECT_EQ(rep.completed, rep.offered);
}

// ---------------------------------------------------------------
// Determinism + exports

TEST(ChaosDeterminism, FailureRunBytesIdenticalAcrossThreadsAndCache)
{
    ServingSpec spec = chaosSpec();
    spec.retry.budget = 2;
    spec.deadlineS = 10e-3;
    spec.queueCap = 16;
    spec.hedgeDelayS = 0.5e-3;
    const ServingReport ref = simulate(spec);
    const std::string refText = reportText(ref);
    const std::string refCsv = requestsCsv(ref);
    for (const int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        const ServingReport rep = simulate(spec);
        EXPECT_EQ(reportText(rep), refText)
            << "at " << threads << " threads";
        EXPECT_EQ(requestsCsv(rep), refCsv)
            << "at " << threads << " threads";
    }
    ThreadPool::setGlobalThreads(4);
    setCacheEnabled(false);
    const ServingReport rep = simulate(spec);
    setCacheEnabled(true);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(reportText(rep), refText) << "with the cache off";
    EXPECT_EQ(requestsCsv(rep), refCsv) << "with the cache off";
}

TEST(ChaosExports, ChaosRunsExportWellFormedArtifacts)
{
    ServingSpec spec = chaosSpec();
    spec.retry.budget = 1;
    spec.queueCap = 16;
    const ServingReport rep = simulate(spec);
    const std::string json = reportJson(rep);
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid()) << "bad JSON near byte "
                              << lint.errorPos();
    EXPECT_NE(json.find("\"chaos\""), std::string::npos);
    EXPECT_NE(json.find("\"availability\""), std::string::npos);
    const std::string csv = requestsCsv(rep);
    EXPECT_NE(csv.find(",outcome,retries,hedged,queued_s"),
              std::string::npos);
    EXPECT_EQ(std::size_t(std::count(csv.begin(), csv.end(), '\n')),
              rep.requests.size() + 1);
    const std::string text = reportText(rep);
    EXPECT_NE(text.find("availability"), std::string::npos);
}

// ---------------------------------------------------------------
// DSE bridge

dse::ExploreOptions
chaosExploreOptions()
{
    dse::ExploreOptions opt;
    opt.network = "lenet5";
    opt.strategy = dse::StrategyKind::Grid;
    opt.objectives = {dse::Objective::Availability,
                      dse::Objective::EnergyPerRequest};
    opt.serving.arrivals.ratePerS = 20000.0;
    opt.serving.arrivals.seed = 17;
    opt.serving.durationS = 0.1;
    opt.serving.batch.maxBatch = 4;
    opt.serving.batch.timeoutS = 1e-3;
    opt.serving.sloS = 5e-3;
    return opt;
}

dse::SearchSpace
chaosExploreSpace()
{
    dse::SearchSpace space;
    space.axis("plane", {16})
        .axis("replicas", {1, 2})
        .axis("failure_mtbf", {0, 20}); // ms; 0 = injection off
    return space;
}

TEST(DseChaos, FailureMtbfIsAServingAxis)
{
    EXPECT_TRUE(dse::isServingAxis("failure_mtbf"));
}

TEST(DseChaos, ExplorerScoresAvailability)
{
    dse::Explorer explorer(chaosExploreSpace(),
                           chaosExploreOptions());
    const dse::ExploreResult result = explorer.run();
    ASSERT_EQ(result.evaluations.size(), 4u);
    const auto &space = explorer.space();
    bool anyLoss = false;
    for (const auto &e : result.evaluations) {
        EXPECT_TRUE(e.scored);
        EXPECT_GE(e.availability, 0.0);
        EXPECT_LE(e.availability, 1.0);
        // The mtbf=0 arm runs with injection off: perfect nines.
        if (space.value(e.candidate, "failure_mtbf", 0) == 0)
            EXPECT_DOUBLE_EQ(e.availability, 1.0);
        else if (e.availability < 1.0)
            anyLoss = true;
    }
    // The single-replica injected arm must have lost some window.
    EXPECT_TRUE(anyLoss);
    EXPECT_FALSE(result.frontier.empty());
}

TEST(DseChaos, MinAvailabilityConstraintRejectsAfterScoring)
{
    dse::ExploreOptions opt = chaosExploreOptions();
    opt.constraints.set("min_availability=0.999999");
    dse::SearchSpace space;
    space.axis("plane", {16})
        .axis("replicas", {1})
        .axis("failure_mtbf", {1}); // 1ms MTBF: hopeless
    dse::Explorer explorer(space, opt);
    const dse::ExploreResult result = explorer.run();
    EXPECT_TRUE(result.frontier.empty());
    for (const auto &e : result.evaluations) {
        EXPECT_TRUE(e.scored); // post-scoring bound, not a filter
        EXPECT_FALSE(e.feasible);
        EXPECT_NE(e.rejectedBy.find("min_availability"),
                  std::string::npos);
    }
}

TEST(DseChaos, ChaosSignatureOnlyWhenChaosIsActive)
{
    // A chaos axis (or scenario) stamps the journal signature; a
    // plain serving exploration keeps the pre-chaos signature so old
    // journals stay replayable.
    dse::ExploreOptions opt = chaosExploreOptions();
    dse::SearchSpace plain;
    plain.axis("plane", {16}).axis("replicas", {1, 2});
    dse::Explorer off(plain, opt);
    EXPECT_EQ(off.signature().find("chaos="), std::string::npos);
    dse::Explorer on(chaosExploreSpace(), opt);
    EXPECT_NE(on.signature().find("chaos="), std::string::npos);
}

TEST(DseChaos, FrontierExportsCarryChaosColumns)
{
    dse::Explorer explorer(chaosExploreSpace(),
                           chaosExploreOptions());
    const dse::ExploreResult result = explorer.run();
    const std::string csv =
        dse::frontierCsv(explorer.space(), result.frontier,
                         explorer.options().objectives);
    EXPECT_NE(csv.find("availability,shed_fraction"),
              std::string::npos);
    const std::string json = dse::frontierJson(explorer, result);
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid()) << "bad JSON near byte "
                              << lint.errorPos();
    EXPECT_NE(json.find("\"availability\""), std::string::npos);
}

} // namespace
} // namespace serving
} // namespace inca
