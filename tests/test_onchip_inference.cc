/**
 * @file
 * End-to-end on-chip inference tests: a float-trained CNN keeps its
 * accuracy when every conv/FC executes on the bit-accurate INCA array
 * model with 8-bit operands and the 4-bit ADC, and degrades exactly
 * where the hardware says it must.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "inca/inference.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"
#include "tensor/ops.hh"

namespace inca {
namespace core {
namespace {

using tensor::Tensor;

/** Clamp a dataset's images to be non-negative (hardware stores
 * unsigned activations; the preprocessing unit shifts inputs). */
nn::DatasetPair
nonNegativeTask()
{
    nn::SyntheticSpec spec;
    spec.numClasses = 4;
    spec.channels = 1;
    spec.size = 8;
    spec.trainPerClass = 24;
    spec.testPerClass = 12;
    spec.seed = 5;
    auto data = nn::makeSynthetic(spec);
    for (auto *ds : {&data.train, &data.test}) {
        for (std::int64_t i = 0; i < ds->images.size(); ++i)
            ds->images[i] = std::max(0.0f, ds->images[i]);
    }
    return data;
}

struct TrainedNet
{
    tensor::Tensor convW;   // [6, 1, 3, 3]
    tensor::Tensor fcW;     // [96, 4]
    tensor::Tensor fcB;     // [4]
    double floatAccuracy = 0.0;
};

/** Train the small float CNN and extract its parameters. */
TrainedNet
trainFloat(const nn::DatasetPair &data)
{
    setQuiet(true);
    Rng rng(21);
    nn::Sequential net;
    auto conv = std::make_unique<nn::Conv2d>(1, 6, 3, 1, 1, rng);
    nn::Conv2d *convPtr = conv.get();
    net.append(std::move(conv));
    net.emplace<nn::ReLU>();
    net.emplace<nn::MaxPool2d>(2);
    net.emplace<nn::Flatten>();
    auto fc = std::make_unique<nn::Linear>(6 * 4 * 4, 4, rng);
    nn::Linear *fcPtr = fc.get();
    net.append(std::move(fc));

    nn::TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    const auto result = nn::train(net, data, cfg);

    TrainedNet out;
    out.convW = convPtr->weights();
    out.fcW = fcPtr->weights();
    // Bias lives inside Linear; re-derive it by probing: forward of a
    // zero input yields the bias directly.
    nn::ForwardCtx ctx;
    Tensor zero({1, std::int64_t(6 * 4 * 4)});
    Tensor bias = fcPtr->forward(zero, ctx);
    out.fcB = Tensor({4});
    for (int j = 0; j < 4; ++j)
        out.fcB[j] = bias.at(0, j);
    out.floatAccuracy = result.finalTestAccuracy;
    return out;
}

OnChipNet
stage(const TrainedNet &params, const FunctionalOptions &opts)
{
    OnChipNet chip(opts);
    chip.addConv(params.convW, 1, 1)
        .addReLU()
        .addMaxPool(2)
        .addFlatten()
        .addFc(params.fcW, params.fcB);
    return chip;
}

double
onChipAccuracy(const OnChipNet &chip, const nn::Dataset &test,
               int planes)
{
    int correct = 0;
    for (std::int64_t begin = 0; begin < test.count();
         begin += planes) {
        const std::int64_t n =
            std::min<std::int64_t>(planes, test.count() - begin);
        auto [x, labels] = test.batch(begin, n);
        const Tensor logits = chip.forward(x);
        correct += tensor::countCorrect(logits, labels);
    }
    return double(correct) / double(test.count());
}

class OnChipInference : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new nn::DatasetPair(nonNegativeTask());
        params_ = new TrainedNet(trainFloat(*data_));
    }
    static void
    TearDownTestSuite()
    {
        delete params_;
        delete data_;
        params_ = nullptr;
        data_ = nullptr;
    }

    static nn::DatasetPair *data_;
    static TrainedNet *params_;
};

nn::DatasetPair *OnChipInference::data_ = nullptr;
TrainedNet *OnChipInference::params_ = nullptr;

TEST_F(OnChipInference, FloatBaselineLearns)
{
    EXPECT_GE(params_->floatAccuracy, 0.85);
}

TEST_F(OnChipInference, EightBitFourBitAdcKeepsAccuracy)
{
    FunctionalOptions opts;
    opts.planeSize = 8;
    opts.planes = 8;
    opts.activationBits = 8;
    opts.weightBits = 8;
    opts.adcBits = 4;
    const auto chip = stage(*params_, opts);
    EXPECT_EQ(chip.arrayLayerCount(), 2);
    const double acc = onChipAccuracy(chip, data_->test, opts.planes);
    EXPECT_GE(acc, params_->floatAccuracy - 0.07)
        << "on-chip " << acc << " vs float "
        << params_->floatAccuracy;
}

TEST_F(OnChipInference, LogitsTrackFloatClosely)
{
    FunctionalOptions opts;
    opts.planeSize = 8;
    opts.planes = 4;
    const auto chip = stage(*params_, opts);
    auto [x, labels] = data_->test.batch(0, 4);
    (void)labels;
    const Tensor onChip = chip.forward(x);

    // Float reference through tensor ops.
    Tensor y = tensor::conv2d(x, params_->convW, {1, 1});
    y = tensor::relu(y);
    y = tensor::maxPool2d(y, 2, {2, 0}).output;
    y = y.reshaped({4, 96});
    y = tensor::fc(y, params_->fcW, params_->fcB);

    // Quantization noise is bounded; the argmax rarely flips and the
    // values stay within a few percent of full scale.
    const float scale = y.absMax();
    for (std::int64_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(onChip[i], y[i], 0.08f * scale) << "logit " << i;
}

TEST_F(OnChipInference, CoarseOperandsDegrade)
{
    FunctionalOptions fine;
    fine.planeSize = 8;
    fine.planes = 8;
    FunctionalOptions coarse = fine;
    coarse.activationBits = 3;
    coarse.weightBits = 3;
    const double accFine =
        onChipAccuracy(stage(*params_, fine), data_->test, 8);
    const double accCoarse =
        onChipAccuracy(stage(*params_, coarse), data_->test, 8);
    EXPECT_GE(accFine, accCoarse);
}

TEST_F(OnChipInference, ResidualBlocksSupported)
{
    // relu(conv(x) + x) with zero conv weights reduces to relu(x):
    // verify the residual plumbing against that identity.
    FunctionalOptions opts;
    opts.planeSize = 8;
    opts.planes = 2;
    OnChipNet chip(opts);
    Tensor zeroW({1, 1, 3, 3});
    chip.beginResidual().addConv(zeroW, 1, 1).endResidual();
    Rng rng(3);
    Tensor x({2, 1, 8, 8});
    for (std::int64_t i = 0; i < x.size(); ++i)
        x[i] = float(rng.below(32));
    const Tensor y = chip.forward(x);
    EXPECT_TRUE(y.allClose(tensor::relu(x), 1e-4f));
}

TEST(OnChipInferenceDeath, UnclosedResidualPanics)
{
    OnChipNet chip({8, 2, 8, 8, 4});
    chip.beginResidual();
    Tensor x = Tensor::zeros({1, 1, 8, 8});
    EXPECT_DEATH(chip.forward(x), "unclosed");
}

} // namespace
} // namespace core
} // namespace inca
