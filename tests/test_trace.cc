/**
 * @file
 * Chrome trace-event recorder tests: disabled-path behavior, span and
 * counter recording, thread naming, and JSON validity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "json_lint.hh"

namespace inca {
namespace trace {
namespace {

/** Fixture: every test starts and ends with tracing off and empty. */
class Trace : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (enabled())
            stop();
        clear();
    }

    void
    TearDown() override
    {
        if (enabled())
            stop();
        clear();
    }

    static size_t
    countNamed(const std::string &name)
    {
        const auto events = snapshot();
        return size_t(std::count_if(
            events.begin(), events.end(),
            [&](const Event &e) { return e.name == name; }));
    }
};

TEST_F(Trace, DisabledRecordsNothing)
{
    ASSERT_FALSE(enabled());
    {
        Span span("invisible");
        counter("invisible.counter", 1.0);
    }
    EXPECT_EQ(countNamed("invisible"), 0u);
    EXPECT_EQ(countNamed("invisible.counter"), 0u);
}

TEST_F(Trace, SpanRecordsCompleteEvent)
{
    start("");
    {
        Span span("unit.work");
    }
    stop();
    const auto events = snapshot();
    const auto it = std::find_if(
        events.begin(), events.end(),
        [](const Event &e) { return e.name == "unit.work"; });
    ASSERT_NE(it, events.end());
    EXPECT_EQ(it->ph, 'X');
    EXPECT_GE(it->tsUs, 0);
    EXPECT_GE(it->durUs, 0);
}

TEST_F(Trace, SpanNameBuiltOnlyWhenEnabled)
{
    EXPECT_EQ(spanName("fwd ", "conv1"), "");
    start("");
    EXPECT_EQ(spanName("fwd ", "conv1"), "fwd conv1");
    stop();
}

TEST_F(Trace, CounterSamplesRecorded)
{
    start("");
    counter("cache.test.hits", 3.0);
    counter("cache.test.hits", 4.0);
    stop();
    const auto events = snapshot();
    double last = -1.0;
    size_t n = 0;
    for (const auto &e : events) {
        if (e.name != "cache.test.hits")
            continue;
        EXPECT_EQ(e.ph, 'C');
        last = e.value;
        ++n;
    }
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(last, 4.0);
}

TEST_F(Trace, SpanOpenAcrossStopIsDropped)
{
    start("");
    {
        Span span("straddler");
        stop();
    }
    EXPECT_EQ(countNamed("straddler"), 0u);
}

TEST_F(Trace, JsonIsValidWithHostileNames)
{
    start("");
    {
        Span span("quote\" slash\\ newline\n tab\t");
    }
    counter("ctr\"l", 1.5);
    const std::string json = stop();
    EXPECT_TRUE(testutil::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST_F(Trace, NamedThreadsAppearAsMetadata)
{
    std::thread helper([] {
        nameThread("helper-thread");
        start("");
        {
            Span span("helper.work");
        }
    });
    helper.join();
    {
        // Touch the recorder from the main thread so its buffer (and
        // automatic "main" label) exists even when no earlier test ran
        // in this process.
        Span span("main.work");
    }
    const std::string json = stop();
    EXPECT_TRUE(testutil::jsonValid(json)) << json;
    // Sticky names survive even though the thread exited; the main
    // thread is auto-named by the recorder.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("helper-thread"), std::string::npos);
    EXPECT_NE(json.find("\"main\""), std::string::npos);
}

TEST_F(Trace, PoolTasksRecordSpans)
{
    // A single-core host gives the global pool zero workers and an
    // inline parallel_for; force a real pool so chunks go through the
    // traced claim path.
    const int prev = ThreadPool::globalThreadCount();
    ThreadPool::setGlobalThreads(2);
    start("");
    parallel_for(std::int64_t(64), 8,
                 [](std::int64_t, std::int64_t) {});
    stop();
    EXPECT_GE(countNamed("pool.task"), 1u);
    // The worker announced its sticky name when it started; wait out
    // the (bounded) startup race before asserting on it.
    std::string json = toJson();
    for (int i = 0;
         i < 500 && json.find("pool-worker-1") == std::string::npos;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        json = toJson();
    }
    EXPECT_NE(json.find("pool-worker-1"), std::string::npos);
    ThreadPool::setGlobalThreads(prev);
}

TEST_F(Trace, StopWritesFile)
{
    const std::string path = "/tmp/inca_trace_test.json";
    start(path);
    {
        Span span("to-disk");
    }
    const std::string json = stop();
    std::ifstream in(path);
    ASSERT_TRUE(bool(in));
    std::stringstream read;
    read << in.rdbuf();
    EXPECT_EQ(read.str(), json);
    std::remove(path.c_str());
}

TEST_F(Trace, ClearDropsEventsKeepsNames)
{
    start("");
    {
        Span span("gone");
    }
    stop();
    EXPECT_GE(eventCount(), 1u);
    clear();
    EXPECT_EQ(eventCount(), 0u);
    // The main thread's sticky name survives a clear().
    EXPECT_NE(toJson().find("\"main\""), std::string::npos);
}

} // namespace
} // namespace trace
} // namespace inca
