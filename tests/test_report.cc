/**
 * @file
 * Reporting-helper tests: comparisons, breakdown grouping and
 * layerwise series extraction.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace inca {
namespace sim {
namespace {

class Report : public ::testing::Test
{
  protected:
    core::IncaEngine inca{arch::paperInca()};
    baseline::BaselineEngine base{arch::paperBaseline()};
};

TEST_F(Report, CompareProducesBothRuns)
{
    const auto c = compare(inca, base, nn::resnet18(), 64,
                           arch::Phase::Inference);
    EXPECT_EQ(c.network, "resnet18");
    EXPECT_GT(c.inca.energy(), 0.0);
    EXPECT_GT(c.baseline.energy(), 0.0);
    EXPECT_GT(c.energyEfficiencyGain(), 1.0);
    EXPECT_GT(c.speedup(), 1.0);
}

TEST_F(Report, CompareSuitePreservesOrder)
{
    const auto rows = compareSuite(inca, base, nn::evaluationSuite(),
                                   64, arch::Phase::Inference);
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].network, "vgg16");
    EXPECT_EQ(rows[5].network, "mnasnet");
}

TEST_F(Report, BreakdownSumsToTotalEnergy)
{
    const auto run = base.inference(nn::vgg16(), 64);
    const auto groups = energyBreakdown(run);
    double total = 0.0;
    for (const auto &[name, value] : groups)
        total += value;
    EXPECT_NEAR(total, run.energy(), run.energy() * 1e-9);
}

TEST_F(Report, BreakdownHasExpectedClasses)
{
    const auto run = inca.inference(nn::resnet18(), 64);
    const auto groups = energyBreakdown(run);
    for (const char *key : {"dram", "buffer", "array", "adc", "dac",
                            "digital", "static"}) {
        EXPECT_TRUE(groups.count(key)) << key;
    }
}

TEST_F(Report, PercentagesSumToHundred)
{
    const auto run = base.training(nn::mnasnet(), 64);
    const auto pct = energyBreakdownPct(run);
    double total = 0.0;
    for (const auto &[name, value] : pct) {
        EXPECT_GE(value, 0.0);
        total += value;
    }
    EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST_F(Report, Fig6ContrastMemorySystemEnergyShrinksOnInca)
{
    // The Fig. 6 vs Fig. 13b contrast: the DRAM + buffer energy a WS
    // chip burns must far exceed INCA's for the same workload. (Our
    // physically-derived model attributes relatively more of each
    // chip's total to ADC/leakage than the paper's NeuroSim runs, so
    // the robust reproduction target is the absolute memory-system
    // energy contrast -- see EXPERIMENTS.md.)
    const auto ws = energyBreakdown(base.inference(nn::vgg16(), 64));
    const auto is = energyBreakdown(inca.inference(nn::vgg16(), 64));
    const double wsMem = ws.at("dram") + ws.at("buffer");
    const double isMem = is.at("dram") + is.at("buffer");
    EXPECT_GT(wsMem, 5.0 * isMem);
}

TEST_F(Report, LayerwiseSeriesCoversForwardConvsOnly)
{
    const auto run = inca.training(nn::vgg16(), 64);
    const auto series = layerwiseMemoryEnergy(run);
    // VGG16: 13 convs + 3 FCs = 16 conv-like forward layers.
    EXPECT_EQ(series.size(), 16u);
    for (const auto &[name, energy] : series) {
        EXPECT_EQ(name.find(".bwd"), std::string::npos);
        EXPECT_EQ(name.find(".upd"), std::string::npos);
        EXPECT_GE(energy, 0.0);
    }
}

TEST_F(Report, LayerwiseShapeMatchesFig12)
{
    // Fig. 12: the WS baseline's early layers dominate its
    // DRAM+buffer energy, while INCA's profile is flat-ish; in the
    // last layers INCA can even exceed the baseline (crossover).
    const auto ws =
        layerwiseMemoryEnergy(base.inference(nn::vgg16(), 64));
    const auto is =
        layerwiseMemoryEnergy(inca.inference(nn::vgg16(), 64));
    ASSERT_EQ(ws.size(), is.size());
    // Early layers: WS far above INCA.
    EXPECT_GT(ws[1].second, 10.0 * is[1].second);
    // WS early >> WS late (front-loaded).
    EXPECT_GT(ws[1].second, 5.0 * ws[12].second);
}

} // namespace
} // namespace sim
} // namespace inca
