/**
 * @file
 * Utilization-model tests (paper Fig. 16): bounds, the 16x16 sweet
 * spot, and the WS collapse on depthwise layers.
 */

#include <gtest/gtest.h>

#include "arch/utilization.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace arch {
namespace {

nn::LayerDesc
convLayer(std::int64_t c, std::int64_t hw, std::int64_t n, int k)
{
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Conv;
    l.inC = c;
    l.inH = l.inW = hw;
    l.outC = n;
    l.outH = l.outW = hw;
    l.kh = l.kw = k;
    return l;
}

nn::LayerDesc
depthwiseLayer(std::int64_t c, std::int64_t hw, int k)
{
    nn::LayerDesc l = convLayer(c, hw, c, k);
    l.kind = nn::LayerKind::Depthwise;
    return l;
}

TEST(IncaUtilization, PerfectFit)
{
    // A 16-divisible feature map wastes nothing on 16x16 planes.
    EXPECT_DOUBLE_EQ(incaLayerUtilization(convLayer(64, 32, 64, 3), 16),
                     1.0);
    EXPECT_DOUBLE_EQ(incaLayerUtilization(convLayer(3, 224, 64, 3), 16),
                     1.0);
}

TEST(IncaUtilization, RaggedEdgeWastes)
{
    // A 14x14 map on 16x16 planes uses 196 of 256 cells.
    EXPECT_NEAR(incaLayerUtilization(convLayer(512, 14, 512, 3), 16),
                196.0 / 256.0, 1e-9);
    // ... and on 128x128 planes only 196 of 16384.
    EXPECT_NEAR(incaLayerUtilization(convLayer(512, 14, 512, 3), 128),
                196.0 / 16384.0, 1e-9);
}

TEST(IncaUtilization, IndependentOfKernelShape)
{
    // The paper: INCA's utilization "is not affected by kernel
    // variance".
    const double u3 =
        incaLayerUtilization(convLayer(64, 28, 64, 3), 16);
    const double u5 =
        incaLayerUtilization(convLayer(64, 28, 64, 5), 16);
    EXPECT_DOUBLE_EQ(u3, u5);
}

/** Fig. 16a: utilization must fall monotonically with array size. */
class IncaArraySizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(IncaArraySizeSweep, NetworkUtilizationShrinksWithArraySize)
{
    const int s = GetParam();
    for (const auto &net : nn::evaluationSuite()) {
        const double uS = incaNetworkUtilization(net, s);
        const double u2S = incaNetworkUtilization(net, 2 * s);
        EXPECT_GE(uS, u2S) << net.name << " at " << s;
        EXPECT_GE(uS, 0.0);
        EXPECT_LE(uS, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncaArraySizeSweep,
                         ::testing::Values(8, 16, 32, 64));

TEST(IncaUtilization, SixteenIsCompetitive)
{
    // Fig. 16a: 16x16 keeps utilization high on every network.
    for (const auto &net : nn::evaluationSuite()) {
        EXPECT_GE(incaNetworkUtilization(net, 16), 0.6) << net.name;
        EXPECT_LE(incaNetworkUtilization(net, 128), 0.45) << net.name;
    }
}

TEST(WsUtilization, FullColumnsWhenAligned)
{
    // 128-deep accumulation with 16 output channels at 8 bit fills
    // columns exactly.
    nn::LayerDesc l = convLayer(64, 28, 16, 3); // rows=576, cols=128
    const double u = wsLayerUtilization(l, 128);
    // rows: 576 over 5 tiles of 128 = 640 -> 0.9; cols exactly 1.0.
    EXPECT_NEAR(u, 576.0 / 640.0, 1e-9);
}

TEST(WsUtilization, DepthwiseCollapses)
{
    // 3x3 depthwise kernels use 9 of 128 rows and 8 of 128 columns.
    const double u = wsLayerUtilization(depthwiseLayer(64, 14, 3), 128);
    EXPECT_NEAR(u, (9.0 * 8.0) / (128.0 * 128.0), 1e-9);
    EXPECT_LT(u, 0.005);
}

TEST(WsUtilization, LightNetworksCollapse)
{
    // Fig. 16b: the baseline keeps ~full utilization on VGGs/ResNets
    // but collapses on MobileNetV2 / MNasNet.
    EXPECT_GT(wsNetworkUtilization(nn::vgg16(), 128), 0.9);
    EXPECT_GT(wsNetworkUtilization(nn::resnet50(), 128), 0.8);
    EXPECT_LT(wsNetworkUtilization(nn::mobilenetV2(), 128), 0.3);
    EXPECT_LT(wsNetworkUtilization(nn::mnasnet(), 128), 0.3);
}

TEST(WsUtilization, IncaStaysFlatAcrossNetworks)
{
    // Fig. 16b, INCA side: utilization roughly constant across
    // heavy and light networks at the 16x16 design point.
    double lo = 1.0, hi = 0.0;
    for (const auto &net : nn::evaluationSuite()) {
        const double u = incaNetworkUtilization(net, 16);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(hi - lo, 0.35);
    EXPECT_GT(lo, 0.55);
}

TEST(Utilization, NonConvLayersAreZero)
{
    nn::LayerDesc pool;
    pool.kind = nn::LayerKind::MaxPool;
    EXPECT_DOUBLE_EQ(incaLayerUtilization(pool, 16), 0.0);
    EXPECT_DOUBLE_EQ(wsLayerUtilization(pool, 128), 0.0);
}

TEST(Utilization, FcFoldsOntoPlanes)
{
    nn::LayerDesc fc;
    fc.kind = nn::LayerKind::FullyConnected;
    fc.inC = 512; // exactly two 16x16 planes
    fc.inH = fc.inW = 1;
    fc.outC = 1000;
    fc.outH = fc.outW = 1;
    fc.kh = fc.kw = 1;
    EXPECT_DOUBLE_EQ(incaLayerUtilization(fc, 16), 1.0);
    fc.inC = 300; // 2 planes of 256, 300/512 used
    EXPECT_NEAR(incaLayerUtilization(fc, 16), 300.0 / 512.0, 1e-9);
}

/** All layer utilizations stay in [0, 1] across a parameter sweep. */
struct UtilCase
{
    std::int64_t c, hw, n;
    int k, arraySize;
};

class UtilBounds : public ::testing::TestWithParam<UtilCase>
{
};

TEST_P(UtilBounds, InUnitInterval)
{
    const auto p = GetParam();
    const auto conv = convLayer(p.c, p.hw, p.n, p.k);
    const auto dw = depthwiseLayer(p.c, p.hw, p.k);
    for (double u : {incaLayerUtilization(conv, p.arraySize),
                     wsLayerUtilization(conv, 128),
                     incaLayerUtilization(dw, p.arraySize),
                     wsLayerUtilization(dw, 128)}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UtilBounds,
    ::testing::Values(UtilCase{1, 7, 1, 1, 8},
                      UtilCase{3, 224, 64, 3, 16},
                      UtilCase{64, 56, 64, 3, 16},
                      UtilCase{512, 7, 512, 3, 32},
                      UtilCase{960, 7, 320, 1, 16},
                      UtilCase{32, 112, 16, 5, 64},
                      UtilCase{2048, 7, 1000, 1, 128}));

} // namespace
} // namespace arch
} // namespace inca
