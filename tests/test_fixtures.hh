/**
 * @file
 * Shared test fixtures.
 *
 * The sweep tests, the fault-injection tests, and the evaluation-cache
 * differential tests all assemble the same kinds of objects: paper
 * configs with a few geometry fields overridden, and seeded
 * macro-with-values setups. Building them here keeps the design
 * points consistent across suites -- a differential test and a sweep
 * test that disagree about what "the 8x8 single-plane macro" is are
 * testing different machines.
 */

#ifndef INCA_TESTS_TEST_FIXTURES_HH
#define INCA_TESTS_TEST_FIXTURES_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "baseline/engine.hh"
#include "common/random.hh"
#include "event/event.hh"
#include "inca/engine.hh"
#include "inca/stack3d.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace testing {

// -------------------------------------------------------------------
// Execution backends.
//
// Every engine-level cost can be produced two ways: the analytic
// engines (which walk the lowered IR arithmetically) and the
// event-driven simulator (which schedules the same IR). The two are
// bit-exact with overlap off, so sweep-style tests run their bodies
// under eachBackend() instead of hard-coding one path.

/** Which execution path produces a RunCost. */
enum class Backend
{
    Analytic, ///< core::IncaEngine / baseline::BaselineEngine
    Event,    ///< ir::lower* + event::execute, overlap off
};

inline const char *
backendName(Backend b)
{
    return b == Backend::Event ? "event" : "analytic";
}

/** The backend axis sweep tests iterate. */
inline std::vector<Backend>
eachBackend()
{
    return {Backend::Analytic, Backend::Event};
}

/** One IS run through the chosen backend. */
inline arch::RunCost
runInca(Backend b, const arch::IncaConfig &cfg,
        const nn::NetworkDesc &net, arch::Phase phase, int batch)
{
    if (b == Backend::Analytic) {
        const core::IncaEngine engine(cfg);
        return phase == arch::Phase::Training
                   ? engine.training(net, batch)
                   : engine.inference(net, batch);
    }
    return event::execute(ir::lowerInca(cfg, net, phase, batch)).run;
}

/** One WS run through the chosen backend. */
inline arch::RunCost
runBaseline(Backend b, const arch::BaselineConfig &cfg,
            const nn::NetworkDesc &net, arch::Phase phase, int batch)
{
    if (b == Backend::Analytic) {
        const baseline::BaselineEngine engine(cfg);
        return phase == arch::Phase::Training
                   ? engine.training(net, batch)
                   : engine.inference(net, batch);
    }
    return event::execute(ir::lowerWs(cfg, net, phase, batch)).run;
}

// -------------------------------------------------------------------
// Engine design points.

/** One INCA design point: the geometry knobs the sweeps vary. */
struct IncaPoint
{
    int subarraySize;
    int planes;
    int adcBits;
    int batch;
};

/** paperInca() with @p p's geometry overrides applied. */
inline arch::IncaConfig
incaPointConfig(const IncaPoint &p)
{
    arch::IncaConfig cfg = arch::paperInca();
    cfg.subarraySize = p.subarraySize;
    cfg.stackedPlanes = p.planes;
    cfg.adcBits = p.adcBits;
    return cfg;
}

/**
 * The design points the cache differential test sweeps: the paper
 * point plus two perturbed geometries, so cached results for one
 * config can never be served for another without the test noticing.
 */
inline std::vector<IncaPoint>
cacheSweepPoints()
{
    return {{16, 64, 4, 64}, {8, 32, 5, 16}, {32, 16, 6, 8}};
}

/** The networks the cache differential test sweeps (light + heavy). */
inline std::vector<nn::NetworkDesc>
cacheSweepModels()
{
    return {nn::resnet18(), nn::mobilenetV2(), nn::lenet5()};
}

// -------------------------------------------------------------------
// Seeded functional-array fixtures.

/**
 * A pair of identical IncaMacros with seeded 3x3 values and a seeded
 * 3x3 kernel: the canonical setup for differential fault and noise
 * experiments (mutate one macro, bound its deviation from the clean
 * twin).
 */
struct SeededMacroPair
{
    core::IncaMacro clean;
    core::IncaMacro faulty;
    int values[3][3];
    std::vector<int> kernel;

    explicit SeededMacroPair(std::uint64_t seed, int size = 8,
                             int planes = 1, int activationBits = 8)
        : clean(size, planes, activationBits),
          faulty(size, planes, activationBits),
          kernel(9)
    {
        Rng rng(seed);
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c) {
                values[r][c] = int(rng.below(256));
                clean.writeValue(0, r, c, std::uint32_t(values[r][c]));
                faulty.writeValue(0, r, c, std::uint32_t(values[r][c]));
            }
        }
        for (auto &k : kernel)
            k = int(rng.below(255)) - 127;
    }
};

} // namespace testing
} // namespace inca

#endif // INCA_TESTS_TEST_FIXTURES_HH
