/**
 * @file
 * Timeline / Gantt rendering tests.
 */

#include <gtest/gtest.h>

#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/schedule.hh"

namespace inca {
namespace sim {
namespace {

Timeline
sample()
{
    Timeline tl;
    tl.entries = {{"a", 0.0, 1.0}, {"b", 1.0, 4.0}, {"c", 4.0, 4.5}};
    return tl;
}

TEST(Timeline, Makespan)
{
    EXPECT_DOUBLE_EQ(sample().makespan(), 4.5);
    EXPECT_DOUBLE_EQ(Timeline{}.makespan(), 0.0);
}

TEST(Timeline, LongestSorts)
{
    const auto top = sample().longest(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].name, "b");
    EXPECT_EQ(top[1].name, "a");
}

TEST(Timeline, GanttMentionsEntries)
{
    const std::string g = sample().gantt(40);
    EXPECT_NE(g.find("a"), std::string::npos);
    EXPECT_NE(g.find("b"), std::string::npos);
    EXPECT_NE(g.find("makespan"), std::string::npos);
    EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Timeline, GanttSkipsZeroDuration)
{
    Timeline tl;
    tl.entries = {{"real", 0.0, 1.0}, {"ghost", 1.0, 1.0}};
    const std::string g = tl.gantt(40);
    EXPECT_NE(g.find("real"), std::string::npos);
    EXPECT_EQ(g.find("ghost"), std::string::npos);
}

TEST(Timeline, EmptyGantt)
{
    EXPECT_EQ(Timeline{}.gantt(40), "(empty timeline)\n");
}

TEST(Timeline, BarLengthsProportional)
{
    const std::string g = sample().gantt(40);
    // Entry 'b' (3.0 of 4.5) must have roughly 3x the hashes of
    // entry 'a' (1.0 of 4.5).
    auto hashesOn = [&](const std::string &name) {
        const size_t line = g.find(name + " ");
        const size_t end = g.find('\n', line);
        int n = 0;
        for (size_t i = line; i < end; ++i)
            n += g[i] == '#';
        return n;
    };
    EXPECT_NEAR(double(hashesOn("b")) / double(hashesOn("a")), 3.0,
                1.0);
}

TEST(Timeline, FromRunChainsLayers)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(nn::lenet5(), 8);
    const auto tl = timelineOf(run);
    ASSERT_EQ(tl.entries.size(), run.layers.size());
    // Entries chain without gaps.
    for (size_t i = 1; i < tl.entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(tl.entries[i].start, tl.entries[i - 1].end);
    }
    EXPECT_NEAR(tl.makespan(), run.latency, run.latency * 1e-9);
}

TEST(TimelineDeath, TooNarrowGanttPanics)
{
    EXPECT_DEATH(sample().gantt(3), "columns");
}

} // namespace
} // namespace sim
} // namespace inca
