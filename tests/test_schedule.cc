/**
 * @file
 * Timeline / Gantt rendering tests.
 */

#include <gtest/gtest.h>

#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/schedule.hh"

namespace inca {
namespace sim {
namespace {

Timeline
sample()
{
    Timeline tl;
    tl.entries = {{"a", 0.0, 1.0}, {"b", 1.0, 4.0}, {"c", 4.0, 4.5}};
    return tl;
}

TEST(Timeline, Makespan)
{
    EXPECT_DOUBLE_EQ(sample().makespan(), 4.5);
    EXPECT_DOUBLE_EQ(Timeline{}.makespan(), 0.0);
}

TEST(Timeline, LongestSorts)
{
    const auto top = sample().longest(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].name, "b");
    EXPECT_EQ(top[1].name, "a");
}

TEST(Timeline, GanttMentionsEntries)
{
    const std::string g = sample().gantt(40);
    EXPECT_NE(g.find("a"), std::string::npos);
    EXPECT_NE(g.find("b"), std::string::npos);
    EXPECT_NE(g.find("makespan"), std::string::npos);
    EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Timeline, GanttSkipsZeroDuration)
{
    Timeline tl;
    tl.entries = {{"real", 0.0, 1.0}, {"ghost", 1.0, 1.0}};
    const std::string g = tl.gantt(40);
    EXPECT_NE(g.find("real"), std::string::npos);
    EXPECT_EQ(g.find("ghost"), std::string::npos);
}

TEST(Timeline, EmptyGantt)
{
    EXPECT_EQ(Timeline{}.gantt(40), "(empty timeline)\n");
}

TEST(Timeline, BarLengthsProportional)
{
    const std::string g = sample().gantt(40);
    // Entry 'b' (3.0 of 4.5) must have roughly 3x the hashes of
    // entry 'a' (1.0 of 4.5).
    auto hashesOn = [&](const std::string &name) {
        const size_t line = g.find(name + " ");
        const size_t end = g.find('\n', line);
        int n = 0;
        for (size_t i = line; i < end; ++i)
            n += g[i] == '#';
        return n;
    };
    EXPECT_NEAR(double(hashesOn("b")) / double(hashesOn("a")), 3.0,
                1.0);
}

TEST(Timeline, FromRunChainsLayers)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(nn::lenet5(), 8);
    const auto tl = timelineOf(run);
    ASSERT_EQ(tl.entries.size(), run.layers.size());
    // Entries chain without gaps.
    for (size_t i = 1; i < tl.entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(tl.entries[i].start, tl.entries[i - 1].end);
    }
    EXPECT_NEAR(tl.makespan(), run.latency, run.latency * 1e-9);
}

TEST(TimelineDeath, TooNarrowGanttPanics)
{
    EXPECT_DEATH(sample().gantt(3), "columns");
}

// ---------------------------------------------------------------
// Edge cases: degenerate networks and batch boundaries.

nn::NetworkDesc
emptyNetwork()
{
    nn::NetworkDesc net;
    net.name = "empty";
    return net;
}

nn::NetworkDesc
singleLayerNetwork()
{
    nn::NetworkDesc net;
    net.name = "one-fc";
    net.numClasses = 10;
    nn::LayerDesc fc;
    fc.kind = nn::LayerKind::FullyConnected;
    fc.name = "fc";
    fc.inC = 16;
    fc.inH = 1;
    fc.inW = 1;
    fc.outC = 10;
    fc.outH = 1;
    fc.outW = 1;
    fc.kh = 1;
    fc.kw = 1;
    net.layers = {fc};
    return net;
}

TEST(TimelineEdge, EmptyNetworkYieldsEmptyTimeline)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(emptyNetwork(), 1);
    const auto tl = timelineOf(run);
    EXPECT_TRUE(tl.entries.empty());
    EXPECT_DOUBLE_EQ(tl.makespan(), 0.0);
    EXPECT_EQ(tl.gantt(40), "(empty timeline)\n");
}

TEST(TimelineEdge, SingleLayerSpansTheWholeRun)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(singleLayerNetwork(), 4);
    const auto tl = timelineOf(run);
    ASSERT_EQ(tl.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(tl.entries[0].start, 0.0);
    EXPECT_DOUBLE_EQ(tl.entries[0].end, run.latency);
    EXPECT_DOUBLE_EQ(tl.makespan(), run.latency);
}

TEST(TimelineEdge, BatchOneChainsWithoutGaps)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(nn::lenet5(), 1);
    const auto tl = timelineOf(run);
    ASSERT_EQ(tl.entries.size(), run.layers.size());
    EXPECT_DOUBLE_EQ(tl.entries.front().start, 0.0);
    for (size_t i = 1; i < tl.entries.size(); ++i)
        EXPECT_DOUBLE_EQ(tl.entries[i].start,
                         tl.entries[i - 1].end);
    EXPECT_NEAR(tl.makespan(), run.latency, run.latency * 1e-9);
}

TEST(TimelineEdge, BatchZeroDies)
{
    core::IncaEngine engine(arch::paperInca());
    EXPECT_DEATH(engine.inference(nn::lenet5(), 0), "batch size");
}

} // namespace
} // namespace sim
} // namespace inca
