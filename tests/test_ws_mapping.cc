/**
 * @file
 * WS (unrolled) mapping tests: row/column tiling, depthwise channel
 * groups, and network-level array counts.
 */

#include <gtest/gtest.h>

#include "baseline/mapping.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace baseline {
namespace {

nn::LayerDesc
convLayer(std::int64_t c, std::int64_t hw, std::int64_t n, int k)
{
    nn::LayerDesc l;
    l.kind = k == 1 ? nn::LayerKind::Pointwise : nn::LayerKind::Conv;
    l.inC = c;
    l.inH = l.inW = hw;
    l.outC = n;
    l.outH = l.outW = hw;
    l.kh = l.kw = k;
    return l;
}

TEST(WsMapping, SingleArrayLayer)
{
    // 9*8 = 72 rows, 8*8 = 64 bit columns: one 128x128 crossbar.
    const auto cfg = arch::paperBaseline();
    const auto m = mapLayer(convLayer(8, 14, 8, 3), cfg);
    EXPECT_EQ(m.usedRows, 72);
    EXPECT_EQ(m.usedCols, 64);
    EXPECT_EQ(m.rowTiles, 1);
    EXPECT_EQ(m.colTiles, 1);
    EXPECT_EQ(m.channelGroups, 1);
    EXPECT_EQ(m.arrays(), 1);
    EXPECT_EQ(m.windows, 14 * 14);
}

TEST(WsMapping, RowAndColumnTiling)
{
    // VGG16 conv5-class layer: 9*512 = 4608 rows -> 36 row tiles;
    // 512*8 = 4096 columns -> 32 col tiles.
    const auto cfg = arch::paperBaseline();
    const auto m = mapLayer(convLayer(512, 14, 512, 3), cfg);
    EXPECT_EQ(m.rowTiles, 36);
    EXPECT_EQ(m.colTiles, 32);
    EXPECT_EQ(m.arrays(), 36 * 32);
}

TEST(WsMapping, PointwiseUsesOneRowPerChannel)
{
    const auto cfg = arch::paperBaseline();
    const auto m = mapLayer(convLayer(256, 14, 64, 1), cfg);
    EXPECT_EQ(m.usedRows, 256);
    EXPECT_EQ(m.rowTiles, 2);
    EXPECT_EQ(m.usedCols, 64 * 8);
    EXPECT_EQ(m.colTiles, 4);
}

TEST(WsMapping, DepthwiseGetsPerChannelGroups)
{
    const auto cfg = arch::paperBaseline();
    nn::LayerDesc l = convLayer(96, 14, 96, 3);
    l.kind = nn::LayerKind::Depthwise;
    const auto m = mapLayer(l, cfg);
    EXPECT_EQ(m.usedRows, 9);
    EXPECT_EQ(m.usedCols, 8);
    EXPECT_EQ(m.channelGroups, 96);
    EXPECT_EQ(m.arrays(), 96); // one (mostly empty) array each
}

TEST(WsMapping, ArraysForNetworkSumsConvLayers)
{
    const auto cfg = arch::paperBaseline();
    const auto net = nn::lenet5();
    std::int64_t expected = 0;
    for (const auto &l : net.layers) {
        if (l.isConvLike())
            expected += mapLayer(l, cfg).arrays();
    }
    EXPECT_EQ(arraysForNetwork(net, cfg), expected);
    EXPECT_GT(expected, 0);
}

TEST(WsMapping, Vgg16NeedsMoreArraysThanChipHolds)
{
    // 138 M weights x 8 bit-columns >> 16128 crossbars' capacity --
    // the weight-reload condition the engine models.
    const auto cfg = arch::paperBaseline();
    EXPECT_GT(arraysForNetwork(nn::vgg16(), cfg),
              cfg.org.totalSubarrays());
    // MobileNetV2's 3 M weights fit comfortably... in array COUNT
    // terms depthwise fragmentation still wastes arrays, so compare
    // capacity in cells instead.
    EXPECT_LT(double(nn::mobilenetV2().totalWeights()) * 8.0,
              double(cfg.totalCells()));
}

TEST(WsMapping, SmallerArraysMeanMoreTiles)
{
    auto cfg = arch::paperBaseline();
    const auto big = mapLayer(convLayer(128, 14, 128, 3), cfg);
    cfg.subarraySize = 64;
    const auto small = mapLayer(convLayer(128, 14, 128, 3), cfg);
    EXPECT_GT(small.arrays(), big.arrays());
}

TEST(WsMappingDeath, NonConvPanics)
{
    const auto cfg = arch::paperBaseline();
    nn::LayerDesc pool;
    pool.kind = nn::LayerKind::MaxPool;
    pool.name = "pool";
    EXPECT_DEATH(mapLayer(pool, cfg), "non-conv");
}

} // namespace
} // namespace baseline
} // namespace inca
