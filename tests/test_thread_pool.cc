/**
 * @file
 * ThreadPool semantics tests: exactly-once index coverage, nested
 * submission (no deadlock -- inner loops run inline on the worker),
 * exception propagation to the submitting thread, pool reusability
 * after a throw, and an end-to-end check that a full Trainer run is
 * bit-identical at 1 and 4 lanes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"

namespace inca {
namespace {

class ThreadPoolTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(1); }
};

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool::setGlobalThreads(threads);
        const std::int64_t n = 10007; // prime: uneven chunking
        std::vector<std::atomic<int>> hits(n);
        parallel_for(n, 7, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                hits[size_t(i)].fetch_add(1,
                                          std::memory_order_relaxed);
        });
        for (std::int64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[size_t(i)].load(), 1) << "index " << i;
    }
}

TEST_F(ThreadPoolTest, PerIndexVariantCoversEveryIndexOnce)
{
    ThreadPool::setGlobalThreads(8);
    const std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for_each(n, 16, [&](std::int64_t i) {
        hits[size_t(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[size_t(i)].load(), 1) << "index " << i;
}

TEST_F(ThreadPoolTest, EmptyAndTinyRangesAreSafe)
{
    ThreadPool::setGlobalThreads(4);
    int calls = 0;
    parallel_for(0, 16, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::int64_t seen = -1;
    parallel_for(1, 16, [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 1);
        seen = lo;
    });
    EXPECT_EQ(seen, 0);
}

TEST_F(ThreadPoolTest, NestedSubmissionDoesNotDeadlock)
{
    ThreadPool::setGlobalThreads(4);
    const std::int64_t outer = 64, inner = 500;
    std::vector<std::int64_t> sums(outer, 0);
    parallel_for(outer, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t o = lo; o < hi; ++o) {
            // Inner loop runs inline on this worker: the fixed-size
            // pool can never starve itself.
            std::int64_t acc = 0;
            parallel_for(inner, 50,
                         [&](std::int64_t ilo, std::int64_t ihi) {
                             for (std::int64_t i = ilo; i < ihi; ++i)
                                 acc += i;
                         });
            sums[size_t(o)] = acc;
        }
    });
    const std::int64_t expect = inner * (inner - 1) / 2;
    for (std::int64_t o = 0; o < outer; ++o)
        ASSERT_EQ(sums[size_t(o)], expect) << "outer " << o;
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToSubmitter)
{
    for (int threads : {1, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool::setGlobalThreads(threads);
        EXPECT_THROW(
            parallel_for(1000, 4,
                         [&](std::int64_t lo, std::int64_t hi) {
                             for (std::int64_t i = lo; i < hi; ++i)
                                 if (i == 537)
                                     throw std::runtime_error("boom");
                         }),
            std::runtime_error);

        // The pool must stay usable after a throw.
        std::atomic<std::int64_t> count{0};
        parallel_for(1000, 4, [&](std::int64_t lo, std::int64_t hi) {
            count.fetch_add(hi - lo, std::memory_order_relaxed);
        });
        EXPECT_EQ(count.load(), 1000);
    }
}

TEST_F(ThreadPoolTest, ThreadCountClampsAndReports)
{
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1);
    ThreadPool::setGlobalThreads(0); // clamped up
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1);
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 3);
}

nn::DatasetPair
tinyTask()
{
    nn::SyntheticSpec spec;
    spec.numClasses = 3;
    spec.size = 8;
    spec.trainPerClass = 8;
    spec.testPerClass = 4;
    return nn::makeSynthetic(spec);
}

std::unique_ptr<nn::Sequential>
tinyNet(std::uint64_t seed)
{
    Rng rng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng)
        .emplace<nn::ReLU>()
        .emplace<nn::MaxPool2d>(2)
        .emplace<nn::Flatten>()
        .emplace<nn::Linear>(4 * 4 * 4, 3, rng);
    return net;
}

/**
 * End-to-end determinism: an identical Trainer run (same seeds, same
 * data) must produce bit-identical losses and accuracies whether the
 * tensor ops run on 1 lane or 4 -- the software analogue of the
 * paper's claim that the dataflow does not change the math.
 */
TEST_F(ThreadPoolTest, TrainerIsBitIdenticalAcrossThreadCounts)
{
    const auto data = tinyTask();
    nn::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 4;
    cfg.lr = 0.05f;

    ThreadPool::setGlobalThreads(1);
    auto netSerial = tinyNet(99);
    const auto serial = nn::train(*netSerial, data, cfg);

    ThreadPool::setGlobalThreads(4);
    auto netParallel = tinyNet(99);
    const auto parallel = nn::train(*netParallel, data, cfg);

    ASSERT_EQ(serial.epochLoss.size(), parallel.epochLoss.size());
    for (size_t e = 0; e < serial.epochLoss.size(); ++e) {
        EXPECT_EQ(serial.epochLoss[e], parallel.epochLoss[e])
            << "epoch " << e;
        EXPECT_EQ(serial.epochTestAccuracy[e],
                  parallel.epochTestAccuracy[e])
            << "epoch " << e;
    }
    EXPECT_EQ(serial.finalTestAccuracy, parallel.finalTestAccuracy);
}

} // namespace
} // namespace inca
