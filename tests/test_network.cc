/**
 * @file
 * Network description and model-zoo tests: layer shapes, parameter
 * counts against published numbers, builder shape tracking.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "nn/network.hh"

namespace inca {
namespace nn {
namespace {

TEST(LayerDesc, WeightAndMacCounts)
{
    LayerDesc l;
    l.kind = LayerKind::Conv;
    l.inC = 64;
    l.inH = l.inW = 56;
    l.outC = 128;
    l.outH = l.outW = 56;
    l.kh = l.kw = 3;
    EXPECT_EQ(l.weightCount(), 9 * 64 * 128);
    EXPECT_EQ(l.accumDepth(), 9 * 64);
    EXPECT_EQ(l.macs(), 9LL * 64 * 128 * 56 * 56);
    EXPECT_EQ(l.inputCount(), 64LL * 56 * 56);
    EXPECT_EQ(l.outputCount(), 128LL * 56 * 56);
    EXPECT_TRUE(l.isConvLike());
    EXPECT_FALSE(l.isLight());
}

TEST(LayerDesc, DepthwiseDoesNotAccumulateChannels)
{
    LayerDesc l;
    l.kind = LayerKind::Depthwise;
    l.inC = l.outC = 32;
    l.inH = l.inW = l.outH = l.outW = 14;
    l.kh = l.kw = 3;
    EXPECT_EQ(l.weightCount(), 9 * 32);
    EXPECT_EQ(l.accumDepth(), 9);
    EXPECT_EQ(l.macs(), 9LL * 32 * 14 * 14);
    EXPECT_TRUE(l.isLight());
}

TEST(LayerDesc, NonConvHasNoWeights)
{
    LayerDesc l;
    l.kind = LayerKind::MaxPool;
    l.inC = l.outC = 64;
    l.kh = l.kw = 2;
    EXPECT_EQ(l.weightCount(), 0);
    EXPECT_EQ(l.macs(), 0);
    EXPECT_FALSE(l.isConvLike());
}

TEST(NetBuilder, TracksShapes)
{
    NetBuilder b("t", 3, 32, 32);
    b.conv(16, 3, 1, 1);
    EXPECT_EQ(b.channels(), 16);
    EXPECT_EQ(b.height(), 32);
    b.maxpool(2);
    EXPECT_EQ(b.height(), 16);
    b.conv(32, 3, 2, 1);
    EXPECT_EQ(b.height(), 8);
    b.gavgpool();
    EXPECT_EQ(b.height(), 1);
    b.fc(10);
    EXPECT_EQ(b.channels(), 10);
    auto net = b.build(10);
    EXPECT_EQ(net.numClasses, 10);
    EXPECT_EQ(net.layers.size(), 5u);
}

TEST(NetBuilder, FcFlattensInput)
{
    NetBuilder b("t", 8, 4, 4);
    b.fc(10);
    auto net = b.build(10);
    EXPECT_EQ(net.layers[0].inC, 8 * 4 * 4);
    EXPECT_EQ(net.layers[0].weightCount(), 128 * 10);
}

TEST(NetBuilder, SideConvDoesNotChangeMainPath)
{
    NetBuilder b("t", 64, 56, 56);
    b.conv(128, 3, 2, 1);
    b.sideConv(64, 56, 56, 128, 1, 2);
    EXPECT_EQ(b.channels(), 128);
    EXPECT_EQ(b.height(), 28);
    auto net = b.build(10);
    EXPECT_EQ(net.layers[1].inC, 64);
    EXPECT_EQ(net.layers[1].outH, 28);
}

TEST(ModelZoo, Vgg16MatchesPublishedParameterCount)
{
    auto net = vgg16();
    // ~138.36 M parameters (conv + FC, no biases modelled).
    EXPECT_NEAR(double(net.totalWeights()), 138.34e6, 0.5e6);
    // The paper's Limitation-2 example: 553 MB at 32-bit (decimal MB).
    EXPECT_NEAR(double(net.totalWeights()) * 4.0 / 1e6, 553.0, 5.0);
    EXPECT_FALSE(net.isLightModel());
}

TEST(ModelZoo, Vgg16HasThirteenConvsAndThreeFcs)
{
    auto net = vgg16();
    int convs = 0, fcs = 0;
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::Conv)
            ++convs;
        if (l.kind == LayerKind::FullyConnected)
            ++fcs;
    }
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(fcs, 3);
}

TEST(ModelZoo, Vgg19HasSixteenConvs)
{
    auto net = vgg19();
    int convs = 0;
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::Conv)
            ++convs;
    }
    EXPECT_EQ(convs, 16);
    EXPECT_GT(net.totalWeights(), vgg16().totalWeights());
}

TEST(ModelZoo, Lenet5MatchesPaperFootprint)
{
    auto net = lenet5();
    // The paper: "weights of LeNet5 occupy 240KB" in a 32-bit system.
    const double kb = double(net.totalWeights()) * 4.0 / 1024.0;
    EXPECT_NEAR(kb, 240.0, 10.0);
}

TEST(ModelZoo, Resnet18ParameterCount)
{
    auto net = resnet18();
    // torchvision resnet18: 11.69 M params incl. biases/bn; our conv
    // weights land near 11.2 M.
    EXPECT_NEAR(double(net.totalWeights()), 11.2e6, 0.6e6);
}

TEST(ModelZoo, Resnet50ParameterCount)
{
    auto net = resnet50();
    EXPECT_NEAR(double(net.totalWeights()), 25.0e6, 2.0e6);
}

TEST(ModelZoo, MobileNetV2IsLight)
{
    auto net = mobilenetV2();
    EXPECT_TRUE(net.isLightModel());
    // ~3.4 M params in the original paper (with BN); conv-only lands
    // near 3 M.
    EXPECT_NEAR(double(net.totalWeights()), 3.2e6, 0.8e6);
}

TEST(ModelZoo, MnasnetIsLight)
{
    auto net = mnasnet();
    EXPECT_TRUE(net.isLightModel());
    EXPECT_NEAR(double(net.totalWeights()), 4.0e6, 1.5e6);
}

TEST(ModelZoo, ImagenetShapesChainCorrectly)
{
    for (const auto &net : evaluationSuite()) {
        const LayerDesc *prev = nullptr;
        for (const auto &l : net.layers) {
            if (prev != nullptr && l.kind != LayerKind::FullyConnected &&
                l.name.rfind("sideconv", 0) != 0 &&
                prev->name.rfind("sideconv", 0) != 0) {
                EXPECT_EQ(l.inC, prev->outC)
                    << net.name << " " << l.name;
                EXPECT_EQ(l.inH, prev->outH)
                    << net.name << " " << l.name;
            }
            prev = &l;
        }
    }
}

TEST(ModelZoo, CifarVariantsShrink)
{
    auto big = vgg16();
    auto small = vgg16(cifarInput());
    EXPECT_LT(small.totalMacs(), big.totalMacs());
    EXPECT_EQ(small.numClasses, 10);
    // CIFAR VGG16 conv stack ends at 1x1 spatial.
    bool sawFc = false;
    for (const auto &l : small.layers) {
        if (l.kind == LayerKind::FullyConnected) {
            if (!sawFc) {
                EXPECT_EQ(l.inC, 512);
            }
            sawFc = true;
        }
    }
    EXPECT_TRUE(sawFc);
}

TEST(ModelZoo, EvaluationSuiteOrder)
{
    auto suite = evaluationSuite();
    ASSERT_EQ(suite.size(), 6u);
    EXPECT_EQ(suite[0].name, "vgg16");
    EXPECT_EQ(suite[1].name, "vgg19");
    EXPECT_EQ(suite[2].name, "resnet18");
    EXPECT_EQ(suite[3].name, "resnet50");
    EXPECT_EQ(suite[4].name, "mobilenetv2");
    EXPECT_EQ(suite[5].name, "mnasnet");
}

TEST(ModelZoo, ByNameRoundTrip)
{
    EXPECT_EQ(byName("vgg16").name, "vgg16");
    EXPECT_EQ(byName("mnasnet").name, "mnasnet");
    EXPECT_EQ(byName("lenet5").name, "lenet5");
}

TEST(ModelZoo, ResNet18TotalActivations)
{
    auto net = resnet18();
    // Table IV: ResNet18 activations occupy ~2.08 MiB at 8 bit.
    EXPECT_NEAR(double(net.totalActivations()) / 1.048576e6, 2.08,
                0.25);
}


TEST(ModelZoo, Vgg8CifarShape)
{
    auto net = nn::vgg8();
    int convs = 0, fcs = 0;
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::Conv)
            ++convs;
        if (l.kind == LayerKind::FullyConnected)
            ++fcs;
    }
    EXPECT_EQ(convs, 6);
    EXPECT_EQ(fcs, 2);
    EXPECT_EQ(net.numClasses, 10);
    // Conv stack ends at 4x4 spatial on 32x32 inputs.
    EXPECT_EQ(net.convLayers().back().inC, 1024);
    EXPECT_EQ(nn::byName("vgg8").name, "vgg8");
}

TEST(NetworkDesc, StrMentionsEveryLayer)
{
    auto net = lenet5();
    const std::string s = net.str();
    for (const auto &l : net.layers)
        EXPECT_NE(s.find(l.name), std::string::npos);
}

} // namespace
} // namespace nn
} // namespace inca
