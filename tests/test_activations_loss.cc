/**
 * @file
 * Tests for the paper's alternative activation functions (sigmoid /
 * tanh, Section II-B) and the L2 loss of Eq. 3.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "common/random.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"
#include "tensor/ops.hh"

namespace inca {
namespace tensor {
namespace {

Tensor
numericalGrad(Tensor &x, const std::function<double()> &f,
              float eps = 1e-3f)
{
    Tensor g(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double plus = f();
        x[i] = orig - eps;
        const double minus = f();
        x[i] = orig;
        g[i] = float((plus - minus) / (2.0 * eps));
    }
    return g;
}

TEST(Sigmoid, RangeAndFixedPoints)
{
    Tensor x({3}, {-100.0f, 0.0f, 100.0f});
    Tensor y = sigmoid(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6f);
    EXPECT_FLOAT_EQ(y[1], 0.5f);
    EXPECT_NEAR(y[2], 1.0f, 1e-6f);
}

TEST(Sigmoid, GradMatchesNumerical)
{
    Rng rng(1);
    Tensor x = Tensor::randn({16}, rng);
    Tensor y = sigmoid(x);
    Tensor coeff = Tensor::randn({16}, rng);
    Tensor analytic = sigmoidGrad(coeff, y);
    Tensor numeric = numericalGrad(x, [&] {
        const Tensor p = sigmoid(x);
        double s = 0.0;
        for (std::int64_t i = 0; i < p.size(); ++i)
            s += double(p[i]) * double(coeff[i]);
        return s;
    });
    EXPECT_TRUE(analytic.allClose(numeric, 1e-2f));
}

TEST(TanhAct, RangeAndOddness)
{
    Tensor x({3}, {-2.0f, 0.0f, 2.0f});
    Tensor y = tanhAct(x);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_NEAR(y[0], -y[2], 1e-6f);
    EXPECT_NEAR(y[2], std::tanh(2.0), 1e-6);
}

TEST(TanhAct, GradMatchesNumerical)
{
    Rng rng(2);
    Tensor x = Tensor::randn({16}, rng);
    Tensor y = tanhAct(x);
    Tensor coeff = Tensor::randn({16}, rng);
    Tensor analytic = tanhGrad(coeff, y);
    Tensor numeric = numericalGrad(x, [&] {
        const Tensor p = tanhAct(x);
        double s = 0.0;
        for (std::int64_t i = 0; i < p.size(); ++i)
            s += double(p[i]) * double(coeff[i]);
        return s;
    });
    EXPECT_TRUE(analytic.allClose(numeric, 1e-2f));
}

TEST(L2Loss, PerfectPredictionIsZero)
{
    Tensor outputs({2, 3});
    outputs.at(0, 1) = 1.0f;
    outputs.at(1, 0) = 1.0f;
    const auto res = l2Loss(outputs, {1, 0});
    EXPECT_NEAR(res.loss, 0.0, 1e-9);
    EXPECT_NEAR(res.grad.absMax(), 0.0f, 1e-9f);
}

TEST(L2Loss, GradIsPredMinusTarget)
{
    // Eq. 3: delta_L = y_target - y_pred (we keep the gradient-descent
    // sign: d loss / d output = y_pred - y_target, scaled by 1/N).
    Tensor outputs({1, 2}, {0.8f, 0.3f});
    const auto res = l2Loss(outputs, {0});
    EXPECT_NEAR(res.grad.at(0, 0), 0.8f - 1.0f, 1e-6f);
    EXPECT_NEAR(res.grad.at(0, 1), 0.3f - 0.0f, 1e-6f);
}

TEST(L2Loss, GradMatchesNumerical)
{
    Rng rng(3);
    Tensor outputs = Tensor::randn({3, 4}, rng);
    const std::vector<int> labels{2, 0, 3};
    const auto res = l2Loss(outputs, labels);
    Tensor numeric = numericalGrad(
        outputs, [&] { return l2Loss(outputs, labels).loss; }, 1e-2f);
    EXPECT_TRUE(res.grad.allClose(numeric, 1e-2f));
}

TEST(L2LossDeath, LabelRangeChecked)
{
    Tensor outputs({1, 2});
    EXPECT_DEATH(l2Loss(outputs, {5}), "label");
}

} // namespace
} // namespace tensor

namespace nn {
namespace {

using tensor::Tensor;

TEST(SigmoidModule, BackwardMatchesOpGrad)
{
    Rng rng(4);
    Sigmoid mod;
    Tensor x = Tensor::randn({2, 8}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = mod.forward(x, ctx);
    Tensor dy = Tensor::randn(y.shape(), rng);
    Tensor dx = mod.backward(dy);
    EXPECT_TRUE(dx.allClose(tensor::sigmoidGrad(dy, y), 1e-6f));
}

TEST(TanhModule, BackwardMatchesOpGrad)
{
    Rng rng(5);
    Tanh mod;
    Tensor x = Tensor::randn({2, 8}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = mod.forward(x, ctx);
    Tensor dy = Tensor::randn(y.shape(), rng);
    Tensor dx = mod.backward(dy);
    EXPECT_TRUE(dx.allClose(tensor::tanhGrad(dy, y), 1e-6f));
}

TEST(AlternativeActivations, TanhNetworkTrains)
{
    // Section II-B lists tanh as an activation choice; a tanh CNN
    // must still learn the synthetic task.
    setQuiet(true);
    SyntheticSpec spec;
    spec.numClasses = 3;
    spec.channels = 1;
    spec.size = 8;
    spec.trainPerClass = 24;
    spec.testPerClass = 12;
    spec.seed = 5;
    auto data = makeSynthetic(spec);

    Rng rng(6);
    Sequential net;
    net.emplace<Conv2d>(1, 6, 3, 1, 1, rng);
    net.emplace<Tanh>();
    net.emplace<MaxPool2d>(2);
    net.emplace<Flatten>();
    net.emplace<Linear>(6 * 4 * 4, 3, rng);

    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    const auto result = train(net, data, cfg);
    EXPECT_GE(result.finalTestAccuracy, 0.8);
}

} // namespace
} // namespace nn
} // namespace inca
