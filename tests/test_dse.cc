/**
 * @file
 * Design-space exploration subsystem tests: RNG and strategy
 * determinism, space indexing, Pareto dominance, constraint
 * filtering, journal round-trip/resume, thread-count invariance of
 * the frontier, and JSON lint of every machine-readable artifact.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/pareto.hh"
#include "json_lint.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace dse {
namespace {

// ---------------------------------------------------------------
// SplitMix64

TEST(SplitMix64, DeterministicStream)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiverge)
{
    SplitMix64 a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 8; ++i)
        differ = differ || a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(SplitMix64, UniformInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(SplitMix64, BelowInRange)
{
    SplitMix64 rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(SplitMix64, SplitIsIndependent)
{
    SplitMix64 root(5);
    SplitMix64 child = root.split();
    // The child stream is not a shifted copy of the parent's.
    SplitMix64 rootCopy(5);
    rootCopy.next(); // account for the split() draw
    EXPECT_NE(child.next(), rootCopy.next());
}

// ---------------------------------------------------------------
// SearchSpace

SearchSpace
tinySpace()
{
    SearchSpace space;
    space.axis("plane", {8, 16});
    space.axis("adc_bits", {3, 4, 6});
    return space;
}

TEST(SearchSpace, SizeIsCrossProduct)
{
    EXPECT_EQ(tinySpace().size(), 6u);
}

TEST(SearchSpace, IndexRoundTrip)
{
    const SearchSpace space = tinySpace();
    for (std::uint64_t i = 0; i < space.size(); ++i) {
        const Candidate c = space.candidate(i);
        EXPECT_EQ(c.index, i);
        std::vector<std::size_t> valueIndices;
        for (std::size_t a = 0; a < space.numAxes(); ++a) {
            const auto &vals = space.axes()[a].values;
            const auto it = std::find(vals.begin(), vals.end(),
                                      c.values[a]);
            ASSERT_NE(it, vals.end());
            valueIndices.push_back(
                std::size_t(it - vals.begin()));
        }
        EXPECT_EQ(space.flatIndex(valueIndices), i);
    }
}

TEST(SearchSpace, FirstAxisFastest)
{
    const SearchSpace space = tinySpace();
    EXPECT_EQ(space.candidate(0).values,
              (std::vector<std::int64_t>{8, 3}));
    EXPECT_EQ(space.candidate(1).values,
              (std::vector<std::int64_t>{16, 3}));
    EXPECT_EQ(space.candidate(2).values,
              (std::vector<std::int64_t>{8, 4}));
}

TEST(SearchSpace, ValueWithFallback)
{
    const SearchSpace space = tinySpace();
    const Candidate c = space.candidate(3);
    EXPECT_EQ(space.value(c, "plane", -1), 16);
    EXPECT_EQ(space.value(c, "absent", 99), 99);
}

TEST(SearchSpace, NeighborsAreOneStepMoves)
{
    const SearchSpace space = tinySpace();
    // Candidate 0 is (plane=8, adc=3): neighbors are plane+1 step
    // (index 1) and adc+1 step (index 2).
    const auto n0 = space.neighbors(0);
    EXPECT_EQ(n0, (std::vector<std::uint64_t>{1, 2}));
    // Candidate 3 is (16, 4): plane-1 -> 2, adc-1 -> 1, adc+1 -> 5.
    const auto n3 = space.neighbors(3);
    EXPECT_EQ(n3, (std::vector<std::uint64_t>{2, 1, 5}));
}

TEST(SearchSpace, IsoCapacityRescalesTiles)
{
    SearchSpace space;
    space.axis("plane", {8});
    const arch::IncaConfig base = arch::paperInca();
    const arch::IncaConfig cfg = materializeInca(
        space, space.candidate(0), base, /*isoCapacity=*/true);
    EXPECT_EQ(cfg.subarraySize, 8);
    // Hand-check the exact arithmetic design_space historically used.
    arch::IncaConfig manual = base;
    const std::int64_t cellsBefore = manual.totalCells();
    manual.subarraySize = 8;
    const double scale =
        double(cellsBefore) / double(manual.totalCells());
    manual.org.numTiles =
        std::max(1, int(manual.org.numTiles * scale + 0.5));
    EXPECT_EQ(cfg.org.numTiles, manual.org.numTiles);
}

TEST(SearchSpaceDeath, UnknownAxisIsFatal)
{
    SearchSpace space;
    space.axis("no_such_axis", {1});
    EXPECT_DEATH(materializeInca(space, space.candidate(0),
                                 arch::paperInca(), false),
                 "axis");
}

TEST(Space, MaxConvWindowSkipsStemConv)
{
    // ResNet18's 7x7 stem conv goes through the digital input path;
    // the ADC bound is over the 3x3 body -- the paper's "9 > 7".
    EXPECT_EQ(maxConvWindow(nn::resnet18()), 9);
}

// ---------------------------------------------------------------
// Pareto

Evaluation
point(std::uint64_t index, std::vector<double> objectives)
{
    Evaluation e;
    e.candidate.index = index;
    e.feasible = true;
    e.scored = true;
    e.objectives = std::move(objectives);
    return e;
}

TEST(Pareto, DominatesHandCases)
{
    EXPECT_TRUE(dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(dominates({1, 2}, {1, 3}));
    EXPECT_FALSE(dominates({1, 3}, {3, 1})); // incomparable
    EXPECT_FALSE(dominates({1, 1}, {1, 1})); // equal: no strict win
}

TEST(Pareto, InsertEvictsDominated)
{
    ParetoFrontier f(2);
    EXPECT_TRUE(f.insert(point(0, {2, 2})));
    EXPECT_TRUE(f.insert(point(1, {1, 3}))); // incomparable
    EXPECT_TRUE(f.insert(point(2, {1, 1}))); // dominates both
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.points()[0].candidate.index, 2u);
    EXPECT_FALSE(f.insert(point(3, {1, 2}))); // dominated
}

TEST(Pareto, EqualVectorsBothKept)
{
    ParetoFrontier f(2);
    EXPECT_TRUE(f.insert(point(0, {1, 2})));
    EXPECT_TRUE(f.insert(point(1, {1, 2})));
    EXPECT_EQ(f.size(), 2u);
}

TEST(Pareto, RevisitedCandidateNotDuplicated)
{
    ParetoFrontier f(2);
    EXPECT_TRUE(f.insert(point(7, {1, 2})));
    EXPECT_FALSE(f.insert(point(7, {1, 2})));
    EXPECT_EQ(f.size(), 1u);
}

TEST(Pareto, InsertionOrderIndependent)
{
    std::vector<Evaluation> pts = {
        point(0, {5, 1}), point(1, {1, 5}), point(2, {3, 3}),
        point(3, {4, 4}), // dominated by 2
        point(4, {2, 4}),
    };
    std::vector<std::size_t> order = {0, 1, 2, 3, 4};
    std::vector<std::uint64_t> reference;
    do {
        ParetoFrontier f(2);
        for (const std::size_t i : order)
            f.insert(pts[i]);
        std::vector<std::uint64_t> got;
        for (const auto &e : f.sorted())
            got.push_back(e.candidate.index);
        if (reference.empty())
            reference = got;
        EXPECT_EQ(got, reference);
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_EQ(reference,
              (std::vector<std::uint64_t>{0, 1, 2, 4}));
}

// ---------------------------------------------------------------
// Constraints

TEST(Constraints, ParseAndPrint)
{
    Constraints c;
    EXPECT_TRUE(c.empty());
    c.set("max_area_mm2=450");
    c.set("lossless_adc=1");
    EXPECT_FALSE(c.empty());
    EXPECT_DOUBLE_EQ(c.maxAreaMm2, 450.0);
    EXPECT_TRUE(c.losslessAdc);
    EXPECT_EQ(c.str(), "max_area_mm2=450,lossless_adc=1");
}

TEST(ConstraintsDeath, UnknownKeyIsFatal)
{
    Constraints c;
    EXPECT_DEATH(c.set("max_teapots=7"), "unknown constraint");
}

TEST(Constraints, RejectionNamesTheBound)
{
    Constraints c;
    c.set("max_area_mm2=1");
    Evaluation e;
    e.areaM2 = 5e-6; // 5 mm^2
    const auto check =
        checkConstraints(c, e, EngineKind::Inca, 4, 9);
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.reason.find("max_area_mm2"), std::string::npos);
    EXPECT_NE(check.reason.find("5"), std::string::npos);
}

TEST(Constraints, LosslessAdcOnlyBindsInca)
{
    Constraints c;
    c.set("lossless_adc=1");
    Evaluation e;
    // 3-bit ADC vs a 3x3 window: 7 < 9 clips under IS...
    EXPECT_FALSE(
        checkConstraints(c, e, EngineKind::Inca, 3, 9).ok);
    // ...but the WS pipeline shift-adds partial sums: no bound.
    EXPECT_TRUE(checkConstraints(c, e, EngineKind::Ws, 3, 9).ok);
    // 4 bits (15 levels) cover the window.
    EXPECT_TRUE(checkConstraints(c, e, EngineKind::Inca, 4, 9).ok);
}

TEST(Objectives, AccuracyProxyMonotoneInBits)
{
    double prev = -1.0;
    for (const int bits : {2, 3, 4, 6, 8}) {
        const double a =
            accuracyProxy(EngineKind::Inca, bits, 9, 0.05);
        EXPECT_GE(a, prev);
        prev = a;
    }
}

TEST(Objectives, AccuracyProxyNoiseHurtsWsMore)
{
    const double ws = accuracyProxy(EngineKind::Ws, 8, 9, 0.05);
    const double is = accuracyProxy(EngineKind::Inca, 8, 9, 0.05);
    EXPECT_LT(ws, is);
    // Calibration sanity: roughly Table VI's shape at sigma 0.05.
    EXPECT_NEAR(is, 0.914, 0.01);
    EXPECT_NEAR(ws, 0.28, 0.01);
}

TEST(Objectives, OrientNegatesMaximized)
{
    Evaluation e;
    e.energyJ = 2.0;
    e.utilization = 0.5;
    orientObjectives(
        e, {Objective::Energy, Objective::Utilization});
    EXPECT_EQ(e.objectives,
              (std::vector<double>{2.0, -0.5}));
}

// ---------------------------------------------------------------
// Strategies

std::vector<std::uint64_t>
drain(Strategy &s, std::size_t batch)
{
    std::vector<std::uint64_t> all;
    while (true) {
        const auto wave = s.nextBatch(batch);
        if (wave.empty())
            break;
        all.insert(all.end(), wave.begin(), wave.end());
        // Grid/Random ignore feedback; keep observe() exercised.
        std::vector<Evaluation> evals;
        for (const std::uint64_t idx : wave)
            evals.push_back(point(idx, {1, 1}));
        s.observe(evals);
    }
    return all;
}

TEST(Strategy, GridCoversInOrder)
{
    const SearchSpace space = tinySpace();
    const auto s =
        makeStrategy(StrategyKind::Grid, space, 1, {});
    const auto all = drain(*s, 4);
    ASSERT_EQ(all.size(), space.size());
    for (std::uint64_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i);
}

TEST(Strategy, RandomIsAPermutation)
{
    const SearchSpace space = tinySpace();
    const auto s =
        makeStrategy(StrategyKind::Random, space, 3, {});
    const auto all = drain(*s, 4);
    EXPECT_EQ(all.size(), space.size());
    EXPECT_EQ(std::set<std::uint64_t>(all.begin(), all.end()).size(),
              space.size());
    // Seeded: same seed, same order; different seed, likely not.
    const auto s2 =
        makeStrategy(StrategyKind::Random, space, 3, {});
    EXPECT_EQ(drain(*s2, 4), all);
}

TEST(Strategy, AnnealIsDeterministic)
{
    SearchSpace space;
    space.axis("plane", {8, 16, 32, 64});
    space.axis("adc_bits", {3, 4, 6, 8});
    const std::vector<Objective> objs = {Objective::Energy};
    std::vector<std::uint64_t> streams[2];
    for (auto &stream : streams) {
        const auto s =
            makeStrategy(StrategyKind::Anneal, space, 11, objs);
        for (int round = 0; round < 10; ++round) {
            const auto wave = s->nextBatch(8);
            ASSERT_FALSE(wave.empty());
            stream.insert(stream.end(), wave.begin(), wave.end());
            std::vector<Evaluation> evals;
            for (const std::uint64_t idx : wave)
                // Synthetic score: prefer small indices.
                evals.push_back(point(idx, {double(idx) + 1.0}));
            s->observe(evals);
        }
    }
    EXPECT_EQ(streams[0], streams[1]);
    for (const std::uint64_t idx : streams[0])
        EXPECT_LT(idx, space.size());
}

// ---------------------------------------------------------------
// Journal

TEST(Journal, EvalLineRoundTrips)
{
    Evaluation e;
    e.candidate.index = 17;
    e.feasible = false;
    e.scored = true;
    e.rejectedBy = "max_area_mm2 (612.4 > 450)";
    e.areaM2 = 6.124e-4;
    e.idlePowerW = 1.0 / 3.0;
    e.utilization = 0.7;
    e.accuracy = 0.91;
    e.energyJ = 0.0841234567890123456;
    e.latencyS = 3.8e-2;
    e.configKeyHash = 0xdeadbeefcafef00dULL;
    e.timedLatencyS = 2.9e-2;
    e.bottleneckUnit = "array";
    e.criticalShare = 0.99726432101234567;
    e.objectives = {0.0841234567890123456, 3.8e-2};

    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/dse_roundtrip.jsonl";
    JournalHeader header;
    header.signature = "sig";
    header.spaceSize = 42;
    {
        JournalWriter w;
        w.open(path, header, /*append=*/false);
        w.append(e);
    }
    JournalContents contents;
    ASSERT_TRUE(readJournal(path, contents));
    EXPECT_EQ(contents.header.signature, "sig");
    EXPECT_EQ(contents.header.spaceSize, 42u);
    EXPECT_FALSE(contents.truncatedTail);
    ASSERT_EQ(contents.evals.count(17), 1u);
    const Evaluation &r = contents.evals.at(17);
    EXPECT_EQ(r.feasible, e.feasible);
    EXPECT_EQ(r.scored, e.scored);
    EXPECT_EQ(r.rejectedBy, e.rejectedBy);
    // Bit-exact doubles (the %.17g invariant resume depends on).
    EXPECT_EQ(r.areaM2, e.areaM2);
    EXPECT_EQ(r.idlePowerW, e.idlePowerW);
    EXPECT_EQ(r.energyJ, e.energyJ);
    EXPECT_EQ(r.latencyS, e.latencyS);
    EXPECT_EQ(r.configKeyHash, e.configKeyHash);
    EXPECT_EQ(r.timedLatencyS, e.timedLatencyS);
    EXPECT_EQ(r.bottleneckUnit, e.bottleneckUnit);
    EXPECT_EQ(r.criticalShare, e.criticalShare);
    EXPECT_EQ(r.objectives, e.objectives);
    std::remove(path.c_str());
}

TEST(Journal, LinesAreValidJson)
{
    JournalHeader header;
    header.signature = "with \"quotes\" and \\slashes";
    header.spaceSize = 7;
    EXPECT_TRUE(testutil::JsonLint(header.toJsonLine()).valid());

    Evaluation e;
    e.candidate.index = 3;
    e.rejectedBy = "min_accuracy (0.1 < 0.9)";
    e.objectives = {1.5, 2.5, 3.5};
    EXPECT_TRUE(testutil::JsonLint(evalToJsonLine(e)).valid());
}

TEST(Journal, TornTailTolerated)
{
    const std::string path =
        ::testing::TempDir() + "/dse_torn.jsonl";
    JournalHeader header;
    header.signature = "sig";
    header.spaceSize = 2;
    {
        JournalWriter w;
        w.open(path, header, false);
        w.append(point(0, {1.0}));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"type\":\"eval\",\"index\":1,\"feasib";
    }
    JournalContents contents;
    ASSERT_TRUE(readJournal(path, contents));
    EXPECT_TRUE(contents.truncatedTail);
    EXPECT_EQ(contents.evals.size(), 1u);
    EXPECT_EQ(contents.evals.count(0), 1u);
    std::remove(path.c_str());
}

TEST(Journal, MissingFileReturnsFalse)
{
    JournalContents contents;
    EXPECT_FALSE(readJournal(
        ::testing::TempDir() + "/does_not_exist.jsonl", contents));
}

// ---------------------------------------------------------------
// Explorer end-to-end

SearchSpace
explorerSpace()
{
    SearchSpace space;
    space.axis("plane", {8, 16});
    space.axis("adc_bits", {4, 6});
    return space;
}

ExploreOptions
explorerOptions()
{
    ExploreOptions opt;
    opt.network = "lenet5";
    opt.strategy = StrategyKind::Grid;
    return opt;
}

TEST(Explorer, FrontierIdenticalAcrossThreadCounts)
{
    std::string reference;
    for (const int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        Explorer explorer(explorerSpace(), explorerOptions());
        const ExploreResult result = explorer.run();
        const std::string csv = frontierCsv(
            explorer.space(), result.frontier,
            explorer.options().objectives);
        if (reference.empty())
            reference = csv;
        EXPECT_EQ(csv, reference) << "at " << threads << " threads";
    }
    ThreadPool::setGlobalThreads(1);
}

TEST(Explorer, HardConstraintSkipsScoring)
{
    ExploreOptions opt = explorerOptions();
    opt.constraints.set("max_area_mm2=0.000001");
    Explorer explorer(explorerSpace(), opt);
    const ExploreResult result = explorer.run();
    EXPECT_EQ(result.scored, 0u);
    EXPECT_EQ(result.filtered, result.evaluations.size());
    EXPECT_TRUE(result.frontier.empty());
    for (const auto &e : result.evaluations) {
        EXPECT_FALSE(e.feasible);
        EXPECT_FALSE(e.scored);
        EXPECT_NE(e.rejectedBy.find("max_area_mm2"),
                  std::string::npos);
    }
}

TEST(Explorer, SoftConstraintStillScores)
{
    ExploreOptions opt = explorerOptions();
    opt.constraints.set("max_area_mm2=0.000001");
    opt.softConstraints = true;
    Explorer explorer(explorerSpace(), opt);
    const ExploreResult result = explorer.run();
    EXPECT_EQ(result.scored, result.evaluations.size());
    // Infeasible points never join the frontier, soft or not.
    EXPECT_TRUE(result.frontier.empty());
}

TEST(Explorer, BudgetBoundsEvaluations)
{
    ExploreOptions opt = explorerOptions();
    opt.budget = 3;
    Explorer explorer(explorerSpace(), opt);
    EXPECT_EQ(explorer.run().evaluations.size(), 3u);
}

TEST(Explorer, ResumeMatchesUninterrupted)
{
    const std::string dir = ::testing::TempDir();
    const std::string full = dir + "/dse_full.jsonl";
    const std::string torn = dir + "/dse_torn_run.jsonl";

    ExploreOptions opt = explorerOptions();
    opt.journalPath = full;
    Explorer uninterrupted(explorerSpace(), opt);
    const ExploreResult want = uninterrupted.run();
    const std::string wantCsv = frontierCsv(
        uninterrupted.space(), want.frontier, opt.objectives);

    // Simulate a kill: keep the header + 2 evals + a torn line.
    {
        std::ifstream in(full);
        std::ofstream out(torn);
        std::string line;
        for (int i = 0; i < 3 && std::getline(in, line); ++i)
            out << line << "\n";
        out << "{\"type\":\"eval\",\"index\":2,\"feas";
    }

    ExploreOptions resumeOpt = explorerOptions();
    resumeOpt.journalPath = torn;
    resumeOpt.resume = true;
    Explorer resumed(explorerSpace(), resumeOpt);
    const ExploreResult got = resumed.run();
    EXPECT_EQ(got.reused, 2u);
    EXPECT_EQ(got.scored, want.evaluations.size() - 2);
    EXPECT_EQ(frontierCsv(resumed.space(), got.frontier,
                          resumeOpt.objectives),
              wantCsv);

    // The torn journal is now complete: resuming again re-runs
    // nothing.
    Explorer replayed(explorerSpace(), resumeOpt);
    const ExploreResult replay = replayed.run();
    EXPECT_EQ(replay.scored, 0u);
    EXPECT_EQ(replay.reused, replay.evaluations.size());
    EXPECT_EQ(frontierCsv(replayed.space(), replay.frontier,
                          resumeOpt.objectives),
              wantCsv);

    std::remove(full.c_str());
    std::remove(torn.c_str());
}

TEST(ExplorerDeath, ForeignJournalIsFatal)
{
    const std::string path =
        ::testing::TempDir() + "/dse_foreign.jsonl";
    {
        ExploreOptions opt = explorerOptions();
        opt.journalPath = path;
        Explorer explorer(explorerSpace(), opt);
        explorer.run();
    }
    ExploreOptions other = explorerOptions();
    other.journalPath = path;
    other.resume = true;
    other.seed = 999; // different stream -> different signature
    Explorer explorer(explorerSpace(), other);
    EXPECT_DEATH(explorer.run(), "different run");
    std::remove(path.c_str());
}

TEST(ExplorerDeath, AnnealWithoutBudgetIsFatal)
{
    ExploreOptions opt = explorerOptions();
    opt.strategy = StrategyKind::Anneal;
    Explorer explorer(explorerSpace(), opt);
    EXPECT_DEATH(explorer.run(), "budget");
}

TEST(Explorer, AnnealFindsGridOptimumOnTinySpace)
{
    // On an exhaustively searchable space, annealing's frontier must
    // be a subset of the grid frontier (it can miss points, never
    // invent dominated ones).
    ExploreOptions gridOpt = explorerOptions();
    gridOpt.objectives = {Objective::Energy};
    Explorer grid(explorerSpace(), gridOpt);
    const auto gridBest = grid.run().frontier;
    ASSERT_EQ(gridBest.size(), 1u);

    ExploreOptions annealOpt = gridOpt;
    annealOpt.strategy = StrategyKind::Anneal;
    annealOpt.budget = 64; // plenty for a 4-point space
    Explorer anneal(explorerSpace(), annealOpt);
    const auto annealBest = anneal.run().frontier;
    ASSERT_EQ(annealBest.size(), 1u);
    EXPECT_EQ(annealBest[0].candidate.index,
              gridBest[0].candidate.index);
}

TEST(Explorer, FrontierJsonIsValid)
{
    Explorer explorer(explorerSpace(), explorerOptions());
    const ExploreResult result = explorer.run();
    const std::string json = frontierJson(explorer, result);
    EXPECT_TRUE(testutil::JsonLint(json).valid())
        << "error at " << testutil::JsonLint(json).errorPos();
    EXPECT_NE(json.find("\"dse.frontier\""), std::string::npos);
    EXPECT_NE(json.find("\"provenance\""), std::string::npos);
}

} // namespace
} // namespace dse
} // namespace inca
