/**
 * @file
 * Memory-substrate tests: bus word arithmetic, SRAM buffer energy,
 * and the Fig. 1b DRAM bandwidth-latency model.
 */

#include <gtest/gtest.h>

#include "memory/bus.hh"
#include "memory/dram.hh"
#include "memory/sram.hh"

namespace inca {
namespace memory {
namespace {

TEST(Bus, WordArithmetic)
{
    Bus bus; // 256-bit
    EXPECT_EQ(bus.words(0, 8), 0u);
    EXPECT_EQ(bus.words(32, 8), 1u);   // exactly one word
    EXPECT_EQ(bus.words(33, 8), 2u);
    EXPECT_EQ(bus.words(27, 16), 2u);  // 432 bits -> 2 words (Eq. 5)
    EXPECT_EQ(bus.words(27, 8), 1u);   // 216 bits -> 1 word
}

TEST(Bus, Eq5VggConv1Examples)
{
    // Paper Eq. 5 with K=3x3, C=3: ceil(27 * prec / 256).
    Bus bus;
    EXPECT_EQ(bus.words(9 * 64, 8), 18u);  // VGG conv2 at 8-bit
    EXPECT_EQ(bus.words(9 * 64, 16), 36u); // and at 16-bit
}

TEST(Sram, TableIIDefaults)
{
    const SramBuffer b = paperBuffer();
    EXPECT_DOUBLE_EQ(b.capacity, 65536.0);
    EXPECT_EQ(b.port.widthBits, 256);
}

TEST(Sram, EnergyLinearInWords)
{
    const SramBuffer b = paperBuffer();
    EXPECT_DOUBLE_EQ(b.readEnergy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(b.readEnergy(10.0), 10.0 * b.readWordEnergy());
    EXPECT_DOUBLE_EQ(b.writeEnergy(10.0), 10.0 * b.writeWordEnergy());
    EXPECT_GT(b.writeWordEnergy(), b.readWordEnergy());
}

TEST(Sram, AreaMatchesTableVAnchor)
{
    const SramBuffer b = paperBuffer();
    // 168 buffers -> 13.944 mm^2.
    EXPECT_NEAR(b.area() * 168.0, 13.944e-6, 1e-9);
    // Area scales with capacity.
    SramBuffer big = b;
    big.capacity = 128.0 * 1024.0;
    EXPECT_NEAR(big.area(), 2.0 * b.area(), 1e-12);
}

TEST(Dram, PaperEnergyAssumption)
{
    const Dram d = paperDram();
    // 32 pJ per 8-bit access.
    EXPECT_DOUBLE_EQ(d.accessEnergy(1.0), 32e-12);
    EXPECT_DOUBLE_EQ(d.accessEnergy(1e6), 32e-6);
}

TEST(Dram, StreamTime)
{
    const Dram d = paperDram();
    EXPECT_DOUBLE_EQ(d.streamTime(d.peakBandwidth), 1.0);
    EXPECT_DOUBLE_EQ(d.streamTime(0.0), 0.0);
}

TEST(Dram, LatencyNearFlatBelowKnee)
{
    const Dram d = paperDram();
    const Seconds idle = d.loadedLatency(0.0);
    EXPECT_DOUBLE_EQ(idle, d.unloadedLatency);
    // At 50 % utilization the latency has grown by < 50 %.
    EXPECT_LT(d.loadedLatency(0.5), 1.5 * idle);
    // At the knee it is still within ~2x.
    EXPECT_LT(d.loadedLatency(0.80), 2.0 * idle);
}

TEST(Dram, LatencyExplodesBeyondKnee)
{
    // Figure 1b: latency increases (near-)exponentially past ~80 % of
    // the maximum sustained bandwidth.
    const Dram d = paperDram();
    const Seconds atKnee = d.loadedLatency(0.80);
    EXPECT_GT(d.loadedLatency(0.95), 10.0 * atKnee);
    EXPECT_GT(d.loadedLatency(0.99), 25.0 * atKnee);
}

/** Loaded latency must be strictly increasing in utilization. */
class DramMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(DramMonotone, Increasing)
{
    const Dram d = paperDram();
    const double u = GetParam();
    EXPECT_GT(d.loadedLatency(u + 0.005), d.loadedLatency(u));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramMonotone,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4,
                                           0.5, 0.6, 0.7, 0.8, 0.85,
                                           0.9, 0.95, 0.98));

TEST(Dram, ExponentialGrowthRatePastKnee)
{
    // Each additional ~3 % of utilization should roughly double the
    // excess latency in the saturated regime (0.045 * ln 2 = 0.031).
    const Dram d = paperDram();
    const double over1 = d.loadedLatency(0.90) - d.unloadedLatency;
    const double over2 = d.loadedLatency(0.93) - d.unloadedLatency;
    EXPECT_NEAR(over2 / over1, 2.0, 0.5);
}

TEST(DramDeath, FullUtilizationPanics)
{
    const Dram d = paperDram();
    EXPECT_DEATH(d.loadedLatency(1.0), "utilization");
    EXPECT_DEATH(d.loadedLatency(-0.1), "utilization");
}

} // namespace
} // namespace memory
} // namespace inca
