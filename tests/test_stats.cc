/**
 * @file
 * StatSet accumulator tests.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace inca {
namespace {

TEST(Stats, AddAndGet)
{
    StatSet s;
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_FALSE(s.has("missing"));
    s.add("energy.adc", 1.5);
    s.add("energy.adc", 2.5);
    EXPECT_TRUE(s.has("energy.adc"));
    EXPECT_DOUBLE_EQ(s.get("energy.adc"), 4.0);
}

TEST(Stats, SetOverwrites)
{
    StatSet s;
    s.add("x", 3.0);
    s.set("x", 1.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 1.0);
}

TEST(Stats, AccumulateSets)
{
    StatSet a, b;
    a.add("energy.adc", 1.0);
    a.add("energy.dram", 2.0);
    b.add("energy.adc", 3.0);
    b.add("count.reads", 7.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.get("energy.adc"), 4.0);
    EXPECT_DOUBLE_EQ(a.get("energy.dram"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("count.reads"), 7.0);
}

TEST(Stats, ScaleAll)
{
    StatSet s;
    s.add("a", 2.0);
    s.add("b", 3.0);
    s *= 4.0;
    EXPECT_DOUBLE_EQ(s.get("a"), 8.0);
    EXPECT_DOUBLE_EQ(s.get("b"), 12.0);
}

TEST(Stats, SumPrefixRespectsHierarchy)
{
    StatSet s;
    s.add("energy.adc", 1.0);
    s.add("energy.array.read", 2.0);
    s.add("energy.array.write", 4.0);
    s.add("energyx.bogus", 100.0); // must NOT match prefix "energy"
    s.add("count.adc", 50.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("energy"), 7.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("energy.array"), 6.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("energy.array.read"), 2.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("energy.adc"), 1.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("nothing"), 0.0);
}

TEST(Stats, SumPrefixExactNameOnly)
{
    StatSet s;
    s.add("dram", 5.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("dram"), 5.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("dra"), 0.0);
}

TEST(Stats, ClearRemovesEverything)
{
    StatSet s;
    s.add("a", 1.0);
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_TRUE(s.entries().empty());
}

TEST(Stats, FormatContainsEntries)
{
    StatSet s;
    s.add("energy.adc", 1.0);
    const std::string out = s.format("Title");
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("energy.adc"), std::string::npos);
}

TEST(Stats, EntriesAreOrdered)
{
    StatSet s;
    s.add("zeta", 1.0);
    s.add("alpha", 1.0);
    s.add("mid", 1.0);
    auto it = s.entries().begin();
    EXPECT_EQ(it->first, "alpha");
    ++it;
    EXPECT_EQ(it->first, "mid");
    ++it;
    EXPECT_EQ(it->first, "zeta");
}

} // namespace
} // namespace inca
