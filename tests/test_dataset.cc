/**
 * @file
 * Synthetic dataset generator tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.hh"
#include "nn/dataset.hh"

namespace inca {
namespace nn {
namespace {

TEST(Dataset, ShapesMatchSpec)
{
    SyntheticSpec spec;
    spec.numClasses = 3;
    spec.channels = 2;
    spec.size = 10;
    spec.trainPerClass = 5;
    spec.testPerClass = 4;
    auto data = makeSynthetic(spec);
    EXPECT_EQ(data.train.count(), 15);
    EXPECT_EQ(data.test.count(), 12);
    EXPECT_EQ(data.train.images.shape(),
              (std::vector<std::int64_t>{15, 2, 10, 10}));
}

TEST(Dataset, LabelsBalancedAndInRange)
{
    SyntheticSpec spec;
    spec.numClasses = 4;
    spec.trainPerClass = 10;
    auto data = makeSynthetic(spec);
    std::vector<int> counts(4, 0);
    for (int label : data.train.labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 4);
        ++counts[size_t(label)];
    }
    for (int c : counts)
        EXPECT_EQ(c, 10);
}

TEST(Dataset, DeterministicForSeed)
{
    SyntheticSpec spec;
    auto a = makeSynthetic(spec);
    auto b = makeSynthetic(spec);
    EXPECT_TRUE(a.train.images.equals(b.train.images));
    EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Dataset, DifferentSeedsDiffer)
{
    SyntheticSpec a, b;
    b.seed = a.seed + 1;
    EXPECT_FALSE(makeSynthetic(a).train.images.equals(
        makeSynthetic(b).train.images));
}

TEST(Dataset, ClassesAreSeparable)
{
    // Mean images of different classes must differ far more than the
    // pixel noise, otherwise the classification task is ill-posed.
    SyntheticSpec spec;
    spec.numClasses = 2;
    spec.trainPerClass = 20;
    auto data = makeSynthetic(spec);
    const auto n = data.train.count();
    const auto per = data.train.images.size() / n;
    std::vector<double> mean0(size_t(per), 0.0), mean1(size_t(per), 0.0);
    int n0 = 0, n1 = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        auto &mean = data.train.labels[size_t(i)] == 0 ? mean0 : mean1;
        (data.train.labels[size_t(i)] == 0 ? n0 : n1)++;
        for (std::int64_t e = 0; e < per; ++e)
            mean[size_t(e)] += data.train.images[i * per + e];
    }
    double dist = 0.0;
    for (std::int64_t e = 0; e < per; ++e) {
        const double d = mean0[size_t(e)] / n0 - mean1[size_t(e)] / n1;
        dist += d * d;
    }
    EXPECT_GT(std::sqrt(dist / double(per)), 3.0 * spec.pixelNoise /
                                                 std::sqrt(20.0));
}

TEST(Dataset, BatchExtractsCorrectSlice)
{
    SyntheticSpec spec;
    spec.numClasses = 2;
    spec.trainPerClass = 8;
    auto data = makeSynthetic(spec);
    auto [x, labels] = data.train.batch(4, 3);
    EXPECT_EQ(x.dim(0), 3);
    EXPECT_EQ(labels.size(), 3u);
    const auto per = data.train.images.size() / data.train.count();
    for (std::int64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(labels[size_t(i)], data.train.labels[size_t(4 + i)]);
        for (std::int64_t e = 0; e < per; ++e)
            EXPECT_EQ(x[i * per + e],
                      data.train.images[(4 + i) * per + e]);
    }
}

TEST(Dataset, ShuffleIsPermutation)
{
    SyntheticSpec spec;
    spec.numClasses = 3;
    spec.trainPerClass = 6;
    auto data = makeSynthetic(spec);
    Dataset copy = data.train;
    Rng rng(99);
    copy.shuffle(rng);
    // Same multiset of labels.
    auto sorted = [](std::vector<int> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(sorted(copy.labels), sorted(data.train.labels));
    // Same total pixel mass.
    EXPECT_NEAR(copy.images.sum(), data.train.images.sum(), 1e-3);
}

TEST(DatasetDeath, BatchOutOfRangePanics)
{
    SyntheticSpec spec;
    spec.numClasses = 2;
    spec.trainPerClass = 4;
    auto data = makeSynthetic(spec);
    EXPECT_DEATH(data.train.batch(6, 4), "out of range");
}

} // namespace
} // namespace nn
} // namespace inca
