/**
 * @file
 * The analysis layer's determinism contract, property-tested across
 * the model zoo x {overlap off/on} x {1, 2, 8} threads:
 *
 *  - the critical path tiles [0, makespan]: re-folding its step
 *    durations in order reproduces the makespan bit-exactly, and the
 *    per-unit / per-layer shares sum to the makespan with 0 ULP
 *    error (via the error-free ExactSum accumulator);
 *  - slack is exactly zero along the critical path and >= 0 off it;
 *  - occupancy reports work past the makespan as explicit overhang
 *    and never lets it inflate utilization past 1;
 *  - what-if with factor 1.0 is a bit-identical no-op (x * 1.0 == x
 *    in IEEE arithmetic), and scaling a unit down never slows the
 *    schedule;
 *  - every report rendering is byte-identical across thread counts,
 *    the JSON is strict, and the CSV schemas (report and per-layer
 *    run export) are lint-clean RFC 4180.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/cache.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "event/analysis.hh"
#include "event/event.hh"
#include "ir/lower.hh"
#include "json_lint.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"

namespace inca {
namespace {

/** One analysis case: network x engine x phase x overlap. */
struct Case
{
    nn::NetworkDesc net;
    bool isInca;
    arch::Phase phase;
    bool overlap;

    std::string
    describe() const
    {
        return std::string(isInca ? "inca." : "ws.") + net.name +
               (phase == arch::Phase::Training ? ".trn" : ".inf") +
               (overlap ? ".ov" : ".serial");
    }
};

/**
 * The full zoo under both engines and both overlap modes (the
 * acceptance sweep). Inference everywhere plus training on the two
 * residual shapes, batch 16 to keep the suite quick.
 */
std::vector<Case>
zooCases()
{
    const std::vector<nn::NetworkDesc> nets = {
        nn::lenet5(),   nn::vgg8(),        nn::vgg16(),
        nn::vgg19(),    nn::resnet18(),    nn::resnet50(),
        nn::mnasnet(),  nn::mobilenetV2(),
    };
    std::vector<Case> cases;
    for (const auto &net : nets)
        for (const bool isInca : {true, false})
            for (const bool overlap : {false, true})
                cases.push_back(
                    {net, isInca, arch::Phase::Inference, overlap});
    for (const bool isInca : {true, false})
        for (const bool overlap : {false, true}) {
            cases.push_back({nn::resnet18(), isInca,
                             arch::Phase::Training, overlap});
            cases.push_back({nn::vgg8(), isInca,
                             arch::Phase::Training, overlap});
        }
    return cases;
}

ir::Program
lowerCase(const Case &c, int batch = 16)
{
    const ir::LowerOptions opts{c.overlap};
    return c.isInca ? ir::lowerInca(arch::paperInca(), c.net,
                                    c.phase, batch, opts)
                    : ir::lowerWs(arch::paperBaseline(), c.net,
                                  c.phase, batch, opts);
}

/**
 * Structural RFC-4180 lint shared by the report CSV and the run
 * export: every row parses, every row has the same field count as
 * the header. Returns "" on success, a diagnostic otherwise.
 */
std::string
csvLint(const std::string &csv)
{
    std::vector<std::size_t> widths;
    std::size_t fields = 0;
    bool quoted = false, rowStarted = false;
    for (std::size_t i = 0; i < csv.size(); ++i) {
        const char c = csv[i];
        rowStarted = true;
        if (quoted) {
            if (c == '"') {
                if (i + 1 < csv.size() && csv[i + 1] == '"')
                    ++i;
                else
                    quoted = false;
            }
            continue;
        }
        if (c == '"')
            quoted = true;
        else if (c == ',')
            ++fields;
        else if (c == '\n') {
            widths.push_back(fields + 1);
            fields = 0;
            rowStarted = false;
        }
    }
    if (quoted)
        return "unterminated quote";
    if (rowStarted)
        return "missing trailing newline";
    if (widths.size() < 2)
        return "need a header and at least one row";
    for (const std::size_t w : widths)
        if (w != widths[0])
            return "ragged rows";
    return "";
}

/** The report header is strictly snake_case (unlike the run export,
 *  whose dotted stat keys are golden-guarded). */
bool
headerIsSnake(const std::string &csv)
{
    const std::string header = csv.substr(0, csv.find('\n'));
    for (const char c : header)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) ||
              c == '_' || c == ','))
            return false;
    return true;
}

/** Restore cache/thread globals however a test exits. */
class EventAnalysisTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAllCaches();
    }

    void
    TearDown() override
    {
        setCacheEnabled(
            cacheEnabledFromEnv(std::getenv("INCA_CACHE")));
        clearAllCaches();
    }
};

TEST_F(EventAnalysisTest, PathRefoldsToMakespanBitExactly)
{
    for (const Case &c : zooCases()) {
        SCOPED_TRACE(c.describe());
        const ir::Program p = lowerCase(c);
        const event::TimedRun t = event::execute(p);
        event::AnalyzeOptions opts;
        opts.runWhatIf = false;
        const event::Report r = event::analyze(p, t, opts);
        // The path's segments tile [0, makespan] contiguously, so
        // folding the durations in order repeats the scheduler's own
        // additions.
        Seconds fold = 0.0;
        for (const event::PathStep &s : r.path) {
            EXPECT_EQ(s.start, fold);
            fold = fold + s.duration;
            EXPECT_EQ(s.finish, fold);
        }
        EXPECT_EQ(fold, t.makespan);
        EXPECT_EQ(r.makespan, t.makespan);
    }
}

TEST_F(EventAnalysisTest, SharesSumToMakespanWithZeroUlpError)
{
    for (const Case &c : zooCases()) {
        SCOPED_TRACE(c.describe());
        const ir::Program p = lowerCase(c);
        const event::TimedRun t = event::execute(p);
        event::AnalyzeOptions opts;
        opts.runWhatIf = false;
        const event::Report r = event::analyze(p, t, opts);
        event::ExactSum units;
        for (const event::UnitReport &row : r.units) {
            units.add(row.criticalShare.hi);
            units.add(row.criticalShare.lo);
        }
        EXPECT_EQ(units.round(), t.makespan);
        event::ExactSum layers;
        for (const event::LayerShare &ls : r.layers) {
            layers.add(ls.share.hi);
            layers.add(ls.share.lo);
        }
        EXPECT_EQ(layers.round(), t.makespan);
    }
}

TEST_F(EventAnalysisTest, SlackZeroOnPathNonNegativeElsewhere)
{
    for (const Case &c : zooCases()) {
        SCOPED_TRACE(c.describe());
        const ir::Program p = lowerCase(c);
        const event::TimedRun t = event::execute(p);
        event::AnalyzeOptions opts;
        opts.runWhatIf = false;
        const event::Report r = event::analyze(p, t, opts);
        ASSERT_EQ(r.slack.size(), p.instrs.size());
        for (const Seconds s : r.slack)
            EXPECT_GE(s, 0.0);
        for (const event::PathStep &step : r.path)
            EXPECT_EQ(r.slack[std::size_t(step.instr)], 0.0);
    }
}

TEST_F(EventAnalysisTest, OccupancyNeverInflatesUtilization)
{
    for (const Case &c : zooCases()) {
        SCOPED_TRACE(c.describe());
        const ir::Program p = lowerCase(c);
        const event::TimedRun t = event::execute(p);
        event::AnalyzeOptions opts;
        opts.runWhatIf = false;
        const event::Report r = event::analyze(p, t, opts);
        for (const event::UnitReport &row : r.units) {
            SCOPED_TRACE(ir::unitName(row.unit));
            EXPECT_LE(row.utilization, 1.0);
            EXPECT_GE(row.utilization, 0.0);
            EXPECT_GE(row.overhang, 0.0);
            EXPECT_GE(row.idle, 0.0);
            EXPECT_LE(row.coverage, t.makespan * (1 + 1e-12));
            EXPECT_LE(row.largestGap, t.makespan);
            // Coverage + overhang never exceeds the recorded work.
            EXPECT_LE(row.coverage + row.overhang,
                      row.busy * (1 + 1e-9) + 1e-30);
        }
    }
}

TEST_F(EventAnalysisTest, OverhangReportedExplicitly)
{
    // Regression for the documented quirk: posted work past the
    // makespan must surface as overhang, not as utilization > 1.
    // One long posted load (no successor) next to the short chain
    // that actually gates the exit.
    ir::Program p;
    p.network = "overhang";
    p.engine = "test";
    ir::Instr load;
    load.op = ir::Op::Load;
    load.unit = ir::Unit::Dram;
    load.span = 0;
    load.duration = 8.0;
    ir::Instr mvm;
    mvm.op = ir::Op::Mvm;
    mvm.unit = ir::Unit::Array;
    mvm.span = 0;
    mvm.duration = 1.0;
    ir::Instr exitSync;
    exitSync.op = ir::Op::Sync;
    exitSync.unit = ir::Unit::Ctrl;
    exitSync.label = "exit";
    exitSync.deps = {1};
    p.instrs = {load, mvm, exitSync};
    ir::Span span;
    span.name = "l0";
    span.first = 0;
    span.count = 2;
    p.spans = {span};

    const event::TimedRun t = event::execute(p);
    EXPECT_EQ(t.makespan, 1.0);
    event::AnalyzeOptions opts;
    opts.runWhatIf = false;
    const event::Report r = event::analyze(p, t, opts);
    ASSERT_EQ(r.units.size(), 3u); // dram, array, ctrl
    const event::UnitReport &dram = r.units[0];
    EXPECT_EQ(dram.unit, ir::Unit::Dram);
    EXPECT_EQ(dram.busy, 8.0);
    EXPECT_EQ(dram.coverage, 1.0);
    EXPECT_EQ(dram.overhang, 7.0);
    EXPECT_EQ(dram.idle, 0.0);
    EXPECT_EQ(dram.utilization, 1.0);
    const event::UnitReport &array = r.units[1];
    EXPECT_EQ(array.unit, ir::Unit::Array);
    EXPECT_EQ(array.busy, 1.0);
    EXPECT_EQ(array.overhang, 0.0);
    // The critical path is mvm -> exit; the posted load never gates.
    EXPECT_EQ(array.criticalShare.hi, 1.0);
    EXPECT_EQ(dram.criticalShare.hi, 0.0);
    EXPECT_EQ(r.bottleneck, ir::Unit::Array);
}

TEST_F(EventAnalysisTest, WhatIfUnityIsBitIdenticalNoOp)
{
    const Case c{nn::vgg16(), true, arch::Phase::Inference, false};
    const ir::Program p = lowerCase(c, 64);
    const event::TimedRun base = event::execute(p);

    const ir::Program scaled1 =
        event::scaleUnit(p, ir::Unit::Dram, 1.0);
    const event::TimedRun rerun = event::execute(scaled1);
    ASSERT_EQ(rerun.schedule.size(), base.schedule.size());
    for (std::size_t i = 0; i < base.schedule.size(); ++i) {
        EXPECT_EQ(rerun.schedule[i].start, base.schedule[i].start);
        EXPECT_EQ(rerun.schedule[i].finish, base.schedule[i].finish);
    }
    EXPECT_EQ(rerun.makespan, base.makespan);

    event::AnalyzeOptions opts;
    for (int u = 0; u <= int(ir::Unit::Ctrl); ++u)
        opts.whatIf.push_back({ir::Unit(u), 1.0});
    const event::Report r = event::analyze(p, base, opts);
    ASSERT_EQ(r.whatIf.size(), opts.whatIf.size());
    for (const event::WhatIfEntry &e : r.whatIf) {
        SCOPED_TRACE(ir::unitName(e.unit));
        EXPECT_EQ(e.makespan, base.makespan);
        EXPECT_EQ(e.delta, 0.0);
        EXPECT_EQ(e.speedup, 1.0);
    }
    // And the rendered reports are byte-identical to the baseline's.
    event::AnalyzeOptions plain;
    plain.runWhatIf = false;
    const event::Report rb = event::analyze(p, base, plain);
    const event::Report rs =
        event::analyze(scaled1, rerun, plain);
    EXPECT_EQ(event::reportText(p, rb),
              event::reportText(scaled1, rs));
    EXPECT_EQ(event::reportCsv(p, rb),
              event::reportCsv(scaled1, rs));
}

TEST_F(EventAnalysisTest, WhatIfScalingDownNeverSlower)
{
    for (const Case &c :
         {Case{nn::vgg16(), true, arch::Phase::Inference, true},
          Case{nn::resnet18(), false, arch::Phase::Training,
               false}}) {
        SCOPED_TRACE(c.describe());
        const ir::Program p = lowerCase(c);
        const event::TimedRun t = event::execute(p);
        const event::Report r = event::analyze(p, t); // default 0.5
        EXPECT_FALSE(r.whatIf.empty());
        for (const event::WhatIfEntry &e : r.whatIf) {
            SCOPED_TRACE(ir::unitName(e.unit));
            EXPECT_LE(e.makespan, t.makespan);
            EXPECT_GE(e.delta, 0.0);
            EXPECT_GE(e.speedup, 1.0);
        }
    }
}

TEST_F(EventAnalysisTest, ReportsByteIdenticalAcrossThreadCounts)
{
    const std::vector<Case> cases = {
        {nn::vgg16(), true, arch::Phase::Inference, false},
        {nn::vgg16(), true, arch::Phase::Inference, true},
        {nn::resnet18(), false, arch::Phase::Training, false},
        {nn::resnet18(), false, arch::Phase::Training, true},
    };
    std::vector<std::string> reference;
    setCacheEnabled(false);
    for (const Case &c : cases) {
        const ir::Program p = lowerCase(c);
        const event::Report r =
            event::analyze(p, event::execute(p));
        reference.push_back(event::reportText(p, r) +
                            event::reportCsv(p, r));
    }
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ThreadPool::setGlobalThreads(threads);
        setCacheEnabled(true);
        clearAllCaches();
        for (std::size_t i = 0; i < cases.size(); ++i) {
            SCOPED_TRACE(cases[i].describe());
            const ir::Program p = lowerCase(cases[i]);
            const event::Report r =
                event::analyze(p, event::execute(p));
            EXPECT_EQ(event::reportText(p, r) +
                          event::reportCsv(p, r),
                      reference[i]);
        }
    }
}

TEST_F(EventAnalysisTest, ReportJsonIsStrictAndCsvSchemasLint)
{
    const Case c{nn::vgg16(), true, arch::Phase::Inference, false};
    const ir::Program p = lowerCase(c, 64);
    const event::TimedRun t = event::execute(p);
    const event::Report r = event::analyze(p, t);

    const std::string json = event::reportJson(p, r);
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid())
        << "bad JSON near byte " << lint.errorPos();
    EXPECT_NE(json.find("\"kind\": \"event.bottleneck\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bottleneck_unit\": \"array\""),
              std::string::npos);
    EXPECT_NE(json.find("\"provenance\""), std::string::npos);

    // The report CSV and the per-layer run export share the same
    // structural lint; the report additionally keeps a snake_case
    // header.
    const std::string reportCsv = event::reportCsv(p, r);
    EXPECT_EQ(csvLint(reportCsv), "");
    EXPECT_TRUE(headerIsSnake(reportCsv));
    EXPECT_EQ(csvLint(sim::toCsv(t.run)), "");
}

TEST_F(EventAnalysisTest, PublishMetricsExportsOccupancyGauges)
{
    const Case c{nn::vgg16(), true, arch::Phase::Inference, false};
    const ir::Program p = lowerCase(c, 64);
    const event::TimedRun t = event::execute(p);
    event::AnalyzeOptions opts;
    opts.runWhatIf = false;
    const event::Report r = event::analyze(p, t, opts);
    event::publishMetrics(r);
    EXPECT_EQ(metrics::gauge("event.makespan_us").value(),
              t.makespan * 1e6);
    double shares = 0.0;
    for (const event::UnitReport &row : r.units) {
        const std::string base =
            std::string("event.unit.") + ir::unitName(row.unit);
        EXPECT_EQ(metrics::gauge(base + ".busy_us").value(),
                  row.busy * 1e6);
        EXPECT_EQ(metrics::gauge(base + ".utilization").value(),
                  row.utilization);
        shares +=
            metrics::gauge(base + ".critical_share").value();
    }
    EXPECT_NEAR(shares, 1.0, 1e-12);
}

TEST_F(EventAnalysisTest, TraceEmitsInstantsFlowsAndReadyCounter)
{
    const Case c{nn::lenet5(), true, arch::Phase::Inference, false};
    const ir::Program p = lowerCase(c, 4);
    const event::TimedRun t = event::execute(p);

    trace::clear();
    trace::start("");
    event::emitTrace(p, t);
    const std::vector<trace::Event> events = trace::snapshot();
    const std::string json = trace::stop();

    std::size_t syncs = 0, work = 0;
    for (const ir::Instr &in : p.instrs)
        (in.op == ir::Op::Sync ? syncs : work) += 1;
    std::size_t instants = 0, spans = 0, counters = 0;
    std::set<std::uint64_t> flowStarts, flowEnds;
    bool makespanMarker = false;
    for (const trace::Event &e : events) {
        switch (e.ph) {
          case 'i':
            ++instants;
            makespanMarker |= e.name == "makespan";
            break;
          case 'X':
            ++spans;
            break;
          case 's':
            EXPECT_TRUE(flowStarts.insert(e.id).second);
            break;
          case 'f':
            EXPECT_TRUE(flowEnds.insert(e.id).second);
            break;
          case 'C':
            EXPECT_EQ(e.name, "event.ready_queue");
            EXPECT_GE(e.value, 0.0);
            ++counters;
            break;
          default:
            ADD_FAILURE() << "unexpected phase " << e.ph;
        }
    }
    // Every sync is an instant, plus the makespan marker.
    EXPECT_EQ(instants, syncs + 1);
    EXPECT_TRUE(makespanMarker);
    EXPECT_EQ(spans, work);
    EXPECT_GE(counters, 2u);
    // Flow arrows pair up and link the work steps of the path.
    EXPECT_EQ(flowStarts, flowEnds);
    EXPECT_FALSE(flowStarts.empty());

    // The serialized trace (with the new phases) is strict JSON.
    testutil::JsonLint lint(json);
    EXPECT_TRUE(lint.valid())
        << "bad trace JSON near byte " << lint.errorPos();
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
    trace::clear();
}

} // namespace
} // namespace inca
