/**
 * @file
 * Failure injection: stuck-at faults in the 2T1R cells (forming
 * failures / endurance wear-out, the device class the paper's Section
 * VI worries about) and their bounded effect on the array's computed
 * convolutions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "inca/plane.hh"
#include "inca/stack3d.hh"
#include "test_fixtures.hh"

namespace inca {
namespace core {
namespace {

TEST(FaultInjection, StuckCellsIgnoreWrites)
{
    BitPlane p(8);
    p.injectStuckAt(2, 3, true);
    EXPECT_TRUE(p.cell(2, 3));
    p.writeCell(2, 3, false);
    EXPECT_TRUE(p.cell(2, 3)); // still stuck high
    p.injectStuckAt(4, 4, false);
    p.writeCell(4, 4, true);
    EXPECT_FALSE(p.cell(4, 4)); // stuck low
    EXPECT_EQ(p.faultCount(), 2);
}

TEST(FaultInjection, ClearFaultsRestoresStoredValues)
{
    BitPlane p(4);
    p.writeCell(1, 1, true);
    p.injectStuckAt(1, 1, false);
    EXPECT_FALSE(p.cell(1, 1));
    p.clearFaults();
    EXPECT_TRUE(p.cell(1, 1)); // the write survived underneath
    EXPECT_EQ(p.faultCount(), 0);
}

TEST(FaultInjection, WindowReadsSeeFaults)
{
    BitPlane p(6);
    p.injectStuckAt(0, 0, true); // contributes current forever
    const std::vector<std::uint8_t> w{1, 1, 1, 1};
    EXPECT_EQ(p.readWindow(0, 0, 2, 2, w), 1);
    // ... but only when the weight line selects it.
    EXPECT_EQ(p.readWindow(0, 0, 2, 2, {0, 1, 1, 1}), 0);
}

TEST(FaultInjection, PopcountIsFaultAware)
{
    BitPlane p(4);
    p.injectStuckAt(0, 0, true);
    p.writeCell(1, 1, true);
    p.injectStuckAt(1, 1, false);
    EXPECT_EQ(p.popcount(), 1); // stuck-1 counts, masked write not
}

TEST(FaultInjection, SingleBitFaultErrorIsBounded)
{
    // A stuck fault in activation bit plane b can change one stored
    // value by at most 2^b, so each affected output moves by at most
    // |w| * 2^b -- errors stay bounded and local, which is why
    // endurance wear degrades accuracy gracefully rather than
    // catastrophically.
    inca::testing::SeededMacroPair pair(7);
    IncaMacro &clean = pair.clean;
    IncaMacro &faulty = pair.faulty;
    const auto &values = pair.values;
    const auto &kernel = pair.kernel;

    const auto before = faulty.convolveWindow(0, 0, 3, 3, kernel, 8, 4);
    const auto ref = clean.convolveWindow(0, 0, 3, 3, kernel, 8, 4);
    ASSERT_EQ(before[0], ref[0]);

    // IncaMacro has no direct plane handle; emulate a bit-3 fault by
    // rewriting the value with bit 3 forced high (stuck-1 on that
    // plane) and bound the output deviation.
    const int bit = 3;
    const std::uint32_t forced =
        std::uint32_t(values[1][1]) | (1u << bit);
    faulty.writeValue(0, 1, 1, forced);
    const auto after = faulty.convolveWindow(0, 0, 3, 3, kernel, 8, 4);
    const std::int64_t bound =
        std::int64_t(std::abs(kernel[4])) * (1 << bit);
    EXPECT_LE(std::abs(after[0] - ref[0]), bound);
}

TEST(FaultInjection, StackPlanesFaultIndependently)
{
    Stack3D stack(4, 3);
    stack.plane(1).injectStuckAt(0, 0, true);
    const auto currents =
        stack.readWindow(0, 0, 2, 2, {1, 1, 1, 1});
    EXPECT_EQ(currents[0], 0);
    EXPECT_EQ(currents[1], 1); // only the faulty plane reads high
    EXPECT_EQ(currents[2], 0);
}

TEST(FaultInjectionDeath, OutOfRangeFaultIsFatal)
{
    // User-supplied fault coordinates are a configuration error:
    // fatal() (clean exit 1, actionable message), not panic() (abort).
    BitPlane p(4);
    EXPECT_EXIT(p.injectStuckAt(4, 0, true),
                ::testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(p.injectStuckAt(0, -1, true),
                ::testing::ExitedWithCode(1), "valid rows");
}

} // namespace
} // namespace core
} // namespace inca
