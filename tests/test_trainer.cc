/**
 * @file
 * Training-loop tests, including the small-scale version of the
 * paper's Table VI invariant: RRAM noise on weights (WS) degrades
 * accuracy far more than the same noise on activations (IS / INCA).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"

namespace inca {
namespace nn {
namespace {

DatasetPair
smallTask()
{
    SyntheticSpec spec;
    spec.numClasses = 3;
    spec.channels = 1;
    spec.size = 8;
    spec.trainPerClass = 24;
    spec.testPerClass = 12;
    spec.seed = 5;
    return makeSynthetic(spec);
}

std::unique_ptr<Sequential>
smallNet(std::uint64_t seed = 21)
{
    Rng rng(seed);
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(1, 6, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Flatten>();
    net->emplace<Linear>(6 * 4 * 4, 3, rng);
    return net;
}

TEST(Trainer, LossDecreasesOverEpochs)
{
    setQuiet(true);
    auto data = smallTask();
    auto net = smallNet();
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    auto result = train(*net, data, cfg);
    ASSERT_EQ(result.epochLoss.size(), 6u);
    EXPECT_LT(result.epochLoss.back(), result.epochLoss.front());
}

TEST(Trainer, ReachesHighAccuracyOnCleanHardware)
{
    setQuiet(true);
    auto data = smallTask();
    auto net = smallNet();
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    auto result = train(*net, data, cfg);
    EXPECT_GE(result.finalTestAccuracy, 0.9);
}

TEST(Trainer, DeterministicForSeed)
{
    setQuiet(true);
    auto data = smallTask();
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batchSize = 8;
    auto r1 = train(*smallNet(), data, cfg);
    auto r2 = train(*smallNet(), data, cfg);
    EXPECT_EQ(r1.epochLoss, r2.epochLoss);
    EXPECT_EQ(r1.finalTestAccuracy, r2.finalTestAccuracy);
}

TEST(Trainer, EvaluateCountsFractionCorrect)
{
    setQuiet(true);
    auto data = smallTask();
    auto net = smallNet();
    const double acc = evaluate(*net, data.test);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(Trainer, TableSixInvariantWeightNoiseHurtsMore)
{
    // The paper's central accuracy claim at small scale: with the
    // same noise strength, storing WEIGHTS in noisy RRAM (the WS
    // baseline) costs far more accuracy than storing ACTIVATIONS in
    // noisy RRAM (INCA).
    setQuiet(true);
    auto data = smallTask();
    TrainConfig base;
    base.epochs = 10;
    base.batchSize = 8;
    base.lr = 0.05f;

    TrainConfig weightNoisy = base;
    weightNoisy.noise = NoiseSpec{NoiseTarget::Weights, 0.10};
    TrainConfig actNoisy = base;
    actNoisy.noise = NoiseSpec{NoiseTarget::Activations, 0.10};

    const double accWeights =
        train(*smallNet(), data, weightNoisy).finalTestAccuracy;
    const double accActs =
        train(*smallNet(), data, actNoisy).finalTestAccuracy;
    EXPECT_GT(accActs, accWeights + 0.05)
        << "activation-noise accuracy " << accActs
        << " should exceed weight-noise accuracy " << accWeights;
}

TEST(Trainer, EvalQuantizationDegradesWithFewerBits)
{
    // Table I background: accuracy falls as either operand's bit
    // depth shrinks. (The paper's weight-vs-activation quantization
    // asymmetry comes from deep heavy-tailed ImageNet models and does
    // not reproduce at this toy scale; see EXPERIMENTS.md.)
    setQuiet(true);
    auto data = smallTask();
    auto net = smallNet();
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    train(*net, data, cfg);

    auto accAt = [&](int wBits, int aBits) {
        EvalOptions o;
        o.weightBits = wBits;
        o.actBits = aBits;
        return evaluate(*net, data.test, o);
    };
    // 8/8 must be (near-)lossless relative to float.
    EXPECT_GE(accAt(8, 8), evaluate(*net, data.test) - 0.05);
    // 1-2 bit operands must hurt badly.
    EXPECT_LT(accAt(2, 8) + accAt(8, 2), accAt(8, 8) + accAt(8, 8));
    // Monotone-ish: 4-bit never beats 8-bit by a margin.
    EXPECT_LE(accAt(4, 8), accAt(8, 8) + 0.05);
    EXPECT_LE(accAt(8, 4), accAt(8, 8) + 0.05);
}

TEST(Trainer, NoiseAccuracyDegradesWithSigma)
{
    setQuiet(true);
    auto data = smallTask();
    auto net = smallNet();
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 8;
    cfg.lr = 0.05f;
    train(*net, data, cfg);

    EvalOptions mild;
    mild.noise = NoiseSpec{NoiseTarget::Weights, 0.02};
    EvalOptions severe;
    severe.noise = NoiseSpec{NoiseTarget::Weights, 0.50};
    const double accMild = evaluate(*net, data.test, mild);
    const double accSevere = evaluate(*net, data.test, severe);
    EXPECT_GE(accMild, accSevere);
}

} // namespace
} // namespace nn
} // namespace inca
