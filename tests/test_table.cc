/**
 * @file
 * TextTable rendering tests.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace inca {
namespace {

TEST(Table, RendersHeadersAndRows)
{
    TextTable t({"Net", "Gain"});
    t.addRow({"vgg16", "20.6x"});
    t.addRow({"resnet18", "8.7x"});
    const std::string out = t.str();
    EXPECT_NE(out.find("Net"), std::string::npos);
    EXPECT_NE(out.find("vgg16"), std::string::npos);
    EXPECT_NE(out.find("8.7x"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    TextTable t({"A", "B"});
    t.addRow({"x", "y"});
    t.addRow({"longer", "cell"});
    const std::string out = t.str();
    // Each data line must have the same length as the header line.
    size_t firstLen = std::string::npos;
    size_t pos = 0;
    while (pos < out.size()) {
        const size_t nl = out.find('\n', pos);
        const std::string line = out.substr(pos, nl - pos);
        if (!line.empty()) {
            if (firstLen == std::string::npos)
                firstLen = line.size();
            EXPECT_EQ(line.size(), firstLen) << "line: " << line;
        }
        pos = nl + 1;
    }
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(Table, RatioFormatting)
{
    EXPECT_EQ(TextTable::ratio(20.6), "20.6x");
    EXPECT_EQ(TextTable::ratio(4.0, 0), "4x");
}

TEST(Table, CountFormatting)
{
    EXPECT_EQ(TextTable::count(0), "0");
    EXPECT_EQ(TextTable::count(999), "999");
    EXPECT_EQ(TextTable::count(1000), "1,000");
    EXPECT_EQ(TextTable::count(1544496), "1,544,496");
    EXPECT_EQ(TextTable::count(-12345), "-12,345");
}

TEST(Table, RuleRows)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const std::string out = t.str();
    // Rules render as +---+ lines; expect at least 4 of them
    // (top, under header, mid, bottom).
    int rules = 0;
    size_t pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_GE(rules, 4);
}

TEST(TableDeath, ArityMismatchPanics)
{
    TextTable t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace inca
