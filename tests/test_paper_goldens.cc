/**
 * @file
 * Golden snapshots of the paper-table headline numbers.
 *
 * The differential/parallelism work elsewhere in the test suite
 * guarantees the tensor paths compute the same FUNCTION; these tests
 * pin the analytic models' VALUES. Every constant below was captured
 * from the models at the Table II design point (8-bit data, 256-bit
 * bus, paper INCA and baseline configs) and is asserted exactly:
 * access counts are integers, and the footprint/area models are
 * closed-form double arithmetic with one deterministic evaluation
 * order, so any drift -- however small -- is a model change that must
 * be reviewed, not noise.
 *
 *  - Table III: buffer accesses per image, WS baseline vs. INCA
 *  - Table IV:  RRAM + buffer footprint per image
 *  - Table V:   chip area breakdown
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/area.hh"
#include "arch/config.hh"
#include "dataflow/access_model.hh"
#include "dataflow/footprint.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace {

const dataflow::AccessConfig kPaperAccessConfig{8, 256};

struct AccessGolden
{
    const char *network;
    std::uint64_t baseline;
    std::uint64_t inca;
};

/** Table III: inference buffer accesses (Eqs. 5 & 6). */
const std::vector<AccessGolden> kTable3 = {
    {"vgg16", 2985472, 459712},     {"vgg19", 3393152, 625600},
    {"resnet18", 541744, 348992},   {"resnet50", 1034096, 732992},
    {"mobilenetv2", 356524, 73712}, {"mnasnet", 340109, 100024},
};

TEST(PaperGoldens, Table3InferenceBufferAccesses)
{
    const auto suite = nn::evaluationSuite();
    ASSERT_EQ(suite.size(), kTable3.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        SCOPED_TRACE(suite[i].name);
        EXPECT_EQ(suite[i].name, kTable3[i].network);
        const auto a =
            dataflow::networkAccesses(suite[i], kPaperAccessConfig);
        EXPECT_EQ(a.baseline, kTable3[i].baseline);
        EXPECT_EQ(a.inca, kTable3[i].inca);
    }
}

TEST(PaperGoldens, Table3TrainingDoublesBothCounts)
{
    for (const auto &net : nn::evaluationSuite()) {
        SCOPED_TRACE(net.name);
        const auto inf =
            dataflow::networkAccesses(net, kPaperAccessConfig);
        const auto tr = dataflow::networkTrainingAccesses(
            net, kPaperAccessConfig);
        EXPECT_EQ(tr.baseline, 2 * inf.baseline);
        EXPECT_EQ(tr.inca, 2 * inf.inca);
    }
}

struct FootprintGolden
{
    const char *network;
    double baselineRram, baselineBuffers; // bytes
    double incaRram, incaBuffers;         // bytes
};

/** Table IV: per-image footprint at 8-bit precision, in bytes. */
const std::vector<FootprintGolden> kTable4 = {
    {"vgg16", 285803392.0, 9115136.0, 9115136.0, 138344128.0},
    {"vgg19", 297724800.0, 10419712.0, 10419712.0, 143652544.0},
    {"resnet18", 25540992.0, 2183168.0, 2183168.0, 11678912.0},
    {"resnet50", 61670272.0, 10664448.0, 10664448.0, 25502912.0},
    {"mobilenetv2", 13706720.0, 6767200.0, 6767200.0, 3469760.0},
    {"mnasnet", 14234512.0, 5545728.0, 5545728.0, 4344392.0},
};

TEST(PaperGoldens, Table4FootprintBytes)
{
    const auto suite = nn::evaluationSuite();
    ASSERT_EQ(suite.size(), kTable4.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        SCOPED_TRACE(suite[i].name);
        EXPECT_EQ(suite[i].name, kTable4[i].network);
        const auto f = dataflow::footprint(suite[i]);
        EXPECT_EQ(f.baseline.rram, kTable4[i].baselineRram);
        EXPECT_EQ(f.baseline.buffers, kTable4[i].baselineBuffers);
        EXPECT_EQ(f.inca.rram, kTable4[i].incaRram);
        EXPECT_EQ(f.inca.buffers, kTable4[i].incaBuffers);
    }
}

TEST(PaperGoldens, Table4FootprintSwapStructure)
{
    // The paper's structural claim: INCA's RRAM need equals the
    // baseline's buffer need (activations swap sides).
    for (const auto &net : nn::evaluationSuite()) {
        SCOPED_TRACE(net.name);
        const auto f = dataflow::footprint(net);
        EXPECT_EQ(f.inca.rram, f.baseline.buffers);
    }
}

TEST(PaperGoldens, Table4MiBConversion)
{
    const auto f = dataflow::footprint(nn::vgg16());
    EXPECT_EQ(dataflow::toMiB(f.baseline.rram), 272.5633544921875);
    EXPECT_EQ(dataflow::toMiB(f.inca.buffers), 131.93524169921875);
}

TEST(PaperGoldens, Table5BaselineAreaBreakdown)
{
    const auto a = arch::baselineArea(arch::paperBaseline());
    EXPECT_EQ(a.buffer, 1.3944000000000001e-05);
    EXPECT_EQ(a.array, 8.000069991137282e-06);
    EXPECT_EQ(a.adc, 3.0288383999999999e-05);
    EXPECT_EQ(a.dac, 3.4268774399999998e-07);
    EXPECT_EQ(a.postProcessing, 3.6560000000000002e-06);
    EXPECT_EQ(a.others, 2.7920000000000004e-05);
    EXPECT_EQ(a.total(), 8.4151141735137286e-05);
}

TEST(PaperGoldens, Table5IncaAreaBreakdown)
{
    const auto a = arch::incaArea(arch::paperInca());
    EXPECT_EQ(a.buffer, 1.3944000000000001e-05);
    EXPECT_EQ(a.array, 8.0183977574400003e-07);
    EXPECT_EQ(a.adc, 4.5803519999999997e-06);
    EXPECT_EQ(a.dac, 6.8537548799999995e-07);
    EXPECT_EQ(a.postProcessing, 3.6560000000000002e-06);
    EXPECT_EQ(a.others, 2.4249000000000001e-05);
    EXPECT_EQ(a.total(), 4.7916567263744001e-05);
}

TEST(PaperGoldens, Table5HeadlineRatios)
{
    // Headline claims the snapshot protects: INCA's 10x array and
    // ~6.6x ADC area reduction, and the ~1.76x whole-chip win.
    const auto base = arch::baselineArea(arch::paperBaseline());
    const auto inca = arch::incaArea(arch::paperInca());
    EXPECT_NEAR(base.array / inca.array, 9.977, 0.01);
    EXPECT_NEAR(base.adc / inca.adc, 6.613, 0.01);
    EXPECT_NEAR(base.total() / inca.total(), 1.756, 0.01);
}

} // namespace
} // namespace inca
