/**
 * @file
 * Buffer-access model tests (paper Eqs. 5/6, Fig. 7a, Table III).
 */

#include <gtest/gtest.h>

#include "dataflow/access_model.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace dataflow {
namespace {

nn::LayerDesc
convLayer(std::int64_t c, std::int64_t hw, std::int64_t n, int k,
          std::int64_t out)
{
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Conv;
    l.inC = c;
    l.inH = l.inW = hw;
    l.outC = n;
    l.outH = l.outW = out;
    l.kh = l.kw = k;
    return l;
}

TEST(Eq5, HandComputedCases)
{
    // VGG16 conv1: 3x3x3 window.
    const auto l1 = convLayer(3, 224, 64, 3, 224);
    EXPECT_EQ(fetchWordsPerOutput(l1, {16, 256}), 2u); // ceil(432/256)
    EXPECT_EQ(fetchWordsPerOutput(l1, {8, 256}), 1u);  // ceil(216/256)
    // VGG16 conv2: 3x3x64.
    const auto l2 = convLayer(64, 224, 64, 3, 224);
    EXPECT_EQ(fetchWordsPerOutput(l2, {16, 256}), 36u);
    EXPECT_EQ(fetchWordsPerOutput(l2, {8, 256}), 18u);
}

TEST(Eq6, HandComputedCases)
{
    const auto l = convLayer(64, 224, 64, 3, 224);
    // ceil(64 * 8 / 256) * 224 * 224 = 2 * 50176.
    EXPECT_EQ(saveWords(l, {8, 256}), 2u * 50176u);
    EXPECT_EQ(saveWords(l, {16, 256}), 4u * 50176u);
}

TEST(LayerAccesses, WsFormula)
{
    const auto l = convLayer(64, 224, 64, 3, 224);
    const AccessConfig cfg{8, 256};
    // Eq5 * OH * OW + Eq6.
    EXPECT_EQ(wsLayerAccesses(l, cfg), 18u * 50176u + 2u * 50176u);
}

TEST(LayerAccesses, IsFormulaReusesKernelAcrossWindows)
{
    const auto l = convLayer(64, 224, 64, 3, 224);
    const AccessConfig cfg{8, 256};
    // Eq5 * N, independent of the output spatial size.
    EXPECT_EQ(isLayerAccesses(l, cfg), 18u * 64u);
    auto small = l;
    small.outH = small.outW = 7;
    EXPECT_EQ(isLayerAccesses(small, cfg), 18u * 64u);
}

TEST(LayerAccesses, DepthwiseFetchesPerChannel)
{
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Depthwise;
    l.inC = l.outC = 32;
    l.inH = l.inW = l.outH = l.outW = 14;
    l.kh = l.kw = 3;
    const AccessConfig cfg{8, 256};
    // Each channel's 3x3 kernel: ceil(9*8/256)=1 word, 32 channels.
    EXPECT_EQ(isLayerAccesses(l, cfg), 32u);
}

TEST(LayerAccesses, NonConvIsFree)
{
    nn::LayerDesc pool;
    pool.kind = nn::LayerKind::MaxPool;
    const AccessConfig cfg{8, 256};
    EXPECT_EQ(wsLayerAccesses(pool, cfg), 0u);
    EXPECT_EQ(isLayerAccesses(pool, cfg), 0u);
}

TEST(TableIII, IncaCountsMatchPaper)
{
    // The paper's INCA column (8-bit data / 256-bit bus, convolution
    // layers): VGG16 460,000; VGG19 625,888; ResNet18 349,024. Our
    // conv-stack reconstruction reproduces these to < 0.1 %.
    const AccessConfig cfg{8, 256};
    EXPECT_NEAR(double(networkAccesses(nn::vgg16(), cfg).inca),
                460000.0, 500.0);
    EXPECT_NEAR(double(networkAccesses(nn::vgg19(), cfg).inca),
                625888.0, 500.0);
    EXPECT_NEAR(double(networkAccesses(nn::resnet18(), cfg).inca),
                349024.0, 500.0);
}

TEST(TableIII, RemainingNetworksSameBallpark)
{
    // ResNet50 / MobileNetV2 / MNasNet block details differ slightly
    // from the authors' (paper: 508,950 / 66,832 / 92,333); require
    // the same order of magnitude and < 2x.
    const AccessConfig cfg{8, 256};
    const double rn50 =
        double(networkAccesses(nn::resnet50(), cfg).inca);
    EXPECT_GT(rn50, 0.5 * 508950.0);
    EXPECT_LT(rn50, 2.0 * 508950.0);
    const double mbv2 =
        double(networkAccesses(nn::mobilenetV2(), cfg).inca);
    EXPECT_GT(mbv2, 0.5 * 66832.0);
    EXPECT_LT(mbv2, 2.0 * 66832.0);
    const double mnas =
        double(networkAccesses(nn::mnasnet(), cfg).inca);
    EXPECT_GT(mnas, 0.5 * 92333.0);
    EXPECT_LT(mnas, 2.0 * 92333.0);
}

TEST(Fig7a, WsNeedsMoreAccessesEverywhere)
{
    // Fig. 7a (16-bit / 256-bit): WS needs from ~2x (ResNets) to ~3x
    // (VGGs) more accesses than IS. Our WS accounting follows the
    // printed equations and lands above the paper's WS bars, so the
    // ratio bound is the robust property.
    const AccessConfig cfg{16, 256};
    for (const auto &net : nn::evaluationSuite()) {
        const auto s = networkAccesses(net, cfg);
        EXPECT_GT(s.ratio(), 1.3) << net.name;
    }
}

TEST(Fig7a, VggsGainMoreThanResnets)
{
    const AccessConfig cfg{16, 256};
    const double vgg = networkAccesses(nn::vgg16(), cfg).ratio();
    const double rn = networkAccesses(nn::resnet18(), cfg).ratio();
    EXPECT_GT(vgg, rn);
}

TEST(Access, WiderBusNeverIncreasesWords)
{
    const auto l = convLayer(64, 56, 128, 3, 56);
    const AccessConfig narrow{8, 128};
    const AccessConfig wide{8, 512};
    EXPECT_GE(wsLayerAccesses(l, narrow), wsLayerAccesses(l, wide));
    EXPECT_GE(isLayerAccesses(l, narrow), isLayerAccesses(l, wide));
}

TEST(Access, HigherPrecisionNeverDecreasesWords)
{
    const auto l = convLayer(64, 56, 128, 3, 56);
    EXPECT_LE(isLayerAccesses(l, {8, 256}),
              isLayerAccesses(l, {16, 256}));
    EXPECT_LE(wsLayerAccesses(l, {8, 256}),
              wsLayerAccesses(l, {16, 256}));
}

TEST(Training, IncaRoughlyDoublesItsInferenceAccesses)
{
    // Section V-B-1: "the training process may double the accesses in
    // INCA to fetch transposed weight matrices".
    const AccessConfig cfg{8, 256};
    for (const auto &net : nn::evaluationSuite()) {
        const auto inf = networkAccesses(net, cfg);
        const auto trn = networkTrainingAccesses(net, cfg);
        EXPECT_GE(trn.inca, 2 * inf.inca) << net.name;
        EXPECT_LE(double(trn.inca), 3.5 * double(inf.inca))
            << net.name;
    }
}

TEST(Training, IsStillWinsInTraining)
{
    // "most networks still take advantage of the IS dataflow during
    // training as well".
    const AccessConfig cfg{8, 256};
    for (const auto &net : nn::evaluationSuite()) {
        const auto trn = networkTrainingAccesses(net, cfg);
        EXPECT_GT(trn.baseline, trn.inca) << net.name;
    }
}

TEST(Access, IncludeFcFlagAddsClassifierTraffic)
{
    AccessConfig noFc{8, 256};
    AccessConfig withFc{8, 256};
    withFc.includeFullyConnected = true;
    const auto a = networkAccesses(nn::vgg16(), noFc);
    const auto b = networkAccesses(nn::vgg16(), withFc);
    EXPECT_GT(b.inca, a.inca);
    EXPECT_GT(b.baseline, a.baseline);
}

} // namespace
} // namespace dataflow
} // namespace inca
