/**
 * @file
 * Cross-module consistency: the analytic counters (dataflow), the
 * engines' event stats, and the structural models must agree with
 * each other wherever they describe the same quantity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/endurance.hh"
#include "baseline/engine.hh"
#include "dataflow/access_model.hh"
#include "dataflow/footprint.hh"
#include "dataflow/unroll.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace {

class CrossModel : public ::testing::TestWithParam<const char *>
{
  protected:
    nn::NetworkDesc net() const { return nn::byName(GetParam()); }
};

TEST_P(CrossModel, IncaEngineBufferReadsMatchAccessModel)
{
    // The engine's per-batch weight-fetch words must equal the
    // Eq. 5 x N access counter (conv layers) plus the FC layers'
    // fetches (the counter's Table III mode excludes FC).
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.inference(net(), 64);
    dataflow::AccessConfig cfg{8, 256};
    cfg.includeFullyConnected = true;
    const double expected =
        double(dataflow::networkAccesses(net(), cfg).inca);
    EXPECT_NEAR(run.sum("count.buffer.read"), expected,
                expected * 1e-9);
}

TEST_P(CrossModel, BaselineEngineBufferTrafficMatchesAccessModel)
{
    baseline::BaselineEngine engine(arch::paperBaseline());
    const auto run = engine.inference(net(), 64);
    dataflow::AccessConfig cfg{8, 256};
    cfg.includeFullyConnected = true;
    // Per image x 64; the counter sums fetch + save.
    const double expected =
        64.0 * double(dataflow::networkAccesses(net(), cfg).baseline);
    const double measured = run.sum("count.buffer.read") +
                            run.sum("count.buffer.write");
    EXPECT_NEAR(measured, expected, expected * 1e-9);
}

TEST_P(CrossModel, EngineArrayWritesMatchEnduranceModel)
{
    // The endurance model's writes-per-iteration is derived from the
    // same activation/error accounting the INCA engine charges. The
    // engine additionally writes the first-layer input load and the
    // D6 replication copies -- but those land on OTHERWISE-IDLE
    // cells, so the endurance model's per-cell stress metric excludes
    // them by design. The engine must charge at least the endurance
    // model's writes, and the extra is bounded by the replication
    // degree (<= serial channels <= a generous constant here).
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.training(net(), 64);
    const auto wear = arch::incaEndurance(net(), arch::paperInca(), 64);
    const double engineWrites = run.sum("count.array.write");
    EXPECT_GE(engineWrites, wear.writesPerIteration * 0.99);
    EXPECT_LE(engineWrites, wear.writesPerIteration * 50.0);
}

TEST_P(CrossModel, FootprintActivationsMatchUnrollDirectCount)
{
    // Two independent modules count "activation elements" and must
    // agree exactly.
    const auto row = dataflow::footprint(net());
    const auto unroll = dataflow::unrollComparison(net());
    EXPECT_DOUBLE_EQ(row.inca.rram, double(unroll.direct));
}

TEST_P(CrossModel, StaticEnergyIsIdleTimesLatency)
{
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto i = inca.training(net(), 64);
    EXPECT_NEAR(i.staticEnergy, inca.idlePower() * i.latency,
                i.staticEnergy * 1e-9);
    const auto b = base.inference(net(), 64);
    EXPECT_NEAR(b.staticEnergy, base.idlePower() * b.latency,
                b.staticEnergy * 1e-9);
}

TEST_P(CrossModel, EnergyDecomposesIntoBreakdownClasses)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.training(net(), 64);
    const double classes =
        run.sum("energy.dram") + run.sum("energy.buffer") +
        run.sum("energy.array") + run.sum("energy.adc") +
        run.sum("energy.dac") + run.sum("energy.digital");
    EXPECT_NEAR(run.energy(), classes + run.staticEnergy,
                run.energy() * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossModel,
                         ::testing::Values("vgg16", "resnet18",
                                           "resnet50", "mobilenetv2",
                                           "mnasnet", "lenet5",
                                           "vgg8"));

} // namespace
} // namespace inca
