/**
 * @file
 * Sneak-path and 3D-structure model tests (paper Sections II-A and
 * IV-A: why 1R cannot scale, why INCA uses transistors and HRRAM).
 */

#include <gtest/gtest.h>

#include "circuit/rram3d.hh"
#include "circuit/sneak.hh"

namespace inca {
namespace circuit {
namespace {

TEST(Sneak, SelectedCurrentFollowsState)
{
    const RramDevice d = paperDevice();
    const auto on = sneak1R(d, 16, true);
    const auto off = sneak1R(d, 16, false);
    EXPECT_NEAR(on.selectedCurrent, d.vRead / d.rOn, 1e-12);
    EXPECT_NEAR(off.selectedCurrent, d.vRead / d.rOff, 1e-15);
    EXPECT_GT(on.selectedCurrent, off.selectedCurrent);
}

TEST(Sneak, OneRMarginCollapsesWithArraySize)
{
    const RramDevice d = paperDevice();
    double prev = 1.0;
    for (int n : {2, 4, 8, 16, 32, 64, 128}) {
        const auto a = sneak1R(d, n);
        EXPECT_LT(a.readMargin, prev) << "n=" << n;
        prev = a.readMargin;
    }
    // At 128 x 128 the sneak network dwarfs the selected cell.
    EXPECT_LT(sneak1R(d, 128).readMargin, 0.05);
}

TEST(Sneak, WorstCaseReadingOffCellIsHopeless)
{
    // Reading a high-resistance cell among on-state neighbours: the
    // sneak current is orders of magnitude above the signal even in
    // small 1R arrays -- the core reason selector-free crossbars
    // fail.
    const RramDevice d = paperDevice();
    const auto a = sneak1R(d, 16, false);
    EXPECT_GT(a.sneakCurrent, 100.0 * a.selectedCurrent);
    EXPECT_LT(a.readMargin, 0.01);
}

TEST(Sneak, TransistorsRestoreTheMargin)
{
    const RramDevice d = paperDevice();
    const auto gated = sneakGated(d, 128, true);
    EXPECT_GT(gated.readMargin, 0.99);
    const auto gatedOff = sneakGated(d, 128, false);
    // Even the off-state read stays readable under gating.
    EXPECT_GT(gatedOff.readMargin, 0.5);
}

TEST(Sneak, GatedLeakageScalesWithCells)
{
    const RramDevice d = paperDevice();
    const auto small = sneakGated(d, 16);
    const auto large = sneakGated(d, 128);
    EXPECT_GT(large.sneakCurrent, small.sneakCurrent);
    EXPECT_NEAR(large.sneakCurrent / small.sneakCurrent,
                (128.0 * 128.0 - 1.0) / (16.0 * 16.0 - 1.0), 1.0);
}

TEST(Sneak, MaxOneRArrayIsSmall)
{
    const RramDevice d = paperDevice();
    const int maxN = maxArraySize1R(d, 0.5);
    EXPECT_GT(maxN, 0);
    EXPECT_LE(maxN, 8);
}

TEST(SneakDeath, BadArgumentsPanic)
{
    const RramDevice d = paperDevice();
    EXPECT_DEATH(sneak1R(d, 1), "n >= 2");
    EXPECT_DEATH(maxArraySize1R(d, 1.5), "margin");
}

TEST(Rram3D, IncaGeometryFeasibleOnlyAsHrram)
{
    // 16 x 16 x 64: 64 planes exceed the vertical-layer limit but fit
    // the horizontal-stacking envelope -- "INCA demands a design with
    // highly stacked 3D RRAM but not a large size plane. Therefore,
    // we chose HRRAM."
    const auto v = incaChoice(Stack3DStyle::Vrram);
    const auto h = incaChoice(Stack3DStyle::Hrram);
    EXPECT_FALSE(v.feasible);
    EXPECT_NE(v.reason.find("vertical layer"), std::string::npos);
    EXPECT_TRUE(h.feasible);
    EXPECT_EQ(h.cells, 16 * 16 * 64);
}

TEST(Rram3D, HrramFootprintMatchesTableV)
{
    // The HRRAM evaluation of the Table II stack must equal the area
    // model's 49.152 um^2 figure.
    const auto h = incaChoice(Stack3DStyle::Hrram);
    EXPECT_NEAR(h.footprint, 49.152e-12, 1.0e-12);
}

TEST(Rram3D, VrramSuitsShallowStacks)
{
    // A shallow, wide structure is VRRAM territory.
    const auto v = evaluate3D(Stack3DStyle::Vrram, 64, 8, Cell2T1R{});
    EXPECT_TRUE(v.feasible);
    const auto h = evaluate3D(Stack3DStyle::Hrram, 65, 8, Cell2T1R{});
    EXPECT_FALSE(h.feasible);
    EXPECT_NE(h.reason.find("plane side"), std::string::npos);
}

TEST(Rram3D, HorizontalStackLimitEnforced)
{
    const auto h =
        evaluate3D(Stack3DStyle::Hrram, 16, 256, Cell2T1R{});
    EXPECT_FALSE(h.feasible);
    EXPECT_NE(h.reason.find("horizontal"), std::string::npos);
}

TEST(Rram3D, StyleNames)
{
    EXPECT_STREQ(stack3DStyleName(Stack3DStyle::Vrram), "VRRAM");
    EXPECT_STREQ(stack3DStyleName(Stack3DStyle::Hrram), "HRRAM");
}

} // namespace
} // namespace circuit
} // namespace inca
