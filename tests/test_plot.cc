/**
 * @file
 * ASCII chart rendering tests.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/plot.hh"

namespace inca {
namespace sim {
namespace {

int
hashesOnLine(const std::string &chart, const std::string &label)
{
    const size_t line = chart.find(label);
    EXPECT_NE(line, std::string::npos) << label;
    const size_t end = chart.find('\n', line);
    int n = 0;
    for (size_t i = line; i < end; ++i)
        n += chart[i] == '#';
    return n;
}

TEST(BarChart, EmptyAndZero)
{
    EXPECT_EQ(barChart({}), "(no data)\n");
    const auto chart = barChart({{"zero", 0.0}});
    EXPECT_NE(chart.find("zero"), std::string::npos);
    EXPECT_EQ(hashesOnLine(chart, "zero"), 0);
}

TEST(BarChart, ProportionalLengths)
{
    const auto chart =
        barChart({{"big", 100.0}, {"half", 50.0}, {"tiny", 1.0}});
    const int big = hashesOnLine(chart, "big");
    const int half = hashesOnLine(chart, "half");
    const int tiny = hashesOnLine(chart, "tiny");
    EXPECT_NEAR(double(big) / double(half), 2.0, 0.2);
    EXPECT_GE(tiny, 1); // nonzero values always visible
    EXPECT_GT(half, tiny);
}

TEST(BarChart, LogScaleCompresses)
{
    BarOptions log;
    log.logScale = true;
    const auto chart =
        barChart({{"k", 1000.0}, {"h", 100.0}, {"t", 10.0}}, log);
    const int k = hashesOnLine(chart, "k");
    const int h = hashesOnLine(chart, "h");
    const int t = hashesOnLine(chart, "t");
    // log10: 3 : 2 : 1.
    EXPECT_NEAR(double(k) / double(t), 3.0, 0.5);
    EXPECT_NEAR(double(h) / double(t), 2.0, 0.5);
    EXPECT_NE(chart.find("log10"), std::string::npos);
}

TEST(BarChart, ValuesAndUnitsPrinted)
{
    BarOptions opt;
    opt.unit = "x";
    opt.precision = 1;
    const auto chart = barChart({{"vgg16", 20.6}}, opt);
    EXPECT_NE(chart.find("20.6 x"), std::string::npos);
}

TEST(BarChart, LabelsAligned)
{
    const auto chart = barChart({{"a", 1.0}, {"longer", 2.0}});
    // Both bars start at the same column.
    const size_t bar1 = chart.find('|');
    const size_t line2 = chart.find('\n') + 1;
    const size_t bar2 = chart.find('|', line2);
    EXPECT_EQ(bar1, bar2 - line2);
}

TEST(BarChartDeath, NegativeValues)
{
    EXPECT_DEATH(barChart({{"bad", -1.0}}), "non-negative");
}

TEST(BarChart, LogScaleClampsSubUnityToAxisFloor)
{
    // Sub-unity values no longer abort a log-scale chart: they pin to
    // the axis floor (one '#') with a warning, and zeros stay empty.
    BarOptions log;
    log.logScale = true;
    setQuiet(true);
    const auto chart = barChart(
        {{"big", 100.0}, {"sub", 0.5}, {"zero", 0.0}}, log);
    setQuiet(false);
    EXPECT_GT(hashesOnLine(chart, "big"), 1);
    EXPECT_EQ(hashesOnLine(chart, "sub"), 1);
    EXPECT_EQ(hashesOnLine(chart, "zero"), 0);
}

TEST(LineChart, EmptyAndSinglePoint)
{
    EXPECT_EQ(lineChart({}), "(no data)\n");
    const auto chart = lineChart({{1.0, 2.0}});
    EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(LineChart, MonotoneSeriesFillsDiagonal)
{
    std::vector<Point> pts;
    for (int i = 0; i <= 10; ++i)
        pts.push_back({double(i), double(i)});
    const auto chart = lineChart(pts, {40, 10, false});
    // Stars present, axis rendered, extremes annotated.
    int stars = 0;
    for (char c : chart)
        stars += c == '*';
    EXPECT_GE(stars, 8);
    EXPECT_NE(chart.find('+'), std::string::npos);
    EXPECT_NE(chart.find("10"), std::string::npos);
}

TEST(LineChart, LogYAnnotated)
{
    const auto chart = lineChart({{0.0, 1.0}, {1.0, 1000.0}},
                                 {40, 10, true});
    EXPECT_NE(chart.find("(log y-axis)"), std::string::npos);
}

TEST(LineChartDeath, LogYNeedsPositive)
{
    EXPECT_DEATH(lineChart({{0.0, 0.0}}, {40, 10, true}),
                 "positive");
}

} // namespace
} // namespace sim
} // namespace inca
