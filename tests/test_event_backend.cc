/**
 * @file
 * The event backend's correctness contract, tested differentially
 * against the analytic engines over ~200 seeded property cases
 * (network x design point x engine x phase x batch):
 *
 *  - overlap off: the event-driven schedule folds to the identical
 *    floating-point additions as the analytic walk, so every number
 *    in the RunCost -- per-layer latencies, every stat, the run
 *    makespan, static energy -- is bit-identical (0 ULP);
 *  - overlap on: double-buffered loads may only start instructions
 *    earlier, so the makespan never increases, while the work itself
 *    (dynamic energy, per-layer stats) stays bit-identical;
 *  - the whole contract holds unchanged at 1, 2, and 8 threads and
 *    with the evaluation cache on or off -- the schedule is a pure
 *    function of the lowered program.
 *
 * Plus the schedule-level invariants the fold rests on: no
 * instruction starts before its dependencies finish, and the exit
 * sync defines the makespan.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/cache.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "event/event.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"
#include "test_fixtures.hh"

namespace inca {
namespace {

using testing::Backend;
using testing::IncaPoint;
using testing::incaPointConfig;
using testing::runBaseline;
using testing::runInca;

/**
 * Every number in a RunCost, rendered with full double precision.
 * Byte-equality of two transcripts is bit-equality of two runs.
 */
std::string
transcript(const arch::RunCost &run)
{
    char buf[64];
    std::string out = run.network + "/" +
                      std::to_string(run.batchSize) + "\n";
    const auto num = [&](double v) {
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out += buf;
    };
    for (const auto &layer : run.layers) {
        out += layer.name + " k" +
               std::to_string(int(layer.kind)) + " t=";
        num(layer.latency);
        for (const auto &[stat, value] : layer.stats.entries()) {
            out += " " + stat + "=";
            num(value);
        }
        out += "\n";
    }
    out += "latency=";
    num(run.latency);
    out += " static=";
    num(run.staticEnergy);
    out += "\n";
    return out;
}

/** One seeded differential case. */
struct EventCase
{
    bool isInca;
    nn::NetworkDesc net;
    IncaPoint point; ///< geometry for the IS engine (batch unused)
    arch::Phase phase;
    int batch;

    std::string
    describe() const
    {
        return std::string(isInca ? "inca." : "ws.") + net.name +
               (phase == arch::Phase::Training ? ".trn" : ".inf") +
               ".b" + std::to_string(batch) + ".s" +
               std::to_string(point.subarraySize);
    }
};

/**
 * The seeded case list: every network/engine/phase reachable, design
 * points and batches drawn from a fixed-seed stream so the sweep is
 * broad but perfectly reproducible.
 */
std::vector<EventCase>
seededCases(int count)
{
    const std::vector<nn::NetworkDesc> nets = {
        nn::lenet5(),      nn::vgg8(),    nn::vgg16(),
        nn::resnet18(),    nn::mnasnet(), nn::mobilenetV2(),
    };
    const auto points = testing::cacheSweepPoints();
    const int batches[] = {4, 16, 64, 96};
    Rng rng(0xE7E47u);
    std::vector<EventCase> cases;
    cases.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i) {
        EventCase c{
            rng.below(2) == 0,
            nets[rng.below(nets.size())],
            points[rng.below(points.size())],
            rng.below(2) == 0 ? arch::Phase::Inference
                              : arch::Phase::Training,
            batches[rng.below(4)],
        };
        cases.push_back(std::move(c));
    }
    return cases;
}

/** Lower one case with the given overlap setting. */
ir::Program
lowerCase(const EventCase &c, bool overlap)
{
    const ir::LowerOptions opts{overlap};
    return c.isInca
               ? ir::lowerInca(incaPointConfig(c.point), c.net,
                               c.phase, c.batch, opts)
               : ir::lowerWs(arch::paperBaseline(), c.net, c.phase,
                             c.batch, opts);
}

/** The analytic engines' answer for one case. */
arch::RunCost
analyticRun(const EventCase &c)
{
    return c.isInca
               ? runInca(Backend::Analytic,
                         incaPointConfig(c.point), c.net, c.phase,
                         c.batch)
               : runBaseline(Backend::Analytic,
                             arch::paperBaseline(), c.net, c.phase,
                             c.batch);
}

/** Restore cache/thread globals however a test exits. */
class EventBackendTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAllCaches();
    }

    void
    TearDown() override
    {
        setCacheEnabled(cacheEnabledFromEnv(
            std::getenv("INCA_CACHE")));
        clearAllCaches();
    }
};

TEST_F(EventBackendTest, OverlapOffIsBitExactAcrossSeededCases)
{
    for (const EventCase &c : seededCases(200)) {
        SCOPED_TRACE(c.describe());
        const auto timed = event::execute(lowerCase(c, false));
        EXPECT_EQ(transcript(timed.run), transcript(analyticRun(c)));
    }
}

TEST_F(EventBackendTest, OverlapOnNeverSlowerAndEnergyUnchanged)
{
    for (const EventCase &c : seededCases(100)) {
        SCOPED_TRACE(c.describe());
        const auto off = event::execute(lowerCase(c, false)).run;
        const auto on = event::execute(lowerCase(c, true)).run;
        // Overlap is a pure latency optimization: it may only start
        // work earlier, never add or remove any.
        EXPECT_LE(on.latency, off.latency);
        EXPECT_EQ(on.sum("energy"), off.sum("energy"));
        ASSERT_EQ(on.layers.size(), off.layers.size());
        for (std::size_t i = 0; i < off.layers.size(); ++i) {
            EXPECT_EQ(on.layers[i].stats.entries(),
                      off.layers[i].stats.entries());
            EXPECT_EQ(on.layers[i].latency, off.layers[i].latency);
        }
    }
}

TEST_F(EventBackendTest, BitIdenticalAtEveryThreadCount)
{
    const auto cases = seededCases(12);
    setCacheEnabled(false);
    std::vector<std::string> reference;
    for (const EventCase &c : cases)
        reference.push_back(
            transcript(event::execute(lowerCase(c, false)).run));

    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ThreadPool::setGlobalThreads(threads);
        setCacheEnabled(true);
        clearAllCaches();
        for (std::size_t i = 0; i < cases.size(); ++i) {
            SCOPED_TRACE(cases[i].describe());
            // Twice: the repeat is served from the layer cache and
            // must still transcribe identically.
            EXPECT_EQ(
                transcript(
                    event::execute(lowerCase(cases[i], false)).run),
                reference[i]);
            EXPECT_EQ(
                transcript(
                    event::execute(lowerCase(cases[i], false)).run),
                reference[i]);
        }
    }
}

TEST_F(EventBackendTest, Vgg16InferenceOverlapIsStrictlyFaster)
{
    // The acceptance pin: on at least one Table III/IV network the
    // double-buffered schedule strictly beats the serial one (vgg16's
    // streamed weight loads hide behind the previous layer's MVMs)
    // with the dynamic energy untouched.
    const ir::LowerOptions on{true};
    const auto cfg = arch::paperInca();
    const auto net = nn::vgg16();
    const auto serial = event::execute(
        ir::lowerInca(cfg, net, arch::Phase::Inference, 64));
    const auto pipelined = event::execute(ir::lowerInca(
        cfg, net, arch::Phase::Inference, 64, on));
    EXPECT_LT(pipelined.run.latency, serial.run.latency);
    EXPECT_EQ(pipelined.run.sum("energy"), serial.run.sum("energy"));
}

TEST_F(EventBackendTest, ScheduleRespectsDependencies)
{
    for (const EventCase &c : seededCases(20)) {
        SCOPED_TRACE(c.describe());
        for (const bool overlap : {false, true}) {
            const ir::Program p = lowerCase(c, overlap);
            const auto timed = event::execute(p);
            ASSERT_EQ(timed.schedule.size(), p.instrs.size());
            for (std::size_t i = 0; i < p.instrs.size(); ++i) {
                const auto &slot = timed.schedule[i];
                EXPECT_EQ(slot.finish,
                          slot.start + p.instrs[i].duration);
                for (const int d : p.instrs[i].deps)
                    EXPECT_GE(slot.start,
                              timed.schedule[std::size_t(d)].finish);
            }
            // The exit sync is last and defines the makespan.
            EXPECT_EQ(timed.makespan,
                      timed.schedule.back().finish);
            EXPECT_EQ(timed.run.latency, timed.makespan);
        }
    }
}

} // namespace
} // namespace inca
