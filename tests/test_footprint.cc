/**
 * @file
 * Memory-footprint model tests against the paper's Table IV.
 */

#include <gtest/gtest.h>

#include "dataflow/footprint.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace dataflow {
namespace {

TEST(Footprint, StructuralRelations)
{
    for (const auto &net : nn::evaluationSuite()) {
        const auto row = footprint(net);
        const double w = double(net.totalWeights());
        const double a = double(net.totalActivations());
        // Baseline RRAM = weights + transposed copy + activations.
        EXPECT_DOUBLE_EQ(row.baseline.rram, 2.0 * w + a) << net.name;
        // Baseline buffers stage the activations.
        EXPECT_DOUBLE_EQ(row.baseline.buffers, a) << net.name;
        // INCA: activations in RRAM, weights in buffers.
        EXPECT_DOUBLE_EQ(row.inca.rram, a) << net.name;
        EXPECT_DOUBLE_EQ(row.inca.buffers, w) << net.name;
    }
}

TEST(Footprint, IncaRramEqualsBaselineBuffers)
{
    // A striking Table IV symmetry: INCA's RRAM column equals the
    // baseline's buffer column (both are the activation capacity).
    for (const auto &net : nn::evaluationSuite()) {
        const auto row = footprint(net);
        EXPECT_DOUBLE_EQ(row.inca.rram, row.baseline.buffers)
            << net.name;
    }
}

TEST(Footprint, TableIVVgg16)
{
    // Paper row: baseline 272.57 / 8.69 MiB, INCA 8.69 / 131.94 MiB.
    const auto row = footprint(nn::vgg16());
    EXPECT_NEAR(toMiB(row.baseline.rram), 272.57, 2.0);
    EXPECT_NEAR(toMiB(row.baseline.buffers), 8.69, 0.6);
    EXPECT_NEAR(toMiB(row.inca.rram), 8.69, 0.6);
    EXPECT_NEAR(toMiB(row.inca.buffers), 131.94, 0.5);
}

TEST(Footprint, TableIVVgg19)
{
    const auto row = footprint(nn::vgg19());
    EXPECT_NEAR(toMiB(row.baseline.rram), 283.94, 2.0);
    EXPECT_NEAR(toMiB(row.inca.buffers), 137.00, 0.5);
}

TEST(Footprint, TableIVResnet18)
{
    const auto row = footprint(nn::resnet18());
    EXPECT_NEAR(toMiB(row.baseline.rram), 24.36, 1.0);
    EXPECT_NEAR(toMiB(row.baseline.buffers), 2.08, 0.3);
    EXPECT_NEAR(toMiB(row.inca.buffers), 11.14, 0.7);
}

TEST(Footprint, TableIVResnet50)
{
    const auto row = footprint(nn::resnet50());
    EXPECT_NEAR(toMiB(row.baseline.rram), 58.79, 3.0);
    EXPECT_NEAR(toMiB(row.inca.buffers), 24.32, 1.5);
}

TEST(Footprint, TableIVLightModels)
{
    // Light models: INCA's total footprint is smaller than the
    // baseline's on both columns (weights are tiny).
    const auto mbv2 = footprint(nn::mobilenetV2());
    EXPECT_NEAR(toMiB(mbv2.baseline.rram), 13.05, 2.0);
    EXPECT_NEAR(toMiB(mbv2.inca.buffers), 3.31, 1.0);
    const auto mnas = footprint(nn::mnasnet());
    EXPECT_NEAR(toMiB(mnas.baseline.rram), 13.57, 2.5);
    EXPECT_NEAR(toMiB(mnas.inca.buffers), 4.14, 1.5);
}

TEST(Footprint, IncaNeedsFarLessRram)
{
    // Limitation 2's bottom line: INCA's RRAM requirement is a small
    // fraction of the baseline's for the heavy networks.
    for (const auto &net : nn::heavySuite()) {
        const auto row = footprint(net);
        EXPECT_LT(row.inca.rram, 0.25 * row.baseline.rram)
            << net.name;
    }
}

TEST(Footprint, PrecisionScalesLinearly)
{
    const auto p8 = footprint(nn::resnet18(), 8);
    const auto p16 = footprint(nn::resnet18(), 16);
    EXPECT_DOUBLE_EQ(p16.baseline.rram, 2.0 * p8.baseline.rram);
    EXPECT_DOUBLE_EQ(p16.inca.buffers, 2.0 * p8.inca.buffers);
}

TEST(Footprint, ToMiB)
{
    EXPECT_DOUBLE_EQ(toMiB(1048576.0), 1.0);
    EXPECT_DOUBLE_EQ(toMiB(0.0), 0.0);
}

} // namespace
} // namespace dataflow
} // namespace inca
