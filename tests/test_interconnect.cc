/**
 * @file
 * H-tree interconnect model tests.
 */

#include <gtest/gtest.h>

#include "memory/interconnect.hh"

namespace inca {
namespace memory {
namespace {

TEST(HTree, LevelsCeilLog2)
{
    HTree t;
    t.leaves = 1;
    EXPECT_EQ(t.levels(), 0);
    t.leaves = 2;
    EXPECT_EQ(t.levels(), 1);
    t.leaves = 12;
    EXPECT_EQ(t.levels(), 4);
    t.leaves = 16;
    EXPECT_EQ(t.levels(), 4);
    t.leaves = 17;
    EXPECT_EQ(t.levels(), 5);
}

TEST(HTree, PathLengthConvergesBelowTileSide)
{
    // Geometric series: side/2 + side/4 + ... < side.
    HTree t;
    t.leaves = 1024;
    EXPECT_LT(t.pathLength(), t.tileSide);
    EXPECT_GT(t.pathLength(), 0.9 * t.tileSide);
}

TEST(HTree, TransferEnergyScalesWithBits)
{
    HTree t;
    EXPECT_DOUBLE_EQ(t.transferEnergy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(t.transferEnergy(512.0),
                     2.0 * t.transferEnergy(256.0));
    EXPECT_GT(t.transferEnergy(256.0), 0.0);
}

TEST(HTree, BroadcastCostsMoreThanUnicast)
{
    HTree t;
    t.leaves = 12;
    EXPECT_GT(t.broadcastEnergy(256.0), t.transferEnergy(256.0));
}

TEST(HTree, TotalWireLengthPerLevel)
{
    // Each level contributes 2^l branches of side/2^(l+1): exactly
    // side/2 per level.
    HTree t;
    t.leaves = 8; // 3 levels
    EXPECT_NEAR(t.totalWireLength(), 3.0 * t.tileSide / 2.0, 1e-12);
}

TEST(HTree, DelayPositiveAndSubNanosecond)
{
    HTree t;
    EXPECT_GT(t.transferDelay(), 0.0);
    // A sub-mm path with 60 ps/mm repeated wire: well under 1 ns.
    EXPECT_LT(t.transferDelay(), 1e-9);
}

TEST(HTree, JustifiesBufferEnergyConstant)
{
    // The SRAM per-bit constants in memory/sram.hh embed the H-tree
    // transport; check the wire share is the dominant part of the
    // 1 pJ/bit read constant for a tile-scale tree. Path ~0.56 mm at
    // 0.08 pJ/bit/mm is ~0.045 pJ of pure wire; with repeaters,
    // drivers and the array access the order of magnitude is right.
    HTree t;
    const double wirePerBit = t.transferEnergy(1.0);
    EXPECT_GT(wirePerBit, 0.01e-12);
    EXPECT_LT(wirePerBit, 1.0e-12);
}

} // namespace
} // namespace memory
} // namespace inca
