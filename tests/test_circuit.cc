/**
 * @file
 * Circuit-model tests against the paper's published constants
 * (Table II) and scaling claims.
 */

#include <gtest/gtest.h>

#include "circuit/adc.hh"
#include "circuit/cells.hh"
#include "circuit/digital.hh"
#include "circuit/rram.hh"
#include "circuit/tech.hh"

namespace inca {
namespace circuit {
namespace {

TEST(Rram, TableIIDefaults)
{
    const RramDevice d = paperDevice();
    EXPECT_DOUBLE_EQ(d.rOn, 240e3);
    EXPECT_DOUBLE_EQ(d.rOff, 24e6);
    EXPECT_DOUBLE_EQ(d.vRead, 0.5);
    EXPECT_DOUBLE_EQ(d.vWrite, 1.1);
    EXPECT_DOUBLE_EQ(d.tRead, 10e-9);
    EXPECT_DOUBLE_EQ(d.tWrite, 50e-9);
    EXPECT_DOUBLE_EQ(d.onOffRatio(), 100.0);
}

TEST(Rram, OnCellPowerConsistentWithResistance)
{
    // P = V^2 / R at the read voltage: 0.25 / 240k = 1.04 uW, matching
    // Table II's 1.03 uW on-cell power to ~1 %.
    const RramDevice d = paperDevice();
    const double derived = d.vRead * d.vRead / d.rOn;
    EXPECT_NEAR(derived, d.pOnCell, 0.02e-6);
}

TEST(Rram, ReadEnergies)
{
    const RramDevice d = paperDevice();
    // On-cell: 1.03 uW x 10 ns = 10.3 fJ.
    EXPECT_NEAR(d.readEnergyOn(), 10.3e-15, 0.1e-15);
    EXPECT_NEAR(d.readEnergyOff(), 0.1042e-15, 0.001e-15);
    EXPECT_NEAR(d.avgReadEnergy(0.5),
                (d.readEnergyOn() + d.readEnergyOff()) / 2.0, 1e-18);
    EXPECT_DOUBLE_EQ(d.avgReadEnergy(1.0), d.readEnergyOn());
    EXPECT_DOUBLE_EQ(d.avgReadEnergy(0.0), d.readEnergyOff());
}

TEST(Rram, WriteEnergies)
{
    const RramDevice d = paperDevice();
    // On-state write: 1.1^2 / 240k x 50 ns = 252 fJ.
    EXPECT_NEAR(d.writeEnergyOn(), 252e-15, 2e-15);
    EXPECT_NEAR(d.writeEnergyOff(), 2.52e-15, 0.05e-15);
    EXPECT_GT(d.writeEnergyOn(), d.readEnergyOn());
}

TEST(RramDeath, BadOnFractionPanics)
{
    const RramDevice d = paperDevice();
    EXPECT_DEATH(d.avgReadEnergy(1.5), "on-fraction");
    EXPECT_DEATH(d.avgWriteEnergy(-0.1), "on-fraction");
}

TEST(Tech, PaperScaling)
{
    const TechScaling s = paperScaling();
    EXPECT_DOUBLE_EQ(s.linearFactor, 0.34);
    EXPECT_NEAR(s.areaFactor(), 0.1156, 1e-9);
    EXPECT_DOUBLE_EQ(s.scaleArea(1.0e-12), 0.1156e-12);
    EXPECT_DOUBLE_EQ(s.scaleEnergy(1.0e-12), 0.34e-12);
    EXPECT_DOUBLE_EQ(s.scaleDelay(10e-9), 3.4e-9);
}

TEST(Cells, BaselineCellAreaMatchesPaper)
{
    // "the baseline one-cell area is 0.030 um^2 (after scaling)".
    Cell1T1R cell;
    EXPECT_NEAR(cell.scaledArea(), 0.030e-12, 0.001e-12);
    EXPECT_NEAR(cell.rawArea(), 540e-9 * 485e-9, 1e-18);
}

TEST(Cells, IncaStackedCellAreaMatchesPaper)
{
    // "16 cells of INCA occupy only 0.048 um^2".
    Cell2T1R cell;
    EXPECT_NEAR(cell.scaledArea(), 0.048e-12, 0.002e-12);
    EXPECT_EQ(cell.verticalStack, 16);
    EXPECT_NEAR(cell.areaPerCell() * 16.0, cell.scaledArea(), 1e-18);
}

TEST(Cells, TwoTransistorCellLargerThanOneTransistor)
{
    Cell1T1R base;
    Cell2T1R inca;
    EXPECT_GT(inca.rawArea(), base.rawArea());
    // ... but per stored bit, stacking wins by ~10x.
    EXPECT_LT(inca.areaPerCell(), base.scaledArea());
}

TEST(Adc, EightBitEqualsFourFourBitEnergy)
{
    // The paper's rule: one 8-bit ADC consumes as much energy as four
    // 4-bit ADCs, not two.
    const AdcModel a4 = makeAdc(4);
    const AdcModel a8 = makeAdc(8);
    EXPECT_NEAR(a8.energyPerConversion / a4.energyPerConversion, 4.0,
                1e-9);
}

TEST(Adc, FrequencyAnchors)
{
    EXPECT_NEAR(makeAdc(4).frequencyHz, 2.1e9, 1e6);
    EXPECT_NEAR(makeAdc(8).frequencyHz, 1.2e9, 1e6);
}

TEST(Adc, ConversionLatency)
{
    const AdcModel a4 = makeAdc(4);
    EXPECT_NEAR(a4.conversionLatency(), 4.0 / 2.1e9, 1e-12);
    const AdcModel a8 = makeAdc(8);
    EXPECT_GT(a8.conversionLatency(), a4.conversionLatency());
}

TEST(Adc, AreaAnchorsReproduceTableV)
{
    // Table V: 16128 ADCs -> 30.298 mm^2 (8-bit) / 4.5864 mm^2
    // (4-bit).
    EXPECT_NEAR(makeAdc(8).area * 16128.0, 30.298e-6, 0.2e-6);
    EXPECT_NEAR(makeAdc(4).area * 16128.0, 4.5864e-6, 0.05e-6);
}

/** Energy and area must grow monotonically with resolution. */
class AdcMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(AdcMonotone, GrowsWithBits)
{
    const int bits = GetParam();
    EXPECT_GT(makeAdc(bits + 1).energyPerConversion,
              makeAdc(bits).energyPerConversion);
    EXPECT_GT(makeAdc(bits + 1).area, makeAdc(bits).area);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdcMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

TEST(AdcDeath, BadResolutionPanics)
{
    EXPECT_DEATH(makeAdc(0), "resolution");
    EXPECT_DEATH(makeAdc(13), "resolution");
}

TEST(Dac, TableVAreaAnchors)
{
    const DacModel dac = makeDac();
    // Baseline: 16128 x 128 DACs -> 0.343 mm^2.
    EXPECT_NEAR(dac.area * 16128.0 * 128.0, 0.343e-6, 0.01e-6);
    // INCA: 16128 x 256 DACs -> 0.686 mm^2.
    EXPECT_NEAR(dac.area * 16128.0 * 256.0, 0.686e-6, 0.02e-6);
}

TEST(Digital, AdderTreeEnergy)
{
    const DigitalModel m = makeDigital();
    EXPECT_DOUBLE_EQ(adderTreeEnergy(m, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(adderTreeEnergy(m, 2.0), m.adder16bit);
    EXPECT_DOUBLE_EQ(adderTreeEnergy(m, 17.0), 16.0 * m.adder16bit);
    EXPECT_DOUBLE_EQ(adderTreeEnergy(m, 2.0, false), m.adder8bit);
    EXPECT_DOUBLE_EQ(adderTreeEnergy(m, 0.0), 0.0);
}

TEST(Digital, RelativeCosts)
{
    const DigitalModel m = makeDigital();
    // The AND gate (INCA's ReLU gradient trick) must be far cheaper
    // than an adder or a LUT lookup -- that is the point of the trick.
    EXPECT_LT(m.andGate, m.adder8bit / 2.0);
    EXPECT_LT(m.andGate, m.lutLookup / 2.0);
    EXPECT_GT(m.shiftAccumulate, m.adder8bit);
}

} // namespace
} // namespace circuit
} // namespace inca
