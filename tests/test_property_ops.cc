/**
 * @file
 * Property-based tests: instead of pinning hand-picked examples,
 * generate a few hundred random cases per property from a fixed seed
 * and assert relations that must hold EXACTLY.
 *
 * Exactness discipline: every property below is bit-exact, never
 * approximate. Scalings use powers of two (exact in binary floating
 * point), additivity uses integer-valued floats (closed under + and *
 * well inside 2^24), and the analytic models are integer/closed-form
 * arithmetic. An EXPECT_NEAR property can silently rot as the model
 * drifts; an exact one cannot.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "dataflow/access_model.hh"
#include "dataflow/footprint.hh"
#include "nn/layer.hh"
#include "nn/model_zoo.hh"
#include "tensor/ops.hh"

namespace inca {
namespace {

constexpr int kCases = 200;
constexpr std::uint64_t kSeed = 0xC0FFEE;

using tensor::ConvSpec;
using tensor::Tensor;

/** Random small conv problem: shapes, spec, and data. */
struct ConvCase
{
    Tensor x, w;
    ConvSpec spec;
};

ConvCase
randomConvCase(Rng &rng)
{
    ConvCase c;
    const std::int64_t n = 1 + std::int64_t(rng.below(2));
    const std::int64_t ch = 1 + std::int64_t(rng.below(3));
    const int kh = 1 + int(rng.below(3));
    const int kw = 1 + int(rng.below(3));
    c.spec.stride = 1 + int(rng.below(2));
    c.spec.pad = int(rng.below(2));
    const std::int64_t h =
        kh + std::int64_t(rng.below(6)); // window always fits
    const std::int64_t w = kw + std::int64_t(rng.below(6));
    const std::int64_t f = 1 + std::int64_t(rng.below(4));
    c.x = Tensor::randn({n, ch, h, w}, rng);
    c.w = Tensor::randn({f, ch, kh, kw}, rng);
    return c;
}

/** Tensor of uniform integer values in [-range, range]. */
Tensor
integerTensor(std::vector<std::int64_t> shape, Rng &rng, int range)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = float(int(rng.below(std::uint64_t(2 * range + 1))) -
                     range);
    return t;
}

TEST(PropertyConv, ProductionPathsMatchNaiveBitForBit)
{
    Rng rng(kSeed);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const auto c = randomConvCase(rng);
        const auto ref = tensor::conv2dNaive(c.x, c.w, c.spec);
        EXPECT_TRUE(tensor::conv2d(c.x, c.w, c.spec).equals(ref));
        EXPECT_TRUE(tensor::conv2dGemm(c.x, c.w, c.spec).equals(ref));
    }
}

TEST(PropertyConv, PowerOfTwoScalingIsExactlyHomogeneous)
{
    // conv2d(s*x, w) == s*conv2d(x, w) exactly when s is a power of
    // two: scaling by 2^e only moves exponents, so every product and
    // partial sum rounds identically.
    Rng rng(kSeed + 1);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const auto c = randomConvCase(rng);
        const float s = float(std::int64_t(1) << rng.below(4)) *
                        (rng.below(2) ? 1.0f : 0.25f);
        Tensor scaled = c.x;
        scaled *= s;
        Tensor expect = tensor::conv2d(c.x, c.w, c.spec);
        expect *= s;
        EXPECT_TRUE(
            tensor::conv2d(scaled, c.w, c.spec).equals(expect));
    }
}

TEST(PropertyConv, AdditivityIsExactOnIntegerValues)
{
    Rng rng(kSeed + 2);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        auto c = randomConvCase(rng);
        const auto xShape = c.x.shape();
        const Tensor x1 = integerTensor(xShape, rng, 8);
        const Tensor x2 = integerTensor(xShape, rng, 8);
        const Tensor w = integerTensor(c.w.shape(), rng, 4);
        Tensor xSum = x1;
        xSum += x2;
        Tensor expect = tensor::conv2d(x1, w, c.spec);
        expect += tensor::conv2d(x2, w, c.spec);
        EXPECT_TRUE(tensor::conv2d(xSum, w, c.spec).equals(expect));
    }
}

TEST(PropertyActivations, ReluIsIdempotentAndNonNegative)
{
    Rng rng(kSeed + 3);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const std::int64_t n = 1 + std::int64_t(rng.below(64));
        const Tensor x = Tensor::randn({n}, rng);
        const Tensor y = tensor::relu(x);
        EXPECT_TRUE(tensor::relu(y).equals(y));
        for (std::int64_t j = 0; j < n; ++j) {
            EXPECT_GE(y[j], 0.0f);
            EXPECT_EQ(y[j], x[j] > 0.0f ? x[j] : 0.0f);
        }
        // The gradient mask agrees with the forward clamp.
        const Tensor dy = Tensor::full({n}, 1.0f);
        const Tensor dx = tensor::reluGrad(dy, x);
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_EQ(dx[j], x[j] > 0.0f ? 1.0f : 0.0f);
    }
}

TEST(PropertyLinearAlgebra, TransposeIsAnInvolution)
{
    Rng rng(kSeed + 4);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const std::int64_t m = 1 + std::int64_t(rng.below(8));
        const std::int64_t n = 1 + std::int64_t(rng.below(8));
        const Tensor a = Tensor::randn({m, n}, rng);
        EXPECT_TRUE(
            tensor::transpose(tensor::transpose(a)).equals(a));
    }
}

TEST(PropertyLinearAlgebra, IdentityIsMatmulNeutral)
{
    Rng rng(kSeed + 5);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const std::int64_t m = 1 + std::int64_t(rng.below(8));
        const std::int64_t n = 1 + std::int64_t(rng.below(8));
        const Tensor a = Tensor::randn({m, n}, rng);
        Tensor eye({n, n});
        for (std::int64_t j = 0; j < n; ++j)
            eye.at(j, j) = 1.0f;
        EXPECT_TRUE(tensor::matmul(a, eye).equals(a));
    }
}

// -------------------------------------------------------------------
// Analytic access-model invariants (paper Eqs. 5 & 6).

dataflow::AccessConfig
randomAccessConfig(Rng &rng)
{
    const int bitsChoices[] = {2, 4, 8, 16};
    const int busChoices[] = {64, 128, 256, 512};
    dataflow::AccessConfig cfg;
    cfg.bitPrecision = bitsChoices[rng.below(4)];
    cfg.busWidthBits = busChoices[rng.below(4)];
    return cfg;
}

nn::LayerDesc
randomConvLayer(Rng &rng)
{
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Conv;
    l.name = "prop";
    l.kh = l.kw = 1 + int(rng.below(5));
    l.stride = 1;
    l.pad = 0;
    l.inC = 1 + std::int64_t(rng.below(64));
    l.outC = 1 + std::int64_t(rng.below(64));
    l.outH = l.outW = 1 + std::int64_t(rng.below(56));
    l.inH = l.outH + l.kh - 1;
    l.inW = l.outW + l.kw - 1;
    return l;
}

TEST(PropertyAccessModel, IncaAccessesAreLinearInOutputChannels)
{
    // INCA fetches Eq5 words once per output channel (N), so doubling
    // N exactly doubles the IS count; Eq5 itself never sees N.
    Rng rng(kSeed + 6);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const auto cfg = randomAccessConfig(rng);
        auto layer = randomConvLayer(rng);
        const auto once = dataflow::isLayerAccesses(layer, cfg);
        layer.outC *= 2;
        EXPECT_EQ(dataflow::isLayerAccesses(layer, cfg), 2 * once);
    }
}

TEST(PropertyAccessModel, FetchWordsMonotoneInPrecisionAndBus)
{
    Rng rng(kSeed + 7);
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const auto layer = randomConvLayer(rng);
        auto cfg = randomAccessConfig(rng);
        const auto base = dataflow::fetchWordsPerOutput(layer, cfg);
        auto widerData = cfg;
        widerData.bitPrecision *= 2;
        EXPECT_GE(dataflow::fetchWordsPerOutput(layer, widerData),
                  base);
        auto widerBus = cfg;
        widerBus.busWidthBits *= 2;
        EXPECT_LE(dataflow::fetchWordsPerOutput(layer, widerBus),
                  base);
    }
}

TEST(PropertyAccessModel, TrainingExactlyDoublesIncaTraffic)
{
    // Section V-B-1: training re-fetches the transposed weights from
    // the same buffer, doubling INCA's count for every network at
    // every resolution and precision.
    Rng rng(kSeed + 8);
    const char *names[] = {"vgg16",    "resnet18", "mobilenetv2",
                           "mnasnet",  "vgg8",     "resnet50"};
    const std::int64_t sizes[] = {32, 64, 96, 128, 160, 224};
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        nn::InputSpec in;
        in.size = sizes[rng.below(6)];
        const auto net = nn::byName(names[rng.below(6)], in);
        const auto cfg = randomAccessConfig(rng);
        const auto inf = dataflow::networkAccesses(net, cfg);
        const auto trn = dataflow::networkTrainingAccesses(net, cfg);
        EXPECT_EQ(trn.inca, 2 * inf.inca);
        EXPECT_GE(trn.baseline, inf.baseline);
    }
}

TEST(PropertyFootprint, MonotoneInPrecisionAndResolution)
{
    Rng rng(kSeed + 9);
    const char *names[] = {"vgg16", "resnet18", "mobilenetv2",
                           "mnasnet"};
    const std::int64_t sizes[] = {32, 64, 96, 128, 160, 224};
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        const char *name = names[rng.below(4)];
        nn::InputSpec in;
        in.size = sizes[rng.below(5)]; // leave headroom to grow
        const auto net = nn::byName(name, in);
        const auto f8 = dataflow::footprint(net, 8);
        const auto f16 = dataflow::footprint(net, 16);
        EXPECT_GE(f16.baseline.rram, f8.baseline.rram);
        EXPECT_GE(f16.baseline.buffers, f8.baseline.buffers);
        EXPECT_GE(f16.inca.rram, f8.inca.rram);
        EXPECT_GE(f16.inca.buffers, f8.inca.buffers);

        nn::InputSpec bigger = in;
        bigger.size = 224;
        const auto fBig =
            dataflow::footprint(nn::byName(name, bigger), 8);
        EXPECT_GE(fBig.baseline.rram, f8.baseline.rram);
        EXPECT_GE(fBig.inca.rram, f8.inca.rram);
    }
}

TEST(PropertyFootprint, ActivationSwapHoldsEverywhere)
{
    // Table IV's structural identity -- INCA's RRAM need IS the
    // baseline's buffer need -- must hold at every resolution and
    // precision, not just the paper's 224/8-bit points.
    Rng rng(kSeed + 10);
    const char *names[] = {"vgg16",   "vgg19",       "resnet18",
                           "resnet50", "mobilenetv2", "mnasnet"};
    const std::int64_t sizes[] = {32, 64, 96, 128, 160, 224};
    const int precisions[] = {2, 4, 8, 16};
    for (int i = 0; i < kCases; ++i) {
        SCOPED_TRACE(i);
        nn::InputSpec in;
        in.size = sizes[rng.below(6)];
        const auto net = nn::byName(names[rng.below(6)], in);
        const auto f =
            dataflow::footprint(net, precisions[rng.below(4)]);
        EXPECT_EQ(f.inca.rram, f.baseline.buffers);
    }
}

/**
 * The batched RNG entry points (SplitMix64::nextBatch/uniformBatch,
 * Rng::fillRaw/fillUniform) exist so hot loops can draw in chunks;
 * the Monte-Carlo fault sampler's reproducibility rests on each batch
 * being BYTE-identical to the same number of one-at-a-time draws on
 * the same stream key. These properties sweep random seeds, random
 * batch sizes (including 0 and 1), and random split points, and
 * compare raw 64-bit words -- no tolerance anywhere.
 */

TEST(PropertyRandom, SplitMixBatchMatchesSequentialDraws)
{
    Rng meta(kSeed + 11);
    for (int i = 0; i < 100; ++i) {
        SCOPED_TRACE(i);
        const std::uint64_t seed = meta.next();
        const std::size_t count = std::size_t(meta.below(600));

        SplitMix64 seq(seed);
        std::vector<std::uint64_t> ref(count);
        for (auto &v : ref)
            v = seq.next();

        SplitMix64 batched(seed);
        std::vector<std::uint64_t> got(count, 0);
        batched.nextBatch(got.data(), count);
        ASSERT_EQ(got, ref);

        // The generators end in the same state: the next draw after
        // the batch continues the stream, not a fork of it.
        ASSERT_EQ(batched.next(), seq.next());
    }
}

TEST(PropertyRandom, SplitMixBatchSplitsAnywhere)
{
    // Drawing N values as one batch, as two batches split at any
    // point, or one at a time must all be the same stream.
    Rng meta(kSeed + 12);
    for (int i = 0; i < 100; ++i) {
        SCOPED_TRACE(i);
        const std::uint64_t seed = meta.next();
        const std::size_t count = 1 + std::size_t(meta.below(300));
        const std::size_t cut = std::size_t(meta.below(count + 1));

        SplitMix64 whole(seed);
        std::vector<std::uint64_t> ref(count);
        whole.nextBatch(ref.data(), count);

        SplitMix64 parts(seed);
        std::vector<std::uint64_t> got(count, 0);
        parts.nextBatch(got.data(), cut);
        parts.nextBatch(got.data() + cut, count - cut);
        ASSERT_EQ(got, ref);
    }
}

TEST(PropertyRandom, SplitMixUniformBatchMatchesSequential)
{
    Rng meta(kSeed + 13);
    for (int i = 0; i < 100; ++i) {
        SCOPED_TRACE(i);
        const std::uint64_t seed = meta.next();
        const std::size_t count = std::size_t(meta.below(400));

        SplitMix64 seq(seed);
        std::vector<double> ref(count);
        for (auto &v : ref)
            v = seq.uniform();

        SplitMix64 batched(seed);
        std::vector<double> got(count, -1.0);
        batched.uniformBatch(got.data(), count);
        // operator== on doubles here is exact by design: identical
        // bits in, identical mantissa scaling out.
        ASSERT_EQ(got, ref);
        for (double v : got) {
            ASSERT_GE(v, 0.0);
            ASSERT_LT(v, 1.0);
        }
    }
}

TEST(PropertyRandom, RngFillMatchesSequentialDraws)
{
    Rng meta(kSeed + 14);
    for (int i = 0; i < 100; ++i) {
        SCOPED_TRACE(i);
        const std::uint64_t seed = meta.next();
        const std::size_t count = std::size_t(meta.below(500));

        Rng seqRaw(seed);
        std::vector<std::uint64_t> refRaw(count);
        for (auto &v : refRaw)
            v = seqRaw.next();
        Rng batchRaw(seed);
        std::vector<std::uint64_t> gotRaw(count, 0);
        batchRaw.fillRaw(gotRaw.data(), count);
        ASSERT_EQ(gotRaw, refRaw);
        ASSERT_EQ(batchRaw.next(), seqRaw.next());

        Rng seqUni(seed);
        std::vector<double> refUni(count);
        for (auto &v : refUni)
            v = seqUni.uniform();
        Rng batchUni(seed);
        std::vector<double> gotUni(count, -1.0);
        batchUni.fillUniform(gotUni.data(), count);
        ASSERT_EQ(gotUni, refUni);
    }
}

} // namespace
} // namespace inca
