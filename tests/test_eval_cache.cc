/**
 * @file
 * The evaluation cache's correctness contract, tested differentially:
 * cached and uncached sweeps must produce byte-identical results at
 * every thread count, because a hit returns a copy of a value computed
 * by the exact same arithmetic. Plus the mechanics that contract rests
 * on: canonical keys, counters, FIFO eviction, and the INCA_CACHE
 * switch parsing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "baseline/engine.hh"
#include "common/cache.hh"
#include "common/thread_pool.hh"
#include "inca/engine.hh"
#include "nn/layer.hh"
#include "nn/network.hh"
#include "test_fixtures.hh"

namespace inca {
namespace {

/**
 * Every number in a RunCost, rendered with full double precision.
 * Byte-equality of two transcripts is bit-equality of two runs.
 */
std::string
transcript(const arch::RunCost &run)
{
    char buf[64];
    std::string out = run.network + "/" +
                      std::to_string(run.batchSize) + "\n";
    const auto num = [&](double v) {
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out += buf;
    };
    for (const auto &layer : run.layers) {
        out += layer.name + " k" +
               std::to_string(int(layer.kind)) + " t=";
        num(layer.latency);
        for (const auto &[stat, value] : layer.stats.entries()) {
            out += " " + stat + "=";
            num(value);
        }
        out += "\n";
    }
    out += "latency=";
    num(run.latency);
    out += " static=";
    num(run.staticEnergy);
    out += "\n";
    return out;
}

/**
 * The 3-model x 3-config sweep of the differential tests: every
 * (config, network, phase) pair through both engines, concatenated
 * into one transcript.
 */
std::string
sweepTranscript()
{
    std::string out;
    const auto nets = testing::cacheSweepModels();
    for (const auto &point : testing::cacheSweepPoints()) {
        core::IncaEngine inca(testing::incaPointConfig(point));
        baseline::BaselineEngine base(arch::paperBaseline());
        for (const auto &net : nets) {
            out += transcript(inca.inference(net, point.batch));
            out += transcript(inca.training(net, point.batch));
            out += transcript(base.inference(net, point.batch));
            out += transcript(base.training(net, point.batch));
        }
    }
    return out;
}

/** Restore cache/thread globals however a test exits. */
class EvalCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAllCaches();
        setCacheEnabled(true);
    }

    void
    TearDown() override
    {
        // gtest_discover_tests runs each TEST in its own process, so
        // the globals this suite pokes cannot leak across tests; put
        // them back to the env defaults anyway for manual runs.
        setCacheEnabled(cacheEnabledFromEnv(
            std::getenv("INCA_CACHE")));
        clearAllCaches();
    }
};

TEST_F(EvalCacheTest, CachedSweepIsByteIdenticalAtEveryThreadCount)
{
    setCacheEnabled(false);
    const std::string reference = sweepTranscript();
    ASSERT_FALSE(reference.empty());

    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ThreadPool::setGlobalThreads(threads);

        setCacheEnabled(true);
        clearAllCaches();
        // Twice: the second pass is served almost entirely from the
        // cache and must still transcribe identically.
        EXPECT_EQ(sweepTranscript(), reference);
        EXPECT_EQ(sweepTranscript(), reference);

        setCacheEnabled(false);
        EXPECT_EQ(sweepTranscript(), reference);
    }
}

TEST_F(EvalCacheTest, RepeatedRunsHitTheCache)
{
    // Serial, so concurrent misses on one key cannot skew the
    // miss-vs-entry accounting this test pins down.
    ThreadPool::setGlobalThreads(1);
    core::IncaEngine engine(arch::paperInca());
    const auto net = testing::cacheSweepModels().front();

    (void)engine.training(net, 16);
    std::uint64_t missesAfterFirst = 0, hitsAfterFirst = 0;
    for (const auto &s : cacheStats()) {
        missesAfterFirst += s.misses;
        hitsAfterFirst += s.hits;
    }
    EXPECT_GT(missesAfterFirst, 0u);

    (void)engine.training(net, 16);
    std::uint64_t misses = 0, hits = 0, entries = 0;
    for (const auto &s : cacheStats()) {
        misses += s.misses;
        hits += s.hits;
        entries += s.entries;
    }
    // The repeat is answered from the run-level cache: new hits, no
    // new misses, and the entry count stands still.
    EXPECT_EQ(misses, missesAfterFirst);
    EXPECT_GT(hits, hitsAfterFirst);
    EXPECT_GT(entries, 0u);
    EXPECT_EQ(entries, missesAfterFirst);
}

TEST_F(EvalCacheTest, DisabledCacheComputesEveryTime)
{
    setCacheEnabled(false);
    EvalCache<int> cache("test.disabled");
    CacheKey key;
    key.add("k");
    int calls = 0;
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(cache.getOrCompute(key, [&] { return ++calls; }), i + 1);
    EXPECT_EQ(calls, 3);
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.entries, 0u);
}

TEST_F(EvalCacheTest, FifoEvictionBoundsEntries)
{
    EvalCache<int> cache("test.evict", /*maxEntriesPerShard=*/2,
                         /*shards=*/1);
    for (int i = 0; i < 5; ++i) {
        CacheKey key;
        key.add(std::int64_t(i));
        EXPECT_EQ(cache.getOrCompute(key, [&] { return 10 * i; }),
                  10 * i);
    }
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 5u);
    EXPECT_EQ(s.evictions, 3u);
    EXPECT_EQ(s.entries, 2u);

    // The oldest key was evicted: looking it up recomputes...
    CacheKey first;
    first.add(std::int64_t(0));
    EXPECT_EQ(cache.getOrCompute(first, [] { return -1; }), -1);
    // ...while the newest is still resident.
    CacheKey last;
    last.add(std::int64_t(4));
    EXPECT_EQ(cache.getOrCompute(last, [] { return -2; }), 40);
    s = cache.stats();
    EXPECT_EQ(s.misses, 6u);
    EXPECT_EQ(s.hits, 1u);
}

TEST_F(EvalCacheTest, ClearResetsEntriesAndCounters)
{
    EvalCache<int> cache("test.clear");
    CacheKey key;
    key.add("value");
    (void)cache.getOrCompute(key, [] { return 1; });
    (void)cache.getOrCompute(key, [] { return 1; });
    cache.clear();
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(cache.getOrCompute(key, [] { return 2; }), 2);
}

TEST(CacheKeyTest, SameFieldsSameKey)
{
    CacheKey a, b;
    a.add(7).add(3.5).add(true).add("vgg16");
    b.add(7).add(3.5).add(true).add("vgg16");
    EXPECT_EQ(a.bytes(), b.bytes());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
}

TEST(CacheKeyTest, TypeTagsPreventCrossTypeAliasing)
{
    // 1 as int, int64, uint64, double, and bool all carry different
    // tags; none of the five keys may collide.
    std::vector<CacheKey> keys(5);
    keys[0].add(1);
    keys[1].add(std::int64_t(1));
    keys[2].add(std::uint64_t(1));
    keys[3].add(1.0);
    keys[4].add(true);
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i].bytes(), keys[j].bytes()) << i << j;
}

TEST(CacheKeyTest, LengthPrefixPreventsStringConcatAliasing)
{
    CacheKey a, b;
    a.add("ab").add("c");
    b.add("a").add("bc");
    EXPECT_NE(a.bytes(), b.bytes());
}

TEST(CacheKeyTest, FieldOrderMatters)
{
    CacheKey a, b;
    a.add(1).add(2);
    b.add(2).add(1);
    EXPECT_NE(a.bytes(), b.bytes());
}

TEST(CacheKeyTest, LayerKeyIgnoresNameNetworkKeyDoesNot)
{
    nn::LayerDesc l1;
    l1.name = "conv1";
    l1.inC = 3;
    l1.inH = l1.inW = 32;
    l1.outC = 16;
    l1.outH = l1.outW = 32;
    l1.kh = l1.kw = 3;
    nn::LayerDesc l2 = l1;
    l2.name = "conv1.renamed";

    CacheKey k1, k2;
    nn::appendKey(k1, l1);
    nn::appendKey(k2, l2);
    EXPECT_EQ(k1.bytes(), k2.bytes());

    nn::NetworkDesc n1;
    n1.name = "tiny";
    n1.layers = {l1};
    nn::NetworkDesc n2 = n1;
    n2.name = "tiny.renamed";
    CacheKey nk1, nk2;
    nn::appendKey(nk1, n1);
    nn::appendKey(nk2, n2);
    EXPECT_NE(nk1.bytes(), nk2.bytes());
}

TEST(CacheKeyTest, ConfigKeySeparatesDesignPoints)
{
    const auto points = inca::testing::cacheSweepPoints();
    std::vector<std::string> keys;
    for (const auto &p : points) {
        CacheKey k;
        arch::appendKey(k, inca::testing::incaPointConfig(p));
        keys.push_back(k.bytes());
    }
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << j;
}

TEST(CacheEnvTest, ParsesTheDocumentedSpellings)
{
    EXPECT_TRUE(cacheEnabledFromEnv(nullptr));
    EXPECT_TRUE(cacheEnabledFromEnv(""));
    EXPECT_TRUE(cacheEnabledFromEnv("1"));
    EXPECT_TRUE(cacheEnabledFromEnv("on"));
    EXPECT_TRUE(cacheEnabledFromEnv("true"));
    EXPECT_TRUE(cacheEnabledFromEnv("yes"));
    EXPECT_FALSE(cacheEnabledFromEnv("0"));
    EXPECT_FALSE(cacheEnabledFromEnv("off"));
    EXPECT_FALSE(cacheEnabledFromEnv("OFF"));
    EXPECT_FALSE(cacheEnabledFromEnv("false"));
    EXPECT_FALSE(cacheEnabledFromEnv("False"));
    EXPECT_FALSE(cacheEnabledFromEnv("no"));
    // Unrecognized values keep the safe default (on).
    EXPECT_TRUE(cacheEnabledFromEnv("maybe"));
}

} // namespace
} // namespace inca
