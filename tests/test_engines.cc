/**
 * @file
 * End-to-end engine tests: the INCA and baseline analytic simulators
 * must reproduce the paper's qualitative results -- INCA wins energy
 * and latency in inference, wins big in training thanks to batch
 * parallelism, light models gain most, ADC energy drops ~5x, and IS
 * slashes buffer traffic.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "baseline/engine.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace {

using arch::Phase;
using arch::RunCost;

class Engines : public ::testing::Test
{
  protected:
    core::IncaEngine inca{arch::paperInca()};
    baseline::BaselineEngine base{arch::paperBaseline()};
};

TEST_F(Engines, RunCostBasics)
{
    const auto net = nn::resnet18();
    const RunCost run = inca.inference(net, 64);
    EXPECT_EQ(run.network, "resnet18");
    EXPECT_EQ(run.batchSize, 64);
    EXPECT_GT(run.energy(), 0.0);
    EXPECT_GT(run.latency, 0.0);
    EXPECT_GT(run.staticEnergy, 0.0);
    EXPECT_NEAR(run.staticEnergy, inca.idlePower() * run.latency,
                1e-12);
    EXPECT_FALSE(run.layers.empty());
}

TEST_F(Engines, EveryConvLayerHasCosts)
{
    const auto net = nn::vgg16();
    const RunCost run = inca.inference(net, 64);
    for (const auto &layer : run.layers) {
        if (layer.kind == nn::LayerKind::Conv) {
            EXPECT_GT(layer.stats.get("count.array.read"), 0.0)
                << layer.name;
            EXPECT_GT(layer.stats.get("count.adc"), 0.0) << layer.name;
            EXPECT_GT(layer.energy(), 0.0) << layer.name;
        }
    }
}

TEST_F(Engines, IncaWinsInferenceEnergyOnAllNetworks)
{
    for (const auto &net : nn::evaluationSuite()) {
        const auto i = inca.inference(net, 64);
        const auto b = base.inference(net, 64);
        EXPECT_GT(b.energy() / i.energy(), 2.0) << net.name;
    }
}

TEST_F(Engines, IncaWinsInferenceLatencyOnAllNetworks)
{
    for (const auto &net : nn::evaluationSuite()) {
        const auto i = inca.inference(net, 64);
        const auto b = base.inference(net, 64);
        EXPECT_GT(b.latency / i.latency, 1.0) << net.name;
    }
}

TEST_F(Engines, TrainingGainsExceedInferenceGains)
{
    // Fig. 11/14: the batch parallelism of the 3D stacks pays off
    // most in training.
    for (const auto &net : nn::heavySuite()) {
        const double effInf = base.inference(net, 64).energy() /
                              inca.inference(net, 64).energy();
        const double effTrn = base.training(net, 64).energy() /
                              inca.training(net, 64).energy();
        EXPECT_GT(effTrn, effInf) << net.name;
        const double spdInf = base.inference(net, 64).latency /
                              inca.inference(net, 64).latency;
        const double spdTrn = base.training(net, 64).latency /
                              inca.training(net, 64).latency;
        EXPECT_GT(spdTrn, spdInf) << net.name;
    }
}

TEST_F(Engines, Vgg16HeadlineBands)
{
    // Paper headline: 20.6x inference energy efficiency, 4.6x
    // inference speedup, 260x / 18.6x in training. Our physically
    // re-derived model must land in the same bands (within ~2x for
    // inference, same order for training).
    const auto net = nn::vgg16();
    const double effInf = base.inference(net, 64).energy() /
                          inca.inference(net, 64).energy();
    EXPECT_GT(effInf, 10.0);
    EXPECT_LT(effInf, 45.0);
    const double spdInf = base.inference(net, 64).latency /
                          inca.inference(net, 64).latency;
    EXPECT_GT(spdInf, 2.0);
    EXPECT_LT(spdInf, 10.0);
    const double effTrn = base.training(net, 64).energy() /
                          inca.training(net, 64).energy();
    EXPECT_GT(effTrn, 40.0);
    const double spdTrn = base.training(net, 64).latency /
                          inca.training(net, 64).latency;
    EXPECT_GT(spdTrn, 8.0);
    EXPECT_LT(spdTrn, 40.0);
}

TEST_F(Engines, LightModelsGainMost)
{
    // Fig. 11/14/16: MobileNetV2 and MNasNet blow past the heavy
    // networks in both metrics because WS utilization collapses.
    const double heavyEff = base.inference(nn::vgg16(), 64).energy() /
                            inca.inference(nn::vgg16(), 64).energy();
    for (const auto &net :
         {nn::mobilenetV2(), nn::mnasnet()}) {
        const double eff = base.inference(net, 64).energy() /
                           inca.inference(net, 64).energy();
        EXPECT_GT(eff, 3.0 * heavyEff) << net.name;
        const double trnEff = base.training(net, 64).energy() /
                              inca.training(net, 64).energy();
        EXPECT_GT(trnEff, 300.0) << net.name;
    }
}

TEST_F(Engines, AdcEnergyRatioNearFive)
{
    // Fig. 13a: INCA's ADCs spend ~5x less than the baseline's.
    const auto net = nn::vgg16();
    const double ratio = base.inference(net, 64).sum("energy.adc") /
                         inca.inference(net, 64).sum("energy.adc");
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 7.0);
}

TEST_F(Engines, IncaSlashesBufferTraffic)
{
    // Limitation 1: the WS pipeline fetches/saves per window; IS
    // fetches each kernel once.
    for (const auto &net : nn::evaluationSuite()) {
        const double wsWords =
            base.inference(net, 64).sum("count.buffer");
        const double isWords =
            inca.inference(net, 64).sum("count.buffer");
        EXPECT_GT(wsWords, 20.0 * isWords) << net.name;
    }
}

TEST_F(Engines, IncaWritesNoActivationsToBuffers)
{
    const auto run = inca.inference(nn::resnet18(), 64);
    for (const auto &layer : run.layers) {
        // Buffer writes only appear for streamed weights; resnet18's
        // 11 MB exceeds the 10.5 MB on-chip buffer, so some writes
        // exist -- but output activations never hit the buffer, so a
        // writing layer must also be a weight-reading layer.
        const double writes = layer.stats.get("count.buffer.write");
        if (writes > 0.0) {
            EXPECT_GT(layer.stats.get("count.buffer.read"), 0.0)
                << layer.name;
        }
    }
}

TEST_F(Engines, BatchWithinPlanesIsFreeForInca)
{
    // 3D batch parallelism: compute latency for 64 images equals the
    // latency for 1 image (all planes fire together).
    const auto net = nn::resnet18();
    const auto one = inca.inference(net, 1);
    const auto full = inca.inference(net, 64);
    EXPECT_NEAR(full.latency / one.latency, 1.0, 0.35);
    // ... but a 128-image batch needs two waves.
    const auto two = inca.inference(net, 128);
    EXPECT_GT(two.latency, 1.6 * full.latency);
}

TEST_F(Engines, BaselineBatchScalesLinearly)
{
    const auto net = nn::resnet18();
    const auto b16 = base.inference(net, 16);
    const auto b64 = base.inference(net, 64);
    EXPECT_GT(b64.latency, 2.5 * b16.latency);
}

TEST_F(Engines, EnergyMonotoneInBatch)
{
    const auto net = nn::mobilenetV2();
    EXPECT_GT(inca.inference(net, 64).energy(),
              inca.inference(net, 8).energy());
    EXPECT_GT(base.training(net, 64).energy(),
              base.training(net, 8).energy());
}

TEST_F(Engines, TrainingCostsMoreThanInference)
{
    for (const auto &net : {nn::resnet18(), nn::mnasnet()}) {
        EXPECT_GT(inca.training(net, 64).energy(),
                  inca.inference(net, 64).energy())
            << net.name;
        EXPECT_GT(base.training(net, 64).energy(),
                  base.inference(net, 64).energy())
            << net.name;
        EXPECT_GT(inca.training(net, 64).latency,
                  inca.inference(net, 64).latency)
            << net.name;
    }
}

TEST_F(Engines, TrainingDoublesIncaWeightFetches)
{
    // Section V-B-1: INCA's buffer accesses roughly double in
    // training (transposed-weight fetches).
    const auto net = nn::vgg16();
    const double inf = inca.inference(net, 64).sum("count.buffer.read");
    const double trn = inca.training(net, 64).sum("count.buffer.read");
    EXPECT_GT(trn, 1.8 * inf);
    EXPECT_LT(trn, 4.0 * inf);
}

TEST_F(Engines, BaselineTrainingWritesWeightCells)
{
    // PipeLayer must reprogram originals + transposed copies.
    const auto net = nn::resnet18();
    const double infWrites =
        base.inference(net, 64).sum("count.array.write");
    const double trnWrites =
        base.training(net, 64).sum("count.array.write");
    EXPECT_GT(trnWrites, infWrites);
    EXPECT_GE(trnWrites,
              2.0 * double(net.totalWeights()) * 8.0);
}

TEST_F(Engines, WeightReloadAppearsOnlyWhenModelExceedsRram)
{
    // VGG16 (138 MB > 33 MB on-chip RRAM) reloads; MobileNetV2
    // (3 MB) does not.
    auto hasReload = [](const RunCost &run) {
        for (const auto &l : run.layers) {
            if (l.name == "weight-reload")
                return true;
        }
        return false;
    };
    EXPECT_TRUE(hasReload(base.inference(nn::vgg16(), 64)));
    EXPECT_FALSE(hasReload(base.inference(nn::mobilenetV2(), 64)));
    // ResNet18 fits for inference (11 MB x 8 = 88 Mb < 264 Mb) but
    // training doubles the demand past nothing -- still fits; VGG
    // training definitely reloads.
    EXPECT_TRUE(hasReload(base.training(nn::vgg16(), 64)));
}

TEST_F(Engines, IncaIdlePowerFarBelowBaseline)
{
    EXPECT_LT(inca.idlePower() * 5.0, base.idlePower());
}

TEST_F(Engines, ReadCycleRespectsAdcDrain)
{
    // With 64 active planes and 4 ADCs per stack, 16 serial 4-bit
    // conversions (1.9 ns each) exceed the 35 ns read+write path.
    const Seconds cycle64 = inca.readCycleTime(64);
    EXPECT_GT(cycle64, 30e-9);
    // A single image drains in one conversion: read+write limited.
    const Seconds cycle1 = inca.readCycleTime(1);
    EXPECT_NEAR(cycle1, 35e-9, 1e-9);
    EXPECT_LE(cycle1, cycle64);
}

TEST_F(Engines, DepthwiseLayersAreCheapOnInca)
{
    // Depthwise layers compute all channels in parallel with 4-bit
    // conversions; on the baseline they burn full 128-column 8-bit
    // conversions at ~7 % utilization.
    const auto net = nn::mobilenetV2();
    const auto i = inca.inference(net, 64);
    const auto b = base.inference(net, 64);
    double iDw = 0.0, bDw = 0.0;
    for (const auto &l : i.layers) {
        if (l.kind == nn::LayerKind::Depthwise)
            iDw += l.stats.sumPrefix("energy.adc");
    }
    for (const auto &l : b.layers) {
        if (l.kind == nn::LayerKind::Depthwise)
            bDw += l.stats.sumPrefix("energy.adc");
    }
    EXPECT_GT(bDw, 20.0 * iDw);
}

TEST_F(Engines, DeathOnBadBatch)
{
    EXPECT_DEATH(inca.inference(nn::lenet5(), 0), "batch");
    EXPECT_DEATH(base.training(nn::lenet5(), -3), "batch");
}

} // namespace
} // namespace inca
