/**
 * @file
 * Differential tests for the parallel im2col convolution paths.
 *
 * conv2d(), conv2dInputGrad() and conv2dWeightGrad() are the
 * production im2col + blocked-GEMM implementations, parallelized on
 * the shared ThreadPool. Their contract is exact: every output
 * element is accumulated in the same serial order as the naive
 * scalar loops, so the results must match conv2dNaive() and the
 * *GradNaive() references bit-for-bit (0 ULP) at every thread count.
 * These tests sweep ~20 randomized shapes -- odd strides, asymmetric
 * kernels, heavy padding, batch 1 and 7 -- at 1, 2 and 8 lanes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "tensor/ops.hh"

namespace inca {
namespace tensor {
namespace {

struct ConvCase
{
    std::int64_t n, c, f, h, w;
    int kh, kw, stride, pad;

    std::string
    label() const
    {
        return "n" + std::to_string(n) + "c" + std::to_string(c) +
               "f" + std::to_string(f) + "_" + std::to_string(h) +
               "x" + std::to_string(w) + "_k" + std::to_string(kh) +
               "x" + std::to_string(kw) + "s" +
               std::to_string(stride) + "p" + std::to_string(pad);
    }
};

/**
 * The shape sweep. Deliberately adversarial: strides 1/2/3, kh != kw,
 * even kernels, pad up to k (which exercises the input-grad fallback
 * path for pad > k-1), kernels as large as the padded input, and the
 * batch sizes 1 and 7 the chunking logic splits unevenly.
 */
const std::vector<ConvCase> kCases = {
    {1, 1, 1, 5, 5, 3, 3, 1, 0},   // minimal
    {1, 3, 4, 8, 8, 3, 3, 1, 1},   // the common 3x3 same-pad
    {7, 2, 3, 9, 7, 3, 3, 2, 1},   // odd batch, non-square input
    {1, 4, 2, 6, 6, 3, 3, 2, 1},   // stride-2 with output overhang
    {7, 3, 5, 11, 11, 5, 5, 2, 2}, // 5x5 stride 2
    {1, 2, 2, 8, 6, 1, 3, 1, 0},   // 1x3 asymmetric kernel
    {2, 3, 4, 7, 9, 3, 1, 1, 0},   // 3x1 asymmetric kernel
    {7, 1, 6, 10, 10, 4, 4, 2, 0}, // even kernel
    {1, 5, 3, 12, 12, 3, 3, 3, 1}, // stride 3
    {2, 2, 2, 13, 9, 5, 3, 3, 2},  // stride 3, kh != kw
    {1, 3, 3, 6, 6, 2, 2, 1, 2},   // pad > k-1 (input-grad fallback)
    {7, 2, 4, 5, 5, 3, 3, 1, 2},   // pad = k-1, asymmetric overhang
    {1, 6, 8, 14, 14, 3, 3, 2, 1}, // wider channels
    {3, 4, 4, 8, 8, 3, 3, 2, 0},   // no padding, stride 2
    {1, 1, 2, 7, 7, 7, 7, 1, 3},   // kernel spans the padded input
    {2, 3, 2, 10, 8, 5, 5, 2, 2},  // 5x5 on non-square input
    {7, 4, 1, 9, 9, 3, 3, 2, 2},   // single filter, odd batch
    {1, 2, 5, 15, 11, 3, 5, 2, 1}, // 3x5 asymmetric kernel
    {2, 1, 3, 6, 10, 3, 3, 1, 1},  // wide input
    {1, 3, 4, 8, 8, 4, 2, 2, 1},   // 4x2 even asymmetric kernel
};

const std::vector<int> kThreadCounts = {1, 2, 8};

/** Every test leaves the pool in the serial default. */
class ParallelOps : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(1); }
};

TEST_F(ParallelOps, ForwardMatchesNaiveExactly)
{
    for (const auto &cs : kCases) {
        SCOPED_TRACE(cs.label());
        Rng rng(1000 + cs.n + 31 * cs.h + 7 * cs.kh);
        const Tensor x = Tensor::randn({cs.n, cs.c, cs.h, cs.w}, rng);
        const Tensor w =
            Tensor::randn({cs.f, cs.c, cs.kh, cs.kw}, rng);
        const ConvSpec spec{cs.stride, cs.pad};

        ThreadPool::setGlobalThreads(1);
        const Tensor ref = conv2dNaive(x, w, spec);
        for (int threads : kThreadCounts) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            ThreadPool::setGlobalThreads(threads);
            EXPECT_TRUE(conv2d(x, w, spec).equals(ref));
            EXPECT_TRUE(conv2dGemm(x, w, spec).equals(ref));
        }
    }
}

TEST_F(ParallelOps, InputGradMatchesNaiveExactly)
{
    for (const auto &cs : kCases) {
        SCOPED_TRACE(cs.label());
        Rng rng(2000 + cs.c + 13 * cs.w + 5 * cs.kw);
        const Tensor x = Tensor::randn({cs.n, cs.c, cs.h, cs.w}, rng);
        const Tensor w =
            Tensor::randn({cs.f, cs.c, cs.kh, cs.kw}, rng);
        const ConvSpec spec{cs.stride, cs.pad};
        const std::int64_t oh = convOutDim(cs.h, cs.kh, spec);
        const std::int64_t ow = convOutDim(cs.w, cs.kw, spec);
        const Tensor dy = Tensor::randn({cs.n, cs.f, oh, ow}, rng);

        ThreadPool::setGlobalThreads(1);
        const Tensor ref =
            conv2dInputGradNaive(dy, w, x.shape(), spec);
        for (int threads : kThreadCounts) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            ThreadPool::setGlobalThreads(threads);
            EXPECT_TRUE(
                conv2dInputGrad(dy, w, x.shape(), spec).equals(ref));
        }
    }
}

TEST_F(ParallelOps, WeightGradMatchesNaiveExactly)
{
    for (const auto &cs : kCases) {
        SCOPED_TRACE(cs.label());
        Rng rng(3000 + cs.f + 17 * cs.h + 3 * cs.stride);
        const Tensor x = Tensor::randn({cs.n, cs.c, cs.h, cs.w}, rng);
        const Tensor w =
            Tensor::randn({cs.f, cs.c, cs.kh, cs.kw}, rng);
        const ConvSpec spec{cs.stride, cs.pad};
        const std::int64_t oh = convOutDim(cs.h, cs.kh, spec);
        const std::int64_t ow = convOutDim(cs.w, cs.kw, spec);
        const Tensor dy = Tensor::randn({cs.n, cs.f, oh, ow}, rng);

        ThreadPool::setGlobalThreads(1);
        const Tensor ref =
            conv2dWeightGradNaive(dy, x, w.shape(), spec);
        for (int threads : kThreadCounts) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            ThreadPool::setGlobalThreads(threads);
            EXPECT_TRUE(
                conv2dWeightGrad(dy, x, w.shape(), spec).equals(ref));
        }
    }
}

/** Matmul's blocked kernel must also be order-exact. */
TEST_F(ParallelOps, MatmulBitIdenticalAcrossThreadCounts)
{
    Rng rng(4000);
    const Tensor a = Tensor::randn({37, 53}, rng);
    const Tensor b = Tensor::randn({53, 29}, rng);

    // Reference: the plain ascending-k accumulation order.
    Tensor ref({37, 29});
    for (std::int64_t i = 0; i < 37; ++i) {
        for (std::int64_t j = 0; j < 29; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < 53; ++k)
                acc += a[i * 53 + k] * b[k * 29 + j];
            ref[i * 29 + j] = acc;
        }
    }
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool::setGlobalThreads(threads);
        EXPECT_TRUE(matmul(a, b).equals(ref));
    }
}

/** Depthwise convolution and its gradients ride the same pool. */
TEST_F(ParallelOps, DepthwiseBitIdenticalAcrossThreadCounts)
{
    Rng rng(5000);
    const Tensor x = Tensor::randn({7, 5, 9, 9}, rng);
    const Tensor w = Tensor::randn({5, 3, 3}, rng);
    const ConvSpec spec{2, 1};
    const std::int64_t od = convOutDim(9, 3, spec);
    const Tensor dy = Tensor::randn({7, 5, od, od}, rng);

    ThreadPool::setGlobalThreads(1);
    const Tensor refY = depthwiseConv2d(x, w, spec);
    const Tensor refDx =
        depthwiseConv2dInputGrad(dy, w, x.shape(), spec);
    const Tensor refDw =
        depthwiseConv2dWeightGrad(dy, x, w.shape(), spec);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool::setGlobalThreads(threads);
        EXPECT_TRUE(depthwiseConv2d(x, w, spec).equals(refY));
        EXPECT_TRUE(depthwiseConv2dInputGrad(dy, w, x.shape(), spec)
                        .equals(refDx));
        EXPECT_TRUE(depthwiseConv2dWeightGrad(dy, x, w.shape(), spec)
                        .equals(refDw));
    }
}

} // namespace
} // namespace tensor
} // namespace inca
