/**
 * @file
 * Endurance-analysis tests (paper Section VI's future-work concern,
 * quantified).
 */

#include <gtest/gtest.h>

#include "arch/endurance.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace arch {
namespace {

TEST(Endurance, IncaWritesActivationsTwicePerIteration)
{
    // Forward writes outputs, backward overwrites with errors: each
    // activation cell sees ~2 writes per iteration (ratio of writes
    // to written cells).
    const auto net = nn::resnet18();
    const auto r = incaEndurance(net, paperInca(), 64);
    EXPECT_GT(r.writesPerCellPerIteration, 1.0);
    EXPECT_LT(r.writesPerCellPerIteration, 4.0);
}

TEST(Endurance, BaselineWeightCellsWrittenOncePerUpdate)
{
    const auto net = nn::vgg16();
    const auto r = baselineEndurance(net, paperBaseline(), 64);
    // Mixing weight cells (1 write) and activation cells (1 write):
    // close to 1 write per written cell per iteration.
    EXPECT_GT(r.writesPerCellPerIteration, 0.5);
    EXPECT_LT(r.writesPerCellPerIteration, 2.0);
}

TEST(Endurance, CountsScaleWithBatch)
{
    const auto net = nn::resnet18();
    const auto b8 = incaEndurance(net, paperInca(), 8);
    const auto b64 = incaEndurance(net, paperInca(), 64);
    EXPECT_NEAR(b64.writesPerIteration / b8.writesPerIteration, 8.0,
                1e-6);
    // Per-cell stress does not grow with batch: more planes share it.
    EXPECT_NEAR(b64.writesPerCellPerIteration,
                b8.writesPerCellPerIteration, 1e-9);
}

TEST(Endurance, LifetimeScalesWithRating)
{
    const auto net = nn::mobilenetV2();
    const auto typical =
        incaEndurance(net, paperInca(), 64, kEnduranceTypical);
    const auto optimistic =
        incaEndurance(net, paperInca(), 64, kEnduranceOptimistic);
    EXPECT_NEAR(optimistic.iterationsToWearOut /
                    typical.iterationsToWearOut,
                kEnduranceOptimistic / kEnduranceTypical, 1e-6);
}

TEST(Endurance, SectionSixTradeoffIsVisible)
{
    // The paper's Section VI concern in numbers: per training
    // iteration, INCA stresses its (few) activation cells more than
    // the baseline stresses its (many) weight cells -- endurance is
    // the price of the IS dataflow's energy/latency wins.
    const auto net = nn::vgg16();
    const auto is = incaEndurance(net, paperInca(), 64);
    const auto ws = baselineEndurance(net, paperBaseline(), 64);
    EXPECT_GT(is.writesPerCellPerIteration,
              ws.writesPerCellPerIteration);
    // Both live well past a single training run at typical ratings.
    EXPECT_GT(is.iterationsToWearOut, 1e8);
    EXPECT_GT(ws.iterationsToWearOut, 1e8);
}

TEST(Endurance, InferenceOnlyWsWritesNothing)
{
    // Pure-inference WS never rewrites cells once programmed; the
    // report models training. Check the training write counts are
    // positive and finite for the whole suite.
    for (const auto &net : nn::evaluationSuite()) {
        const auto is = incaEndurance(net, paperInca(), 64);
        const auto ws = baselineEndurance(net, paperBaseline(), 64);
        EXPECT_GT(is.writesPerIteration, 0.0) << net.name;
        EXPECT_GT(ws.writesPerIteration, 0.0) << net.name;
        EXPECT_GT(is.iterationsToWearOut, 0.0) << net.name;
    }
}

TEST(EnduranceDeath, BadBatchPanics)
{
    EXPECT_DEATH(incaEndurance(nn::lenet5(), paperInca(), 0),
                 "batch");
}

} // namespace
} // namespace arch
} // namespace inca
