/**
 * @file
 * Device-preset tests (paper Section VI's alternative technologies).
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "circuit/devices.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace circuit {
namespace {

TEST(Devices, RramPresetIsTableII)
{
    const auto p = rramPreset();
    EXPECT_EQ(p.technology, DeviceTechnology::Rram);
    EXPECT_DOUBLE_EQ(p.device.rOn, 240e3);
    EXPECT_DOUBLE_EQ(p.device.tWrite, 50e-9);
    EXPECT_TRUE(p.nonVolatile);
    EXPECT_DOUBLE_EQ(p.cellAreaFactor, 1.0);
}

TEST(Devices, AllPresetsEnumerated)
{
    const auto all = allDevicePresets();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].technology, DeviceTechnology::Rram);
    for (const auto &p : all) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.endurance, 0.0);
        EXPECT_GT(p.cellAreaFactor, 0.0);
        EXPECT_GT(p.device.tRead, 0.0);
        EXPECT_GT(p.device.tWrite, 0.0);
    }
}

TEST(Devices, PresetForRoundTrips)
{
    for (const auto tech :
         {DeviceTechnology::Rram, DeviceTechnology::Pcm,
          DeviceTechnology::Fefet, DeviceTechnology::SramCim}) {
        EXPECT_EQ(presetFor(tech).technology, tech);
    }
}

TEST(Devices, PcmWritesAreHotterAndSlower)
{
    const auto rram = rramPreset();
    const auto pcm = pcmPreset();
    EXPECT_GT(pcm.device.tWrite, rram.device.tWrite);
    EXPECT_GT(pcm.device.writeEnergyOn(),
              rram.device.writeEnergyOn());
    EXPECT_LT(pcm.endurance, rram.endurance);
}

TEST(Devices, FefetWritesAreFasterAndEnduring)
{
    const auto rram = rramPreset();
    const auto fefet = fefetPreset();
    EXPECT_LT(fefet.device.tWrite, rram.device.tWrite);
    EXPECT_GT(fefet.endurance, rram.endurance);
    EXPECT_TRUE(fefet.nonVolatile);
}

TEST(Devices, SramIsVolatileAndLarge)
{
    const auto sram = sramCimPreset();
    EXPECT_FALSE(sram.nonVolatile);
    EXPECT_GT(sram.standbyPowerPerCell, 0.0);
    EXPECT_GT(sram.cellAreaFactor, 3.0);
    EXPECT_GT(sram.endurance, 1e12);
    EXPECT_LT(sram.device.tWrite, 10e-9);
}

TEST(Devices, EnginesAcceptEveryPreset)
{
    // The Section VI study: the IS engine must run unchanged on every
    // technology preset and produce sane costs.
    const auto net = nn::lenet5();
    double prevEnergy = 0.0;
    for (const auto &preset : allDevicePresets()) {
        arch::IncaConfig cfg = arch::paperInca();
        cfg.device = preset.device;
        core::IncaEngine engine(cfg);
        const auto run = engine.training(net, 64);
        EXPECT_GT(run.energy(), 0.0) << preset.name;
        EXPECT_GT(run.latency, 0.0) << preset.name;
        (void)prevEnergy;
        prevEnergy = run.energy();
    }
}

TEST(Devices, SramRunsFasterThanPcm)
{
    // 1 ns cells vs. 150 ns writes must show in the run latency.
    const auto net = nn::lenet5();
    arch::IncaConfig sramCfg = arch::paperInca();
    sramCfg.device = sramCimPreset().device;
    arch::IncaConfig pcmCfg = arch::paperInca();
    pcmCfg.device = pcmPreset().device;
    const auto sramRun =
        core::IncaEngine(sramCfg).inference(net, 64);
    const auto pcmRun = core::IncaEngine(pcmCfg).inference(net, 64);
    EXPECT_LT(sramRun.latency, pcmRun.latency);
}

} // namespace
} // namespace circuit
} // namespace inca
