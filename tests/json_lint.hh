/**
 * @file
 * Minimal strict JSON validator for tests: enough of RFC 8259 to
 * reject anything Python's json.load / Perfetto would reject
 * (unbalanced structure, bare words, trailing commas, bad escapes),
 * without pulling a JSON library into the build.
 */

#ifndef INCA_TESTS_JSON_LINT_HH
#define INCA_TESTS_JSON_LINT_HH

#include <cctype>
#include <string>

namespace inca {
namespace testutil {

class JsonLint
{
  public:
    explicit JsonLint(const std::string &text) : s_(text) {}

    /** True when the whole text is exactly one valid JSON value. */
    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

    size_t errorPos() const { return pos_; }

  private:
    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (static_cast<unsigned char>(s_[pos_]) < 0x20)
                return false; // raw control char
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && s_[start] == '-'))
            return false;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        return true;
    }

    bool
    object()
    {
        ++pos_; // '{'
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        ws();
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** One-shot helper: is @p text one complete valid JSON value? */
inline bool
jsonValid(const std::string &text)
{
    return JsonLint(text).valid();
}

} // namespace testutil
} // namespace inca

#endif // INCA_TESTS_JSON_LINT_HH
