/**
 * @file
 * CSV / JSON export tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "inca/engine.hh"
#include "json_lint.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"

namespace inca {
namespace sim {
namespace {

arch::RunCost
sampleRun()
{
    core::IncaEngine engine(arch::paperInca());
    return engine.inference(nn::lenet5(), 8);
}

TEST(ExportCsv, HeaderAndRowCount)
{
    const auto run = sampleRun();
    const std::string csv = toCsv(run);
    // One header + one line per layer.
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, run.layers.size() + 1);
    EXPECT_EQ(csv.rfind("layer,kind,latency_s,energy_J", 0), 0u);
}

TEST(ExportCsv, ConsistentColumnCounts)
{
    const std::string csv = toCsv(sampleRun());
    std::istringstream in(csv);
    std::string line;
    size_t columns = 0;
    while (std::getline(in, line)) {
        size_t commas = 0;
        for (char c : line)
            commas += c == ',';
        if (columns == 0)
            columns = commas;
        else
            EXPECT_EQ(commas, columns) << line;
    }
    EXPECT_GE(columns, 4u);
}

TEST(ExportCsv, MentionsEveryLayer)
{
    const auto run = sampleRun();
    const std::string csv = toCsv(run);
    for (const auto &layer : run.layers)
        EXPECT_NE(csv.find(layer.name + ","), std::string::npos)
            << layer.name;
}

TEST(ExportCsv, QuotesHostileFieldsPerRfc4180)
{
    // A layer name with a comma, a quote, and a newline must not
    // shift columns or break rows: the field is quoted, embedded
    // quotes doubled.
    arch::RunCost run;
    arch::LayerCost layer;
    layer.name = "conv,3x3 \"same\"\npad";
    layer.stats.add("energy.dram", 1.0);
    run.layers.push_back(layer);
    const std::string csv = toCsv(run);
    EXPECT_NE(csv.find("\"conv,3x3 \"\"same\"\"\npad\""),
              std::string::npos)
        << csv;
    // Plain names stay unquoted (byte-compatible with old output).
    arch::RunCost plain;
    layer.name = "conv1";
    plain.layers.push_back(layer);
    EXPECT_EQ(toCsv(plain).find('"'), std::string::npos);
}

TEST(ExportCsv, QuotesHostileStatKeys)
{
    arch::RunCost run;
    arch::LayerCost layer;
    layer.name = "conv1";
    layer.stats.add("energy.dram,extra", 1.0);
    run.layers.push_back(layer);
    const std::string csv = toCsv(run);
    EXPECT_NE(csv.find("\"energy.dram,extra\""), std::string::npos)
        << csv;
}

TEST(ExportJson, ContainsTotalsAndLayers)
{
    const auto run = sampleRun();
    const std::string json = toJson(run);
    EXPECT_NE(json.find("\"network\": \"lenet5\""),
              std::string::npos);
    EXPECT_NE(json.find("\"phase\": \"inference\""),
              std::string::npos);
    EXPECT_NE(json.find("\"batch_size\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"layers\": ["), std::string::npos);
    for (const auto &layer : run.layers)
        EXPECT_NE(json.find("\"" + layer.name + "\""),
                  std::string::npos);
}

TEST(ExportJson, BalancedBracesAndBrackets)
{
    const std::string json = toJson(sampleRun());
    int braces = 0, brackets = 0;
    bool inString = false;
    char prev = '\0';
    for (char c : json) {
        if (c == '"' && prev != '\\')
            inString = !inString;
        if (!inString) {
            braces += c == '{';
            braces -= c == '}';
            brackets += c == '[';
            brackets -= c == ']';
        }
        prev = c;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(inString);
}

TEST(ExportJson, ValidPerStrictParser)
{
    EXPECT_TRUE(testutil::jsonValid(toJson(sampleRun())));
}

TEST(ExportJson, ProvenanceManifest)
{
    const auto run = sampleRun();
    const std::string json = toJson(run);
    EXPECT_NE(json.find("\"provenance\""), std::string::npos);
    EXPECT_NE(json.find("\"config_key_hash\": \"0x"),
              std::string::npos);
    // The engine stamps the design point's key hash; a real run is
    // never the empty-key hash 0x0.
    EXPECT_NE(run.configKeyHash, 0u);
    EXPECT_NE(json.find("\"threads\": "), std::string::npos);
    EXPECT_NE(json.find("\"cache\": "), std::string::npos);
    EXPECT_NE(json.find("\"build_type\": "), std::string::npos);
    for (const char *var : {"INCA_TRACE", "INCA_METRICS",
                            "INCA_NUM_THREADS", "INCA_CACHE"})
        EXPECT_NE(json.find(var), std::string::npos) << var;
}

TEST(ExportJson, TrainingPhaseLabel)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.training(nn::lenet5(), 4);
    EXPECT_NE(toJson(run).find("\"phase\": \"training\""),
              std::string::npos);
}

TEST(ExportFile, RoundTrip)
{
    const std::string path = "/tmp/inca_export_test.csv";
    writeFile(path, "hello,world\n");
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "hello,world");
    std::remove(path.c_str());
}

TEST(ExportFileDeath, UnwritablePathFatal)
{
    EXPECT_DEATH(writeFile("/nonexistent-dir/x.csv", "x"),
                 "cannot write");
}

} // namespace
} // namespace sim
} // namespace inca
