/**
 * @file
 * CSV / JSON export tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/export.hh"

namespace inca {
namespace sim {
namespace {

arch::RunCost
sampleRun()
{
    core::IncaEngine engine(arch::paperInca());
    return engine.inference(nn::lenet5(), 8);
}

TEST(ExportCsv, HeaderAndRowCount)
{
    const auto run = sampleRun();
    const std::string csv = toCsv(run);
    // One header + one line per layer.
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, run.layers.size() + 1);
    EXPECT_EQ(csv.rfind("layer,kind,latency_s,energy_J", 0), 0u);
}

TEST(ExportCsv, ConsistentColumnCounts)
{
    const std::string csv = toCsv(sampleRun());
    std::istringstream in(csv);
    std::string line;
    size_t columns = 0;
    while (std::getline(in, line)) {
        size_t commas = 0;
        for (char c : line)
            commas += c == ',';
        if (columns == 0)
            columns = commas;
        else
            EXPECT_EQ(commas, columns) << line;
    }
    EXPECT_GE(columns, 4u);
}

TEST(ExportCsv, MentionsEveryLayer)
{
    const auto run = sampleRun();
    const std::string csv = toCsv(run);
    for (const auto &layer : run.layers)
        EXPECT_NE(csv.find(layer.name + ","), std::string::npos)
            << layer.name;
}

TEST(ExportJson, ContainsTotalsAndLayers)
{
    const auto run = sampleRun();
    const std::string json = toJson(run);
    EXPECT_NE(json.find("\"network\": \"lenet5\""),
              std::string::npos);
    EXPECT_NE(json.find("\"phase\": \"inference\""),
              std::string::npos);
    EXPECT_NE(json.find("\"batch_size\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"layers\": ["), std::string::npos);
    for (const auto &layer : run.layers)
        EXPECT_NE(json.find("\"" + layer.name + "\""),
                  std::string::npos);
}

TEST(ExportJson, BalancedBracesAndBrackets)
{
    const std::string json = toJson(sampleRun());
    int braces = 0, brackets = 0;
    bool inString = false;
    char prev = '\0';
    for (char c : json) {
        if (c == '"' && prev != '\\')
            inString = !inString;
        if (!inString) {
            braces += c == '{';
            braces -= c == '}';
            brackets += c == '[';
            brackets -= c == ']';
        }
        prev = c;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(inString);
}

TEST(ExportJson, TrainingPhaseLabel)
{
    core::IncaEngine engine(arch::paperInca());
    const auto run = engine.training(nn::lenet5(), 4);
    EXPECT_NE(toJson(run).find("\"phase\": \"training\""),
              std::string::npos);
}

TEST(ExportFile, RoundTrip)
{
    const std::string path = "/tmp/inca_export_test.csv";
    writeFile(path, "hello,world\n");
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "hello,world");
    std::remove(path.c_str());
}

TEST(ExportFileDeath, UnwritablePathFatal)
{
    EXPECT_DEATH(writeFile("/nonexistent-dir/x.csv", "x"),
                 "cannot write");
}

} // namespace
} // namespace sim
} // namespace inca
