/**
 * @file
 * Runtime module tests: forward semantics, backward gradients against
 * numerical differentiation through whole modules, SGD steps, and the
 * hardware-effect injection points.
 */

#include <gtest/gtest.h>

#include <functional>

#include "common/random.hh"
#include "nn/module.hh"
#include "tensor/ops.hh"

namespace inca {
namespace nn {
namespace {

using tensor::Tensor;

double
weightedSum(const Tensor &y, const Tensor &coeff)
{
    double s = 0.0;
    for (std::int64_t i = 0; i < y.size(); ++i)
        s += double(y[i]) * double(coeff[i]);
    return s;
}

Tensor
numericalInputGrad(Module &m, Tensor x, const Tensor &coeff,
                   float eps = 1e-2f)
{
    ForwardCtx ctx;
    ctx.training = false;
    Tensor g(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double plus = weightedSum(m.forward(x, ctx), coeff);
        x[i] = orig - eps;
        const double minus = weightedSum(m.forward(x, ctx), coeff);
        x[i] = orig;
        g[i] = float((plus - minus) / (2.0 * eps));
    }
    return g;
}

TEST(Conv2dModule, ForwardMatchesTensorOp)
{
    Rng rng(1);
    Conv2d conv(3, 4, 3, 1, 1, rng);
    Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
    ForwardCtx ctx;
    Tensor y = conv.forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 4, 6, 6}));
    Tensor ref = tensor::conv2d(x, conv.weights(), {1, 1});
    EXPECT_TRUE(y.allClose(ref, 1e-5f));
}

TEST(Conv2dModule, BackwardMatchesNumerical)
{
    Rng rng(2);
    Conv2d conv(2, 3, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = conv.forward(x, ctx);
    Tensor coeff = Tensor::randn(y.shape(), rng);
    Tensor dx = conv.backward(coeff);
    Tensor dxNum = numericalInputGrad(conv, x, coeff);
    EXPECT_TRUE(dx.allClose(dxNum, 5e-2f));
}

TEST(Conv2dModule, SgdStepReducesWeightedOutput)
{
    Rng rng(3);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y0 = conv.forward(x, ctx);
    // Gradient of L = sum(y) w.r.t. y is all-ones.
    Tensor ones = Tensor::full(y0.shape(), 1.0f);
    conv.backward(ones);
    conv.step(0.05f);
    Tensor y1 = conv.forward(x, ctx);
    EXPECT_LT(y1.sum(), y0.sum());
}

TEST(Conv2dModule, StepClearsGradient)
{
    Rng rng(4);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    conv.forward(x, ctx);
    conv.backward(Tensor::full({1, 1, 4, 4}, 1.0f));
    conv.step(0.1f);
    Tensor w0 = conv.weights();
    // Stepping again without a new backward must not move weights.
    conv.step(0.1f);
    EXPECT_TRUE(conv.weights().equals(w0));
}

TEST(DepthwiseModule, BackwardMatchesNumerical)
{
    Rng rng(5);
    DepthwiseConv2d conv(3, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 3, 5, 5}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = conv.forward(x, ctx);
    Tensor coeff = Tensor::randn(y.shape(), rng);
    Tensor dx = conv.backward(coeff);
    Tensor dxNum = numericalInputGrad(conv, x, coeff);
    EXPECT_TRUE(dx.allClose(dxNum, 5e-2f));
}

TEST(LinearModule, ForwardAndBackward)
{
    Rng rng(6);
    Linear lin(4, 3, rng);
    Tensor x = Tensor::randn({2, 4}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = lin.forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 3}));
    Tensor coeff = Tensor::randn(y.shape(), rng);
    Tensor dx = lin.backward(coeff);
    Tensor dxNum = numericalInputGrad(lin, x, coeff);
    EXPECT_TRUE(dx.allClose(dxNum, 5e-2f));
}

TEST(ReLUModule, RoundTrip)
{
    ReLU r;
    Tensor x({4}, {-1.0f, 2.0f, -3.0f, 4.0f});
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = r.forward(x, ctx);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 2.0f);
    Tensor dy = Tensor::full({4}, 1.0f);
    Tensor dx = r.backward(dy);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[1], 1.0f);
    EXPECT_EQ(dx[3], 1.0f);
}

TEST(MaxPoolModule, ShrinksAndRestores)
{
    Rng rng(7);
    MaxPool2d pool(2);
    Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = pool.forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 2, 3, 3}));
    Tensor dy = Tensor::full(y.shape(), 1.0f);
    Tensor dx = pool.backward(dy);
    EXPECT_EQ(dx.shape(), x.shape());
    EXPECT_DOUBLE_EQ(dx.sum(), 18.0);
}

TEST(FlattenModule, RoundTrip)
{
    Flatten fl;
    Tensor x({2, 3, 2, 2});
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = fl.forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 12}));
    Tensor dx = fl.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Sequential, ComposesAndCountsParameters)
{
    Rng rng(8);
    Sequential net;
    net.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
    net.emplace<ReLU>();
    net.emplace<MaxPool2d>(2);
    net.emplace<Flatten>();
    net.emplace<Linear>(4 * 2 * 2, 3, rng);
    EXPECT_EQ(net.size(), 5u);
    EXPECT_EQ(net.parameterCount(), 4 * 9 + 16 * 3 + 3);

    Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = net.forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 3}));
    Tensor dx = net.backward(Tensor::full(y.shape(), 1.0f));
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Residual, ForwardAddsSkip)
{
    Rng rng(9);
    // Inner path: conv with zero weights -> residual is relu(x).
    auto inner = std::make_unique<Conv2d>(2, 2, 3, 1, 1, rng);
    inner->weights().fill(0.0f);
    Residual res(std::move(inner));
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    ForwardCtx ctx;
    Tensor y = res.forward(x, ctx);
    EXPECT_TRUE(y.allClose(tensor::relu(x), 1e-6f));
}

TEST(Residual, BackwardMatchesNumerical)
{
    Rng rng(10);
    auto inner = std::make_unique<Conv2d>(2, 2, 3, 1, 1, rng);
    Residual res(std::move(inner));
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = res.forward(x, ctx);
    Tensor coeff = Tensor::randn(y.shape(), rng);
    Tensor dx = res.backward(coeff);
    Tensor dxNum = numericalInputGrad(res, x, coeff);
    EXPECT_TRUE(dx.allClose(dxNum, 6e-2f));
}

TEST(ForwardCtx, WeightNoiseChangesOutputOnlyWhenEnabled)
{
    Rng rng(11);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    ForwardCtx clean;
    Tensor y0 = conv.forward(x, clean);
    Tensor y1 = conv.forward(x, clean);
    EXPECT_TRUE(y0.equals(y1));

    Rng noiseRng(12);
    ForwardCtx noisy;
    noisy.noise = NoiseSpec{NoiseTarget::Weights, 0.05};
    noisy.rng = &noiseRng;
    Tensor yN = conv.forward(x, noisy);
    EXPECT_FALSE(yN.equals(y0));
}

TEST(ForwardCtx, ActivationNoiseStrikesOutputs)
{
    Rng rng(13);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    Rng noiseRng(14);
    ForwardCtx noisy;
    noisy.noise = NoiseSpec{NoiseTarget::Activations, 0.05};
    noisy.rng = &noiseRng;
    ForwardCtx clean;
    EXPECT_FALSE(
        conv.forward(x, noisy).equals(conv.forward(x, clean)));
}

TEST(ForwardCtx, QuantizationSnapsWeights)
{
    Rng rng(15);
    Conv2d conv(1, 2, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    ForwardCtx q8, q2;
    q8.weightBits = 8;
    q2.weightBits = 2;
    ForwardCtx clean;
    Tensor yClean = conv.forward(x, clean);
    Tensor y8 = conv.forward(x, q8);
    Tensor y2 = conv.forward(x, q2);
    // Coarser quantization must deviate more.
    double err8 = 0.0, err2 = 0.0;
    for (std::int64_t i = 0; i < yClean.size(); ++i) {
        err8 += std::abs(double(y8[i] - yClean[i]));
        err2 += std::abs(double(y2[i] - yClean[i]));
    }
    EXPECT_LT(err8, err2);
}

TEST(MakeSmallResNet, BuildsAndRuns)
{
    Rng rng(16);
    auto net = makeSmallResNet(1, 8, 4, 8, rng);
    Tensor x = Tensor::randn({2, 1, 8, 8}, rng);
    ForwardCtx ctx;
    ctx.training = true;
    Tensor y = net->forward(x, ctx);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 4}));
    Tensor dx = net->backward(Tensor::full(y.shape(), 0.1f));
    EXPECT_EQ(dx.shape(), x.shape());
    EXPECT_GT(net->parameterCount(), 0);
}

} // namespace
} // namespace nn
} // namespace inca
