/**
 * @file
 * Property sweeps over engine configurations: the qualitative
 * relations the paper's evaluation rests on must hold across design
 * points, not just at Table II -- INCA cheaper and faster than the
 * baseline, energy monotone in work, more ADC bits never cheaper,
 * larger baseline arrays never improve light-model utilization, etc.
 *
 * The engine-level sweeps run under every execution backend
 * (testing::eachBackend()): the analytic engines and the event-driven
 * simulator are bit-exact with overlap off, so each property must
 * hold identically on both paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/utilization.hh"
#include "baseline/engine.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "test_fixtures.hh"

namespace inca {
namespace {

using inca::testing::Backend;
using inca::testing::backendName;
using inca::testing::eachBackend;
using inca::testing::IncaPoint;
using inca::testing::incaPointConfig;
using inca::testing::runBaseline;
using inca::testing::runInca;

// -------------------------------------------------------------------
// Sweep 1: INCA design points.

class IncaDesignSweep : public ::testing::TestWithParam<IncaPoint>
{
};

TEST_P(IncaDesignSweep, RunCostsAreSane)
{
    const auto p = GetParam();
    const arch::IncaConfig cfg = incaPointConfig(p);
    const auto net = nn::resnet18();

    for (const Backend backend : eachBackend()) {
        SCOPED_TRACE(backendName(backend));
        const auto inf = runInca(backend, cfg, net,
                                 arch::Phase::Inference, p.batch);
        EXPECT_GT(inf.energy(), 0.0);
        EXPECT_GT(inf.latency, 0.0);
        EXPECT_GT(inf.sum("count.adc"), 0.0);

        const auto trn = runInca(backend, cfg, net,
                                 arch::Phase::Training, p.batch);
        EXPECT_GT(trn.energy(), inf.energy());
        EXPECT_GT(trn.latency, inf.latency);
    }
}

TEST_P(IncaDesignSweep, EnergyMonotoneInBatch)
{
    const auto p = GetParam();
    core::IncaEngine engine(incaPointConfig(p));
    const auto net = nn::mnasnet();
    EXPECT_GT(engine.inference(net, 2 * p.batch).energy(),
              engine.inference(net, p.batch).energy());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncaDesignSweep,
    ::testing::Values(IncaPoint{16, 64, 4, 64},
                      IncaPoint{8, 64, 4, 64},
                      IncaPoint{32, 64, 4, 64},
                      IncaPoint{16, 16, 4, 64},
                      IncaPoint{16, 64, 6, 64},
                      IncaPoint{16, 64, 8, 32},
                      IncaPoint{16, 32, 5, 8},
                      IncaPoint{64, 8, 4, 16}));

// -------------------------------------------------------------------
// Sweep 2: ADC resolution never gets cheaper with more bits.

class AdcBitsSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AdcBitsSweep, MoreBitsNeverCheaper)
{
    const int bits = GetParam();
    arch::IncaConfig lo = arch::paperInca();
    lo.adcBits = bits;
    arch::IncaConfig hi = arch::paperInca();
    hi.adcBits = bits + 1;
    const auto net = nn::resnet18();
    const double eLo =
        core::IncaEngine(lo).inference(net, 64).sum("energy.adc");
    const double eHi =
        core::IncaEngine(hi).inference(net, 64).sum("energy.adc");
    EXPECT_LT(eLo, eHi);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdcBitsSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

// -------------------------------------------------------------------
// Sweep 3: INCA beats the baseline across networks AND batch sizes.

struct GainPoint
{
    const char *network;
    int batch;
};

class GainSweep : public ::testing::TestWithParam<GainPoint>
{
};

TEST_P(GainSweep, IncaWinsTrainingEverywhere)
{
    const auto p = GetParam();
    const auto net = nn::byName(p.network);
    for (const Backend backend : eachBackend()) {
        SCOPED_TRACE(backendName(backend));
        const auto i = runInca(backend, arch::paperInca(), net,
                               arch::Phase::Training, p.batch);
        const auto b = runBaseline(backend, arch::paperBaseline(),
                                   net, arch::Phase::Training,
                                   p.batch);
        EXPECT_GT(b.energy(), i.energy())
            << p.network << " batch " << p.batch;
        EXPECT_GT(b.latency, i.latency)
            << p.network << " batch " << p.batch;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GainSweep,
    ::testing::Values(GainPoint{"vgg16", 8}, GainPoint{"vgg16", 64},
                      GainPoint{"vgg19", 32},
                      GainPoint{"resnet18", 4},
                      GainPoint{"resnet18", 128},
                      GainPoint{"resnet50", 64},
                      GainPoint{"mobilenetv2", 16},
                      GainPoint{"mobilenetv2", 64},
                      GainPoint{"mnasnet", 64},
                      GainPoint{"lenet5", 64}));

// -------------------------------------------------------------------
// Sweep 4: baseline array size does not rescue light models.

class BaselineArraySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BaselineArraySweep, LightUtilizationStaysLow)
{
    const int size = GetParam();
    const double light =
        arch::wsNetworkUtilization(nn::mobilenetV2(), size);
    const double heavy =
        arch::wsNetworkUtilization(nn::vgg16(), size);
    EXPECT_LT(light, heavy);
    if (size >= 64) {
        EXPECT_LT(light, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineArraySweep,
                         ::testing::Values(32, 64, 128, 256));

// -------------------------------------------------------------------
// Sweep 5: batch-wave arithmetic.

class BatchWaveSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchWaveSweep, WavesQuantizeLatency)
{
    const int batch = GetParam();
    core::IncaEngine engine(arch::paperInca());
    const auto net = nn::lenet5();
    const auto one = engine.inference(net, 1);
    const auto many = engine.inference(net, batch);
    const double waves = std::ceil(batch / 64.0);
    // Latency scales with waves, not with images.
    EXPECT_NEAR(many.latency / one.latency, waves, 0.6 * waves);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchWaveSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 128,
                                           192, 256));


// -------------------------------------------------------------------
// Sweep 6: CIFAR-shaped variants run cleanly through both engines.

class CifarSuiteSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CifarSuiteSweep, EnginesHandleSmallMaps)
{
    const auto input = nn::cifarInput();
    const auto net = nn::byName(GetParam(), input);
    for (const Backend backend : eachBackend()) {
        SCOPED_TRACE(backendName(backend));
        const auto i = runInca(backend, arch::paperInca(), net,
                               arch::Phase::Training, 64);
        const auto b = runBaseline(backend, arch::paperBaseline(),
                                   net, arch::Phase::Training, 64);
        EXPECT_GT(i.energy(), 0.0) << net.name;
        EXPECT_GT(b.energy(), i.energy()) << net.name;
        EXPECT_GT(b.latency, i.latency) << net.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CifarSuiteSweep,
                         ::testing::Values("vgg16", "vgg19",
                                           "resnet18", "resnet50",
                                           "mobilenetv2", "mnasnet",
                                           "vgg8"));

} // namespace
} // namespace inca
