/**
 * @file
 * Tests for the perf-trajectory measurement layer: the BENCH_*.json
 * schema (bench_json.hh), the trimmed-mean statistic, the
 * bench_compare regression gate, and the early-exit phase-timer
 * flush.
 *
 * The bench binaries themselves take minutes; everything here runs
 * the same code paths on synthetic fixtures in milliseconds, so the
 * measurement protocol is pinned by ctest rather than trusted on
 * faith. The schema tests parse real JsonReport output with the same
 * parser bench_compare uses in CI -- if the emitter and the gate ever
 * disagree about the format, this file is where it surfaces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_compare.hh"
#include "bench_json.hh"
#include "common/trace.hh"
#include "json_lint.hh"
#include "sim/report.hh"

namespace inca {
namespace {

using bench::BenchRun;
using bench::CompareOptions;
using bench::JsonValue;
using bench::compareBench;
using bench::parseJson;
using bench::trimmedMean;

/* ------------------------------------------------------------------ */
/* Trimmed mean                                                       */
/* ------------------------------------------------------------------ */

TEST(TrimmedMean, TrimZeroIsThePlainMean)
{
    EXPECT_DOUBLE_EQ(trimmedMean({4.0}, 0), 4.0);
    EXPECT_DOUBLE_EQ(trimmedMean({1.0, 2.0, 3.0, 4.0}, 0), 2.5);
}

TEST(TrimmedMean, DropsTheExtremesFromEachEnd)
{
    // The outliers 100 and -100 must not contaminate the mean.
    EXPECT_DOUBLE_EQ(trimmedMean({100.0, 2.0, 3.0, 4.0, -100.0}, 1),
                     3.0);
    EXPECT_DOUBLE_EQ(
        trimmedMean({9.0, 1.0, 5.0, 5.0, 5.0, 0.0, 10.0}, 2), 5.0);
}

TEST(TrimmedMean, OrderIndependent)
{
    const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> shuffled = {4.0, 1.0, 5.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(trimmedMean(sorted, 1),
                     trimmedMean(shuffled, 1));
}

TEST(TrimmedMean, RejectsImpossibleTrims)
{
    EXPECT_DEATH((void)trimmedMean({1.0, 2.0}, 1), "cannot lose");
    EXPECT_DEATH((void)trimmedMean({}, 0), "cannot lose");
}

/* ------------------------------------------------------------------ */
/* JsonReport schema                                                  */
/* ------------------------------------------------------------------ */

BenchRun
makeRun(const std::string &name, const std::string &isa,
        std::vector<double> samples, int trim)
{
    BenchRun run;
    run.name = name;
    run.isa = isa;
    run.warmup = 2;
    run.trim = trim;
    run.samplesNs = std::move(samples);
    std::int64_t t = 1000;
    for (std::size_t i = 0; i < run.samplesNs.size(); ++i)
        run.timestampsUs.push_back(t += 250);
    return run;
}

TEST(BenchJson, ReportIsStrictlyValidJson)
{
    bench::JsonReport report;
    report.addBenchmark(
        makeRun("gemm", "scalar", {5.0, 1.0, 2.0, 3.0, 100.0}, 1));
    report.addBenchmark(makeRun("gemm", "avx2", {1.0, 2.0, 3.0}, 1));
    report.addPoint("speedup_vs_scalar", "gemm/avx2", 3.25);
    // Hostile label: escaping must keep the document valid.
    report.addPoint("speedup_vs_scalar", "we\"ird\\label", 1.0);
    EXPECT_TRUE(testutil::jsonValid(report.toJson()));
}

TEST(BenchJson, SchemaFieldsSurviveTheCompareParser)
{
    bench::JsonReport report;
    report.addBenchmark(
        makeRun("gemm", "scalar", {5.0, 1.0, 2.0, 3.0, 100.0}, 1));
    std::string err;
    const JsonValue root = parseJson(report.toJson(), err);
    ASSERT_TRUE(err.empty()) << err;

    const JsonValue *schema = root.get("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, std::string(bench::kBenchSchema));

    const JsonValue *benches = root.get("benchmarks");
    ASSERT_NE(benches, nullptr);
    ASSERT_EQ(benches->array.size(), 1u);
    const JsonValue &b = benches->array[0];
    EXPECT_EQ(b.get("name")->string, "gemm");
    EXPECT_EQ(b.get("isa")->string, "scalar");
    EXPECT_EQ(b.get("unit")->string, "ns");
    EXPECT_EQ(b.get("warmup")->number, 2.0);
    EXPECT_EQ(b.get("trim")->number, 1.0);

    // Raw samples are preserved and the stored statistic matches a
    // recompute from them -- the file is self-checking.
    const JsonValue *samples = b.get("samples_ns");
    ASSERT_NE(samples, nullptr);
    ASSERT_EQ(samples->array.size(), 5u);
    std::vector<double> raw;
    for (const auto &v : samples->array)
        raw.push_back(v.number);
    EXPECT_DOUBLE_EQ(b.get("trimmed_mean_ns")->number,
                     trimmedMean(raw, 1));
    EXPECT_DOUBLE_EQ(b.get("trimmed_mean_ns")->number,
                     (2.0 + 3.0 + 5.0) / 3.0); // 1 and 100 trimmed

    // Timestamps: one per sample, strictly monotone.
    const JsonValue *stamps = b.get("timestamps_us");
    ASSERT_NE(stamps, nullptr);
    ASSERT_EQ(stamps->array.size(), samples->array.size());
    for (std::size_t i = 1; i < stamps->array.size(); ++i)
        EXPECT_LT(stamps->array[i - 1].number,
                  stamps->array[i].number);

    // Provenance block present with the pinned-environment keys.
    const JsonValue *prov = root.get("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_NE(prov->get("threads"), nullptr);
    EXPECT_NE(prov->get("cache"), nullptr);
    const JsonValue *env = prov->get("env");
    ASSERT_NE(env, nullptr);
    for (const char *key :
         {"INCA_NUM_THREADS", "INCA_KERNEL_ISA", "INCA_TRACE",
          "INCA_METRICS", "INCA_CACHE"})
        EXPECT_NE(env->get(key), nullptr) << key;
}

/* ------------------------------------------------------------------ */
/* parseJson                                                          */
/* ------------------------------------------------------------------ */

TEST(BenchParseJson, ParsesTheBasics)
{
    std::string err;
    const JsonValue v = parseJson(
        "{\"a\": [1, -2.5, 3e2], \"b\": {\"c\": \"x\\ny\"}, "
        "\"t\": true, \"f\": false, \"n\": null}",
        err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    ASSERT_NE(v.get("a"), nullptr);
    ASSERT_EQ(v.get("a")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.get("a")->array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(v.get("a")->array[1].number, -2.5);
    EXPECT_DOUBLE_EQ(v.get("a")->array[2].number, 300.0);
    EXPECT_EQ(v.get("b")->get("c")->string, "x\ny");
    EXPECT_TRUE(v.get("t")->boolean);
    EXPECT_FALSE(v.get("f")->boolean);
    EXPECT_EQ(v.get("n")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(BenchParseJson, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "{",
        "{\"a\": }",
        "{\"a\": 1,}",
        "[1, 2",
        "\"unterminated",
        "{\"a\": 1} trailing",
        "{\"bad\\q\": 1}",
        "nope",
        "1..2",
    };
    for (const char *doc : bad) {
        std::string err;
        (void)parseJson(doc, err);
        EXPECT_FALSE(err.empty()) << "'" << doc << "'";
    }
}

/* ------------------------------------------------------------------ */
/* compareBench                                                       */
/* ------------------------------------------------------------------ */

/** Minimal on-schema document from (name, isa, mean) triples. */
std::string
makeDoc(const std::vector<std::tuple<std::string, std::string,
                                     double>> &entries)
{
    std::string out = "{\"schema\": \"inca.bench.v1\", "
                      "\"benchmarks\": [";
    bool first = true;
    for (const auto &[name, isa, mean] : entries) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": \"" + name + "\", \"isa\": \"" + isa +
               "\", \"trimmed_mean_ns\": " + std::to_string(mean) +
               "}";
    }
    return out + "]}";
}

TEST(BenchCompare, IdenticalFilesPass)
{
    const std::string doc =
        makeDoc({{"gemm", "scalar", 100.0}, {"gemm", "avx2", 25.0}});
    const auto res = compareBench(doc, doc, CompareOptions{});
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.error.empty());
    EXPECT_TRUE(res.regressions.empty());
    EXPECT_TRUE(res.notes.empty());
}

TEST(BenchCompare, SlowdownsPastTheThresholdFail)
{
    const auto base = makeDoc({{"gemm", "avx2", 100.0}});
    // +30% with a 15% gate: regression.
    auto res = compareBench(base, makeDoc({{"gemm", "avx2", 130.0}}),
                            CompareOptions{});
    EXPECT_FALSE(res.ok);
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_NE(res.regressions[0].find("gemm|avx2"),
              std::string::npos);

    // +10% with a 15% gate: fine, and not even a note.
    res = compareBench(base, makeDoc({{"gemm", "avx2", 110.0}}),
                       CompareOptions{});
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.notes.empty());

    // A looser gate passes the same 30% slowdown.
    CompareOptions loose;
    loose.threshold = 0.50;
    res = compareBench(base, makeDoc({{"gemm", "avx2", 130.0}}),
                       loose);
    EXPECT_TRUE(res.ok);
}

TEST(BenchCompare, ImprovementsAreNotesNotFailures)
{
    const auto res = compareBench(
        makeDoc({{"gemm", "avx2", 100.0}}),
        makeDoc({{"gemm", "avx2", 50.0}}), CompareOptions{});
    EXPECT_TRUE(res.ok);
    ASSERT_EQ(res.notes.size(), 1u);
    EXPECT_NE(res.notes[0].find("improved"), std::string::npos);
}

TEST(BenchCompare, MissingEntriesNoteUnlessRequired)
{
    const auto base = makeDoc(
        {{"gemm", "scalar", 100.0}, {"gemm", "avx512", 10.0}});
    const auto cur = makeDoc({{"gemm", "scalar", 100.0}});

    // Default: the runner lacking the baseline's AVX-512 is a note.
    auto res = compareBench(base, cur, CompareOptions{});
    EXPECT_TRUE(res.ok);
    ASSERT_EQ(res.notes.size(), 1u);
    EXPECT_NE(res.notes[0].find("missing"), std::string::npos);

    CompareOptions strict;
    strict.requireAll = true;
    res = compareBench(base, cur, strict);
    EXPECT_FALSE(res.ok);

    // The reverse -- a new benchmark with no baseline -- is a note
    // either way.
    res = compareBench(cur, base, strict);
    EXPECT_TRUE(res.ok);
    ASSERT_EQ(res.notes.size(), 1u);
    EXPECT_NE(res.notes[0].find("no baseline"), std::string::npos);
}

TEST(BenchCompare, NormalizationSurvivesAUniformMachineSwap)
{
    // The "new machine" is uniformly 2x slower. Raw comparison sees
    // a 2x regression everywhere; normalized to the scalar GEMM the
    // relative shape is unchanged and the gate passes.
    const auto base = makeDoc(
        {{"gemm", "scalar", 100.0}, {"conv", "avx2", 40.0}});
    const auto cur = makeDoc(
        {{"gemm", "scalar", 200.0}, {"conv", "avx2", 80.0}});

    auto res = compareBench(base, cur, CompareOptions{});
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.regressions.size(), 2u);

    CompareOptions norm;
    norm.normalize = "gemm";
    res = compareBench(base, cur, norm);
    EXPECT_TRUE(res.ok) << (res.regressions.empty()
                                ? ""
                                : res.regressions[0]);

    // A REAL relative regression still fails under normalization:
    // conv got 2x slower relative to the calibration benchmark.
    const auto bad = makeDoc(
        {{"gemm", "scalar", 200.0}, {"conv", "avx2", 160.0}});
    res = compareBench(base, bad, norm);
    EXPECT_FALSE(res.ok);
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_NE(res.regressions[0].find("conv|avx2"),
              std::string::npos);
}

TEST(BenchCompare, RelativeToScalarGatesTheSpeedupNotTheMachine)
{
    CompareOptions rel;
    rel.relativeToScalar = true;

    // The current machine is uniformly 3x slower, but the avx2
    // speedup (4x) is intact: pass.
    const auto base = makeDoc(
        {{"gemm", "scalar", 100.0}, {"gemm", "avx2", 25.0}});
    const auto slowMachine = makeDoc(
        {{"gemm", "scalar", 300.0}, {"gemm", "avx2", 75.0}});
    auto res = compareBench(base, slowMachine, rel);
    EXPECT_TRUE(res.ok) << (res.regressions.empty()
                                ? ""
                                : res.regressions[0]);
    EXPECT_TRUE(res.notes.empty());

    // Same machine speed, but the avx2 kernel lost half its edge
    // (4x -> 2x): that IS the regression the gate exists for.
    const auto lostEdge = makeDoc(
        {{"gemm", "scalar", 100.0}, {"gemm", "avx2", 50.0}});
    res = compareBench(base, lostEdge, rel);
    EXPECT_FALSE(res.ok);
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_NE(res.regressions[0].find("gemm|avx2"),
              std::string::npos);

    // Benchmarks without a scalar twin are not gated (and scalar
    // entries themselves are denominators, not comparisons).
    const auto noTwin = makeDoc({{"solo", "scalar", 100.0},
                                 {"orphan", "avx2", 10.0}});
    const auto noTwinSlow = makeDoc({{"solo", "scalar", 900.0},
                                     {"orphan", "avx2", 90.0}});
    res = compareBench(noTwin, noTwinSlow, rel);
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.notes.empty());
}

TEST(BenchCompare, OffSchemaFilesAreErrors)
{
    const auto good = makeDoc({{"gemm", "scalar", 100.0}});
    const char *bad[] = {
        "{\"benchmarks\": []}",                       // no schema
        "{\"schema\": \"inca.bench.v999\", "
        "\"benchmarks\": []}",                        // wrong version
        "{\"schema\": \"inca.bench.v1\"}",            // no benchmarks
        "{\"schema\": \"inca.bench.v1\", \"benchmarks\": "
        "[{\"name\": \"x\"}]}",                       // entry fields
        "not json at all",
    };
    for (const char *doc : bad) {
        auto res = compareBench(doc, good, CompareOptions{});
        EXPECT_FALSE(res.ok) << doc;
        EXPECT_FALSE(res.error.empty()) << doc;
        EXPECT_NE(res.error.find("baseline"), std::string::npos);
        // Same failure on the current side is attributed to it.
        res = compareBench(good, doc, CompareOptions{});
        EXPECT_FALSE(res.ok) << doc;
        EXPECT_NE(res.error.find("current"), std::string::npos);
    }

    // A calibration benchmark the file lacks is an error, not a
    // silent raw comparison.
    CompareOptions norm;
    norm.normalize = "absent";
    const auto res = compareBench(good, good, norm);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("absent"), std::string::npos);
}

/* ------------------------------------------------------------------ */
/* Early-exit phase flush                                             */
/* ------------------------------------------------------------------ */

TEST(PhaseFlush, StopFlushesLivePhaseTimersExactlyOnce)
{
    sim::clearPhaseTimes();
    trace::start("");
    std::string json;
    {
        sim::ScopedPhaseTimer timer("flushtest");
        // Simulate the fatal() path: the trace stops (atexit order)
        // while the phase scope is still open. The atFlush hook must
        // record the phase's elapsed time NOW -- after this, the
        // process would be gone.
        json = trace::stop();

        const auto phases = sim::phaseTimes();
        ASSERT_EQ(phases.size(), 1u);
        EXPECT_EQ(phases[0].phase, "flushtest");
        EXPECT_GE(phases[0].seconds, 0.0);
    }
    // The flushed span is in the trace output as a complete event...
    EXPECT_TRUE(testutil::jsonValid(json));
    EXPECT_NE(json.find("phase flushtest"), std::string::npos);

    // ...and the normal scope exit must NOT record a second entry.
    const auto phases = sim::phaseTimes();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].phase, "flushtest");
    sim::clearPhaseTimes();
    trace::clear();
}

TEST(PhaseFlush, NormalScopeExitStillRecordsWithoutTracing)
{
    sim::clearPhaseTimes();
    {
        sim::ScopedPhaseTimer timer("normal");
    }
    const auto phases = sim::phaseTimes();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].phase, "normal");
    sim::clearPhaseTimes();
}

TEST(PhaseFlush, FlushIsIdempotentPerTimer)
{
    sim::clearPhaseTimes();
    {
        sim::ScopedPhaseTimer timer("idem");
        sim::flushLivePhaseTimers();
        sim::flushLivePhaseTimers(); // second call: no new record
        const auto phases = sim::phaseTimes();
        ASSERT_EQ(phases.size(), 1u);
        EXPECT_EQ(phases[0].phase, "idem");
    }
    EXPECT_EQ(sim::phaseTimes().size(), 1u);
    sim::clearPhaseTimes();
}

} // namespace
} // namespace inca
