/**
 * @file
 * RRAM noise and quantization model tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "nn/noise.hh"

namespace inca {
namespace nn {
namespace {

using tensor::Tensor;

TEST(Noise, DisabledSpec)
{
    NoiseSpec off;
    EXPECT_FALSE(off.enabled());
    NoiseSpec zeroSigma{NoiseTarget::Weights, 0.0};
    EXPECT_FALSE(zeroSigma.enabled());
    NoiseSpec on{NoiseTarget::Activations, 0.02};
    EXPECT_TRUE(on.enabled());
}

TEST(Noise, ZeroSigmaIsIdentity)
{
    Rng rng(1);
    Tensor t = Tensor::randn({16}, rng);
    Tensor out = addRangeNoise(t, 0.0, rng);
    EXPECT_TRUE(out.equals(t));
}

TEST(Noise, ZeroTensorUnchanged)
{
    Rng rng(2);
    Tensor t({8});
    Tensor out = addRangeNoise(t, 0.1, rng);
    EXPECT_TRUE(out.equals(t));
}

TEST(Noise, PerturbationScalesWithRange)
{
    // Same sigma, 10x larger values -> 10x larger absolute noise.
    Rng rngA(3), rngB(3);
    Tensor small = Tensor::full({1000}, 1.0f);
    Tensor large = Tensor::full({1000}, 10.0f);
    Tensor ns = addRangeNoise(small, 0.05, rngA);
    Tensor nl = addRangeNoise(large, 0.05, rngB);
    double devS = 0.0, devL = 0.0;
    for (std::int64_t i = 0; i < 1000; ++i) {
        devS += std::abs(double(ns[i]) - 1.0);
        devL += std::abs(double(nl[i]) - 10.0);
    }
    EXPECT_NEAR(devL / devS, 10.0, 0.5);
}

TEST(Noise, EmpiricalSigmaMatches)
{
    Rng rng(4);
    const double sigma = 0.03;
    Tensor t = Tensor::full({20000}, 2.0f);
    Tensor out = addRangeNoise(t, sigma, rng);
    double sumSq = 0.0;
    for (std::int64_t i = 0; i < t.size(); ++i) {
        const double d = double(out[i]) - 2.0;
        sumSq += d * d;
    }
    // Range = max|t| = 2 -> expected std = sigma * 2.
    EXPECT_NEAR(std::sqrt(sumSq / double(t.size())), sigma * 2.0,
                0.005);
}

TEST(Noise, ZeroCentered)
{
    Rng rng(5);
    Tensor t = Tensor::full({50000}, 1.0f);
    Tensor out = addRangeNoise(t, 0.05, rng);
    EXPECT_NEAR(out.sum() / double(out.size()), 1.0, 0.002);
}

TEST(Quantize, ZeroBitsIsIdentity)
{
    Rng rng(6);
    Tensor t = Tensor::randn({16}, rng);
    EXPECT_TRUE(quantize(t, 0).equals(t));
}

TEST(Quantize, Idempotent)
{
    Rng rng(7);
    Tensor t = Tensor::randn({64}, rng);
    Tensor q1 = quantize(t, 5);
    Tensor q2 = quantize(q1, 5);
    EXPECT_TRUE(q1.allClose(q2, 1e-6f));
}

TEST(Quantize, PreservesRangeExtremes)
{
    Tensor t({3}, {-1.0f, 0.0f, 1.0f});
    Tensor q = quantize(t, 4);
    EXPECT_FLOAT_EQ(q[0], -1.0f);
    EXPECT_FLOAT_EQ(q[1], 0.0f);
    EXPECT_FLOAT_EQ(q[2], 1.0f);
}

TEST(Quantize, ErrorBoundedByHalfStep)
{
    Rng rng(8);
    Tensor t = Tensor::randn({256}, rng);
    const int bits = 6;
    Tensor q = quantize(t, bits);
    const float step = t.absMax() / float((1 << (bits - 1)) - 1);
    for (std::int64_t i = 0; i < t.size(); ++i)
        EXPECT_LE(std::abs(q[i] - t[i]), step / 2.0f + 1e-6f);
}

/** Quantization error must shrink monotonically with bit depth. */
class QuantizeBits : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizeBits, MoreBitsLessError)
{
    const int bits = GetParam();
    Rng rng(9);
    Tensor t = Tensor::randn({512}, rng);
    auto rmse = [&](int b) {
        Tensor q = quantize(t, b);
        double s = 0.0;
        for (std::int64_t i = 0; i < t.size(); ++i) {
            const double d = double(q[i] - t[i]);
            s += d * d;
        }
        return std::sqrt(s / double(t.size()));
    };
    EXPECT_LE(rmse(bits + 1), rmse(bits) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantizeBits,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10));

TEST(Quantize, GridIsSymmetric)
{
    Tensor t({2}, {0.7f, -0.7f});
    Tensor q = quantize(t, 4);
    EXPECT_FLOAT_EQ(q[0], -q[1]);
}

} // namespace
} // namespace nn
} // namespace inca
