/**
 * @file
 * Unrolled-vs-direct RRAM counting tests (paper Fig. 7b).
 */

#include <gtest/gtest.h>

#include "dataflow/unroll.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace dataflow {
namespace {

nn::LayerDesc
convLayer(std::int64_t c, std::int64_t hw, std::int64_t n, int k,
          int stride, int pad)
{
    nn::LayerDesc l;
    l.kind = nn::LayerKind::Conv;
    l.inC = c;
    l.inH = l.inW = hw;
    l.outC = n;
    l.outH = l.outW = (hw + 2 * pad - k) / stride + 1;
    l.kh = l.kw = k;
    l.stride = stride;
    l.pad = pad;
    return l;
}

TEST(Unroll, DirectCountsEachInputOnce)
{
    const auto l = convLayer(64, 56, 128, 3, 1, 1);
    EXPECT_EQ(directInputCount(l), 64 * 56 * 56);
}

TEST(Unroll, UnrolledDuplicatesOverlappingWindows)
{
    const auto l = convLayer(64, 56, 128, 3, 1, 1);
    // Every one of the 56x56 positions stores a full 3x3x64 window.
    EXPECT_EQ(unrolledInputCount(l), 9LL * 64 * 56 * 56);
    // ~9x duplication for stride-1 3x3 convolution.
    EXPECT_NEAR(double(unrolledInputCount(l)) /
                    double(directInputCount(l)),
                9.0, 1e-9);
}

TEST(Unroll, StrideReducesDuplication)
{
    const auto s1 = convLayer(16, 32, 16, 3, 1, 1);
    const auto s2 = convLayer(16, 33, 16, 3, 2, 1);
    const double r1 = double(unrolledInputCount(s1)) /
                      double(directInputCount(s1));
    const double r2 = double(unrolledInputCount(s2)) /
                      double(directInputCount(s2));
    EXPECT_GT(r1, r2);
}

TEST(Unroll, PointwiseHasNoDuplication)
{
    const auto l = convLayer(64, 28, 128, 1, 1, 0);
    EXPECT_EQ(unrolledInputCount(l), directInputCount(l));
}

TEST(Unroll, NonConvIsZero)
{
    nn::LayerDesc pool;
    pool.kind = nn::LayerKind::MaxPool;
    EXPECT_EQ(unrolledInputCount(pool), 0);
    EXPECT_EQ(directInputCount(pool), 0);
}

TEST(Fig7b, RatiosExceedOneEverywhere)
{
    for (const auto &net : nn::evaluationSuite()) {
        const auto s = unrollComparison(net);
        EXPECT_GT(s.ratio(), 1.5) << net.name;
        EXPECT_GT(s.unrolled, s.direct) << net.name;
    }
}

TEST(Fig7b, Resnet50MatchesPaper)
{
    // Paper: 2.1x for ResNet50 (pointwise-heavy -> least duplication).
    EXPECT_NEAR(unrollComparison(nn::resnet50()).ratio(), 2.1, 0.3);
}

TEST(Fig7b, VggsDuplicateMost)
{
    // Stride-1 3x3 stacks duplicate ~9x; the paper reports smaller
    // absolute ratios (4.4-5.0) but the same ordering: VGGs above
    // ResNet50.
    const double vgg16 = unrollComparison(nn::vgg16()).ratio();
    const double vgg19 = unrollComparison(nn::vgg19()).ratio();
    const double rn50 = unrollComparison(nn::resnet50()).ratio();
    EXPECT_GT(vgg16, rn50);
    EXPECT_GT(vgg19, rn50);
    EXPECT_NEAR(vgg16, 9.0, 0.5);
}

TEST(Fig7b, DirectConvolutionJustifiesIncaDesign)
{
    // The design decision the figure motivates: direct convolution
    // keeps the IS RRAM requirement a small multiple of the
    // activation count.
    // direct counts conv-like inputs only, which is exactly the set
    // totalActivations() counts.
    for (const auto &net : nn::heavySuite()) {
        const auto s = unrollComparison(net);
        EXPECT_EQ(s.direct, net.totalActivations()) << net.name;
    }
}

} // namespace
} // namespace dataflow
} // namespace inca
