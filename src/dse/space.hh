/**
 * @file
 * Design-space description: named discrete axes over the accelerator
 * configuration knobs the analytic engines can score.
 *
 * A SearchSpace is an ordered list of axes, each a name plus the
 * discrete values it may take; the space is their cross product and a
 * Candidate is one point of it, addressed by a flat index (mixed-radix
 * over the axis sizes). Keeping candidates index-addressable is what
 * makes every strategy, the journal, and resume deterministic: a
 * candidate's identity is (space, index), independent of evaluation
 * order, thread count, or which strategy produced it.
 *
 * Axis names are bound to arch::IncaConfig / arch::BaselineConfig
 * fields by materializeInca()/materializeWs(); an unknown axis name is
 * a fatal configuration error, so typos fail fast instead of silently
 * sweeping nothing.
 */

#ifndef INCA_DSE_SPACE_HH
#define INCA_DSE_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"

namespace inca {
namespace dse {

/** Which analytic engine scores a candidate. */
enum class EngineKind
{
    Inca, ///< IS dataflow (core::IncaEngine)
    Ws,   ///< weight-stationary baseline (baseline::BaselineEngine)
};

/** "inca" / "ws". */
const char *engineKindName(EngineKind kind);

/** Parse "inca" / "ws"; fatal on anything else. */
EngineKind engineKindByName(const std::string &name);

/** One named discrete axis. */
struct Axis
{
    std::string name;
    std::vector<std::int64_t> values;
};

/** One design point: a value per axis, in axis order. */
struct Candidate
{
    std::uint64_t index = 0; ///< flat index inside the SearchSpace
    std::vector<std::int64_t> values;
};

/**
 * An ordered cross product of discrete axes.
 *
 * Recognized axis names (see materializeInca / materializeWs):
 *   plane            subarray/crossbar size (s x s)
 *   adc_bits         ADC resolution
 *   tiles            tiles per chip
 *   tile_size        macros per tile
 *   macro_size       subarrays per macro
 *   buffer_kib       per-tile SRAM buffer capacity
 *   batch            batch size (also forwarded to the engine run)
 *   stacked_planes   planes per 3D stack (INCA only)
 *   subarrays_per_adc ADC sharing inside a stack (INCA only)
 *   device           index into circuit::allDevicePresets()
 *
 * Serving (datacenter) axes -- ignored by the chip materializers and
 * read by the explorer's serving scoring (see isServingAxis):
 *   replicas         server count
 *   serve_batch      batching-scheduler size cap
 *   shard            sharding kind (0 replica, 1 pipeline, 2 tensor)
 *   shard_chips      chips per server under pipeline/tensor sharding
 *   failure_mtbf     per-server MTBF in milliseconds (0 = failure
 *                    injection off for that candidate)
 */
class SearchSpace
{
  public:
    /** Append an axis; values must be non-empty. Returns *this. */
    SearchSpace &axis(const std::string &name,
                      std::vector<std::int64_t> values);

    const std::vector<Axis> &axes() const { return axes_; }

    std::size_t numAxes() const { return axes_.size(); }

    /** Cross-product cardinality (1 for an empty space). */
    std::uint64_t size() const;

    /** Decode a flat index (mixed-radix, first axis fastest). */
    Candidate candidate(std::uint64_t flatIndex) const;

    /** Flat index of a per-axis value-index vector. */
    std::uint64_t flatIndex(
        const std::vector<std::size_t> &valueIndices) const;

    /** Index of the axis named @p name, or -1 when absent. */
    int axisIndex(const std::string &name) const;

    /** Candidate's value on the axis named @p name, or @p fallback. */
    std::int64_t value(const Candidate &cand, const std::string &name,
                       std::int64_t fallback) const;

    /**
     * Flat indices of every candidate differing from @p flatIndex by
     * one step on exactly one axis (the annealing move set).
     * Deterministically ordered: axis order, minus step before plus.
     */
    std::vector<std::uint64_t> neighbors(std::uint64_t flatIndex) const;

    /** "plane=16 adc_bits=4" (axis order). */
    std::string describe(const Candidate &cand) const;

  private:
    std::vector<Axis> axes_;
};

/**
 * Apply a candidate's axes to a copy of @p base. With @p isoCapacity
 * set, the tile count is rescaled after all axes are applied so the
 * chip keeps @p base's total cell capacity (the paper's iso-capacity
 * plane sweep); do not combine it with an explicit "tiles" axis.
 */
arch::IncaConfig materializeInca(const SearchSpace &space,
                                 const Candidate &cand,
                                 const arch::IncaConfig &base,
                                 bool isoCapacity);

/** Baseline counterpart of materializeInca(). */
arch::BaselineConfig materializeWs(const SearchSpace &space,
                                   const Candidate &cand,
                                   const arch::BaselineConfig &base,
                                   bool isoCapacity);

/**
 * True for the datacenter-level axis names (replicas, serve_batch,
 * shard, shard_chips): part of a candidate's identity but applied by
 * the explorer's serving scoring, not the chip materializers (which
 * skip them instead of rejecting them as typos).
 */
bool isServingAxis(const std::string &name);

/**
 * The default exploration space around the paper's Table II design
 * point: plane size, ADC bits, buffer capacity, and batch.
 */
SearchSpace defaultSpace(EngineKind kind);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_SPACE_HH
