/**
 * @file
 * Cheap design-point feasibility filters.
 *
 * Constraints gate a candidate before the expensive engine run: every
 * bound below is evaluated from the materialized config and the
 * pre-scoring scalars (area, idle power, utilization, accuracy proxy),
 * all of which are pure closed-form functions behind EvalCaches. A
 * rejected candidate costs microseconds instead of a full network
 * walk, which is what makes budgeted random/annealing searches over
 * mostly-infeasible spaces affordable.
 *
 * A rejection always names the violated constraint and the offending
 * values -- rejections are warn()ed, never silent, so a sweep that
 * filters a design point says exactly why (the satellite fix for
 * design_space's previously silent skips).
 */

#ifndef INCA_DSE_CONSTRAINTS_HH
#define INCA_DSE_CONSTRAINTS_HH

#include <string>

#include "dse/objectives.hh"

namespace inca {
namespace dse {

/**
 * Feasibility bounds. A value of 0 (or false) disables the bound, so
 * a default-constructed Constraints accepts everything.
 */
struct Constraints
{
    double maxAreaMm2 = 0.0;      ///< chip area budget [mm^2]
    double maxIdlePowerW = 0.0;   ///< idle-power budget [W]
    double minUtilization = 0.0;  ///< network array utilization floor
    double minAccuracy = 0.0;     ///< accuracy-proxy floor
    double minAccuracyAtBer = 0.0; ///< resilience-proxy floor
    bool losslessAdc = false;     ///< ADC must digitize a full window
    /**
     * Serving SLO ceiling on the p99 request latency [ms]. Unlike the
     * bounds above this one needs a serving simulation, so the
     * explorer checks it after scoring (selecting it turns serving
     * scoring on), not in the cheap pre-scoring filter.
     */
    double maxP99Ms = 0.0;
    /**
     * Serving availability floor in [0, 1]. Like max_p99_ms this
     * needs a serving simulation (with failure injection active in
     * the scenario), so the explorer checks it after scoring;
     * selecting it turns serving scoring on.
     */
    double minAvailability = 0.0;

    /** True when no bound is active. */
    bool empty() const
    {
        return maxAreaMm2 <= 0.0 && maxIdlePowerW <= 0.0 &&
               minUtilization <= 0.0 && minAccuracy <= 0.0 &&
               minAccuracyAtBer <= 0.0 && !losslessAdc &&
               maxP99Ms <= 0.0 && minAvailability <= 0.0;
    }

    /**
     * Apply one "key=value" bound (the CLI / journal spelling):
     * max_area_mm2, max_idle_w, min_utilization, min_accuracy,
     * min_accuracy_at_ber, lossless_adc, max_p99_ms,
     * min_availability. Fatal on an unknown key or
     * unparsable value.
     */
    void set(const std::string &keyValue);

    /** Active bounds as comma-separated "key=value" pairs. */
    std::string str() const;
};

/** Outcome of a feasibility check. */
struct ConstraintCheck
{
    bool ok = true;
    /** "max_area_mm2 (612.4 > 450)" -- the violated bound. */
    std::string reason;
};

/**
 * Check the cheap scalars of @p e (areaM2, idlePowerW, utilization,
 * accuracy must already be filled) against @p c. @p adcBits and
 * @p maxWindow drive the lossless-ADC bound for the IS dataflow
 * (2^bits - 1 levels must cover a k x k window's sum).
 */
ConstraintCheck checkConstraints(const Constraints &c,
                                 const Evaluation &e,
                                 EngineKind kind, int adcBits,
                                 int maxWindow);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_CONSTRAINTS_HH
