#include "dse/journal.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/logging.hh"

namespace inca {
namespace dse {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    // %.17g round-trips IEEE-754 doubles exactly; resume depends on
    // reading back bit-identical values.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no inf/nan literals; clamp to huge sentinels (the
    // explorer never produces them, but a journal must stay lintable).
    if (std::strstr(buf, "inf") || std::strstr(buf, "nan"))
        std::snprintf(buf, sizeof(buf), "%.17g",
                      v > 0 ? 1e308 : -1e308);
    return buf;
}

/**
 * Locate "key": in @p line and return the raw value token --
 * respecting string quoting and one level of array nesting, which is
 * all the fixed writer format uses.
 */
bool
rawValue(const std::string &line, const char *key, std::string &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    if (i >= line.size())
        return false;
    if (line[i] == '"') {
        std::size_t j = i + 1;
        while (j < line.size()) {
            if (line[j] == '\\')
                j += 2;
            else if (line[j] == '"')
                break;
            else
                ++j;
        }
        if (j >= line.size())
            return false;
        out = line.substr(i, j - i + 1);
        return true;
    }
    if (line[i] == '[') {
        const std::size_t j = line.find(']', i);
        if (j == std::string::npos)
            return false;
        out = line.substr(i, j - i + 1);
        return true;
    }
    const std::size_t j = line.find_first_of(",}", i);
    if (j == std::string::npos)
        return false;
    out = line.substr(i, j - i);
    return true;
}

bool
getString(const std::string &line, const char *key, std::string &out)
{
    std::string raw;
    if (!rawValue(line, key, raw) || raw.size() < 2 ||
        raw.front() != '"' || raw.back() != '"')
        return false;
    // Un-escape (the writer only emits the escapes below).
    out.clear();
    for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 2 < raw.size()) {
            ++i;
            switch (raw[i]) {
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            default:
                out += raw[i];
            }
        } else {
            out += raw[i];
        }
    }
    return true;
}

bool
getDouble(const std::string &line, const char *key, double &out)
{
    std::string raw;
    if (!rawValue(line, key, raw) || raw.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(raw.c_str(), &end);
    return end != raw.c_str() && *end == '\0';
}

bool
getU64(const std::string &line, const char *key, std::uint64_t &out)
{
    std::string raw;
    if (!rawValue(line, key, raw) || raw.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(raw.c_str(), &end, 10);
    return end != raw.c_str() && *end == '\0';
}

bool
getBool(const std::string &line, const char *key, bool &out)
{
    std::string raw;
    if (!rawValue(line, key, raw))
        return false;
    if (raw == "true")
        out = true;
    else if (raw == "false")
        out = false;
    else
        return false;
    return true;
}

bool
getDoubleArray(const std::string &line, const char *key,
               std::vector<double> &out)
{
    std::string raw;
    if (!rawValue(line, key, raw) || raw.size() < 2 ||
        raw.front() != '[' || raw.back() != ']')
        return false;
    out.clear();
    const char *p = raw.c_str() + 1;
    while (*p != '\0' && *p != ']') {
        char *end = nullptr;
        const double v = std::strtod(p, &end);
        if (end == p)
            return false;
        out.push_back(v);
        p = end;
        if (*p == ',')
            ++p;
    }
    return true;
}

bool
parseEvalLine(const std::string &line, Evaluation &e)
{
    std::string type;
    if (!getString(line, "type", type) || type != "eval")
        return false;
    if (!getU64(line, "index", e.candidate.index))
        return false;
    if (!getBool(line, "feasible", e.feasible) ||
        !getBool(line, "scored", e.scored))
        return false;
    if (!getString(line, "rejected_by", e.rejectedBy))
        return false;
    if (!getU64(line, "config_key_hash", e.configKeyHash))
        return false;
    if (!getDouble(line, "area_m2", e.areaM2) ||
        !getDouble(line, "idle_w", e.idlePowerW) ||
        !getDouble(line, "utilization", e.utilization) ||
        !getDouble(line, "accuracy", e.accuracy) ||
        !getDouble(line, "energy_j", e.energyJ) ||
        !getDouble(line, "latency_s", e.latencyS))
        return false;
    // Written by every v2 journal; absent from pre-resilience ones
    // (which a signature mismatch rejects anyway), so default it
    // rather than failing the whole line.
    if (!getDouble(line, "resilience", e.resilience))
        e.resilience = 0.0;
    // Same forward-compatibility treatment: journals written before
    // the event backend carry no timed latency.
    if (!getDouble(line, "latency_timed_s", e.timedLatencyS))
        e.timedLatencyS = 0.0;
    // ... and journals written before the analysis layer carry no
    // bottleneck attribution.
    if (!getString(line, "bottleneck_unit", e.bottleneckUnit))
        e.bottleneckUnit.clear();
    if (!getDouble(line, "critical_share", e.criticalShare))
        e.criticalShare = 0.0;
    // ... and pre-serving journals carry no serving scalars.
    if (!getDouble(line, "p99_latency_s", e.p99LatencyS))
        e.p99LatencyS = 0.0;
    if (!getDouble(line, "goodput_rps", e.goodputRps))
        e.goodputRps = 0.0;
    if (!getDouble(line, "energy_per_request_j",
                   e.energyPerRequestJ))
        e.energyPerRequestJ = 0.0;
    // ... and pre-chaos journals carry no availability/shed scalars.
    if (!getDouble(line, "availability", e.availability))
        e.availability = 1.0;
    if (!getDouble(line, "shed_fraction", e.shedFraction))
        e.shedFraction = 0.0;
    if (!getDoubleArray(line, "objectives", e.objectives))
        return false;
    return true;
}

} // namespace

std::string
JournalHeader::toJsonLine() const
{
    std::string out = "{\"type\":\"header\",\"version\":1";
    out += ",\"space_size\":" + std::to_string(spaceSize);
    out += ",\"signature\":\"" + jsonEscape(signature) + "\"}";
    return out;
}

std::string
evalToJsonLine(const Evaluation &e)
{
    std::string out = "{\"type\":\"eval\"";
    out += ",\"index\":" + std::to_string(e.candidate.index);
    out += ",\"feasible\":";
    out += e.feasible ? "true" : "false";
    out += ",\"scored\":";
    out += e.scored ? "true" : "false";
    out += ",\"rejected_by\":\"" + jsonEscape(e.rejectedBy) + "\"";
    out += ",\"config_key_hash\":" + std::to_string(e.configKeyHash);
    out += ",\"area_m2\":" + fmtDouble(e.areaM2);
    out += ",\"idle_w\":" + fmtDouble(e.idlePowerW);
    out += ",\"utilization\":" + fmtDouble(e.utilization);
    out += ",\"accuracy\":" + fmtDouble(e.accuracy);
    out += ",\"resilience\":" + fmtDouble(e.resilience);
    out += ",\"energy_j\":" + fmtDouble(e.energyJ);
    out += ",\"latency_s\":" + fmtDouble(e.latencyS);
    out += ",\"latency_timed_s\":" + fmtDouble(e.timedLatencyS);
    out += ",\"bottleneck_unit\":\"" + jsonEscape(e.bottleneckUnit) +
           "\"";
    out += ",\"critical_share\":" + fmtDouble(e.criticalShare);
    out += ",\"p99_latency_s\":" + fmtDouble(e.p99LatencyS);
    out += ",\"goodput_rps\":" + fmtDouble(e.goodputRps);
    out += ",\"energy_per_request_j\":" +
           fmtDouble(e.energyPerRequestJ);
    out += ",\"availability\":" + fmtDouble(e.availability);
    out += ",\"shed_fraction\":" + fmtDouble(e.shedFraction);
    out += ",\"objectives\":[";
    for (std::size_t i = 0; i < e.objectives.size(); ++i) {
        if (i > 0)
            out += ',';
        out += fmtDouble(e.objectives[i]);
    }
    out += "]}";
    return out;
}

void
JournalWriter::open(const std::string &path,
                    const JournalHeader &header, bool append)
{
    close();
    file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (!file_)
        fatal("cannot open journal '%s': %s", path.c_str(),
              std::strerror(errno));
    if (!append) {
        const std::string line = header.toJsonLine();
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fputc('\n', file_);
        std::fflush(file_);
    }
}

void
JournalWriter::append(const Evaluation &e)
{
    inca_assert(file_ != nullptr, "journal not open");
    const std::string line = evalToJsonLine(e);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    // One flush per line bounds a kill's loss to the torn tail.
    std::fflush(file_);
}

void
JournalWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
readJournal(const std::string &path, JournalContents &out)
{
    std::ifstream in(path.c_str());
    if (!in.is_open())
        return false;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    if (lines.empty())
        fatal("journal '%s' is empty", path.c_str());

    std::string type;
    if (!getString(lines[0], "type", type) || type != "header" ||
        !getString(lines[0], "signature", out.header.signature) ||
        !getU64(lines[0], "space_size", out.header.spaceSize))
        fatal("journal '%s' has no parsable header", path.c_str());

    for (std::size_t i = 1; i < lines.size(); ++i) {
        Evaluation e;
        if (!parseEvalLine(lines[i], e)) {
            if (i + 1 == lines.size()) {
                // Torn final line from a mid-write kill: drop it.
                out.truncatedTail = true;
                break;
            }
            fatal("journal '%s': malformed line %zu", path.c_str(),
                  i + 1);
        }
        out.evals[e.candidate.index] = e;
    }
    return true;
}

} // namespace dse
} // namespace inca
