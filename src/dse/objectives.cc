#include "dse/objectives.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/layer.hh"
#include "reliability/fault_model.hh"

namespace inca {
namespace dse {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Energy:
        return "energy";
      case Objective::Latency:
        return "latency";
      case Objective::Area:
        return "area";
      case Objective::Edp:
        return "edp";
      case Objective::IdlePower:
        return "idle_power";
      case Objective::Utilization:
        return "utilization";
      case Objective::Accuracy:
        return "accuracy";
      case Objective::Resilience:
        return "resilience";
      case Objective::LatencyTimed:
        return "latency_timed";
      case Objective::P99Latency:
        return "p99_latency";
      case Objective::Goodput:
        return "goodput";
      case Objective::EnergyPerRequest:
        return "energy_per_request";
      case Objective::Availability:
        return "availability";
      case Objective::ShedFraction:
        return "shed_fraction";
    }
    panic("unreachable objective %d", int(o));
}

Objective
objectiveByName(const std::string &name)
{
    for (const Objective o :
         {Objective::Energy, Objective::Latency, Objective::Area,
          Objective::Edp, Objective::IdlePower,
          Objective::Utilization, Objective::Accuracy,
          Objective::Resilience, Objective::LatencyTimed,
          Objective::P99Latency, Objective::Goodput,
          Objective::EnergyPerRequest, Objective::Availability,
          Objective::ShedFraction}) {
        if (name == objectiveName(o))
            return o;
    }
    fatal("unknown objective '%s'", name.c_str());
}

std::vector<Objective>
objectivesByNames(const std::string &list)
{
    std::vector<Objective> out;
    std::string token;
    for (std::size_t i = 0; i <= list.size(); ++i) {
        if (i == list.size() || list[i] == ',') {
            if (!token.empty())
                out.push_back(objectiveByName(token));
            token.clear();
        } else {
            token.push_back(list[i]);
        }
    }
    if (out.empty())
        fatal("objective list '%s' names no objectives",
              list.c_str());
    return out;
}

bool
objectiveMaximized(Objective o)
{
    return o == Objective::Utilization || o == Objective::Accuracy ||
           o == Objective::Resilience || o == Objective::Goodput ||
           o == Objective::Availability;
}

double
Evaluation::value(Objective o) const
{
    switch (o) {
      case Objective::Energy:
        return energyJ;
      case Objective::Latency:
        return latencyS;
      case Objective::Area:
        return areaM2;
      case Objective::Edp:
        return energyJ * latencyS;
      case Objective::IdlePower:
        return idlePowerW;
      case Objective::Utilization:
        return utilization;
      case Objective::Accuracy:
        return accuracy;
      case Objective::Resilience:
        return resilience;
      case Objective::LatencyTimed:
        return timedLatencyS;
      case Objective::P99Latency:
        return p99LatencyS;
      case Objective::Goodput:
        return goodputRps;
      case Objective::EnergyPerRequest:
        return energyPerRequestJ;
      case Objective::Availability:
        return availability;
      case Objective::ShedFraction:
        return shedFraction;
    }
    panic("unreachable objective %d", int(o));
}

void
orientObjectives(Evaluation &e,
                 const std::vector<Objective> &objectives)
{
    e.objectives.clear();
    e.objectives.reserve(objectives.size());
    for (const Objective o : objectives) {
        const double v = e.value(o);
        e.objectives.push_back(objectiveMaximized(o) ? -v : v);
    }
}

int
maxConvWindow(const nn::NetworkDesc &net)
{
    // The first conv reads off-chip inputs through the digital path
    // (IncaEngine's firstConv special case), so its oversized stem
    // window (7x7 in the ResNets) never reaches the in-array ADC;
    // the lossless bound is over the remaining layers -- the paper's
    // "4 bits digitize a 3x3 window, 3 bits clip it (9 > 7)".
    int window = 1;
    bool first = true;
    for (const auto &layer : net.convLayers()) {
        if (first) {
            first = false;
            continue;
        }
        window = std::max(window, layer.kh * layer.kw);
    }
    return window;
}

double
accuracyProxy(EngineKind kind, int adcBits, int maxWindow,
              double noiseSigma)
{
    inca_assert(adcBits > 0 && adcBits < 31,
                "accuracyProxy needs a sane ADC resolution, got %d",
                adcBits);
    // Paper-calibrated float baseline (Table I: 8/8-bit keeps
    // full-precision accuracy; the proxy's ceiling).
    const double base = 0.95;
    const double levels = double((1 << adcBits) - 1);
    const double clip =
        kind == EngineKind::Inca
            ? std::min(1.0, levels / double(maxWindow))
            : 1.0;
    // Table VI endpoints at sigma = 0.05: WS 82.13 -> 15.17 %
    // (accumulating write noise, ~13.4 fraction/unit-sigma), IS
    // 89.21 -> 85.59 % (transient read noise, ~0.72).
    const double slope = kind == EngineKind::Ws ? 13.4 : 0.72;
    return std::max(0.0, base * clip - slope * noiseSigma);
}

double
resilienceProxy(EngineKind kind, int adcBits, int maxWindow,
                double noiseSigma, double ber, int activationBits,
                int arraySize,
                const reliability::MitigationSpec &mitigation)
{
    inca_assert(ber >= 0.0 && ber <= 1.0,
                "fault BER %f outside [0, 1]", ber);
    inca_assert(arraySize > 0, "bad array size %d", arraySize);
    const int retries = std::max(mitigation.writeVerifyRetries, 0);
    // Soft write-variation faults surviving the verify-retry budget.
    const double soft = reliability::residualSoftBer(ber, retries);
    // Hard stuck faults surviving spare-line remapping: the expected
    // number of faulty lines of an s x s array is s(1 - (1-p)^s);
    // spares cover that expectation first-come-first-served (the
    // greedy row-then-column policy of reliability::RemapTable), and
    // the uncovered fraction of faults stays resident. Without
    // verify hardware, faults are never even detected.
    double hard = std::min(ber, 0.5);
    if (mitigation.verifyEnabled()) {
        const double faultyLines =
            double(arraySize) *
            (1.0 - std::pow(1.0 - std::min(ber, 0.5),
                            double(arraySize)));
        const double spares =
            double(mitigation.spareRows + mitigation.spareCols);
        const double coverage =
            faultyLines <= 0.0
                ? 1.0
                : std::min(1.0, spares / faultyLines);
        hard *= 1.0 - coverage;
    }
    const double sigma =
        noiseSigma +
        reliability::faultNoiseSigma(hard + soft, activationBits);
    return accuracyProxy(kind, adcBits, maxWindow, sigma);
}

} // namespace dse
} // namespace inca
