/**
 * @file
 * Candidate-proposal strategies.
 *
 * A Strategy turns the search space into a deterministic stream of
 * candidate indices, consumed in waves by the Explorer: nextBatch()
 * proposes up to n indices, the Explorer scores them (in parallel,
 * but the stream itself never depends on thread count), and observe()
 * feeds the scored wave back so adaptive strategies can steer. All
 * randomness comes from SplitMix64 streams derived from one seed, so
 * the same (space, strategy, seed) triple always proposes the same
 * candidates in the same order -- the property the journal's resume
 * replay and the thread-count determinism tests rely on.
 *
 *  - Grid: exhaustive enumeration in flat-index order.
 *  - Random: a seeded Fisher-Yates permutation of the space, i.e.
 *    uniform sampling without replacement.
 *  - Anneal: K independent simulated-annealing chains over the
 *    one-axis-step neighbor graph, scalarizing objectives in
 *    log-space; a batch is one proposal per chain, so chains score in
 *    parallel while each chain stays sequential.
 */

#ifndef INCA_DSE_STRATEGY_HH
#define INCA_DSE_STRATEGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dse/objectives.hh"
#include "dse/space.hh"

namespace inca {
namespace dse {

/** Available strategies. */
enum class StrategyKind
{
    Grid,   ///< exhaustive enumeration
    Random, ///< seeded sampling without replacement
    Anneal, ///< parallel simulated-annealing chains
};

/** "grid" / "random" / "anneal". */
const char *strategyKindName(StrategyKind kind);

/** Parse a strategy name; fatal on anything else. */
StrategyKind strategyKindByName(const std::string &name);

/** Deterministic candidate-index proposal stream. */
class Strategy
{
  public:
    virtual ~Strategy() = default;

    /**
     * Propose up to @p n candidate indices to score next; an empty
     * result ends the exploration. Adaptive strategies may return
     * fewer than @p n (Anneal always proposes one per chain).
     */
    virtual std::vector<std::uint64_t> nextBatch(std::size_t n) = 0;

    /**
     * Feed back the scored wave, in proposal order. Entries with
     * scored == false were filtered by a constraint.
     */
    virtual void observe(const std::vector<Evaluation> &wave)
    {
        (void)wave;
    }
};

/**
 * Build a strategy over @p space. @p seed drives every random choice;
 * @p objectives is the scalarization order used by Anneal (ignored by
 * Grid/Random).
 */
std::unique_ptr<Strategy> makeStrategy(
    StrategyKind kind, const SearchSpace &space, std::uint64_t seed,
    const std::vector<Objective> &objectives);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_STRATEGY_HH
