#include "dse/pareto.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inca {
namespace dse {

bool
dominates(const std::vector<double> &a, const std::vector<double> &b)
{
    inca_assert(a.size() == b.size(),
                "dominance needs equal arity (%zu vs %zu)", a.size(),
                b.size());
    bool strictlyBetter = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictlyBetter = true;
    }
    return strictlyBetter;
}

bool
ParetoFrontier::insert(const Evaluation &e)
{
    inca_assert(e.objectives.size() == arity_,
                "evaluation arity %zu != frontier arity %zu",
                e.objectives.size(), arity_);
    for (const auto &p : points_) {
        // A strategy may revisit a candidate (annealing chains);
        // identical points must not duplicate frontier rows.
        if (p.candidate.index == e.candidate.index)
            return false;
        if (dominates(p.objectives, e.objectives))
            return false;
    }
    points_.erase(
        std::remove_if(points_.begin(), points_.end(),
                       [&](const Evaluation &p) {
                           return dominates(e.objectives,
                                            p.objectives);
                       }),
        points_.end());
    points_.push_back(e);
    return true;
}

std::vector<Evaluation>
ParetoFrontier::sorted() const
{
    std::vector<Evaluation> out = points_;
    std::sort(out.begin(), out.end(),
              [](const Evaluation &a, const Evaluation &b) {
                  return a.candidate.index < b.candidate.index;
              });
    return out;
}

} // namespace dse
} // namespace inca
