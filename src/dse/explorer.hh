/**
 * @file
 * The exploration driver: strategy stream -> parallel evaluation ->
 * constraint filter -> Pareto reduction -> journal.
 *
 * Explorer::run() consumes candidate waves from the strategy. Inside
 * a wave, evaluation fans out across the global ThreadPool into
 * pre-sized result slots -- evaluation is a pure function of
 * (space, options, candidate index), so slot contents never depend on
 * scheduling. Everything order-sensitive (journal append, frontier
 * insert, metrics, strategy feedback) runs serially in proposal
 * order afterwards. The combination makes the full result, exports
 * included, bit-identical at any thread count.
 *
 * Checkpoint/resume: every completed evaluation is appended to a
 * JSONL journal (when a path is given). A resumed run replays the
 * same deterministic strategy stream and substitutes journaled
 * evaluations for engine runs, so killing a run at any point and
 * resuming it yields the same frontier as never killing it.
 */

#ifndef INCA_DSE_EXPLORER_HH
#define INCA_DSE_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/cost.hh"
#include "dse/constraints.hh"
#include "dse/objectives.hh"
#include "dse/space.hh"
#include "dse/strategy.hh"
#include "serving/simulator.hh"

namespace inca {
namespace dse {

/** Everything that parameterizes an exploration run. */
struct ExploreOptions
{
    EngineKind engine = EngineKind::Inca;
    arch::Phase phase = arch::Phase::Inference;
    std::string network = "resnet18";

    StrategyKind strategy = StrategyKind::Grid;
    std::uint64_t seed = 1;

    /**
     * Maximum candidates to evaluate; 0 means unbounded (grid/random
     * stop when the space is exhausted; anneal requires a budget).
     */
    std::uint64_t budget = 0;

    std::vector<Objective> objectives = {Objective::Energy,
                                         Objective::Latency,
                                         Objective::Area};
    Constraints constraints;
    /**
     * Soft constraints warn and mark the point infeasible but still
     * score it (design_space uses this so every table row prints);
     * hard constraints skip scoring entirely.
     */
    bool softConstraints = false;

    /** Rescale tiles to keep base cell capacity (plane sweeps). */
    bool isoCapacity = false;

    /** Device-noise level for the accuracy proxy. */
    double noiseSigma = 0.05;

    /** Reference fault rate for the resilience proxy. */
    double faultBer = 1e-3;
    /** Mitigation hardware assumed by the resilience proxy. */
    reliability::MitigationSpec mitigation;

    /** Candidates proposed per wave (the parallel fan-out width). */
    std::size_t evalBatch = 64;

    /** Journal path; empty disables checkpointing. */
    std::string journalPath;
    /** Reuse an existing journal instead of overwriting it. */
    bool resume = false;

    /** Base design points the candidate axes perturb. */
    arch::IncaConfig baseInca = arch::paperInca();
    arch::BaselineConfig baseWs = arch::paperBaseline();

    /**
     * The serving scenario behind the p99_latency / goodput /
     * energy_per_request objectives and the max_p99_ms constraint.
     * Selecting any of those turns serving scoring on: each scored
     * candidate additionally runs one virtual-time serving simulation
     * of its materialized chip under this traffic. The search axes
     * replicas, serve_batch, shard, and shard_chips (when present in
     * the space) override the fixed values per candidate, which is
     * how the explorer searches the datacenter dimensions jointly
     * with the chip ones.
     */
    struct ServingScenario
    {
        serving::ArrivalSpec arrivals;
        Seconds durationS = 0.2;
        int replicas = 1;
        serving::ShardSpec shard;
        serving::BatchPolicy batch;
        Seconds sloS = 0.0; ///< goodput SLO (0: goodput=throughput)
        /**
         * Chaos layer under the availability / shed_fraction
         * objectives and the min_availability constraint: failure
         * injection, client retry, deadline, hedging, and bounded
         * queues, all forwarded into the per-candidate ServingSpec.
         * The failure_mtbf axis (when present in the space)
         * overrides failures.mtbfS per candidate -- its value is in
         * milliseconds, 0 meaning injection off.
         */
        serving::FailureSpec failures;
        serving::RetryPolicy retry;
        Seconds deadlineS = 0.0;
        Seconds hedgeDelayS = 0.0;
        std::uint64_t queueCap = 0;
    };
    ServingScenario serving;
};

/** Outcome of Explorer::run(). */
struct ExploreResult
{
    /** Every evaluation, in strategy proposal order. */
    std::vector<Evaluation> evaluations;
    /** Non-dominated feasible points, sorted by candidate index. */
    std::vector<Evaluation> frontier;

    std::uint64_t spaceSize = 0;
    std::uint64_t scored = 0;   ///< engine runs performed
    std::uint64_t filtered = 0; ///< hard-constraint rejections
    std::uint64_t reused = 0;   ///< journal replays
};

/** Runs one exploration over a space. */
class Explorer
{
  public:
    Explorer(SearchSpace space, ExploreOptions options);

    /** Execute the exploration (see file comment). */
    ExploreResult run();

    /**
     * Canonical run signature: everything that determines the
     * evaluation stream. Journal compatibility is signature equality.
     */
    std::string signature() const;

    const SearchSpace &space() const { return space_; }

    const ExploreOptions &options() const { return options_; }

    /**
     * Evaluate one candidate index (pure; what run() fans out).
     * Exposed for tests and for re-scoring frontier members.
     */
    Evaluation evaluate(std::uint64_t flatIndex) const;

  private:
    /** Serving-simulate one scored candidate (fills p99/goodput/epr). */
    void scoreServing(Evaluation &e) const;

    /**
     * True when the serving scenario has any chaos feature active
     * (failures, retry, deadline, hedging, bounded queues), the
     * min_availability constraint is set, or the space searches the
     * failure_mtbf axis. Gates the chaos part of the signature so
     * chaos-free runs keep their pre-chaos journal identity.
     */
    bool servingChaosActive() const;

    SearchSpace space_;
    ExploreOptions options_;
    nn::NetworkDesc net_;
    int maxWindow_ = 0;
    /** latency_timed selected: score the event backend too. */
    bool wantTimed_ = false;
    /** Serving objective or max_p99_ms selected: simulate serving. */
    bool wantServing_ = false;
};

/**
 * Frontier CSV: one row per point with the candidate's axis values,
 * the objective scalars, and the config-key hash. %.17g numbers, so
 * two byte-identical CSVs mean two bit-identical frontiers.
 */
std::string frontierCsv(const SearchSpace &space,
                        const std::vector<Evaluation> &frontier,
                        const std::vector<Objective> &objectives);

/**
 * Frontier JSON report: run parameters, counters, the frontier with
 * per-point axis values and scalars, and the same run-provenance
 * manifest sim::toJson embeds (threads, cache, build, INCA_* env).
 */
std::string frontierJson(const Explorer &explorer,
                         const ExploreResult &result);

/**
 * Re-score every frontier member and write per-run sim::toCsv /
 * sim::toJson files named <prefix>-<index>.{csv,json}. Re-scoring is
 * pure (and cache-backed), so this works identically for resumed
 * runs whose journal carried only scalars.
 */
void exportFrontierRuns(const Explorer &explorer,
                        const ExploreResult &result,
                        const std::string &prefix);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_EXPLORER_HH
