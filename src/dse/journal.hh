/**
 * @file
 * Checkpoint/resume journal for exploration runs.
 *
 * The journal is JSONL: one header object describing the run (a
 * canonical signature of space + options) followed by one object per
 * scored-or-filtered candidate, flushed line by line so a killed run
 * loses at most the line being written. Doubles are printed with
 * %.17g, which round-trips IEEE-754 exactly -- a resumed run that
 * reuses journaled evaluations produces byte-identical frontier
 * exports to an uninterrupted one.
 *
 * Resume never trusts journal order: the Explorer replays the same
 * deterministic strategy stream and merely substitutes journaled
 * evaluations (keyed by candidate index) for engine runs, so a torn
 * tail line, or a journal written at a different thread count, cannot
 * change the result. A journal whose header signature does not match
 * the requested run is a hard error, not a silent restart.
 */

#ifndef INCA_DSE_JOURNAL_HH
#define INCA_DSE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "dse/objectives.hh"

namespace inca {
namespace dse {

/** Identifies the run a journal belongs to. */
struct JournalHeader
{
    /**
     * Canonical description of everything that determines the
     * evaluation stream: space axes, engine, network, phase, batch,
     * strategy, seed, objectives, constraints. Two runs may share a
     * journal iff their signatures are equal.
     */
    std::string signature;
    std::uint64_t spaceSize = 0;

    /** Header serialized as one JSON line (no trailing newline). */
    std::string toJsonLine() const;
};

/** Serialize @p e as one JSON line (no trailing newline). */
std::string evalToJsonLine(const Evaluation &e);

/** Appends one line per evaluation, flushing each. */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open @p path. With @p append the file is extended (resume --
     * the header is already present); otherwise it is truncated and
     * @p header written first. Fatal when the file cannot open.
     */
    void open(const std::string &path, const JournalHeader &header,
              bool append);

    bool isOpen() const { return file_ != nullptr; }

    /** Write + flush one evaluation line. */
    void append(const Evaluation &e);

    void close();

  private:
    std::FILE *file_ = nullptr;
};

/** Everything recovered from an existing journal. */
struct JournalContents
{
    JournalHeader header;
    /** Recovered evaluations, keyed by candidate index. */
    std::unordered_map<std::uint64_t, Evaluation> evals;
    /** True when the final line was torn (killed mid-write). */
    bool truncatedTail = false;
};

/**
 * Read a journal written by JournalWriter. Returns false when @p path
 * does not exist; fatal on a file with no parsable header. A
 * malformed final line is tolerated (truncatedTail); a malformed
 * interior line is fatal.
 */
bool readJournal(const std::string &path, JournalContents &out);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_JOURNAL_HH
