/**
 * @file
 * Exploration objectives and the per-candidate evaluation record.
 *
 * Objectives are the axes of the Pareto comparison: each one reads a
 * scalar off an Evaluation, and dominance is computed over the vector
 * of selected objectives with every entry re-oriented so that smaller
 * is better (maximized objectives are negated). An Evaluation carries
 * both the cheap pre-scoring scalars (area, idle power, utilization,
 * accuracy proxy -- computable without running an engine, which is
 * what lets Constraints filter before the expensive part) and the
 * engine-scored ones (energy, latency), plus the provenance hash that
 * ties the point back to its exact arch config.
 *
 * The accuracy objective is an analytic proxy, not a training run:
 * ADC window clipping (a b-bit ADC represents 2^b - 1 levels; a k x k
 * direct-convolution window sums up to k^2 unit products, so 3 bits
 * clip a 3x3 window -- the paper's Section V-B-1 argument) times a
 * linear noise penalty calibrated to Table VI's endpoints (WS weight
 * noise accumulates as a random walk, sigma 0.05 costs ~67 points; IS
 * activation noise is transient, ~3.6 points). It preserves the
 * trends the paper reports at zero per-candidate cost; training-based
 * accuracy stays in nn::train for the Table VI bench.
 */

#ifndef INCA_DSE_OBJECTIVES_HH
#define INCA_DSE_OBJECTIVES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cost.hh"
#include "dse/space.hh"
#include "nn/network.hh"
#include "reliability/mitigation.hh"

namespace inca {
namespace dse {

/** A Pareto objective. */
enum class Objective
{
    Energy,       ///< energy per batch [J] (minimize)
    Latency,      ///< batch makespan [s] (minimize)
    Area,         ///< chip area [m^2] (minimize)
    Edp,          ///< energy-delay product [J*s] (minimize)
    IdlePower,    ///< chip idle power [W] (minimize)
    Utilization,  ///< network array utilization [0,1] (maximize)
    Accuracy,     ///< accuracy-under-noise proxy [0,1] (maximize)
    Resilience,   ///< accuracy-under-faults proxy [0,1] (maximize)
    LatencyTimed, ///< event-backend makespan, overlap on [s] (min.)
    P99Latency,   ///< serving p99 request latency [s] (minimize)
    Goodput,      ///< serving within-SLO throughput [rps] (maximize)
    EnergyPerRequest, ///< serving energy per request [J] (minimize)
    Availability, ///< serving up-fraction under failures (maximize)
    ShedFraction, ///< serving shed / offered [0,1] (minimize)
};

/** "energy", "latency", ... (the CLI spelling). */
const char *objectiveName(Objective o);

/** Parse an objective name; fatal on anything else. */
Objective objectiveByName(const std::string &name);

/** Parse a comma-separated objective list ("energy,latency,area"). */
std::vector<Objective> objectivesByNames(const std::string &list);

/** True for objectives where larger is better. */
bool objectiveMaximized(Objective o);

/** One scored (or constraint-rejected) design point. */
struct Evaluation
{
    Candidate candidate;
    bool feasible = true;     ///< passed every constraint
    bool scored = false;      ///< an engine run produced energy/latency
    bool reused = false;      ///< replayed from a journal, not computed
    std::string rejectedBy;   ///< violated constraint (when infeasible)

    // Cheap pre-scoring scalars (no engine run needed).
    double areaM2 = 0.0;
    double idlePowerW = 0.0;
    double utilization = 0.0;
    double accuracy = 0.0;
    double resilience = 0.0; ///< accuracy at the reference fault BER

    // Engine-scored scalars (valid when scored).
    double energyJ = 0.0;
    double latencyS = 0.0;
    /**
     * Event-backend makespan with load/compute overlap enabled
     * (ir::lower* + event::execute). Only computed when the
     * latency_timed objective is selected -- the event schedule is
     * pure but costs a full lowering per candidate -- so it reads
     * 0.0 otherwise (and for journals written before the objective
     * existed).
     */
    double timedLatencyS = 0.0;
    /**
     * Bottleneck attribution of the timed run: the unit carrying the
     * largest critical-path share of the event makespan, and that
     * share in [0, 1]. Computed alongside timedLatencyS (so only
     * when the latency_timed objective is selected); empty / 0.0
     * otherwise and for journals written before the analysis layer.
     */
    std::string bottleneckUnit;
    double criticalShare = 0.0;
    /**
     * Serving-simulator scalars: p99 request latency, within-SLO
     * throughput, and datacenter energy per request under the
     * explorer's serving scenario (arrival process, replicas,
     * sharding, batching -- see ExploreOptions::serving). Only
     * computed when a serving objective or the max_p99_ms constraint
     * is selected; 0.0 otherwise and for older journals.
     */
    double p99LatencyS = 0.0;
    double goodputRps = 0.0;
    double energyPerRequestJ = 0.0;
    /**
     * Chaos-serving scalars: fraction of the serving window with >= 1
     * accepting replica, and the shed fraction of offered requests.
     * Filled by the serving scenario when failure injection or
     * admission control is active; availability reads 1.0 and shed
     * 0.0 otherwise (and for older journals).
     */
    double availability = 1.0;
    double shedFraction = 0.0;
    std::uint64_t configKeyHash = 0;

    /**
     * Selected objective values with minimized orientation (maximized
     * objectives negated), in the explorer's objective order; the
     * vector dominance compares. Empty when not scored.
     */
    std::vector<double> objectives;

    /**
     * Full per-layer cost of the scoring run. Only populated for
     * points scored in-process (empty when replayed from a journal);
     * presentation-only, never part of the dominance comparison.
     */
    arch::RunCost run;

    /** Natural (un-negated) value of one objective. */
    double value(Objective o) const;
};

/** Fill @p e.objectives from its scalars, minimized orientation. */
void orientObjectives(Evaluation &e,
                      const std::vector<Objective> &objectives);

/**
 * Largest direct-convolution window (kernel k*k product count) among
 * the network's conv-like layers -- what the ADC must digitize
 * losslessly under the IS dataflow. The first conv is excluded: its
 * off-chip inputs go through the digital path (the engine's
 * firstConv special case), so its stem window never hits the ADC.
 */
int maxConvWindow(const nn::NetworkDesc &net);

/**
 * Analytic accuracy-under-noise proxy in [0, 1]; see the file
 * comment. @p maxWindow only penalizes the IS engine (the WS pipeline
 * shift-adds partial sums, so ADC clipping is not modelled for it).
 */
double accuracyProxy(EngineKind kind, int adcBits, int maxWindow,
                     double noiseSigma);

/**
 * Analytic accuracy-under-faults proxy in [0, 1]: the accuracy proxy
 * evaluated at the device-noise sigma plus the equivalent sigma of
 * the fault rate surviving mitigation. @p ber is the raw rate of both
 * hard (stuck) and soft (write-variation) faults; write-verify retry
 * shrinks the soft part geometrically and spare rows/columns cover
 * the expected faulty lines of a @p arraySize^2 array (first-order
 * expectation, matching the campaign's Monte-Carlo model in
 * src/reliability). The closed form keeps DSE constraint checks at
 * zero per-candidate cost; the campaign is the reference.
 */
double resilienceProxy(EngineKind kind, int adcBits, int maxWindow,
                       double noiseSigma, double ber,
                       int activationBits, int arraySize,
                       const reliability::MitigationSpec &mitigation);

} // namespace dse
} // namespace inca

#endif // INCA_DSE_OBJECTIVES_HH
