#include "dse/constraints.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace inca {
namespace dse {

namespace {

std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

void
Constraints::set(const std::string &keyValue)
{
    const std::size_t eq = keyValue.find('=');
    if (eq == std::string::npos)
        fatal("constraint '%s' is not key=value", keyValue.c_str());
    const std::string key = keyValue.substr(0, eq);
    const std::string text = keyValue.substr(eq + 1);
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("constraint '%s': unparsable value '%s'", key.c_str(),
              text.c_str());
    if (key == "max_area_mm2")
        maxAreaMm2 = v;
    else if (key == "max_idle_w")
        maxIdlePowerW = v;
    else if (key == "min_utilization")
        minUtilization = v;
    else if (key == "min_accuracy")
        minAccuracy = v;
    else if (key == "min_accuracy_at_ber")
        minAccuracyAtBer = v;
    else if (key == "lossless_adc")
        losslessAdc = v != 0.0;
    else if (key == "max_p99_ms")
        maxP99Ms = v;
    else if (key == "min_availability") {
        if (v < 0.0 || v > 1.0)
            fatal("constraint 'min_availability': %s outside [0, 1]",
                  text.c_str());
        minAvailability = v;
    } else
        fatal("unknown constraint '%s'", key.c_str());
}

std::string
Constraints::str() const
{
    std::string out;
    const auto add = [&](const std::string &kv) {
        if (!out.empty())
            out += ',';
        out += kv;
    };
    if (maxAreaMm2 > 0.0)
        add("max_area_mm2=" + num(maxAreaMm2));
    if (maxIdlePowerW > 0.0)
        add("max_idle_w=" + num(maxIdlePowerW));
    if (minUtilization > 0.0)
        add("min_utilization=" + num(minUtilization));
    if (minAccuracy > 0.0)
        add("min_accuracy=" + num(minAccuracy));
    if (minAccuracyAtBer > 0.0)
        add("min_accuracy_at_ber=" + num(minAccuracyAtBer));
    if (losslessAdc)
        add("lossless_adc=1");
    if (maxP99Ms > 0.0)
        add("max_p99_ms=" + num(maxP99Ms));
    if (minAvailability > 0.0)
        add("min_availability=" + num(minAvailability));
    return out;
}

ConstraintCheck
checkConstraints(const Constraints &c, const Evaluation &e,
                 EngineKind kind, int adcBits, int maxWindow)
{
    ConstraintCheck check;
    const auto reject = [&](const std::string &reason) {
        check.ok = false;
        check.reason = reason;
    };
    const double areaMm2 = e.areaM2 * 1e6;
    if (c.maxAreaMm2 > 0.0 && areaMm2 > c.maxAreaMm2) {
        reject("max_area_mm2 (" + num(areaMm2) + " > " +
               num(c.maxAreaMm2) + ")");
    } else if (c.maxIdlePowerW > 0.0 &&
               e.idlePowerW > c.maxIdlePowerW) {
        reject("max_idle_w (" + num(e.idlePowerW) + " > " +
               num(c.maxIdlePowerW) + ")");
    } else if (c.minUtilization > 0.0 &&
               e.utilization < c.minUtilization) {
        reject("min_utilization (" + num(e.utilization) + " < " +
               num(c.minUtilization) + ")");
    } else if (c.minAccuracy > 0.0 && e.accuracy < c.minAccuracy) {
        reject("min_accuracy (" + num(e.accuracy) + " < " +
               num(c.minAccuracy) + ")");
    } else if (c.minAccuracyAtBer > 0.0 &&
               e.resilience < c.minAccuracyAtBer) {
        reject("min_accuracy_at_ber (" + num(e.resilience) + " < " +
               num(c.minAccuracyAtBer) + ")");
    } else if (c.losslessAdc && kind == EngineKind::Inca) {
        const int levels = (1 << adcBits) - 1;
        if (levels < maxWindow)
            reject("lossless_adc (a " + std::to_string(adcBits) +
                   "-bit ADC clips a window of " +
                   std::to_string(maxWindow) + ": " +
                   std::to_string(maxWindow) + " > " +
                   std::to_string(levels) + ")");
    }
    return check;
}

} // namespace dse
} // namespace inca
