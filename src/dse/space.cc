#include "dse/space.hh"

#include <algorithm>

#include "circuit/devices.hh"
#include "common/logging.hh"

namespace inca {
namespace dse {

const char *
engineKindName(EngineKind kind)
{
    return kind == EngineKind::Ws ? "ws" : "inca";
}

EngineKind
engineKindByName(const std::string &name)
{
    if (name == "inca")
        return EngineKind::Inca;
    if (name == "ws" || name == "baseline")
        return EngineKind::Ws;
    fatal("unknown engine '%s' (expected inca or ws)", name.c_str());
}

SearchSpace &
SearchSpace::axis(const std::string &name,
                  std::vector<std::int64_t> values)
{
    inca_assert(!values.empty(), "axis '%s' needs at least one value",
                name.c_str());
    inca_assert(axisIndex(name) < 0, "duplicate axis '%s'",
                name.c_str());
    axes_.push_back({name, std::move(values)});
    return *this;
}

std::uint64_t
SearchSpace::size() const
{
    std::uint64_t n = 1;
    for (const auto &a : axes_)
        n *= std::uint64_t(a.values.size());
    return n;
}

Candidate
SearchSpace::candidate(std::uint64_t flatIndex) const
{
    inca_assert(flatIndex < size(), "candidate %llu out of range",
                static_cast<unsigned long long>(flatIndex));
    Candidate cand;
    cand.index = flatIndex;
    cand.values.reserve(axes_.size());
    std::uint64_t rest = flatIndex;
    for (const auto &a : axes_) {
        const std::uint64_t radix = a.values.size();
        cand.values.push_back(a.values[std::size_t(rest % radix)]);
        rest /= radix;
    }
    return cand;
}

std::uint64_t
SearchSpace::flatIndex(
    const std::vector<std::size_t> &valueIndices) const
{
    inca_assert(valueIndices.size() == axes_.size(),
                "value-index arity %zu != axis count %zu",
                valueIndices.size(), axes_.size());
    std::uint64_t flat = 0;
    std::uint64_t stride = 1;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        inca_assert(valueIndices[i] < axes_[i].values.size(),
                    "value index out of range on axis '%s'",
                    axes_[i].name.c_str());
        flat += stride * std::uint64_t(valueIndices[i]);
        stride *= std::uint64_t(axes_[i].values.size());
    }
    return flat;
}

int
SearchSpace::axisIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < axes_.size(); ++i)
        if (axes_[i].name == name)
            return int(i);
    return -1;
}

std::int64_t
SearchSpace::value(const Candidate &cand, const std::string &name,
                   std::int64_t fallback) const
{
    const int i = axisIndex(name);
    if (i < 0)
        return fallback;
    return cand.values[std::size_t(i)];
}

std::vector<std::uint64_t>
SearchSpace::neighbors(std::uint64_t flat) const
{
    // Re-derive the per-axis value indices from the flat index.
    std::vector<std::size_t> idx(axes_.size());
    std::uint64_t rest = flat;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        const std::uint64_t radix = axes_[i].values.size();
        idx[i] = std::size_t(rest % radix);
        rest /= radix;
    }
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        auto moved = idx;
        if (idx[i] > 0) {
            moved[i] = idx[i] - 1;
            out.push_back(flatIndex(moved));
        }
        moved = idx;
        if (idx[i] + 1 < axes_[i].values.size()) {
            moved[i] = idx[i] + 1;
            out.push_back(flatIndex(moved));
        }
    }
    return out;
}

std::string
SearchSpace::describe(const Candidate &cand) const
{
    std::string out;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        if (!out.empty())
            out += ' ';
        out += axes_[i].name + "=" +
               std::to_string(cand.values[i]);
    }
    return out;
}

namespace {

void
applyDevice(circuit::RramDevice &device, std::int64_t presetIndex)
{
    const auto presets = circuit::allDevicePresets();
    inca_assert(presetIndex >= 0 &&
                    std::size_t(presetIndex) < presets.size(),
                "device preset index %lld out of range",
                static_cast<long long>(presetIndex));
    device = presets[std::size_t(presetIndex)].device;
}

/** Rescale the tile count so cfg keeps @p cellsBefore total cells. */
template <typename Config>
void
rescaleTiles(Config &cfg, std::int64_t cellsBefore)
{
    const double scale =
        double(cellsBefore) / double(cfg.totalCells());
    cfg.org.numTiles =
        std::max(1, int(cfg.org.numTiles * scale + 0.5));
}

} // namespace

bool
isServingAxis(const std::string &name)
{
    return name == "replicas" || name == "serve_batch" ||
           name == "shard" || name == "shard_chips" ||
           name == "failure_mtbf";
}

arch::IncaConfig
materializeInca(const SearchSpace &space, const Candidate &cand,
                const arch::IncaConfig &base, bool isoCapacity)
{
    arch::IncaConfig cfg = base;
    const std::int64_t cellsBefore = cfg.totalCells();
    const auto &axes = space.axes();
    for (std::size_t i = 0; i < axes.size(); ++i) {
        const std::int64_t v = cand.values[i];
        const std::string &name = axes[i].name;
        if (name == "plane")
            cfg.subarraySize = int(v);
        else if (name == "adc_bits")
            cfg.adcBits = int(v);
        else if (name == "tiles")
            cfg.org.numTiles = int(v);
        else if (name == "tile_size")
            cfg.org.tileSize = int(v);
        else if (name == "macro_size")
            cfg.org.macroSize = int(v);
        else if (name == "buffer_kib")
            cfg.buffer.capacity = double(v) * 1024.0;
        else if (name == "batch")
            cfg.batchSize = int(v);
        else if (name == "stacked_planes")
            cfg.stackedPlanes = int(v);
        else if (name == "subarrays_per_adc")
            cfg.subarraysPerAdc = int(v);
        else if (name == "device")
            applyDevice(cfg.device, v);
        else if (isServingAxis(name))
            continue; // datacenter axis; the chip config ignores it
        else
            fatal("unknown search axis '%s'", name.c_str());
    }
    if (isoCapacity)
        rescaleTiles(cfg, cellsBefore);
    inca_assert(cfg.subarraySize > 0 && cfg.stackedPlanes > 0 &&
                    cfg.adcBits > 0 && cfg.batchSize > 0,
                "materialized INCA geometry must be positive");
    return cfg;
}

arch::BaselineConfig
materializeWs(const SearchSpace &space, const Candidate &cand,
              const arch::BaselineConfig &base, bool isoCapacity)
{
    arch::BaselineConfig cfg = base;
    const std::int64_t cellsBefore = cfg.totalCells();
    const auto &axes = space.axes();
    for (std::size_t i = 0; i < axes.size(); ++i) {
        const std::int64_t v = cand.values[i];
        const std::string &name = axes[i].name;
        if (name == "plane")
            cfg.subarraySize = int(v);
        else if (name == "adc_bits")
            cfg.adcBits = int(v);
        else if (name == "tiles")
            cfg.org.numTiles = int(v);
        else if (name == "tile_size")
            cfg.org.tileSize = int(v);
        else if (name == "macro_size")
            cfg.org.macroSize = int(v);
        else if (name == "buffer_kib")
            cfg.buffer.capacity = double(v) * 1024.0;
        else if (name == "batch")
            cfg.batchSize = int(v);
        else if (name == "device")
            applyDevice(cfg.device, v);
        else if (name == "stacked_planes" ||
                 name == "subarrays_per_adc")
            fatal("axis '%s' does not apply to the WS baseline",
                  name.c_str());
        else if (isServingAxis(name))
            continue; // datacenter axis; the chip config ignores it
        else
            fatal("unknown search axis '%s'", name.c_str());
    }
    if (isoCapacity)
        rescaleTiles(cfg, cellsBefore);
    inca_assert(cfg.subarraySize > 0 && cfg.adcBits > 0 &&
                    cfg.batchSize > 0,
                "materialized WS geometry must be positive");
    return cfg;
}

SearchSpace
defaultSpace(EngineKind kind)
{
    SearchSpace space;
    if (kind == EngineKind::Inca)
        space.axis("plane", {8, 16, 32, 64});
    else
        space.axis("plane", {64, 128, 256});
    space.axis("adc_bits", {3, 4, 6, 8})
        .axis("buffer_kib", {32, 64, 128})
        .axis("batch", {16, 64});
    return space;
}

} // namespace dse
} // namespace inca
