#include "dse/explorer.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "arch/area.hh"
#include "arch/power.hh"
#include "arch/utilization.hh"
#include "baseline/engine.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "common/export_util.hh"
#include "dse/journal.hh"
#include "dse/pareto.hh"
#include "event/analysis.hh"
#include "event/event.hh"
#include "inca/engine.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"
#include "serving/simulator.hh"
#include "sim/export.hh"

namespace inca {
namespace dse {

namespace {

std::string
num17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Score the event backend for one candidate: makespan plus the
 * bottleneck attribution (the frontier's diagnostic columns).
 */
void
scoreTimed(Evaluation &e, const ir::Program &prog)
{
    const event::TimedRun timed = event::execute(prog);
    e.timedLatencyS = timed.run.latency;
    event::AnalyzeOptions aopts;
    aopts.runWhatIf = false;
    const event::Report rep = event::analyze(prog, timed, aopts);
    e.bottleneckUnit = ir::unitName(rep.bottleneck);
    e.criticalShare = rep.bottleneckFraction;
}

} // namespace

Explorer::Explorer(SearchSpace space, ExploreOptions options)
    : space_(std::move(space)), options_(std::move(options)),
      net_(nn::byName(options_.network))
{
    inca_assert(!options_.objectives.empty(),
                "exploration needs at least one objective");
    maxWindow_ = maxConvWindow(net_);
    for (const Objective o : options_.objectives) {
        wantTimed_ = wantTimed_ || o == Objective::LatencyTimed;
        wantServing_ = wantServing_ || o == Objective::P99Latency ||
                       o == Objective::Goodput ||
                       o == Objective::EnergyPerRequest ||
                       o == Objective::Availability ||
                       o == Objective::ShedFraction;
    }
    // The SLO ceiling and the availability floor also need the
    // simulation they bound.
    wantServing_ = wantServing_ ||
                   options_.constraints.maxP99Ms > 0.0 ||
                   options_.constraints.minAvailability > 0.0;
}

bool
Explorer::servingChaosActive() const
{
    const ExploreOptions::ServingScenario &s = options_.serving;
    if (s.failures.enabled || s.retry.budget > 0 ||
        s.deadlineS > 0.0 || s.hedgeDelayS > 0.0 || s.queueCap > 0)
        return true;
    if (options_.constraints.minAvailability > 0.0)
        return true;
    for (const auto &axis : space_.axes())
        if (axis.name == "failure_mtbf")
            return true;
    return false;
}

std::string
Explorer::signature() const
{
    // Everything that determines the evaluation stream, in a fixed
    // spelling. Budget is deliberately excluded: resuming with a
    // larger budget continues the same stream further.
    std::ostringstream os;
    os << "v2 engine=" << engineKindName(options_.engine);
    os << " phase="
       << (options_.phase == arch::Phase::Training ? "training"
                                                   : "inference");
    os << " network=" << options_.network;
    os << " strategy=" << strategyKindName(options_.strategy);
    os << " seed=" << options_.seed;
    os << " eval_batch=" << options_.evalBatch;
    os << " objectives=";
    for (std::size_t i = 0; i < options_.objectives.size(); ++i) {
        if (i > 0)
            os << ',';
        os << objectiveName(options_.objectives[i]);
    }
    os << " constraints=[" << options_.constraints.str() << "]";
    os << " soft=" << (options_.softConstraints ? 1 : 0);
    os << " iso=" << (options_.isoCapacity ? 1 : 0);
    os << " sigma=" << num17(options_.noiseSigma);
    os << " ber=" << num17(options_.faultBer);
    os << " mitigation=retries:"
       << options_.mitigation.writeVerifyRetries
       << ",spare_rows:" << options_.mitigation.spareRows
       << ",spare_cols:" << options_.mitigation.spareCols;
    CacheKey baseKey;
    if (options_.engine == EngineKind::Inca)
        arch::appendKey(baseKey, options_.baseInca);
    else
        arch::appendKey(baseKey, options_.baseWs);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%llx",
                  static_cast<unsigned long long>(baseKey.hash()));
    os << " base=" << hex;
    // The serving scenario determines serving-scored values, so it is
    // part of the stream identity -- but only when serving scoring is
    // on, keeping every pre-serving signature byte-identical.
    if (wantServing_) {
        const ExploreOptions::ServingScenario &s = options_.serving;
        os << " serving=arrivals:"
           << serving::arrivalKindName(s.arrivals.kind)
           << ",rate:" << num17(s.arrivals.ratePerS)
           << ",seed:" << s.arrivals.seed
           << ",burst:" << num17(s.arrivals.burstFactor)
           << ",on:" << num17(s.arrivals.meanOnS)
           << ",off:" << num17(s.arrivals.meanOffS)
           << ",period:" << num17(s.arrivals.diurnalPeriodS)
           << ",depth:" << num17(s.arrivals.diurnalDepth)
           << ",duration:" << num17(s.durationS)
           << ",replicas:" << s.replicas
           << ",shard:" << serving::shardKindName(s.shard.kind)
           << ",chips:" << s.shard.chips
           << ",bw:" << num17(s.shard.link.bandwidthBytesPerS)
           << ",hop:" << num17(s.shard.link.latencyS)
           << ",pj:" << num17(s.shard.link.energyPerByteJ)
           << ",batch:" << s.batch.maxBatch
           << ",timeout:" << num17(s.batch.timeoutS)
           << ",slo:" << num17(s.sloS);
        // Chaos fields enter the identity only when active, keeping
        // chaos-free serving journals replayable across this change.
        if (servingChaosActive()) {
            os << " chaos=failures:"
               << (s.failures.enabled ? 1 : 0)
               << ",mtbf:" << num17(s.failures.mtbfS)
               << ",mttr:" << num17(s.failures.mttrS)
               << ",frac:" << num17(s.failures.degradedFraction)
               << ",slow:" << num17(s.failures.slowdownFactor)
               << ",recovery:" << num17(s.failures.recoveryS)
               << ",aging:" << num17(s.failures.aging)
               << ",fseed:" << s.failures.seed
               << ",drop:" << (s.failures.dropInFlight ? 1 : 0)
               << ",retries:" << s.retry.budget
               << ",backoff:" << num17(s.retry.backoffBaseS)
               << ",jitter:" << num17(s.retry.jitter)
               << ",deadline:" << num17(s.deadlineS)
               << ",hedge:" << num17(s.hedgeDelayS)
               << ",qcap:" << s.queueCap;
        }
    }
    os << " space=";
    for (const auto &axis : space_.axes()) {
        os << axis.name << "{";
        for (std::size_t i = 0; i < axis.values.size(); ++i) {
            if (i > 0)
                os << ',';
            os << axis.values[i];
        }
        os << "}";
    }
    return os.str();
}

Evaluation
Explorer::evaluate(std::uint64_t flatIndex) const
{
    Evaluation e;
    e.candidate = space_.candidate(flatIndex);

    int adcBits = 0;
    if (options_.engine == EngineKind::Inca) {
        const arch::IncaConfig cfg = materializeInca(
            space_, e.candidate, options_.baseInca,
            options_.isoCapacity);
        adcBits = cfg.adcBits;
        e.areaM2 = arch::incaArea(cfg).total();
        e.idlePowerW = arch::incaIdlePower(cfg);
        e.utilization =
            arch::incaNetworkUtilization(net_, cfg.subarraySize);
        e.accuracy = accuracyProxy(EngineKind::Inca, adcBits,
                                   maxWindow_, options_.noiseSigma);
        e.resilience = resilienceProxy(
            EngineKind::Inca, adcBits, maxWindow_,
            options_.noiseSigma, options_.faultBer,
            cfg.activationBits, cfg.subarraySize,
            options_.mitigation);
        const ConstraintCheck check =
            checkConstraints(options_.constraints, e,
                             EngineKind::Inca, adcBits, maxWindow_);
        if (!check.ok) {
            e.feasible = false;
            e.rejectedBy = check.reason;
            if (!options_.softConstraints)
                return e;
        }
        const core::IncaEngine engine(cfg);
        e.run = options_.phase == arch::Phase::Training
                    ? engine.training(net_, cfg.batchSize)
                    : engine.inference(net_, cfg.batchSize);
        if (wantTimed_)
            scoreTimed(e, ir::lowerInca(cfg, net_, options_.phase,
                                        cfg.batchSize,
                                        {/*overlap=*/true}));
    } else {
        const arch::BaselineConfig cfg = materializeWs(
            space_, e.candidate, options_.baseWs,
            options_.isoCapacity);
        adcBits = cfg.adcBits;
        e.areaM2 = arch::baselineArea(cfg).total();
        e.idlePowerW = arch::baselineIdlePower(cfg);
        e.utilization =
            arch::wsNetworkUtilization(net_, cfg.subarraySize);
        e.accuracy = accuracyProxy(EngineKind::Ws, adcBits,
                                   maxWindow_, options_.noiseSigma);
        e.resilience = resilienceProxy(
            EngineKind::Ws, adcBits, maxWindow_,
            options_.noiseSigma, options_.faultBer,
            cfg.activationBits, cfg.subarraySize,
            options_.mitigation);
        const ConstraintCheck check = checkConstraints(
            options_.constraints, e, EngineKind::Ws, adcBits,
            maxWindow_);
        if (!check.ok) {
            e.feasible = false;
            e.rejectedBy = check.reason;
            if (!options_.softConstraints)
                return e;
        }
        const baseline::BaselineEngine engine(cfg);
        e.run = options_.phase == arch::Phase::Training
                    ? engine.training(net_, cfg.batchSize)
                    : engine.inference(net_, cfg.batchSize);
        if (wantTimed_)
            scoreTimed(e, ir::lowerWs(cfg, net_, options_.phase,
                                      cfg.batchSize,
                                      {/*overlap=*/true}));
    }

    e.scored = true;
    e.energyJ = e.run.energy();
    e.latencyS = e.run.latency;
    e.configKeyHash = e.run.configKeyHash;
    if (wantServing_) {
        scoreServing(e);
        // The SLO ceiling can only be checked here: unlike the cheap
        // pre-scoring bounds, p99 exists only after the simulation.
        const double p99Ms = e.p99LatencyS * 1e3;
        if (options_.constraints.maxP99Ms > 0.0 &&
            p99Ms > options_.constraints.maxP99Ms) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "max_p99_ms (%g > %g)", p99Ms,
                          options_.constraints.maxP99Ms);
            e.feasible = false;
            e.rejectedBy = buf;
        }
        // The availability floor likewise exists only post-sim.
        if (e.feasible &&
            options_.constraints.minAvailability > 0.0 &&
            e.availability < options_.constraints.minAvailability) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "min_availability (%g < %g)",
                          e.availability,
                          options_.constraints.minAvailability);
            e.feasible = false;
            e.rejectedBy = buf;
        }
    }
    orientObjectives(e, options_.objectives);
    return e;
}

void
Explorer::scoreServing(Evaluation &e) const
{
    serving::ServingSpec spec;
    spec.incaEngine = options_.engine == EngineKind::Inca;
    if (spec.incaEngine)
        spec.inca =
            materializeInca(space_, e.candidate, options_.baseInca,
                            options_.isoCapacity);
    else
        spec.ws = materializeWs(space_, e.candidate, options_.baseWs,
                                options_.isoCapacity);
    spec.streams = {
        serving::StreamSpec{options_.network, 1.0, 0}};
    const ExploreOptions::ServingScenario &s = options_.serving;
    spec.arrivals = s.arrivals;
    spec.durationS = s.durationS;
    spec.shard = s.shard;
    spec.batch = s.batch;
    spec.sloS = s.sloS;
    // Datacenter axes, when searched, override the fixed scenario.
    spec.replicas = int(
        space_.value(e.candidate, "replicas", s.replicas));
    spec.batch.maxBatch = int(space_.value(
        e.candidate, "serve_batch", s.batch.maxBatch));
    spec.shard.kind = serving::ShardKind(space_.value(
        e.candidate, "shard", std::int64_t(s.shard.kind)));
    spec.shard.chips = int(
        space_.value(e.candidate, "shard_chips", s.shard.chips));
    // Chaos layer: scenario defaults, with the failure_mtbf axis
    // (milliseconds; 0 = injection off) overriding the MTBF.
    spec.failures = s.failures;
    spec.retry = s.retry;
    spec.deadlineS = s.deadlineS;
    spec.hedgeDelayS = s.hedgeDelayS;
    spec.queueCap = s.queueCap;
    bool haveMtbfAxis = false;
    for (const auto &axis : space_.axes())
        haveMtbfAxis = haveMtbfAxis || axis.name == "failure_mtbf";
    if (haveMtbfAxis) {
        const std::int64_t mtbfMs =
            space_.value(e.candidate, "failure_mtbf", 0);
        if (mtbfMs > 0) {
            spec.failures.enabled = true;
            spec.failures.mtbfS = double(mtbfMs) * 1e-3;
            if (spec.failures.mttrS <= 0.0)
                spec.failures.mttrS = spec.failures.mtbfS * 0.1;
        } else {
            spec.failures.enabled = false;
        }
    }
    const serving::ServingReport rep = serving::simulate(spec);
    e.p99LatencyS = rep.p99S;
    e.goodputRps = rep.goodputRps;
    e.energyPerRequestJ = rep.energyPerRequestJ;
    e.availability = rep.availability;
    e.shedFraction =
        rep.offered ? double(rep.shed) / double(rep.offered) : 0.0;
}

ExploreResult
Explorer::run()
{
    if (options_.strategy == StrategyKind::Anneal &&
        options_.budget == 0)
        fatal("the anneal strategy needs --budget (it never "
              "exhausts the space on its own)");

    ExploreResult result;
    result.spaceSize = space_.size();

    // Resume: recover journaled evaluations keyed by index. The
    // strategy stream below is replayed identically either way; a
    // journal hit just skips the engine run.
    std::unordered_map<std::uint64_t, Evaluation> replay;
    JournalWriter writer;
    if (!options_.journalPath.empty()) {
        JournalHeader header;
        header.signature = signature();
        header.spaceSize = space_.size();
        bool append = false;
        JournalContents contents;
        if (options_.resume &&
            readJournal(options_.journalPath, contents)) {
            if (contents.header.signature != header.signature)
                fatal("journal '%s' belongs to a different run:\n"
                      "  journal: %s\n  requested: %s",
                      options_.journalPath.c_str(),
                      contents.header.signature.c_str(),
                      header.signature.c_str());
            replay = std::move(contents.evals);
            append = true;
        }
        writer.open(options_.journalPath, header, append);
    }

    const auto strategy =
        makeStrategy(options_.strategy, space_, options_.seed,
                     options_.objectives);
    ParetoFrontier frontier(options_.objectives.size());

    auto &scoredCtr = metrics::counter("dse.scored");
    auto &filteredCtr = metrics::counter("dse.filtered");
    auto &reusedCtr = metrics::counter("dse.reused");
    auto &frontierGauge = metrics::gauge("dse.frontier");
    auto &evalHist = metrics::histogram("dse.eval_us");

    std::uint64_t remaining =
        options_.budget ? options_.budget : ~std::uint64_t(0);
    while (remaining > 0) {
        const std::size_t want = std::size_t(
            std::min<std::uint64_t>(options_.evalBatch, remaining));
        const std::vector<std::uint64_t> wave =
            strategy->nextBatch(want);
        if (wave.empty())
            break;

        // Fan the wave out; each slot is a pure function of its
        // candidate index, so contents are scheduling-independent.
        std::vector<Evaluation> evals(wave.size());
        parallel_for_each(
            std::int64_t(wave.size()), 1, [&](std::int64_t i) {
                const std::uint64_t idx = wave[std::size_t(i)];
                const auto it = replay.find(idx);
                if (it != replay.end()) {
                    Evaluation e = it->second;
                    e.candidate = space_.candidate(idx);
                    e.reused = true;
                    evals[std::size_t(i)] = std::move(e);
                    return;
                }
                trace::Span span(trace::spanName(
                    "dse.eval ",
                    space_.describe(space_.candidate(idx))));
                metrics::ScopedTimer timer(evalHist);
                evals[std::size_t(i)] = evaluate(idx);
            });

        // Everything order-sensitive happens serially, in proposal
        // order: journal, counters, frontier, strategy feedback.
        for (const Evaluation &e : evals) {
            if (!e.feasible)
                warn("dse: %s rejected by %s",
                     space_.describe(e.candidate).c_str(),
                     e.rejectedBy.c_str());
            if (e.reused) {
                ++result.reused;
                reusedCtr.inc();
            } else {
                if (writer.isOpen())
                    writer.append(e);
                if (e.scored) {
                    ++result.scored;
                    scoredCtr.inc();
                }
            }
            if (!e.scored) {
                ++result.filtered;
                filteredCtr.inc();
            }
            if (e.feasible && e.scored)
                frontier.insert(e);
            result.evaluations.push_back(e);
        }
        frontierGauge.set(double(frontier.size()));
        strategy->observe(evals);
        remaining -= std::min<std::uint64_t>(remaining, wave.size());
    }

    result.frontier = frontier.sorted();
    return result;
}

std::string
frontierCsv(const SearchSpace &space,
            const std::vector<Evaluation> &frontier,
            const std::vector<Objective> &objectives)
{
    (void)objectives; // columns are fixed; objectives pick the points
    std::ostringstream os;
    os << "index";
    for (const auto &axis : space.axes())
        os << "," << axis.name;
    os << ",energy_j,latency_s,area_m2,idle_w,utilization,accuracy,"
          "resilience,latency_timed_s,bottleneck_unit,"
          "critical_share,p99_latency_s,goodput_rps,"
          "energy_per_request_j,availability,shed_fraction,"
          "config_key_hash\n";
    for (const Evaluation &e : frontier) {
        os << e.candidate.index;
        for (const std::int64_t v : e.candidate.values)
            os << "," << v;
        os << "," << num17(e.energyJ) << "," << num17(e.latencyS)
           << "," << num17(e.areaM2) << "," << num17(e.idlePowerW)
           << "," << num17(e.utilization) << ","
           << num17(e.accuracy) << "," << num17(e.resilience)
           << "," << num17(e.timedLatencyS) << ","
           << csvField(e.bottleneckUnit) << ","
           << num17(e.criticalShare) << ","
           << num17(e.p99LatencyS) << "," << num17(e.goodputRps)
           << "," << num17(e.energyPerRequestJ) << ","
           << num17(e.availability) << "," << num17(e.shedFraction);
        char hex[32];
        std::snprintf(hex, sizeof(hex), "0x%llx",
                      static_cast<unsigned long long>(
                          e.configKeyHash));
        os << "," << hex << "\n";
    }
    return os.str();
}

std::string
frontierJson(const Explorer &explorer, const ExploreResult &result)
{
    const ExploreOptions &opt = explorer.options();
    const SearchSpace &space = explorer.space();
    std::ostringstream os;
    os << "{\n";
    os << "  \"kind\": \"dse.frontier\",\n";
    os << "  \"engine\": \"" << engineKindName(opt.engine) << "\",\n";
    os << "  \"network\": \"" << jsonEscape(opt.network) << "\",\n";
    os << "  \"phase\": \""
       << (opt.phase == arch::Phase::Training ? "training"
                                              : "inference")
       << "\",\n";
    os << "  \"strategy\": \"" << strategyKindName(opt.strategy)
       << "\",\n";
    os << "  \"seed\": " << opt.seed << ",\n";
    os << "  \"budget\": " << opt.budget << ",\n";
    os << "  \"objectives\": [";
    for (std::size_t i = 0; i < opt.objectives.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "\"" << objectiveName(opt.objectives[i]) << "\"";
    }
    os << "],\n";
    os << "  \"constraints\": \""
       << jsonEscape(opt.constraints.str()) << "\",\n";
    os << "  \"iso_capacity\": "
       << (opt.isoCapacity ? "true" : "false") << ",\n";
    os << "  \"noise_sigma\": " << num17(opt.noiseSigma) << ",\n";
    os << "  \"fault_ber\": " << num17(opt.faultBer) << ",\n";
    os << "  \"space_size\": " << result.spaceSize << ",\n";
    os << "  \"evaluated\": " << result.evaluations.size() << ",\n";
    os << "  \"scored\": " << result.scored << ",\n";
    os << "  \"filtered\": " << result.filtered << ",\n";
    os << "  \"reused\": " << result.reused << ",\n";
    // The same run-provenance manifest sim::toJson embeds, with the
    // run signature in place of a single config hash (a frontier
    // spans many design points).
    os << "  \"provenance\": {\n"
       << provenanceJson("\"signature\": \"" +
                             jsonEscape(explorer.signature()) + "\"",
                         "    ")
       << "  },\n";
    os << "  \"frontier\": [\n";
    const std::vector<Evaluation> &points = result.frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Evaluation &e = points[i];
        os << "    {\"index\": " << e.candidate.index
           << ", \"point\": {";
        const auto &axes = space.axes();
        for (std::size_t a = 0; a < axes.size(); ++a) {
            if (a > 0)
                os << ", ";
            os << "\"" << axes[a].name
               << "\": " << e.candidate.values[a];
        }
        os << "}, \"energy_j\": " << num17(e.energyJ)
           << ", \"latency_s\": " << num17(e.latencyS)
           << ", \"area_m2\": " << num17(e.areaM2)
           << ", \"idle_w\": " << num17(e.idlePowerW)
           << ", \"utilization\": " << num17(e.utilization)
           << ", \"accuracy\": " << num17(e.accuracy)
           << ", \"resilience\": " << num17(e.resilience)
           << ", \"latency_timed_s\": " << num17(e.timedLatencyS)
           << ", \"bottleneck_unit\": \""
           << jsonEscape(e.bottleneckUnit)
           << "\", \"critical_share\": " << num17(e.criticalShare)
           << ", \"p99_latency_s\": " << num17(e.p99LatencyS)
           << ", \"goodput_rps\": " << num17(e.goodputRps)
           << ", \"energy_per_request_j\": "
           << num17(e.energyPerRequestJ)
           << ", \"availability\": " << num17(e.availability)
           << ", \"shed_fraction\": " << num17(e.shedFraction)
           << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
exportFrontierRuns(const Explorer &explorer,
                   const ExploreResult &result,
                   const std::string &prefix)
{
    for (const Evaluation &point : result.frontier) {
        // Re-score: pure and cache-backed, and it restores the full
        // per-layer RunCost a journal-replayed point does not carry.
        const Evaluation e = explorer.evaluate(point.candidate.index);
        inca_assert(e.scored, "frontier member %llu failed to score",
                    static_cast<unsigned long long>(
                        point.candidate.index));
        const std::string base =
            prefix + "-" + std::to_string(point.candidate.index);
        sim::writeFile(base + ".csv", sim::toCsv(e.run));
        sim::writeFile(base + ".json", sim::toJson(e.run));
    }
}

} // namespace dse
} // namespace inca
