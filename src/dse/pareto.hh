/**
 * @file
 * Incremental Pareto-frontier reduction.
 *
 * The frontier is maintained over minimized objective vectors (see
 * orientObjectives): point a dominates b when a is no worse on every
 * objective and strictly better on at least one. Points with equal
 * vectors are incomparable and both kept, which makes the final
 * frontier a pure function of the *set* of inserted points --
 * insertion order never matters, so a frontier built from a parallel
 * sweep is identical at every thread count, and a resumed run's
 * frontier matches an uninterrupted one. sorted() additionally fixes
 * the presentation order (by candidate index) so exports are
 * byte-stable.
 */

#ifndef INCA_DSE_PARETO_HH
#define INCA_DSE_PARETO_HH

#include <cstddef>
#include <vector>

#include "dse/objectives.hh"

namespace inca {
namespace dse {

/**
 * True when @p a dominates @p b (minimized orientation: <= on every
 * entry, < on at least one). Vectors must share arity.
 */
bool dominates(const std::vector<double> &a,
               const std::vector<double> &b);

/** An incrementally maintained set of non-dominated Evaluations. */
class ParetoFrontier
{
  public:
    /** @p arity objective-vector length every insert must match. */
    explicit ParetoFrontier(std::size_t arity) : arity_(arity) {}

    /**
     * Insert @p e (its objectives vector must be oriented). Returns
     * true when the point joins the frontier; dominated incumbents
     * are evicted.
     */
    bool insert(const Evaluation &e);

    /** Current frontier, insertion-ordered. */
    const std::vector<Evaluation> &points() const { return points_; }

    /** Frontier sorted by candidate index (the export order). */
    std::vector<Evaluation> sorted() const;

    std::size_t size() const { return points_.size(); }

    std::size_t arity() const { return arity_; }

  private:
    std::size_t arity_;
    std::vector<Evaluation> points_;
};

} // namespace dse
} // namespace inca

#endif // INCA_DSE_PARETO_HH
