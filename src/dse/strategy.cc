#include "dse/strategy.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/logging.hh"
#include "common/random.hh"

namespace inca {
namespace dse {

const char *
strategyKindName(StrategyKind kind)
{
    switch (kind) {
    case StrategyKind::Grid:
        return "grid";
    case StrategyKind::Random:
        return "random";
    case StrategyKind::Anneal:
        return "anneal";
    }
    panic("bad StrategyKind %d", int(kind));
}

StrategyKind
strategyKindByName(const std::string &name)
{
    if (name == "grid")
        return StrategyKind::Grid;
    if (name == "random")
        return StrategyKind::Random;
    if (name == "anneal")
        return StrategyKind::Anneal;
    fatal("unknown strategy '%s' (grid, random, anneal)",
          name.c_str());
}

namespace {

/** Flat-index order, start to finish. */
class GridStrategy : public Strategy
{
  public:
    explicit GridStrategy(const SearchSpace &space)
        : size_(space.size())
    {
    }

    std::vector<std::uint64_t> nextBatch(std::size_t n) override
    {
        std::vector<std::uint64_t> out;
        while (out.size() < n && cursor_ < size_)
            out.push_back(cursor_++);
        return out;
    }

  private:
    std::uint64_t size_;
    std::uint64_t cursor_ = 0;
};

/**
 * Uniform sampling without replacement. Spaces small enough to
 * materialize get a Fisher-Yates permutation; larger ones fall back
 * to rejection sampling against a seen-set, which is identical in
 * distribution and still a single deterministic stream.
 */
class RandomStrategy : public Strategy
{
    /// Permutations beyond this many entries are not materialized.
    static constexpr std::uint64_t kPermutationCap = 1u << 20;

  public:
    RandomStrategy(const SearchSpace &space, std::uint64_t seed)
        : size_(space.size()), rng_(seed)
    {
        if (size_ <= kPermutationCap) {
            perm_.resize(std::size_t(size_));
            for (std::uint64_t i = 0; i < size_; ++i)
                perm_[std::size_t(i)] = i;
            for (std::uint64_t i = size_; i > 1; --i)
                std::swap(perm_[std::size_t(i - 1)],
                          perm_[std::size_t(rng_.below(i))]);
        }
    }

    std::vector<std::uint64_t> nextBatch(std::size_t n) override
    {
        std::vector<std::uint64_t> out;
        if (!perm_.empty()) {
            while (out.size() < n && cursor_ < perm_.size())
                out.push_back(perm_[cursor_++]);
            return out;
        }
        while (out.size() < n && seen_.size() < size_) {
            const std::uint64_t pick = rng_.below(size_);
            if (seen_.insert(pick).second)
                out.push_back(pick);
        }
        return out;
    }

  private:
    std::uint64_t size_;
    SplitMix64 rng_;
    std::vector<std::uint64_t> perm_;
    std::size_t cursor_ = 0;
    std::unordered_set<std::uint64_t> seen_;
};

/**
 * K independent simulated-annealing chains. Each batch is one
 * neighbor proposal per chain (so a wave scores in parallel while
 * each chain stays strictly sequential), and observe() runs the
 * Metropolis accept/reject per chain before the next proposals.
 */
class AnnealStrategy : public Strategy
{
    static constexpr std::size_t kChains = 8;
    static constexpr double kInitialTemp = 1.0;
    static constexpr double kDecay = 0.97;

    struct Chain
    {
        SplitMix64 rng{0};
        std::uint64_t current = 0;
        double score = std::numeric_limits<double>::infinity();
        double temp = kInitialTemp;
        bool seeded = false; ///< current has been scored once
    };

  public:
    AnnealStrategy(const SearchSpace &space, std::uint64_t seed,
                   std::vector<Objective> objectives)
        : space_(space), objectives_(std::move(objectives))
    {
        inca_assert(!objectives_.empty(),
                    "annealing needs at least one objective");
        SplitMix64 root(seed);
        const std::size_t chains = std::size_t(
            std::min<std::uint64_t>(kChains, space_.size()));
        chains_.resize(std::max<std::size_t>(1, chains));
        for (auto &chain : chains_) {
            chain.rng = root.split();
            chain.current = chain.rng.below(space_.size());
        }
    }

    std::vector<std::uint64_t> nextBatch(std::size_t n) override
    {
        pending_.clear();
        std::vector<std::uint64_t> out;
        const std::size_t count = std::min(n, chains_.size());
        for (std::size_t i = 0; i < count; ++i) {
            Chain &chain = chains_[i];
            std::uint64_t proposal = chain.current;
            if (chain.seeded) {
                const auto moves = space_.neighbors(chain.current);
                if (!moves.empty())
                    proposal =
                        moves[std::size_t(chain.rng.below(moves.size()))];
            }
            pending_.push_back(i);
            out.push_back(proposal);
        }
        return out;
    }

    void observe(const std::vector<Evaluation> &wave) override
    {
        inca_assert(wave.size() == pending_.size(),
                    "anneal wave size %zu != %zu proposals",
                    wave.size(), pending_.size());
        for (std::size_t i = 0; i < wave.size(); ++i) {
            Chain &chain = chains_[pending_[i]];
            const Evaluation &e = wave[i];
            const double proposed = scalarize(e);
            // Metropolis rule on the log-scalarized score. Two
            // infinities (both infeasible) always move, so a chain
            // seeded in an infeasible region keeps random-walking
            // until it finds a feasible point.
            const double delta = proposed - chain.score;
            bool accept;
            if (std::isinf(proposed) && std::isinf(chain.score))
                accept = true;
            else if (delta <= 0.0)
                accept = true;
            else
                accept = chain.rng.uniform() <
                         std::exp(-delta / chain.temp);
            if (accept) {
                chain.current = e.candidate.index;
                chain.score = proposed;
            }
            chain.seeded = true;
            chain.temp *= kDecay;
        }
        pending_.clear();
    }

  private:
    /**
     * Sum of log(minimized) minus sum of log(maximized); infeasible
     * or degenerate points score +inf. Log-space keeps objectives
     * with wildly different magnitudes (joules vs. square meters)
     * from drowning each other out.
     */
    double scalarize(const Evaluation &e) const
    {
        if (!e.scored)
            return std::numeric_limits<double>::infinity();
        double score = 0.0;
        for (const Objective obj : objectives_) {
            const double v = e.value(obj);
            if (v <= 0.0)
                return std::numeric_limits<double>::infinity();
            score += objectiveMaximized(obj) ? -std::log(v)
                                             : std::log(v);
        }
        return score;
    }

    const SearchSpace &space_;
    std::vector<Objective> objectives_;
    std::vector<Chain> chains_;
    std::vector<std::size_t> pending_;
};

} // namespace

std::unique_ptr<Strategy>
makeStrategy(StrategyKind kind, const SearchSpace &space,
             std::uint64_t seed,
             const std::vector<Objective> &objectives)
{
    inca_assert(space.size() > 0, "cannot search an empty space");
    switch (kind) {
    case StrategyKind::Grid:
        return std::unique_ptr<Strategy>(new GridStrategy(space));
    case StrategyKind::Random:
        return std::unique_ptr<Strategy>(
            new RandomStrategy(space, seed));
    case StrategyKind::Anneal:
        return std::unique_ptr<Strategy>(
            new AnnealStrategy(space, seed, objectives));
    }
    panic("bad StrategyKind %d", int(kind));
}

} // namespace dse
} // namespace inca
