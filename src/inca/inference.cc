#include "inca/inference.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace inca {
namespace core {

using tensor::ConvSpec;
using tensor::Tensor;

OnChipNet::OnChipNet(FunctionalOptions opts)
    : opts_(opts), array_(opts)
{
}

OnChipNet &
OnChipNet::addConv(Tensor w, int stride, int pad)
{
    inca_assert(w.rank() == 4, "conv weights must be 4-D");
    Layer l;
    l.kind = Kind::Conv;
    l.w = std::move(w);
    l.stride = stride;
    l.pad = pad;
    layers_.push_back(std::move(l));
    return *this;
}

OnChipNet &
OnChipNet::addReLU()
{
    layers_.push_back(Layer{Kind::ReLU, {}, {}, 1, 0, 0});
    return *this;
}

OnChipNet &
OnChipNet::addMaxPool(int k)
{
    Layer l;
    l.kind = Kind::MaxPool;
    l.poolK = k;
    layers_.push_back(std::move(l));
    return *this;
}

OnChipNet &
OnChipNet::addFlatten()
{
    layers_.push_back(Layer{Kind::Flatten, {}, {}, 1, 0, 0});
    return *this;
}

OnChipNet &
OnChipNet::addFc(Tensor w, Tensor bias)
{
    inca_assert(w.rank() == 2, "fc weights must be 2-D");
    Layer l;
    l.kind = Kind::Fc;
    l.w = std::move(w);
    l.bias = std::move(bias);
    layers_.push_back(std::move(l));
    return *this;
}

OnChipNet &
OnChipNet::beginResidual()
{
    layers_.push_back(Layer{Kind::ResidualBegin, {}, {}, 1, 0, 0});
    return *this;
}

OnChipNet &
OnChipNet::endResidual()
{
    layers_.push_back(Layer{Kind::ResidualEnd, {}, {}, 1, 0, 0});
    return *this;
}

int
OnChipNet::arrayLayerCount() const
{
    int n = 0;
    for (const auto &l : layers_) {
        if (l.kind == Kind::Conv || l.kind == Kind::Fc)
            ++n;
    }
    return n;
}

namespace {

/** Per-tensor symmetric quantization scale for @p bits levels. */
float
quantScale(const Tensor &t, int bits)
{
    const float range = t.absMax();
    const float levels = float((1 << (bits - 1)) - 1);
    return range > 0.0f ? range / levels : 1.0f;
}

/** Unsigned activation quantization scale (post-ReLU inputs >= 0). */
float
actScale(const Tensor &t, int bits)
{
    const float range = t.absMax();
    const float levels = float((1 << bits) - 1);
    return range > 0.0f ? range / levels : 1.0f;
}

} // namespace

Tensor
OnChipNet::runConv(const Layer &layer, const Tensor &x) const
{
    // Activations are non-negative here (input images are shifted by
    // the caller; hidden activations are post-ReLU); clamp anyway.
    const float sx = actScale(x, opts_.activationBits);
    Tensor xq(x.shape());
    const float xHi = float((1 << opts_.activationBits) - 1);
    for (std::int64_t i = 0; i < x.size(); ++i)
        xq[i] = std::clamp(std::round(std::max(0.0f, x[i]) / sx),
                           0.0f, xHi);

    const float sw = quantScale(layer.w, opts_.weightBits);
    Tensor wq(layer.w.shape());
    const float wLo = -float(1 << (opts_.weightBits - 1));
    const float wHi = float((1 << (opts_.weightBits - 1)) - 1);
    for (std::int64_t i = 0; i < layer.w.size(); ++i)
        wq[i] = std::clamp(std::round(layer.w[i] / sw), wLo, wHi);

    Tensor yq = array_.conv2d(xq, wq,
                              ConvSpec{layer.stride, layer.pad});
    // Dequantize in the shift/scale stage after the accumulators.
    Tensor y(yq.shape());
    for (std::int64_t i = 0; i < yq.size(); ++i)
        y[i] = yq[i] * sx * sw;
    return y;
}

Tensor
OnChipNet::runFc(const Layer &layer, const Tensor &x) const
{
    // Fold the FC onto the planes as a pointwise convolution over a
    // 1 x 1 feature map with D channels (Section IV-C).
    const std::int64_t b = x.dim(0), d = x.dim(1);
    const std::int64_t f = layer.w.dim(1);
    inca_assert(layer.w.dim(0) == d, "fc input width mismatch");

    Tensor x4 = x.reshaped({b, d, 1, 1});
    Tensor w4({f, d, 1, 1});
    for (std::int64_t of = 0; of < f; ++of)
        for (std::int64_t ic = 0; ic < d; ++ic)
            w4.at(of, ic, 0, 0) = layer.w.at(ic, of);

    Layer conv;
    conv.kind = Kind::Conv;
    conv.w = std::move(w4);
    conv.stride = 1;
    conv.pad = 0;
    Tensor y4 = runConv(conv, x4);
    Tensor y = y4.reshaped({b, f});
    if (layer.bias.size() > 0) {
        inca_assert(layer.bias.size() == f, "fc bias mismatch");
        for (std::int64_t i = 0; i < b; ++i)
            for (std::int64_t j = 0; j < f; ++j)
                y.at(i, j) += layer.bias[j];
    }
    return y;
}

Tensor
OnChipNet::forward(const Tensor &x) const
{
    Tensor cur = x;
    std::vector<Tensor> skips;
    for (const auto &layer : layers_) {
        switch (layer.kind) {
          case Kind::Conv:
            cur = runConv(layer, cur);
            break;
          case Kind::ReLU:
            cur = tensor::relu(cur);
            break;
          case Kind::MaxPool:
            cur = tensor::maxPool2d(cur, layer.poolK,
                                    ConvSpec{layer.poolK, 0})
                      .output;
            break;
          case Kind::Flatten: {
            const std::int64_t n = cur.dim(0);
            cur = cur.reshaped({n, cur.size() / n});
            break;
          }
          case Kind::Fc:
            cur = runFc(layer, cur);
            break;
          case Kind::ResidualBegin:
            skips.push_back(cur);
            break;
          case Kind::ResidualEnd: {
            inca_assert(!skips.empty(),
                        "endResidual without beginResidual");
            cur += skips.back();
            skips.pop_back();
            cur = tensor::relu(cur);
            break;
          }
        }
    }
    inca_assert(skips.empty(), "unclosed residual block");
    return cur;
}

} // namespace core
} // namespace inca
