/**
 * @file
 * INCA end-to-end analytic engine.
 *
 * Walks a network description and produces per-layer energy, latency,
 * and event counts for inference and for full training iterations
 * (feedforward + backpropagation + weight update), following the
 * paper's IS dataflow:
 *
 *  - activations live in the 3D 2T1R arrays; one batch image per
 *    vertical plane, so a whole batch of up to 64 images computes in
 *    parallel for the cost of one (Section III-B);
 *  - weights stream from buffers (DRAM when the model exceeds on-chip
 *    buffer capacity) and are reused across every window and every
 *    plane -- Eq. 5 x N buffer accesses per layer;
 *  - outputs are written straight into the next layer's arrays, never
 *    into buffers (the key WS Limitation-1 fix);
 *  - in backprop, errors overwrite the now-dead activations in place,
 *    ReLU gradients are AND gates and max-pool routing is a LUT
 *    (Section IV-C); weight updates write back through the buffers.
 */

#ifndef INCA_INCA_ENGINE_HH
#define INCA_INCA_ENGINE_HH

#include "arch/config.hh"
#include "arch/cost.hh"
#include "common/cache.hh"
#include "nn/network.hh"

namespace inca {
namespace core {

/** Analytic simulator for the INCA architecture. */
class IncaEngine
{
  public:
    explicit IncaEngine(arch::IncaConfig cfg);

    /** Simulate one inference batch. */
    arch::RunCost inference(const nn::NetworkDesc &net,
                            int batchSize) const;

    /** Simulate one training iteration (fwd + bwd + update). */
    arch::RunCost training(const nn::NetworkDesc &net,
                           int batchSize) const;

    /** The configuration in use. */
    const arch::IncaConfig &config() const { return cfg_; }

    /** Chip idle power used for static energy. */
    Watts idlePower() const { return idlePower_; }

    /** Effective time per windowed convolution read (see .cc). */
    Seconds readCycleTime(int batchSize) const;

  private:
    /** True when the network's weights exceed total on-chip buffers. */
    bool weightsStreamed(const nn::NetworkDesc &net) const;

    // Cached per-layer entry points. Keys exclude the layer name, so
    // identically shaped layers share one cached evaluation; the
    // wrappers restore the presentation fields (name, kind) on the
    // returned copy.
    arch::LayerCost forwardLayer(const nn::LayerDesc &layer,
                                 int batchSize, bool firstConv,
                                 bool streamed) const;
    arch::LayerCost backwardLayer(const nn::LayerDesc &layer,
                                  int batchSize, bool streamed) const;
    arch::LayerCost updateLayer(const nn::LayerDesc &layer,
                                int batchSize, bool streamed) const;
    arch::LayerCost auxLayer(const nn::LayerDesc &layer, int batchSize,
                             bool backward) const;

    // Uncached analytic bodies.
    arch::LayerCost computeForwardLayer(const nn::LayerDesc &layer,
                                        int batchSize, bool firstConv,
                                        bool streamed) const;
    arch::LayerCost computeBackwardLayer(const nn::LayerDesc &layer,
                                         int batchSize,
                                         bool streamed) const;
    arch::LayerCost computeUpdateLayer(const nn::LayerDesc &layer,
                                       int batchSize,
                                       bool streamed) const;
    arch::LayerCost computeAuxLayer(const nn::LayerDesc &layer,
                                    int batchSize, bool backward) const;
    arch::RunCost computeInference(const nn::NetworkDesc &net,
                                   int batchSize) const;
    arch::RunCost computeTraining(const nn::NetworkDesc &net,
                                  int batchSize) const;

    arch::IncaConfig cfg_;
    Watts idlePower_;
    CacheKey cfgKey_; ///< canonical key prefix for cfg_
};

} // namespace core
} // namespace inca

#endif // INCA_INCA_ENGINE_HH
