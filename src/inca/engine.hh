/**
 * @file
 * INCA end-to-end analytic engine.
 *
 * Produces per-layer energy, latency, and event counts for inference
 * and for full training iterations (feedforward + backpropagation +
 * weight update). Since the IR refactor, the per-layer math lives in
 * the shared lowering pass (ir/lower.hh): this engine lowers the
 * network to the instruction stream and folds it back through
 * ir::analyticWalk(), so the analytic and event backends execute one
 * and the same program. The model follows the paper's IS dataflow:
 *
 *  - activations live in the 3D 2T1R arrays; one batch image per
 *    vertical plane, so a whole batch of up to 64 images computes in
 *    parallel for the cost of one (Section III-B);
 *  - weights stream from buffers (DRAM when the model exceeds on-chip
 *    buffer capacity) and are reused across every window and every
 *    plane -- Eq. 5 x N buffer accesses per layer;
 *  - outputs are written straight into the next layer's arrays, never
 *    into buffers (the key WS Limitation-1 fix);
 *  - in backprop, errors overwrite the now-dead activations in place,
 *    ReLU gradients are AND gates and max-pool routing is a LUT
 *    (Section IV-C); weight updates write back through the buffers.
 */

#ifndef INCA_INCA_ENGINE_HH
#define INCA_INCA_ENGINE_HH

#include "arch/config.hh"
#include "arch/cost.hh"
#include "common/cache.hh"
#include "nn/network.hh"

namespace inca {
namespace core {

/** Analytic simulator for the INCA architecture. */
class IncaEngine
{
  public:
    explicit IncaEngine(arch::IncaConfig cfg);

    /** Simulate one inference batch. */
    arch::RunCost inference(const nn::NetworkDesc &net,
                            int batchSize) const;

    /** Simulate one training iteration (fwd + bwd + update). */
    arch::RunCost training(const nn::NetworkDesc &net,
                           int batchSize) const;

    /** The configuration in use. */
    const arch::IncaConfig &config() const { return cfg_; }

    /** Chip idle power used for static energy. */
    Watts idlePower() const { return idlePower_; }

    /** Effective time per windowed convolution read (delegates to
     *  ir::incaReadCycleTime, where the model now lives). */
    Seconds readCycleTime(int batchSize) const;

  private:
    arch::IncaConfig cfg_;
    Watts idlePower_;
    CacheKey cfgKey_; ///< canonical key prefix for cfg_
};

} // namespace core
} // namespace inca

#endif // INCA_INCA_ENGINE_HH
