/**
 * @file
 * On-chip inference: run a trained float CNN end-to-end on the
 * bit-accurate INCA array model.
 *
 * Each conv/FC layer's weights are quantized to signed weight-bits
 * and its input activations to unsigned activation-bits (per-tensor
 * symmetric scales); the integer convolution then executes on the
 * functional 3D 2T1R simulation -- partitioned planes, sliding 2T1R
 * windows, bit-serial weights, per-plane ADC, adder trees -- and the
 * digital post-processing units (ReLU, max-pool, the classifier's
 * softmax) operate on the dequantized results, exactly as the INCA
 * pipeline of Fig. 8a does.
 *
 * This is the strongest end-to-end statement the functional model can
 * make: a network trained in float keeps its accuracy when every MAC
 * goes through the simulated hardware, and degrades exactly where the
 * hardware says it must (e.g. a 3-bit ADC clipping 3x3 windows).
 */

#ifndef INCA_INCA_INFERENCE_HH
#define INCA_INCA_INFERENCE_HH

#include <cstdint>
#include <vector>

#include "inca/functional.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace core {

/** A float CNN staged for on-chip execution. */
class OnChipNet
{
  public:
    explicit OnChipNet(FunctionalOptions opts = {});

    /** Append a convolution layer with float kernels [F, C, K, K]. */
    OnChipNet &addConv(tensor::Tensor w, int stride, int pad);

    /** Append a ReLU (digital post-processing unit). */
    OnChipNet &addReLU();

    /** Append a k x k max pool (digital post-processing unit). */
    OnChipNet &addMaxPool(int k);

    /** Append a flatten. */
    OnChipNet &addFlatten();

    /** Append a fully connected layer: w [D, F], bias [F]. */
    OnChipNet &addFc(tensor::Tensor w, tensor::Tensor bias);

    /** Open a residual block (identity skip; closed by endResidual). */
    OnChipNet &beginResidual();

    /** Close the residual block: y = relu(path + skip). */
    OnChipNet &endResidual();

    /**
     * Run a float batch through the simulated hardware; batch must
     * fit the configured planes. Returns float logits.
     */
    tensor::Tensor forward(const tensor::Tensor &x) const;

    /** Number of layers staged. */
    size_t size() const { return layers_.size(); }

    /** Conv/FC layers executed on the array per forward. */
    int arrayLayerCount() const;

  private:
    enum class Kind
    {
        Conv,
        ReLU,
        MaxPool,
        Flatten,
        Fc,
        ResidualBegin,
        ResidualEnd,
    };

    struct Layer
    {
        Kind kind;
        tensor::Tensor w;    // conv kernels or fc weights
        tensor::Tensor bias; // fc bias
        int stride = 1, pad = 0, poolK = 0;
    };

    tensor::Tensor runConv(const Layer &layer,
                           const tensor::Tensor &x) const;
    tensor::Tensor runFc(const Layer &layer,
                         const tensor::Tensor &x) const;

    FunctionalOptions opts_;
    IncaFunctional array_;
    std::vector<Layer> layers_;
};

} // namespace core
} // namespace inca

#endif // INCA_INCA_INFERENCE_HH
