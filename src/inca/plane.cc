#include "inca/plane.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inca {
namespace core {

BitPlane::BitPlane(int size)
    : size_(size), cells_(size_t(size) * size, 0),
      faults_(size_t(size) * size, -1)
{
    inca_assert(size > 0, "plane size must be positive");
}

int
BitPlane::readWindow(int row, int col, int kh, int kw,
                     const std::vector<std::uint8_t> &weightBits) const
{
    inca_assert(int(weightBits.size()) == kh * kw,
                "weight pattern size %zu != window %dx%d",
                weightBits.size(), kh, kw);
    int current = 0;
    for (int kr = 0; kr < kh; ++kr) {
        const int r = row + kr;
        if (r < 0 || r >= size_)
            continue;
        for (int kc = 0; kc < kw; ++kc) {
            const int c = col + kc;
            if (c < 0 || c >= size_)
                continue;
            if (weightBits[size_t(kr * kw + kc)] &&
                effectiveCell(index(r, c))) {
                ++current;
            }
        }
    }
    return current;
}

int
BitPlane::popcount() const
{
    int n = 0;
    for (size_t i = 0; i < cells_.size(); ++i)
        n += effectiveCell(int(i)) ? 1 : 0;
    return n;
}

void
BitPlane::injectStuckAt(int row, int col, bool value)
{
    // Fault registration takes user-supplied coordinates (campaign
    // configs, scripts), so out-of-range is a recoverable
    // configuration error, not a simulator bug: fatal(), not panic().
    if (row < 0 || row >= size_ || col < 0 || col >= size_)
        fatal("fault injection at (%d, %d) is outside the %dx%d "
              "plane; valid rows and columns are 0..%d", row, col,
              size_, size_, size_ - 1);
    faults_[size_t(index(row, col))] = value ? 1 : 0;
}

void
BitPlane::clearFaults()
{
    for (auto &f : faults_)
        f = -1;
}

int
BitPlane::faultCount() const
{
    int n = 0;
    for (auto f : faults_)
        n += f >= 0;
    return n;
}

int
adcQuantize(int count, int bits)
{
    inca_assert(bits >= 1 && bits <= 16, "bad ADC resolution %d", bits);
    const int maxCode = (1 << bits) - 1;
    return std::min(count, maxCode);
}

} // namespace core
} // namespace inca
