/**
 * @file
 * Functional model of one 2T1R vertical plane (paper Section IV-A).
 *
 * A plane is an s x s grid of 2T1R cells, each storing one bit of an
 * activation value. The two transistors gate the cell in both the row
 * and the column direction, so a kernel window can be activated
 * anywhere in the plane ("kernel sliding") and all column currents
 * accumulate one-shot at the tied bottom line. A windowed read applies
 * a 1-bit weight pattern to the window's pillars and returns the
 * popcount of (weight bit AND stored bit) -- the analog current sum --
 * which the shared ADC then quantizes.
 *
 * This model is bit-accurate rather than analytic: it exists to prove
 * the architecture computes *correct* direct convolutions (including
 * 4-bit ADC saturation effects for windows larger than 15 cells) and
 * to back the integration tests against the tensor reference.
 */

#ifndef INCA_INCA_PLANE_HH
#define INCA_INCA_PLANE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace inca {
namespace core {

/** One s x s bit plane of 2T1R cells. */
class BitPlane
{
  public:
    /** Construct an s x s plane with all cells cleared. */
    explicit BitPlane(int size);

    /** Plane side length. */
    int size() const { return size_; }

    // Single-cell access is inline: the reliability campaign's
    // write-verify loop touches every cell of every trial array
    // through these (tens of millions of calls per campaign).

    /** Write one cell (write scheme, Fig. 8c). */
    void writeCell(int row, int col, bool bit)
    {
        inca_assert(row >= 0 && row < size_ && col >= 0 &&
                        col < size_,
                    "cell (%d, %d) outside %dx%d plane", row, col,
                    size_, size_);
        cells_[std::size_t(index(row, col))] = bit ? 1 : 0;
    }

    /** Read one cell directly (diagnostics / verification). */
    bool cell(int row, int col) const
    {
        inca_assert(row >= 0 && row < size_ && col >= 0 &&
                        col < size_,
                    "cell (%d, %d) outside %dx%d plane", row, col,
                    size_, size_);
        return effectiveCell(index(row, col));
    }

    /**
     * Windowed read (read scheme, Fig. 8d): activate the kh x kw
     * window whose top-left corner is (row, col) and apply the 1-bit
     * weight pattern @p weightBits (row-major kh x kw). Cells outside
     * the window are gated off by their transistors. Window positions
     * that stick out of the plane contribute nothing (halo positions
     * are completed by neighbouring partitions via the adder tree).
     *
     * @return the accumulated current as a count of conducting cells.
     */
    int readWindow(int row, int col, int kh, int kw,
                   const std::vector<std::uint8_t> &weightBits) const;

    /** Number of set cells (diagnostics). */
    int popcount() const;

    /**
     * Inject a stuck-at fault: the cell permanently reads @p value
     * regardless of writes (forming failures / endurance wear-out).
     */
    void injectStuckAt(int row, int col, bool value);

    /** Remove all injected faults. */
    void clearFaults();

    /** Number of faulty cells. */
    int faultCount() const;

  private:
    int index(int row, int col) const { return row * size_ + col; }

    /** The value the sense path sees (fault-aware). */
    bool effectiveCell(int idx) const
    {
        const std::int8_t fault = faults_[std::size_t(idx)];
        if (fault >= 0)
            return fault != 0;
        return cells_[std::size_t(idx)] != 0;
    }

    int size_;
    std::vector<std::uint8_t> cells_;
    std::vector<std::int8_t> faults_; ///< -1 none, 0/1 stuck value
};

/**
 * Quantize an analog count with an @p bits ADC: values clip at
 * 2^bits - 1. The paper argues 4 bits suffice because a 3 x 3 window
 * accumulates at most 9 binary products; this function is where that
 * claim is enforced (and where 5 x 5 kernels start to clip).
 */
int adcQuantize(int count, int bits);

} // namespace core
} // namespace inca

#endif // INCA_INCA_PLANE_HH
