/**
 * @file
 * INCA intra-layer mapping geometry (paper Section IV-C).
 *
 * Input feature maps are partitioned into subarray-size tiles; each
 * partition of every input channel maps to one PIM macro (whose 8
 * subarrays hold the 8 activation bit planes), and the 64 images of a
 * batch occupy the 64 planes of each 3D stack. Halo positions produce
 * partial sums joined by the macro/tile adder tree. Pointwise and FC
 * layers fold the accumulation dimension onto the 2D plane, where the
 * window's products accumulate in analog (one conversion per fold
 * group instead of one per channel).
 *
 * NOTE (modelling): for folded windows larger than 15 cells a 4-bit
 * ADC would saturate; the paper does not discuss the resolution folded
 * layers need, and this analytic mapping follows the paper's
 * efficiency accounting. The functional model (inca/functional.hh)
 * exposes the saturation honestly.
 *
 * Output channels are inherently serial in IS dataflow (one kernel's
 * weights are fed at a time); depthwise layers need no cross-channel
 * serialization because each channel partition computes its own output.
 */

#ifndef INCA_INCA_MAPPING_HH
#define INCA_INCA_MAPPING_HH

#include <cstdint>

#include "arch/config.hh"
#include "nn/layer.hh"

namespace inca {
namespace core {

/** Geometry of one layer mapped onto INCA. */
struct IsMapping
{
    /** Subarray tiles covering one channel's input map. */
    std::int64_t partitionsPerChannel = 0;
    /** Macros the layer occupies (channels x partitions). */
    std::int64_t macrosNeeded = 0;
    /** Kernel-window positions one partition computes. */
    std::int64_t positionsPerPartition = 0;
    /** Output channels that must be computed serially. */
    std::int64_t serialChannels = 0;
    /** ADC conversion groups per output element (channel grouping). */
    std::int64_t adcGroupsPerOutput = 0;
    /** Window cells active per read (accumulated products). */
    std::int64_t windowCells = 0;

    /** Sequential windowed reads per plane to finish the layer. */
    std::int64_t
    sequentialReads(int weightBits) const
    {
        return positionsPerPartition * weightBits * serialChannels;
    }
};

/** Map @p layer onto @p cfg. Only valid for conv-like layers. */
IsMapping mapLayer(const nn::LayerDesc &layer,
                   const arch::IncaConfig &cfg);

} // namespace core
} // namespace inca

#endif // INCA_INCA_MAPPING_HH
