#include "inca/functional.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "inca/stack3d.hh"

namespace inca {
namespace core {

using tensor::ConvSpec;
using tensor::Tensor;

IncaFunctional::IncaFunctional(FunctionalOptions opts) : opts_(opts)
{
    inca_assert(opts_.planeSize > 0 && opts_.planes > 0,
                "bad functional geometry");
}

namespace {

/** Macros of one channel's partitioned input map. */
struct ChannelMacros
{
    int tilesH = 0, tilesW = 0;
    std::vector<IncaMacro> macros;

    IncaMacro &
    at(int th, int tw)
    {
        return macros[size_t(th) * tilesW + tw];
    }
    const IncaMacro &
    at(int th, int tw) const
    {
        return macros[size_t(th) * tilesW + tw];
    }
};

/** Partition and write one channel of all images into macros. */
ChannelMacros
loadChannel(const Tensor &x, int channel, const FunctionalOptions &o,
            bool signedActivations)
{
    const int b = int(x.dim(0)), h = int(x.dim(2)), w = int(x.dim(3));
    inca_assert(b <= o.planes,
                "batch %d exceeds %d planes (functional model runs one "
                "wave)", b, o.planes);
    const int ps = o.planeSize;
    ChannelMacros cm;
    cm.tilesH = (h + ps - 1) / ps;
    cm.tilesW = (w + ps - 1) / ps;
    cm.macros.reserve(size_t(cm.tilesH) * cm.tilesW);
    for (int t = 0; t < cm.tilesH * cm.tilesW; ++t)
        cm.macros.emplace_back(ps, o.planes, o.activationBits);

    const std::uint32_t mask = (1u << o.activationBits) - 1u;
    const float lo = signedActivations
                         ? -float(1 << (o.activationBits - 1))
                         : 0.0f;
    const float hi = signedActivations
                         ? float((1 << (o.activationBits - 1)) - 1)
                         : float(mask);
    for (int img = 0; img < b; ++img) {
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                const float v = x.at(img, channel, r, c);
                inca_assert(v >= lo && v <= hi &&
                                v == std::floor(v),
                            "activation %f not an integer in [%f, %f]",
                            double(v), double(lo), double(hi));
                const auto encoded =
                    std::uint32_t(std::int32_t(v)) & mask;
                cm.at(r / ps, c / ps)
                    .writeValue(img, r % ps, c % ps, encoded);
            }
        }
    }
    return cm;
}

/** Extract one kernel as row-major signed ints, checking range. */
std::vector<int>
kernelInts(const Tensor &w, int f, int c, int kh, int kw, int weightBits,
           bool depthwise)
{
    std::vector<int> k(size_t(kh) * kw);
    const int lo = -(1 << (weightBits - 1));
    const int hi = (1 << (weightBits - 1)) - 1;
    for (int kr = 0; kr < kh; ++kr) {
        for (int kc = 0; kc < kw; ++kc) {
            const float v = depthwise ? w.at(c, kr, kc)
                                      : w.at(f, c, kr, kc);
            inca_assert(v >= float(lo) && v <= float(hi) &&
                            v == std::floor(v),
                        "weight %f not an integer in [%d, %d]", double(v),
                        lo, hi);
            k[size_t(kr) * kw + kc] = int(v);
        }
    }
    return k;
}

/**
 * Windowed read at global input position (ih, iw), joining the partial
 * sums of every partition the window overlaps (the adder tree).
 */
void
windowAccumulate(const ChannelMacros &cm, int ih, int iw, int kh, int kw,
                 const std::vector<int> &kernel,
                 const FunctionalOptions &o, bool signedActivations,
                 int inH, int inW, std::vector<std::int64_t> &acc)
{
    const int ps = o.planeSize;
    const int thLo = std::max(0, ih) / ps;
    const int thHi = std::min(ih + kh - 1, inH - 1) / ps;
    const int twLo = std::max(0, iw) / ps;
    const int twHi = std::min(iw + kw - 1, inW - 1) / ps;
    for (int th = thLo; th <= thHi; ++th) {
        for (int tw = twLo; tw <= twHi; ++tw) {
            const auto partial = cm.at(th, tw).convolveWindow(
                ih - th * ps, iw - tw * ps, kh, kw, kernel,
                o.weightBits, o.adcBits, signedActivations);
            for (size_t p = 0; p < acc.size(); ++p)
                acc[p] += partial[p];
        }
    }
}

} // namespace

Tensor
IncaFunctional::conv2d(const Tensor &x, const Tensor &w,
                       const ConvSpec &spec, bool signedActivations) const
{
    inca_assert(x.rank() == 4 && w.rank() == 4,
                "conv2d expects 4-D x and w");
    const int b = int(x.dim(0)), c = int(x.dim(1)), h = int(x.dim(2)),
              wd = int(x.dim(3));
    const int f = int(w.dim(0)), kh = int(w.dim(2)), kw = int(w.dim(3));
    inca_assert(int(w.dim(1)) == c, "channel mismatch");
    const auto oh = tensor::convOutDim(h, kh, spec);
    const auto ow = tensor::convOutDim(wd, kw, spec);

    // Load every channel's partitions once (intra-layer mapping).
    std::vector<ChannelMacros> channels;
    channels.reserve(size_t(c));
    for (int ic = 0; ic < c; ++ic)
        channels.push_back(loadChannel(x, ic, opts_, signedActivations));

    Tensor y({b, f, oh, ow});
    std::vector<std::int64_t> acc(static_cast<size_t>(b));
    for (int of = 0; of < f; ++of) {
        for (std::int64_t orow = 0; orow < oh; ++orow) {
            for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                std::fill(acc.begin(), acc.end(), 0);
                const int ih = int(orow) * spec.stride - spec.pad;
                const int iw = int(ocol) * spec.stride - spec.pad;
                for (int ic = 0; ic < c; ++ic) {
                    const auto kernel = kernelInts(
                        w, of, ic, kh, kw, opts_.weightBits, false);
                    windowAccumulate(channels[size_t(ic)], ih, iw, kh,
                                     kw, kernel, opts_,
                                     signedActivations, h, wd, acc);
                }
                for (int img = 0; img < b; ++img)
                    y.at(img, of, orow, ocol) = float(acc[size_t(img)]);
            }
        }
    }
    return y;
}

Tensor
IncaFunctional::depthwiseConv2d(const Tensor &x, const Tensor &w,
                                const ConvSpec &spec,
                                bool signedActivations) const
{
    inca_assert(x.rank() == 4 && w.rank() == 3,
                "depthwise expects x rank 4, w rank 3");
    const int b = int(x.dim(0)), c = int(x.dim(1)), h = int(x.dim(2)),
              wd = int(x.dim(3));
    const int kh = int(w.dim(1)), kw = int(w.dim(2));
    inca_assert(int(w.dim(0)) == c, "depthwise channel mismatch");
    const auto oh = tensor::convOutDim(h, kh, spec);
    const auto ow = tensor::convOutDim(wd, kw, spec);

    Tensor y({b, c, oh, ow});
    std::vector<std::int64_t> acc(static_cast<size_t>(b));
    for (int ic = 0; ic < c; ++ic) {
        const ChannelMacros cm =
            loadChannel(x, ic, opts_, signedActivations);
        const auto kernel =
            kernelInts(w, 0, ic, kh, kw, opts_.weightBits, true);
        for (std::int64_t orow = 0; orow < oh; ++orow) {
            for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                std::fill(acc.begin(), acc.end(), 0);
                const int ih = int(orow) * spec.stride - spec.pad;
                const int iw = int(ocol) * spec.stride - spec.pad;
                windowAccumulate(cm, ih, iw, kh, kw, kernel, opts_,
                                 signedActivations, h, wd, acc);
                for (int img = 0; img < b; ++img)
                    y.at(img, ic, orow, ocol) = float(acc[size_t(img)]);
            }
        }
    }
    return y;
}

Tensor
IncaFunctional::errorBackprop(const Tensor &dy, const Tensor &w,
                              int fwdPad) const
{
    inca_assert(dy.rank() == 4 && w.rank() == 4,
                "errorBackprop expects 4-D dy and w");
    const int f = int(w.dim(0)), c = int(w.dim(1)), kh = int(w.dim(2)),
              kw = int(w.dim(3));
    inca_assert(dy.dim(1) == f, "error channel mismatch");

    // Transposed / rotated kernel fetched in a different order from
    // the same weight buffer (Table IV discussion): swap in/out
    // channels and rotate spatially by 180 degrees.
    Tensor wt({c, f, kh, kw});
    for (int of = 0; of < f; ++of)
        for (int ic = 0; ic < c; ++ic)
            for (int kr = 0; kr < kh; ++kr)
                for (int kc = 0; kc < kw; ++kc)
                    wt.at(ic, of, kr, kc) =
                        w.at(of, ic, kh - 1 - kr, kw - 1 - kc);

    ConvSpec spec;
    spec.stride = 1;
    spec.pad = kh - 1 - fwdPad;
    return conv2d(dy, wt, spec, /*signedActivations=*/true);
}

Tensor
IncaFunctional::weightGradient(const Tensor &x, const Tensor &dy,
                               int fwdPad) const
{
    inca_assert(x.rank() == 4 && dy.rank() == 4,
                "weightGradient expects 4-D x and dy");
    const int b = int(x.dim(0)), c = int(x.dim(1)), h = int(x.dim(2)),
              wd = int(x.dim(3));
    const int f = int(dy.dim(1)), oh = int(dy.dim(2)),
              ow = int(dy.dim(3));
    inca_assert(dy.dim(0) == b, "batch mismatch");
    const int kh = h + 2 * fwdPad - oh + 1;
    const int kw = wd + 2 * fwdPad - ow + 1;

    // Errors act as the sliding kernel over the stored activations
    // (Fig. 4's red-box convolution); batch contributions reduce in
    // the digital adders.
    Tensor dw({f, c, kh, kw});
    std::vector<std::int64_t> acc(static_cast<size_t>(b));
    for (int ic = 0; ic < c; ++ic) {
        const ChannelMacros cm =
            loadChannel(x, ic, opts_, /*signedActivations=*/false);
        for (int of = 0; of < f; ++of) {
            // The per-image error map, row-major, as the kernel.
            for (int kr = 0; kr < kh; ++kr) {
                for (int kc = 0; kc < kw; ++kc) {
                    std::fill(acc.begin(), acc.end(), 0);
                    for (int img = 0; img < b; ++img) {
                        std::vector<int> kernel(size_t(oh) * ow);
                        const int lo = -(1 << (opts_.weightBits - 1));
                        const int hi = (1 << (opts_.weightBits - 1)) - 1;
                        for (int r = 0; r < oh; ++r) {
                            for (int cl = 0; cl < ow; ++cl) {
                                const float v = dy.at(img, of, r, cl);
                                inca_assert(
                                    v >= float(lo) && v <= float(hi) &&
                                        v == std::floor(v),
                                    "error %f not an integer in "
                                    "[%d, %d]", double(v), lo, hi);
                                kernel[size_t(r) * ow + cl] = int(v);
                            }
                        }
                        // Single-image accumulate at this kernel
                        // offset; images cannot share one windowed
                        // read here because each plane has its own
                        // error kernel.
                        std::vector<std::int64_t> one(size_t(b), 0);
                        windowAccumulate(cm, kr - fwdPad, kc - fwdPad,
                                         oh, ow, kernel, opts_, false,
                                         h, wd, one);
                        acc[size_t(img)] += one[size_t(img)];
                    }
                    double sum = 0.0;
                    for (int img = 0; img < b; ++img)
                        sum += double(acc[size_t(img)]);
                    dw.at(of, ic, kr, kc) = float(sum);
                }
            }
        }
    }
    return dw;
}

Tensor
quantizeUnsigned(const Tensor &t, int bits, float scale)
{
    const float hi = float((1 << bits) - 1);
    Tensor q(t.shape());
    for (std::int64_t i = 0; i < t.size(); ++i)
        q[i] = std::clamp(std::round(t[i] * scale), 0.0f, hi);
    return q;
}

Tensor
quantizeSigned(const Tensor &t, int bits, float scale)
{
    const float lo = -float(1 << (bits - 1));
    const float hi = float((1 << (bits - 1)) - 1);
    Tensor q(t.shape());
    for (std::int64_t i = 0; i < t.size(); ++i)
        q[i] = std::clamp(std::round(t[i] * scale), lo, hi);
    return q;
}

} // namespace core
} // namespace inca
