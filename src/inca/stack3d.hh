/**
 * @file
 * Functional 3D HRRAM stack and PIM macro (paper Sections IV-A/B).
 *
 * A Stack3D horizontally stacks up to 64 vertical planes; the pillars
 * (input lines) are shared, so one weight-bit pattern drives all
 * planes at once and each plane independently accumulates its own
 * current -- this is how INCA processes a whole batch per read.
 *
 * An IncaMacro groups the activation-bit-plane stacks of one channel
 * partition (Table II "Macro Size 8": one stack per activation bit)
 * plus the shift-accumulator that reassembles multi-bit values from
 * bit-serial weight feeds and per-bit-plane ADC samples.
 */

#ifndef INCA_INCA_STACK3D_HH
#define INCA_INCA_STACK3D_HH

#include <cstdint>
#include <vector>

#include "inca/plane.hh"

namespace inca {
namespace core {

/** Horizontally stacked vertical planes sharing input pillars. */
class Stack3D
{
  public:
    /** @param size plane side; @param planes number of stacked planes */
    Stack3D(int size, int planes);

    int size() const { return size_; }
    int planeCount() const { return int(planes_.size()); }

    /** Mutable access to one plane (write scheme targets one plane). */
    BitPlane &plane(int p);
    const BitPlane &plane(int p) const;

    /**
     * Windowed read on ALL planes at once (shared pillars carry the
     * same weight-bit pattern); returns one raw current per plane.
     */
    std::vector<int>
    readWindow(int row, int col, int kh, int kw,
               const std::vector<std::uint8_t> &weightBits) const;

  private:
    int size_;
    std::vector<BitPlane> planes_;
};

/**
 * One PIM macro: aBits stacks holding the activation bit planes of one
 * channel partition for every image in the batch.
 */
class IncaMacro
{
  public:
    /**
     * @param size plane side
     * @param planes images per stack (batch slots)
     * @param activationBits stored value resolution
     */
    IncaMacro(int size, int planes, int activationBits);

    int size() const { return size_; }
    int activationBits() const { return aBits_; }
    int planeCount() const { return planes_; }

    /**
     * Write one activation value (non-negative, < 2^aBits) for image
     * @p image at plane position (row, col): one bit per stack.
     */
    void writeValue(int image, int row, int col, std::uint32_t value);

    /** Read a stored value back (verification). */
    std::uint32_t readValue(int image, int row, int col) const;

    /**
     * Direct convolution of one window position against a signed
     * integer kernel, bit-serial over the kernel bits (two's
     * complement, MSB negative), with an @p adcBits conversion of each
     * per-plane partial sum and shift-accumulation of the digits.
     *
     * @param signedActivations treat stored values as two's-complement
     *        (used when errors overwrite activations in backprop; the
     *        MSB bit plane then carries negative weight)
     * @return one signed partial output per image plane.
     */
    std::vector<std::int64_t>
    convolveWindow(int row, int col, int kh, int kw,
                   const std::vector<int> &kernel, int weightBits,
                   int adcBits, bool signedActivations = false) const;

  private:
    int size_;
    int planes_;
    int aBits_;
    std::vector<Stack3D> bitStacks_; ///< one stack per activation bit
};

} // namespace core
} // namespace inca

#endif // INCA_INCA_STACK3D_HH
