/**
 * @file
 * Full functional layer engine on the INCA array model.
 *
 * Executes integer-quantized convolutions end-to-end on the bit-level
 * 3D 2T1R array model: input maps are partitioned onto plane-size
 * tiles (one macro per channel partition), kernel windows slide with
 * the 2T1R gating, halo windows produce partial sums joined by the
 * adder tree, weight bits stream serially, per-plane ADC samples are
 * shift-accumulated, and channel partials reduce digitally -- exactly
 * the hardware dataflow of Sections IV-A..C.
 *
 * Training-path primitives are also provided on the same array
 * machinery: the error backpropagation (convolution with the
 * transposed / rotated kernels read from the weight buffer in a
 * different order) and the in-array weight-gradient convolution
 * between stored activations and errors, with errors stored in two's
 * complement overwriting the dead activations.
 *
 * All tensors carry integer values in floats (exact below 2^24).
 */

#ifndef INCA_INCA_FUNCTIONAL_HH
#define INCA_INCA_FUNCTIONAL_HH

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace core {

/** Functional-model configuration. */
struct FunctionalOptions
{
    int planeSize = 16;      ///< vertical-plane side (Table II: 16)
    int planes = 8;          ///< batch slots per stack
    int activationBits = 8;  ///< stored value resolution
    int weightBits = 8;      ///< serial weight resolution
    int adcBits = 4;         ///< per-read conversion resolution
};

/** Bit-accurate INCA layer executor. */
class IncaFunctional
{
  public:
    explicit IncaFunctional(FunctionalOptions opts = {});

    const FunctionalOptions &options() const { return opts_; }

    /**
     * Direct convolution on the array model.
     *
     * @param x integer activations [B, C, H, W], 0 <= v < 2^aBits
     *          (two's complement in [-2^(a-1), 2^(a-1)) when
     *          @p signedActivations)
     * @param w integer kernels [F, C, KH, KW] in signed weightBits
     * @param spec stride / padding
     */
    tensor::Tensor conv2d(const tensor::Tensor &x, const tensor::Tensor &w,
                          const tensor::ConvSpec &spec = {},
                          bool signedActivations = false) const;

    /** Depthwise direct convolution; @p w is [C, KH, KW]. */
    tensor::Tensor depthwiseConv2d(const tensor::Tensor &x,
                                   const tensor::Tensor &w,
                                   const tensor::ConvSpec &spec = {},
                                   bool signedActivations = false) const;

    /**
     * Error backpropagation executed as an array convolution of the
     * (signed) errors with the rotated, channel-transposed kernels
     * (stride-1 layers only, full padding).
     */
    tensor::Tensor errorBackprop(const tensor::Tensor &dy,
                                 const tensor::Tensor &w,
                                 int fwdPad = 0) const;

    /**
     * In-array weight gradient: stored activations convolved with the
     * (signed) errors acting as the kernel (Eq. 4's delta * x term).
     */
    tensor::Tensor weightGradient(const tensor::Tensor &x,
                                  const tensor::Tensor &dy,
                                  int fwdPad = 0) const;

  private:
    FunctionalOptions opts_;
};

/** Clamp-quantize a float tensor to unsigned @p bits integers. */
tensor::Tensor quantizeUnsigned(const tensor::Tensor &t, int bits,
                                float scale);

/** Clamp-quantize a float tensor to signed @p bits integers. */
tensor::Tensor quantizeSigned(const tensor::Tensor &t, int bits,
                              float scale);

} // namespace core
} // namespace inca

#endif // INCA_INCA_FUNCTIONAL_HH
