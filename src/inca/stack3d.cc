#include "inca/stack3d.hh"

#include "common/logging.hh"

namespace inca {
namespace core {

Stack3D::Stack3D(int size, int planes) : size_(size)
{
    inca_assert(planes > 0, "stack needs at least one plane");
    planes_.reserve(size_t(planes));
    for (int p = 0; p < planes; ++p)
        planes_.emplace_back(size);
}

BitPlane &
Stack3D::plane(int p)
{
    inca_assert(p >= 0 && p < planeCount(), "plane %d out of range", p);
    return planes_[size_t(p)];
}

const BitPlane &
Stack3D::plane(int p) const
{
    inca_assert(p >= 0 && p < planeCount(), "plane %d out of range", p);
    return planes_[size_t(p)];
}

std::vector<int>
Stack3D::readWindow(int row, int col, int kh, int kw,
                    const std::vector<std::uint8_t> &weightBits) const
{
    std::vector<int> currents;
    currents.reserve(planes_.size());
    for (const auto &plane : planes_)
        currents.push_back(plane.readWindow(row, col, kh, kw, weightBits));
    return currents;
}

IncaMacro::IncaMacro(int size, int planes, int activationBits)
    : size_(size), planes_(planes), aBits_(activationBits)
{
    inca_assert(activationBits >= 1 && activationBits <= 16,
                "bad activation resolution %d", activationBits);
    bitStacks_.reserve(size_t(aBits_));
    for (int b = 0; b < aBits_; ++b)
        bitStacks_.emplace_back(size, planes);
}

void
IncaMacro::writeValue(int image, int row, int col, std::uint32_t value)
{
    inca_assert(value < (1u << aBits_), "value %u exceeds %d bits", value,
                aBits_);
    for (int b = 0; b < aBits_; ++b) {
        bitStacks_[size_t(b)].plane(image).writeCell(
            row, col, (value >> b) & 1u);
    }
}

std::uint32_t
IncaMacro::readValue(int image, int row, int col) const
{
    std::uint32_t value = 0;
    for (int b = 0; b < aBits_; ++b) {
        if (bitStacks_[size_t(b)].plane(image).cell(row, col))
            value |= 1u << b;
    }
    return value;
}

std::vector<std::int64_t>
IncaMacro::convolveWindow(int row, int col, int kh, int kw,
                          const std::vector<int> &kernel, int weightBits,
                          int adcBits, bool signedActivations) const
{
    inca_assert(int(kernel.size()) == kh * kw,
                "kernel size %zu != window %dx%d", kernel.size(), kh, kw);
    inca_assert(weightBits >= 2 && weightBits <= 16,
                "bad weight resolution %d", weightBits);

    std::vector<std::int64_t> out(size_t(planes_), 0);

    // Two's-complement bit-serial weight feed: bit k contributes
    // 2^k, except the MSB which contributes -2^(wBits-1).
    for (int k = 0; k < weightBits; ++k) {
        std::vector<std::uint8_t> pattern(size_t(kh) * kw, 0);
        bool any = false;
        for (size_t i = 0; i < kernel.size(); ++i) {
            const auto encoded =
                std::uint32_t(kernel[i]) & ((1u << weightBits) - 1u);
            if ((encoded >> k) & 1u) {
                pattern[i] = 1;
                any = true;
            }
        }
        if (!any)
            continue;
        const std::int64_t weightScale =
            (k == weightBits - 1) ? -(std::int64_t(1) << k)
                                  : (std::int64_t(1) << k);

        for (int a = 0; a < aBits_; ++a) {
            const auto currents =
                bitStacks_[size_t(a)].readWindow(row, col, kh, kw,
                                                 pattern);
            const bool negDigit = signedActivations && a == aBits_ - 1;
            const std::int64_t digit =
                negDigit ? -(std::int64_t(1) << a)
                         : (std::int64_t(1) << a);
            const std::int64_t scale = weightScale * digit;
            for (int p = 0; p < planes_; ++p) {
                const int code = adcQuantize(currents[size_t(p)],
                                             adcBits);
                out[size_t(p)] += scale * code;
            }
        }
    }
    return out;
}

} // namespace core
} // namespace inca
