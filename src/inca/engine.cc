#include "inca/engine.hh"

#include "arch/power.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "ir/lower.hh"

namespace inca {
namespace core {

using arch::Phase;
using arch::RunCost;

namespace {

/** Whole-run evaluations (one network, phase, batch). */
EvalCache<RunCost> &
incaRunCache()
{
    static EvalCache<RunCost> *c = new EvalCache<RunCost>("inca.run");
    return *c;
}

/** Wall clock of one cached whole-run evaluation. */
metrics::Histogram &
runEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.run_eval_us");
    return *h;
}

} // namespace

IncaEngine::IncaEngine(arch::IncaConfig cfg)
    : cfg_(std::move(cfg)), idlePower_(arch::incaIdlePower(cfg_))
{
    arch::appendKey(cfgKey_, cfg_);
}

Seconds
IncaEngine::readCycleTime(int batchSize) const
{
    return ir::incaReadCycleTime(cfg_, batchSize);
}

RunCost
IncaEngine::inference(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("inca.inference ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-inference");
    nn::appendKey(key, net);
    key.add(batchSize);
    return incaRunCache().getOrCompute(key, [&] {
        return ir::analyticWalk(
            ir::lowerInca(cfg_, net, Phase::Inference, batchSize));
    });
}

RunCost
IncaEngine::training(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("inca.training ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-training");
    nn::appendKey(key, net);
    key.add(batchSize);
    return incaRunCache().getOrCompute(key, [&] {
        return ir::analyticWalk(
            ir::lowerInca(cfg_, net, Phase::Training, batchSize));
    });
}

} // namespace core
} // namespace inca
