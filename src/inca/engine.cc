#include "inca/engine.hh"

#include <algorithm>
#include <cmath>

#include "arch/power.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "dataflow/access_model.hh"
#include "inca/mapping.hh"

namespace inca {
namespace core {

using arch::LayerCost;
using arch::Phase;
using arch::RunCost;
using nn::LayerDesc;
using nn::LayerKind;

namespace {

/** Per-layer evaluations, shared by every IncaEngine instance. */
EvalCache<LayerCost> &
incaLayerCache()
{
    static EvalCache<LayerCost> *c =
        new EvalCache<LayerCost>("inca.layer");
    return *c;
}

/** Whole-run evaluations (one network, phase, batch). */
EvalCache<RunCost> &
incaRunCache()
{
    static EvalCache<RunCost> *c = new EvalCache<RunCost>("inca.run");
    return *c;
}

/** Wall clock of one cached layer-cost lookup (hit or miss). */
metrics::Histogram &
layerEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.layer_eval_us");
    return *h;
}

/** Wall clock of one cached whole-run evaluation. */
metrics::Histogram &
runEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.run_eval_us");
    return *h;
}

} // namespace

IncaEngine::IncaEngine(arch::IncaConfig cfg)
    : cfg_(std::move(cfg)), idlePower_(arch::incaIdlePower(cfg_))
{
    arch::appendKey(cfgKey_, cfg_);
}

Seconds
IncaEngine::readCycleTime(int batchSize) const
{
    // One windowed read: the read pulse plus the exposed half of the
    // previous result's write-back (Section V-B-2: the pipeline hides
    // part of the 50 ns write behind the next read), overlapped with
    // the shared ADC draining one conversion per active plane in its
    // group from the per-plane sample-and-holds.
    const int activePlanes = std::min(batchSize, cfg_.stackedPlanes);
    const int adcsPerStack =
        std::max(1, cfg_.stackedPlanes / cfg_.subarraysPerAdc);
    const double conversionsSerial =
        std::ceil(double(activePlanes) / double(adcsPerStack));
    const Seconds adcDrain =
        conversionsSerial * cfg_.adc().conversionLatency();
    return std::max(cfg_.device.tRead + 0.5 * cfg_.device.tWrite,
                    adcDrain);
}

bool
IncaEngine::weightsStreamed(const nn::NetworkDesc &net) const
{
    const double weightBytes =
        double(net.totalWeights()) * cfg_.weightBits / 8.0;
    const double onChip =
        double(cfg_.org.numTiles) * cfg_.buffer.capacity;
    return weightBytes > onChip;
}

namespace {

/** Buffer words to move @p values of @p bits over the tile bus. */
double
words(double values, int bits, const memory::Bus &bus)
{
    return std::ceil(values * bits / double(bus.widthBits));
}

} // namespace

LayerCost
IncaEngine::forwardLayer(const LayerDesc &layer, int batchSize,
                         bool firstConv, bool streamed) const
{
    trace::Span span(trace::spanName("inca.fwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("F");
    nn::appendKey(key, layer);
    key.add(batchSize).add(firstConv).add(streamed);
    LayerCost cost = incaLayerCache().getOrCompute(key, [&] {
        return computeForwardLayer(layer, batchSize, firstConv,
                                   streamed);
    });
    cost.name = layer.name;
    cost.kind = layer.kind;
    return cost;
}

LayerCost
IncaEngine::computeForwardLayer(const LayerDesc &layer, int batchSize,
                                bool firstConv, bool streamed) const
{
    LayerCost cost;
    cost.name = layer.name;
    cost.kind = layer.kind;

    const IsMapping m = mapLayer(layer, cfg_);
    const double images = batchSize;
    const double wBits = cfg_.weightBits;
    const double aBits = cfg_.activationBits;
    const double macs = double(layer.macs());
    const double outputs = double(layer.outputCount());
    const double batchWaves =
        std::ceil(double(batchSize) / double(cfg_.stackedPlanes));

    // --- Array reads: every MAC touches one cell per (weight-bit
    // cycle, activation bit plane); 2T1R gating keeps all other cells
    // dark (unlike the baseline's fully-driven crossbars).
    const double cellReads = macs * wBits * aBits * images;
    cost.stats.add("count.array.read", cellReads);
    cost.stats.add("energy.array.read",
                   cellReads * cfg_.device.avgReadEnergy());

    // --- Array writes: outputs propagate directly into the next
    // layer's arrays (no buffer round trip). The first conv layer also
    // pays for loading the batch's input images.
    double cellWrites = outputs * aBits * images;
    if (firstConv)
        cellWrites += double(layer.inputCount()) * aBits * images;
    cost.stats.add("count.array.write", cellWrites);
    cost.stats.add("energy.array.write",
                   cellWrites * cfg_.device.avgWriteEnergy());

    // --- ADC: one conversion per (output, weight bit, activation bit
    // plane, channel ADC group) per image-plane.
    const double conversions = outputs * wBits * aBits *
                               double(m.adcGroupsPerOutput) * images;
    cost.stats.add("count.adc", conversions);
    cost.stats.add("energy.adc",
                   conversions * cfg_.adc().energyPerConversion);

    // --- DAC / pillar drivers: pillars are shared by all planes of a
    // stack, so driver energy is paid once per batch wave, not per
    // image.
    const double dacEvents = macs * wBits * aBits * batchWaves;
    cost.stats.add("energy.dac",
                   dacEvents * circuit::makeDac().energyPerActivation);

    // --- Digital: shift-accumulators after each conversion, adder
    // tree across channel groups, output registers.
    cost.stats.add("energy.digital.shift",
                   conversions * cfg_.digital.shiftAccumulate);
    cost.stats.add(
        "energy.digital.adders",
        outputs * wBits * aBits * images *
            circuit::adderTreeEnergy(cfg_.digital,
                                     double(m.adcGroupsPerOutput)));
    cost.stats.add("energy.digital.register",
                   outputs * images * 2.0 * cfg_.digital.registerAccess);

    // --- Buffers: weight fetches only (Eq. 5 x kernels); the fetched
    // kernel is reused for every window and every plane. When the
    // model streams from DRAM the buffer is also written once.
    const dataflow::AccessConfig acc{int(wBits),
                                     cfg_.buffer.port.widthBits};
    const double weightFetchWords =
        double(dataflow::isLayerAccesses(layer, acc)) * batchWaves;
    cost.stats.add("count.buffer.read", weightFetchWords);
    cost.stats.add("energy.buffer.read",
                   cfg_.buffer.readEnergy(weightFetchWords));

    const double weightWords =
        words(double(layer.weightCount()), int(wBits),
              cfg_.buffer.port);
    double dramBytes = 0.0;
    if (streamed) {
        cost.stats.add("count.buffer.write", weightWords * batchWaves);
        cost.stats.add("energy.buffer.write",
                       cfg_.buffer.writeEnergy(weightWords * batchWaves));
        dramBytes =
            double(layer.weightCount()) * wBits / 8.0 * batchWaves;
        cost.stats.add("count.dram.bytes", dramBytes);
        cost.stats.add("energy.dram.read",
                       cfg_.dram.accessEnergy(dramBytes));
    }

    // --- Latency: sequential windowed reads (output channels are
    // serial in IS; partitions, channels and planes are parallel),
    // overlapped with the weight stream from DRAM. When the layer's
    // mapping leaves macros spare -- common in the small late layers
    // -- the inputs are replicated across them so several output
    // channels compute concurrently; the extra input copies are paid
    // for as additional array writes.
    const double available = double(cfg_.org.totalMacros());
    double replication = std::floor(available /
                                    double(m.macrosNeeded));
    replication = std::clamp(replication, 1.0,
                             double(m.serialChannels));
    if (replication > 1.0) {
        const double extraWrites = double(layer.inputCount()) * aBits *
                                   images * (replication - 1.0);
        cost.stats.add("count.array.write", extraWrites);
        cost.stats.add("energy.array.write",
                       extraWrites * cfg_.device.avgWriteEnergy());
    }
    const double reads =
        double(m.positionsPerPartition) * wBits *
        std::ceil(double(m.serialChannels) / replication);
    const Seconds compute =
        reads * readCycleTime(batchSize) * batchWaves;
    const Seconds dramTime = cfg_.dram.streamTime(dramBytes);
    cost.latency = std::max(compute, dramTime);
    return cost;
}

LayerCost
IncaEngine::backwardLayer(const LayerDesc &layer, int batchSize,
                          bool streamed) const
{
    trace::Span span(trace::spanName("inca.bwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("B");
    nn::appendKey(key, layer);
    key.add(batchSize).add(streamed);
    LayerCost cost = incaLayerCache().getOrCompute(key, [&] {
        return computeBackwardLayer(layer, batchSize, streamed);
    });
    cost.name = layer.name + ".bwd";
    cost.kind = layer.kind;
    return cost;
}

LayerCost
IncaEngine::computeBackwardLayer(const LayerDesc &layer, int batchSize,
                                 bool streamed) const
{
    // Error backpropagation: delta_{l+1} convolved with the transposed
    // kernels. The array work mirrors the forward pass with input and
    // output roles swapped; the transposed weights are a second fetch
    // from the same buffer bytes (Table IV's "different element
    // disposition" observation), and the produced errors overwrite the
    // dead activations of this layer in place.
    LayerCost cost = forwardLayer(layer, batchSize, false, streamed);
    cost.name = layer.name + ".bwd";

    // Replace the forward output-write term: backward writes errors of
    // the *input* size (they overwrite this layer's activations).
    const double images = batchSize;
    const double aBits = cfg_.activationBits;
    const double fwdWrites =
        double(layer.outputCount()) * aBits * images;
    const double bwdWrites = double(layer.inputCount()) * aBits * images;
    cost.stats.add("count.array.write", bwdWrites - fwdWrites);
    cost.stats.add("energy.array.write",
                   (bwdWrites - fwdWrites) *
                       cfg_.device.avgWriteEnergy());
    return cost;
}

LayerCost
IncaEngine::updateLayer(const LayerDesc &layer, int batchSize,
                        bool streamed) const
{
    trace::Span span(trace::spanName("inca.upd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("U");
    nn::appendKey(key, layer);
    key.add(batchSize).add(streamed);
    LayerCost cost = incaLayerCache().getOrCompute(key, [&] {
        return computeUpdateLayer(layer, batchSize, streamed);
    });
    cost.name = layer.name + ".upd";
    cost.kind = layer.kind;
    return cost;
}

LayerCost
IncaEngine::computeUpdateLayer(const LayerDesc &layer, int batchSize,
                               bool streamed) const
{
    // Weight update: x_l convolved with delta_l. The number of
    // products equals the layer MACs per image; gradient partial sums
    // stream out through the shift-accumulators into the buffers and
    // the updated weights are written back (DRAM when streamed).
    LayerCost cost;
    cost.name = layer.name + ".upd";
    cost.kind = layer.kind;

    const IsMapping m = mapLayer(layer, cfg_);
    const double images = batchSize;
    const double wBits = cfg_.weightBits;
    const double aBits = cfg_.activationBits;
    const double macs = double(layer.macs());
    const double weights = double(layer.weightCount());
    const double batchWaves =
        std::ceil(double(batchSize) / double(cfg_.stackedPlanes));

    const double cellReads = macs * wBits * aBits * images;
    cost.stats.add("count.array.read", cellReads);
    cost.stats.add("energy.array.read",
                   cellReads * cfg_.device.avgReadEnergy());

    // One conversion per (gradient element, bit pair, ADC group); the
    // batch dimension is reduced by the plane-level analog accumulation
    // feeding one shared ADC group per stack.
    const double conversions = weights * wBits * aBits *
                               double(m.adcGroupsPerOutput) * batchWaves;
    cost.stats.add("count.adc", conversions);
    cost.stats.add("energy.adc",
                   conversions * cfg_.adc().energyPerConversion);
    cost.stats.add("energy.digital.shift",
                   conversions * cfg_.digital.shiftAccumulate);
    // Gradient subtraction (Eq. 4) in the digital domain.
    cost.stats.add("energy.digital.adders",
                   weights * cfg_.digital.adder16bit);

    // Updated weights written back through buffers (and DRAM).
    const double weightWords =
        words(weights, int(wBits), cfg_.buffer.port);
    cost.stats.add("count.buffer.write", weightWords);
    cost.stats.add("energy.buffer.write",
                   cfg_.buffer.writeEnergy(weightWords));
    cost.stats.add("count.buffer.read", weightWords);
    cost.stats.add("energy.buffer.read",
                   cfg_.buffer.readEnergy(weightWords));
    double dramBytes = 0.0;
    if (streamed) {
        dramBytes = weights * wBits / 8.0;
        cost.stats.add("count.dram.bytes", dramBytes);
        cost.stats.add("energy.dram.write",
                       cfg_.dram.accessEnergy(dramBytes));
    }

    // Update runs in parallel with the preceding layer's error
    // computation (Section IV-C), so its latency mostly hides; the
    // exposed part is the gradient read-out.
    const double reads =
        double(m.positionsPerPartition) * wBits *
        double(m.serialChannels);
    cost.latency =
        std::max(0.25 * reads * readCycleTime(batchSize) * batchWaves,
                 cfg_.dram.streamTime(dramBytes));
    return cost;
}

LayerCost
IncaEngine::auxLayer(const LayerDesc &layer, int batchSize,
                     bool backward) const
{
    trace::Span span(trace::spanName("inca.aux ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("A");
    nn::appendKey(key, layer);
    key.add(batchSize).add(backward);
    LayerCost cost = incaLayerCache().getOrCompute(key, [&] {
        return computeAuxLayer(layer, batchSize, backward);
    });
    cost.name = backward ? layer.name + ".bwd" : layer.name;
    cost.kind = layer.kind;
    return cost;
}

LayerCost
IncaEngine::computeAuxLayer(const LayerDesc &layer, int batchSize,
                            bool backward) const
{
    LayerCost cost;
    cost.name = backward ? layer.name + ".bwd" : layer.name;
    cost.kind = layer.kind;
    const double images = batchSize;
    const double outputs = double(layer.outputCount());

    switch (layer.kind) {
      case LayerKind::ReLU:
        if (backward) {
            // AND gate against the stored sign replaces the gradient
            // multiplication (Section IV-C).
            cost.stats.add("energy.digital.post",
                           outputs * images * cfg_.digital.andGate);
        } else {
            cost.stats.add("energy.digital.post",
                           outputs * images * cfg_.digital.reluOp);
        }
        break;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool: {
        const double window = double(layer.kh) * layer.kw;
        if (backward) {
            // LUT restores the argmax position; other nodes are dead.
            cost.stats.add("energy.digital.post",
                           outputs * images * cfg_.digital.lutLookup);
        } else {
            cost.stats.add("energy.digital.post",
                           outputs * images * window *
                               cfg_.digital.maxPoolCompare);
            // Training must remember argmax positions in the LUT.
            cost.stats.add("energy.digital.post",
                           outputs * images * cfg_.digital.lutLookup);
        }
        break;
      }
      case LayerKind::Add:
        cost.stats.add("energy.digital.post",
                       outputs * images * cfg_.digital.adder8bit);
        break;
      default:
        break;
    }
    // Post-processing is streaming and hides behind array work.
    cost.latency = 0.0;
    return cost;
}

RunCost
IncaEngine::inference(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("inca.inference ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-inference");
    nn::appendKey(key, net);
    key.add(batchSize);
    return incaRunCache().getOrCompute(
        key, [&] { return computeInference(net, batchSize); });
}

RunCost
IncaEngine::computeInference(const nn::NetworkDesc &net,
                             int batchSize) const
{
    RunCost run;
    run.network = net.name;
    run.phase = Phase::Inference;
    run.batchSize = batchSize;
    run.configKeyHash = cfgKey_.hash();

    const bool streamed = weightsStreamed(net);
    bool first = true;
    for (const auto &layer : net.layers) {
        if (layer.isConvLike()) {
            run.layers.push_back(
                forwardLayer(layer, batchSize, first, streamed));
            first = false;
        } else {
            run.layers.push_back(auxLayer(layer, batchSize, false));
        }
        run.latency += run.layers.back().latency;
    }
    run.staticEnergy = idlePower_ * run.latency;
    return run;
}

RunCost
IncaEngine::training(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("inca.training ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-training");
    nn::appendKey(key, net);
    key.add(batchSize);
    return incaRunCache().getOrCompute(
        key, [&] { return computeTraining(net, batchSize); });
}

RunCost
IncaEngine::computeTraining(const nn::NetworkDesc &net,
                            int batchSize) const
{
    RunCost run;
    run.network = net.name;
    run.phase = Phase::Training;
    run.batchSize = batchSize;
    run.configKeyHash = cfgKey_.hash();

    const bool streamed = weightsStreamed(net);

    // Feedforward.
    bool first = true;
    for (const auto &layer : net.layers) {
        if (layer.isConvLike()) {
            run.layers.push_back(
                forwardLayer(layer, batchSize, first, streamed));
            first = false;
        } else {
            run.layers.push_back(auxLayer(layer, batchSize, false));
        }
        run.latency += run.layers.back().latency;
    }

    // Backpropagation + weight update, last layer to first. The update
    // of layer l runs concurrently with the error computation of layer
    // l-1 (Section IV-C), which updateLayer() models by exposing only
    // part of its read-out time.
    for (auto it = net.layers.rbegin(); it != net.layers.rend(); ++it) {
        const LayerDesc &layer = *it;
        if (layer.isConvLike()) {
            run.layers.push_back(
                backwardLayer(layer, batchSize, streamed));
            run.latency += run.layers.back().latency;
            run.layers.push_back(
                updateLayer(layer, batchSize, streamed));
            run.latency += run.layers.back().latency;
        } else {
            run.layers.push_back(auxLayer(layer, batchSize, true));
            run.latency += run.layers.back().latency;
        }
    }

    run.staticEnergy = idlePower_ * run.latency;
    return run;
}

} // namespace core
} // namespace inca
