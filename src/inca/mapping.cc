#include "inca/mapping.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace core {

IsMapping
mapLayer(const nn::LayerDesc &layer, const arch::IncaConfig &cfg)
{
    inca_assert(layer.isConvLike(), "mapLayer on non-conv layer %s",
                layer.name.c_str());
    const auto s = std::uint64_t(cfg.subarraySize);
    IsMapping m;

    if (layer.kind == nn::LayerKind::FullyConnected ||
        layer.kind == nn::LayerKind::Pointwise) {
        // Fold the accumulation dimension (the input channels) onto
        // the 2D plane (Section IV-C): each output pixel's C-deep
        // channel vector occupies a window that slides with stride ==
        // window size, and the window's products accumulate in analog
        // inside the plane. Pixels land on different planes/macros and
        // compute in parallel; pixels co-resident on one plane
        // serialize.
        const std::uint64_t pixels =
            std::uint64_t(layer.outH) * std::uint64_t(layer.outW);
        const auto foldGroups =
            ceilDiv(std::uint64_t(layer.inC), s * s);
        const std::uint64_t pixelsPerPlane =
            std::max<std::uint64_t>(1, (s * s) /
                                            std::uint64_t(layer.inC));
        m.partitionsPerChannel = std::int64_t(foldGroups);
        m.macrosNeeded =
            std::int64_t(ceilDiv(pixels, pixelsPerPlane) * foldGroups);
        m.positionsPerPartition = std::int64_t(pixelsPerPlane);
        m.serialChannels = layer.outC;
        m.adcGroupsPerOutput = std::int64_t(
            ceilDiv(foldGroups, std::uint64_t(cfg.subarraysPerAdc)));
        m.windowCells = std::int64_t(
            std::min<std::uint64_t>(std::uint64_t(layer.inC), s * s));
        return m;
    }

    const auto tilesH = ceilDiv(std::uint64_t(layer.inH), s);
    const auto tilesW = ceilDiv(std::uint64_t(layer.inW), s);
    m.partitionsPerChannel = std::int64_t(tilesH * tilesW);
    m.macrosNeeded = layer.inC * m.partitionsPerChannel;
    // Window positions are distributed across the partitions; halo
    // positions are computed as partial sums inside each partition and
    // joined by the adder tree, so the per-partition count is the even
    // share of all output positions.
    const std::uint64_t positions =
        std::uint64_t(layer.outH) * std::uint64_t(layer.outW);
    m.positionsPerPartition = std::int64_t(
        ceilDiv(positions, std::uint64_t(m.partitionsPerChannel)));
    m.serialChannels =
        layer.kind == nn::LayerKind::Depthwise ? 1 : layer.outC;
    const std::int64_t accumChannels =
        layer.kind == nn::LayerKind::Depthwise ? 1 : layer.inC;
    m.adcGroupsPerOutput = std::int64_t(
        ceilDiv(std::uint64_t(accumChannels),
                std::uint64_t(cfg.subarraysPerAdc)));
    m.windowCells = std::int64_t(layer.kh) * layer.kw;
    return m;
}

} // namespace core
} // namespace inca
