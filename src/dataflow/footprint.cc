#include "dataflow/footprint.hh"

#include "common/cache.hh"

namespace inca {
namespace dataflow {

namespace {

EvalCache<FootprintRow> &
footprintCache()
{
    static EvalCache<FootprintRow> *c =
        new EvalCache<FootprintRow>("dataflow.footprint");
    return *c;
}

} // namespace

FootprintRow
footprint(const nn::NetworkDesc &net, int bitPrecision)
{
    CacheKey key;
    key.add("footprint");
    appendKey(key, net);
    key.add(bitPrecision);
    return footprintCache().getOrCompute(key, [&] {
        const double bytesPerValue = double(bitPrecision) / 8.0;
        const double weights =
            double(net.totalWeights()) * bytesPerValue;
        const double activations =
            double(net.totalActivations()) * bytesPerValue;

        FootprintRow row;
        // Baseline: weights + transposed weights + activations in RRAM;
        // activations staged through buffers.
        row.baseline.rram = 2.0 * weights + activations;
        row.baseline.buffers = activations;
        // INCA: activations in RRAM (recycled for errors); weights in
        // buffers (transposed view is a read-order change, not a copy).
        row.inca.rram = activations;
        row.inca.buffers = weights;
        return row;
    });
}

double
toMiB(Bytes b)
{
    return b / (1024.0 * 1024.0);
}

} // namespace dataflow
} // namespace inca
