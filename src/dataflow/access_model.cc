#include "dataflow/access_model.hh"

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace dataflow {

void
appendKey(CacheKey &key, const AccessConfig &cfg)
{
    key.add("access-cfg")
        .add(cfg.bitPrecision)
        .add(cfg.busWidthBits)
        .add(cfg.includeFullyConnected);
}

namespace {

/** Network-level access totals are memoized per (net, cfg, phase). */
EvalCache<AccessSummary> &
accessCache()
{
    static EvalCache<AccessSummary> *c =
        new EvalCache<AccessSummary>("dataflow.access");
    return *c;
}

} // namespace

std::uint64_t
fetchWordsPerOutput(const nn::LayerDesc &layer, const AccessConfig &cfg)
{
    if (!layer.isConvLike())
        return 0;
    const auto values = std::uint64_t(layer.accumDepth());
    return ceilDiv(values * std::uint64_t(cfg.bitPrecision),
                   std::uint64_t(cfg.busWidthBits));
}

std::uint64_t
saveWords(const nn::LayerDesc &layer, const AccessConfig &cfg)
{
    if (!layer.isConvLike())
        return 0;
    const auto perPosition =
        ceilDiv(std::uint64_t(layer.outC) *
                    std::uint64_t(cfg.bitPrecision),
                std::uint64_t(cfg.busWidthBits));
    return perPosition * std::uint64_t(layer.outH) *
           std::uint64_t(layer.outW);
}

std::uint64_t
wsLayerAccesses(const nn::LayerDesc &layer, const AccessConfig &cfg)
{
    if (!layer.isConvLike())
        return 0;
    const std::uint64_t positions =
        std::uint64_t(layer.outH) * std::uint64_t(layer.outW);
    return fetchWordsPerOutput(layer, cfg) * positions +
           saveWords(layer, cfg);
}

std::uint64_t
isLayerAccesses(const nn::LayerDesc &layer, const AccessConfig &cfg)
{
    if (!layer.isConvLike())
        return 0;
    // Depthwise layers fetch one kernel per channel; regular layers one
    // kernel stack per output channel.
    const auto kernels = std::uint64_t(
        layer.kind == nn::LayerKind::Depthwise ? layer.inC : layer.outC);
    return fetchWordsPerOutput(layer, cfg) * kernels;
}

AccessSummary
networkAccesses(const nn::NetworkDesc &net, const AccessConfig &cfg)
{
    CacheKey key;
    key.add("inference");
    appendKey(key, net);
    appendKey(key, cfg);
    return accessCache().getOrCompute(key, [&] {
        AccessSummary sum;
        for (const auto &layer : net.layers) {
            if (!cfg.includeFullyConnected &&
                layer.kind == nn::LayerKind::FullyConnected) {
                continue;
            }
            sum.baseline += wsLayerAccesses(layer, cfg);
            sum.inca += isLayerAccesses(layer, cfg);
        }
        return sum;
    });
}

AccessSummary
networkTrainingAccesses(const nn::NetworkDesc &net,
                        const AccessConfig &cfg)
{
    CacheKey key;
    key.add("training");
    appendKey(key, net);
    appendKey(key, cfg);
    return accessCache().getOrCompute(key, [&] {
        AccessSummary sum;
        for (const auto &layer : net.layers) {
            if (!layer.isConvLike())
                continue;
            if (!cfg.includeFullyConnected &&
                layer.kind == nn::LayerKind::FullyConnected) {
                continue;
            }
            // Baseline training (PipeLayer-style): the forward traffic
            // repeats in the backward pass; updated weights reprogram
            // the crossbars in situ, not through the buffers.
            sum.baseline += 2 * wsLayerAccesses(layer, cfg);
            // INCA training: the backward pass fetches the transposed
            // weights from the same buffer bytes, doubling the forward
            // count (Section V-B-1).
            sum.inca += 2 * isLayerAccesses(layer, cfg);
        }
        return sum;
    });
}

} // namespace dataflow
} // namespace inca
