#include "dataflow/unroll.hh"

namespace inca {
namespace dataflow {

std::int64_t
unrolledInputCount(const nn::LayerDesc &layer)
{
    if (!layer.isConvLike())
        return 0;
    // Every output position stores its full window. Depthwise layers
    // unroll per channel (K_H * K_W each, C channels), which sums to
    // the same K_H * K_W * C elements per position.
    const std::int64_t window = std::int64_t(layer.kh) * layer.kw *
                                layer.inC;
    return window * layer.outH * layer.outW;
}

std::int64_t
directInputCount(const nn::LayerDesc &layer)
{
    if (!layer.isConvLike())
        return 0;
    return layer.inputCount();
}

UnrollSummary
unrollComparison(const nn::NetworkDesc &net)
{
    UnrollSummary sum;
    for (const auto &layer : net.layers) {
        sum.unrolled += unrolledInputCount(layer);
        sum.direct += directInputCount(layer);
    }
    return sum;
}

} // namespace dataflow
} // namespace inca
