#include "dataflow/unroll.hh"

#include "common/cache.hh"

namespace inca {
namespace dataflow {

namespace {

EvalCache<UnrollSummary> &
unrollCache()
{
    static EvalCache<UnrollSummary> *c =
        new EvalCache<UnrollSummary>("dataflow.unroll");
    return *c;
}

} // namespace

std::int64_t
unrolledInputCount(const nn::LayerDesc &layer)
{
    if (!layer.isConvLike())
        return 0;
    // Every output position stores its full window. Depthwise layers
    // unroll per channel (K_H * K_W each, C channels), which sums to
    // the same K_H * K_W * C elements per position.
    const std::int64_t window = std::int64_t(layer.kh) * layer.kw *
                                layer.inC;
    return window * layer.outH * layer.outW;
}

std::int64_t
directInputCount(const nn::LayerDesc &layer)
{
    if (!layer.isConvLike())
        return 0;
    return layer.inputCount();
}

UnrollSummary
unrollComparison(const nn::NetworkDesc &net)
{
    CacheKey key;
    key.add("unroll");
    appendKey(key, net);
    return unrollCache().getOrCompute(key, [&] {
        UnrollSummary sum;
        for (const auto &layer : net.layers) {
            sum.unrolled += unrolledInputCount(layer);
            sum.direct += directInputCount(layer);
        }
        return sum;
    });
}

} // namespace dataflow
} // namespace inca
