/**
 * @file
 * Buffer-access counting for WS vs. IS dataflow (paper Eqs. 5 & 6,
 * Fig. 7a, Table III).
 *
 * Eq. 5 -- fetch words per output element:
 *     ceil(K_H * K_W * C * bit_precision / bus_width)
 * Eq. 6 -- save words per layer (WS only; ISAAC's pipeline redirects
 * every output to eDRAM):
 *     ceil(N * bit_precision / bus_width) * O_H * O_W
 *
 * Per layer (Table III):
 *     baseline accesses = Eq5 * O_H * O_W + Eq6
 *     INCA accesses     = Eq5 * N          (fetched weights are reused
 *                                           across the whole channel)
 * Training roughly doubles INCA's count (transposed-weight fetches,
 * Section V-B-1) while the baseline's stays pipeline-dominated.
 */

#ifndef INCA_DATAFLOW_ACCESS_MODEL_HH
#define INCA_DATAFLOW_ACCESS_MODEL_HH

#include <cstdint>

#include "nn/network.hh"

namespace inca {

class CacheKey;

namespace dataflow {

/** Precision / bus configuration of the access analysis. */
struct AccessConfig
{
    int bitPrecision = 8; ///< data precision (Table II: 8-bit)
    int busWidthBits = 256;
    /**
     * Include fully-connected layers in the network totals. The
     * paper's Table III / Fig. 7a count the convolution traffic
     * ("access to load and save is necessary at each convolution"):
     * with FC included, INCA's VGG16 count would be dominated by the
     * 25088 x 4096 classifier, while the paper reports ~460 k -- which
     * is exactly the conv-only sum under 8-bit / 256-bit.
     */
    bool includeFullyConnected = false;
};

/** Append every field of @p cfg to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const AccessConfig &cfg);

/** Eq. 5: fetch words per output element of @p layer. */
std::uint64_t fetchWordsPerOutput(const nn::LayerDesc &layer,
                                  const AccessConfig &cfg);

/** Eq. 6: save words for the whole @p layer (WS pipelining). */
std::uint64_t saveWords(const nn::LayerDesc &layer,
                        const AccessConfig &cfg);

/** Baseline (WS) buffer accesses for one layer. */
std::uint64_t wsLayerAccesses(const nn::LayerDesc &layer,
                              const AccessConfig &cfg);

/** INCA (IS) buffer accesses for one layer. */
std::uint64_t isLayerAccesses(const nn::LayerDesc &layer,
                              const AccessConfig &cfg);

/** Per-network totals over all conv-like layers. */
struct AccessSummary
{
    std::uint64_t baseline = 0;
    std::uint64_t inca = 0;

    double ratio() const
    {
        return inca == 0 ? 0.0 : double(baseline) / double(inca);
    }
};

/** Inference access totals (Table III / Fig. 7a). */
AccessSummary networkAccesses(const nn::NetworkDesc &net,
                              const AccessConfig &cfg);

/**
 * Training access totals: INCA doubles (transposed weights fetched
 * from the same buffer), the baseline adds weight write-backs.
 */
AccessSummary networkTrainingAccesses(const nn::NetworkDesc &net,
                                      const AccessConfig &cfg);

} // namespace dataflow
} // namespace inca

#endif // INCA_DATAFLOW_ACCESS_MODEL_HH
