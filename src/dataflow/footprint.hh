/**
 * @file
 * Memory-footprint model (paper Table IV).
 *
 * Minimum capacity to support both inference and training:
 *  - WS baseline: RRAM must hold the weights, a transposed copy of the
 *    weights for backprop, and the activations/errors (Limitation 2);
 *    buffers must stage the activations in flight.
 *  - INCA: RRAM holds only the activations (errors later overwrite
 *    them in place, Section IV-C); buffers hold the weights, and the
 *    transposed weights are just a different read order of the same
 *    buffer bytes.
 * All capacities are per image at the configured precision.
 */

#ifndef INCA_DATAFLOW_FOOTPRINT_HH
#define INCA_DATAFLOW_FOOTPRINT_HH

#include "common/units.hh"
#include "nn/network.hh"

namespace inca {
namespace dataflow {

/** RRAM + buffer requirement of one design point. */
struct Footprint
{
    Bytes rram = 0.0;
    Bytes buffers = 0.0;
};

/** Footprints of both designs for one network (one Table IV row). */
struct FootprintRow
{
    Footprint baseline;
    Footprint inca;
};

/** Compute the Table IV row for @p net at @p bitPrecision. */
FootprintRow footprint(const nn::NetworkDesc &net, int bitPrecision = 8);

/** Convert to the paper's MiB. */
double toMiB(Bytes b);

} // namespace dataflow
} // namespace inca

#endif // INCA_DATAFLOW_FOOTPRINT_HH
