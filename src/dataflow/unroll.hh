/**
 * @file
 * Unrolled (GEMM) vs. direct-convolution RRAM counting (paper Fig. 7b).
 *
 * An IS design that unrolled its inputs im2col-style would store every
 * kernel window separately: K_H * K_W * C * O_H * O_W values per layer
 * (overlapping windows duplicate elements). Direct convolution keeps
 * each input element once: C * H * W. The ratio is the Fig. 7b "steep
 * increase" that motivates INCA's 2T1R direct-convolution array.
 */

#ifndef INCA_DATAFLOW_UNROLL_HH
#define INCA_DATAFLOW_UNROLL_HH

#include <cstdint>

#include "nn/network.hh"

namespace inca {
namespace dataflow {

/** Input elements an unrolled (im2col) IS layout would store. */
std::int64_t unrolledInputCount(const nn::LayerDesc &layer);

/** Input elements the direct-convolution layout stores. */
std::int64_t directInputCount(const nn::LayerDesc &layer);

/** Network-total unrolled vs. direct counts and their ratio. */
struct UnrollSummary
{
    std::int64_t unrolled = 0;
    std::int64_t direct = 0;

    double ratio() const
    {
        return direct == 0 ? 0.0 : double(unrolled) / double(direct);
    }
};

/** Fig. 7b data point for @p net. */
UnrollSummary unrollComparison(const nn::NetworkDesc &net);

} // namespace dataflow
} // namespace inca

#endif // INCA_DATAFLOW_UNROLL_HH
