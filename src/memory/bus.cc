#include "memory/bus.hh"

// Bus arithmetic is header-only; translation unit reserved for future
// interconnect models (NoC, H-tree).

namespace inca {
namespace memory {
} // namespace memory
} // namespace inca
