#include "memory/bus.hh"

#include "common/cache.hh"

namespace inca {
namespace memory {

void
appendKey(CacheKey &key, const Bus &b)
{
    key.add("bus").add(b.widthBits);
}

} // namespace memory
} // namespace inca
