/**
 * @file
 * On-chip bus width arithmetic.
 *
 * The paper's access-count analysis (Eqs. 5 and 6) counts buffer
 * accesses in bus-width words: moving V values of P bits each over a
 * W-bit bus takes ceil(V * P / W) accesses. Both architectures use a
 * 256-bit buffer port (Table II).
 */

#ifndef INCA_MEMORY_BUS_HH
#define INCA_MEMORY_BUS_HH

#include <cstdint>

#include "common/units.hh"

namespace inca {

class CacheKey;

namespace memory {

/** A fixed-width data bus. */
struct Bus
{
    int widthBits = 256; ///< Table II "Buffer Bitwidth"

    /** Bus words needed to move @p values of @p bits each. */
    std::uint64_t
    words(std::uint64_t values, int bits) const
    {
        return ceilDiv(values * std::uint64_t(bits),
                       std::uint64_t(widthBits));
    }
};

/** Append every field of @p b to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const Bus &b);

} // namespace memory
} // namespace inca

#endif // INCA_MEMORY_BUS_HH
