#include "memory/sram.hh"

#include "common/cache.hh"

namespace inca {
namespace memory {

SramBuffer
paperBuffer()
{
    return SramBuffer{};
}

void
appendKey(CacheKey &key, const SramBuffer &b)
{
    key.add("sram").add(b.capacity);
    appendKey(key, b.port);
    key.add(b.readEnergyPerBit)
        .add(b.writeEnergyPerBit)
        .add(b.accessLatency);
}

} // namespace memory
} // namespace inca
