#include "memory/sram.hh"

namespace inca {
namespace memory {

SramBuffer
paperBuffer()
{
    return SramBuffer{};
}

} // namespace memory
} // namespace inca
