/**
 * @file
 * On-chip H-tree interconnect model.
 *
 * NeuroSim-style frameworks charge the wire energy of moving data
 * between a tile's buffer and its macros together with the buffer
 * access; this module makes that wire cost explicit so the buffer
 * constants in memory/sram.hh are auditable. An H-tree over N leaves
 * has log2(N) levels; a transfer from the root (buffer) to one leaf
 * (macro) traverses one branch per level, with branch lengths halving
 * downward from the tile edge.
 */

#ifndef INCA_MEMORY_INTERCONNECT_HH
#define INCA_MEMORY_INTERCONNECT_HH

#include <cstdint>

#include "common/units.hh"

namespace inca {
namespace memory {

/** An H-tree distributing a tile buffer's port to its macros. */
struct HTree
{
    int leaves = 12;          ///< macros per tile (Table II)
    Meters tileSide = 0.6e-3; ///< tile edge length
    /** Wire energy per bit per millimeter at 22 nm (NeuroSim-range). */
    Joules energyPerBitPerMm = 0.08e-12;
    /** Wire delay per millimeter (repeated wire). */
    Seconds delayPerMm = 60e-12;

    /** Number of tree levels (ceil log2 of the leaf count). */
    int levels() const;

    /**
     * Total wire length from the root to one leaf: branch lengths
     * halve per level starting from half the tile side.
     */
    Meters pathLength() const;

    /** Energy to move @p bits from the buffer to one macro. */
    Joules transferEnergy(double bits) const;

    /** Wire delay of one root-to-leaf transfer. */
    Seconds transferDelay() const;

    /**
     * Energy to broadcast @p bits to ALL leaves (every branch of the
     * tree toggles once).
     */
    Joules broadcastEnergy(double bits) const;

    /** Total wire length of the whole tree. */
    Meters totalWireLength() const;
};

} // namespace memory
} // namespace inca

#endif // INCA_MEMORY_INTERCONNECT_HH
