#include "memory/dram.hh"

#include <algorithm>
#include <cmath>

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace memory {

Seconds
Dram::loadedLatency(double utilization) const
{
    inca_assert(utilization >= 0.0 && utilization < 1.0,
                "utilization %f out of [0,1)", utilization);
    // Base queueing term: mild M/M/1 growth across the whole range.
    const double queueing = 1.0 / (1.0 - 0.5 * utilization);
    // Past the knee the latency grows near-exponentially (Fig. 1b):
    // each extra ~3 % of utilization roughly doubles the excess delay.
    double saturation = 0.0;
    if (utilization > kneeUtilization) {
        const double over = utilization - kneeUtilization;
        saturation = std::expm1(over / 0.045);
    }
    return unloadedLatency * (queueing + saturation);
}

Dram
paperDram()
{
    return Dram{};
}

void
appendKey(CacheKey &key, const Dram &d)
{
    key.add("dram")
        .add(d.capacity)
        .add(d.peakBandwidth)
        .add(d.energyPerByte)
        .add(d.unloadedLatency)
        .add(d.kneeUtilization);
}

} // namespace memory
} // namespace inca
