/**
 * @file
 * Off-chip HBM2 DRAM model.
 *
 * Energy follows the paper's own assumption: 32 pJ per 8-bit access
 * (Section V-A, taken from NeuroSim's HBM2 estimation). Latency uses a
 * queueing-delay model reproducing Figure 1b's observation (from [34],
 * [49]) that loaded latency increases sharply -- roughly exponentially
 * -- beyond ~80 % of the maximum sustained bandwidth: below the knee
 * the latency is near-constant; above it an M/M/1-like 1/(1-u) blowup
 * with an exponential sharpening term takes over.
 */

#ifndef INCA_MEMORY_DRAM_HH
#define INCA_MEMORY_DRAM_HH

#include "common/units.hh"

namespace inca {

class CacheKey;

namespace memory {

/** HBM2 stack model. */
struct Dram
{
    Bytes capacity = 8.0 * 1024.0 * 1024.0 * 1024.0; ///< 8 GB HBM2
    double peakBandwidth = 256e9;  ///< bytes/s, one HBM2 stack
    Joules energyPerByte = 32e-12; ///< paper: 32 pJ per 8-bit
    Seconds unloadedLatency = 100e-9; ///< idle access latency
    double kneeUtilization = 0.80;    ///< Fig. 1b knee position

    /** Energy to move @p bytes. */
    Joules accessEnergy(double bytes) const
    {
        return bytes * energyPerByte;
    }

    /**
     * Loaded access latency at sustained-bandwidth utilization
     * @p utilization in [0, 1).
     */
    Seconds loadedLatency(double utilization) const;

    /** Time to stream @p bytes at full bandwidth. */
    Seconds streamTime(double bytes) const
    {
        return bytes / peakBandwidth;
    }
};

/** Table II DRAM. */
Dram paperDram();

/** Append every field of @p d to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const Dram &d);

} // namespace memory
} // namespace inca

#endif // INCA_MEMORY_DRAM_HH
