#include "memory/interconnect.hh"

#include <cmath>

#include "common/logging.hh"

namespace inca {
namespace memory {

int
HTree::levels() const
{
    inca_assert(leaves >= 1, "H-tree needs at least one leaf");
    int lv = 0;
    int n = 1;
    while (n < leaves) {
        n *= 2;
        ++lv;
    }
    return lv;
}

Meters
HTree::pathLength() const
{
    // Branch lengths: tileSide/2, tileSide/4, ... one per level.
    Meters length = 0.0;
    Meters branch = tileSide / 2.0;
    for (int lv = 0; lv < levels(); ++lv) {
        length += branch;
        branch /= 2.0;
    }
    return length;
}

Joules
HTree::transferEnergy(double bits) const
{
    return bits * energyPerBitPerMm * (pathLength() * 1e3);
}

Seconds
HTree::transferDelay() const
{
    return delayPerMm * (pathLength() * 1e3);
}

Joules
HTree::broadcastEnergy(double bits) const
{
    return bits * energyPerBitPerMm * (totalWireLength() * 1e3);
}

Meters
HTree::totalWireLength() const
{
    // Level l has 2^l branches of length tileSide / 2^(l+1).
    Meters total = 0.0;
    for (int lv = 0; lv < levels(); ++lv) {
        const double branches = std::pow(2.0, lv);
        total += branches * tileSide / std::pow(2.0, lv + 1);
    }
    return total;
}

} // namespace memory
} // namespace inca
