/**
 * @file
 * On-chip SRAM buffer model.
 *
 * Both architectures use 64 KB buffers with a 256-bit port (Table II).
 * Access energy is charged per bit moved; the per-bit constants are in
 * the range NeuroSim reports for ~64 KB 22 nm SRAM macros. The buffer
 * area constant reproduces Table V's 13.944 mm^2 for 168 buffers.
 */

#ifndef INCA_MEMORY_SRAM_HH
#define INCA_MEMORY_SRAM_HH

#include <cstdint>

#include "common/units.hh"
#include "memory/bus.hh"

namespace inca {

class CacheKey;

namespace memory {

/** A single-ported on-chip SRAM buffer. */
struct SramBuffer
{
    Bytes capacity = 64.0 * 1024.0; ///< Table II "Buffer Size"
    Bus port;                       ///< 256-bit access port
    // Per-bit energies include the H-tree transport between the tile
    // buffer and the macros (NeuroSim charges interconnect with the
    // access; wire energy dominates the bitcell read itself).
    Joules readEnergyPerBit = 1.0e-12;
    Joules writeEnergyPerBit = 1.2e-12;
    Seconds accessLatency = 1.5e-9; ///< one ported access

    /** Energy to read @p words bus words. */
    Joules
    readEnergy(double words) const
    {
        return words * double(port.widthBits) * readEnergyPerBit;
    }

    /** Energy to write @p words bus words. */
    Joules
    writeEnergy(double words) const
    {
        return words * double(port.widthBits) * writeEnergyPerBit;
    }

    /** Energy to read one full bus word. */
    Joules readWordEnergy() const { return readEnergy(1.0); }

    /** Energy to write one full bus word. */
    Joules writeWordEnergy() const { return writeEnergy(1.0); }

    /** Area of one buffer instance (Table V anchor). */
    SquareMeters area() const
    {
        // 13.944 mm^2 for 168 instances of 64 KB.
        return 13.944e-6 / 168.0 * (capacity / (64.0 * 1024.0));
    }
};

/** Table II buffer. */
SramBuffer paperBuffer();

/** Append every field of @p b to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const SramBuffer &b);

} // namespace memory
} // namespace inca

#endif // INCA_MEMORY_SRAM_HH
