#include "nn/network.hh"

#include <cstdio>
#include <sstream>

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace nn {

std::vector<LayerDesc>
NetworkDesc::convLayers() const
{
    std::vector<LayerDesc> out;
    for (const auto &l : layers) {
        if (l.isConvLike())
            out.push_back(l);
    }
    return out;
}

std::int64_t
NetworkDesc::totalWeights() const
{
    std::int64_t total = 0;
    for (const auto &l : layers)
        total += l.weightCount();
    return total;
}

std::int64_t
NetworkDesc::totalMacs() const
{
    std::int64_t total = 0;
    for (const auto &l : layers)
        total += l.macs();
    return total;
}

std::int64_t
NetworkDesc::totalActivations() const
{
    std::int64_t total = 0;
    for (const auto &l : layers) {
        if (l.isConvLike())
            total += l.inputCount();
    }
    return total;
}

bool
NetworkDesc::isLightModel() const
{
    for (const auto &l : layers) {
        if (l.isLight())
            return true;
    }
    return false;
}

std::string
NetworkDesc::str() const
{
    std::ostringstream os;
    os << name << " (" << layers.size() << " layers, "
       << totalWeights() << " weights, " << totalMacs() << " MACs)\n";
    for (const auto &l : layers)
        os << "  " << l.str() << "\n";
    return os.str();
}

NetBuilder::NetBuilder(std::string name, std::int64_t c, std::int64_t h,
                       std::int64_t w)
    : c_(c), h_(h), w_(w)
{
    net_.name = std::move(name);
}

LayerDesc &
NetBuilder::push(LayerKind kind, const char *stem)
{
    LayerDesc l;
    l.kind = kind;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%d", stem, ++counter_);
    l.name = buf;
    l.inC = c_;
    l.inH = h_;
    l.inW = w_;
    net_.layers.push_back(l);
    return net_.layers.back();
}

namespace {

std::int64_t
outDim(std::int64_t in, int k, int stride, int pad)
{
    inca_assert(in + 2 * pad >= k,
                "window %d larger than padded input %lld", k,
                (long long)(in + 2 * pad));
    return (in + 2 * pad - k) / stride + 1;
}

} // namespace

NetBuilder &
NetBuilder::conv(std::int64_t outC, int k, int stride, int pad)
{
    if (pad < 0)
        pad = k / 2;
    LayerDesc &l = push(k == 1 ? LayerKind::Pointwise : LayerKind::Conv,
                        k == 1 ? "pwconv" : "conv");
    l.kh = l.kw = k;
    l.stride = stride;
    l.pad = pad;
    l.outC = outC;
    l.outH = outDim(h_, k, stride, pad);
    l.outW = outDim(w_, k, stride, pad);
    c_ = l.outC;
    h_ = l.outH;
    w_ = l.outW;
    return *this;
}

NetBuilder &
NetBuilder::dwconv(int k, int stride, int pad)
{
    if (pad < 0)
        pad = k / 2;
    LayerDesc &l = push(LayerKind::Depthwise, "dwconv");
    l.kh = l.kw = k;
    l.stride = stride;
    l.pad = pad;
    l.outC = c_;
    l.outH = outDim(h_, k, stride, pad);
    l.outW = outDim(w_, k, stride, pad);
    h_ = l.outH;
    w_ = l.outW;
    return *this;
}

NetBuilder &
NetBuilder::pwconv(std::int64_t outC, int stride)
{
    return conv(outC, 1, stride, 0);
}

NetBuilder &
NetBuilder::fc(std::int64_t outF)
{
    LayerDesc &l = push(LayerKind::FullyConnected, "fc");
    // An FC layer is a 1x1 conv over a 1x1 map whose channel count is
    // the flattened input size.
    l.inC = c_ * h_ * w_;
    l.inH = l.inW = 1;
    l.kh = l.kw = 1;
    l.outC = outF;
    l.outH = l.outW = 1;
    c_ = outF;
    h_ = w_ = 1;
    return *this;
}

NetBuilder &
NetBuilder::maxpool(int k, int stride, int pad)
{
    if (stride == 0)
        stride = k;
    LayerDesc &l = push(LayerKind::MaxPool, "maxpool");
    l.kh = l.kw = k;
    l.stride = stride;
    l.pad = pad;
    l.outC = c_;
    l.outH = outDim(h_, k, stride, pad);
    l.outW = outDim(w_, k, stride, pad);
    h_ = l.outH;
    w_ = l.outW;
    return *this;
}

NetBuilder &
NetBuilder::gavgpool()
{
    LayerDesc &l = push(LayerKind::AvgPool, "avgpool");
    l.kh = int(h_);
    l.kw = int(w_);
    l.stride = 1;
    l.outC = c_;
    l.outH = l.outW = 1;
    h_ = w_ = 1;
    return *this;
}

NetBuilder &
NetBuilder::relu()
{
    LayerDesc &l = push(LayerKind::ReLU, "relu");
    l.outC = c_;
    l.outH = h_;
    l.outW = w_;
    return *this;
}

NetBuilder &
NetBuilder::add()
{
    LayerDesc &l = push(LayerKind::Add, "add");
    l.outC = c_;
    l.outH = h_;
    l.outW = w_;
    return *this;
}

NetBuilder &
NetBuilder::sideConv(std::int64_t inC, std::int64_t inH, std::int64_t inW,
                     std::int64_t outC, int k, int stride, int pad)
{
    LayerDesc &l = push(k == 1 ? LayerKind::Pointwise : LayerKind::Conv,
                        "sideconv");
    l.inC = inC;
    l.inH = inH;
    l.inW = inW;
    l.kh = l.kw = k;
    l.stride = stride;
    l.pad = pad;
    l.outC = outC;
    l.outH = outDim(inH, k, stride, pad);
    l.outW = outDim(inW, k, stride, pad);
    return *this;
}

NetworkDesc
NetBuilder::build(int numClasses)
{
    net_.numClasses = numClasses;
    return std::move(net_);
}

void
appendKey(CacheKey &key, const NetworkDesc &net)
{
    key.add("network")
        .add(net.name)
        .add(net.numClasses)
        .add(std::int64_t(net.layers.size()));
    for (const auto &l : net.layers) {
        key.add(l.name);
        appendKey(key, l);
    }
}

} // namespace nn
} // namespace inca
