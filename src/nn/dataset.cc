#include "nn/dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace inca {
namespace nn {

using tensor::Tensor;

std::pair<Tensor, std::vector<int>>
Dataset::batch(std::int64_t begin, std::int64_t n) const
{
    const std::int64_t total = count();
    inca_assert(begin >= 0 && begin + n <= total,
                "batch [%lld, %lld) out of range %lld", (long long)begin,
                (long long)(begin + n), (long long)total);
    const std::int64_t c = images.dim(1), h = images.dim(2),
                       w = images.dim(3);
    Tensor out({n, c, h, w});
    const std::int64_t per = c * h * w;
    for (std::int64_t i = 0; i < n * per; ++i)
        out[i] = images[begin * per + i];
    std::vector<int> lab(labels.begin() + begin,
                         labels.begin() + begin + n);
    return {std::move(out), std::move(lab)};
}

void
Dataset::shuffle(Rng &rng)
{
    const std::int64_t n = count();
    const std::int64_t per = images.size() / std::max<std::int64_t>(n, 1);
    for (std::int64_t i = n - 1; i > 0; --i) {
        const auto j = std::int64_t(rng.below(std::uint64_t(i + 1)));
        if (i == j)
            continue;
        std::swap(labels[size_t(i)], labels[size_t(j)]);
        for (std::int64_t e = 0; e < per; ++e)
            std::swap(images[i * per + e], images[j * per + e]);
    }
}

namespace {

/** One Gaussian bump. */
struct Bump
{
    double cx, cy, sigma, amp;
};

/** Class prototype: a handful of bumps. */
using Prototype = std::vector<Bump>;

Prototype
makePrototype(Rng &rng, std::int64_t size)
{
    Prototype proto;
    const int bumps = 2 + int(rng.below(3));
    for (int i = 0; i < bumps; ++i) {
        Bump b;
        b.cx = rng.uniform(0.15, 0.85) * double(size);
        b.cy = rng.uniform(0.15, 0.85) * double(size);
        b.sigma = rng.uniform(0.08, 0.22) * double(size);
        b.amp = rng.uniform(0.6, 1.0) * (rng.below(2) ? 1.0 : -1.0);
        proto.push_back(b);
    }
    return proto;
}

void
renderSample(Tensor &images, std::int64_t index, const Prototype &proto,
             const SyntheticSpec &spec, Rng &rng)
{
    const std::int64_t c = spec.channels, hw = spec.size;
    const double shiftX = double(std::int64_t(rng.below(3)) - 1);
    const double shiftY = double(std::int64_t(rng.below(3)) - 1);
    for (std::int64_t ic = 0; ic < c; ++ic) {
        // Channels see the prototype at channel-dependent phase so
        // multichannel tasks are not trivially redundant.
        const double chScale = 1.0 - 0.2 * double(ic);
        for (std::int64_t y = 0; y < hw; ++y) {
            for (std::int64_t x = 0; x < hw; ++x) {
                double v = 0.0;
                for (const auto &b : proto) {
                    const double dx = double(x) - (b.cx + shiftX);
                    const double dy = double(y) - (b.cy + shiftY);
                    v += b.amp * std::exp(-(dx * dx + dy * dy) /
                                          (2.0 * b.sigma * b.sigma));
                }
                v = v * chScale + rng.gaussian(0.0, spec.pixelNoise);
                images.at(index, ic, y, x) = float(v);
            }
        }
    }
}

Dataset
makeSplit(const std::vector<Prototype> &protos, int perClass,
          const SyntheticSpec &spec, Rng &rng)
{
    const std::int64_t n = std::int64_t(protos.size()) * perClass;
    Dataset ds;
    ds.images = Tensor({n, spec.channels, spec.size, spec.size});
    ds.labels.resize(size_t(n));
    std::int64_t idx = 0;
    for (size_t cls = 0; cls < protos.size(); ++cls) {
        for (int i = 0; i < perClass; ++i, ++idx) {
            renderSample(ds.images, idx, protos[cls], spec, rng);
            ds.labels[size_t(idx)] = int(cls);
        }
    }
    ds.shuffle(rng);
    return ds;
}

} // namespace

DatasetPair
makeSynthetic(const SyntheticSpec &spec)
{
    inca_assert(spec.numClasses >= 2, "need at least two classes");
    Rng rng(spec.seed);
    std::vector<Prototype> protos;
    protos.reserve(size_t(spec.numClasses));
    for (int cls = 0; cls < spec.numClasses; ++cls)
        protos.push_back(makePrototype(rng, spec.size));

    DatasetPair pair;
    pair.train = makeSplit(protos, spec.trainPerClass, spec, rng);
    pair.test = makeSplit(protos, spec.testPerClass, spec, rng);
    return pair;
}

} // namespace nn
} // namespace inca
