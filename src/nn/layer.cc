#include "nn/layer.hh"

#include <cstdio>

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace nn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Depthwise: return "dwconv";
      case LayerKind::Pointwise: return "pwconv";
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::AvgPool: return "avgpool";
      case LayerKind::ReLU: return "relu";
      case LayerKind::Add: return "add";
    }
    panic("unknown layer kind %d", int(kind));
}

bool
LayerDesc::isConvLike() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Depthwise:
      case LayerKind::Pointwise:
      case LayerKind::FullyConnected:
        return true;
      default:
        return false;
    }
}

std::int64_t
LayerDesc::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pointwise:
      case LayerKind::FullyConnected:
        return std::int64_t(kh) * kw * inC * outC;
      case LayerKind::Depthwise:
        return std::int64_t(kh) * kw * inC;
      default:
        return 0;
    }
}

std::int64_t
LayerDesc::macs() const
{
    if (!isConvLike())
        return 0;
    return accumDepth() * outputCount();
}

std::int64_t
LayerDesc::accumDepth() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pointwise:
      case LayerKind::FullyConnected:
        return std::int64_t(kh) * kw * inC;
      case LayerKind::Depthwise:
        return std::int64_t(kh) * kw;
      default:
        return 0;
    }
}

std::string
LayerDesc::str() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%-18s %-8s in %4lldx%3lldx%3lld out %4lldx%3lldx%3lld "
                  "k%dx%d s%d p%d",
                  name.c_str(), layerKindName(kind), (long long)inC,
                  (long long)inH, (long long)inW, (long long)outC,
                  (long long)outH, (long long)outW, kh, kw, stride, pad);
    return buf;
}

void
appendKey(CacheKey &key, const LayerDesc &l)
{
    key.add("layer")
        .add(int(l.kind))
        .add(l.inC)
        .add(l.inH)
        .add(l.inW)
        .add(l.outC)
        .add(l.outH)
        .add(l.outW)
        .add(l.kh)
        .add(l.kw)
        .add(l.stride)
        .add(l.pad);
}

} // namespace nn
} // namespace inca
