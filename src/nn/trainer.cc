#include "nn/trainer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "tensor/ops.hh"

namespace inca {
namespace nn {

TrainResult
train(Sequential &net, const DatasetPair &data, const TrainConfig &config)
{
    Rng rng(config.seed);
    Dataset trainSet = data.train;

    TrainResult result;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        trainSet.shuffle(rng);
        double epochLoss = 0.0;
        std::int64_t batches = 0;
        for (std::int64_t begin = 0;
             begin + config.batchSize <= trainSet.count();
             begin += config.batchSize, ++batches) {
            auto [x, labels] = trainSet.batch(begin, config.batchSize);

            ForwardCtx ctx;
            ctx.training = true;
            ctx.noise = config.noise;
            ctx.rng = &rng;
            tensor::Tensor logits = net.forward(x, ctx);

            auto lossRes = tensor::crossEntropy(logits, labels);
            epochLoss += lossRes.loss;
            net.backward(lossRes.grad);
            net.step(config.lr);
        }

        EvalOptions evalOpts;
        evalOpts.noise = config.noise;
        evalOpts.seed = config.seed + std::uint64_t(epoch) + 1;
        const double acc = evaluate(net, data.test, evalOpts);

        result.epochLoss.push_back(epochLoss /
                                   double(std::max<std::int64_t>(1,
                                                                 batches)));
        result.epochTestAccuracy.push_back(acc);
        if (config.verbose) {
            inform("epoch %2d  loss %.4f  test acc %.1f%%", epoch + 1,
                   result.epochLoss.back(), 100.0 * acc);
        }
    }
    result.finalTestAccuracy = result.epochTestAccuracy.empty()
                                   ? 0.0
                                   : result.epochTestAccuracy.back();
    return result;
}

double
evaluate(Sequential &net, const Dataset &test, const EvalOptions &options)
{
    Rng rng(options.seed);
    ForwardCtx ctx;
    ctx.training = false;
    ctx.noise = options.noise;
    ctx.weightBits = options.weightBits;
    ctx.actBits = options.actBits;
    ctx.rng = &rng;

    int correct = 0;
    const std::int64_t batch = 16;
    for (std::int64_t begin = 0; begin < test.count();
         begin += batch) {
        const std::int64_t n = std::min(batch, test.count() - begin);
        auto [x, labels] = test.batch(begin, n);
        tensor::Tensor logits = net.forward(x, ctx);
        correct += tensor::countCorrect(logits, labels);
    }
    return test.count() == 0 ? 0.0 : double(correct) / double(test.count());
}

} // namespace nn
} // namespace inca
