#include "nn/module.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"

namespace inca {
namespace nn {

using tensor::ConvSpec;
using tensor::Tensor;

namespace {

/**
 * Plain SGD update, parallel over disjoint weight ranges. The noise
 * application stays serial in the caller: it consumes the layer RNG
 * stream in element order, which must not depend on the thread count.
 */
void
sgdUpdate(Tensor &w, const Tensor &dw, float lr)
{
    parallel_for(w.size(), 16384,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         w[i] -= lr * dw[i];
                 });
}

/**
 * Produce the effective parameter tensor for this forward pass: apply
 * weight quantization and, at evaluation time, WS-style RRAM
 * programming noise (deployment writes the weights into nonideal
 * cells). During training the weight-side nonideality instead strikes
 * at every UPDATE (see applyWriteNoise): WS hardware reprograms its
 * weight cells each step and every write adds fresh programming
 * error, so the stored weights accumulate a random walk -- which is
 * why the paper's Table VI shows weight-side noise devastating
 * in-situ training while activation-side noise stays mild.
 */
Tensor
effectiveWeights(const Tensor &w, const ForwardCtx &ctx)
{
    Tensor eff = w;
    if (ctx.weightBits > 0)
        quantizeInPlace(eff, ctx.weightBits);
    if (!ctx.training && ctx.noise.target == NoiseTarget::Weights &&
        ctx.noise.sigma > 0) {
        inca_assert(ctx.rng != nullptr, "noise requires ForwardCtx.rng");
        addRangeNoiseInPlace(eff, ctx.noise.sigma, *ctx.rng);
    }
    return eff;
}

/**
 * RRAM write (programming) noise: each weight update rewrites the
 * cells, and every write perturbs the stored values by the device
 * sigma -- the damage accumulates as a random walk over the training
 * run, which activation-side storage never suffers (activations are
 * consumed immediately after being written).
 */
void
applyWriteNoise(Tensor &w, double sigma, Rng *rng, float clampLimit)
{
    if (sigma <= 0.0 || rng == nullptr)
        return;
    addRangeNoiseInPlace(w, sigma, *rng);
    // Device saturation: a cell's conductance cannot leave its
    // physical on/off window, so the stored values clamp instead of
    // diverging numerically.
    for (std::int64_t i = 0; i < w.size(); ++i)
        w[i] = std::clamp(w[i], -clampLimit, clampLimit);
}

/**
 * Apply IS-style RRAM noise (activations live in RRAM) and activation
 * quantization to a layer output before it is passed on.
 */
void
conditionActivations(Tensor &y, const ForwardCtx &ctx)
{
    if (ctx.actBits > 0)
        quantizeInPlace(y, ctx.actBits);
    if (ctx.noise.target == NoiseTarget::Activations &&
        ctx.noise.sigma > 0) {
        inca_assert(ctx.rng != nullptr, "noise requires ForwardCtx.rng");
        addRangeNoiseInPlace(y, ctx.noise.sigma, *ctx.rng);
    }
}

/** He-normal initialization sigma for a fan-in. */
float
heSigma(std::int64_t fanIn)
{
    return std::sqrt(2.0f / float(fanIn));
}

} // namespace

// ---------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(std::int64_t inC, std::int64_t outC, int k, int stride,
               int pad, Rng &rng)
{
    if (pad < 0)
        pad = k / 2;
    spec_ = ConvSpec{stride, pad};
    w_ = Tensor::randn({outC, inC, k, k}, rng,
                       heSigma(inC * std::int64_t(k) * k));
    dw_ = Tensor::zeros(w_.shape());
    clampLimit_ = 8.0f * w_.absMax();
}

Tensor
Conv2d::forward(const Tensor &x, ForwardCtx &ctx)
{
    wEff_ = effectiveWeights(w_, ctx);
    if (ctx.training) {
        x_ = x;
        writeNoiseSigma_ = ctx.noise.target == NoiseTarget::Weights
                               ? ctx.noise.sigma
                               : 0.0;
        writeNoiseRng_ = ctx.rng;
    }
    Tensor y = tensor::conv2d(x, wEff_, spec_);
    conditionActivations(y, ctx);
    return y;
}

Tensor
Conv2d::backward(const Tensor &dy)
{
    inca_assert(x_.size() > 0, "backward before training forward");
    dw_ += tensor::conv2dWeightGrad(dy, x_, w_.shape(), spec_);
    return tensor::conv2dInputGrad(dy, wEff_, x_.shape(), spec_);
}

void
Conv2d::step(float lr)
{
    sgdUpdate(w_, dw_, lr);
    dw_.fill(0.0f);
    applyWriteNoise(w_, writeNoiseSigma_, writeNoiseRng_, clampLimit_);
}

// ---------------------------------------------------------------------
// DepthwiseConv2d

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, int k, int stride,
                                 int pad, Rng &rng)
{
    if (pad < 0)
        pad = k / 2;
    spec_ = ConvSpec{stride, pad};
    w_ = Tensor::randn({channels, k, k}, rng,
                       heSigma(std::int64_t(k) * k));
    dw_ = Tensor::zeros(w_.shape());
    clampLimit_ = 8.0f * w_.absMax();
}

Tensor
DepthwiseConv2d::forward(const Tensor &x, ForwardCtx &ctx)
{
    wEff_ = effectiveWeights(w_, ctx);
    if (ctx.training) {
        x_ = x;
        writeNoiseSigma_ = ctx.noise.target == NoiseTarget::Weights
                               ? ctx.noise.sigma
                               : 0.0;
        writeNoiseRng_ = ctx.rng;
    }
    Tensor y = tensor::depthwiseConv2d(x, wEff_, spec_);
    conditionActivations(y, ctx);
    return y;
}

Tensor
DepthwiseConv2d::backward(const Tensor &dy)
{
    inca_assert(x_.size() > 0, "backward before training forward");
    dw_ += tensor::depthwiseConv2dWeightGrad(dy, x_, w_.shape(), spec_);
    return tensor::depthwiseConv2dInputGrad(dy, wEff_, x_.shape(), spec_);
}

void
DepthwiseConv2d::step(float lr)
{
    sgdUpdate(w_, dw_, lr);
    dw_.fill(0.0f);
    applyWriteNoise(w_, writeNoiseSigma_, writeNoiseRng_, clampLimit_);
}

// ---------------------------------------------------------------------
// Linear

Linear::Linear(std::int64_t inF, std::int64_t outF, Rng &rng)
{
    w_ = Tensor::randn({inF, outF}, rng, heSigma(inF));
    b_ = Tensor::zeros({outF});
    dw_ = Tensor::zeros(w_.shape());
    db_ = Tensor::zeros(b_.shape());
    clampLimit_ = 8.0f * w_.absMax();
}

Tensor
Linear::forward(const Tensor &x, ForwardCtx &ctx)
{
    wEff_ = effectiveWeights(w_, ctx);
    if (ctx.training) {
        x_ = x;
        writeNoiseSigma_ = ctx.noise.target == NoiseTarget::Weights
                               ? ctx.noise.sigma
                               : 0.0;
        writeNoiseRng_ = ctx.rng;
    }
    Tensor y = tensor::fc(x, wEff_, b_);
    conditionActivations(y, ctx);
    return y;
}

Tensor
Linear::backward(const Tensor &dy)
{
    inca_assert(x_.size() > 0, "backward before training forward");
    dw_ += tensor::fcWeightGrad(dy, x_);
    db_ += tensor::fcBiasGrad(dy);
    return tensor::fcInputGrad(dy, wEff_);
}

void
Linear::step(float lr)
{
    sgdUpdate(w_, dw_, lr);
    for (std::int64_t i = 0; i < b_.size(); ++i)
        b_[i] -= lr * db_[i];
    dw_.fill(0.0f);
    db_.fill(0.0f);
    applyWriteNoise(w_, writeNoiseSigma_, writeNoiseRng_, clampLimit_);
}

// ---------------------------------------------------------------------
// ReLU

Tensor
ReLU::forward(const Tensor &x, ForwardCtx &ctx)
{
    if (ctx.training)
        x_ = x;
    return tensor::relu(x);
}

Tensor
ReLU::backward(const Tensor &dy)
{
    return tensor::reluGrad(dy, x_);
}

// ---------------------------------------------------------------------
// Sigmoid

Tensor
Sigmoid::forward(const Tensor &x, ForwardCtx &ctx)
{
    Tensor y = tensor::sigmoid(x);
    if (ctx.training)
        y_ = y;
    return y;
}

Tensor
Sigmoid::backward(const Tensor &dy)
{
    return tensor::sigmoidGrad(dy, y_);
}

// ---------------------------------------------------------------------
// Tanh

Tensor
Tanh::forward(const Tensor &x, ForwardCtx &ctx)
{
    Tensor y = tensor::tanhAct(x);
    if (ctx.training)
        y_ = y;
    return y;
}

Tensor
Tanh::backward(const Tensor &dy)
{
    return tensor::tanhGrad(dy, y_);
}

// ---------------------------------------------------------------------
// MaxPool2d

MaxPool2d::MaxPool2d(int k, int stride) : k_(k)
{
    spec_ = ConvSpec{stride == 0 ? k : stride, 0};
}

Tensor
MaxPool2d::forward(const Tensor &x, ForwardCtx &ctx)
{
    auto res = tensor::maxPool2d(x, k_, spec_);
    if (ctx.training) {
        argmax_ = res.argmax;
        xShape_ = x.shape();
    }
    return res.output;
}

Tensor
MaxPool2d::backward(const Tensor &dy)
{
    return tensor::maxPool2dGrad(dy, argmax_, xShape_, k_, spec_);
}

// ---------------------------------------------------------------------
// Flatten

Tensor
Flatten::forward(const Tensor &x, ForwardCtx &ctx)
{
    if (ctx.training)
        xShape_ = x.shape();
    const std::int64_t n = x.dim(0);
    return x.reshaped({n, x.size() / n});
}

Tensor
Flatten::backward(const Tensor &dy)
{
    return dy.reshaped(xShape_);
}

// ---------------------------------------------------------------------
// Sequential

Sequential &
Sequential::append(std::unique_ptr<Module> m)
{
    children_.push_back(std::move(m));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, ForwardCtx &ctx)
{
    Tensor cur = x;
    for (size_t i = 0; i < children_.size(); ++i) {
        // The final layer's outputs (logits) leave the PIM domain for
        // the digital softmax / loss unit, so IS activation noise
        // never strikes them -- only values written back into RRAM
        // are perturbed.
        const bool last = i + 1 == children_.size();
        if (last && ctx.noise.target == NoiseTarget::Activations) {
            ForwardCtx headCtx = ctx;
            headCtx.noise = NoiseSpec{};
            cur = children_[i]->forward(cur, headCtx);
        } else {
            cur = children_[i]->forward(cur, ctx);
        }
    }
    return cur;
}

Tensor
Sequential::backward(const Tensor &dy)
{
    Tensor cur = dy;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

void
Sequential::step(float lr)
{
    for (auto &child : children_)
        child->step(lr);
}

std::int64_t
Sequential::parameterCount() const
{
    std::int64_t total = 0;
    for (const auto &child : children_)
        total += child->parameterCount();
    return total;
}

// ---------------------------------------------------------------------
// Residual

Residual::Residual(std::unique_ptr<Module> inner)
    : inner_(std::move(inner))
{
}

Tensor
Residual::forward(const Tensor &x, ForwardCtx &ctx)
{
    Tensor y = inner_->forward(x, ctx);
    y += x;
    if (ctx.training)
        sum_ = y;
    return tensor::relu(y);
}

Tensor
Residual::backward(const Tensor &dy)
{
    Tensor dSum = tensor::reluGrad(dy, sum_);
    Tensor dx = inner_->backward(dSum);
    dx += dSum;
    return dx;
}

void
Residual::step(float lr)
{
    inner_->step(lr);
}

std::int64_t
Residual::parameterCount() const
{
    return inner_->parameterCount();
}

// ---------------------------------------------------------------------

std::unique_ptr<Sequential>
makeSmallResNet(std::int64_t inChannels, std::int64_t imageSize,
                int numClasses, std::int64_t baseChannels, Rng &rng)
{
    const std::int64_t c = baseChannels;
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(inChannels, c, 3, 1, 1, rng);
    net->emplace<ReLU>();

    auto blockInner = std::make_unique<Sequential>();
    blockInner->emplace<Conv2d>(c, c, 3, 1, 1, rng);
    blockInner->emplace<ReLU>();
    blockInner->emplace<Conv2d>(c, c, 3, 1, 1, rng);
    net->append(std::make_unique<Residual>(std::move(blockInner)));

    net->emplace<MaxPool2d>(2);
    net->emplace<Conv2d>(c, 2 * c, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Flatten>();
    const std::int64_t flat = 2 * c * (imageSize / 4) * (imageSize / 4);
    net->emplace<Linear>(flat, numClasses, rng);
    return net;
}

} // namespace nn
} // namespace inca
