#include "nn/noise.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace inca {
namespace nn {

using tensor::Tensor;

void
addRangeNoiseInPlace(Tensor &t, double sigma, Rng &rng)
{
    if (sigma <= 0.0)
        return;
    const double range = t.absMax();
    if (range == 0.0)
        return;
    const double scale = sigma * range;
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] += float(rng.gaussian(0.0, scale));
}

Tensor
addRangeNoise(const Tensor &t, double sigma, Rng &rng)
{
    Tensor out = t;
    addRangeNoiseInPlace(out, sigma, rng);
    return out;
}

void
quantizeInPlace(Tensor &t, int bits)
{
    if (bits <= 0)
        return;
    inca_assert(bits <= 24, "quantize: %d bits exceeds float mantissa",
                bits);
    const float range = t.absMax();
    if (range == 0.0f)
        return;
    // Symmetric grid with 2^(bits-1) - 1 positive levels.
    const float levels = float((1 << (bits - 1)) - 1);
    const float step = range / levels;
    for (std::int64_t i = 0; i < t.size(); ++i)
        t[i] = std::round(t[i] / step) * step;
}

Tensor
quantize(const Tensor &t, int bits)
{
    Tensor out = t;
    quantizeInPlace(out, bits);
    return out;
}

} // namespace nn
} // namespace inca
