/**
 * @file
 * Architectural layer descriptors.
 *
 * The analytic side of the simulator (access counting, energy, latency,
 * utilization, footprint) does not need weight values -- only layer
 * *shapes*. A LayerDesc captures the shape of one network layer using
 * the paper's notation (Fig. 3a): input C x H x W, kernels N x C x KH x
 * KW, output N x OH x OW.
 */

#ifndef INCA_NN_LAYER_HH
#define INCA_NN_LAYER_HH

#include <cstdint>
#include <string>

namespace inca {

class CacheKey;

namespace nn {

/** The layer taxonomy the paper's analysis distinguishes. */
enum class LayerKind
{
    Conv,           ///< regular convolution (accumulates over C)
    Depthwise,      ///< depthwise convolution (no cross-channel accum)
    Pointwise,      ///< 1x1 convolution
    FullyConnected, ///< dense layer (modelled as 1x1 conv over a 1x1 map)
    MaxPool,        ///< max pooling
    AvgPool,        ///< average pooling (incl. global)
    ReLU,           ///< activation
    Add,            ///< residual elementwise addition
};

/** @return a short human-readable name for @p kind. */
const char *layerKindName(LayerKind kind);

/** Shape description of one network layer. */
struct LayerDesc
{
    LayerKind kind = LayerKind::Conv;
    std::string name;

    // Input feature map (per image).
    std::int64_t inC = 0, inH = 0, inW = 0;
    // Output feature map (per image).
    std::int64_t outC = 0, outH = 0, outW = 0;
    // Kernel attributes (paper notation: K_H, K_W; N == outC).
    int kh = 0, kw = 0;
    int stride = 1, pad = 0;

    /** True for layers that hold weights and perform MACs. */
    bool isConvLike() const;

    /** True for the depthwise/pointwise layers of light models. */
    bool isLight() const
    {
        return kind == LayerKind::Depthwise ||
               kind == LayerKind::Pointwise;
    }

    /** Number of weight parameters. */
    std::int64_t weightCount() const;

    /** Input activation element count (per image). */
    std::int64_t inputCount() const { return inC * inH * inW; }

    /** Output activation element count (per image). */
    std::int64_t outputCount() const { return outC * outH * outW; }

    /** Multiply-accumulate operations per image. */
    std::int64_t macs() const;

    /**
     * Number of products accumulated into one output element -- the
     * column depth a WS crossbar must provide (K_H * K_W * C for regular
     * convolution, K_H * K_W for depthwise).
     */
    std::int64_t accumDepth() const;

    /** One-line summary for reports. */
    std::string str() const;
};

/**
 * Append the *shape* of @p l to @p key (cache canonicalization).
 * Deliberately excludes LayerDesc::name so identically shaped layers
 * share cached evaluations; callers patch presentation fields after a
 * cache fetch.
 */
void appendKey(CacheKey &key, const LayerDesc &l);

} // namespace nn
} // namespace inca

#endif // INCA_NN_LAYER_HH
