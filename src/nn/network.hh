/**
 * @file
 * Network-level shape descriptions and a shape-tracking builder.
 *
 * A NetworkDesc is an ordered list of LayerDescs plus roll-up queries
 * the analytic models need (total weights, total activations, per-layer
 * iteration). NetBuilder tracks the running feature-map shape so the
 * model zoo can describe architectures tersely.
 */

#ifndef INCA_NN_NETWORK_HH
#define INCA_NN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace inca {

class CacheKey;

namespace nn {

/** An ordered network architecture description. */
struct NetworkDesc
{
    std::string name;
    int numClasses = 0;
    std::vector<LayerDesc> layers;

    /** Layers that hold weights (conv-like). */
    std::vector<LayerDesc> convLayers() const;

    /** Total weight parameters across all layers. */
    std::int64_t totalWeights() const;

    /** Total MACs per image. */
    std::int64_t totalMacs() const;

    /**
     * Total activation elements that must be resident for training
     * (sum of conv-like layer inputs, per image) -- the paper's
     * "inputs (activations)" capacity term in Table IV.
     */
    std::int64_t totalActivations() const;

    /** True when the network contains depthwise/pointwise layers. */
    bool isLightModel() const;

    /** Multi-line summary listing every layer. */
    std::string str() const;
};

/**
 * Append the full identity of @p net to @p key (cache
 * canonicalization): network name, class count, and every layer's name
 * and shape. Unlike the per-layer key this includes names, so two
 * networks never alias.
 */
void appendKey(CacheKey &key, const NetworkDesc &net);

/** Incremental builder that tracks the current feature-map shape. */
class NetBuilder
{
  public:
    /** Start a network from a C x H x W input. */
    NetBuilder(std::string name, std::int64_t c, std::int64_t h,
               std::int64_t w);

    /** Regular convolution; pad < 0 means "same" padding (k/2). */
    NetBuilder &conv(std::int64_t outC, int k, int stride = 1,
                     int pad = -1);

    /** Depthwise convolution over the current channels. */
    NetBuilder &dwconv(int k, int stride = 1, int pad = -1);

    /** Pointwise (1x1) convolution. */
    NetBuilder &pwconv(std::int64_t outC, int stride = 1);

    /** Fully connected layer (flattens the current map). */
    NetBuilder &fc(std::int64_t outF);

    /** Max pooling. */
    NetBuilder &maxpool(int k, int stride = 0, int pad = 0);

    /** Global average pooling (collapses H x W to 1 x 1). */
    NetBuilder &gavgpool();

    /** ReLU over the current map. */
    NetBuilder &relu();

    /** Residual addition with a map of the current shape. */
    NetBuilder &add();

    /**
     * A side-branch convolution (e.g. a residual downsample) with
     * explicit input shape; does not alter the running main-path shape.
     */
    NetBuilder &sideConv(std::int64_t inC, std::int64_t inH,
                         std::int64_t inW, std::int64_t outC, int k,
                         int stride, int pad = 0);

    /** Current feature-map channel count. */
    std::int64_t channels() const { return c_; }
    /** Current feature-map height. */
    std::int64_t height() const { return h_; }
    /** Current feature-map width. */
    std::int64_t width() const { return w_; }

    /** Finish; @p numClasses records the classifier width. */
    NetworkDesc build(int numClasses);

  private:
    LayerDesc &push(LayerKind kind, const char *stem);

    NetworkDesc net_;
    std::int64_t c_, h_, w_;
    int counter_ = 0;
};

} // namespace nn
} // namespace inca

#endif // INCA_NN_NETWORK_HH
