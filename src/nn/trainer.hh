/**
 * @file
 * SGD training and evaluation loops for the accuracy experiments.
 *
 * Reproduces the paper's Table VI protocol: train for a fixed number of
 * epochs with RRAM noise injected into weights (WS hardware) or
 * activations (IS hardware / INCA) and report test accuracy, evaluated
 * under the same hardware noise. Also drives the Table I post-training
 * quantization sweep.
 */

#ifndef INCA_NN_TRAINER_HH
#define INCA_NN_TRAINER_HH

#include <cstdint>
#include <vector>

#include "nn/dataset.hh"
#include "nn/module.hh"

namespace inca {
namespace nn {

/** Training hyperparameters and hardware-effect configuration. */
struct TrainConfig
{
    int epochs = 10;
    std::int64_t batchSize = 16;
    float lr = 0.05f;
    NoiseSpec noise;            ///< injected in every forward pass
    std::uint64_t seed = 11;
    bool verbose = false;
};

/** Per-epoch training trace. */
struct TrainResult
{
    std::vector<double> epochLoss;
    std::vector<double> epochTestAccuracy; ///< fraction in [0, 1]
    double finalTestAccuracy = 0.0;
};

/** Hardware effects applied at evaluation time. */
struct EvalOptions
{
    NoiseSpec noise;
    int weightBits = 0; ///< post-training weight quantization (0 = off)
    int actBits = 0;    ///< activation quantization (0 = off)
    std::uint64_t seed = 23;
};

/** Train @p net on @p data.train, testing each epoch on @p data.test. */
TrainResult train(Sequential &net, const DatasetPair &data,
                  const TrainConfig &config);

/** Test accuracy (fraction correct) under the given hardware effects. */
double evaluate(Sequential &net, const Dataset &test,
                const EvalOptions &options = {});

} // namespace nn
} // namespace inca

#endif // INCA_NN_TRAINER_HH
