/**
 * @file
 * Architecture descriptions of the paper's evaluation networks.
 *
 * The paper evaluates six ImageNet CNNs (VGG16, VGG19, ResNet18,
 * ResNet50, MobileNetV2, MNasNet) plus CIFAR-shaped variants for the
 * Fig. 6 motivation study and LeNet5 for the Limitation-2 discussion.
 * The analytic simulator only needs the layer shapes; these builders
 * reproduce them from the original papers' definitions.
 */

#ifndef INCA_NN_MODEL_ZOO_HH
#define INCA_NN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "nn/network.hh"

namespace inca {
namespace nn {

/** Spatial input resolution presets. */
struct InputSpec
{
    std::int64_t channels = 3;
    std::int64_t size = 224; ///< square H == W
    int numClasses = 1000;
};

/** ImageNet defaults (224 x 224 x 3, 1000 classes). */
InputSpec imagenetInput();

/** CIFAR10 defaults (32 x 32 x 3, 10 classes). */
InputSpec cifarInput();

/** VGG16 [Simonyan & Zisserman]. */
NetworkDesc vgg16(const InputSpec &in = imagenetInput());

/** VGG19. */
NetworkDesc vgg19(const InputSpec &in = imagenetInput());

/** ResNet18 [He et al.], basic blocks. */
NetworkDesc resnet18(const InputSpec &in = imagenetInput());

/** ResNet50, bottleneck blocks. */
NetworkDesc resnet50(const InputSpec &in = imagenetInput());

/** MobileNetV2 [Sandler et al.], inverted residuals. */
NetworkDesc mobilenetV2(const InputSpec &in = imagenetInput());

/** MNasNet-B1 [Tan et al.]. */
NetworkDesc mnasnet(const InputSpec &in = imagenetInput());

/** LeNet5 [LeCun et al.] on 32 x 32 grayscale. */
NetworkDesc lenet5();

/**
 * VGG8 on CIFAR-shaped inputs -- the network the paper's Limitation-4
 * reference [66] uses for its 11 % accuracy-drop observation.
 */
NetworkDesc vgg8(const InputSpec &in = cifarInput());

/** The paper's six evaluation networks, in Figure-11 order. */
std::vector<NetworkDesc> evaluationSuite(
    const InputSpec &in = imagenetInput());

/** The four "heavy" networks (VGG16/19, ResNet18/50). */
std::vector<NetworkDesc> heavySuite(
    const InputSpec &in = imagenetInput());

/** Look a network up by name ("vgg16", "resnet50", ...). */
NetworkDesc byName(const std::string &name,
                   const InputSpec &in = imagenetInput());

} // namespace nn
} // namespace inca

#endif // INCA_NN_MODEL_ZOO_HH
