/**
 * @file
 * Procedurally generated image-classification dataset.
 *
 * The paper's accuracy experiments fine-tune a pretrained ResNet18 on
 * ImageNet; neither the dataset nor the checkpoint is available here,
 * so we substitute a deterministic synthetic classification task (see
 * DESIGN.md): each class is a smooth prototype image built from a few
 * class-specific Gaussian bumps; samples add pixel noise and a random
 * +/-1 pixel shift. The task is easy enough for a small CNN to master
 * in a few epochs under ideal hardware, which is exactly what the
 * noise/quantization studies need as a 100%-ish baseline.
 */

#ifndef INCA_NN_DATASET_HH
#define INCA_NN_DATASET_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace inca {

class Rng;

namespace nn {

/** Parameters of the synthetic dataset generator. */
struct SyntheticSpec
{
    int numClasses = 4;
    std::int64_t channels = 1;
    std::int64_t size = 12;      ///< square image side
    int trainPerClass = 40;
    int testPerClass = 20;
    double pixelNoise = 0.10;    ///< sample pixel noise sigma
    std::uint64_t seed = 7;
};

/** A labelled image set. */
struct Dataset
{
    tensor::Tensor images;   ///< [N, C, H, W]
    std::vector<int> labels; ///< length N

    std::int64_t count() const { return images.dim(0); }

    /** Copy items [begin, begin+n) into a batch tensor + labels. */
    std::pair<tensor::Tensor, std::vector<int>>
    batch(std::int64_t begin, std::int64_t n) const;

    /** Shuffle items in place with @p rng. */
    void shuffle(Rng &rng);
};

/** Train + test split of one generated task. */
struct DatasetPair
{
    Dataset train;
    Dataset test;
};

/** Generate the synthetic classification task. */
DatasetPair makeSynthetic(const SyntheticSpec &spec);

} // namespace nn
} // namespace inca

#endif // INCA_NN_DATASET_HH
