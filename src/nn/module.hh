/**
 * @file
 * Trainable runtime network modules.
 *
 * A small define-by-composition module system sufficient to train CNNs
 * for the paper's accuracy experiments (Table I quantization sweep,
 * Table VI noise study). Each module caches what it needs in forward()
 * and returns input gradients from backward(); step() applies vanilla
 * SGD (the paper assumes the vanilla gradient-descent optimizer as the
 * most hardware-friendly choice).
 *
 * Hardware effects are injected through the ForwardCtx: RRAM range
 * noise on weights (WS) or activations (IS), and post-training uniform
 * quantization of weights/activations.
 */

#ifndef INCA_NN_MODULE_HH
#define INCA_NN_MODULE_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/noise.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace inca {

class Rng;

namespace nn {

/** Per-forward hardware-effect configuration. */
struct ForwardCtx
{
    bool training = false;   ///< caches for backward when true
    NoiseSpec noise;         ///< RRAM noise injection
    int weightBits = 0;      ///< post-training weight quantization (0=off)
    int actBits = 0;         ///< activation quantization (0=off)
    Rng *rng = nullptr;      ///< required when noise is enabled
};

/** Base class of all runtime modules. */
class Module
{
  public:
    virtual ~Module() = default;

    /** Compute the module output for @p x under @p ctx. */
    virtual tensor::Tensor forward(const tensor::Tensor &x,
                                   ForwardCtx &ctx) = 0;

    /** Propagate @p dy; returns d loss / d input. */
    virtual tensor::Tensor backward(const tensor::Tensor &dy) = 0;

    /** Apply one vanilla-SGD step with learning rate @p lr. */
    virtual void step(float lr) { (void)lr; }

    /** Number of trainable parameters. */
    virtual std::int64_t parameterCount() const { return 0; }

    /** Short name for diagnostics. */
    virtual std::string name() const = 0;
};

/** 2-D convolution (no bias; batch-norm-free like the paper's models). */
class Conv2d : public Module
{
  public:
    /**
     * @param inC input channels   @param outC output channels
     * @param k kernel size        @param stride stride
     * @param pad zero padding (-1 selects "same": k/2)
     * @param rng weight-init RNG (He initialization)
     */
    Conv2d(std::int64_t inC, std::int64_t outC, int k, int stride,
           int pad, Rng &rng);

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    void step(float lr) override;
    std::int64_t parameterCount() const override { return w_.size(); }
    std::string name() const override { return "conv2d"; }

    /** Direct access for tests. */
    tensor::Tensor &weights() { return w_; }

  private:
    tensor::Tensor w_;   ///< stored (ideal) kernels [F, C, KH, KW]
    tensor::Tensor dw_;  ///< accumulated kernel gradient
    tensor::Tensor x_;   ///< cached forward input
    tensor::Tensor wEff_; ///< kernels actually used (after noise/quant)
    tensor::ConvSpec spec_;
    double writeNoiseSigma_ = 0.0; ///< programming noise at step()
    Rng *writeNoiseRng_ = nullptr;
    float clampLimit_ = 0.0f; ///< device conductance saturation
};

/** Depthwise 2-D convolution. */
class DepthwiseConv2d : public Module
{
  public:
    DepthwiseConv2d(std::int64_t channels, int k, int stride, int pad,
                    Rng &rng);

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    void step(float lr) override;
    std::int64_t parameterCount() const override { return w_.size(); }
    std::string name() const override { return "dwconv2d"; }

  private:
    tensor::Tensor w_;    ///< [C, KH, KW]
    tensor::Tensor dw_;
    tensor::Tensor x_;
    tensor::Tensor wEff_;
    tensor::ConvSpec spec_;
    double writeNoiseSigma_ = 0.0;
    Rng *writeNoiseRng_ = nullptr;
    float clampLimit_ = 0.0f;
};

/** Fully connected layer with bias. */
class Linear : public Module
{
  public:
    Linear(std::int64_t inF, std::int64_t outF, Rng &rng);

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    void step(float lr) override;
    std::int64_t parameterCount() const override
    {
        return w_.size() + b_.size();
    }
    std::string name() const override { return "linear"; }

    tensor::Tensor &weights() { return w_; }

  private:
    tensor::Tensor w_; ///< [D, F]
    tensor::Tensor b_; ///< [F]
    tensor::Tensor dw_, db_;
    tensor::Tensor x_;
    tensor::Tensor wEff_;
    double writeNoiseSigma_ = 0.0;
    Rng *writeNoiseRng_ = nullptr;
    float clampLimit_ = 0.0f;
};

/** ReLU activation. */
class ReLU : public Module
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    std::string name() const override { return "relu"; }

  private:
    tensor::Tensor x_;
};

/** Logistic sigmoid activation (paper Section II-B's alternative). */
class Sigmoid : public Module
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    std::string name() const override { return "sigmoid"; }

  private:
    tensor::Tensor y_;
};

/** Hyperbolic-tangent activation. */
class Tanh : public Module
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    std::string name() const override { return "tanh"; }

  private:
    tensor::Tensor y_;
};

/** 2-D max pooling. */
class MaxPool2d : public Module
{
  public:
    explicit MaxPool2d(int k, int stride = 0);

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    std::string name() const override { return "maxpool2d"; }

  private:
    int k_;
    tensor::ConvSpec spec_;
    tensor::Tensor argmax_;
    std::vector<std::int64_t> xShape_;
};

/** Flatten NCHW to [N, C*H*W]. */
class Flatten : public Module
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    std::string name() const override { return "flatten"; }

  private:
    std::vector<std::int64_t> xShape_;
};

/** Sequential container; owns its children. */
class Sequential : public Module
{
  public:
    /** Append a child module; returns *this for chaining. */
    Sequential &append(std::unique_ptr<Module> m);

    /** Convenience: construct a child in place. */
    template <typename M, typename... Args>
    Sequential &
    emplace(Args &&...args)
    {
        return append(std::make_unique<M>(std::forward<Args>(args)...));
    }

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    void step(float lr) override;
    std::int64_t parameterCount() const override;
    std::string name() const override { return "sequential"; }

    /** Number of children. */
    size_t size() const { return children_.size(); }

  private:
    std::vector<std::unique_ptr<Module>> children_;
};

/**
 * Residual block: y = relu(inner(x) + x). The inner path must preserve
 * the input shape (identity skip, as in CIFAR-style basic blocks).
 */
class Residual : public Module
{
  public:
    explicit Residual(std::unique_ptr<Module> inner);

    tensor::Tensor forward(const tensor::Tensor &x,
                           ForwardCtx &ctx) override;
    tensor::Tensor backward(const tensor::Tensor &dy) override;
    void step(float lr) override;
    std::int64_t parameterCount() const override;
    std::string name() const override { return "residual"; }

  private:
    std::unique_ptr<Module> inner_;
    tensor::Tensor sum_; ///< pre-activation sum cached for ReLU grad
};

/**
 * Build the small ResNet-style CNN used by the accuracy experiments:
 * conv3x3(c) - relu - [residual basic block](c) - maxpool -
 * conv3x3(2c) - relu - maxpool - flatten - fc(classes).
 */
std::unique_ptr<Sequential> makeSmallResNet(std::int64_t inChannels,
                                            std::int64_t imageSize,
                                            int numClasses,
                                            std::int64_t baseChannels,
                                            Rng &rng);

} // namespace nn
} // namespace inca

#endif // INCA_NN_MODULE_HH
