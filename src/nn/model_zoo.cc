#include "nn/model_zoo.hh"

#include "common/logging.hh"

namespace inca {
namespace nn {

InputSpec
imagenetInput()
{
    return InputSpec{3, 224, 1000};
}

InputSpec
cifarInput()
{
    return InputSpec{3, 32, 10};
}

namespace {

/** Append a VGG conv-relu pair. */
void
vggConv(NetBuilder &b, std::int64_t c)
{
    b.conv(c, 3, 1, 1).relu();
}

/** Append the VGG classifier; CIFAR-sized inputs use the slim head. */
void
vggHead(NetBuilder &b, const InputSpec &in)
{
    if (in.size >= 64) {
        b.fc(4096).relu().fc(4096).relu().fc(in.numClasses);
    } else {
        b.fc(512).relu().fc(in.numClasses);
    }
}

/** ResNet basic block (two 3x3 convs). */
void
basicBlock(NetBuilder &b, std::int64_t c, int stride)
{
    const std::int64_t c0 = b.channels(), h0 = b.height(),
                       w0 = b.width();
    const bool downsample = stride != 1 || c0 != c;
    b.conv(c, 3, stride, 1).relu();
    b.conv(c, 3, 1, 1);
    if (downsample)
        b.sideConv(c0, h0, w0, c, 1, stride);
    b.add().relu();
}

/** ResNet bottleneck block (1x1 -> 3x3 -> 1x1 with 4x expansion). */
void
bottleneckBlock(NetBuilder &b, std::int64_t c, int stride)
{
    const std::int64_t c0 = b.channels(), h0 = b.height(),
                       w0 = b.width();
    const std::int64_t cOut = c * 4;
    const bool downsample = stride != 1 || c0 != cOut;
    b.pwconv(c).relu();
    b.conv(c, 3, stride, 1).relu();
    b.pwconv(cOut);
    if (downsample)
        b.sideConv(c0, h0, w0, cOut, 1, stride);
    b.add().relu();
}

/** MobileNetV2 / MNasNet inverted-residual block. */
void
invertedResidual(NetBuilder &b, std::int64_t c, int k, int expand,
                 int stride)
{
    const std::int64_t c0 = b.channels();
    if (expand != 1)
        b.pwconv(c0 * expand).relu();
    b.dwconv(k, stride).relu();
    b.pwconv(c);
    if (stride == 1 && c0 == c)
        b.add();
}

} // namespace

NetworkDesc
vgg16(const InputSpec &in)
{
    NetBuilder b("vgg16", in.channels, in.size, in.size);
    for (auto c : {64, 64})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {128, 128})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {256, 256, 256})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {512, 512, 512})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {512, 512, 512})
        vggConv(b, c);
    b.maxpool(2);
    vggHead(b, in);
    return b.build(in.numClasses);
}

NetworkDesc
vgg19(const InputSpec &in)
{
    NetBuilder b("vgg19", in.channels, in.size, in.size);
    for (auto c : {64, 64})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {128, 128})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {256, 256, 256, 256})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {512, 512, 512, 512})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {512, 512, 512, 512})
        vggConv(b, c);
    b.maxpool(2);
    vggHead(b, in);
    return b.build(in.numClasses);
}

NetworkDesc
resnet18(const InputSpec &in)
{
    NetBuilder b("resnet18", in.channels, in.size, in.size);
    if (in.size >= 64) {
        b.conv(64, 7, 2, 3).relu().maxpool(3, 2, 1);
    } else {
        // CIFAR adaptation: 3x3 stem, no stem pooling.
        b.conv(64, 3, 1, 1).relu();
    }
    const struct { std::int64_t c; int stride; } stages[] = {
        {64, 1}, {128, 2}, {256, 2}, {512, 2},
    };
    for (const auto &st : stages) {
        basicBlock(b, st.c, st.stride);
        basicBlock(b, st.c, 1);
    }
    b.gavgpool().fc(in.numClasses);
    return b.build(in.numClasses);
}

NetworkDesc
resnet50(const InputSpec &in)
{
    NetBuilder b("resnet50", in.channels, in.size, in.size);
    if (in.size >= 64) {
        b.conv(64, 7, 2, 3).relu().maxpool(3, 2, 1);
    } else {
        b.conv(64, 3, 1, 1).relu();
    }
    const struct { std::int64_t c; int n; int stride; } stages[] = {
        {64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2},
    };
    for (const auto &st : stages) {
        bottleneckBlock(b, st.c, st.stride);
        for (int i = 1; i < st.n; ++i)
            bottleneckBlock(b, st.c, 1);
    }
    b.gavgpool().fc(in.numClasses);
    return b.build(in.numClasses);
}

NetworkDesc
mobilenetV2(const InputSpec &in)
{
    NetBuilder b("mobilenetv2", in.channels, in.size, in.size);
    const int stemStride = in.size >= 64 ? 2 : 1;
    b.conv(32, 3, stemStride, 1).relu();
    const struct { int t; std::int64_t c; int n; int s; } blocks[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    for (const auto &blk : blocks) {
        invertedResidual(b, blk.c, 3, blk.t, blk.s);
        for (int i = 1; i < blk.n; ++i)
            invertedResidual(b, blk.c, 3, blk.t, 1);
    }
    b.pwconv(1280).relu().gavgpool().fc(in.numClasses);
    return b.build(in.numClasses);
}

NetworkDesc
mnasnet(const InputSpec &in)
{
    // MNasNet-B1 as searched in [Tan et al., CVPR'19].
    NetBuilder b("mnasnet", in.channels, in.size, in.size);
    const int stemStride = in.size >= 64 ? 2 : 1;
    b.conv(32, 3, stemStride, 1).relu();
    // SepConv stem block: depthwise 3x3 + pointwise to 16 channels.
    b.dwconv(3, 1).relu().pwconv(16);
    const struct { int k; int t; std::int64_t c; int n; int s; }
    blocks[] = {
        {3, 3, 24, 3, 2},  {5, 3, 40, 3, 2},  {5, 6, 80, 3, 2},
        {3, 6, 96, 2, 1},  {5, 6, 192, 4, 2}, {3, 6, 320, 1, 1},
    };
    for (const auto &blk : blocks) {
        invertedResidual(b, blk.c, blk.k, blk.t, blk.s);
        for (int i = 1; i < blk.n; ++i)
            invertedResidual(b, blk.c, blk.k, blk.t, 1);
    }
    b.pwconv(1280).relu().gavgpool().fc(in.numClasses);
    return b.build(in.numClasses);
}

NetworkDesc
lenet5()
{
    NetBuilder b("lenet5", 1, 32, 32);
    b.conv(6, 5, 1, 0).relu().maxpool(2);
    b.conv(16, 5, 1, 0).relu().maxpool(2);
    b.fc(120).relu().fc(84).relu().fc(10);
    return b.build(10);
}

NetworkDesc
vgg8(const InputSpec &in)
{
    // Six 3x3 conv layers in three width-doubling pairs + classifier,
    // the common VGG8 used in CIM accuracy studies [66].
    NetBuilder b("vgg8", in.channels, in.size, in.size);
    for (auto c : {128, 128})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {256, 256})
        vggConv(b, c);
    b.maxpool(2);
    for (auto c : {512, 512})
        vggConv(b, c);
    b.maxpool(2);
    b.fc(1024).relu().fc(in.numClasses);
    return b.build(in.numClasses);
}

std::vector<NetworkDesc>
evaluationSuite(const InputSpec &in)
{
    return {vgg16(in),    vgg19(in),       resnet18(in),
            resnet50(in), mobilenetV2(in), mnasnet(in)};
}

std::vector<NetworkDesc>
heavySuite(const InputSpec &in)
{
    return {vgg16(in), vgg19(in), resnet18(in), resnet50(in)};
}

NetworkDesc
byName(const std::string &name, const InputSpec &in)
{
    if (name == "vgg16")
        return vgg16(in);
    if (name == "vgg19")
        return vgg19(in);
    if (name == "resnet18")
        return resnet18(in);
    if (name == "resnet50")
        return resnet50(in);
    if (name == "mobilenetv2")
        return mobilenetV2(in);
    if (name == "mnasnet")
        return mnasnet(in);
    if (name == "lenet5")
        return lenet5();
    if (name == "vgg8")
        return vgg8();
    fatal("unknown network '%s'", name.c_str());
}

} // namespace nn
} // namespace inca
