/**
 * @file
 * RRAM nonideality and quantization models.
 *
 * The paper's accuracy study (Table VI) models RRAM nonideal properties
 * (variation, nonlinearity, asymmetry) as zero-centered Gaussian noise
 * following Yu [65], where the perturbation is referenced to the device
 * conductance *range*: v' = v + N(0, sigma * max|tensor|). Storing
 * weights in RRAM (WS) perturbs weights; storing activations in RRAM
 * (IS / INCA) perturbs activations.
 *
 * The quantization model (Table I background) is symmetric per-tensor
 * uniform quantization.
 */

#ifndef INCA_NN_NOISE_HH
#define INCA_NN_NOISE_HH

#include "tensor/tensor.hh"

namespace inca {

class Rng;

namespace nn {

/** Where RRAM noise strikes, i.e. which operand lives in RRAM. */
enum class NoiseTarget
{
    None,        ///< ideal hardware
    Weights,     ///< WS dataflow: weights stored in RRAM
    Activations, ///< IS dataflow (INCA): activations stored in RRAM
};

/** Noise configuration for a training / evaluation run. */
struct NoiseSpec
{
    NoiseTarget target = NoiseTarget::None;
    double sigma = 0.0; ///< noise strength relative to tensor range

    bool enabled() const
    {
        return target != NoiseTarget::None && sigma > 0.0;
    }
};

/**
 * Return a copy of @p t with zero-centered Gaussian noise of strength
 * @p sigma referenced to the tensor's max-abs range.
 */
tensor::Tensor addRangeNoise(const tensor::Tensor &t, double sigma,
                             Rng &rng);

/** In-place variant of addRangeNoise(). */
void addRangeNoiseInPlace(tensor::Tensor &t, double sigma, Rng &rng);

/**
 * Symmetric per-tensor uniform quantization to @p bits (simulated:
 * values are snapped to the quantization grid but stay float).
 * @p bits <= 0 disables quantization and returns a copy.
 */
tensor::Tensor quantize(const tensor::Tensor &t, int bits);

/** In-place variant of quantize(). */
void quantizeInPlace(tensor::Tensor &t, int bits);

} // namespace nn
} // namespace inca

#endif // INCA_NN_NOISE_HH
