/**
 * @file
 * GPU comparator (paper Fig. 15, Table II bottom block).
 *
 * A roofline model of the paper's Titan RTX: execution time is the
 * maximum of the compute time at a realistic fraction of peak FLOPS
 * and the memory time at peak bandwidth; energy is board power times
 * time. The paper's comparison is normalized (energy efficiency and
 * iso-area throughput), which a roofline captures: VGGs are compute
 * bound, light models bandwidth/launch bound, exactly the regimes the
 * figure contrasts.
 */

#ifndef INCA_GPU_GPU_MODEL_HH
#define INCA_GPU_GPU_MODEL_HH

#include "common/units.hh"
#include "nn/network.hh"

namespace inca {
namespace gpu {

/** Titan RTX specification (Table II). */
struct GpuSpec
{
    double peakFlops = 16.3e12;     ///< FP32 peak
    double memBandwidth = 672e9;    ///< bytes/s GDDR6
    Watts boardPower = 280.0;
    SquareMeters dieArea = 754e-6;  ///< mm^2 -> m^2
    Bytes memory = 24.0 * 1024.0 * 1024.0 * 1024.0;
    int cudaCores = 4608;

    /** Achievable fraction of peak FLOPS on dense CNN kernels. */
    double computeEfficiency = 0.45;
    /** Achievable fraction of peak bandwidth. */
    double bandwidthEfficiency = 0.70;
    /** Kernel-launch/framework overhead per layer. */
    Seconds perLayerOverhead = 8e-6;
};

/** One simulated GPU run. */
struct GpuRun
{
    Seconds latency = 0.0;
    Joules energy = 0.0;
    double flops = 0.0;
    double bytes = 0.0;

    double throughput(int batch) const
    {
        return latency == 0.0 ? 0.0 : double(batch) / latency;
    }
};

/** Roofline simulator for the comparison GPU. */
class GpuModel
{
  public:
    explicit GpuModel(GpuSpec spec = {});

    const GpuSpec &spec() const { return spec_; }

    /** One inference batch. */
    GpuRun inference(const nn::NetworkDesc &net, int batchSize) const;

    /** One training iteration (forward + backward + update). */
    GpuRun training(const nn::NetworkDesc &net, int batchSize) const;

  private:
    GpuRun run(const nn::NetworkDesc &net, int batchSize,
               double passes) const;

    GpuSpec spec_;
};

} // namespace gpu
} // namespace inca

#endif // INCA_GPU_GPU_MODEL_HH
