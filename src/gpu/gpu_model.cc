#include "gpu/gpu_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace inca {
namespace gpu {

GpuModel::GpuModel(GpuSpec spec) : spec_(spec) {}

GpuRun
GpuModel::run(const nn::NetworkDesc &net, int batchSize,
              double passes) const
{
    GpuRun r;
    const double images = batchSize;
    // FP32 frameworks: 2 FLOPs per MAC.
    r.flops = 2.0 * double(net.totalMacs()) * images * passes;
    // Bytes: weights once per batch (cached in GDDR working set),
    // activations in and out per layer per image per pass.
    double actBytes = 0.0;
    std::int64_t layers = 0;
    for (const auto &l : net.layers) {
        if (!l.isConvLike())
            continue;
        actBytes += 4.0 * double(l.inputCount() + l.outputCount());
        ++layers;
    }
    r.bytes = 4.0 * double(net.totalWeights()) * passes +
              actBytes * images * passes;

    const Seconds computeTime =
        r.flops / (spec_.peakFlops * spec_.computeEfficiency);
    const Seconds memoryTime =
        r.bytes / (spec_.memBandwidth * spec_.bandwidthEfficiency);
    const Seconds overhead =
        double(layers) * passes * spec_.perLayerOverhead;
    r.latency = std::max(computeTime, memoryTime) + overhead;
    r.energy = spec_.boardPower * r.latency;
    return r;
}

GpuRun
GpuModel::inference(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    return run(net, batchSize, 1.0);
}

GpuRun
GpuModel::training(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    // Forward + input-gradient + weight-gradient passes.
    return run(net, batchSize, 3.0);
}

} // namespace gpu
} // namespace inca
