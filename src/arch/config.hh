/**
 * @file
 * Accelerator configurations (paper Table II).
 *
 * Two chips are modelled:
 *  - INCA: 3D HRRAM stacks of 16 x 16 vertical planes, 64 planes per
 *    stack (one batch image per plane), 2T1R cells, 4-bit ADCs,
 *    bit-serial weight feed;
 *  - the WS baseline: 2D 128 x 128 1T1R crossbars with 8-bit ADCs,
 *    ISAAC-style [42] pipelined inference and PipeLayer-style [48]
 *    training.
 * Both share the tile organisation (168 tiles x 12 macros x 8
 * subarrays), 64 KB 256-bit buffers, and 8 GB HBM2 so that comparisons
 * are iso-capacity, exactly as the paper configures them.
 */

#ifndef INCA_ARCH_CONFIG_HH
#define INCA_ARCH_CONFIG_HH

#include <cstdint>

#include "circuit/adc.hh"
#include "common/config.hh"
#include "circuit/cells.hh"
#include "circuit/digital.hh"
#include "circuit/rram.hh"
#include "memory/dram.hh"
#include "memory/sram.hh"

namespace inca {

class CacheKey;

namespace arch {

/** Organisation both chips share. */
struct ChipOrganization
{
    int numTiles = 168;  ///< tiles per chip
    int tileSize = 12;   ///< macros per tile
    int macroSize = 8;   ///< subarrays per macro

    std::int64_t totalMacros() const
    {
        return std::int64_t(numTiles) * tileSize;
    }

    std::int64_t totalSubarrays() const
    {
        return totalMacros() * macroSize;
    }
};

/** INCA configuration (Table II, top block). */
struct IncaConfig
{
    ChipOrganization org;
    int subarraySize = 16;     ///< 16 x 16 pillars per vertical plane
    int stackedPlanes = 64;    ///< planes per 3D stack (= batch slots)
    int cellBits = 1;
    int adcBits = 4;
    int subarraysPerAdc = 16;  ///< ADC sharing inside a stack
    int weightBits = 8;
    int activationBits = 8;
    int batchSize = 64;

    memory::SramBuffer buffer; ///< per tile
    memory::Dram dram;
    circuit::RramDevice device;
    circuit::Cell2T1R cell;
    circuit::DigitalModel digital;

    /** RRAM cells in one 3D stack. */
    std::int64_t cellsPerStack() const
    {
        return std::int64_t(subarraySize) * subarraySize * stackedPlanes;
    }

    /** Total RRAM cells on the chip. */
    std::int64_t totalCells() const
    {
        return org.totalSubarrays() * cellsPerStack();
    }

    /** The configured ADC. */
    circuit::AdcModel adc() const { return circuit::makeAdc(adcBits); }

    /**
     * Array read cycle (a windowed direct-convolution read pulse).
     * The engine's effective per-read cycle additionally accounts for
     * the write-behind-read pipeline and the shared-ADC drain; see
     * core::IncaEngine::readCycleTime().
     */
    Seconds readCycle() const { return device.tRead; }
};

/** WS baseline configuration (Table II, middle block). */
struct BaselineConfig
{
    ChipOrganization org;
    int subarraySize = 128; ///< 128 x 128 crossbar
    int cellBits = 1;
    int adcBits = 8;
    int weightBits = 8;
    int activationBits = 8;
    int batchSize = 64;

    memory::SramBuffer buffer;
    memory::Dram dram;
    circuit::RramDevice device;
    circuit::Cell1T1R cell;
    circuit::DigitalModel digital;

    /** RRAM cells in one crossbar. */
    std::int64_t cellsPerSubarray() const
    {
        return std::int64_t(subarraySize) * subarraySize;
    }

    /** Total RRAM cells on the chip. */
    std::int64_t totalCells() const
    {
        return org.totalSubarrays() * cellsPerSubarray();
    }

    circuit::AdcModel adc() const { return circuit::makeAdc(adcBits); }

    /**
     * Array read cycle. The paper observes (Section V-B-2) that the
     * baseline's read takes about 2x INCA's *write* latency because of
     * the 128-wide arrays and the time-multiplexed high-resolution
     * ADCs: 2 x 50 ns = 100 ns.
     */
    Seconds readCycle() const { return 2.0 * device.tWrite; }
};

/** Table II INCA chip. */
IncaConfig paperInca();

/** Table II baseline chip. */
BaselineConfig paperBaseline();

/**
 * Table II INCA chip with overrides from an "[inca]" config section:
 * subarray_size, stacked_planes, adc_bits, subarrays_per_adc,
 * weight_bits, activation_bits, batch_size, num_tiles, tile_size,
 * macro_size, buffer_kib, bus_bits.
 */
IncaConfig incaFromConfig(const class Config &cfg);

/** Table II baseline chip with "[baseline]" section overrides. */
BaselineConfig baselineFromConfig(const class Config &cfg);

/** Append every field of @p org to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const ChipOrganization &org);

/** Append every field of @p c to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const IncaConfig &c);

/** Append every field of @p c to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const BaselineConfig &c);

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_CONFIG_HH
