#include "arch/area.hh"

#include "common/cache.hh"

namespace inca {
namespace arch {

namespace {

EvalCache<AreaBreakdown> &
areaCache()
{
    static EvalCache<AreaBreakdown> *c =
        new EvalCache<AreaBreakdown>("arch.area");
    return *c;
}

// Post-processing (ReLU + max-pool) per tile; Table V reports
// 3.656 mm^2 for 168 tiles in both designs.
constexpr SquareMeters kPostPerTile = 3.656e-6 / 168.0;

// "Others" (interconnect, control, adders, registers) per tile, as
// measured by NeuroSim+ in the paper: 27.920 mm^2 (baseline) and
// 24.249 mm^2 (INCA) for 168 tiles. The baseline needs a wider H-tree
// to feed 128-row crossbars, hence the larger constant.
constexpr SquareMeters kOthersPerTileBaseline = 27.920e-6 / 168.0;
constexpr SquareMeters kOthersPerTileInca = 24.249e-6 / 168.0;

} // namespace

SquareMeters
incaStackArea(const IncaConfig &cfg)
{
    // Cells per stack, divided by the vertical stacking factor, gives
    // the number of projected cell footprints.
    const double footprints =
        double(cfg.cellsPerStack()) / double(cfg.cell.verticalStack);
    return footprints * cfg.cell.scaledArea();
}

SquareMeters
baselineSubarrayArea(const BaselineConfig &cfg)
{
    return double(cfg.cellsPerSubarray()) * cfg.cell.scaledArea();
}

AreaBreakdown
incaArea(const IncaConfig &cfg)
{
    CacheKey key;
    key.add("inca-area");
    appendKey(key, cfg);
    return areaCache().getOrCompute(key, [&] {
        AreaBreakdown a;
        const double tiles = cfg.org.numTiles;
        const double subarrays = double(cfg.org.totalSubarrays());

        a.buffer = tiles * cfg.buffer.area();
        a.array = subarrays * incaStackArea(cfg);
        // One shared ADC per 3D stack (Table V counts 168 x 12 x 8).
        a.adc = subarrays * cfg.adc().area;
        // One 1-bit DAC per pillar: 16 x 16 = 256 per stack.
        const double dacsPerStack =
            double(cfg.subarraySize) * cfg.subarraySize;
        a.dac = subarrays * dacsPerStack * circuit::makeDac().area;
        a.postProcessing = tiles * kPostPerTile;
        a.others = tiles * kOthersPerTileInca;
        return a;
    });
}

AreaBreakdown
baselineArea(const BaselineConfig &cfg)
{
    CacheKey key;
    key.add("ws-area");
    appendKey(key, cfg);
    return areaCache().getOrCompute(key, [&] {
        AreaBreakdown a;
        const double tiles = cfg.org.numTiles;
        const double subarrays = double(cfg.org.totalSubarrays());

        a.buffer = tiles * cfg.buffer.area();
        a.array = subarrays * baselineSubarrayArea(cfg);
        a.adc = subarrays * cfg.adc().area;
        // One 1-bit DAC per crossbar row.
        a.dac = subarrays * double(cfg.subarraySize) *
                circuit::makeDac().area;
        a.postProcessing = tiles * kPostPerTile;
        a.others = tiles * kOthersPerTileBaseline;
        return a;
    });
}

} // namespace arch
} // namespace inca
