/**
 * @file
 * Array-utilization models (paper Fig. 16).
 *
 * IS utilization: the fraction of allocated RRAM cells that hold valid
 * input (activation) pixels. A layer's C x H x W input is partitioned
 * into s x s tiles; ragged edges waste cells, so utilization falls as
 * the array size s grows past the feature-map size -- which is why the
 * paper settles on 16 x 16 (Fig. 16a).
 *
 * WS utilization: the fraction of allocated crossbar cells holding
 * real (unrolled) kernel weights. A kernel column needs K_H * K_W * C
 * rows and weight_bits columns per output channel; depthwise kernels
 * use only K_H * K_W of the 128 rows, which collapses utilization for
 * light models (Fig. 16b).
 */

#ifndef INCA_ARCH_UTILIZATION_HH
#define INCA_ARCH_UTILIZATION_HH

#include "nn/network.hh"

namespace inca {
namespace arch {

/** IS (INCA) utilization of one layer on s x s planes. */
double incaLayerUtilization(const nn::LayerDesc &layer, int arraySize);

/** WS (baseline) utilization of one layer on s x s crossbars. */
double wsLayerUtilization(const nn::LayerDesc &layer, int arraySize,
                          int weightBits = 8);

/**
 * Capacity-weighted network utilization (cells actually used over
 * cells allocated across all conv-like layers).
 */
double incaNetworkUtilization(const nn::NetworkDesc &net, int arraySize);

/** Capacity-weighted WS network utilization. */
double wsNetworkUtilization(const nn::NetworkDesc &net, int arraySize,
                            int weightBits = 8);

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_UTILIZATION_HH
