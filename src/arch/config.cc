#include "arch/config.hh"

#include "common/cache.hh"
#include "common/config.hh"
#include "common/logging.hh"

namespace inca {
namespace arch {

IncaConfig
paperInca()
{
    return IncaConfig{};
}

BaselineConfig
paperBaseline()
{
    return BaselineConfig{};
}

namespace {

void
applyOrganization(ChipOrganization &org, const Config &cfg,
                  const std::string &section)
{
    org.numTiles = int(cfg.getInt(section + ".num_tiles",
                                  org.numTiles));
    org.tileSize = int(cfg.getInt(section + ".tile_size",
                                  org.tileSize));
    org.macroSize = int(cfg.getInt(section + ".macro_size",
                                   org.macroSize));
    inca_assert(org.numTiles > 0 && org.tileSize > 0 &&
                    org.macroSize > 0,
                "chip organization must be positive");
}

void
applyMemories(memory::SramBuffer &buffer, const Config &cfg,
              const std::string &section)
{
    buffer.capacity = double(cfg.getInt(
                          section + ".buffer_kib",
                          std::int64_t(buffer.capacity / 1024.0))) *
                      1024.0;
    buffer.port.widthBits = int(cfg.getInt(section + ".bus_bits",
                                           buffer.port.widthBits));
    inca_assert(buffer.capacity > 0 && buffer.port.widthBits > 0,
                "buffer geometry must be positive");
}

} // namespace

IncaConfig
incaFromConfig(const Config &cfg)
{
    IncaConfig c = paperInca();
    applyOrganization(c.org, cfg, "inca");
    applyMemories(c.buffer, cfg, "inca");
    c.subarraySize = int(cfg.getInt("inca.subarray_size",
                                    c.subarraySize));
    c.stackedPlanes = int(cfg.getInt("inca.stacked_planes",
                                     c.stackedPlanes));
    c.adcBits = int(cfg.getInt("inca.adc_bits", c.adcBits));
    c.subarraysPerAdc = int(cfg.getInt("inca.subarrays_per_adc",
                                       c.subarraysPerAdc));
    c.weightBits = int(cfg.getInt("inca.weight_bits", c.weightBits));
    c.activationBits = int(cfg.getInt("inca.activation_bits",
                                      c.activationBits));
    c.batchSize = int(cfg.getInt("inca.batch_size", c.batchSize));
    inca_assert(c.subarraySize > 0 && c.stackedPlanes > 0 &&
                    c.adcBits > 0,
                "INCA geometry must be positive");
    return c;
}

BaselineConfig
baselineFromConfig(const Config &cfg)
{
    BaselineConfig c = paperBaseline();
    applyOrganization(c.org, cfg, "baseline");
    applyMemories(c.buffer, cfg, "baseline");
    c.subarraySize = int(cfg.getInt("baseline.subarray_size",
                                    c.subarraySize));
    c.adcBits = int(cfg.getInt("baseline.adc_bits", c.adcBits));
    c.weightBits = int(cfg.getInt("baseline.weight_bits",
                                  c.weightBits));
    c.activationBits = int(cfg.getInt("baseline.activation_bits",
                                      c.activationBits));
    c.batchSize = int(cfg.getInt("baseline.batch_size", c.batchSize));
    inca_assert(c.subarraySize > 0 && c.adcBits > 0,
                "baseline geometry must be positive");
    return c;
}

void
appendKey(CacheKey &key, const ChipOrganization &org)
{
    key.add("org").add(org.numTiles).add(org.tileSize).add(
        org.macroSize);
}

void
appendKey(CacheKey &key, const IncaConfig &c)
{
    key.add("inca-cfg");
    appendKey(key, c.org);
    key.add(c.subarraySize)
        .add(c.stackedPlanes)
        .add(c.cellBits)
        .add(c.adcBits)
        .add(c.subarraysPerAdc)
        .add(c.weightBits)
        .add(c.activationBits)
        .add(c.batchSize);
    memory::appendKey(key, c.buffer);
    memory::appendKey(key, c.dram);
    circuit::appendKey(key, c.device);
    circuit::appendKey(key, c.cell);
    circuit::appendKey(key, c.digital);
}

void
appendKey(CacheKey &key, const BaselineConfig &c)
{
    key.add("ws-cfg");
    appendKey(key, c.org);
    key.add(c.subarraySize)
        .add(c.cellBits)
        .add(c.adcBits)
        .add(c.weightBits)
        .add(c.activationBits)
        .add(c.batchSize);
    memory::appendKey(key, c.buffer);
    memory::appendKey(key, c.dram);
    circuit::appendKey(key, c.device);
    circuit::appendKey(key, c.cell);
    circuit::appendKey(key, c.digital);
}

} // namespace arch
} // namespace inca
