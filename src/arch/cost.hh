/**
 * @file
 * Cost accounting shared by the INCA and baseline engines.
 *
 * An engine walks a network layer by layer and fills a LayerCost per
 * layer: energy components under "energy.<component>", event counts
 * under "count.<component>", and a latency. RunCost rolls layers up
 * and derives the figures the paper reports (energy per batch, energy
 * efficiency, makespan).
 */

#ifndef INCA_ARCH_COST_HH
#define INCA_ARCH_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "nn/layer.hh"

namespace inca {
namespace arch {

/** Simulated execution phase. */
enum class Phase
{
    Inference,
    Training,
};

/** Per-layer simulation result. */
struct LayerCost
{
    std::string name;
    nn::LayerKind kind = nn::LayerKind::Conv;
    StatSet stats;          ///< energy.* [J] and count.* entries
    Seconds latency = 0.0;  ///< layer busy time

    /** Total dynamic energy of the layer. */
    Joules energy() const { return stats.sumPrefix("energy"); }

    /** Memory-system (DRAM + buffer) energy of the layer. */
    Joules memoryEnergy() const
    {
        return stats.sumPrefix("energy.dram") +
               stats.sumPrefix("energy.buffer");
    }
};

/** Whole-run simulation result (one network, one phase, one batch). */
struct RunCost
{
    std::string network;
    Phase phase = Phase::Inference;
    int batchSize = 1;
    std::vector<LayerCost> layers;
    Seconds latency = 0.0;     ///< batch makespan
    Joules staticEnergy = 0.0; ///< leakage/idle over the makespan
    /**
     * FNV-1a hash of the producing engine's canonical config key
     * (arch::appendKey); ties an exported run back to the exact
     * design point in sim::toJson's provenance manifest.
     */
    std::uint64_t configKeyHash = 0;

    /** Sum of a stat across layers. */
    double
    sum(const std::string &prefix) const
    {
        double total = 0.0;
        for (const auto &l : layers)
            total += l.stats.sumPrefix(prefix);
        return total;
    }

    /** Total (dynamic + static) energy of the batch. */
    Joules
    energy() const
    {
        return sum("energy") + staticEnergy;
    }

    /** Energy per image. */
    Joules
    energyPerImage() const
    {
        return energy() / double(batchSize);
    }

    /** Latency per image (batch makespan / batch). */
    Seconds
    latencyPerImage() const
    {
        return latency / double(batchSize);
    }

    /** Images per joule -- the paper's energy-efficiency metric. */
    double
    energyEfficiency() const
    {
        return energy() == 0.0 ? 0.0 : double(batchSize) / energy();
    }

    /** Images per second. */
    double
    throughput() const
    {
        return latency == 0.0 ? 0.0 : double(batchSize) / latency;
    }
};

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_COST_HH
