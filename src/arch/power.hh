/**
 * @file
 * Chip idle (leakage) power models.
 *
 * NeuroSim-style evaluations charge leakage over the makespan of a
 * run; with ms-scale layer latencies this term is first-order. The
 * dominant leakers are the ADC banks: a SAR converter's comparator and
 * capacitive DAC stay biased, and their leakage grows roughly 2x per
 * resolution bit, so the baseline's 16k always-on 8-bit ADCs leak an
 * order of magnitude more than INCA's 4-bit ones. INCA additionally
 * power-gates the ADC groups of stacks whose activations are dead --
 * the IS dataflow knows statically which macros hold live data, while
 * the WS pipeline keeps every crossbar's converter armed for the next
 * window. Buffers, digital logic and arrays contribute smaller
 * area-proportional terms (RRAM itself is nonvolatile).
 */

#ifndef INCA_ARCH_POWER_HH
#define INCA_ARCH_POWER_HH

#include "arch/area.hh"
#include "arch/config.hh"
#include "common/units.hh"

namespace inca {
namespace arch {

/** Leakage densities (W per m^2) by component class. */
struct LeakageDensity
{
    double adc8bit = 0.46e6;  ///< an 8-bit SAR bank, fully armed
    double buffer = 0.020e6;  ///< SRAM retention
    double digital = 0.010e6; ///< others / post-processing
    double array = 0.001e6;   ///< access FETs only (RRAM nonvolatile)

    /** ADC leakage density at a given resolution (2x per bit). */
    double
    adcDensity(int bits) const
    {
        double d = adc8bit;
        for (int b = bits; b < 8; ++b)
            d *= 0.5;
        for (int b = 8; b < bits; ++b)
            d *= 2.0;
        return d;
    }
};

/**
 * Idle power from an area breakdown.
 *
 * @param adcBits ADC resolution (scales the mixed-signal leakage)
 * @param adcActiveFraction fraction of ADC groups left un-gated
 */
Watts idlePowerFromArea(const AreaBreakdown &area,
                        const LeakageDensity &density, int adcBits,
                        double adcActiveFraction = 1.0);

/**
 * Idle power of the INCA chip. IS mapping pins each layer's
 * activations to known macros, so converters of idle stacks power-gate
 * (modelled as 25 % of groups armed on average).
 */
Watts incaIdlePower(const IncaConfig &cfg,
                    const LeakageDensity &density = {});

/** Idle power of the WS baseline chip (all converters armed). */
Watts baselineIdlePower(const BaselineConfig &cfg,
                        const LeakageDensity &density = {});

/** Append every field of @p d to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const LeakageDensity &d);

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_POWER_HH
