#include "arch/endurance.hh"

#include <algorithm>

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace arch {

namespace {

EvalCache<EnduranceReport> &
enduranceCache()
{
    static EvalCache<EnduranceReport> *c =
        new EvalCache<EnduranceReport>("arch.endurance");
    return *c;
}

EnduranceReport
finish(EnduranceReport r, double enduranceRating)
{
    if (r.cellsWritten > 0.0) {
        r.writesPerCellPerIteration =
            r.writesPerIteration / r.cellsWritten;
        if (r.writesPerCellPerIteration > 0.0) {
            r.iterationsToWearOut =
                enduranceRating / r.writesPerCellPerIteration;
        }
    }
    return r;
}

} // namespace

EnduranceReport
incaEndurance(const nn::NetworkDesc &net, const IncaConfig &cfg,
              int batchSize, double enduranceRating)
{
    inca_assert(batchSize > 0, "batch size must be positive");
    CacheKey key;
    key.add("inca-endurance");
    appendKey(key, net);
    appendKey(key, cfg);
    key.add(batchSize).add(enduranceRating);
    return enduranceCache().getOrCompute(key, [&] {
        EnduranceReport r;
        const double aBits = cfg.activationBits;
        double activationsPerImage = 0.0;
        double outputWritesPerImage = 0.0;
        for (const auto &layer : net.layers) {
            if (!layer.isConvLike())
                continue;
            activationsPerImage += double(layer.inputCount());
            // Forward: outputs written into the next layer's planes.
            outputWritesPerImage += double(layer.outputCount());
            // Backward: errors overwrite this layer's activation cells.
            outputWritesPerImage += double(layer.inputCount());
        }
        r.writesPerIteration =
            outputWritesPerImage * aBits * double(batchSize);
        r.cellsWritten =
            activationsPerImage * aBits * double(batchSize);
        return finish(r, enduranceRating);
    });
}

EnduranceReport
baselineEndurance(const nn::NetworkDesc &net,
                  const BaselineConfig &cfg, int batchSize,
                  double enduranceRating)
{
    inca_assert(batchSize > 0, "batch size must be positive");
    CacheKey key;
    key.add("ws-endurance");
    appendKey(key, net);
    appendKey(key, cfg);
    key.add(batchSize).add(enduranceRating);
    return enduranceCache().getOrCompute(key, [&] {
        EnduranceReport r;
        const double wBits = cfg.weightBits;
        const double aBits = cfg.activationBits;
        const double weights = double(net.totalWeights());
        // Weight update: originals + transposed copies, once per batch.
        const double weightWrites = 2.0 * weights * wBits;
        // PipeLayer keeps activations and errors in RRAM per image.
        double actsPerImage = 0.0;
        for (const auto &layer : net.layers) {
            if (layer.isConvLike())
                actsPerImage += double(layer.inputCount());
        }
        const double actWrites =
            2.0 * actsPerImage * aBits * double(batchSize);
        r.writesPerIteration = weightWrites + actWrites;
        r.cellsWritten =
            2.0 * weights * wBits +
            2.0 * actsPerImage * aBits * double(batchSize);
        return finish(r, enduranceRating);
    });
}

} // namespace arch
} // namespace inca
