#include "arch/power.hh"

#include "common/logging.hh"

namespace inca {
namespace arch {

Watts
idlePowerFromArea(const AreaBreakdown &area, const LeakageDensity &d,
                  int adcBits, double adcActiveFraction)
{
    inca_assert(adcActiveFraction >= 0.0 && adcActiveFraction <= 1.0,
                "active fraction %f out of [0,1]", adcActiveFraction);
    return area.adc * d.adcDensity(adcBits) * adcActiveFraction +
           area.buffer * d.buffer +
           (area.others + area.postProcessing) * d.digital +
           (area.array + area.dac) * d.array;
}

Watts
incaIdlePower(const IncaConfig &cfg, const LeakageDensity &density)
{
    // IS knows which stacks hold live activations; idle ADC groups
    // power-gate.
    constexpr double kAdcActiveFraction = 0.25;
    return idlePowerFromArea(incaArea(cfg), density, cfg.adcBits,
                             kAdcActiveFraction);
}

Watts
baselineIdlePower(const BaselineConfig &cfg,
                  const LeakageDensity &density)
{
    return idlePowerFromArea(baselineArea(cfg), density, cfg.adcBits,
                             1.0);
}

} // namespace arch
} // namespace inca
