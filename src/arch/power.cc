#include "arch/power.hh"

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace arch {

void
appendKey(CacheKey &key, const LeakageDensity &d)
{
    key.add("leakage")
        .add(d.adc8bit)
        .add(d.buffer)
        .add(d.digital)
        .add(d.array);
}

namespace {

EvalCache<Watts> &
powerCache()
{
    static EvalCache<Watts> *c = new EvalCache<Watts>("arch.power");
    return *c;
}

} // namespace

Watts
idlePowerFromArea(const AreaBreakdown &area, const LeakageDensity &d,
                  int adcBits, double adcActiveFraction)
{
    inca_assert(adcActiveFraction >= 0.0 && adcActiveFraction <= 1.0,
                "active fraction %f out of [0,1]", adcActiveFraction);
    return area.adc * d.adcDensity(adcBits) * adcActiveFraction +
           area.buffer * d.buffer +
           (area.others + area.postProcessing) * d.digital +
           (area.array + area.dac) * d.array;
}

Watts
incaIdlePower(const IncaConfig &cfg, const LeakageDensity &density)
{
    CacheKey key;
    key.add("inca-idle");
    appendKey(key, cfg);
    appendKey(key, density);
    return powerCache().getOrCompute(key, [&] {
        // IS knows which stacks hold live activations; idle ADC groups
        // power-gate.
        constexpr double kAdcActiveFraction = 0.25;
        return idlePowerFromArea(incaArea(cfg), density, cfg.adcBits,
                                 kAdcActiveFraction);
    });
}

Watts
baselineIdlePower(const BaselineConfig &cfg,
                  const LeakageDensity &density)
{
    CacheKey key;
    key.add("ws-idle");
    appendKey(key, cfg);
    appendKey(key, density);
    return powerCache().getOrCompute(key, [&] {
        return idlePowerFromArea(baselineArea(cfg), density,
                                 cfg.adcBits, 1.0);
    });
}

} // namespace arch
} // namespace inca
