#include "arch/utilization.hh"

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace arch {

namespace {

EvalCache<double> &
utilizationCache()
{
    static EvalCache<double> *c =
        new EvalCache<double>("arch.utilization");
    return *c;
}

/** Allocated IS cells for one layer (per image, one bit plane). */
double
incaAllocated(const nn::LayerDesc &l, int s)
{
    if (l.kind == nn::LayerKind::FullyConnected) {
        // FC folds the flattened input onto 2D planes (Section IV-C).
        const double cells = double(s) * s;
        return double(ceilDiv(std::uint64_t(l.inC), std::uint64_t(s * s)))
               * cells;
    }
    const auto tilesH = ceilDiv(std::uint64_t(l.inH), std::uint64_t(s));
    const auto tilesW = ceilDiv(std::uint64_t(l.inW), std::uint64_t(s));
    return double(l.inC) * double(tilesH) * double(tilesW) * s * s;
}

/** Allocated WS cells for one layer (kernels unrolled, bit-sliced). */
double
wsAllocated(const nn::LayerDesc &l, int s, int weightBits)
{
    const double rows = double(l.accumDepth());
    const double cols = double(l.outC) * weightBits;
    const double rowTiles = double(ceilDiv(std::uint64_t(rows),
                                           std::uint64_t(s)));
    const double colTiles = double(ceilDiv(std::uint64_t(cols),
                                           std::uint64_t(s)));
    double tiles = rowTiles * colTiles;
    if (l.kind == nn::LayerKind::Depthwise) {
        // Each depthwise channel is its own tiny kernel column group;
        // channels cannot share accumulation columns.
        tiles = double(l.inC) *
                double(ceilDiv(std::uint64_t(l.kh * l.kw),
                               std::uint64_t(s))) *
                double(ceilDiv(std::uint64_t(weightBits),
                               std::uint64_t(s)));
    }
    return tiles * double(s) * s;
}

double
wsUsed(const nn::LayerDesc &l, int weightBits)
{
    return double(l.weightCount()) * weightBits;
}

} // namespace

double
incaLayerUtilization(const nn::LayerDesc &layer, int arraySize)
{
    inca_assert(arraySize > 0, "array size must be positive");
    if (!layer.isConvLike())
        return 0.0;
    const double used = layer.kind == nn::LayerKind::FullyConnected
                            ? double(layer.inC)
                            : double(layer.inputCount());
    const double alloc = incaAllocated(layer, arraySize);
    return alloc == 0.0 ? 0.0 : used / alloc;
}

double
wsLayerUtilization(const nn::LayerDesc &layer, int arraySize,
                   int weightBits)
{
    inca_assert(arraySize > 0, "array size must be positive");
    if (!layer.isConvLike())
        return 0.0;
    const double alloc = wsAllocated(layer, arraySize, weightBits);
    return alloc == 0.0 ? 0.0 : wsUsed(layer, weightBits) / alloc;
}

double
incaNetworkUtilization(const nn::NetworkDesc &net, int arraySize)
{
    CacheKey key;
    key.add("inca-util");
    appendKey(key, net);
    key.add(arraySize);
    return utilizationCache().getOrCompute(key, [&] {
        double used = 0.0, alloc = 0.0;
        for (const auto &l : net.layers) {
            if (!l.isConvLike())
                continue;
            alloc += incaAllocated(l, arraySize);
            used += l.kind == nn::LayerKind::FullyConnected
                        ? double(l.inC)
                        : double(l.inputCount());
        }
        return alloc == 0.0 ? 0.0 : used / alloc;
    });
}

double
wsNetworkUtilization(const nn::NetworkDesc &net, int arraySize,
                     int weightBits)
{
    CacheKey key;
    key.add("ws-util");
    appendKey(key, net);
    key.add(arraySize).add(weightBits);
    return utilizationCache().getOrCompute(key, [&] {
        double used = 0.0, alloc = 0.0;
        for (const auto &l : net.layers) {
            if (!l.isConvLike())
                continue;
            alloc += wsAllocated(l, arraySize, weightBits);
            used += wsUsed(l, weightBits);
        }
        return alloc == 0.0 ? 0.0 : used / alloc;
    });
}

} // namespace arch
} // namespace inca
