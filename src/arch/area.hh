/**
 * @file
 * Chip area roll-up (paper Table V).
 *
 * INCA's area is defined by its projected 2D footprint (Section
 * V-B-6): plane width is twice the transistor thickness and 16 cells
 * stack vertically over each footprint, so one 16 x 16 x 64 stack
 * projects to 49.152 um^2 while one 128 x 128 baseline crossbar needs
 * 491.52 um^2. Buffer, ADC, DAC, and post-processing components are
 * counted per instance; the residual "others" (interconnect, control,
 * adders, registers) uses the per-tile constants the paper measured
 * with NeuroSim+.
 */

#ifndef INCA_ARCH_AREA_HH
#define INCA_ARCH_AREA_HH

#include "arch/config.hh"
#include "common/units.hh"

namespace inca {
namespace arch {

/** Component-wise chip area (Table V rows). */
struct AreaBreakdown
{
    SquareMeters buffer = 0.0;
    SquareMeters array = 0.0;
    SquareMeters adc = 0.0;
    SquareMeters dac = 0.0;
    SquareMeters postProcessing = 0.0;
    SquareMeters others = 0.0;

    SquareMeters total() const
    {
        return buffer + array + adc + dac + postProcessing + others;
    }
};

/** Area of one INCA 3D stack's projected footprint. */
SquareMeters incaStackArea(const IncaConfig &cfg);

/** Area of one baseline crossbar. */
SquareMeters baselineSubarrayArea(const BaselineConfig &cfg);

/** Full-chip INCA breakdown. */
AreaBreakdown incaArea(const IncaConfig &cfg);

/** Full-chip baseline breakdown. */
AreaBreakdown baselineArea(const BaselineConfig &cfg);

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_AREA_HH
