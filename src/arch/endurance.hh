/**
 * @file
 * RRAM endurance analysis (paper Section VI, "Future work for
 * endurance").
 *
 * The paper flags device endurance as INCA's open risk: IS dataflow
 * rewrites its activation cells at every layer of every batch, while
 * WS only rewrites weight cells at updates (training) or reloads
 * (capacity misses). This module quantifies the concern the paper
 * raises: writes per cell per iteration for both dataflows, and the
 * device lifetime each implies for a given endurance rating.
 */

#ifndef INCA_ARCH_ENDURANCE_HH
#define INCA_ARCH_ENDURANCE_HH

#include "arch/config.hh"
#include "nn/network.hh"

namespace inca {
namespace arch {

/** Endurance accounting for one network on one design. */
struct EnduranceReport
{
    /** Cell-write events per training iteration (whole chip). */
    double writesPerIteration = 0.0;
    /** Cells that ever get written. */
    double cellsWritten = 0.0;
    /** Mean writes per written cell per iteration. */
    double writesPerCellPerIteration = 0.0;
    /**
     * Training iterations until the most-stressed cells hit the
     * endurance rating.
     */
    double iterationsToWearOut = 0.0;
};

/** Typical endurance ratings (program/erase cycles per cell). */
inline constexpr double kEnduranceConservative = 1e6;  ///< early RRAM
inline constexpr double kEnduranceTypical = 1e9;       ///< current art
inline constexpr double kEnduranceOptimistic = 1e12;   ///< [25]-style

/**
 * INCA endurance per training iteration: activations written at every
 * layer (outputs into the next layer's planes), errors overwriting
 * activations in backprop, per image in the batch; each value is
 * aBits one-bit cell writes.
 */
EnduranceReport incaEndurance(const nn::NetworkDesc &net,
                              const IncaConfig &cfg, int batchSize,
                              double enduranceRating =
                                  kEnduranceTypical);

/**
 * WS baseline endurance per training iteration: weight cells
 * (original + transposed copies) reprogrammed once per update, plus
 * the activation/error storage PipeLayer keeps in RRAM per image.
 */
EnduranceReport baselineEndurance(const nn::NetworkDesc &net,
                                  const BaselineConfig &cfg,
                                  int batchSize,
                                  double enduranceRating =
                                      kEnduranceTypical);

} // namespace arch
} // namespace inca

#endif // INCA_ARCH_ENDURANCE_HH
