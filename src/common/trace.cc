#include "common/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

namespace inca {
namespace trace {

namespace {

/**
 * Captured during static initialization, which the runtime performs
 * on the main thread: lets the recorder label the main thread without
 * any cooperation from drivers.
 */
const std::thread::id gMainThread = std::this_thread::get_id();

/** Per-thread event buffer; owned by the registry, used by one thread. */
struct ThreadBuf
{
    std::mutex mutex; ///< appends vs. cross-thread flush
    std::uint32_t tid = 0;
    std::string threadName; ///< sticky; survives start()/clear()
    std::vector<Event> events;
};

struct State
{
    std::atomic<bool> enabled{false};
    std::mutex mutex; ///< guards bufs, path, nextTid
    std::vector<ThreadBuf *> bufs;
    std::string path;
    std::uint32_t nextTid = 0;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    std::mutex flushMutex; ///< guards flushCallbacks only
    std::vector<std::function<void()>> flushCallbacks;
};

void
flushAtExit()
{
    if (enabled())
        stop();
}

State &
state()
{
    // Leaked on purpose: events may be recorded during static
    // destruction of other modules; the buffers must outlive them.
    // First use also arms tracing from INCA_TRACE and registers the
    // exit-time flush so every binary honors the variable.
    static State *s = [] {
        auto *st = new State;
        if (const char *env = std::getenv("INCA_TRACE")) {
            if (*env != '\0') {
                st->path = env;
                st->enabled.store(true, std::memory_order_relaxed);
                std::atexit(flushAtExit);
            }
        }
        return st;
    }();
    return *s;
}

/**
 * Touch the recorder during static initialization so INCA_TRACE is
 * armed (and the exit-time flush registered) even in a process whose
 * instrumented paths never fire -- the user still gets a valid, if
 * empty, trace file.
 */
const bool gInitAtStartup = (state(), true);

std::int64_t
nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - state().epoch)
        .count();
}

/** The calling thread's buffer, created and registered on first use. */
ThreadBuf &
localBuf()
{
    thread_local ThreadBuf *tls = nullptr;
    if (tls == nullptr) {
        auto *buf = new ThreadBuf;
        State &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        buf->tid = s.nextTid++;
        if (std::this_thread::get_id() == gMainThread)
            buf->threadName = "main";
        s.bufs.push_back(buf);
        tls = buf;
    }
    return *tls;
}

void
emit(Event &&e)
{
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    e.tid = buf.tid;
    buf.events.push_back(std::move(e));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** Serialize under the registry lock (buffers locked one at a time). */
std::string
toJsonLocked(State &s)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (ThreadBuf *buf : s.bufs) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        if (!buf->threadName.empty()) {
            sep();
            os << "{\"name\": \"thread_name\", \"ph\": \"M\", "
                  "\"pid\": 1, \"tid\": "
               << buf->tid << ", \"args\": {\"name\": \""
               << jsonEscape(buf->threadName) << "\"}}";
        }
        for (const Event &e : buf->events) {
            sep();
            os << "{\"name\": \"" << jsonEscape(e.name)
               << "\", \"ph\": \"" << e.ph
               << "\", \"pid\": 1, \"tid\": " << e.tid
               << ", \"ts\": " << e.tsUs;
            if (e.ph == 'X')
                os << ", \"dur\": " << e.durUs
                   << ", \"cat\": \"inca\"";
            else if (e.ph == 'C') {
                char v[48];
                std::snprintf(v, sizeof(v), "%.9g", e.value);
                os << ", \"args\": {\"value\": " << v << "}";
            } else if (e.ph == 'i') {
                os << ", \"s\": \"t\"";
            } else if (e.ph == 's' || e.ph == 'f') {
                // Flow pairs carry a category (viewers match flows by
                // it) and, for the end, enclosing-slice binding so
                // the arrow lands on the slice the timestamp is in.
                os << ", \"cat\": \"inca\", \"id\": " << e.id;
                if (e.ph == 'f')
                    os << ", \"bp\": \"e\"";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace

bool
enabled()
{
    return state().enabled.load(std::memory_order_relaxed);
}

void
start(const std::string &path)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.path = path;
    s.enabled.store(true, std::memory_order_relaxed);
}

std::string
stop()
{
    State &s = state();
    // Drain the flush callbacks before taking the registry lock and
    // before disabling: they may emit events (which locks buffers
    // and, for a first-use thread, the registry), and those events
    // must make the serialization below.
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard<std::mutex> lock(s.flushMutex);
        callbacks = s.flushCallbacks;
    }
    for (const auto &cb : callbacks)
        cb();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.enabled.store(false, std::memory_order_relaxed);
    const std::string json = toJsonLocked(s);
    if (!s.path.empty()) {
        std::ofstream out(s.path);
        if (out)
            out << json;
    }
    return json;
}

void
atFlush(std::function<void()> callback)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.flushMutex);
    s.flushCallbacks.push_back(std::move(callback));
}

void
clear()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (ThreadBuf *buf : s.bufs) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        buf->events.clear();
    }
}

std::string
toJson()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return toJsonLocked(s);
}

std::vector<Event>
snapshot()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<Event> out;
    for (ThreadBuf *buf : s.bufs) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
    return out;
}

std::size_t
eventCount()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::size_t n = 0;
    for (ThreadBuf *buf : s.bufs) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        n += buf->events.size();
    }
    return n;
}

void
counter(const std::string &name, double value)
{
    if (!enabled())
        return;
    Event e;
    e.name = name;
    e.ph = 'C';
    e.tsUs = nowUs();
    e.value = value;
    emit(std::move(e));
}

void
counterAt(const std::string &name, std::int64_t tsUs, double value)
{
    if (!enabled())
        return;
    Event e;
    e.name = name;
    e.ph = 'C';
    e.tsUs = tsUs;
    e.value = value;
    emit(std::move(e));
}

void
emitInstant(const std::string &name, std::int64_t tsUs)
{
    if (!enabled())
        return;
    Event e;
    e.name = name;
    e.ph = 'i';
    e.tsUs = tsUs;
    emit(std::move(e));
}

void
emitFlow(const std::string &name, std::uint64_t id,
         std::int64_t fromUs, std::int64_t toUs)
{
    if (!enabled())
        return;
    Event s;
    s.name = name;
    s.ph = 's';
    s.tsUs = fromUs;
    s.id = id;
    emit(std::move(s));
    Event f;
    f.name = name;
    f.ph = 'f';
    f.tsUs = toUs;
    f.id = id;
    emit(std::move(f));
}

void
nameThread(const std::string &name)
{
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.threadName = name;
}

std::string
spanName(const char *prefix, const std::string &suffix)
{
    return enabled() ? prefix + suffix : std::string();
}

std::int64_t
nowMicros()
{
    return nowUs();
}

void
emitComplete(const std::string &name, std::int64_t startUs,
             std::int64_t durUs)
{
    if (!enabled())
        return;
    Event e;
    e.name = name;
    e.ph = 'X';
    e.tsUs = startUs;
    e.durUs = durUs;
    emit(std::move(e));
}

Span::Span(const char *name)
{
    if (!enabled())
        return;
    name_ = name;
    startUs_ = nowUs();
}

Span::Span(std::string name)
{
    if (!enabled())
        return;
    name_ = std::move(name);
    startUs_ = nowUs();
}

Span::~Span()
{
    if (startUs_ < 0 || !enabled())
        return;
    Event e;
    e.name = std::move(name_);
    e.ph = 'X';
    e.tsUs = startUs_;
    e.durUs = nowUs() - startUs_;
    emit(std::move(e));
}

} // namespace trace
} // namespace inca
