/**
 * @file
 * Content-addressed memoization for the analytic evaluation paths.
 *
 * Design-space sweeps evaluate many design points that share
 * sub-configurations: the same layer shape recurs dozens of times
 * inside one network, the same network is re-simulated at every
 * benchmark iteration, and the circuit/area/footprint models are pure
 * functions of small config structs. An EvalCache memoizes those
 * evaluations so sweeps scale with the number of *unique*
 * (tech, geometry, layer-shape) keys instead of the number of design
 * points.
 *
 * Correctness contract (and why it is easy to honor):
 *  - Every cached function is a pure function of its canonicalized
 *    inputs. A CacheKey is the full canonical byte string of those
 *    inputs -- the map compares whole keys, never just hashes, so a
 *    hash collision can degrade sharding but never aliasing.
 *  - A hit returns a copy of a value that was produced by the exact
 *    same arithmetic, so cached and uncached runs are bit-identical
 *    at every thread count.
 *  - Two threads that miss the same key concurrently both compute the
 *    (identical) value; the first insert wins. No lock is held while
 *    computing, so the shards compose with the ThreadPool fan-out.
 *
 * The cache is process-wide and ON by default; INCA_CACHE=0 (or
 * "off"/"false"/"no") disables every EvalCache, turning getOrCompute
 * into a plain call. Each cache keeps hit/miss/eviction counters and
 * the wall-clock spent in misses, from which the reports estimate the
 * time the hits saved (see sim::printPhaseTimes).
 */

#ifndef INCA_COMMON_CACHE_HH
#define INCA_COMMON_CACHE_HH

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.hh"

namespace inca {

/** True when the process-wide evaluation cache is enabled. */
bool cacheEnabled();

/** Programmatic override of the INCA_CACHE switch (testing hook). */
void setCacheEnabled(bool enabled);

/**
 * Parse an INCA_CACHE-style value: nullptr/"", "1", "on", "true",
 * "yes" enable; "0", "off", "false", "no" disable (case-insensitive).
 * Unrecognized values enable (cache on is the safe default: results
 * are bit-identical either way).
 */
bool cacheEnabledFromEnv(const char *value);

/**
 * Canonical content-addressed key: an append-only byte string plus an
 * incrementally maintained FNV-1a 64-bit hash (used only to pick a
 * shard; equality always compares the full bytes). Each field is
 * prefixed with a one-byte type tag so adjacent fields of different
 * types cannot alias. Append fields in a fixed, documented order --
 * the byte string IS the identity of the computation's inputs.
 */
class CacheKey
{
  public:
    CacheKey() { bytes_.reserve(96); }

    CacheKey &add(std::uint64_t v) { return tagged('u', &v, 8); }
    CacheKey &add(std::int64_t v) { return tagged('i', &v, 8); }
    CacheKey &add(int v)
    {
        const std::int64_t wide = v;
        return tagged('n', &wide, 8);
    }
    CacheKey &add(bool v)
    {
        const unsigned char b = v ? 1 : 0;
        return tagged('b', &b, 1);
    }
    CacheKey &add(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, 8);
        return tagged('d', &bits, 8);
    }
    CacheKey &add(const std::string &s)
    {
        add(std::uint64_t(s.size()));
        return tagged('s', s.data(), s.size());
    }
    CacheKey &add(const char *s) { return add(std::string(s)); }

    /** FNV-1a 64 hash of the bytes so far (shard selector). */
    std::uint64_t hash() const { return hash_; }

    /** The canonical byte string (full map key). */
    const std::string &bytes() const { return bytes_; }

    bool operator==(const CacheKey &o) const
    {
        return bytes_ == o.bytes_;
    }

  private:
    CacheKey &tagged(char tag, const void *data, std::size_t n)
    {
        append(&tag, 1);
        append(data, n);
        return *this;
    }

    void append(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        bytes_.append(reinterpret_cast<const char *>(p), n);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL; // FNV-1a prime
        }
    }

    std::string bytes_;
    std::uint64_t hash_ = 0xcbf29ce484222325ULL; // FNV offset basis
};

/** Point-in-time counters of one named cache. */
struct CacheStatsSnapshot
{
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    double missSeconds = 0.0; ///< wall clock spent computing misses

    /** Hits / lookups, in [0, 1]; 0 when never used. */
    double hitRate() const
    {
        const double lookups = double(hits) + double(misses);
        return lookups == 0.0 ? 0.0 : double(hits) / lookups;
    }

    /** Estimated wall clock the hits avoided (hits x mean miss). */
    double estimatedSavedSeconds() const
    {
        return misses == 0
                   ? 0.0
                   : double(hits) * (missSeconds / double(misses));
    }
};

/**
 * Registry interface every EvalCache implements. The hit/miss/
 * eviction counters and the miss-latency histogram live in the
 * process-wide metrics registry ("cache.<name>.hit" etc.), so
 * metrics::toJson() exports them alongside everything else; this base
 * keeps references and mirrors them into CacheStatsSnapshot for the
 * existing reports. When tracing is on, every hit/miss also samples a
 * trace counter series so cache efficiency is visible on the
 * timeline.
 */
class CacheBase
{
  public:
    explicit CacheBase(std::string name);
    virtual ~CacheBase();

    CacheBase(const CacheBase &) = delete;
    CacheBase &operator=(const CacheBase &) = delete;

    const std::string &name() const { return name_; }

    virtual CacheStatsSnapshot stats() const = 0;

    /** Drop every entry and reset counters (test isolation). */
    virtual void clear() = 0;

  protected:
    void recordHit();
    void recordMiss(double seconds);
    void recordEviction();
    void resetCounters();

    std::uint64_t hitCount() const { return hits_.value(); }
    std::uint64_t missCount() const { return misses_.value(); }
    std::uint64_t evictionCount() const { return evictions_.value(); }
    double missSecondsTotal() const { return missUs_.sum() / 1e6; }

  private:
    std::string name_;
    metrics::Counter &hits_;
    metrics::Counter &misses_;
    metrics::Counter &evictions_;
    metrics::Histogram &missUs_; ///< per-miss compute time [us]
    std::string traceHits_;      ///< trace counter-series names
    std::string traceMisses_;
};

/** Stats of every registered cache, in registration order. */
std::vector<CacheStatsSnapshot> cacheStats();

/** Clear every registered cache (differential-test isolation). */
void clearAllCaches();

/**
 * A sharded memoization map from CacheKey to V.
 *
 * Values must be copyable; getOrCompute returns by value so callers
 * may freely patch presentation-only fields (e.g. layer names) on the
 * copy. Shards use FIFO eviction once they exceed maxEntriesPerShard,
 * which bounds memory under adversarial sweep sizes while keeping the
 * common sweep (thousands of unique keys) fully resident.
 */
template <typename V>
class EvalCache : public CacheBase
{
  public:
    explicit EvalCache(std::string name,
                       std::size_t maxEntriesPerShard = 1 << 14,
                       int shards = 16)
        : CacheBase(std::move(name)),
          shards_(std::size_t(shards < 1 ? 1 : shards)),
          maxPerShard_(maxEntriesPerShard < 1 ? 1 : maxEntriesPerShard)
    {
    }

    /**
     * Return the cached value for @p key, or run @p compute, insert,
     * and return it. With the cache disabled this is exactly
     * compute().
     */
    template <typename Fn>
    V getOrCompute(const CacheKey &key, Fn &&compute)
    {
        if (!cacheEnabled())
            return compute();
        Shard &shard = shards_[key.hash() % shards_.size()];
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.map.find(key.bytes());
            if (it != shard.map.end()) {
                recordHit();
                return it->second;
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        V value = compute();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        recordMiss(seconds);
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto [it, inserted] = shard.map.emplace(key.bytes(), value);
            (void)it;
            if (inserted) {
                shard.order.push_back(key.bytes());
                while (shard.map.size() > maxPerShard_) {
                    shard.map.erase(shard.order.front());
                    shard.order.pop_front();
                    recordEviction();
                }
            }
        }
        return value;
    }

    CacheStatsSnapshot stats() const override
    {
        CacheStatsSnapshot s;
        s.name = name();
        s.hits = hitCount();
        s.misses = missCount();
        s.evictions = evictionCount();
        s.missSeconds = missSecondsTotal();
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            s.entries += shard.map.size();
        }
        return s;
    }

    void clear() override
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
            shard.order.clear();
        }
        resetCounters();
    }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, V> map;
        std::deque<std::string> order; ///< FIFO eviction queue
    };

    std::vector<Shard> shards_;
    std::size_t maxPerShard_;
};

} // namespace inca

#endif // INCA_COMMON_CACHE_HH
