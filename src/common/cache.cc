#include "common/cache.hh"

#include <cctype>
#include <cstdlib>

#include "common/trace.hh"

namespace inca {

namespace {

/** Registry of live caches, in registration order. */
struct Registry
{
    std::mutex mutex;
    std::vector<CacheBase *> caches;
};

Registry &
registry()
{
    // Leaked on purpose: caches are function-local statics in the
    // modules that own them and may be touched during static
    // destruction; the registry must outlive them all.
    static Registry *r = new Registry;
    return *r;
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> *flag = new std::atomic<bool>(
        cacheEnabledFromEnv(std::getenv("INCA_CACHE")));
    return *flag;
}

} // namespace

bool
cacheEnabledFromEnv(const char *value)
{
    if (value == nullptr || *value == '\0')
        return true;
    std::string v;
    for (const char *p = value; *p != '\0'; ++p)
        v.push_back(char(std::tolower(static_cast<unsigned char>(*p))));
    return !(v == "0" || v == "off" || v == "false" || v == "no");
}

bool
cacheEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setCacheEnabled(bool enabled)
{
    enabledFlag().store(enabled, std::memory_order_relaxed);
}

CacheBase::CacheBase(std::string name)
    : name_(std::move(name)),
      hits_(metrics::counter("cache." + name_ + ".hit")),
      misses_(metrics::counter("cache." + name_ + ".miss")),
      evictions_(metrics::counter("cache." + name_ + ".eviction")),
      missUs_(metrics::histogram("cache." + name_ + ".miss_us")),
      traceHits_("cache." + name_ + ".hits"),
      traceMisses_("cache." + name_ + ".misses")
{
    // A fresh cache starts from zero even if an earlier same-named
    // cache already registered these metrics (test isolation).
    resetCounters();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.caches.push_back(this);
}

void
CacheBase::recordHit()
{
    hits_.inc();
    if (trace::enabled())
        trace::counter(traceHits_, double(hits_.value()));
}

void
CacheBase::recordMiss(double seconds)
{
    misses_.inc();
    missUs_.observe(seconds * 1e6);
    if (trace::enabled())
        trace::counter(traceMisses_, double(misses_.value()));
}

void
CacheBase::recordEviction()
{
    evictions_.inc();
}

void
CacheBase::resetCounters()
{
    hits_.reset();
    misses_.reset();
    evictions_.reset();
    missUs_.reset();
}

CacheBase::~CacheBase()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto it = r.caches.begin(); it != r.caches.end(); ++it) {
        if (*it == this) {
            r.caches.erase(it);
            break;
        }
    }
}

std::vector<CacheStatsSnapshot>
cacheStats()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<CacheStatsSnapshot> out;
    out.reserve(r.caches.size());
    for (const CacheBase *cache : r.caches)
        out.push_back(cache->stats());
    return out;
}

void
clearAllCaches()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (CacheBase *cache : r.caches)
        cache->clear();
}

} // namespace inca
