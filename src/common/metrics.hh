/**
 * @file
 * Process-wide metrics registry: monotonic counters, gauges, and
 * fixed-bucket histograms.
 *
 * Every subsystem that wants an always-on number registers it here by
 * name ("cache.inca.layer.hit", "pool.task_wait_us",
 * "engine.layer_eval_us") and keeps the returned reference; updates
 * are single relaxed atomics, cheap enough to leave enabled in every
 * build. Two renderers consume the registry: sim::printPhaseTimes
 * appends a human-readable section to its report, and toJson()
 * serializes everything for machines. With INCA_METRICS=<path> set,
 * an atexit handler writes toJson() to the path -- no driver changes
 * needed, and nothing is printed to stdout/stderr, so driver stdout
 * stays byte-identical whether or not metrics are exported.
 *
 * Registered metrics live forever (the registry is leaked on
 * purpose); a name permanently denotes one metric of one kind, and
 * re-requesting it returns the same object. reset()/resetAll() zero
 * values without unregistering (test isolation).
 */

#ifndef INCA_COMMON_METRICS_HH
#define INCA_COMMON_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace inca {
namespace metrics {

/** Monotonically increasing event count. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written (or accumulated) level of some quantity. */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double v)
    {
        value_.fetch_add(v, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: bucket i counts observations <= bounds[i],
 * with one extra overflow bucket; sum and count track the exact
 * totals. Bounds are fixed at registration, so observe() is a scan
 * plus one relaxed increment -- safe from any pool thread.
 *
 * Alongside the buckets, the first kRetainCap raw observations are
 * retained verbatim, so percentile() answers with an exact
 * nearest-rank value instead of a bucket bound. Slot writes are
 * relaxed atomics: always race-free, and exact whenever the reader is
 * ordered after the writers (the end-of-run renderers run after the
 * pool joins, which is the only place percentiles are read).
 */
class Histogram
{
  public:
    /** Raw observations kept for exact percentiles (32 KiB/metric). */
    static constexpr std::size_t kRetainCap = 4096;

    Histogram(std::string name, std::vector<double> bounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** sum / count; 0 when empty. */
    double mean() const
    {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : sum() / double(n);
    }

    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; size bounds().size() + 1 (overflow last). */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Exact nearest-rank percentile of the retained samples for
     * @p q in (0, 100]; 0 when empty. Sorted on demand -- a
     * render-time call, not a hot-path one. Past kRetainCap
     * observations the summary covers the first kRetainCap (see
     * retainedSaturated()); the first such query warn()s once and
     * the JSON export flags the histogram "saturated".
     */
    double percentile(double q) const;

    /** Retained raw observations, in observation order. */
    std::vector<double> retained() const;

    /** True when observations beyond kRetainCap were dropped. */
    bool retainedSaturated() const
    {
        return count() > kRetainCap;
    }

    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::vector<std::atomic<double>> samples_;
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> count_{0};
    /** One-time saturation warn() latch (mutable: query-time state). */
    mutable std::atomic<bool> saturationWarned_{false};
};

/**
 * RAII latency probe: observes its own lifetime, in microseconds,
 * into a histogram at scope exit. The idiom for the *_us metrics:
 *   metrics::ScopedTimer t(layerEvalHistogram());
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : h_(h), start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        h_.observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &h_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * The registered metric named @p name, created on first request.
 * Requesting an existing name as a different kind is a simulator bug
 * (panics).
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);

/**
 * Histogram with the default microsecond buckets (1 us to ~34 s,
 * powers of two) -- the right shape for the *_us latency metrics.
 */
Histogram &histogram(const std::string &name);

/** Histogram with explicit bucket bounds (first request wins). */
Histogram &histogram(const std::string &name,
                     std::vector<double> bounds);

/**
 * Serialize every registered metric:
 * {"counters": {...}, "gauges": {...},
 *  "histograms": {name: {count, sum, buckets: [{le, count}...]}}}.
 */
std::string toJson();

/**
 * Human-readable dump of every metric with data, except the cache.*
 * family (printCacheStats already renders those). Used by
 * sim::printPhaseTimes.
 */
void printText(std::FILE *out);

/** Zero every registered metric (test isolation). */
void resetAll();

} // namespace metrics
} // namespace inca

#endif // INCA_COMMON_METRICS_HH
