/**
 * @file
 * Minimal INI-style configuration parsing.
 *
 * Examples and benches accept parameter overrides (array sizes, ADC
 * resolution, batch size, device constants) from simple text files or
 * inline strings:
 *
 *     # comment
 *     batch = 32
 *     [inca]
 *     subarray_size = 32
 *     adc_bits = 5
 *
 * Sections flatten into dotted keys ("inca.subarray_size"). Values
 * are stored as strings and converted on access with typed getters.
 */

#ifndef INCA_COMMON_CONFIG_HH
#define INCA_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace inca {

/** A flat string->string configuration with typed accessors. */
class Config
{
  public:
    /** Parse from INI-style text; fatal() on malformed lines. */
    static Config fromString(const std::string &text);

    /** Parse from a file; fatal() when unreadable. */
    static Config fromFile(const std::string &path);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** String value or @p fallback. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** Floating-point value or @p fallback; fatal() on bad number. */
    double getDouble(const std::string &key, double fallback) const;

    /** Integer value or @p fallback; fatal() on bad number. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /** Boolean (true/false/1/0/yes/no) or @p fallback. */
    bool getBool(const std::string &key, bool fallback) const;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** All keys in order. */
    std::vector<std::string> keys() const;

    /** Number of entries. */
    size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace inca

#endif // INCA_COMMON_CONFIG_HH
