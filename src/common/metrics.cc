#include "common/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace inca {
namespace metrics {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      samples_(kRetainCap)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        inca_assert(bounds_[i - 1] < bounds_[i],
                    "histogram '%s' bounds must increase",
                    name_.c_str());
}

void
Histogram::observe(double v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // count_ doubles as the retained-slot allocator: the first
    // kRetainCap observations keep their raw value for percentile().
    const std::uint64_t slot =
        count_.fetch_add(1, std::memory_order_relaxed);
    if (slot < kRetainCap)
        samples_[std::size_t(slot)].store(v,
                                          std::memory_order_relaxed);
}

std::vector<double>
Histogram::retained() const
{
    const std::uint64_t n =
        std::min<std::uint64_t>(count(), kRetainCap);
    std::vector<double> out(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = samples_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::percentile(double q) const
{
    inca_assert(q > 0.0 && q <= 100.0,
                "percentile %f outside (0, 100]", q);
    // Past the retain cap, "exact" percentiles silently cover only
    // the first kRetainCap observations; say so once per histogram
    // instead of degrading quietly.
    if (retainedSaturated() &&
        !saturationWarned_.exchange(true, std::memory_order_relaxed))
        warn("histogram '%s': %llu observations exceed the %zu "
             "retained samples; percentiles cover the first %zu "
             "only (exports carry \"saturated\": true)",
             name_.c_str(),
             static_cast<unsigned long long>(count()), kRetainCap,
             kRetainCap);
    std::vector<double> s = retained();
    if (s.empty())
        return 0.0;
    std::sort(s.begin(), s.end());
    // Nearest-rank: the smallest value with at least q% of the
    // samples at or below it.
    std::size_t rank =
        std::size_t(std::ceil(q / 100.0 * double(s.size())));
    if (rank < 1)
        rank = 1;
    if (rank > s.size())
        rank = s.size();
    return s[rank - 1];
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    for (auto &s : samples_)
        s.store(0.0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    saturationWarned_.store(false, std::memory_order_relaxed);
}

namespace {

enum class Kind
{
    Counter,
    Gauge,
    Histogram,
};

/** Registry of every metric, in registration order per kind. */
struct Registry
{
    std::mutex mutex;
    std::unordered_map<std::string, Kind> kinds;
    std::vector<Counter *> counters;
    std::vector<Gauge *> gauges;
    std::vector<Histogram *> histograms;
    std::unordered_map<std::string, Counter *> counterByName;
    std::unordered_map<std::string, Gauge *> gaugeByName;
    std::unordered_map<std::string, Histogram *> histogramByName;
};

void
writeAtExit()
{
    const char *path = std::getenv("INCA_METRICS");
    if (path == nullptr || *path == '\0')
        return;
    std::ofstream out(path);
    if (out)
        out << toJson();
}

Registry &
registry()
{
    // Leaked on purpose: metrics are updated from function-local
    // statics that may outlive any particular destruction order.
    // First use also registers the INCA_METRICS exit-time export so
    // every binary honors the variable without driver changes.
    static Registry *r = [] {
        auto *reg = new Registry;
        if (const char *env = std::getenv("INCA_METRICS")) {
            if (*env != '\0')
                std::atexit(writeAtExit);
        }
        return reg;
    }();
    return *r;
}

/**
 * Touch the registry during static initialization so INCA_METRICS is
 * honored even by a process that never registers a metric (the atexit
 * export then writes an empty registry rather than nothing).
 */
const bool gInitAtStartup = (registry(), true);

void
claimName(Registry &r, const std::string &name, Kind kind)
{
    auto [it, inserted] = r.kinds.emplace(name, kind);
    inca_assert(it->second == kind,
                "metric '%s' registered twice with different kinds",
                name.c_str());
    (void)inserted;
}

/** Default microsecond buckets: 1 us .. 2^25 us (~34 s), powers of 2. */
std::vector<double>
defaultUsBounds()
{
    std::vector<double> bounds;
    bounds.reserve(26);
    double b = 1.0;
    for (int i = 0; i <= 25; ++i, b *= 2.0)
        bounds.push_back(b);
    return bounds;
}

std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    claimName(r, name, Kind::Counter);
    auto it = r.counterByName.find(name);
    if (it != r.counterByName.end())
        return *it->second;
    auto *c = new Counter(name);
    r.counters.push_back(c);
    r.counterByName.emplace(name, c);
    return *c;
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    claimName(r, name, Kind::Gauge);
    auto it = r.gaugeByName.find(name);
    if (it != r.gaugeByName.end())
        return *it->second;
    auto *g = new Gauge(name);
    r.gauges.push_back(g);
    r.gaugeByName.emplace(name, g);
    return *g;
}

Histogram &
histogram(const std::string &name)
{
    return histogram(name, defaultUsBounds());
}

Histogram &
histogram(const std::string &name, std::vector<double> bounds)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    claimName(r, name, Kind::Histogram);
    auto it = r.histogramByName.find(name);
    if (it != r.histogramByName.end())
        return *it->second;
    auto *h = new Histogram(name, std::move(bounds));
    r.histograms.push_back(h);
    r.histogramByName.emplace(name, h);
    return *h;
}

std::string
toJson()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < r.counters.size(); ++i) {
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(r.counters[i]->name())
           << "\": " << r.counters[i]->value();
    }
    os << (r.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < r.gauges.size(); ++i) {
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(r.gauges[i]->name())
           << "\": " << num(r.gauges[i]->value());
    }
    os << (r.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < r.histograms.size(); ++i) {
        const Histogram &h = *r.histograms[i];
        os << (i ? "," : "") << "\n    \"" << jsonEscape(h.name())
           << "\": {\"count\": " << h.count()
           << ", \"sum\": " << num(h.sum())
           << ", \"p50\": " << num(h.percentile(50.0))
           << ", \"p95\": " << num(h.percentile(95.0))
           << ", \"p99\": " << num(h.percentile(99.0))
           << ", \"saturated\": "
           << (h.retainedSaturated() ? "true" : "false")
           << ", \"buckets\": [";
        const auto counts = h.bucketCounts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            os << (b ? ", " : "") << "{\"le\": ";
            if (b < h.bounds().size())
                os << num(h.bounds()[b]);
            else
                os << "\"+Inf\"";
            os << ", \"count\": " << counts[b] << "}";
        }
        os << "]}";
    }
    os << (r.histograms.empty() ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

void
printText(std::FILE *out)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto isCache = [](const std::string &name) {
        return name.rfind("cache.", 0) == 0;
    };
    bool any = false;
    for (const Counter *c : r.counters)
        any = any || (!isCache(c->name()) && c->value() > 0);
    for (const Gauge *g : r.gauges)
        any = any || (!isCache(g->name()) && g->value() != 0.0);
    for (const Histogram *h : r.histograms)
        any = any || (!isCache(h->name()) && h->count() > 0);
    if (!any)
        return;
    std::fprintf(out, "\nprocess metrics:\n");
    for (const Counter *c : r.counters) {
        if (isCache(c->name()) || c->value() == 0)
            continue;
        std::fprintf(out, "  %-40s %12llu\n", c->name().c_str(),
                     (unsigned long long)c->value());
    }
    for (const Gauge *g : r.gauges) {
        if (isCache(g->name()) || g->value() == 0.0)
            continue;
        std::fprintf(out, "  %-40s %12.4g\n", g->name().c_str(),
                     g->value());
    }
    for (const Histogram *h : r.histograms) {
        if (isCache(h->name()) || h->count() == 0)
            continue;
        std::fprintf(out,
                     "  %-40s %12llu obs  mean %10.1f  "
                     "p50 %10.1f  p95 %10.1f  p99 %10.1f%s\n",
                     h->name().c_str(), (unsigned long long)h->count(),
                     h->mean(), h->percentile(50.0),
                     h->percentile(95.0), h->percentile(99.0),
                     h->retainedSaturated() ? "  (p~first 4096)" : "");
    }
}

void
resetAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (Counter *c : r.counters)
        c->reset();
    for (Gauge *g : r.gauges)
        g->reset();
    for (Histogram *h : r.histograms)
        h->reset();
}

} // namespace metrics
} // namespace inca
