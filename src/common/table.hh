/**
 * @file
 * ASCII table rendering for paper-style report output.
 *
 * Bench binaries print the same rows/series the paper's tables and
 * figures report; TextTable keeps that output aligned and readable.
 */

#ifndef INCA_COMMON_TABLE_HH
#define INCA_COMMON_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace inca {

/** A simple column-aligned ASCII table. */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule row. */
    void addRule();

    /** Format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Format a double as "12.3x" style ratio. */
    static std::string ratio(double v, int precision = 1);

    /** Format an integer with thousands separators. */
    static std::string count(double v);

    /** Render the whole table. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

} // namespace inca

#endif // INCA_COMMON_TABLE_HH
