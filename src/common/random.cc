#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace inca {

void
SplitMix64::nextBatch(std::uint64_t *out, std::size_t count)
{
    // Counter form of the sequential recurrence: draw i mixes
    // state_ + (i+1)*gamma. Each iteration is independent, so the
    // compiler is free to vectorize the mix; the emitted sequence is
    // identical to `count` next() calls either way.
    constexpr std::uint64_t gamma = 0x9e3779b97f4a7c15ULL;
    const std::uint64_t base = state_;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t z = base + (std::uint64_t(i) + 1) * gamma;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        out[i] = z ^ (z >> 31);
    }
    state_ = base + std::uint64_t(count) * gamma;
}

void
SplitMix64::uniformBatch(double *out, std::size_t count)
{
    constexpr std::uint64_t gamma = 0x9e3779b97f4a7c15ULL;
    const std::uint64_t base = state_;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t z = base + (std::uint64_t(i) + 1) * gamma;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        out[i] = double(z >> 11) * 0x1.0p-53;
    }
    state_ = base + std::uint64_t(count) * gamma;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = detail::splitmixStep(sm);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

void
Rng::fillRaw(std::uint64_t *out, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = next();
}

void
Rng::fillUniform(double *out, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = double(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    // Avoid log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double twoPi = 2.0 * M_PI;
    spare_ = mag * std::sin(twoPi * u2);
    hasSpare_ = true;
    return mag * std::cos(twoPi * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

} // namespace inca
