#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace inca {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    return splitmix64(state_);
}

double
SplitMix64::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
SplitMix64::below(std::uint64_t n)
{
    inca_assert(n > 0, "below(0) is undefined");
    return next() % n;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    inca_assert(n > 0, "below(0) is undefined");
    return next() % n;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    // Avoid log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double twoPi = 2.0 * M_PI;
    spare_ = mag * std::sin(twoPi * u2);
    hasSpare_ = true;
    return mag * std::cos(twoPi * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

} // namespace inca
