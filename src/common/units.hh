/**
 * @file
 * Physical units and SI helpers used across the simulator.
 *
 * All physical quantities in the simulator are plain doubles in base SI
 * units: seconds, joules, watts, ohms, volts, meters and square meters.
 * The constants and literal-style helpers below make call sites explicit
 * about the unit of a numeric constant (e.g. `10_ns`, `32_pJ`) and
 * formatting helpers render quantities with an auto-selected SI prefix.
 */

#ifndef INCA_COMMON_UNITS_HH
#define INCA_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace inca {

/** Time in seconds. */
using Seconds = double;
/** Energy in joules. */
using Joules = double;
/** Power in watts. */
using Watts = double;
/** Resistance in ohms. */
using Ohms = double;
/** Electric potential in volts. */
using Volts = double;
/** Length in meters. */
using Meters = double;
/** Area in square meters. */
using SquareMeters = double;
/** Capacity in bytes. */
using Bytes = double;

namespace units {

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/** Binary capacity multipliers. */
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

} // namespace units

namespace literals {

// Time
constexpr Seconds operator""_s(long double v) { return double(v); }
constexpr Seconds operator""_ms(long double v) { return double(v) * 1e-3; }
constexpr Seconds operator""_us(long double v) { return double(v) * 1e-6; }
constexpr Seconds operator""_ns(long double v) { return double(v) * 1e-9; }
constexpr Seconds operator""_ps(long double v) { return double(v) * 1e-12; }
constexpr Seconds operator""_ns(unsigned long long v)
{
    return double(v) * 1e-9;
}

// Energy
constexpr Joules operator""_J(long double v) { return double(v); }
constexpr Joules operator""_mJ(long double v) { return double(v) * 1e-3; }
constexpr Joules operator""_uJ(long double v) { return double(v) * 1e-6; }
constexpr Joules operator""_nJ(long double v) { return double(v) * 1e-9; }
constexpr Joules operator""_pJ(long double v) { return double(v) * 1e-12; }
constexpr Joules operator""_pJ(unsigned long long v)
{
    return double(v) * 1e-12;
}

// Power
constexpr Watts operator""_W(long double v) { return double(v); }
constexpr Watts operator""_mW(long double v) { return double(v) * 1e-3; }
constexpr Watts operator""_uW(long double v) { return double(v) * 1e-6; }
constexpr Watts operator""_nW(long double v) { return double(v) * 1e-9; }

// Resistance
constexpr Ohms operator""_Ohm(long double v) { return double(v); }
constexpr Ohms operator""_kOhm(long double v) { return double(v) * 1e3; }
constexpr Ohms operator""_MOhm(long double v) { return double(v) * 1e6; }

// Potential
constexpr Volts operator""_V(long double v) { return double(v); }
constexpr Volts operator""_mV(long double v) { return double(v) * 1e-3; }

// Length / area
constexpr Meters operator""_nm(long double v) { return double(v) * 1e-9; }
constexpr Meters operator""_um(long double v) { return double(v) * 1e-6; }
constexpr Meters operator""_mm(long double v) { return double(v) * 1e-3; }
constexpr SquareMeters operator""_um2(long double v)
{
    return double(v) * 1e-12;
}
constexpr SquareMeters operator""_mm2(long double v)
{
    return double(v) * 1e-6;
}

// Capacity
constexpr Bytes operator""_B(unsigned long long v) { return double(v); }
constexpr Bytes operator""_KiB(unsigned long long v)
{
    return double(v) * units::kKiB;
}
constexpr Bytes operator""_MiB(unsigned long long v)
{
    return double(v) * units::kMiB;
}
constexpr Bytes operator""_GiB(unsigned long long v)
{
    return double(v) * units::kGiB;
}

} // namespace literals

/**
 * Render a quantity with an auto-selected SI prefix, e.g.
 * formatSi(3.2e-12, "J") -> "3.20 pJ".
 *
 * @param value quantity in base SI units
 * @param unit  base unit symbol appended after the prefix
 * @param precision number of digits after the decimal point
 */
std::string formatSi(double value, const std::string &unit,
                     int precision = 2);

/** Render a square-meter area in mm^2 with fixed precision. */
std::string formatAreaMm2(SquareMeters area, int precision = 3);

/** Integer ceiling division for non-negative operands. */
constexpr std::uint64_t
ceilDiv(std::uint64_t numer, std::uint64_t denom)
{
    return (numer + denom - 1) / denom;
}

} // namespace inca

#endif // INCA_COMMON_UNITS_HH
