/**
 * @file
 * Fixed-size thread pool and the parallel_for primitive every hot
 * path in the simulator is built on.
 *
 * Design constraints (and why):
 *  - No work stealing, no per-thread queues: a single job at a time,
 *    split into index ranges that workers claim from a shared atomic
 *    cursor. Results never depend on which thread ran which range,
 *    so numerical output is bit-identical at every thread count.
 *  - Each task owns a disjoint slice of the output; there are no
 *    atomics on floats and no reductions across tasks inside the
 *    pool. Any reduction is performed by the caller in index order.
 *  - Nested parallel_for calls (a worker task that itself calls
 *    parallel_for) run inline on the calling worker, so nesting can
 *    never deadlock the fixed-size pool.
 *  - Exceptions thrown by a task are captured and rethrown on the
 *    calling thread once every claimed range has retired.
 *
 * The pool size comes from INCA_NUM_THREADS (default: all hardware
 * threads); a value of 1 disables the workers entirely and every
 * parallel_for runs serially on the caller.
 */

#ifndef INCA_COMMON_THREAD_POOL_HH
#define INCA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace inca {

/** Fixed-size pool executing one chunked index-range job at a time. */
class ThreadPool
{
  public:
    /** Body of a parallel loop: called with [begin, end) sub-ranges. */
    using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

    /**
     * Create a pool with @p threads execution lanes (the caller counts
     * as one lane, so @p threads - 1 workers are spawned). @p threads
     * < 1 is clamped to 1.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes, including the calling thread. */
    int threadCount() const { return int(workers_.size()) + 1; }

    /**
     * Run @p body over [0, n) in chunks of at most @p grain indices.
     * Blocks until every index has been processed; rethrows the first
     * task exception. Serial when n <= grain, when the pool has one
     * lane, or when called from inside a pool task (nesting).
     */
    void parallelFor(std::int64_t n, std::int64_t grain,
                     const RangeFn &body);

    /**
     * The process-wide pool. Sized from INCA_NUM_THREADS on first
     * use; 1 forces the serial path.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p threads lanes (testing
     * hook; also the programmatic equivalent of INCA_NUM_THREADS).
     * Must not be called while a parallelFor is in flight.
     */
    static void setGlobalThreads(int threads);

    /** Lanes of the global pool without forcing its creation order. */
    static int globalThreadCount() { return global().threadCount(); }

  private:
    struct Job;

    void workerLoop(int index);
    void runJob(Job &job);

    std::vector<std::thread> workers_;

    std::mutex mutex_;              ///< guards job_, generation_, stop_
    std::condition_variable wake_;  ///< workers wait here for a job
    std::condition_variable done_;  ///< caller waits here for retirement
    std::mutex submitMutex_;        ///< serializes concurrent submitters
    Job *job_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * parallel_for over [0, n): chunked onto the global pool. @p grain is
 * the smallest range worth dispatching (amortizes scheduling).
 */
void parallel_for(std::int64_t n, std::int64_t grain,
                  const ThreadPool::RangeFn &body);

/** parallel_for with a per-index body instead of a range body. */
void parallel_for_each(std::int64_t n, std::int64_t grain,
                       const std::function<void(std::int64_t)> &body);

} // namespace inca

#endif // INCA_COMMON_THREAD_POOL_HH
