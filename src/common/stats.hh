/**
 * @file
 * Lightweight named-statistics registry.
 *
 * A StatSet is a flat, ordered map from hierarchical stat names (e.g.
 * "energy.adc", "accesses.buffer.read") to double accumulators. Engines
 * accumulate into a StatSet while simulating; reports group and format
 * them. StatSets compose with operator+= so per-layer stats roll up into
 * per-network stats.
 */

#ifndef INCA_COMMON_STATS_HH
#define INCA_COMMON_STATS_HH

#include <map>
#include <string>
#include <vector>

namespace inca {

/** An ordered collection of named double accumulators. */
class StatSet
{
  public:
    /** Add @p delta to the stat named @p name (creating it at 0). */
    void add(const std::string &name, double delta);

    /** Overwrite the stat named @p name. */
    void set(const std::string &name, double value);

    /** @return the value of @p name, or 0 when absent. */
    double get(const std::string &name) const;

    /** @return true when a stat named @p name exists. */
    bool has(const std::string &name) const;

    /** Accumulate every stat of @p other into this set. */
    StatSet &operator+=(const StatSet &other);

    /** Multiply every stat by @p factor (e.g. replicate per image). */
    StatSet &operator*=(double factor);

    /**
     * Sum of all stats whose name starts with @p prefix followed by
     * either end-of-name or a '.' separator.
     */
    double sumPrefix(const std::string &prefix) const;

    /** All (name, value) pairs in name order. */
    const std::map<std::string, double> &entries() const { return stats_; }

    /** Remove all stats. */
    void clear() { stats_.clear(); }

    /** Render as "name = value" lines (SI-formatted when unit given). */
    std::string format(const std::string &title = "") const;

  private:
    std::map<std::string, double> stats_;
};

} // namespace inca

#endif // INCA_COMMON_STATS_HH
