/**
 * @file
 * Chrome trace-event recorder: RAII spans, counter series, and thread
 * naming, serialized as the JSON array `chrome://tracing` and Perfetto
 * load directly.
 *
 * Design constraints (and why):
 *  - Near-zero cost when disabled: every entry point first reads one
 *    process-wide atomic flag; a disarmed Span stores nothing and
 *    never reads the clock. Tracing is OFF unless INCA_TRACE=<path>
 *    is set in the environment or start() is called.
 *  - Lock-sharded, per-thread-buffered: each thread appends events to
 *    its own buffer under its own (uncontended) mutex, so recording
 *    from inside ThreadPool tasks never serializes the workers. The
 *    per-buffer locks exist only so a flush from another thread is
 *    race-free (TSan-clean), not for throughput.
 *  - Thread names are sticky state on the buffer, not buffered
 *    events, so a pool worker named before tracing starts still
 *    appears named in the flushed trace.
 *
 * With INCA_TRACE set, the trace is flushed to the given path by an
 * atexit handler -- drivers need no explicit shutdown call, and
 * nothing is ever written to stdout/stderr, keeping driver stdout
 * byte-identical between traced and untraced runs.
 */

#ifndef INCA_COMMON_TRACE_HH
#define INCA_COMMON_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace inca {
namespace trace {

/** One buffered trace event (test/tooling view of the buffers). */
struct Event
{
    std::string name; ///< span or counter series name
    /**
     * 'X' complete span, 'C' counter sample, 'i' instant,
     * 's'/'f' flow start/end (paired by id).
     */
    char ph = 'X';
    std::uint32_t tid = 0;
    std::int64_t tsUs = 0;     ///< microseconds since process start
    std::int64_t durUs = 0;    ///< span duration ('X' only)
    double value = 0.0;        ///< counter sample ('C' only)
    std::uint64_t id = 0;      ///< flow pairing id ('s'/'f' only)
};

/** True when events are being recorded (INCA_TRACE or start()). */
bool enabled();

/**
 * Enable recording programmatically (testing hook and the
 * programmatic equivalent of INCA_TRACE=@p path). An empty path
 * records to memory only; stop() then still returns the JSON.
 */
void start(const std::string &path);

/**
 * Disable recording, serialize everything buffered so far, write it
 * to the start()/INCA_TRACE path (when non-empty), and return the
 * JSON. Buffered events are kept until clear().
 */
std::string stop();

/**
 * Register a callback stop() runs before it serializes -- the hook
 * for modules holding in-flight instrumentation (live phase timers)
 * that must land in the trace even when the process exits early via
 * fatal(): the INCA_TRACE atexit flush calls stop(), stop() drains
 * the callbacks, and whatever they emit is in the file. Callbacks
 * run on every stop(), outside the recorder's locks (emitting from
 * one is safe), in registration order; they must be idempotent.
 */
void atFlush(std::function<void()> callback);

/** Drop every buffered event (test isolation). Names persist. */
void clear();

/** Serialize the current buffers as Chrome trace-event JSON. */
std::string toJson();

/** Copy of every buffered event, in per-thread order (test hook). */
std::vector<Event> snapshot();

/** Total buffered events across all threads. */
std::size_t eventCount();

/** Record one sample of the counter series @p name. No-op when off. */
void counter(const std::string &name, double value);

/**
 * Record one sample of the counter series @p name at an explicit
 * timestamp -- for series replayed at simulated time (the event
 * backend's ready-queue depth) rather than sampled at wall time.
 * No-op when off.
 */
void counterAt(const std::string &name, std::int64_t tsUs,
               double value);

/**
 * Emit one thread-scoped instant ('i') event at @p tsUs -- a
 * zero-cost marker (sync joins, the makespan line). No-op when off.
 */
void emitInstant(const std::string &name, std::int64_t tsUs);

/**
 * Emit one flow arrow: a flow-start ('s') event at @p fromUs paired
 * by @p id with a flow-end ('f', enclosing-slice binding) event at
 * @p toUs. Viewers draw the arrow between the slices enclosing the
 * two timestamps -- the critical-path overlay. No-op when off.
 */
void emitFlow(const std::string &name, std::uint64_t id,
              std::int64_t fromUs, std::int64_t toUs);

/**
 * Name the calling thread in the trace ("pool-worker-3"). Always
 * recorded (sticky, not an event), so it survives start()/clear()
 * and threads created before tracing was enabled stay named.
 */
void nameThread(const std::string &name);

/**
 * Build "prefix + suffix" only when tracing is on; otherwise return
 * an empty string without allocating. The idiom for dynamic span
 * names on hot paths: trace::Span s(trace::spanName("fwd ", name));
 */
std::string spanName(const char *prefix, const std::string &suffix);

/** Microseconds since the recorder's epoch (the Span timebase). */
std::int64_t nowMicros();

/**
 * Emit one complete ('X') span directly -- for atFlush() callbacks
 * that must record a still-open scope (no Span object to destroy).
 * No-op when tracing is off.
 */
void emitComplete(const std::string &name, std::int64_t startUs,
                  std::int64_t durUs);

/**
 * RAII span: construction arms it (when tracing is on), destruction
 * emits one complete ('X') event covering the scope. A span armed
 * while tracing stops mid-scope is dropped.
 */
class Span
{
  public:
    explicit Span(const char *name);
    explicit Span(std::string name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string name_;
    std::int64_t startUs_ = -1; ///< -1 = disarmed
};

} // namespace trace
} // namespace inca

#endif // INCA_COMMON_TRACE_HH
