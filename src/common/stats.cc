#include "common/stats.hh"

#include <cstdio>
#include <sstream>

namespace inca {

void
StatSet::add(const std::string &name, double delta)
{
    stats_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

StatSet &
StatSet::operator+=(const StatSet &other)
{
    for (const auto &[name, value] : other.stats_)
        stats_[name] += value;
    return *this;
}

StatSet &
StatSet::operator*=(double factor)
{
    for (auto &[name, value] : stats_)
        value *= factor;
    return *this;
}

double
StatSet::sumPrefix(const std::string &prefix) const
{
    double sum = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        const std::string &name = it->first;
        if (name.compare(0, prefix.size(), prefix) != 0)
            break;
        if (name.size() == prefix.size() || name[prefix.size()] == '.')
            sum += it->second;
    }
    return sum;
}

std::string
StatSet::format(const std::string &title) const
{
    std::ostringstream os;
    if (!title.empty())
        os << title << "\n";
    for (const auto &[name, value] : stats_) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "  %-40s %.6g\n", name.c_str(),
                      value);
        os << buf;
    }
    return os.str();
}

} // namespace inca
