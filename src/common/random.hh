/**
 * @file
 * Deterministic random number generation.
 *
 * The simulator must be reproducible run-to-run, so all stochastic
 * components (dataset synthesis, weight init, noise injection) draw from
 * an explicitly seeded xoshiro256** generator rather than global state.
 */

#ifndef INCA_COMMON_RANDOM_HH
#define INCA_COMMON_RANDOM_HH

#include <cstddef>
#include <cstdint>

#include "common/logging.hh"

namespace inca {

/** Default seed used when none is supplied. */
inline constexpr std::uint64_t kDefaultSeed = 0x1234abcd5678ef01ULL;

namespace detail {

/** One splitmix64 step: advance @p x by gamma and mix. */
inline std::uint64_t
splitmixStep(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace detail

/**
 * splitmix64: the minimal 64-bit generator used to expand seeds (and
 * by the DSE strategies, which need many cheap independent streams
 * that are trivially reproducible from a single integer). One
 * uint64_t of state, one add + two xor-shift-multiplies per draw;
 * passes BigCrush. Identical to the expander Rng uses internally, so
 * SplitMix64(seed).next() is also the documented seeding path of the
 * simulator's xoshiro256** streams.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = kDefaultSeed)
        : state_(seed)
    {
    }

    // The single-draw methods are inline: Monte-Carlo hot loops
    // (notably the per-cell campaign writes) make tens of millions
    // of calls per run, and the call overhead used to show up as
    // ~15% of campaign wall-clock in gprof.

    /** Next raw 64-bit value. */
    std::uint64_t next() { return detail::splitmixStep(state_); }

    /** Uniform double in [0, 1). */
    double uniform() { return double(next() >> 11) * 0x1.0p-53; }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t below(std::uint64_t n)
    {
        inca_assert(n > 0, "below(0) is undefined");
        return next() % n;
    }

    /**
     * Fill @p out with the next @p count raw values. Byte-identical
     * to @p count sequential next() calls on the same stream key --
     * splitmix64's state walk is a plain counter (state += gamma per
     * draw), so draw i mixes state + (i+1)*gamma independently of
     * draws before it. That makes the batch trivially vectorizable
     * while the guarantee holds by construction; the property test
     * pins it anyway.
     */
    void nextBatch(std::uint64_t *out, std::size_t count);

    /** Batched uniform(): out[i] in [0, 1), same sequence guarantee. */
    void uniformBatch(double *out, std::size_t count);

    /** A child generator seeded from this stream (stream splitting). */
    SplitMix64 split() { return SplitMix64(next()); }

  private:
    std::uint64_t state_;
};

/** xoshiro256** with splitmix64 seeding; fast and deterministic. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = kDefaultSeed);

    // next()/uniform()/below() are inline for the same hot-loop
    // reason as SplitMix64's -- see the note there.

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        const std::uint64_t result = detail::rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = detail::rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return double(next() >> 11) * 0x1.0p-53; }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t below(std::uint64_t n)
    {
        inca_assert(n > 0, "below(0) is undefined");
        return next() % n;
    }

    /**
     * Fill @p out with the next @p count raw values -- exactly the
     * sequence @p count next() calls would produce. xoshiro256** is
     * inherently serial, so this is a buffering convenience (one call
     * per chunk instead of one per draw in hot loops), not a SIMD
     * kernel.
     */
    void fillRaw(std::uint64_t *out, std::size_t count);

    /** Batched uniform(): out[i] in [0, 1), same draw sequence. */
    void fillUniform(double *out, std::size_t count);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace inca

#endif // INCA_COMMON_RANDOM_HH
