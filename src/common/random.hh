/**
 * @file
 * Deterministic random number generation.
 *
 * The simulator must be reproducible run-to-run, so all stochastic
 * components (dataset synthesis, weight init, noise injection) draw from
 * an explicitly seeded xoshiro256** generator rather than global state.
 */

#ifndef INCA_COMMON_RANDOM_HH
#define INCA_COMMON_RANDOM_HH

#include <cstdint>

namespace inca {

/** Default seed used when none is supplied. */
inline constexpr std::uint64_t kDefaultSeed = 0x1234abcd5678ef01ULL;

/**
 * splitmix64: the minimal 64-bit generator used to expand seeds (and
 * by the DSE strategies, which need many cheap independent streams
 * that are trivially reproducible from a single integer). One
 * uint64_t of state, one add + two xor-shift-multiplies per draw;
 * passes BigCrush. Identical to the expander Rng uses internally, so
 * SplitMix64(seed).next() is also the documented seeding path of the
 * simulator's xoshiro256** streams.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = kDefaultSeed)
        : state_(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** A child generator seeded from this stream (stream splitting). */
    SplitMix64 split() { return SplitMix64(next()); }

  private:
    std::uint64_t state_;
};

/** xoshiro256** with splitmix64 seeding; fast and deterministic. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = kDefaultSeed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace inca

#endif // INCA_COMMON_RANDOM_HH
