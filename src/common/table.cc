#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace inca {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    inca_assert(cells.size() == headers_.size(),
                "row arity %zu != header arity %zu", cells.size(),
                headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    rows_.emplace_back();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::ratio(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
TextTable::count(double v)
{
    char raw[64];
    std::snprintf(raw, sizeof(raw), "%.0f", v);
    std::string s(raw);
    bool negative = !s.empty() && s[0] == '-';
    std::string digits = negative ? s.substr(1) : s;
    std::string out;
    int since = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since == 3) {
            out.push_back(',');
            since = 0;
        }
        out.push_back(*it);
        ++since;
    }
    std::reverse(out.begin(), out.end());
    return negative ? "-" + out : out;
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emitRow = [&](std::ostringstream &os,
                       const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };
    auto emitRule = [&](std::ostringstream &os) {
        os << "+";
        for (size_t c = 0; c < widths.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "+";
        os << "\n";
    };

    std::ostringstream os;
    emitRule(os);
    emitRow(os, headers_);
    emitRule(os);
    for (const auto &row : rows_) {
        if (row.empty())
            emitRule(os);
        else
            emitRow(os, row);
    }
    emitRule(os);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace inca
