/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits(1).
 * warn()   - something is modelled approximately; execution continues.
 * inform() - neutral status message.
 */

#ifndef INCA_COMMON_LOGGING_HH
#define INCA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace inca {

/** Report a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unusable user configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a modelling approximation or suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report neutral status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Quiet mode suppresses warn()/inform() output (used by tests to keep
 * logs clean); panic()/fatal() always print.
 */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool quiet();

/** Assert an invariant with a formatted message; panics when violated. */
#define inca_assert(cond, fmt, ...)                                          \
    do {                                                                     \
        if (!(cond))                                                         \
            ::inca::panic("assertion '%s' failed: " fmt, #cond,             \
                          ##__VA_ARGS__);                                    \
    } while (0)

} // namespace inca

#endif // INCA_COMMON_LOGGING_HH
