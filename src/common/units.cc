#include "common/units.hh"

#include <array>
#include <cmath>
#include <cstdio>

namespace inca {

std::string
formatSi(double value, const std::string &unit, int precision)
{
    struct Prefix { double scale; const char *symbol; };
    static constexpr std::array<Prefix, 11> prefixes = {{
        {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
        {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
        {1e-15, "f"},
    }};

    const double mag = std::fabs(value);
    double scale = 1.0;
    const char *symbol = "";
    if (mag > 0.0) {
        for (const auto &p : prefixes) {
            if (mag >= p.scale) {
                scale = p.scale;
                symbol = p.symbol;
                break;
            }
        }
        // Smaller than the smallest prefix: use the smallest.
        if (mag < prefixes.back().scale) {
            scale = prefixes.back().scale;
            symbol = prefixes.back().symbol;
        }
    }

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s%s", precision, value / scale,
                  symbol, unit.c_str());
    return buf;
}

std::string
formatAreaMm2(SquareMeters area, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f mm^2", precision, area * 1e6);
    return buf;
}

} // namespace inca
