#include "common/export_util.hh"

#include <cstdlib>
#include <sstream>

#include "common/cache.hh"
#include "common/thread_pool.hh"

namespace inca {

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
envJson(const char *name)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return "null";
    return "\"" + jsonEscape(v) + "\"";
}

std::string
provenanceJson(const std::string &leadMember,
               const std::string &indent)
{
    std::ostringstream os;
    os << indent << leadMember << ",\n";
    os << indent << "\"threads\": "
       << ThreadPool::globalThreadCount() << ",\n";
    os << indent << "\"cache\": "
       << (cacheEnabled() ? "true" : "false") << ",\n";
#ifdef INCA_BUILD_TYPE
    os << indent << "\"build_type\": \"" << jsonEscape(INCA_BUILD_TYPE)
       << "\",\n";
#else
    os << indent << "\"build_type\": \"unknown\",\n";
#endif
    os << indent << "\"env\": {";
    bool firstEnv = true;
    for (const char *name : {"INCA_TRACE", "INCA_METRICS",
                             "INCA_NUM_THREADS", "INCA_CACHE"}) {
        if (!firstEnv)
            os << ", ";
        firstEnv = false;
        os << "\"" << name << "\": " << envJson(name);
    }
    os << "}\n";
    return os.str();
}

} // namespace inca
