/**
 * @file
 * Shared export plumbing: the RFC-4180 CSV field quoter, the JSON
 * string escaper, and the standard run-provenance manifest. These
 * started life inside sim/export.cc; they live in common so every
 * emitter (per-layer run export, DSE frontier, bottleneck reports)
 * writes the same bytes for the same content instead of each carrying
 * a private copy that drifts.
 */

#ifndef INCA_COMMON_EXPORT_UTIL_HH
#define INCA_COMMON_EXPORT_UTIL_HH

#include <string>

namespace inca {

/**
 * Quote a CSV field per RFC 4180: fields containing a comma, a
 * double quote, or a line break are wrapped in double quotes, with
 * embedded quotes doubled. Layer names and stat keys come from
 * user-definable network descriptions, so emitting them raw would
 * corrupt the table (a comma in a layer name shifts every column
 * after it).
 */
std::string csvField(const std::string &s);

/** Escape a string for a JSON literal (names are simple but safe). */
std::string jsonEscape(const std::string &s);

/** Value of an environment variable as a JSON literal; null if unset. */
std::string envJson(const char *name);

/**
 * The standard run-provenance manifest body: enough to reproduce the
 * run -- one caller-supplied identity member (a config key hash or a
 * run signature; pre-rendered, e.g. "\"config_key_hash\": \"0x12\""),
 * the execution knobs (threads, cache), the build, and the INCA_*
 * environment the process saw. Returns the members between the
 * braces, each line prefixed with @p indent and terminated with a
 * newline (no trailing comma), so the caller writes:
 *
 *   os << "  \"provenance\": {\n"
 *      << provenanceJson(lead, "    ") << "  }";
 */
std::string provenanceJson(const std::string &leadMember,
                           const std::string &indent);

} // namespace inca

#endif // INCA_COMMON_EXPORT_UTIL_HH
