#include "common/arena.hh"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/metrics.hh"

namespace inca {
namespace arena {

namespace {

/** Free-list caps: past these the returned buffer is simply freed.
 * Generous for the conv workspaces this serves (a few hundred MB of
 * campaign fan-out at most) while bounding a pathological caller. */
constexpr std::size_t kMaxCachedBuffers = 64;
constexpr std::size_t kMaxCachedBytes = std::size_t(512) << 20;

struct Pool
{
    std::mutex mutex;
    std::vector<std::vector<float>> free;
    std::size_t freeBytes = 0;
    std::uint64_t leases = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    metrics::Counter &leaseCtr = metrics::counter("arena.lease");
    metrics::Counter &hitCtr = metrics::counter("arena.hit");
    metrics::Counter &missCtr = metrics::counter("arena.miss");
    metrics::Gauge &cachedGauge = metrics::gauge("arena.cached_bytes");
};

Pool &
pool()
{
    // Leaked on purpose: leases may be released from atexit-ordered
    // destructors (thread-local caches, static tensors).
    static Pool *p = new Pool();
    return *p;
}

void
release(std::vector<float> buf)
{
    if (buf.capacity() == 0)
        return;
    const std::size_t bytes = buf.capacity() * sizeof(float);
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    if (p.free.size() >= kMaxCachedBuffers ||
        p.freeBytes + bytes > kMaxCachedBytes)
        return; // buf frees on scope exit, outside the lock path
    p.freeBytes += bytes;
    p.free.push_back(std::move(buf));
    p.cachedGauge.set(double(p.freeBytes));
}

} // namespace

ScratchLease::~ScratchLease()
{
    release(std::move(buf_));
}

ScratchLease &
ScratchLease::operator=(ScratchLease &&other) noexcept
{
    if (this != &other) {
        release(std::move(buf_));
        buf_ = std::move(other.buf_);
        size_ = other.size_;
        other.buf_.clear();
        other.size_ = 0;
    }
    return *this;
}

ScratchLease
scratchFloats(std::size_t count, bool zero)
{
    Pool &p = pool();
    std::vector<float> buf;
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        ++p.leases;
        // Smallest cached buffer that fits, so big leases do not
        // squat on buffers small ones could reuse exactly.
        std::size_t best = p.free.size();
        for (std::size_t i = 0; i < p.free.size(); ++i) {
            const std::size_t cap = p.free[i].capacity();
            if (cap < count)
                continue;
            if (best == p.free.size() ||
                cap < p.free[best].capacity())
                best = i;
        }
        if (best != p.free.size()) {
            buf = std::move(p.free[best]);
            p.free.erase(p.free.begin() + std::ptrdiff_t(best));
            p.freeBytes -= buf.capacity() * sizeof(float);
            p.cachedGauge.set(double(p.freeBytes));
            ++p.hits;
            hit = true;
        } else {
            ++p.misses;
        }
    }
    p.leaseCtr.inc();
    (hit ? p.hitCtr : p.missCtr).inc();

    if (buf.capacity() < count) {
        buf.clear();
        buf.reserve(count);
    }
    // resize() value-initializes only elements beyond the current
    // size; a reused buffer keeps stale contents, so zeroing must be
    // explicit and unconditional when requested.
    buf.resize(std::max(count, std::size_t(1)));
    if (zero && count > 0)
        std::memset(buf.data(), 0, count * sizeof(float));
    return ScratchLease(std::move(buf), count);
}

Stats
stats()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    Stats s;
    s.leases = p.leases;
    s.hits = p.hits;
    s.misses = p.misses;
    s.cachedBuffers = p.free.size();
    s.cachedBytes = p.freeBytes;
    return s;
}

void
trim()
{
    Pool &p = pool();
    std::vector<std::vector<float>> drop;
    std::lock_guard<std::mutex> lock(p.mutex);
    drop.swap(p.free);
    p.freeBytes = 0;
    p.cachedGauge.set(0.0);
    // drop frees outside the list but inside the lock scope is fine:
    // deallocation does not re-enter the pool.
}

} // namespace arena
} // namespace inca
