#include "common/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#ifdef __linux__
#include <pthread.h>
#endif

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace inca {

namespace {

/** True while the current thread is executing a pool task. */
thread_local bool tlsInsidePool = false;

int
threadsFromEnv()
{
    if (const char *env = std::getenv("INCA_NUM_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : int(hw);
}

/** Storage of the global pool, shared by global() and resizing. */
std::mutex gPoolMutex;
std::unique_ptr<ThreadPool> gPool;

/** Seconds a claimed job waited between submission and first pickup. */
metrics::Histogram &
taskWaitHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("pool.task_wait_us");
    return *h;
}

/** Index-range chunks executed by the pool (caller lane included). */
metrics::Counter &
taskCounter()
{
    static metrics::Counter *c = &metrics::counter("pool.tasks");
    return *c;
}

} // namespace

/** One parallelFor invocation: a chunk cursor plus retirement state. */
struct ThreadPool::Job
{
    const RangeFn *body = nullptr;
    std::int64_t n = 0;
    std::int64_t chunk = 1;
    std::atomic<std::int64_t> cursor{0};  ///< next unclaimed index
    std::atomic<std::int64_t> retired{0}; ///< indices fully processed
    int entered = 0;                      ///< workers holding the job
    std::chrono::steady_clock::time_point submitted; ///< wait metric
    std::exception_ptr error;
    std::mutex errorMutex;
};

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        threads = 1;
    workers_.reserve(size_t(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop(int index)
{
    const std::string name = "pool-worker-" + std::to_string(index);
    trace::nameThread(name);
#ifdef __linux__
    pthread_setname_np(pthread_self(),
                       name.substr(0, 15).c_str());
#endif
    std::uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
            if (job != nullptr)
                ++job->entered;
        }
        if (job == nullptr)
            continue;
        taskWaitHistogram().observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - job->submitted)
                .count());
        tlsInsidePool = true;
        runJob(*job);
        tlsInsidePool = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --job->entered;
        }
        done_.notify_all();
    }
}

void
ThreadPool::runJob(Job &job)
{
    for (;;) {
        const std::int64_t lo =
            job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
        if (lo >= job.n)
            return;
        const std::int64_t hi = std::min(lo + job.chunk, job.n);
        taskCounter().inc();
        trace::Span span("pool.task");
        try {
            (*job.body)(lo, hi);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        job.retired.fetch_add(hi - lo, std::memory_order_acq_rel);
    }
}

void
ThreadPool::parallelFor(std::int64_t n, std::int64_t grain,
                        const RangeFn &body)
{
    if (n <= 0)
        return;
    if (grain < 1)
        grain = 1;
    // Serial paths: one lane, a loop too small to split, or a nested
    // call from inside a worker (which must not wait on the pool).
    if (workers_.empty() || n <= grain || tlsInsidePool) {
        body(0, n);
        return;
    }

    // One job at a time; concurrent submitters queue here.
    std::lock_guard<std::mutex> submitLock(submitMutex_);

    Job job;
    job.body = &body;
    job.n = n;
    job.submitted = std::chrono::steady_clock::now();
    // Aim for a few chunks per lane so uneven ranges load-balance,
    // but never split below the caller's grain.
    const std::int64_t lanes = threadCount();
    const std::int64_t target = (n + 4 * lanes - 1) / (4 * lanes);
    job.chunk = std::max(grain, target);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    // The caller is a lane too. Flag it inside-pool while it runs its
    // share so a nested parallel_for from its own task goes inline
    // instead of re-locking submitMutex_ (self-deadlock).
    tlsInsidePool = true;
    runJob(job);
    tlsInsidePool = false;

    // Retire the job: all indices processed and no worker still
    // holding a reference (a late waker must not touch a dead Job).
    {
        std::unique_lock<std::mutex> lock(mutex_);
        job_ = nullptr;
        done_.wait(lock, [&] {
            return job.retired.load(std::memory_order_acquire) >= n &&
                   job.entered == 0;
        });
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (!gPool)
        gPool = std::make_unique<ThreadPool>(threadsFromEnv());
    return *gPool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    inca_assert(!tlsInsidePool,
                "setGlobalThreads from inside a pool task");
    if (threads < 1)
        threads = 1;
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gPool && gPool->threadCount() == threads)
        return;
    gPool.reset(); // joins the old workers
    gPool = std::make_unique<ThreadPool>(threads);
}

void
parallel_for(std::int64_t n, std::int64_t grain,
             const ThreadPool::RangeFn &body)
{
    ThreadPool::global().parallelFor(n, grain, body);
}

void
parallel_for_each(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t)> &body)
{
    parallel_for(n, grain, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            body(i);
    });
}

} // namespace inca
