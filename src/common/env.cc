#include "common/env.hh"

#include <algorithm>
#include <mutex>

#include "common/logging.hh"

// The portable spelling of the process environment (POSIX environ;
// also provided by MinGW/MSVC CRTs).
extern "C" char **environ;

namespace inca {

const std::vector<std::string> &
knownEnvVars()
{
    static const std::vector<std::string> known = {
        "INCA_CACHE",
        "INCA_KERNEL_ISA",
        "INCA_METRICS",
        "INCA_NUM_THREADS",
        "INCA_TRACE",
    };
    return known;
}

std::vector<std::string>
unrecognizedEnvVars(const char *const *envp)
{
    std::vector<std::string> out;
    if (!envp)
        return out;
    const std::string prefix = "INCA_";
    for (const char *const *p = envp; *p; ++p) {
        const std::string entry = *p;
        const std::size_t eq = entry.find('=');
        const std::string name =
            eq == std::string::npos ? entry : entry.substr(0, eq);
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        const auto &known = knownEnvVars();
        if (std::find(known.begin(), known.end(), name) ==
            known.end())
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
checkEnvironment()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const auto unknown = unrecognizedEnvVars(environ);
        if (unknown.empty())
            return;
        std::string names, valid;
        for (const auto &n : unknown) {
            if (!names.empty())
                names += ", ";
            names += n;
        }
        for (const auto &n : knownEnvVars()) {
            if (!valid.empty())
                valid += ", ";
            valid += n;
        }
        warn("unrecognized environment variable%s %s -- the "
             "simulator reads only %s; a typo here silently "
             "configures nothing",
             unknown.size() > 1 ? "s" : "", names.c_str(),
             valid.c_str());
    });
}

} // namespace inca
