/**
 * @file
 * Environment-variable hygiene.
 *
 * The simulator reads a small, fixed set of INCA_* switches (tracing,
 * metrics, threading, caching). A typo like INCA_TRACES silently does
 * nothing, which is the worst failure mode for a reproducibility
 * manifest -- the run looks configured but is not. checkEnvironment()
 * scans the process environment once and warn()s about every
 * INCA_*-prefixed variable the simulator does not recognize, naming
 * the valid switches. Drivers (examples, benches) call it at startup.
 */

#ifndef INCA_COMMON_ENV_HH
#define INCA_COMMON_ENV_HH

#include <string>
#include <vector>

namespace inca {

/** The INCA_* variables the simulator actually reads, sorted. */
const std::vector<std::string> &knownEnvVars();

/**
 * INCA_*-prefixed names in @p envp ("NAME=value" strings, nullptr
 * terminated) that the simulator does not read, sorted. Exposed for
 * tests; checkEnvironment() runs it on the process environment.
 */
std::vector<std::string>
unrecognizedEnvVars(const char *const *envp);

/**
 * Warn (once per process) about unrecognized INCA_* variables in the
 * process environment, listing the valid switches in the message.
 */
void checkEnvironment();

} // namespace inca

#endif // INCA_COMMON_ENV_HH
