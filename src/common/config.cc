#include "common/config.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace inca {

namespace {

std::string
trim(const std::string &s)
{
    size_t begin = 0, end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              s[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

std::string
lower(std::string s)
{
    for (auto &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

Config
Config::fromString(const std::string &text)
{
    Config cfg;
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Strip comments (# or ;).
        const size_t comment = line.find_first_of("#;");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']') {
                fatal("config line %d: unterminated section '%s'",
                      lineNo, line.c_str());
            }
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            fatal("config line %d: expected 'key = value', got '%s'",
                  lineNo, line.c_str());
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", lineNo);
        cfg.set(section.empty() ? key : section + "." + key, value);
    }
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

bool
Config::has(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    }
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0') {
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string v = lower(it->second);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          it->second.c_str());
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

} // namespace inca
