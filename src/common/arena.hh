/**
 * @file
 * Pooled scratch buffers for kernel workspaces.
 *
 * The im2col/GEMM path needs multi-megabyte temporaries (packed input
 * columns, transposed weights) on every conv call. Allocating them
 * fresh each time costs a page-faulted memset per call; this pool
 * recycles the allocations instead. scratchFloats(n) returns a RAII
 * lease over a float buffer of at least n elements, taken from a
 * process-wide free list when one fits and allocated otherwise;
 * destroying the lease returns the buffer for reuse.
 *
 * Thread safety: the free list is mutex-guarded and leases are
 * independent objects, so concurrent conv calls from pool workers can
 * lease and release freely. The lock is only held for the list
 * splice, never during zero-fill or use.
 *
 * Observability: arena.lease / arena.hit / arena.miss counters and
 * the arena.cached_bytes gauge in the metrics registry; stats() gives
 * tests a synchronous snapshot and trim() drops every cached buffer
 * (leak-checker hygiene and a deterministic baseline for tests).
 */

#ifndef INCA_COMMON_ARENA_HH
#define INCA_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace inca {
namespace arena {

/**
 * Exclusive ownership of a pooled float buffer; returns it to the
 * pool at scope exit. Move-only. data() stays valid and stable for
 * the lease's lifetime; size() is the requested element count (the
 * underlying capacity may be larger).
 */
class ScratchLease
{
  public:
    ScratchLease() = default;
    ScratchLease(std::vector<float> buf, std::size_t size)
        : buf_(std::move(buf)), size_(size)
    {
    }

    ~ScratchLease();

    ScratchLease(ScratchLease &&other) noexcept
        : buf_(std::move(other.buf_)), size_(other.size_)
    {
        other.size_ = 0;
        other.buf_.clear();
    }

    ScratchLease &operator=(ScratchLease &&other) noexcept;

    ScratchLease(const ScratchLease &) = delete;
    ScratchLease &operator=(const ScratchLease &) = delete;

    float *data() { return buf_.data(); }
    const float *data() const { return buf_.data(); }
    std::size_t size() const { return size_; }

  private:
    std::vector<float> buf_;
    std::size_t size_ = 0;
};

/**
 * Lease a scratch buffer of at least @p count floats. With
 * @p zero set the first @p count elements are cleared -- required
 * whenever the caller relies on implicit zero padding (im2col) or
 * accumulates in place (GEMM outputs); pass false for buffers that
 * are fully overwritten before reading (packed transposes).
 */
ScratchLease scratchFloats(std::size_t count, bool zero = true);

/** Synchronous pool snapshot (tests; metrics mirror these). */
struct Stats
{
    std::uint64_t leases = 0;   ///< Total scratchFloats() calls.
    std::uint64_t hits = 0;     ///< Leases served from the free list.
    std::uint64_t misses = 0;   ///< Leases that allocated fresh.
    std::size_t cachedBuffers = 0; ///< Free-list entries right now.
    std::size_t cachedBytes = 0;   ///< Bytes parked in the free list.
};

Stats stats();

/** Drop every cached buffer (counters are left running). */
void trim();

} // namespace arena
} // namespace inca

#endif // INCA_COMMON_ARENA_HH
