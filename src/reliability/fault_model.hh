/**
 * @file
 * Wear-aware RRAM fault model (the reliability subsystem's device
 * layer).
 *
 * The paper names endurance as INCA's open risk: the IS dataflow
 * rewrites its activation cells at every layer of every batch, while
 * WS rewrites weights only on updates. arch::endurance quantifies the
 * write pressure; this module turns that pressure into faults. Three
 * fault classes are modelled, following the RRAM literature the paper
 * cites (and the taxonomy NeuroSim-style reliability studies use):
 *
 *  - stuck-at-0 / stuck-at-1: hard faults. A cell's filament fails
 *    permanently (forming failure or endurance wear-out) and the cell
 *    reads a constant regardless of writes. Rate grows with per-cell
 *    write count.
 *  - write variation: soft faults. A write pulse leaves the cell in
 *    the wrong state with some probability; a verify-read detects it
 *    and a retry pulse usually fixes it (see mitigation.hh).
 *  - conductance drift: a zero-mean analog disturbance of the stored
 *    level, modelled as extra device noise fed to the existing
 *    nn::noise / dse::accuracyProxy substrate.
 *
 * The wear -> BER map is the standard super-linear wear-out curve:
 * rate(w) = rate0 + rateWear * (w / endurance)^shape, clamped to
 * [0, 0.5]. All sampling is seeded and deterministic: the same
 * (spec, wear, geometry, stream id) always yields the same fault map,
 * at any thread count.
 */

#ifndef INCA_RELIABILITY_FAULT_MODEL_HH
#define INCA_RELIABILITY_FAULT_MODEL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "arch/endurance.hh"
#include "common/random.hh"

namespace inca {

class CacheKey;

namespace core {
class BitPlane;
}
namespace baseline {
class WsCrossbar;
}

namespace reliability {

/** The modelled fault classes. */
enum class FaultKind
{
    StuckAt0,       ///< hard: cell reads 0 forever
    StuckAt1,       ///< hard: cell reads 1 forever
    WriteVariation, ///< soft: a write pulse misses its target state
    Drift,          ///< analog: conductance disturbance (extra noise)
};

/** "stuck_at_0", "stuck_at_1", "write_variation", "drift". */
const char *faultKindName(FaultKind kind);

/**
 * Device fault rates and how they scale with wear. Defaults are
 * mid-range literature values for current-art RRAM; every campaign
 * and DSE knob can override them.
 */
struct FaultSpec
{
    /** Fresh-device stuck-cell (hard) rate. */
    double hardBer0 = 1e-6;
    /** Additional stuck-cell rate at full rated wear. */
    double hardBerWear = 1e-2;
    /** Fresh-device write-variation (soft, per pulse) rate. */
    double softBer0 = 1e-5;
    /** Additional write-variation rate at full rated wear. */
    double softBerWear = 1e-3;
    /** Wear-out curve exponent (super-linear onset). */
    double wearShape = 2.0;
    /** Conductance-drift noise sigma at full rated wear. */
    double driftSigmaWear = 0.02;
    /** Endurance rating the wear fraction is measured against. */
    double endurance = arch::kEnduranceTypical;
    /** Seed of every fault map this spec generates. */
    std::uint64_t seed = kDefaultSeed;
};

/** Consumed life in [0, inf): writes per cell / endurance rating. */
inline double
wearFraction(const FaultSpec &spec, double writesPerCell)
{
    if (spec.endurance <= 0.0 || writesPerCell <= 0.0)
        return 0.0;
    return writesPerCell / spec.endurance;
}

/** Wear-out curve shared by the hard and soft rates (clamped). */
inline double
wearRate(double rate0, double rateWear, double shape, double wear)
{
    const double grown =
        rate0 + rateWear * std::pow(std::max(wear, 0.0), shape);
    return std::min(std::max(grown, 0.0), 0.5);
}

/** Stuck-cell (hard) rate after @p writesPerCell writes. */
inline double
stuckCellRate(const FaultSpec &spec, double writesPerCell)
{
    return wearRate(spec.hardBer0, spec.hardBerWear, spec.wearShape,
                    wearFraction(spec, writesPerCell));
}

/** Write-variation (soft, per pulse) rate after @p writesPerCell. */
inline double
softErrorRate(const FaultSpec &spec, double writesPerCell)
{
    return wearRate(spec.softBer0, spec.softBerWear, spec.wearShape,
                    wearFraction(spec, writesPerCell));
}

/** Conductance-drift sigma after @p writesPerCell writes. */
inline double
driftSigmaAt(const FaultSpec &spec, double writesPerCell)
{
    return spec.driftSigmaWear *
           std::min(wearFraction(spec, writesPerCell), 1.0);
}

/**
 * Equivalent relative noise sigma of a residual bit-error rate on
 * @p activationBits-bit stored values: a flipped bit at position b
 * perturbs the value by 2^b, so the RMS perturbation relative to full
 * scale is sqrt(ber * mean_b 4^b) / (2^bits - 1). This is the bridge
 * from residual (post-mitigation) faults into the existing
 * noise-accuracy substrate (dse::accuracyProxy, Table VI).
 */
inline double
faultNoiseSigma(double residualBer, int activationBits)
{
    if (residualBer <= 0.0 || activationBits <= 0)
        return 0.0;
    double meanSquare = 0.0;
    for (int b = 0; b < activationBits; ++b)
        meanSquare += std::pow(4.0, b);
    meanSquare /= double(activationBits);
    const double fullScale = double((1u << activationBits) - 1u);
    return std::sqrt(std::min(residualBer, 1.0) * meanSquare) /
           fullScale;
}

/**
 * One sampled hard-fault pattern over a rows x cols array. Spare
 * lines are assumed fault-free (they are sized, guard-banded rows;
 * see mitigation.hh), so a map only covers the logical region.
 */
struct FaultMap
{
    int rows = 0;
    int cols = 0;
    /** -1 healthy, 0/1 stuck value, row-major. */
    std::vector<std::int8_t> stuck;
    int stuckCount = 0;

    std::int8_t at(int row, int col) const
    {
        return stuck[std::size_t(row) * std::size_t(cols) +
                     std::size_t(col)];
    }
};

/**
 * A FaultSpec evaluated at one lifetime point: holds the concrete
 * rates and samples deterministic fault maps. @p streamId selects an
 * independent substream (per plane / per Monte-Carlo trial), so maps
 * are reproducible regardless of sampling order.
 */
class FaultModel
{
  public:
    FaultModel(const FaultSpec &spec, double writesPerCell);

    const FaultSpec &spec() const { return spec_; }

    double writesPerCell() const { return writesPerCell_; }

    /** Consumed life (writes / endurance). */
    double wear() const { return wearFraction(spec_, writesPerCell_); }

    /** Stuck-cell rate at this lifetime point. */
    double stuckRate() const
    {
        return stuckCellRate(spec_, writesPerCell_);
    }

    /** Per-pulse write-variation rate at this lifetime point. */
    double softRate() const
    {
        return softErrorRate(spec_, writesPerCell_);
    }

    /** Drift noise sigma at this lifetime point. */
    double driftSigma() const
    {
        return driftSigmaAt(spec_, writesPerCell_);
    }

    /** Sample a stuck-cell map (deterministic in all arguments). */
    FaultMap sample(int rows, int cols, std::uint64_t streamId) const;

  private:
    FaultSpec spec_;
    double writesPerCell_;
};

/** Inject a map's stuck cells into an INCA plane. */
void applyFaults(const FaultMap &map, core::BitPlane &plane);

/** Inject a map's stuck cells into a WS crossbar. */
void applyFaults(const FaultMap &map, baseline::WsCrossbar &xbar);

/**
 * Append every field of @p spec to @p key (cache canonicalization);
 * a faulty run can never alias a cached ideal run.
 */
void appendKey(CacheKey &key, const FaultSpec &spec);

} // namespace reliability
} // namespace inca

#endif // INCA_RELIABILITY_FAULT_MODEL_HH
