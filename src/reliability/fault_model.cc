#include "reliability/fault_model.hh"

#include <algorithm>

#include "baseline/crossbar.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "inca/plane.hh"
#include "tensor/kernels/kernels.hh"

namespace inca {
namespace reliability {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StuckAt0:
        return "stuck_at_0";
      case FaultKind::StuckAt1:
        return "stuck_at_1";
      case FaultKind::WriteVariation:
        return "write_variation";
      case FaultKind::Drift:
        return "drift";
    }
    panic("unreachable fault kind %d", int(kind));
}

FaultModel::FaultModel(const FaultSpec &spec, double writesPerCell)
    : spec_(spec), writesPerCell_(writesPerCell)
{
    inca_assert(writesPerCell >= 0.0,
                "negative write count %f", writesPerCell);
}

FaultMap
FaultModel::sample(int rows, int cols, std::uint64_t streamId) const
{
    inca_assert(rows > 0 && cols > 0, "bad fault-map geometry %dx%d",
                rows, cols);
    FaultMap map;
    map.rows = rows;
    map.cols = cols;
    map.stuck.assign(std::size_t(rows) * std::size_t(cols), -1);

    // Stream splitting: one splitmix64 child per (seed, streamId)
    // keeps maps independent and order-free -- the sampler never
    // shares generator state across planes or trials.
    SplitMix64 parent(spec_.seed);
    Rng rng(SplitMix64(parent.next() ^ streamId).next());

    // Buffered form of the original per-cell loop: cell i consumes
    // one uniform draw, a faulty cell consumes one more for its stuck
    // polarity. Draw j here is exactly draw j there (fillUniform is
    // the same recurrence, batched), so the sampled map is
    // byte-identical; the win is that at realistic BERs nearly every
    // draw is >= rate, and the dispatched scanBelow kernel skips
    // those misses 4/8 doubles per compare instead of one branchy
    // uniform() call per cell. The generator may run a partial chunk
    // past the last consumed draw; it is trial-local state, so the
    // overshoot is unobservable.
    const double rate = stuckRate();
    const std::size_t total = map.stuck.size();
    const kernels::KernelSet &ks = kernels::active();
    constexpr std::size_t kChunk = 512;
    double buf[kChunk];
    std::size_t pos = 0;
    std::size_t avail = 0;
    std::size_t cell = 0;
    while (cell < total) {
        if (pos == avail) {
            avail = std::min(kChunk, (total - cell) + 1);
            rng.fillUniform(buf, avail);
            pos = 0;
        }
        const std::size_t window =
            std::min(avail - pos, total - cell);
        const std::size_t hit = std::size_t(
            ks.scanBelow(buf + pos, std::int64_t(window), rate));
        cell += hit;
        pos += hit;
        if (hit == window)
            continue;
        // buf[pos] < rate: this cell is stuck. Polarity is a coin
        // flip on the next draw -- wear-out leaves cells in either
        // resistance state.
        ++pos;
        if (pos == avail) {
            avail = std::min(kChunk, (total - cell) + 1);
            rng.fillUniform(buf, avail);
            pos = 0;
        }
        map.stuck[cell] = buf[pos] < 0.5 ? 1 : 0;
        ++pos;
        ++map.stuckCount;
        ++cell;
    }
    return map;
}

void
applyFaults(const FaultMap &map, core::BitPlane &plane)
{
    inca_assert(map.rows <= plane.size() && map.cols <= plane.size(),
                "fault map %dx%d larger than plane %dx%d", map.rows,
                map.cols, plane.size(), plane.size());
    for (int r = 0; r < map.rows; ++r)
        for (int c = 0; c < map.cols; ++c)
            if (map.at(r, c) >= 0)
                plane.injectStuckAt(r, c, map.at(r, c) != 0);
}

void
applyFaults(const FaultMap &map, baseline::WsCrossbar &xbar)
{
    inca_assert(map.rows <= xbar.rows() && map.cols <= xbar.cols(),
                "fault map %dx%d larger than crossbar %dx%d", map.rows,
                map.cols, xbar.rows(), xbar.cols());
    for (int r = 0; r < map.rows; ++r)
        for (int c = 0; c < map.cols; ++c)
            if (map.at(r, c) >= 0)
                xbar.injectStuckAt(r, c, map.at(r, c) != 0);
}

void
appendKey(CacheKey &key, const FaultSpec &spec)
{
    key.add("fault-spec");
    key.add(spec.hardBer0);
    key.add(spec.hardBerWear);
    key.add(spec.softBer0);
    key.add(spec.softBerWear);
    key.add(spec.wearShape);
    key.add(spec.driftSigmaWear);
    key.add(spec.endurance);
    key.add(spec.seed);
}

} // namespace reliability
} // namespace inca
