#include "reliability/mitigation.hh"

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace reliability {

RemapTable::RemapTable(int rows, int cols, int spareRows,
                       int spareCols)
    : rows_(rows), cols_(cols), spareRows_(spareRows),
      spareCols_(spareCols), rowMap_(std::size_t(rows)),
      colMap_(std::size_t(cols))
{
    inca_assert(rows > 0 && cols > 0, "bad remap geometry %dx%d",
                rows, cols);
    inca_assert(spareRows >= 0 && spareCols >= 0,
                "negative spare count %d/%d", spareRows, spareCols);
    for (int r = 0; r < rows_; ++r)
        rowMap_[std::size_t(r)] = r;
    for (int c = 0; c < cols_; ++c)
        colMap_[std::size_t(c)] = c;
}

bool
RemapTable::noteFault(int row, int col)
{
    // Already on a healthy spare line in either direction: covered.
    if (rowRemapped(row) || colRemapped(col))
        return true;
    if (usedSpareRows_ < spareRows_) {
        rowMap_[std::size_t(row)] = rows_ + usedSpareRows_;
        ++usedSpareRows_;
        return true;
    }
    if (usedSpareCols_ < spareCols_) {
        colMap_[std::size_t(col)] = cols_ + usedSpareCols_;
        ++usedSpareCols_;
        return true;
    }
    // Spares exhausted: graceful degradation, the fault stays
    // resident and is reported as residual error rate downstream.
    ++residual_;
    return false;
}

RemappedPlane::RemappedPlane(int size, const MitigationSpec &spec)
    // BitPlane is square; one side holds the spare rows and the
    // other the spare columns, so the physical side is size + the
    // larger spare count.
    : size_(size), spec_(spec),
      plane_(size +
             std::max(std::max(spec.spareRows, spec.spareCols), 0)),
      table_(size, size, spec.spareRows, spec.spareCols),
      intended_(std::size_t(size) * std::size_t(size), -1)
{
}

int
RemappedPlane::write(int row, int col, bool bit, Rng *rng,
                     double softBer)
{
    inca_assert(row >= 0 && row < size_ && col >= 0 && col < size_,
                "logical cell (%d, %d) outside %dx%d array", row, col,
                size_, size_);
    intended_[std::size_t(row) * std::size_t(size_) +
              std::size_t(col)] = bit ? 1 : 0;

    const int attempts =
        1 + (spec_.verifyEnabled()
                 ? std::max(spec_.writeVerifyRetries, 0)
                 : 0);
    int issued = 0;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        const int pr = table_.physicalRow(row);
        const int pc = table_.physicalCol(col);
        // A soft write-variation event leaves the cell in the wrong
        // state; stuck cells ignore the write entirely (BitPlane
        // fault semantics).
        const bool flipped =
            rng != nullptr && softBer > 0.0 && rng->uniform() < softBer;
        plane_.writeCell(pr, pc, flipped ? !bit : bit);
        ++issued;
        pulses_ += 1;
        if (!spec_.verifyEnabled())
            return issued; // blind write: errors persist
        if (plane_.cell(pr, pc) == bit)
            return issued; // verified
    }

    // The cell never verified within the budget: a persistent (hard)
    // fault. Remap its line when a spare remains and replay the
    // buffered intent onto the healthy replacement.
    const bool rowWasRemapped = table_.rowRemapped(row);
    const bool colWasRemapped = table_.colRemapped(col);
    if (table_.noteFault(row, col)) {
        if (!rowWasRemapped && table_.rowRemapped(row))
            replayRow(row);
        else if (!colWasRemapped && table_.colRemapped(col))
            replayCol(col);
    }
    return issued;
}

void
RemappedPlane::replayRow(int row)
{
    // Spares are guard-banded, fault-free lines; the replay is a
    // plain buffered rewrite.
    const int pr = table_.physicalRow(row);
    for (int c = 0; c < size_; ++c) {
        const std::int8_t want =
            intended_[std::size_t(row) * std::size_t(size_) +
                      std::size_t(c)];
        if (want < 0)
            continue;
        plane_.writeCell(pr, table_.physicalCol(c), want != 0);
        pulses_ += 1;
    }
}

void
RemappedPlane::replayCol(int col)
{
    const int pc = table_.physicalCol(col);
    for (int r = 0; r < size_; ++r) {
        const std::int8_t want =
            intended_[std::size_t(r) * std::size_t(size_) +
                      std::size_t(col)];
        if (want < 0)
            continue;
        plane_.writeCell(table_.physicalRow(r), pc, want != 0);
        pulses_ += 1;
    }
}

bool
RemappedPlane::read(int row, int col) const
{
    inca_assert(row >= 0 && row < size_ && col >= 0 && col < size_,
                "logical cell (%d, %d) outside %dx%d array", row, col,
                size_, size_);
    return plane_.cell(table_.physicalRow(row),
                       table_.physicalCol(col));
}

int
RemappedPlane::residualErrors() const
{
    int errors = 0;
    for (int r = 0; r < size_; ++r) {
        for (int c = 0; c < size_; ++c) {
            const std::int8_t want =
                intended_[std::size_t(r) * std::size_t(size_) +
                          std::size_t(c)];
            if (want >= 0 && read(r, c) != (want != 0))
                ++errors;
        }
    }
    return errors;
}

WriteVerifyCost
applyWriteVerify(arch::RunCost &run, const MitigationSpec &spec,
                 double softBer, double hardBer,
                 const circuit::RramDevice &device, double writeLanes)
{
    WriteVerifyCost cost;
    if (!spec.verifyEnabled())
        return cost;
    inca_assert(writeLanes > 0.0, "write lanes must be positive");

    const int retries = std::max(spec.writeVerifyRetries, 0);
    // Soft retries converge geometrically; writes that land on a
    // hard-stuck cell never verify and burn the whole retry budget
    // before the remap engine takes over.
    cost.extraPulsesPerWrite =
        (expectedWritePulses(softBer, retries) - 1.0) +
        std::min(std::max(hardBer, 0.0), 0.5) * double(retries);
    cost.verifyReadsPerWrite = 1.0 + cost.extraPulsesPerWrite;

    const Joules pulseEnergy = device.avgWriteEnergy();
    const Joules verifyEnergy = device.avgReadEnergy();

    for (auto &layer : run.layers) {
        const double writes = layer.stats.sumPrefix("count.array.write");
        if (writes <= 0.0)
            continue;
        const double extraPulses = writes * cost.extraPulsesPerWrite;
        const double verifyReads = writes * cost.verifyReadsPerWrite;
        const Joules energy =
            extraPulses * pulseEnergy + verifyReads * verifyEnergy;
        layer.stats.add("count.reliability.extra_pulse", extraPulses);
        layer.stats.add("count.reliability.verify_read", verifyReads);
        layer.stats.add("energy.reliability.write_verify", energy);
        // Extra pulses and verify reads serialize on each array's
        // write port; the chip's arrays work in parallel.
        const Seconds latency =
            (extraPulses * device.tWrite + verifyReads * device.tRead) /
            writeLanes;
        layer.latency += latency;
        run.latency += latency;
        cost.extraEnergy += energy;
        cost.extraLatency += latency;
    }
    return cost;
}

void
appendKey(CacheKey &key, const MitigationSpec &spec)
{
    key.add("mitigation-spec");
    key.add(spec.writeVerifyRetries);
    key.add(spec.spareRows);
    key.add(spec.spareCols);
}

} // namespace reliability
} // namespace inca
