#include "reliability/campaign.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "arch/endurance.hh"
#include "baseline/engine.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "dse/objectives.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace reliability {

namespace {

std::string
num17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
envJson(const char *name)
{
    const char *v = std::getenv(name);
    if (!v)
        return "null";
    std::string out = "\"";
    out += jsonEscape(v);
    out += '"';
    return out;
}

/** One (engine, sweep, x) evaluation request. */
struct PointJob
{
    bool isInca = true;
    std::string sweep; ///< "ber" or "lifetime"
    double x = 0.0;
};

EvalCache<CampaignPoint> &
pointCache()
{
    static EvalCache<CampaignPoint> cache("reliability-campaign");
    return cache;
}

/** Mix a trial index into a stream base (splitmix64 finalizer). */
std::uint64_t
mixStream(std::uint64_t base, std::uint64_t t)
{
    std::uint64_t z = base + (t + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

CampaignPoint
evaluatePoint(const CampaignOptions &opt, const PointJob &job,
              const nn::NetworkDesc &net, int maxWindow)
{
    const dse::EngineKind kind =
        job.isInca ? dse::EngineKind::Inca : dse::EngineKind::Ws;
    const int arraySize = job.isInca ? opt.inca.subarraySize
                                     : opt.ws.subarraySize;
    const int adcBits = job.isInca ? opt.inca.adcBits : opt.ws.adcBits;
    const int aBits = job.isInca ? opt.inca.activationBits
                                 : opt.ws.activationBits;
    const circuit::RramDevice &device =
        job.isInca ? opt.inca.device : opt.ws.device;
    const double writeLanes =
        double(job.isInca ? opt.inca.org.totalSubarrays()
                          : opt.ws.org.totalSubarrays());

    CampaignPoint point;
    point.sweep = job.sweep;
    point.x = job.x;

    // Resolve the raw fault rates. A "ber" point pins the stuck rate
    // directly (fresh device otherwise); a "lifetime" point derives
    // everything from wear: iterations x writes-per-cell-per-iteration
    // against the endurance rating.
    FaultSpec spec = opt.fault;
    if (job.sweep == "ber") {
        spec.hardBer0 = job.x;
        point.writesPerCell = 0.0;
    } else {
        const arch::EnduranceReport report =
            job.isInca
                ? arch::incaEndurance(net, opt.inca,
                                      opt.inca.batchSize,
                                      spec.endurance)
                : arch::baselineEndurance(net, opt.ws,
                                          opt.ws.batchSize,
                                          spec.endurance);
        point.writesPerCell =
            report.writesPerCellPerIteration * job.x;
    }
    const FaultModel model(spec, point.writesPerCell);
    point.wear = model.wear();
    point.hardBer = model.stuckRate();
    point.softBer = model.softRate();
    point.driftSigma = model.driftSigma();
    point.idealAccuracy = dse::accuracyProxy(kind, adcBits, maxWindow,
                                             opt.noiseSigma);

    // Stream base: a content hash of the point's identity, so every
    // trial is reproducible regardless of evaluation order.
    CacheKey streamKey;
    streamKey.add(job.isInca ? "inca" : "ws");
    streamKey.add(job.sweep);
    streamKey.add(job.x);
    streamKey.add(spec.seed);
    const std::uint64_t streamBase = streamKey.hash();

    const int trials = std::max(opt.trials, 1);
    const double cells = double(arraySize) * double(arraySize);
    double sumAccuracy = 0.0, sumResidual = 0.0, sumPulses = 0.0;
    double sumSpareRows = 0.0, sumSpareCols = 0.0;
    int exhausted = 0;
    for (int t = 0; t < trials; ++t) {
        RemappedPlane array(arraySize, opt.mitigation);
        const FaultMap map = model.sample(
            arraySize, arraySize, mixStream(streamBase, t));
        applyFaults(map, array.plane());

        Rng dataRng(mixStream(streamBase ^ 0x5ca1ab1e0ddba11ULL, t));
        for (int r = 0; r < arraySize; ++r)
            for (int c = 0; c < arraySize; ++c)
                array.write(r, c, dataRng.below(2) != 0, &dataRng,
                            point.softBer);

        const double residual =
            double(array.residualErrors()) / cells;
        const double sigma = opt.noiseSigma + point.driftSigma +
                             faultNoiseSigma(residual, aBits);
        sumAccuracy +=
            dse::accuracyProxy(kind, adcBits, maxWindow, sigma);
        sumResidual += residual;
        sumPulses += double(array.pulses()) / cells;
        sumSpareRows += double(array.table().usedSpareRows());
        sumSpareCols += double(array.table().usedSpareCols());
        if (array.table().residualFaults() > 0)
            ++exhausted;

        const double accuracy =
            dse::accuracyProxy(kind, adcBits, maxWindow, sigma);
        if (t == 0) {
            point.accuracyMin = accuracy;
            point.accuracyMax = accuracy;
        } else {
            point.accuracyMin = std::min(point.accuracyMin, accuracy);
            point.accuracyMax = std::max(point.accuracyMax, accuracy);
        }
    }
    point.accuracy = sumAccuracy / double(trials);
    point.residualBer = sumResidual / double(trials);
    point.faultSigma = faultNoiseSigma(point.residualBer, aBits);
    point.pulsesPerWrite = sumPulses / double(trials);
    point.meanSpareRowsUsed = sumSpareRows / double(trials);
    point.meanSpareColsUsed = sumSpareCols / double(trials);
    point.exhaustedFraction = double(exhausted) / double(trials);

    // Mitigation cost: charge write-verify pulses into the engine's
    // RunCost (the engine runs themselves are memoized upstream).
    arch::RunCost run;
    if (job.isInca) {
        const core::IncaEngine engine(opt.inca);
        run = opt.phase == arch::Phase::Training
                  ? engine.training(net, opt.inca.batchSize)
                  : engine.inference(net, opt.inca.batchSize);
    } else {
        const baseline::BaselineEngine engine(opt.ws);
        run = opt.phase == arch::Phase::Training
                  ? engine.training(net, opt.ws.batchSize)
                  : engine.inference(net, opt.ws.batchSize);
    }
    point.idealEnergyJ = run.energy();
    point.idealLatencyS = run.latency;
    applyWriteVerify(run, opt.mitigation, point.softBer,
                     point.hardBer, device, writeLanes);
    point.energyJ = run.energy();
    point.latencyS = run.latency;
    return point;
}

CacheKey
pointKey(const CampaignOptions &opt, const PointJob &job)
{
    CacheKey key;
    key.add("reliability-campaign-point");
    key.add(job.isInca ? "inca" : "ws");
    if (job.isInca)
        arch::appendKey(key, opt.inca);
    else
        arch::appendKey(key, opt.ws);
    key.add(opt.network);
    key.add(int(opt.phase));
    appendKey(key, opt.fault);
    appendKey(key, opt.mitigation);
    key.add(opt.trials);
    key.add(opt.noiseSigma);
    key.add(job.sweep);
    key.add(job.x);
    return key;
}

void
pointJson(std::ostringstream &os, const CampaignPoint &p)
{
    os << "{\"sweep\": \"" << p.sweep << "\", \"x\": " << num17(p.x)
       << ", \"writes_per_cell\": " << num17(p.writesPerCell)
       << ", \"wear\": " << num17(p.wear)
       << ", \"hard_ber\": " << num17(p.hardBer)
       << ", \"soft_ber\": " << num17(p.softBer)
       << ", \"drift_sigma\": " << num17(p.driftSigma)
       << ", \"residual_ber\": " << num17(p.residualBer)
       << ", \"fault_sigma\": " << num17(p.faultSigma)
       << ", \"accuracy\": " << num17(p.accuracy)
       << ", \"accuracy_min\": " << num17(p.accuracyMin)
       << ", \"accuracy_max\": " << num17(p.accuracyMax)
       << ", \"ideal_accuracy\": " << num17(p.idealAccuracy)
       << ", \"spare_rows_used\": " << num17(p.meanSpareRowsUsed)
       << ", \"spare_cols_used\": " << num17(p.meanSpareColsUsed)
       << ", \"exhausted_fraction\": " << num17(p.exhaustedFraction)
       << ", \"pulses_per_write\": " << num17(p.pulsesPerWrite)
       << ", \"energy_j\": " << num17(p.energyJ)
       << ", \"latency_s\": " << num17(p.latencyS)
       << ", \"ideal_energy_j\": " << num17(p.idealEnergyJ)
       << ", \"ideal_latency_s\": " << num17(p.idealLatencyS) << "}";
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &opt)
{
    if (!opt.runInca && !opt.runWs)
        fatal("fault campaign needs at least one engine "
              "(--engine inca, ws, or both)");
    if (opt.trials < 1)
        fatal("fault campaign needs at least one trial per point, "
              "got %d", opt.trials);
    if (opt.bers.empty() && opt.lifetimes.empty())
        fatal("fault campaign needs at least one sweep point "
              "(--bers or --lifetimes)");

    trace::Span campaignSpan("reliability.campaign");
    const nn::NetworkDesc net = nn::byName(opt.network);
    const int maxWindow = dse::maxConvWindow(net);

    // Engine-major, BER-sweep-first job order: this is both the fan-
    // out order and the fixed serial assembly order.
    std::vector<PointJob> jobs;
    for (const bool isInca : {true, false}) {
        if ((isInca && !opt.runInca) || (!isInca && !opt.runWs))
            continue;
        for (const double ber : opt.bers)
            jobs.push_back({isInca, "ber", ber});
        for (const double life : opt.lifetimes)
            jobs.push_back({isInca, "lifetime", life});
    }

    // Fan points across the ThreadPool into pre-sized slots; each
    // slot is a pure function of (options, job), so contents never
    // depend on scheduling.
    std::vector<CampaignPoint> slots(jobs.size());
    auto &trialCtr = metrics::counter("reliability.trials");
    auto &pointCtr = metrics::counter("reliability.points");
    parallel_for_each(
        std::int64_t(jobs.size()), 1, [&](std::int64_t i) {
            const PointJob &job = jobs[std::size_t(i)];
            trace::Span span(trace::spanName(
                "reliability.point ",
                std::string(job.isInca ? "inca " : "ws ") + job.sweep +
                    " " + num17(job.x)));
            slots[std::size_t(i)] = pointCache().getOrCompute(
                pointKey(opt, job), [&] {
                    return evaluatePoint(opt, job, net, maxWindow);
                });
            pointCtr.inc();
            trialCtr.inc(std::uint64_t(std::max(opt.trials, 1)));
        });

    // Serial reduction in job order.
    CampaignResult result;
    result.options = opt;
    auto &exhaustedCtr =
        metrics::counter("reliability.exhausted_points");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string engine = jobs[i].isInca ? "inca" : "ws";
        if (result.curves.empty() ||
            result.curves.back().engine != engine) {
            result.curves.push_back({engine, {}});
        }
        result.curves.back().points.push_back(slots[i]);
        result.trialsRun += std::uint64_t(std::max(opt.trials, 1));
        if (slots[i].exhaustedFraction > 0.0)
            exhaustedCtr.inc();
    }
    return result;
}

std::string
campaignCsv(const CampaignResult &result)
{
    std::ostringstream os;
    os << "engine,sweep,x,writes_per_cell,wear,hard_ber,soft_ber,"
          "drift_sigma,residual_ber,fault_sigma,accuracy,"
          "accuracy_min,accuracy_max,ideal_accuracy,spare_rows_used,"
          "spare_cols_used,exhausted_fraction,pulses_per_write,"
          "energy_j,latency_s,ideal_energy_j,ideal_latency_s\n";
    for (const CampaignCurve &curve : result.curves) {
        for (const CampaignPoint &p : curve.points) {
            os << curve.engine << "," << p.sweep << "," << num17(p.x)
               << "," << num17(p.writesPerCell) << ","
               << num17(p.wear) << "," << num17(p.hardBer) << ","
               << num17(p.softBer) << "," << num17(p.driftSigma)
               << "," << num17(p.residualBer) << ","
               << num17(p.faultSigma) << "," << num17(p.accuracy)
               << "," << num17(p.accuracyMin) << ","
               << num17(p.accuracyMax) << ","
               << num17(p.idealAccuracy) << ","
               << num17(p.meanSpareRowsUsed) << ","
               << num17(p.meanSpareColsUsed) << ","
               << num17(p.exhaustedFraction) << ","
               << num17(p.pulsesPerWrite) << "," << num17(p.energyJ)
               << "," << num17(p.latencyS) << ","
               << num17(p.idealEnergyJ) << ","
               << num17(p.idealLatencyS) << "\n";
        }
    }
    return os.str();
}

std::string
campaignJson(const CampaignResult &result)
{
    const CampaignOptions &opt = result.options;
    std::ostringstream os;
    os << "{\n";
    os << "  \"kind\": \"reliability.campaign\",\n";
    os << "  \"network\": \"" << jsonEscape(opt.network) << "\",\n";
    os << "  \"phase\": \""
       << (opt.phase == arch::Phase::Training ? "training"
                                              : "inference")
       << "\",\n";
    os << "  \"trials\": " << opt.trials << ",\n";
    os << "  \"noise_sigma\": " << num17(opt.noiseSigma) << ",\n";
    os << "  \"fault\": {\"hard_ber0\": " << num17(opt.fault.hardBer0)
       << ", \"hard_ber_wear\": " << num17(opt.fault.hardBerWear)
       << ", \"soft_ber0\": " << num17(opt.fault.softBer0)
       << ", \"soft_ber_wear\": " << num17(opt.fault.softBerWear)
       << ", \"wear_shape\": " << num17(opt.fault.wearShape)
       << ", \"drift_sigma_wear\": "
       << num17(opt.fault.driftSigmaWear)
       << ", \"endurance\": " << num17(opt.fault.endurance)
       << ", \"seed\": " << opt.fault.seed << "},\n";
    os << "  \"mitigation\": {\"write_verify_retries\": "
       << opt.mitigation.writeVerifyRetries
       << ", \"spare_rows\": " << opt.mitigation.spareRows
       << ", \"spare_cols\": " << opt.mitigation.spareCols << "},\n";
    os << "  \"trials_run\": " << result.trialsRun << ",\n";
    // The same run-provenance manifest the DSE frontier embeds.
    os << "  \"provenance\": {\n";
    os << "    \"threads\": " << ThreadPool::globalThreadCount()
       << ",\n";
    os << "    \"cache\": " << (cacheEnabled() ? "true" : "false")
       << ",\n";
    os << "    \"env\": {";
    bool firstEnv = true;
    for (const char *name : {"INCA_TRACE", "INCA_METRICS",
                             "INCA_NUM_THREADS", "INCA_CACHE"}) {
        if (!firstEnv)
            os << ", ";
        firstEnv = false;
        os << "\"" << name << "\": " << envJson(name);
    }
    os << "}\n";
    os << "  },\n";
    os << "  \"curves\": [\n";
    for (std::size_t c = 0; c < result.curves.size(); ++c) {
        const CampaignCurve &curve = result.curves[c];
        os << "    {\"engine\": \"" << curve.engine
           << "\", \"points\": [\n";
        for (std::size_t i = 0; i < curve.points.size(); ++i) {
            os << "      ";
            pointJson(os, curve.points[i]);
            os << (i + 1 < curve.points.size() ? "," : "") << "\n";
        }
        os << "    ]}"
           << (c + 1 < result.curves.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace reliability
} // namespace inca
