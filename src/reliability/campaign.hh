/**
 * @file
 * Monte-Carlo fault campaigns: accuracy-vs-BER and accuracy-vs-
 * lifetime curves for INCA vs the WS baseline.
 *
 * A campaign evaluates each engine at a set of sweep points. A "ber"
 * point fixes the raw stuck-cell rate directly; a "lifetime" point
 * derives the rates from wear -- training iterations times the
 * engine's writes-per-cell-per-iteration from arch::EnduranceReport,
 * against the device's endurance rating -- which is where the paper's
 * endurance concern (IS rewrites activations constantly, WS barely
 * writes) becomes a measurable accuracy and cost difference.
 *
 * Each point runs seeded Monte-Carlo trials: sample a stuck-cell map
 * on a representative subarray, stream a test pattern through the
 * write-verify + spare-remap pipeline (mitigation.hh), measure the
 * residual bit-error rate, and convert it -- plus wear-scaled
 * conductance drift -- into an equivalent noise sigma for the
 * dse::accuracyProxy substrate (Table VI calibration). Mitigation
 * cost is charged into the engine's RunCost via applyWriteVerify, so
 * every point reports ideal and mitigated energy/latency side by
 * side.
 *
 * Determinism: points fan out across the ThreadPool into pre-sized
 * slots; each trial draws from an independent splitmix64 substream
 * keyed by (seed, engine, point, trial), and all aggregation is a
 * serial reduction in fixed order. Output is bit-identical at any
 * thread count and across cached/uncached runs (points memoize in an
 * EvalCache keyed by the full campaign parameterization).
 */

#ifndef INCA_RELIABILITY_CAMPAIGN_HH
#define INCA_RELIABILITY_CAMPAIGN_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/cost.hh"
#include "reliability/fault_model.hh"
#include "reliability/mitigation.hh"

namespace inca {
namespace reliability {

/** Everything that parameterizes a fault campaign. */
struct CampaignOptions
{
    std::string network = "resnet18";
    arch::Phase phase = arch::Phase::Inference;
    bool runInca = true;
    bool runWs = true;

    arch::IncaConfig inca = arch::paperInca();
    arch::BaselineConfig ws = arch::paperBaseline();

    FaultSpec fault;
    MitigationSpec mitigation;

    /** Monte-Carlo trials per sweep point. */
    int trials = 16;

    /** Raw stuck-cell rates for the accuracy-vs-BER curve. */
    std::vector<double> bers = {1e-4, 1e-3, 1e-2};
    /** Training iterations for the accuracy-vs-lifetime curve. */
    std::vector<double> lifetimes = {1e3, 1e5, 1e7};

    /** Baseline device-noise sigma added on top of fault effects. */
    double noiseSigma = 0.0;
};

/** One evaluated sweep point of one engine. */
struct CampaignPoint
{
    /** "ber" or "lifetime". */
    std::string sweep;
    /** Raw BER, or training iterations, depending on the sweep. */
    double x = 0.0;

    double writesPerCell = 0.0;
    double wear = 0.0;
    double hardBer = 0.0;    ///< raw stuck-cell rate at this point
    double softBer = 0.0;    ///< raw per-pulse write-variation rate
    double driftSigma = 0.0; ///< wear-scaled conductance drift

    double residualBer = 0.0; ///< mean post-mitigation bit errors
    double faultSigma = 0.0;  ///< residual faults as noise sigma
    double accuracy = 0.0;    ///< mean accuracy proxy across trials
    double accuracyMin = 0.0;
    double accuracyMax = 0.0;
    double idealAccuracy = 0.0; ///< fault-free reference

    double meanSpareRowsUsed = 0.0;
    double meanSpareColsUsed = 0.0;
    /** Fraction of trials that exhausted the spares. */
    double exhaustedFraction = 0.0;
    /** Measured mean write pulses per logical write. */
    double pulsesPerWrite = 0.0;

    double energyJ = 0.0;      ///< with mitigation cost charged
    double latencyS = 0.0;     ///< with mitigation cost charged
    double idealEnergyJ = 0.0; ///< engine run, no mitigation
    double idealLatencyS = 0.0;
};

/** One engine's curve over every sweep point. */
struct CampaignCurve
{
    std::string engine; ///< "inca" or "ws"
    std::vector<CampaignPoint> points;
};

/** Outcome of runCampaign(). */
struct CampaignResult
{
    CampaignOptions options;
    std::vector<CampaignCurve> curves;
    std::uint64_t trialsRun = 0;
};

/** Execute a campaign (see the file comment for the guarantees). */
CampaignResult runCampaign(const CampaignOptions &options);

/**
 * Campaign CSV: one row per (engine, point), %.17g numbers -- two
 * byte-identical CSVs mean two bit-identical campaigns.
 */
std::string campaignCsv(const CampaignResult &result);

/**
 * Campaign JSON report with the fault/mitigation parameterization and
 * the same run-provenance manifest the DSE frontier embeds (threads,
 * cache, INCA_* env). Strictly lintable.
 */
std::string campaignJson(const CampaignResult &result);

} // namespace reliability
} // namespace inca

#endif // INCA_RELIABILITY_CAMPAIGN_HH
