/**
 * @file
 * Fault-mitigation hardware models and their accounted cost.
 *
 * Two standard RRAM mitigations are modelled, both with explicit
 * energy/latency cost (nothing is free):
 *
 *  - Write-verify retry: every array write is followed by a verify
 *    read; on mismatch the pulse is reissued, up to a bounded retry
 *    budget. Soft write-variation errors shrink geometrically with
 *    the budget (residual = p^(R+1)); the expected extra pulses are
 *    charged into the engines' RunCost via applyWriteVerify().
 *  - Spare-line remapping: each array carries spare rows/columns.
 *    When write-verify flags a cell that never converges (a hard
 *    stuck fault), its row -- or column, when row spares are gone --
 *    is remapped to a spare and replayed. Spares are sized,
 *    guard-banded lines and are modelled fault-free.
 *
 * Exhausting the spares is graceful degradation, never a panic: the
 * residual faulty cells stay in place and surface as a residual
 * bit-error rate, which the campaign converts into an equivalent
 * noise sigma for the accuracy substrate (fault_model.hh's
 * faultNoiseSigma).
 */

#ifndef INCA_RELIABILITY_MITIGATION_HH
#define INCA_RELIABILITY_MITIGATION_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "arch/cost.hh"
#include "circuit/rram.hh"
#include "common/random.hh"
#include "inca/plane.hh"

namespace inca {

class CacheKey;

namespace reliability {

/** Mitigation hardware configuration. */
struct MitigationSpec
{
    /** Extra write attempts after the initial pulse (0 = no verify). */
    int writeVerifyRetries = 0;
    /** Spare rows per array. */
    int spareRows = 0;
    /** Spare columns per array. */
    int spareCols = 0;

    /** True when writes are verified (retry or remap hardware). */
    bool verifyEnabled() const
    {
        return writeVerifyRetries > 0 || spareRows > 0 ||
               spareCols > 0;
    }
};

/**
 * Expected write pulses per cell under verify-retry against a
 * per-pulse soft failure rate @p softBer: 1 + p + p^2 + ... up to the
 * budget. Monotone non-decreasing in @p retries.
 */
inline double
expectedWritePulses(double softBer, int retries)
{
    const double p = std::min(std::max(softBer, 0.0), 1.0);
    double pulses = 0.0, pk = 1.0;
    for (int k = 0; k <= std::max(retries, 0); ++k) {
        pulses += pk;
        pk *= p;
    }
    return pulses;
}

/**
 * Soft-error rate surviving a verify-retry budget: every attempt
 * fails independently, so residual = p^(retries + 1). Monotone
 * non-increasing in @p retries; retries = 0 returns p itself.
 */
inline double
residualSoftBer(double softBer, int retries)
{
    const double p = std::min(std::max(softBer, 0.0), 1.0);
    return std::pow(p, double(std::max(retries, 0) + 1));
}

/**
 * Logical-to-physical line remapping with bounded spares.
 *
 * Greedy policy, row-first: a fault whose row or column is already
 * remapped is covered for free; otherwise the row is mapped to the
 * next spare row, falling back to a spare column, falling back to
 * counting the fault as residual. noteFault() never fails hard --
 * spare exhaustion is an accounting outcome, not an error.
 */
class RemapTable
{
  public:
    RemapTable(int rows, int cols, int spareRows, int spareCols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    // Lookups are inline: RemappedPlane::write consults the table on
    // every pulse of every cell, the hottest path in a campaign.

    /** Physical row backing logical @p row. */
    int physicalRow(int row) const
    {
        inca_assert(row >= 0 && row < rows_,
                    "logical row %d outside %d", row, rows_);
        return rowMap_[std::size_t(row)];
    }
    /** Physical column backing logical @p col. */
    int physicalCol(int col) const
    {
        inca_assert(col >= 0 && col < cols_,
                    "logical col %d outside %d", col, cols_);
        return colMap_[std::size_t(col)];
    }

    bool rowRemapped(int row) const { return physicalRow(row) >= rows_; }
    bool colRemapped(int col) const { return physicalCol(col) >= cols_; }

    /**
     * Record a persistent fault at logical (@p row, @p col).
     * @return true when the cell is now backed by a healthy line,
     * false when spares are exhausted and the fault stays resident.
     */
    bool noteFault(int row, int col);

    int usedSpareRows() const { return usedSpareRows_; }
    int usedSpareCols() const { return usedSpareCols_; }

    /** Faults left unremapped (spares exhausted). */
    int residualFaults() const { return residual_; }

  private:
    int rows_, cols_, spareRows_, spareCols_;
    std::vector<int> rowMap_, colMap_; ///< logical -> physical line
    int usedSpareRows_ = 0;
    int usedSpareCols_ = 0;
    int residual_ = 0;
};

/**
 * A logical size x size bit array backed by a physical BitPlane with
 * spare lines, written through write-verify retry and remapped on
 * persistent failures. This is the functional model the Monte-Carlo
 * campaign trials and the property tests drive; inject hard faults
 * into plane() (logical region only) before writing.
 */
class RemappedPlane
{
  public:
    RemappedPlane(int size, const MitigationSpec &spec);

    int size() const { return size_; }

    /** The physical plane (size + spares per side). */
    core::BitPlane &plane() { return plane_; }
    const core::BitPlane &plane() const { return plane_; }

    const RemapTable &table() const { return table_; }

    /**
     * Write one logical bit through the mitigation pipeline. With
     * verify enabled, each pulse may soft-fail with probability
     * @p softBer (drawn from @p rng when given); a cell that never
     * verifies within the retry budget is remapped and its lines
     * replayed. Without verify, a single blind pulse is issued and
     * any error persists.
     *
     * @return write pulses issued (including replays).
     */
    int write(int row, int col, bool bit, Rng *rng = nullptr,
              double softBer = 0.0);

    /** Read one logical bit back through the remap table. */
    bool read(int row, int col) const;

    /** Written cells whose readback differs from the intent. */
    int residualErrors() const;

    /** Total write pulses issued so far. */
    std::uint64_t pulses() const { return pulses_; }

  private:
    /** Re-write every intended bit of a remapped row from buffer. */
    void replayRow(int row);
    /** Re-write every intended bit of a remapped column. */
    void replayCol(int col);

    int size_;
    MitigationSpec spec_;
    core::BitPlane plane_;
    RemapTable table_;
    std::vector<std::int8_t> intended_; ///< -1 unwritten, else 0/1
    std::uint64_t pulses_ = 0;
};

/** What applyWriteVerify() charged into a RunCost. */
struct WriteVerifyCost
{
    /** Expected extra write pulses per array write. */
    double extraPulsesPerWrite = 0.0;
    /** Expected verify reads per array write. */
    double verifyReadsPerWrite = 0.0;
    Joules extraEnergy = 0.0;
    Seconds extraLatency = 0.0;
};

/**
 * Charge write-verify retry cost into @p run: every layer's
 * "count.array.write" events are scaled by the expected retry factor
 * (soft retries converge geometrically; hard-stuck cells burn the
 * whole budget), adding "energy.reliability.write_verify" and
 * "count.reliability.extra_pulse" stats and extending layer and run
 * latency. @p writeLanes is the number of concurrent write ports the
 * extra pulses serialize over (one per subarray on both chips).
 */
WriteVerifyCost applyWriteVerify(arch::RunCost &run,
                                 const MitigationSpec &spec,
                                 double softBer, double hardBer,
                                 const circuit::RramDevice &device,
                                 double writeLanes);

/** Append every field of @p spec to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const MitigationSpec &spec);

} // namespace reliability
} // namespace inca

#endif // INCA_RELIABILITY_MITIGATION_HH
