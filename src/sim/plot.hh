/**
 * @file
 * ASCII chart rendering for the figure benches.
 *
 * The paper's figures are bar charts (Figs. 6, 7, 11, 13-16) and one
 * line chart (Fig. 1b); the bench binaries render the same series as
 * ASCII so the *shape* -- who wins, by how much, where the knee or
 * crossover falls -- is visible straight from the terminal. Bars
 * support linear and log10 scaling (the paper plots Figs. 11/12/14 in
 * log scale for exactly the reason ours needs it: the light models'
 * bars dwarf everything else).
 */

#ifndef INCA_SIM_PLOT_HH
#define INCA_SIM_PLOT_HH

#include <string>
#include <vector>

namespace inca {
namespace sim {

/** One labelled bar. */
struct Bar
{
    std::string label;
    double value = 0.0;
};

/** Options for barChart(). */
struct BarOptions
{
    int width = 50;        ///< max bar length in characters
    bool logScale = false; ///< log10 axis (values must be >= 1)
    std::string unit;      ///< appended to the printed values
    int precision = 1;     ///< digits for the printed values
};

/** Render a horizontal bar chart. */
std::string barChart(const std::vector<Bar> &bars,
                     const BarOptions &options = {});

/** One (x, y) series point. */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** Options for lineChart(). */
struct LineOptions
{
    int width = 60;  ///< plot columns
    int height = 16; ///< plot rows
    bool logY = false;
};

/** Render an (x, y) scatter/line chart with axis annotations. */
std::string lineChart(const std::vector<Point> &points,
                      const LineOptions &options = {});

} // namespace sim
} // namespace inca

#endif // INCA_SIM_PLOT_HH
