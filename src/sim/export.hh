/**
 * @file
 * Result export: serialize simulation runs to CSV and JSON so the
 * regenerated tables/figures can be plotted or diffed outside the
 * repository (the figures in the paper are plots of exactly these
 * series).
 */

#ifndef INCA_SIM_EXPORT_HH
#define INCA_SIM_EXPORT_HH

#include <string>

#include "arch/cost.hh"

namespace inca {
namespace sim {

/**
 * Per-layer CSV: one row per layer with name, kind, latency, total
 * energy, and one column per distinct stat key across the run.
 */
std::string toCsv(const arch::RunCost &run);

/**
 * JSON object with run metadata, totals, and a per-layer array of
 * {name, kind, latency, energy, stats{...}}. @p extras, when
 * non-empty, is a pre-rendered sequence of JSON members (e.g.
 * "\"backend\": \"event\", \"overlap\": true") spliced into the
 * top-level object after batch_size -- the timeline driver uses it
 * for backend/overlap provenance.
 */
std::string toJson(const arch::RunCost &run,
                   const std::string &extras = "");

/** Write a string to a file; fatal() when the file cannot open. */
void writeFile(const std::string &path, const std::string &content);

} // namespace sim
} // namespace inca

#endif // INCA_SIM_EXPORT_HH
