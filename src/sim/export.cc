#include "sim/export.hh"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/export_util.hh"
#include "common/logging.hh"

namespace inca {
namespace sim {

namespace {

std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::set<std::string>
allStatKeys(const arch::RunCost &run)
{
    std::set<std::string> keys;
    for (const auto &layer : run.layers)
        for (const auto &[key, value] : layer.stats.entries())
            keys.insert(key);
    return keys;
}

} // namespace

std::string
toCsv(const arch::RunCost &run)
{
    const auto keys = allStatKeys(run);
    std::ostringstream os;
    os << "layer,kind,latency_s,energy_J";
    for (const auto &key : keys)
        os << "," << csvField(key);
    os << "\n";
    for (const auto &layer : run.layers) {
        os << csvField(layer.name) << ","
           << nn::layerKindName(layer.kind) << ","
           << num(layer.latency) << "," << num(layer.energy());
        for (const auto &key : keys)
            os << "," << num(layer.stats.get(key));
        os << "\n";
    }
    return os.str();
}

std::string
toJson(const arch::RunCost &run, const std::string &extras)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"network\": \"" << jsonEscape(run.network) << "\",\n";
    os << "  \"phase\": \""
       << (run.phase == arch::Phase::Training ? "training"
                                              : "inference")
       << "\",\n";
    os << "  \"batch_size\": " << run.batchSize << ",\n";
    if (!extras.empty())
        os << "  " << extras << ",\n";
    os << "  \"latency_s\": " << num(run.latency) << ",\n";
    os << "  \"static_energy_J\": " << num(run.staticEnergy) << ",\n";
    os << "  \"total_energy_J\": " << num(run.energy()) << ",\n";
    // Run-provenance manifest: enough to reproduce the run -- the
    // design point (config key hash from arch::appendKey), the
    // execution knobs (threads, cache), the build, and the INCA_*
    // environment the process saw.
    {
        std::ostringstream lead;
        lead << "\"config_key_hash\": \"0x" << std::hex
             << run.configKeyHash << std::dec << "\"";
        os << "  \"provenance\": {\n"
           << provenanceJson(lead.str(), "    ") << "  },\n";
    }
    os << "  \"layers\": [\n";
    for (size_t i = 0; i < run.layers.size(); ++i) {
        const auto &layer = run.layers[i];
        os << "    {\"name\": \"" << jsonEscape(layer.name)
           << "\", \"kind\": \"" << nn::layerKindName(layer.kind)
           << "\", \"latency_s\": " << num(layer.latency)
           << ", \"energy_J\": " << num(layer.energy())
           << ", \"stats\": {";
        bool first = true;
        for (const auto &[key, value] : layer.stats.entries()) {
            if (!first)
                os << ", ";
            first = false;
            os << "\"" << jsonEscape(key) << "\": " << num(value);
        }
        os << "}}" << (i + 1 < run.layers.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
}

} // namespace sim
} // namespace inca
