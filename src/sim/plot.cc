#include "sim/plot.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace inca {
namespace sim {

std::string
barChart(const std::vector<Bar> &bars, const BarOptions &options)
{
    inca_assert(options.width >= 5, "bar chart needs >= 5 columns");
    if (bars.empty())
        return "(no data)\n";

    size_t labelWidth = 0;
    double maxValue = 0.0;
    for (const auto &bar : bars) {
        labelWidth = std::max(labelWidth, bar.label.size());
        inca_assert(bar.value >= 0.0, "bars must be non-negative");
        // Sub-unity values have negative log10; rather than abort a
        // whole report over one degenerate bar, pin it to the axis
        // floor (one '#') and say so. Zero stays a zero-length bar.
        if (options.logScale && bar.value > 0.0 && bar.value < 1.0)
            warn("log-scale bar '%s' value %g < 1; clamping to axis "
                 "floor",
                 bar.label.c_str(), bar.value);
        maxValue = std::max(maxValue, bar.value);
    }
    if (maxValue <= 0.0)
        maxValue = 1.0;

    auto scaled = [&](double v) {
        if (!options.logScale)
            return v / maxValue;
        const double top = std::log10(maxValue);
        return top <= 0.0 ? 1.0 : std::log10(std::max(v, 1.0)) / top;
    };

    std::ostringstream os;
    for (const auto &bar : bars) {
        const int len = std::max(
            bar.value > 0.0 ? 1 : 0,
            int(std::lround(scaled(bar.value) * options.width)));
        char value[64];
        std::snprintf(value, sizeof(value), "%.*f%s%s",
                      options.precision, bar.value,
                      options.unit.empty() ? "" : " ",
                      options.unit.c_str());
        os << bar.label
           << std::string(labelWidth - bar.label.size(), ' ') << " |"
           << std::string(size_t(len), '#')
           << std::string(size_t(options.width - len), ' ') << "| "
           << value << "\n";
    }
    if (options.logScale)
        os << "(log10 scale)\n";
    return os.str();
}

std::string
lineChart(const std::vector<Point> &points, const LineOptions &options)
{
    inca_assert(options.width >= 10 && options.height >= 4,
                "line chart needs >= 10x4 cells");
    if (points.empty())
        return "(no data)\n";

    auto transform = [&](double y) {
        if (!options.logY)
            return y;
        inca_assert(y > 0.0, "logY needs positive values");
        return std::log10(y);
    };
    double xLo = points.front().x, xHi = points.front().x;
    double yLo = transform(points.front().y);
    double yHi = yLo;
    for (const auto &p : points) {
        xLo = std::min(xLo, p.x);
        xHi = std::max(xHi, p.x);
        const double y = transform(p.y);
        yLo = std::min(yLo, y);
        yHi = std::max(yHi, y);
    }
    if (xHi == xLo)
        xHi = xLo + 1.0;
    if (yHi == yLo)
        yHi = yLo + 1.0;

    std::vector<std::string> grid(
        size_t(options.height), std::string(size_t(options.width), ' '));
    for (const auto &p : points) {
        const double y = options.logY ? std::log10(p.y) : p.y;
        const int col = int(std::lround(
            (p.x - xLo) / (xHi - xLo) * (options.width - 1)));
        const int row = int(std::lround(
            (y - yLo) / (yHi - yLo) * (options.height - 1)));
        grid[size_t(options.height - 1 - row)][size_t(col)] = '*';
    }

    std::ostringstream os;
    char buf[64];
    for (int r = 0; r < options.height; ++r) {
        const bool top = r == 0, bottom = r == options.height - 1;
        if (top || bottom) {
            const double y = top ? yHi : yLo;
            std::snprintf(buf, sizeof(buf), "%10.3g |",
                          options.logY ? std::pow(10.0, y) : y);
        } else {
            std::snprintf(buf, sizeof(buf), "%10s |", "");
        }
        os << buf << grid[size_t(r)] << "\n";
    }
    os << std::string(11, ' ') << '+'
       << std::string(size_t(options.width), '-') << "\n";
    std::snprintf(buf, sizeof(buf), "%10s  %-10.3g", "", xLo);
    os << buf;
    std::snprintf(buf, sizeof(buf), "%*.3g", options.width - 10, xHi);
    os << buf << "\n";
    if (options.logY)
        os << "(log y-axis)\n";
    return os.str();
}

} // namespace sim
} // namespace inca
