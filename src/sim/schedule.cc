#include "sim/schedule.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace sim {

Seconds
Timeline::makespan() const
{
    Seconds end = 0.0;
    for (const auto &entry : entries)
        end = std::max(end, entry.end);
    return end;
}

std::string
Timeline::gantt(int width) const
{
    inca_assert(width >= 10, "gantt needs at least 10 columns");
    const Seconds span = makespan();
    std::ostringstream os;
    if (span <= 0.0)
        return "(empty timeline)\n";
    for (const auto &entry : entries) {
        if (entry.duration() <= 0.0)
            continue;
        const int begin =
            int(entry.start / span * double(width - 1));
        int len = std::max(
            1, int(entry.duration() / span * double(width)));
        len = std::min(len, width - begin);
        std::string bar(size_t(width), ' ');
        for (int i = 0; i < len; ++i)
            bar[size_t(begin + i)] = '#';
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%-16s |%s| %s\n",
                      entry.name.c_str(), bar.c_str(),
                      formatSi(entry.duration(), "s").c_str());
        os << buf;
    }
    char total[64];
    std::snprintf(total, sizeof(total), "%-16s  makespan: %s\n",
                  "", formatSi(span, "s").c_str());
    os << total;
    return os.str();
}

std::vector<TimelineEntry>
Timeline::longest(size_t n) const
{
    std::vector<TimelineEntry> sorted = entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const TimelineEntry &a, const TimelineEntry &b) {
                  return a.duration() > b.duration();
              });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

Timeline
timelineOf(const arch::RunCost &run)
{
    Timeline tl;
    Seconds cursor = 0.0;
    for (const auto &layer : run.layers) {
        TimelineEntry entry;
        entry.name = layer.name;
        entry.start = cursor;
        entry.end = cursor + layer.latency;
        cursor = entry.end;
        tl.entries.push_back(std::move(entry));
    }
    return tl;
}

} // namespace sim
} // namespace inca
