#include "sim/report.hh"

#include "common/logging.hh"

namespace inca {
namespace sim {

Comparison
compare(const core::IncaEngine &incaEngine,
        const baseline::BaselineEngine &baseEngine,
        const nn::NetworkDesc &net, int batchSize, arch::Phase phase)
{
    Comparison c;
    c.network = net.name;
    if (phase == arch::Phase::Inference) {
        c.inca = incaEngine.inference(net, batchSize);
        c.baseline = baseEngine.inference(net, batchSize);
    } else {
        c.inca = incaEngine.training(net, batchSize);
        c.baseline = baseEngine.training(net, batchSize);
    }
    return c;
}

std::vector<Comparison>
compareSuite(const core::IncaEngine &incaEngine,
             const baseline::BaselineEngine &baseEngine,
             const std::vector<nn::NetworkDesc> &nets, int batchSize,
             arch::Phase phase)
{
    std::vector<Comparison> out;
    out.reserve(nets.size());
    for (const auto &net : nets)
        out.push_back(
            compare(incaEngine, baseEngine, net, batchSize, phase));
    return out;
}

std::map<std::string, double>
energyBreakdown(const arch::RunCost &run)
{
    std::map<std::string, double> groups;
    groups["dram"] = run.sum("energy.dram");
    groups["buffer"] = run.sum("energy.buffer");
    groups["array"] = run.sum("energy.array");
    groups["adc"] = run.sum("energy.adc");
    groups["dac"] = run.sum("energy.dac");
    groups["digital"] = run.sum("energy.digital");
    groups["static"] = run.staticEnergy;
    return groups;
}

std::map<std::string, double>
energyBreakdownPct(const arch::RunCost &run)
{
    auto groups = energyBreakdown(run);
    double total = 0.0;
    for (const auto &[name, value] : groups)
        total += value;
    if (total > 0.0) {
        for (auto &[name, value] : groups)
            value = 100.0 * value / total;
    }
    return groups;
}

std::vector<std::pair<std::string, Joules>>
layerwiseMemoryEnergy(const arch::RunCost &run)
{
    std::vector<std::pair<std::string, Joules>> out;
    for (const auto &layer : run.layers) {
        if (layer.name.find(".bwd") != std::string::npos ||
            layer.name.find(".upd") != std::string::npos ||
            layer.name == "weight-reload") {
            continue;
        }
        switch (layer.kind) {
          case nn::LayerKind::Conv:
          case nn::LayerKind::Depthwise:
          case nn::LayerKind::Pointwise:
          case nn::LayerKind::FullyConnected:
            out.emplace_back(layer.name, layer.memoryEnergy());
            break;
          default:
            break;
        }
    }
    return out;
}

} // namespace sim
} // namespace inca
